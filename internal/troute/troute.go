// Package troute implements TRoute: routing a placed Tunable circuit and
// extracting the parameterised routing configuration. Each Tunable net (a
// source entity and the union of its sinks over all modes) is routed as
// one physical tree; the tree is then pruned per mode to determine which
// switches each mode actually needs. A switch used in every mode is a
// static bit (written once, never reconfigured); a switch whose value
// differs between modes is a parameterised bit — the quantity the paper
// minimises, since reconfiguration time is proportional to the bits that
// must be rewritten on a mode change.
package troute

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/mode"
	"repro/internal/route"
	"repro/internal/tunable"
)

// Result is a routed Tunable circuit with its parameterised-bit analysis.
type Result struct {
	Route *route.Result
	Nets  []route.Net

	// BitModes maps each switched-on routing bit to the set of modes in
	// which it must be on. Bits absent from the map are static 0.
	BitModes map[int32]mode.Set

	// ParamRoutingBits counts routing bits whose value depends on the mode
	// (the parameterised bits of the configuration).
	ParamRoutingBits int
	// StaticOnBits counts routing bits on in every mode (routed once,
	// never rewritten).
	StaticOnBits int
	// PerModeWire[m] is the number of wire segments mode m actually uses.
	PerModeWire []int
	// TotalWire is the wire usage of the union routing.
	TotalWire int
	// PinActs[i] maps, for net i, each CLB input-pin node the net enters
	// to the set of modes using that pin — the per-mode LUT-input
	// permutation needed to assemble real configurations.
	PinActs []map[int32]mode.Set
}

// entitySiteMap resolves Tunable entities to RRG endpoint nodes.
type entitySiteMap struct {
	g       *arch.Graph
	ioIdx   arch.IOIndexer
	lutSite []arch.Site
	padSite []arch.Site
}

func (em *entitySiteMap) sourceNode(e tunable.Entity) (int32, error) {
	if e.IsPad {
		s := em.padSite[e.Idx]
		i, ok := em.ioIdx[s]
		if !ok {
			return 0, fmt.Errorf("troute: pad group %d on unknown site %v", e.Idx, s)
		}
		return em.g.PadSource(i), nil
	}
	s := em.lutSite[e.Idx]
	return em.g.CLBSource(s.X, s.Y), nil
}

func (em *entitySiteMap) sinkNode(e tunable.Entity) (int32, error) {
	if e.IsPad {
		s := em.padSite[e.Idx]
		i, ok := em.ioIdx[s]
		if !ok {
			return 0, fmt.Errorf("troute: pad group %d on unknown site %v", e.Idx, s)
		}
		return em.g.PadSink(i), nil
	}
	s := em.lutSite[e.Idx]
	return em.g.CLBSink(s.X, s.Y), nil
}

// BuildNets converts a placed Tunable circuit into router nets plus, per
// net, the activation set of every SINK node (union over the Tunable
// connections landing there).
func BuildNets(g *arch.Graph, tc *tunable.Circuit, lutSite, padSite []arch.Site) ([]route.Net, []map[int32]mode.Set, error) {
	if len(lutSite) != len(tc.TLUTs) || len(padSite) != len(tc.TPads) {
		return nil, nil, fmt.Errorf("troute: site arrays (%d,%d) do not match circuit (%d,%d)",
			len(lutSite), len(padSite), len(tc.TLUTs), len(tc.TPads))
	}
	em := &entitySiteMap{g: g, ioIdx: g.Arch.NewIOIndexer(), lutSite: lutSite, padSite: padSite}

	type srcKey struct {
		isPad bool
		idx   int
	}
	bySrc := map[srcKey]map[int32]mode.Set{}
	var order []srcKey
	for _, cn := range tc.Conns {
		k := srcKey{cn.Src.IsPad, cn.Src.Idx}
		if _, ok := bySrc[k]; !ok {
			bySrc[k] = map[int32]mode.Set{}
			order = append(order, k)
		}
		sk, err := em.sinkNode(cn.Dst)
		if err != nil {
			return nil, nil, err
		}
		bySrc[k][sk] = bySrc[k][sk].Union(cn.Act)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].isPad != order[j].isPad {
			return !order[i].isPad
		}
		return order[i].idx < order[j].idx
	})

	var nets []route.Net
	var sinkActs []map[int32]mode.Set
	for _, k := range order {
		src, err := em.sourceNode(tunable.Entity{IsPad: k.isPad, Idx: k.idx})
		if err != nil {
			return nil, nil, err
		}
		n := route.Net{Name: tunable.Entity{IsPad: k.isPad, Idx: k.idx}.String(), Source: src}
		sinks := make([]int32, 0, len(bySrc[k]))
		var netAct mode.Set
		for sk, act := range bySrc[k] {
			sinks = append(sinks, sk)
			netAct = netAct.Union(act)
		}
		sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })
		n.Sinks = sinks
		// Mode-exclusive connections may share routing resources: tell the
		// router which modes the net and each branch occupy.
		n.ModeMask = uint64(netAct)
		n.SinkMasks = make([]uint64, len(sinks))
		for i, sk := range sinks {
			n.SinkMasks[i] = uint64(bySrc[k][sk])
		}
		nets = append(nets, n)
		sinkActs = append(sinkActs, bySrc[k])
	}
	return nets, sinkActs, nil
}

// RouteTunable routes the Tunable circuit and computes the parameterised
// configuration bits.
func RouteTunable(g *arch.Graph, tc *tunable.Circuit, lutSite, padSite []arch.Site, opt route.Options) (*Result, error) {
	nets, sinkActs, err := BuildNets(g, tc, lutSite, padSite)
	if err != nil {
		return nil, err
	}
	opt.ModeCount = tc.NumModes
	rr, err := route.Route(g, nets, opt)
	if err != nil {
		return nil, fmt.Errorf("troute: %w", err)
	}

	res := &Result{
		Route:       rr,
		Nets:        nets,
		BitModes:    map[int32]mode.Set{},
		PerModeWire: make([]int, tc.NumModes),
	}
	all := mode.All(tc.NumModes)

	res.PinActs = make([]map[int32]mode.Set, len(rr.Trees))
	// nodeAct is shared scratch for the per-tree subtree analysis, sized to
	// the graph once and wiped via each tree's node list (O(tree), not
	// O(graph), per net).
	nodeAct := make([]mode.Set, g.NumNodes())
	for ni, tree := range rr.Trees {
		acts := analyzeTree(tree, sinkActs[ni], nodeAct)
		res.PinActs[ni] = map[int32]mode.Set{}
		for i, e := range tree.Edges {
			act := acts[i]
			if act.Empty() {
				continue
			}
			if n := g.Nodes[e.To]; n.Type == arch.NodeIPin {
				onRing := n.X == 0 || n.Y == 0 || int(n.X) == g.Arch.Width+1 || int(n.Y) == g.Arch.Height+1
				if !onRing {
					res.PinActs[ni][e.To] = res.PinActs[ni][e.To].Union(act)
				}
			}
			bit := bitOfEdge(g, e)
			if bit >= 0 {
				res.BitModes[bit] = res.BitModes[bit].Union(act)
			}
			// Wire accounting: count the edge's target when it is a wire
			// segment (each tree wire node has exactly one incoming edge).
			if g.Nodes[e.To].IsWire() {
				for m := 0; m < tc.NumModes; m++ {
					if act.Contains(m) {
						res.PerModeWire[m]++
					}
				}
				res.TotalWire++
			}
		}
	}
	for _, act := range res.BitModes {
		if act == all {
			res.StaticOnBits++
		} else {
			res.ParamRoutingBits++
		}
	}
	return res, nil
}

// analyzeTree returns, for every tree edge, the set of modes that need it:
// the union of activations of the sinks in the subtree below the edge.
// It exploits the topological edge order guaranteed by route.Tree (the edge
// into a node precedes every edge out of it): one reverse sweep folds each
// subtree's activation into its root, with nodeAct as caller-provided
// scratch that is left zeroed again on return.
func analyzeTree(tree route.Tree, sinkAct map[int32]mode.Set, nodeAct []mode.Set) []mode.Set {
	for node, a := range sinkAct {
		nodeAct[node] = a
	}
	acts := make([]mode.Set, len(tree.Edges))
	for i := len(tree.Edges) - 1; i >= 0; i-- {
		e := tree.Edges[i]
		acts[i] = nodeAct[e.To]
		nodeAct[e.From] = nodeAct[e.From].Union(nodeAct[e.To])
	}
	for _, node := range tree.Nodes {
		nodeAct[node] = 0
	}
	return acts
}

// bitOfEdge finds the configuration bit of a directed RRG edge (-1 when
// hardwired).
func bitOfEdge(g *arch.Graph, e route.Edge) int32 {
	tos := g.Edges(e.From)
	bits := g.EdgeBits(e.From)
	for i, to := range tos {
		if to == e.To {
			return bits[i]
		}
	}
	return -1
}

// ReconfigBits returns the DCS reconfiguration cost in bits under the
// paper's accounting: all LUT bits of the region are rewritten on every
// mode switch, plus only the parameterised routing bits.
func (r *Result) ReconfigBits(a arch.Arch) int {
	return a.TotalLUTBits() + r.ParamRoutingBits
}
