package troute

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/merge"
	"repro/internal/mode"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/techmap"
)

// mergedModes builds len(seeds) related circuits and merges them with
// combined placement — the N-mode generalisation of mergedPair.
func mergedModes(t *testing.T, seeds []int64, nGates int) (*merge.Result, arch.Arch) {
	t.Helper()
	mk := func(seed int64) *lutnet.Circuit {
		rng := rand.New(rand.NewSource(seed))
		b := netlist.NewBuilder(fmt.Sprintf("m%d", seed))
		sigs := b.InputVector("in", 4)
		for i := 0; i < nGates; i++ {
			x := sigs[rng.Intn(len(sigs))]
			y := sigs[rng.Intn(len(sigs))]
			var s int
			switch rng.Intn(4) {
			case 0:
				s = b.And(x, y)
			case 1:
				s = b.Or(x, y)
			case 2:
				s = b.Xor(x, y)
			default:
				s = b.Latch(x, false)
			}
			sigs = append(sigs, s)
		}
		for i := 0; i < 3; i++ {
			b.Output(fmt.Sprintf("o[%d]", i), sigs[len(sigs)-1-i])
		}
		c, err := techmap.Map(b.N, 4)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	var modes []*lutnet.Circuit
	for _, s := range seeds {
		modes = append(modes, mk(s))
	}
	maxB, maxIO := 0, 0
	for _, c := range modes {
		if c.NumBlocks() > maxB {
			maxB = c.NumBlocks()
		}
		if io := c.NumPIs() + len(c.POs); io > maxIO {
			maxIO = io
		}
	}
	side := arch.MinGridForBlocks(maxB, maxIO, 1.2)
	a := arch.New(side, side, 12)
	res, err := merge.CombinedPlace("nm", modes, a, merge.Options{Seed: 1, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return res, a
}

// TestPerModePrunedTreesLegal is the core N-mode DCS invariant: pruning
// the routed Tunable trees to any one mode must leave, for every net
// active in that mode, a legal route — a tree rooted at the net's source
// (every kept edge hangs off an already-reached node, no node has two
// in-edges) that reaches every sink the mode needs. On top of the
// per-net check it verifies mode-exclusive wire sharing: no wire segment
// may be claimed by two different nets within the same mode.
func TestPerModePrunedTreesLegal(t *testing.T) {
	res, a := mergedModes(t, []int64{101, 102, 103}, 30)
	g := arch.BuildGraph(a)
	numModes := res.Tunable.NumModes
	if numModes != 3 {
		t.Fatalf("NumModes = %d, want 3", numModes)
	}

	nets, sinkActs, err := BuildNets(g, res.Tunable, res.LUTSite, res.PadSite)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RouteTunable(g, res.Tunable, res.LUTSite, res.PadSite, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Route.Trees) != len(nets) {
		t.Fatalf("%d trees for %d nets", len(tr.Route.Trees), len(nets))
	}

	nodeAct := make([]mode.Set, g.NumNodes())
	for m := 0; m < numModes; m++ {
		wireOwner := map[int32]int{} // wire node -> net claiming it in mode m
		for ni, tree := range tr.Route.Trees {
			acts := analyzeTree(tree, sinkActs[ni], nodeAct)
			reached := map[int32]bool{nets[ni].Source: true}
			inEdges := map[int32]int{}
			for i, e := range tree.Edges {
				if !acts[i].Contains(m) {
					continue
				}
				if !reached[e.From] {
					t.Fatalf("mode %d net %s: edge %v->%v hangs off an unreached node",
						m, nets[ni].Name, e.From, e.To)
				}
				if inEdges[e.To]++; inEdges[e.To] > 1 {
					t.Fatalf("mode %d net %s: node %v has two in-edges after pruning",
						m, nets[ni].Name, e.To)
				}
				reached[e.To] = true
				if g.Nodes[e.To].IsWire() {
					if prev, ok := wireOwner[e.To]; ok && prev != ni {
						t.Fatalf("mode %d: wire %v claimed by nets %s and %s",
							m, e.To, nets[prev].Name, nets[ni].Name)
					}
					wireOwner[e.To] = ni
				}
			}
			for sink, act := range sinkActs[ni] {
				if act.Contains(m) && !reached[sink] {
					t.Fatalf("mode %d net %s: sink %v not reached by the pruned tree",
						m, nets[ni].Name, sink)
				}
			}
		}
	}
}

// TestNModeRouteWorkerDeterminism asserts the parallel router's contract
// through the full TRoute stack on a 3-mode group: trees, bit
// classification and per-mode accounting must be identical at worker
// counts 1, 2 and 8.
func TestNModeRouteWorkerDeterminism(t *testing.T) {
	res, a := mergedModes(t, []int64{121, 122, 123}, 28)
	g := arch.BuildGraph(a)
	var base *Result
	for _, workers := range []int{1, 2, 8} {
		tr, err := RouteTunable(g, res.Tunable, res.LUTSite, res.PadSite, route.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if workers == 1 {
			base = tr
			continue
		}
		if !reflect.DeepEqual(base.Route, tr.Route) {
			t.Fatalf("workers %d: routing differs from serial", workers)
		}
		if !reflect.DeepEqual(base.BitModes, tr.BitModes) {
			t.Fatalf("workers %d: bit classification differs from serial", workers)
		}
		if base.ParamRoutingBits != tr.ParamRoutingBits || base.StaticOnBits != tr.StaticOnBits ||
			!reflect.DeepEqual(base.PerModeWire, tr.PerModeWire) || base.TotalWire != tr.TotalWire {
			t.Fatalf("workers %d: accounting differs from serial", workers)
		}
	}
}

// TestNModeBitClassification checks the static/parameterised partition on
// a 3-mode group: a routing bit is static exactly when every mode drives
// it on, and the per-mode wire counts must stay within the union routing.
func TestNModeBitClassification(t *testing.T) {
	res, a := mergedModes(t, []int64{111, 112, 113}, 26)
	g := arch.BuildGraph(a)
	tr, err := RouteTunable(g, res.Tunable, res.LUTSite, res.PadSite, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	all := mode.All(res.Tunable.NumModes)
	static, param := 0, 0
	for _, act := range tr.BitModes {
		if act == all {
			static++
		} else {
			param++
		}
	}
	if static != tr.StaticOnBits || param != tr.ParamRoutingBits {
		t.Fatalf("classification mismatch: got %d/%d, recomputed %d/%d",
			tr.StaticOnBits, tr.ParamRoutingBits, static, param)
	}
	for m, w := range tr.PerModeWire {
		if w <= 0 || w > tr.TotalWire {
			t.Errorf("mode %d wire %d outside (0, %d]", m, w, tr.TotalWire)
		}
	}
}
