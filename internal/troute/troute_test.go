package troute

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/merge"
	"repro/internal/mode"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/techmap"
)

// mergedPair builds two related circuits, merges them with combined
// placement and returns the tunable circuit with its sites.
func mergedPair(t *testing.T, seedA, seedB int64) (*merge.Result, arch.Arch) {
	t.Helper()
	mk := func(seed int64) *lutnet.Circuit {
		rng := rand.New(rand.NewSource(seed))
		b := netlist.NewBuilder(fmt.Sprintf("m%d", seed))
		sigs := b.InputVector("in", 4)
		for i := 0; i < 30; i++ {
			x := sigs[rng.Intn(len(sigs))]
			y := sigs[rng.Intn(len(sigs))]
			var s int
			switch rng.Intn(4) {
			case 0:
				s = b.And(x, y)
			case 1:
				s = b.Or(x, y)
			case 2:
				s = b.Xor(x, y)
			default:
				s = b.Latch(x, false)
			}
			sigs = append(sigs, s)
		}
		for i := 0; i < 3; i++ {
			b.Output(fmt.Sprintf("o[%d]", i), sigs[len(sigs)-1-i])
		}
		c, err := techmap.Map(b.N, 4)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	modes := []*lutnet.Circuit{mk(seedA), mk(seedB)}
	maxB, maxIO := 0, 0
	for _, c := range modes {
		if c.NumBlocks() > maxB {
			maxB = c.NumBlocks()
		}
		if io := c.NumPIs() + len(c.POs); io > maxIO {
			maxIO = io
		}
	}
	side := arch.MinGridForBlocks(maxB, maxIO, 1.2)
	a := arch.New(side, side, 10)
	res, err := merge.CombinedPlace("tr", modes, a, merge.Options{Seed: 1, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return res, a
}

func TestRouteTunableBasics(t *testing.T) {
	res, a := mergedPair(t, 1, 2)
	g := arch.BuildGraph(a)
	tr, err := RouteTunable(g, res.Tunable, res.LUTSite, res.PadSite, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalWire <= 0 {
		t.Error("no wire used")
	}
	if tr.ParamRoutingBits+tr.StaticOnBits != len(tr.BitModes) {
		t.Error("bit classification does not partition BitModes")
	}
	all := mode.All(res.Tunable.NumModes)
	for bit, act := range tr.BitModes {
		if act.Empty() {
			t.Fatalf("bit %d has empty activation", bit)
		}
		if int(bit) >= g.NumRoutingBits {
			t.Fatalf("bit %d out of range", bit)
		}
		_ = all
	}
	for m, w := range tr.PerModeWire {
		if w <= 0 {
			t.Errorf("mode %d uses no wire", m)
		}
		if w > tr.TotalWire {
			t.Errorf("mode %d wire %d exceeds union %d", m, w, tr.TotalWire)
		}
	}
}

func TestSharedConnectionsNeedNoReconfig(t *testing.T) {
	// Merging a circuit with itself: every connection is active in both
	// modes, so no routing bit may be parameterised.
	res, a := mergedPair(t, 7, 7)
	g := arch.BuildGraph(a)
	tr, err := RouteTunable(g, res.Tunable, res.LUTSite, res.PadSite, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Tunable.Stats()
	if st.SharedConns != st.NumConns {
		// Combined placement may not perfectly overlay identical circuits
		// at finite effort; tolerate a small mismatch but parameterised
		// bits must be proportionally small.
		frac := float64(tr.ParamRoutingBits) / float64(len(tr.BitModes)+1)
		if frac > 0.5 {
			t.Errorf("self-merge: %.0f%% of bits parameterised (conns %d/%d shared)",
				100*frac, st.SharedConns, st.NumConns)
		}
	} else if tr.ParamRoutingBits != 0 {
		t.Errorf("fully shared tunable circuit still has %d parameterised bits", tr.ParamRoutingBits)
	}
}

func TestReconfigBitsAccounting(t *testing.T) {
	res, a := mergedPair(t, 3, 4)
	g := arch.BuildGraph(a)
	tr, err := RouteTunable(g, res.Tunable, res.LUTSite, res.PadSite, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := a.TotalLUTBits() + tr.ParamRoutingBits
	if tr.ReconfigBits(a) != want {
		t.Errorf("ReconfigBits = %d, want %d", tr.ReconfigBits(a), want)
	}
	// DCS must beat rewriting the whole region.
	if tr.ReconfigBits(a) >= g.TotalConfigBits() {
		t.Errorf("DCS bits %d not below region total %d", tr.ReconfigBits(a), g.TotalConfigBits())
	}
}

func TestBuildNetsShapes(t *testing.T) {
	res, a := mergedPair(t, 5, 6)
	g := arch.BuildGraph(a)
	nets, acts, err := BuildNets(g, res.Tunable, res.LUTSite, res.PadSite)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != len(acts) {
		t.Fatal("nets/acts length mismatch")
	}
	for i, n := range nets {
		if len(n.Sinks) == 0 {
			t.Fatalf("net %s has no sinks", n.Name)
		}
		if len(n.SinkMasks) != len(n.Sinks) {
			t.Fatalf("net %s: sink masks not parallel", n.Name)
		}
		if n.ModeMask == 0 {
			t.Fatalf("net %s: zero mode mask", n.Name)
		}
		for _, sk := range n.Sinks {
			if acts[i][sk].Empty() {
				t.Fatalf("net %s: sink %d without activation", n.Name, sk)
			}
		}
	}
}

func TestBuildNetsRejectsBadSites(t *testing.T) {
	res, a := mergedPair(t, 8, 9)
	g := arch.BuildGraph(a)
	_, _, err := BuildNets(g, res.Tunable, res.LUTSite[:1], res.PadSite)
	if err == nil {
		t.Fatal("mismatched site arrays accepted")
	}
}
