// Package tunable implements the Tunable circuit of Dynamic Circuit
// Specialization applied to multi-mode circuits: Tunable LUTs whose
// configuration bits are Boolean functions of the mode word (the Fig. 4
// construction of the paper), Tunable connections annotated with
// activation functions, and the merge of several mode LUT circuits into
// one Tunable circuit given a grouping of cells onto shared entities.
package tunable

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/lutnet"
	"repro/internal/mode"
)

// Entity identifies a vertex of the Tunable circuit: a Tunable LUT or a
// Tunable pad.
type Entity struct {
	IsPad bool
	Idx   int
}

func (e Entity) String() string {
	if e.IsPad {
		return fmt.Sprintf("tpad%d", e.Idx)
	}
	return fmt.Sprintf("tlut%d", e.Idx)
}

// LUTContent is the realisation of one mode inside a Tunable LUT.
type LUTContent struct {
	Name   string
	TT     logic.TT
	Inputs []Entity
	HasFF  bool
	Init   bool
}

// TLUT is a Tunable LUT: one physical logic block implementing a
// (possibly different) LUT in every active mode.
type TLUT struct {
	Name    string
	PerMode []*LUTContent // indexed by mode; nil when inactive
}

// Active returns the set of modes this TLUT implements.
func (t *TLUT) Active() mode.Set {
	var s mode.Set
	for m, c := range t.PerMode {
		if c != nil {
			s = s.With(m)
		}
	}
	return s
}

// PadContent is the realisation of one mode on a Tunable pad.
type PadContent struct {
	Name    string
	IsInput bool
	Src     Entity // driver, for output pads
}

// TPad is a shared I/O pad: possibly a different primary input or output in
// every active mode.
type TPad struct {
	Name    string
	PerMode []*PadContent
}

// Active returns the set of modes this pad is used in.
func (t *TPad) Active() mode.Set {
	var s mode.Set
	for m, c := range t.PerMode {
		if c != nil {
			s = s.With(m)
		}
	}
	return s
}

// Conn is a Tunable connection: a (source, sink) pair annotated with the
// activation function — the set of modes in which the connection must be
// physically realised.
type Conn struct {
	Src, Dst Entity
	Act      mode.Set
}

// Circuit is a Tunable circuit over a fixed number of modes.
type Circuit struct {
	Name     string
	NumModes int
	K        int
	TLUTs    []TLUT
	TPads    []TPad
	Conns    []Conn
}

// Assignment groups the cells of every mode onto shared entities. Group
// ids 0..NumLUTGroups-1 are Tunable LUTs; NumLUTGroups..+NumPadGroups are
// Tunable pads. A group may hold at most one cell per mode.
type Assignment struct {
	NumLUTGroups int
	NumPadGroups int
	// BlockGroup[m][b] is the LUT group of block b of mode m.
	BlockGroup [][]int
	// PIGroup[m][i] and POGroup[m][o] are pad groups (offset by
	// NumLUTGroups already removed: they index pad groups directly).
	PIGroup [][]int
	POGroup [][]int
}

// Identity builds the naive assignment of the paper's Fig. 3: block i of
// every mode shares Tunable LUT i, PI i shares pad i, PO o shares pad
// NumPIs_max + o.
func Identity(modes []*lutnet.Circuit) *Assignment {
	a := &Assignment{
		BlockGroup: make([][]int, len(modes)),
		PIGroup:    make([][]int, len(modes)),
		POGroup:    make([][]int, len(modes)),
	}
	maxPI := 0
	for m, c := range modes {
		a.BlockGroup[m] = make([]int, len(c.Blocks))
		for b := range c.Blocks {
			a.BlockGroup[m][b] = b
			if b+1 > a.NumLUTGroups {
				a.NumLUTGroups = b + 1
			}
		}
		if len(c.PINames) > maxPI {
			maxPI = len(c.PINames)
		}
	}
	for m, c := range modes {
		a.PIGroup[m] = make([]int, len(c.PINames))
		for i := range c.PINames {
			a.PIGroup[m][i] = i
		}
		a.POGroup[m] = make([]int, len(c.POs))
		for o := range c.POs {
			a.POGroup[m][o] = maxPI + o
			if maxPI+o+1 > a.NumPadGroups {
				a.NumPadGroups = maxPI + o + 1
			}
		}
	}
	if maxPI > a.NumPadGroups {
		a.NumPadGroups = maxPI
	}
	return a
}

// Merge builds the Tunable circuit implied by grouping the cells of the
// mode circuits according to the assignment: grouped LUTs become one
// Tunable LUT; connections with the same source and sink entity merge into
// one Tunable connection whose activation function is the union (Boolean
// sum) of the per-mode products.
func Merge(name string, modes []*lutnet.Circuit, asg *Assignment) (*Circuit, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("tunable: no modes")
	}
	if len(modes) > mode.MaxModes {
		return nil, fmt.Errorf("tunable: %d modes exceed max %d", len(modes), mode.MaxModes)
	}
	k := modes[0].K
	for _, c := range modes {
		if c.K != k {
			return nil, fmt.Errorf("tunable: inconsistent K (%d vs %d)", c.K, k)
		}
	}
	tc := &Circuit{Name: name, NumModes: len(modes), K: k}
	tc.TLUTs = make([]TLUT, asg.NumLUTGroups)
	tc.TPads = make([]TPad, asg.NumPadGroups)
	for i := range tc.TLUTs {
		tc.TLUTs[i].Name = fmt.Sprintf("tlut%d", i)
		tc.TLUTs[i].PerMode = make([]*LUTContent, len(modes))
	}
	for i := range tc.TPads {
		tc.TPads[i].Name = fmt.Sprintf("tpad%d", i)
		tc.TPads[i].PerMode = make([]*PadContent, len(modes))
	}

	entityOfSource := func(m int, s lutnet.Source) (Entity, error) {
		if s.Kind == lutnet.SrcPI {
			if s.Idx >= len(asg.PIGroup[m]) {
				return Entity{}, fmt.Errorf("tunable: mode %d PI %d unassigned", m, s.Idx)
			}
			return Entity{IsPad: true, Idx: asg.PIGroup[m][s.Idx]}, nil
		}
		if s.Idx >= len(asg.BlockGroup[m]) {
			return Entity{}, fmt.Errorf("tunable: mode %d block %d unassigned", m, s.Idx)
		}
		return Entity{Idx: asg.BlockGroup[m][s.Idx]}, nil
	}

	// Fill per-mode contents, checking one-cell-per-mode-per-group.
	for m, c := range modes {
		if len(asg.BlockGroup[m]) != len(c.Blocks) || len(asg.PIGroup[m]) != len(c.PINames) || len(asg.POGroup[m]) != len(c.POs) {
			return nil, fmt.Errorf("tunable: assignment shape mismatch for mode %d", m)
		}
		for b := range c.Blocks {
			grp := asg.BlockGroup[m][b]
			if grp < 0 || grp >= asg.NumLUTGroups {
				return nil, fmt.Errorf("tunable: mode %d block %d: bad group %d", m, b, grp)
			}
			if tc.TLUTs[grp].PerMode[m] != nil {
				return nil, fmt.Errorf("tunable: group %d holds two LUTs of mode %d", grp, m)
			}
			blk := &c.Blocks[b]
			content := &LUTContent{Name: blk.Name, TT: blk.TT, HasFF: blk.HasFF, Init: blk.Init}
			content.Inputs = make([]Entity, len(blk.Inputs))
			for pin, s := range blk.Inputs {
				e, err := entityOfSource(m, s)
				if err != nil {
					return nil, err
				}
				content.Inputs[pin] = e
			}
			tc.TLUTs[grp].PerMode[m] = content
		}
		for i, nm := range c.PINames {
			grp := asg.PIGroup[m][i]
			if grp < 0 || grp >= asg.NumPadGroups {
				return nil, fmt.Errorf("tunable: mode %d PI %d: bad pad group %d", m, i, grp)
			}
			if tc.TPads[grp].PerMode[m] != nil {
				return nil, fmt.Errorf("tunable: pad group %d holds two pads of mode %d", grp, m)
			}
			tc.TPads[grp].PerMode[m] = &PadContent{Name: nm, IsInput: true}
		}
		for o, po := range c.POs {
			grp := asg.POGroup[m][o]
			if grp < 0 || grp >= asg.NumPadGroups {
				return nil, fmt.Errorf("tunable: mode %d PO %d: bad pad group %d", m, o, grp)
			}
			if tc.TPads[grp].PerMode[m] != nil {
				return nil, fmt.Errorf("tunable: pad group %d holds two pads of mode %d", grp, m)
			}
			src, err := entityOfSource(m, po.Src)
			if err != nil {
				return nil, err
			}
			tc.TPads[grp].PerMode[m] = &PadContent{Name: po.Name, Src: src}
		}
	}

	// Tunable connections: merge per-mode connections by (src, dst).
	type key struct{ src, dst Entity }
	acc := map[key]mode.Set{}
	var order []key
	add := func(src, dst Entity, m int) {
		k := key{src, dst}
		if _, ok := acc[k]; !ok {
			order = append(order, k)
		}
		acc[k] = acc[k].With(m)
	}
	for m, c := range modes {
		for b := range c.Blocks {
			dst := Entity{Idx: asg.BlockGroup[m][b]}
			for _, s := range c.Blocks[b].Inputs {
				src, err := entityOfSource(m, s)
				if err != nil {
					return nil, err
				}
				add(src, dst, m)
			}
		}
		for o, po := range c.POs {
			dst := Entity{IsPad: true, Idx: asg.POGroup[m][o]}
			src, err := entityOfSource(m, po.Src)
			if err != nil {
				return nil, err
			}
			add(src, dst, m)
		}
	}
	tc.Conns = make([]Conn, 0, len(order))
	for _, k := range order {
		tc.Conns = append(tc.Conns, Conn{Src: k.src, Dst: k.dst, Act: acc[k]})
	}
	return tc, nil
}

// Stats summarises merge quality.
type Stats struct {
	NumTLUTs    int
	NumTPads    int
	NumConns    int // Tunable connections after merging
	SharedConns int // activation == all modes: never reconfigured
	PerModeConn []int
}

// Stats computes merge statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{NumTLUTs: len(c.TLUTs), NumTPads: len(c.TPads), NumConns: len(c.Conns)}
	s.PerModeConn = make([]int, c.NumModes)
	all := mode.All(c.NumModes)
	for _, cn := range c.Conns {
		if cn.Act == all {
			s.SharedConns++
		}
		for m := 0; m < c.NumModes; m++ {
			if cn.Act.Contains(m) {
				s.PerModeConn[m]++
			}
		}
	}
	return s
}

// TLUTBits computes the parameterised configuration bits of Tunable LUT t
// following the paper's Fig. 4: for every physical truth-table bit
// position, the set of modes in which the bit is 1 (each mode's LUT
// content is ANDed with its mode product and the results are ORed). The
// last entry (index 2^K) is the FF-select bit.
func (c *Circuit) TLUTBits(t int) []mode.Set {
	bits := make([]mode.Set, 1<<uint(c.K)+1)
	tl := &c.TLUTs[t]
	for m, content := range tl.PerMode {
		if content == nil {
			continue
		}
		// Expand the content function to the physical K inputs: content
		// pin i sits on physical pin i; unused upper pins are don't care
		// (their truth-table copies repeat the function).
		varMap := make([]int, content.TT.NumVars)
		for i := range varMap {
			varMap[i] = i
		}
		full := content.TT.Expand(c.K, varMap)
		for b := 0; b < 1<<uint(c.K); b++ {
			if full.Get(b) {
				bits[b] = bits[b].With(m)
			}
		}
		if content.HasFF {
			bits[1<<uint(c.K)] = bits[1<<uint(c.K)].With(m)
		}
	}
	return bits
}

// ExtractMode reconstructs the LUT circuit of one mode from the Tunable
// circuit — the inverse of Merge, used for verification: evaluating all
// parameterised bits for a mode value must reproduce that mode's circuit.
func (c *Circuit) ExtractMode(m int) (*lutnet.Circuit, error) {
	if m < 0 || m >= c.NumModes {
		return nil, fmt.Errorf("tunable: mode %d out of range", m)
	}
	out := &lutnet.Circuit{Name: fmt.Sprintf("%s.mode%d", c.Name, m), K: c.K}
	blockIdx := map[int]int{} // TLUT index -> block index
	piIdx := map[int]int{}    // TPad index -> PI index
	for t := range c.TLUTs {
		if c.TLUTs[t].PerMode[m] != nil {
			blockIdx[t] = len(blockIdx)
		}
	}
	for p := range c.TPads {
		pc := c.TPads[p].PerMode[m]
		if pc != nil && pc.IsInput {
			piIdx[p] = len(out.PINames)
			out.PINames = append(out.PINames, pc.Name)
		}
	}
	srcOf := func(e Entity) (lutnet.Source, error) {
		if e.IsPad {
			i, ok := piIdx[e.Idx]
			if !ok {
				return lutnet.Source{}, fmt.Errorf("tunable: mode %d reads inactive pad %d", m, e.Idx)
			}
			return lutnet.Source{Kind: lutnet.SrcPI, Idx: i}, nil
		}
		i, ok := blockIdx[e.Idx]
		if !ok {
			return lutnet.Source{}, fmt.Errorf("tunable: mode %d reads inactive TLUT %d", m, e.Idx)
		}
		return lutnet.Source{Kind: lutnet.SrcBlock, Idx: i}, nil
	}
	out.Blocks = make([]lutnet.Block, len(blockIdx))
	for t := range c.TLUTs {
		content := c.TLUTs[t].PerMode[m]
		if content == nil {
			continue
		}
		blk := lutnet.Block{Name: content.Name, TT: content.TT, HasFF: content.HasFF, Init: content.Init}
		blk.Inputs = make([]lutnet.Source, len(content.Inputs))
		for pin, e := range content.Inputs {
			s, err := srcOf(e)
			if err != nil {
				return nil, err
			}
			blk.Inputs[pin] = s
		}
		out.Blocks[blockIdx[t]] = blk
	}
	for p := range c.TPads {
		pc := c.TPads[p].PerMode[m]
		if pc == nil || pc.IsInput {
			continue
		}
		s, err := srcOf(pc.Src)
		if err != nil {
			return nil, err
		}
		out.POs = append(out.POs, lutnet.PO{Name: pc.Name, Src: s})
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("tunable: extracted mode %d invalid: %w", m, err)
	}
	return out, nil
}
