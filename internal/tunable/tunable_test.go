package tunable

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/lutnet"
	"repro/internal/mode"
	"repro/internal/netlist"
	"repro/internal/techmap"
)

// buildMode maps a small netlist to a LUT circuit.
func buildMode(t *testing.T, build func(b *netlist.Builder)) *lutnet.Circuit {
	t.Helper()
	b := netlist.NewBuilder("m")
	build(b)
	c, err := techmap.Map(b.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func andMode(t *testing.T) *lutnet.Circuit {
	return buildMode(t, func(b *netlist.Builder) {
		x := b.Input("x")
		y := b.Input("y")
		b.Output("z", b.And(x, y))
	})
}

func orMode(t *testing.T) *lutnet.Circuit {
	return buildMode(t, func(b *netlist.Builder) {
		x := b.Input("x")
		y := b.Input("y")
		b.Output("z", b.Or(x, y))
	})
}

func TestIdentityMergeTwoModes(t *testing.T) {
	modes := []*lutnet.Circuit{andMode(t), orMode(t)}
	asg := Identity(modes)
	tc, err := Merge("andor", modes, asg)
	if err != nil {
		t.Fatal(err)
	}
	if tc.NumModes != 2 {
		t.Fatalf("NumModes = %d", tc.NumModes)
	}
	st := tc.Stats()
	if st.NumTLUTs != 1 {
		t.Errorf("TLUTs = %d, want 1 (both modes are a single LUT)", st.NumTLUTs)
	}
	// Both modes connect pi0->lut, pi1->lut, lut->po: all three connections
	// should merge with activation True.
	if st.SharedConns != st.NumConns {
		t.Errorf("conns: %d total, %d shared — identical topology must fully merge", st.NumConns, st.SharedConns)
	}
}

func TestMergedTLUTBitsFig4(t *testing.T) {
	// The paper's Fig. 4: merging LUT contents per mode; each bit's
	// parameterised value must evaluate to the right content per mode.
	modes := []*lutnet.Circuit{andMode(t), orMode(t)}
	tc, err := Merge("andor", modes, Identity(modes))
	if err != nil {
		t.Fatal(err)
	}
	bits := tc.TLUTBits(0)
	for m := 0; m < 2; m++ {
		content := tc.TLUTs[0].PerMode[m]
		if content == nil {
			t.Fatal("TLUT inactive in a mode")
		}
		varMap := make([]int, content.TT.NumVars)
		for i := range varMap {
			varMap[i] = i
		}
		full := content.TT.Expand(tc.K, varMap)
		for b := 0; b < 1<<uint(tc.K); b++ {
			if bits[b].Contains(m) != full.Get(b) {
				t.Errorf("mode %d bit %d: parameterised %v, content %v", m, b, bits[b].Contains(m), full.Get(b))
			}
		}
	}
	// AND and OR differ in some truth-table bits: those must be
	// parameterised (neither empty nor all-modes).
	all := mode.All(2)
	hasParam := false
	for _, s := range bits {
		if !s.Empty() && s != all {
			hasParam = true
		}
	}
	if !hasParam {
		t.Error("AND/OR merge has no parameterised LUT bits")
	}
}

func TestExtractModeRoundTrip(t *testing.T) {
	modes := []*lutnet.Circuit{andMode(t), orMode(t)}
	tc, err := Merge("andor", modes, Identity(modes))
	if err != nil {
		t.Fatal(err)
	}
	for m, want := range modes {
		got, err := tc.ExtractMode(m)
		if err != nil {
			t.Fatal(err)
		}
		simEq(t, want, got, 32, int64(m))
	}
}

// simEq checks cycle-by-cycle IO equivalence of two LUT circuits.
func simEq(t *testing.T, a, b *lutnet.Circuit, cycles int, seed int64) {
	t.Helper()
	sa, err := lutnet.NewSimulator(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := lutnet.NewSimulator(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]bool{}
		for _, nm := range a.PINames {
			in[nm] = rng.Intn(2) == 0
		}
		oa, ob := sa.Step(in), sb.Step(in)
		for k, v := range oa {
			if ob[k] != v {
				t.Fatalf("cycle %d output %s: %v vs %v", cyc, k, v, ob[k])
			}
		}
	}
}

func TestMergeRejectsDoubleOccupancy(t *testing.T) {
	m0 := andMode(t)
	asg := Identity([]*lutnet.Circuit{m0})
	// Force two blocks of the same mode into one group.
	two := buildMode(t, func(b *netlist.Builder) {
		x := b.Input("x")
		y := b.Input("y")
		g := b.And(x, y)
		h := b.Or(g, x)
		i := b.Xor(h, y)
		b.Output("z", i)
	})
	if two.NumBlocks() < 2 {
		t.Skip("need at least 2 blocks")
	}
	asg2 := Identity([]*lutnet.Circuit{two})
	for b := range asg2.BlockGroup[0] {
		asg2.BlockGroup[0][b] = 0 // all blocks -> group 0
	}
	if _, err := Merge("bad", []*lutnet.Circuit{two}, asg2); err == nil {
		t.Fatal("expected double-occupancy error")
	}
	_ = asg
}

func TestMergeDifferentSizes(t *testing.T) {
	// Modes of different LUT counts: the tunable circuit is as big as the
	// bigger mode (the area claim of the paper).
	big := buildMode(t, func(b *netlist.Builder) {
		v := b.InputVector("a", 4)
		w := b.InputVector("b", 4)
		b.OutputVector("s", b.RippleAdd(v, w))
	})
	small := andMode(t)
	modes := []*lutnet.Circuit{big, small}
	tc, err := Merge("mix", modes, Identity(modes))
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.TLUTs) != big.NumBlocks() {
		t.Errorf("TLUTs = %d, want %d (size of biggest mode)", len(tc.TLUTs), big.NumBlocks())
	}
	for m := range modes {
		got, err := tc.ExtractMode(m)
		if err != nil {
			t.Fatal(err)
		}
		simEq(t, modes[m], got, 24, int64(m+10))
	}
}

func TestActivationExpressions(t *testing.T) {
	modes := []*lutnet.Circuit{andMode(t), orMode(t)}
	tc, err := Merge("andor", modes, Identity(modes))
	if err != nil {
		t.Fatal(err)
	}
	for _, cn := range tc.Conns {
		expr := cn.Act.Expression(tc.NumModes)
		if cn.Act.IsAll(2) && expr != "1" {
			t.Errorf("shared connection rendered %q, want 1", expr)
		}
		if cn.Act == mode.Single(0) && expr != "!m0" {
			t.Errorf("mode-0 connection rendered %q, want !m0", expr)
		}
	}
}

func TestMergeThreeModes(t *testing.T) {
	xorMode := buildMode(t, func(b *netlist.Builder) {
		x := b.Input("x")
		y := b.Input("y")
		b.Output("z", b.Xor(x, y))
	})
	modes := []*lutnet.Circuit{andMode(t), orMode(t), xorMode}
	tc, err := Merge("three", modes, Identity(modes))
	if err != nil {
		t.Fatal(err)
	}
	if mode.NumModeBits(tc.NumModes) != 2 {
		t.Errorf("3 modes need 2 mode bits")
	}
	for m := range modes {
		got, err := tc.ExtractMode(m)
		if err != nil {
			t.Fatal(err)
		}
		simEq(t, modes[m], got, 16, int64(m+20))
	}
}

func TestMergeRandomPermutedAssignment(t *testing.T) {
	// Any legal permutation assignment must produce an equivalent tunable
	// circuit; merging quality changes, correctness must not.
	mk := func(seed int64) *lutnet.Circuit {
		return buildMode(t, func(b *netlist.Builder) {
			rng := rand.New(rand.NewSource(seed))
			sigs := b.InputVector("in", 4)
			for i := 0; i < 24; i++ {
				x := sigs[rng.Intn(len(sigs))]
				y := sigs[rng.Intn(len(sigs))]
				var s int
				switch rng.Intn(4) {
				case 0:
					s = b.And(x, y)
				case 1:
					s = b.Or(x, y)
				case 2:
					s = b.Xor(x, y)
				default:
					s = b.Latch(x, false)
				}
				sigs = append(sigs, s)
			}
			for i := 0; i < 3; i++ {
				b.Output(fmt.Sprintf("o[%d]", i), sigs[len(sigs)-1-i])
			}
		})
	}
	modes := []*lutnet.Circuit{mk(1), mk(2)}
	asg := Identity(modes)
	// Permute mode 1's block groups randomly within a widened group space.
	rng := rand.New(rand.NewSource(99))
	n := asg.NumLUTGroups + 4
	perm := rng.Perm(n)
	for b := range asg.BlockGroup[1] {
		asg.BlockGroup[1][b] = perm[b]
	}
	asg.NumLUTGroups = n
	tc, err := Merge("perm", modes, asg)
	if err != nil {
		t.Fatal(err)
	}
	for m := range modes {
		got, err := tc.ExtractMode(m)
		if err != nil {
			t.Fatal(err)
		}
		simEq(t, modes[m], got, 32, int64(m+30))
	}
}

func TestTLUTBitsFFSelect(t *testing.T) {
	reg := buildMode(t, func(b *netlist.Builder) {
		x := b.Input("x")
		y := b.Input("y")
		b.Output("z", b.Latch(b.And(x, y), false))
	})
	comb := andMode(t)
	modes := []*lutnet.Circuit{reg, comb}
	tc, err := Merge("ff", modes, Identity(modes))
	if err != nil {
		t.Fatal(err)
	}
	bits := tc.TLUTBits(0)
	ffBit := bits[1<<uint(tc.K)]
	if !ffBit.Contains(0) || ffBit.Contains(1) {
		t.Errorf("FF-select bit = %b, want mode0 only", ffBit)
	}
}

func TestStatsPerModeConnections(t *testing.T) {
	modes := []*lutnet.Circuit{andMode(t), orMode(t)}
	tc, err := Merge("andor", modes, Identity(modes))
	if err != nil {
		t.Fatal(err)
	}
	st := tc.Stats()
	for m, n := range st.PerModeConn {
		// Each mode has 2 PI->LUT connections and 1 LUT->PO connection.
		if n != 3 {
			t.Errorf("mode %d connections = %d, want 3", m, n)
		}
	}
	_ = logic.TT{}
}
