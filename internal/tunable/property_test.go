package tunable

import (
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/lutnet"
)

// TestQuickFig4Construction checks the paper's Fig. 4 invariant on random
// LUT contents: for every mode m and truth-table row r, the parameterised
// bit evaluated at m equals the mode's own LUT bit.
func TestQuickFig4Construction(t *testing.T) {
	build := func(bits uint64) *lutnet.Circuit {
		return &lutnet.Circuit{
			Name: "q", K: 4,
			PINames: []string{"a", "b", "c", "d"},
			Blocks: []lutnet.Block{{
				Name: "l",
				TT:   logic.NewTT(4, bits),
				Inputs: []lutnet.Source{
					{Kind: lutnet.SrcPI, Idx: 0},
					{Kind: lutnet.SrcPI, Idx: 1},
					{Kind: lutnet.SrcPI, Idx: 2},
					{Kind: lutnet.SrcPI, Idx: 3},
				},
			}},
			POs: []lutnet.PO{{Name: "y", Src: lutnet.Source{Kind: lutnet.SrcBlock, Idx: 0}}},
		}
	}
	prop := func(bits0, bits1 uint64) bool {
		modes := []*lutnet.Circuit{build(bits0), build(bits1)}
		tc, err := Merge("q", modes, Identity(modes))
		if err != nil {
			return false
		}
		pb := tc.TLUTBits(0)
		want := []logic.TT{logic.NewTT(4, bits0), logic.NewTT(4, bits1)}
		for m := 0; m < 2; m++ {
			for r := 0; r < 16; r++ {
				if pb[r].Contains(m) != want[m].Get(r) {
					return false
				}
			}
			// FF-select bit off in both modes (no registers here).
			if pb[16].Contains(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergePreservesConnectionCount checks a structural invariant on
// random identity merges: the number of per-mode connections equals the sum
// over Tunable connections of their activation sizes.
func TestQuickMergePreservesConnectionCount(t *testing.T) {
	prop := func(bits0, bits1 uint64) bool {
		modes := []*lutnet.Circuit{
			{
				Name: "m0", K: 4, PINames: []string{"a", "b"},
				Blocks: []lutnet.Block{{
					Name: "l0", TT: logic.NewTT(2, bits0),
					Inputs: []lutnet.Source{{Kind: lutnet.SrcPI, Idx: 0}, {Kind: lutnet.SrcPI, Idx: 1}},
				}},
				POs: []lutnet.PO{{Name: "y", Src: lutnet.Source{Kind: lutnet.SrcBlock, Idx: 0}}},
			},
			{
				Name: "m1", K: 4, PINames: []string{"a", "b"},
				Blocks: []lutnet.Block{{
					Name: "l1", TT: logic.NewTT(2, bits1),
					Inputs: []lutnet.Source{{Kind: lutnet.SrcPI, Idx: 1}, {Kind: lutnet.SrcPI, Idx: 0}},
				}},
				POs: []lutnet.PO{{Name: "y", Src: lutnet.Source{Kind: lutnet.SrcBlock, Idx: 0}}},
			},
		}
		tc, err := Merge("q", modes, Identity(modes))
		if err != nil {
			return false
		}
		st := tc.Stats()
		sum := 0
		for _, cn := range tc.Conns {
			sum += cn.Act.Count()
		}
		return sum == st.PerModeConn[0]+st.PerModeConn[1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
