package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("mm_x_total", "x").Inc()
	r.CounterVec("mm_xv_total", "x", "k").With("v").Add(3)
	r.Gauge("mm_g", "g").Set(1)
	r.GaugeVec("mm_gv", "g", "k").With("v").Add(-1)
	r.Histogram("mm_h", "h", WorkBuckets).Observe(5)
	r.HistogramVec("mm_hv", "h", WorkBuckets, "k").With("v").Observe(5)
	r.CounterFunc("mm_cf_total", "cf", func() float64 { return 1 })
	r.GaugeFunc("mm_gf", "gf", func() float64 { return 1 })
	r.OnScrape(func() { t.Fatal("hook ran on nil registry") })
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mm_ops_total", "ops")
	c.Inc()
	c.Add(2)
	g := r.Gauge("mm_level", "level")
	g.Set(10)
	g.Add(-3)
	h := r.Histogram("mm_work", "work", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mm_ops_total counter",
		"mm_ops_total 3",
		"# TYPE mm_level gauge",
		"mm_level 7",
		"# TYPE mm_work histogram",
		`mm_work_bucket{le="1"} 1`,
		`mm_work_bucket{le="10"} 3`,
		`mm_work_bucket{le="100"} 4`,
		`mm_work_bucket{le="+Inf"} 5`,
		"mm_work_sum 560.5",
		"mm_work_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := ValidateText(buf.Bytes()); err != nil {
		t.Fatalf("own output fails validation: %v", err)
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("mm_req_total", "reqs", "path")
	v.With("cold").Add(2)
	v.With(`we"ird\`).Inc()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `mm_req_total{path="cold"} 2`) {
		t.Errorf("missing cold series:\n%s", out)
	}
	if !strings.Contains(out, `mm_req_total{path="we\"ird\\"} 1`) {
		t.Errorf("missing escaped series:\n%s", out)
	}
	st, err := ValidateText(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if st.Series != 2 {
		t.Fatalf("got %d series, want 2", st.Series)
	}
}

func TestFuncMetricsAndOnScrape(t *testing.T) {
	r := NewRegistry()
	val := 0.0
	r.CounterFunc("mm_snap_total", "snapshot-backed", func() float64 { return val })
	hookRan := false
	r.OnScrape(func() { hookRan = true; val = 42 })
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !hookRan {
		t.Fatal("OnScrape hook did not run")
	}
	if !strings.Contains(buf.String(), "mm_snap_total 42") {
		t.Fatalf("func metric stale:\n%s", buf.String())
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mm_a_total", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registration with different kind did not panic")
		}
	}()
	r.Gauge("mm_a_total", "a")
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mm_conc_total", "c")
	h := r.Histogram("mm_conc_work", "h", WorkBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mm_conc_total 8000") {
		t.Fatalf("lost counter increments:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "mm_conc_work_count 8000") {
		t.Fatalf("lost observations:\n%s", buf.String())
	}
}

func TestValidateTextRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "mm_x_total 1\n",
		"duplicate series": "# HELP mm_x_total x\n# TYPE mm_x_total counter\n" +
			"mm_x_total 1\nmm_x_total 2\n",
		"duplicate TYPE": "# TYPE mm_x_total counter\n# TYPE mm_x_total counter\nmm_x_total 1\n",
		"non-cumulative buckets": "# TYPE mm_h histogram\n" +
			`mm_h_bucket{le="1"} 5` + "\n" + `mm_h_bucket{le="2"} 3` + "\n" +
			`mm_h_bucket{le="+Inf"} 5` + "\n" + "mm_h_sum 1\nmm_h_count 5\n",
		"missing +Inf bucket": "# TYPE mm_h histogram\n" +
			`mm_h_bucket{le="1"} 5` + "\n" + "mm_h_sum 1\nmm_h_count 5\n",
		"count mismatch": "# TYPE mm_h histogram\n" +
			`mm_h_bucket{le="1"} 5` + "\n" + `mm_h_bucket{le="+Inf"} 5` + "\n" +
			"mm_h_sum 1\nmm_h_count 7\n",
	}
	for name, body := range cases {
		if _, err := ValidateText([]byte(body)); err == nil {
			t.Errorf("%s: validator accepted invalid body", name)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if len(DurationBuckets) != 20 || DurationBuckets[0] != 0.001 {
		t.Fatalf("DurationBuckets changed: %v", DurationBuckets)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	s := tr.Start("x", "k", "v")
	s.SetLabel("a", "b")
	s.End()
	if got := tr.Stages(); got != nil {
		t.Fatalf("nil trace Stages = %v", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("nil trace chrome output invalid: %v\n%s", err, buf.String())
	}
}

func TestTraceSpansAndStages(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("compile")
	for i := 0; i < 2; i++ {
		s := tr.Start("place", "mode", "0")
		time.Sleep(time.Millisecond)
		s.End()
	}
	r := tr.Start("route")
	inner := tr.Start("expand") // nested detail must not surface in Stages
	inner.End()
	r.End()
	root.SetLabel("path", "cold")
	root.End()

	stages := tr.Stages()
	byName := map[string]StageTiming{}
	for _, st := range stages {
		byName[st.Stage] = st
	}
	if byName["place"].Count != 2 {
		t.Fatalf("place count = %d, want 2 (stages: %+v)", byName["place"].Count, stages)
	}
	if byName["place"].Millis <= 0 {
		t.Fatalf("place ms not recorded: %+v", stages)
	}
	if _, ok := byName["route"]; !ok {
		t.Fatalf("route stage missing: %+v", stages)
	}
	if _, ok := byName["compile"]; ok {
		t.Fatalf("root wrapper should be skipped: %+v", stages)
	}
	if _, ok := byName["expand"]; ok {
		t.Fatalf("nested span leaked into stages: %+v", stages)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output not valid JSON: %v", err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want X", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"compile", "place", "route", "expand"} {
		if !names[want] {
			t.Fatalf("chrome trace missing span %q", want)
		}
	}
	for _, ev := range events {
		if ev.Name == "compile" && ev.Args["path"] != "cold" {
			t.Fatalf("root label lost: %+v", ev)
		}
	}
}

func TestTraceDoubleEnd(t *testing.T) {
	tr := NewTrace()
	s := tr.Start("a")
	s.End()
	s.End() // must not panic or skew depth
	b := tr.Start("b")
	b.End()
	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %+v, want a and b at same depth", stages)
	}
}
