package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the exposition format WriteText
// emits.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every family as Prometheus text exposition format:
// families in name order, series in creation order, histograms as
// cumulative _bucket/_sum/_count triples. OnScrape hooks run first, so
// func-backed families render fresh values. A nil registry writes
// nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	fams := make([]*family, 0, len(r.byName))
	for _, f := range r.byName {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}; extra appends one more pair (the
// histogram le label). Returns "" for no labels.
func labelString(keys, values []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(values[i]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

func (f *family) write(w *bufio.Writer) error {
	f.mu.Lock()
	series := append([]*series{}, f.order...)
	f.mu.Unlock()
	if f.value == nil && len(series) == 0 {
		return nil // registered vec with no series yet: emit nothing
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	if f.value != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.value()))
		return nil
	}
	for _, s := range series {
		switch f.kind {
		case kindCounter, kindGauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.keys, s.labels, "", ""),
				formatFloat(math.Float64frombits(s.bits.Load())))
		case kindHistogram:
			cum := uint64(0)
			for i, b := range f.bounds {
				cum += s.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.keys, s.labels, "le", formatFloat(b)), cum)
			}
			cum += s.inf.Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(f.keys, s.labels, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.keys, s.labels, "", ""),
				formatFloat(math.Float64frombits(s.sumBits.Load())))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.keys, s.labels, "", ""), cum)
		}
	}
	return nil
}

// TextStats summarises a validated exposition body.
type TextStats struct {
	// Families maps family name to declared TYPE.
	Families map[string]string
	// Series is the number of distinct sample series.
	Series int
}

// Has reports whether the family was declared.
func (t *TextStats) Has(name string) bool {
	_, ok := t.Families[name]
	return ok
}

// ValidateText parses a Prometheus text exposition body and checks the
// structural invariants the /metrics format test (and the CI smoke's
// promcheck) gate on:
//
//   - every sample belongs to a family with a preceding # TYPE line (and
//     at most one TYPE per family);
//   - no duplicate series (same sample name + label set twice);
//   - histogram buckets are cumulative (counts non-decreasing with
//     ascending le), the +Inf bucket exists, and _count equals it.
//
// It returns the family names and series count so callers can assert
// required series exist.
func ValidateText(data []byte) (*TextStats, error) {
	st := &TextStats{Families: map[string]string{}}
	seen := map[string]bool{} // sample name + canonical labels
	type bucketSet struct {
		family string
		les    []float64
		counts []float64
	}
	buckets := map[string]*bucketSet{} // keyed by family + non-le labels
	counts := map[string]float64{}     // _count samples, same key
	sawSample := map[string]bool{}     // family → any sample seen

	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // arbitrary comment
			}
			name := fields[2]
			if !validName(name) {
				return nil, fmt.Errorf("line %d: invalid family name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := st.Families[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for family %s", lineNo, name)
				}
				if sawSample[name] {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				st.Families[name] = typ
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		family := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && st.Families[base] == "histogram" {
				family, suffix = base, sfx
				break
			}
		}
		typ, declared := st.Families[family]
		if !declared {
			return nil, fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, name)
		}
		if typ == "histogram" && suffix == "" {
			return nil, fmt.Errorf("line %d: bare sample %s for histogram family", lineNo, name)
		}
		sawSample[family] = true

		canon := canonicalLabels(labels, "")
		key := name + canon
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s%s", lineNo, name, canon)
		}
		seen[key] = true
		st.Series++

		if suffix == "_bucket" {
			le, ok := labels["le"]
			if !ok {
				return nil, fmt.Errorf("line %d: %s_bucket without le label", lineNo, family)
			}
			var lef float64
			if le == "+Inf" {
				lef = math.Inf(1)
			} else if lef, err = strconv.ParseFloat(le, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad le %q", lineNo, le)
			}
			bkey := family + canonicalLabels(labels, "le")
			bs := buckets[bkey]
			if bs == nil {
				bs = &bucketSet{family: family}
				buckets[bkey] = bs
			}
			bs.les = append(bs.les, lef)
			bs.counts = append(bs.counts, value)
		}
		if suffix == "_count" {
			counts[family+canonicalLabels(labels, "")] = value
		}
	}

	for bkey, bs := range buckets {
		idx := make([]int, len(bs.les))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return bs.les[idx[i]] < bs.les[idx[j]] })
		last := math.Inf(-1)
		prev := -1.0
		for _, i := range idx {
			if bs.les[i] == last {
				return nil, fmt.Errorf("histogram %s: duplicate le bound %v", bkey, last)
			}
			last = bs.les[i]
			if bs.counts[i] < prev {
				return nil, fmt.Errorf("histogram %s: bucket counts not cumulative at le=%v", bkey, last)
			}
			prev = bs.counts[i]
		}
		if !math.IsInf(last, 1) {
			return nil, fmt.Errorf("histogram %s: missing +Inf bucket", bkey)
		}
		if c, ok := counts[bkey]; ok && c != prev {
			return nil, fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", bkey, c, prev)
		}
	}
	return st, nil
}

// canonicalLabels renders a label map sorted by key, omitting skip.
func canonicalLabels(labels map[string]string, skip string) string {
	if len(labels) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// parseSample parses `name{k="v",...} value [timestamp]`.
func parseSample(line string) (string, map[string]string, float64, error) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:end]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid sample name %q", name)
	}
	labels := map[string]string{}
	rest = rest[end:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 || !validName(rest[:eq]) {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			k := rest[:eq]
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var v strings.Builder
			for {
				if rest == "" {
					return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\\' && len(rest) >= 2 {
					switch rest[1] {
					case 'n':
						v.WriteByte('\n')
					default:
						v.WriteByte(rest[1])
					}
					rest = rest[2:]
					continue
				}
				v.WriteByte(c)
				rest = rest[1:]
			}
			if _, dup := labels[k]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %s in %q", k, line)
			}
			labels[k] = v.String()
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, val, nil
}
