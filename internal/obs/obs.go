// Package obs is the repo's dependency-free observability substrate: a
// Prometheus-compatible metrics registry (counters, gauges, histograms
// with fixed deterministic bucket bounds) plus a lightweight span tracer
// (trace.go) that renders Chrome trace-event JSON and per-stage timing
// breakdowns.
//
// Two rules make it safe to wire through the hot paths:
//
//   - A nil *Registry (or *Trace) is fully valid and near-zero cost:
//     every constructor returns a nil handle, and every method on a nil
//     handle is a no-op guarded by a single pointer check. Disabled
//     instrumentation therefore costs one branch per *call site*, and
//     call sites sit at iteration/run boundaries — never inside the A*
//     expansion loop or the annealing move loop.
//   - Instrumentation must never perturb results. Nothing in this
//     package feeds back into any algorithm: handles are write-only
//     from the instrumented code's point of view, and recording order
//     cannot influence values (atomics only). The byte-identity and
//     golden-hash suites run with instrumentation enabled to prove it.
//
// Naming conventions (see ARCHITECTURE.md "Observability"): families are
// prefixed mm_, counters end in _total, durations are in seconds, and
// histogram bucket bounds are fixed at registration (never adapted to
// observed data) so two processes always expose merge-able series.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// ExpBuckets returns n exponentially spaced histogram bounds:
// start, start*factor, ..., start*factor^(n-1). Bounds are deterministic
// by construction — callers must never derive them from observed values.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DurationBuckets spans 1ms to ~524s in powers of two — wide enough for
// both a warm artifact hit and a full-effort cold compile.
var DurationBuckets = ExpBuckets(0.001, 2, 20)

// WorkBuckets spans 1 to ~4.2M in powers of four, for work counters
// (moves, reroutes, heap pushes) whose magnitude varies by workload size.
var WorkBuckets = ExpBuckets(1, 4, 12)

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them as Prometheus text
// exposition format (WriteText). All methods are safe for concurrent use.
// A nil *Registry is valid: constructors return nil handles whose methods
// are no-ops, so instrumented code needs no enabled/disabled branches.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// OnScrape registers a hook run at the start of every WriteText call —
// the place to refresh func-backed families from one coherent snapshot
// (the compile server refreshes all its counters from a single
// StatsSnapshot there, so /metrics and /stats render the same numbers).
func (r *Registry) OnScrape(f func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onScrape = append(r.onScrape, f)
	r.mu.Unlock()
}

// family is one metric family: a name, help text, a kind, a label-key
// schema, and its series (one per label-value combination).
type family struct {
	name, help string
	kind       kind
	keys       []string
	bounds     []float64 // histograms only

	mu    sync.Mutex
	byKey map[string]*series
	order []*series

	value func() float64 // func-backed families render this instead of series
}

// series is one (family, label values) time series. Counter and gauge
// values live in bits as float64 bits; histograms use counts/sumBits/count.
type series struct {
	labels  []string
	bits    atomic.Uint64
	counts  []atomic.Uint64 // per-bucket (non-cumulative); rendered cumulative
	inf     atomic.Uint64   // observations above the last bound
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// lookup returns the family named name, creating it on first use. A
// re-registration with a different kind, label schema or bucket bounds is
// a programming error and panics: silently returning mismatched handles
// would corrupt the exposition.
func (r *Registry) lookup(name, help string, k kind, keys []string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, keys: keys, bounds: bounds, byKey: map[string]*series{}}
		r.byName[name] = f
		return f
	}
	if f.kind != k || len(f.keys) != len(keys) || len(f.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
	}
	for i := range keys {
		if f.keys[i] != keys[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with different label keys", name))
		}
	}
	for i := range bounds {
		if f.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with different buckets", name))
		}
	}
	return f
}

// with returns the series of the given label values, creating it on
// first use. Series are rendered in creation order per family.
func (f *family) with(values []string) *series {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.keys), len(values)))
	}
	key := ""
	for _, v := range values {
		key += v + "\x00"
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: append([]string(nil), values...)}
		if f.kind == kindHistogram {
			s.counts = make([]atomic.Uint64, len(f.bounds))
		}
		f.byKey[key] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter is a monotonically increasing value. Nil-safe.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	addFloat(&c.s.bits, v)
}

// Gauge is a value that can go up and down. Nil-safe.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add adds v (negative to decrement).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.s.bits, v)
}

// Histogram counts observations into fixed buckets. Nil-safe.
type Histogram struct {
	s      *series
	bounds []float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	if i < len(h.bounds) {
		h.s.counts[i].Add(1)
	} else {
		h.s.inf.Add(1)
	}
	addFloat(&h.s.sumBits, v)
	h.s.count.Add(1)
}

// CounterVec is a counter family with labels. Nil-safe.
type CounterVec struct{ f *family }

// With returns the counter of the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{s: v.f.with(values)}
}

// GaugeVec is a gauge family with labels. Nil-safe.
type GaugeVec struct{ f *family }

// With returns the gauge of the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{s: v.f.with(values)}
}

// HistogramVec is a histogram family with labels. Nil-safe.
type HistogramVec struct{ f *family }

// With returns the histogram of the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &Histogram{s: v.f.with(values), bounds: v.f.bounds}
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, keys, nil)}
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{s: r.lookup(name, help, kindCounter, nil, nil).with(nil)}
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, kindGauge, keys, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{s: r.lookup(name, help, kindGauge, nil, nil).with(nil)}
}

// HistogramVec registers (or finds) a labeled histogram family with the
// given fixed bucket bounds (ascending).
func (r *Registry) HistogramVec(name, help string, bounds []float64, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, keys, bounds)}
}

// Histogram registers (or finds) an unlabeled histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindHistogram, nil, bounds)
	return &Histogram{s: f.with(nil), bounds: f.bounds}
}

// CounterFunc registers a counter whose value is read at scrape time —
// the bridge for cumulative counts maintained elsewhere (flow.Cache's
// atomics, the compile server's request counters).
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	r.lookup(name, help, kindCounter, nil, nil).value = f
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	r.lookup(name, help, kindGauge, nil, nil).value = f
}
