package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace collects a tree of timed spans for one compile (or any other
// operation). It is deliberately minimal: spans nest by wall-clock
// containment on a single logical thread — the flow's stages run
// serially, so start/end order is the tree. A nil *Trace is valid and
// every method on it (and on the nil *Span it hands out) is a no-op, so
// tracing costs one pointer check per stage boundary when disabled.
//
// Trace is safe for use from one goroutine at a time. Stages that fan
// out internally (parallel route batches, multi-start anneals) do not
// open spans from their workers — the enclosing stage span covers them,
// and the worker-level detail lands in the metrics registry instead.
type Trace struct {
	mu    sync.Mutex
	epoch time.Time
	depth int
	spans []*Span
}

// Span is one timed region with an optional set of string labels.
type Span struct {
	t      *Trace
	name   string
	depth  int
	start  time.Duration // offset from trace epoch
	dur    time.Duration
	keys   []string
	values []string
	done   bool
}

// NewTrace returns an empty trace whose epoch is now.
func NewTrace() *Trace {
	return &Trace{epoch: time.Now()}
}

// Start opens a span. kv is an even-length list of label key/value
// pairs (e.g. "mode", "2"). Close it with End; spans must be ended in
// LIFO order (they time serial stages, not concurrent work).
func (t *Trace) Start(name string, kv ...string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{t: t, name: name, depth: t.depth, start: time.Since(t.epoch)}
	for i := 0; i+1 < len(kv); i += 2 {
		s.keys = append(s.keys, kv[i])
		s.values = append(s.values, kv[i+1])
	}
	t.depth++
	t.spans = append(t.spans, s)
	return s
}

// SetLabel attaches (or overwrites) a label on an open or closed span.
func (s *Span) SetLabel(k, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i, key := range s.keys {
		if key == k {
			s.values[i] = v
			return
		}
	}
	s.keys = append(s.keys, k)
	s.values = append(s.values, v)
}

// End closes the span. Safe to call more than once; only the first
// call records the duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	s.dur = time.Since(s.t.epoch) - s.start
	if s.t.depth > 0 {
		s.t.depth--
	}
}

// chromeEvent is one Chrome trace-event ("complete" phase). Times are
// microseconds per the trace-event format.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome writes the span tree as Chrome trace-event JSON (the
// array form), loadable in chrome://tracing or Perfetto. Open spans are
// rendered as if they ended now.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	t.mu.Lock()
	now := time.Since(t.epoch)
	events := make([]chromeEvent, 0, len(t.spans))
	for _, s := range t.spans {
		dur := s.dur
		if !s.done {
			dur = now - s.start
		}
		ev := chromeEvent{
			Name: s.name,
			Ph:   "X",
			Pid:  1,
			Tid:  1,
			Ts:   float64(s.start.Microseconds()),
			Dur:  float64(dur.Microseconds()),
		}
		if len(s.keys) > 0 {
			ev.Args = map[string]string{}
			for i, k := range s.keys {
				ev.Args[k] = s.values[i]
			}
		}
		events = append(events, ev)
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}

// StageTiming is one row of a per-stage timing breakdown: how many
// spans of this stage ran and their total wall time.
type StageTiming struct {
	Stage  string  `json:"stage"`
	Count  int     `json:"count"`
	Millis float64 `json:"ms"`
}

// Stages aggregates spans by name into a per-stage breakdown, ordered
// by first occurrence. Only spans at the shallowest informative depth
// are counted, so nested detail (per-probe graph builds inside sizing)
// doesn't double-book time: if the shallowest depth holds a single
// all-enclosing root span (the "compile" wrapper) and deeper spans
// exist, aggregation happens one level down instead.
func (t *Trace) Stages() []StageTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	minDepth := t.spans[0].depth
	maxDepth := minDepth
	for _, s := range t.spans {
		if s.depth < minDepth {
			minDepth = s.depth
		}
		if s.depth > maxDepth {
			maxDepth = s.depth
		}
	}
	names := map[string]bool{}
	n := 0
	for _, s := range t.spans {
		if s.depth == minDepth {
			names[s.name] = true
			n++
		}
	}
	if n == 1 && len(names) == 1 && maxDepth > minDepth {
		minDepth++
	}
	byName := map[string]*StageTiming{}
	var order []string
	for _, s := range t.spans {
		if s.depth != minDepth || !s.done {
			continue
		}
		st := byName[s.name]
		if st == nil {
			st = &StageTiming{Stage: s.name}
			byName[s.name] = st
			order = append(order, s.name)
		}
		st.Count++
		st.Millis += float64(s.dur.Nanoseconds()) / 1e6
	}
	out := make([]StageTiming, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// SpanNames returns the distinct span names recorded, sorted — used by
// tests asserting stage coverage.
func (t *Trace) SpanNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	set := map[string]bool{}
	for _, s := range t.spans {
		set[s.name] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
