// Package techmap implements the conventional technology-mapping step of
// the tool flow: covering a gate-level netlist with K-input LUTs using
// priority-cut enumeration (depth-optimal with area-flow tie-breaking) and
// packing LUTs and flip-flops into logic blocks (one K-LUT + one FF each,
// as in the 4lut_sanitized.arch architecture).
package techmap

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/lutnet"
	"repro/internal/netlist"
)

// MaxCutsPerNode bounds the priority-cut list kept per node.
const MaxCutsPerNode = 8

// cut is a set of leaf node IDs (sorted) covering a cone rooted at a node.
type cut struct {
	leaves []int
	sig    uint64 // Bloom-style signature for fast superset checks
	depth  int
	flow   float64
}

func signature(leaves []int) uint64 {
	var s uint64
	for _, l := range leaves {
		s |= 1 << uint(l%64)
	}
	return s
}

// dominates reports whether c's leaf set is a subset of o's (c is at least
// as general and thus dominates o when costs are no worse).
func (c *cut) subsetOf(o *cut) bool {
	if c.sig&^o.sig != 0 || len(c.leaves) > len(o.leaves) {
		return false
	}
	i := 0
	for _, l := range o.leaves {
		if i < len(c.leaves) && c.leaves[i] == l {
			i++
		}
	}
	return i == len(c.leaves)
}

// mergeCuts unions two leaf sets, returning nil if the result exceeds k.
func mergeCuts(a, b *cut, k int) []int {
	out := make([]int, 0, k)
	i, j := 0, 0
	for i < len(a.leaves) || j < len(b.leaves) {
		var v int
		switch {
		case i >= len(a.leaves):
			v = b.leaves[j]
			j++
		case j >= len(b.leaves):
			v = a.leaves[i]
			i++
		case a.leaves[i] < b.leaves[j]:
			v = a.leaves[i]
			i++
		case a.leaves[i] > b.leaves[j]:
			v = b.leaves[j]
			j++
		default:
			v = a.leaves[i]
			i++
			j++
		}
		out = append(out, v)
		if len(out) > k {
			return nil
		}
	}
	return out
}

// Map covers the combinational logic of n with K-LUTs and packs the result
// into logic blocks, returning a LUT circuit that is cycle-by-cycle
// IO-equivalent to n.
func Map(n *netlist.Netlist, k int) (*lutnet.Circuit, error) {
	if k < 2 || k > logic.MaxVars {
		return nil, fmt.Errorf("techmap: K=%d out of range [2,%d]", k, logic.MaxVars)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("techmap: %w", err)
	}

	order := n.TopoOrder()
	fanouts := n.Fanouts()

	// isCI: combinational inputs (PIs and latch Q outputs).
	isCI := func(id int) bool {
		return n.Nodes[id].Kind != netlist.KindGate
	}

	// Cut enumeration.
	cuts := make([][]*cut, len(n.Nodes))
	best := make([]*cut, len(n.Nodes))
	for _, id := range order {
		nd := n.Nodes[id]
		if isCI(id) {
			c := &cut{leaves: []int{id}, sig: signature([]int{id}), depth: 0, flow: 0}
			cuts[id] = []*cut{c}
			best[id] = c
			continue
		}
		var cand []*cut
		// Cross product of fanin cut sets.
		work := []*cut{{leaves: nil, sig: 0}}
		feasible := true
		for _, f := range nd.Fanins {
			var next []*cut
			for _, w := range work {
				for _, fc := range cuts[f] {
					merged := mergeCuts(w, fc, k)
					if merged == nil {
						continue
					}
					next = append(next, &cut{leaves: merged, sig: signature(merged)})
				}
			}
			if len(next) == 0 {
				feasible = false
				break
			}
			// Prune the working set to keep the cross product bounded.
			if len(next) > 4*MaxCutsPerNode {
				sort.Slice(next, func(i, j int) bool { return len(next[i].leaves) < len(next[j].leaves) })
				next = next[:4*MaxCutsPerNode]
			}
			work = next
		}
		if feasible {
			cand = work
		}
		// The trivial cut keeps mapping feasible even when fanin cut sets
		// blow past K (always possible since gate arity ≤ K is NOT
		// guaranteed — reject if the gate itself has more fanins than K).
		if len(nd.Fanins) > k {
			return nil, fmt.Errorf("techmap: gate %q has %d fanins > K=%d; decompose first", nd.Name, len(nd.Fanins), k)
		}
		triv := make([]int, len(nd.Fanins))
		copy(triv, nd.Fanins)
		sort.Ints(triv)
		triv = dedupSorted(triv)
		cand = append(cand, &cut{leaves: triv, sig: signature(triv)})

		// Cost each candidate.
		fanoutEst := float64(len(fanouts[id]))
		if fanoutEst < 1 {
			fanoutEst = 1
		}
		for _, c := range cand {
			d := 0
			fl := 1.0
			for _, l := range c.leaves {
				if best[l].depth > d {
					d = best[l].depth
				}
				fl += best[l].flow
			}
			c.depth = d + 1
			c.flow = fl / fanoutEst
		}
		// Deduplicate + dominance filter + priority selection.
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].depth != cand[j].depth {
				return cand[i].depth < cand[j].depth
			}
			if cand[i].flow != cand[j].flow {
				return cand[i].flow < cand[j].flow
			}
			return len(cand[i].leaves) < len(cand[j].leaves)
		})
		var kept []*cut
		for _, c := range cand {
			dominated := false
			for _, kc := range kept {
				if kc.subsetOf(c) {
					dominated = true
					break
				}
			}
			if !dominated {
				kept = append(kept, c)
				if len(kept) == MaxCutsPerNode {
					break
				}
			}
		}
		cuts[id] = kept
		best[id] = kept[0]
	}

	// Derive required LUT roots from combinational outputs.
	needed := map[int]bool{}
	var require func(id int)
	require = func(id int) {
		if isCI(id) || needed[id] {
			return
		}
		needed[id] = true
		for _, l := range best[id].leaves {
			require(l)
		}
	}
	for _, o := range n.Outputs {
		require(o.Driver)
	}
	for _, nd := range n.Nodes {
		if nd.Kind == netlist.KindLatch {
			require(nd.Fanins[0])
		}
	}

	// Usage census for FF packing: a root can absorb a latch only if its
	// sole consumer is that latch.
	rootUses := map[int]int{}   // LUT root -> number of uses
	latchOfD := map[int][]int{} // data-fanin node -> latch IDs
	for id := range needed {
		for _, l := range best[id].leaves {
			if !isCI(l) {
				rootUses[l]++
			}
		}
	}
	for _, o := range n.Outputs {
		if !isCI(o.Driver) {
			rootUses[o.Driver]++
		}
	}
	for _, nd := range n.Nodes {
		if nd.Kind == netlist.KindLatch {
			d := nd.Fanins[0]
			latchOfD[d] = append(latchOfD[d], nd.ID)
			if !isCI(d) {
				rootUses[d]++
			}
		}
	}

	// Build the circuit skeleton: PI indices, block indices.
	c := &lutnet.Circuit{Name: n.Name, K: k}
	piIdx := map[int]int{}
	for _, nd := range n.Nodes {
		if nd.Kind == netlist.KindInput {
			piIdx[nd.ID] = len(c.PINames)
			c.PINames = append(c.PINames, nd.Name)
		}
	}

	blockOf := map[int]int{}  // netlist node (LUT root or latch) -> block index
	absorbed := map[int]int{} // LUT root -> latch it is packed with
	newBlock := func(name string) int {
		c.Blocks = append(c.Blocks, lutnet.Block{Name: name})
		return len(c.Blocks) - 1
	}
	// Latches first decide whether they absorb their source LUT.
	for _, nd := range n.Nodes {
		if nd.Kind != netlist.KindLatch {
			continue
		}
		d := nd.Fanins[0]
		if !isCI(d) && rootUses[d] == 1 && len(latchOfD[d]) == 1 && needed[d] {
			bi := newBlock(nd.Name)
			blockOf[nd.ID] = bi
			absorbed[d] = nd.ID
			blockOf[d] = bi
		} else {
			blockOf[nd.ID] = newBlock(nd.Name)
		}
	}
	rootIDs := make([]int, 0, len(needed))
	for id := range needed {
		rootIDs = append(rootIDs, id)
	}
	sort.Ints(rootIDs)
	for _, id := range rootIDs {
		if _, isAbsorbed := absorbed[id]; !isAbsorbed {
			blockOf[id] = newBlock(n.Nodes[id].Name)
		}
	}

	srcOf := func(id int) lutnet.Source {
		if n.Nodes[id].Kind == netlist.KindInput {
			return lutnet.Source{Kind: lutnet.SrcPI, Idx: piIdx[id]}
		}
		return lutnet.Source{Kind: lutnet.SrcBlock, Idx: blockOf[id]}
	}

	// Fill block contents.
	for _, id := range rootIDs {
		bi := blockOf[id]
		blk := &c.Blocks[bi]
		blk.TT = coneTT(n, id, best[id].leaves)
		blk.Inputs = make([]lutnet.Source, len(best[id].leaves))
		for i, l := range best[id].leaves {
			blk.Inputs[i] = srcOf(l)
		}
		if latchID, ok := absorbed[id]; ok {
			blk.HasFF = true
			blk.Init = n.Nodes[latchID].Init
		}
	}
	for _, nd := range n.Nodes {
		if nd.Kind != netlist.KindLatch {
			continue
		}
		d := nd.Fanins[0]
		if latchID, ok := absorbed[d]; ok && latchID == nd.ID {
			continue // packed with its source LUT above
		}
		bi := blockOf[nd.ID]
		blk := &c.Blocks[bi]
		blk.TT = logic.VarTT(1, 0) // pass-through LUT
		blk.Inputs = []lutnet.Source{srcOf(d)}
		blk.HasFF = true
		blk.Init = nd.Init
	}
	for _, o := range n.Outputs {
		c.POs = append(c.POs, lutnet.PO{Name: o.Name, Src: srcOf(o.Driver)})
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("techmap: produced invalid circuit: %w", err)
	}
	return c, nil
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// coneTT computes the function of the cone rooted at root with the given
// leaves, as a truth table over the leaves in order.
func coneTT(n *netlist.Netlist, root int, leaves []int) logic.TT {
	tt := logic.ConstTT(len(leaves), false)
	leafVar := map[int]int{}
	for i, l := range leaves {
		leafVar[l] = i
	}
	for row := 0; row < tt.NumRows(); row++ {
		memo := map[int]bool{}
		var eval func(id int) bool
		eval = func(id int) bool {
			if v, ok := memo[id]; ok {
				return v
			}
			if vi, ok := leafVar[id]; ok {
				v := row>>uint(vi)&1 == 1
				memo[id] = v
				return v
			}
			nd := n.Nodes[id]
			if nd.Kind != netlist.KindGate {
				panic(fmt.Sprintf("techmap: cone of %d escapes leaves at node %d (%s)", root, id, nd.Name))
			}
			var r uint
			for i, f := range nd.Fanins {
				if eval(f) {
					r |= 1 << uint(i)
				}
			}
			v := nd.Func.Eval(r)
			memo[id] = v
			return v
		}
		if eval(root) {
			tt = tt.Set(row, true)
		}
	}
	return tt
}
