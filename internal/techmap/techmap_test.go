package techmap

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/lutnet"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// checkMapEquivalent maps n and verifies cycle-by-cycle IO equivalence on
// random stimulus.
func checkMapEquivalent(t *testing.T, n *netlist.Netlist, k, cycles int, seed int64) *lutnet.Circuit {
	t.Helper()
	c, err := Map(n, k)
	if err != nil {
		t.Fatal(err)
	}
	sa := netlist.NewSimulator(n)
	sb, err := lutnet.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]bool{}
		for _, nm := range sa.InputNames() {
			in[nm] = rng.Intn(2) == 0
		}
		oa := sa.Step(in)
		ob := sb.Step(in)
		for kk, v := range oa {
			if ob[kk] != v {
				t.Fatalf("cycle %d output %s: netlist %v, LUT circuit %v", cyc, kk, v, ob[kk])
			}
		}
	}
	return c
}

func TestMapCombinationalAdder(t *testing.T) {
	b := netlist.NewBuilder("add")
	a := b.InputVector("a", 4)
	c := b.InputVector("b", 4)
	b.OutputVector("s", b.RippleAdd(a, c))
	circ := checkMapEquivalent(t, b.N, 4, 100, 1)
	// A 4-bit ripple adder maps into far fewer 4-LUTs than 2-input gates.
	if circ.NumBlocks() >= b.N.CountKind(netlist.KindGate) {
		t.Errorf("mapping did not reduce node count: %d LUTs vs %d gates",
			circ.NumBlocks(), b.N.CountKind(netlist.KindGate))
	}
}

func TestMapSequentialCounter(t *testing.T) {
	n := netlist.New("cnt")
	var q [3]int
	for i := range q {
		q[i] = n.AddLatchPlaceholder(fmt.Sprintf("q%d", i), false)
	}
	// q0' = !q0; q1' = q0 xor q1; q2' = (q0&q1) xor q2
	d0 := n.AddGate("d0", logic.VarTT(1, 0).Not(), q[0])
	d1 := n.AddGate("d1", logic.VarTT(2, 0).Xor(logic.VarTT(2, 1)), q[0], q[1])
	and01 := n.AddGate("a01", logic.VarTT(2, 0).And(logic.VarTT(2, 1)), q[0], q[1])
	d2 := n.AddGate("d2", logic.VarTT(2, 0).Xor(logic.VarTT(2, 1)), and01, q[2])
	n.SetLatchData(q[0], d0)
	n.SetLatchData(q[1], d1)
	n.SetLatchData(q[2], d2)
	for i := range q {
		n.AddOutput(fmt.Sprintf("q%d", i), q[i])
	}
	circ := checkMapEquivalent(t, n, 4, 20, 2)
	// Each latch should pack with its driving LUT: exactly 3 blocks.
	if circ.NumBlocks() != 3 {
		t.Errorf("counter mapped to %d blocks, want 3 (FF packing failed)", circ.NumBlocks())
	}
	if circ.NumFFs() != 3 {
		t.Errorf("NumFFs = %d, want 3", circ.NumFFs())
	}
}

func TestMapRespectsK(t *testing.T) {
	b := netlist.NewBuilder("wide")
	ins := b.InputVector("x", 10)
	b.Output("y", b.And(ins...))
	for _, k := range []int{2, 3, 4, 5, 6} {
		c, err := Map(b.N, k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		for i := range c.Blocks {
			if len(c.Blocks[i].Inputs) > k {
				t.Errorf("K=%d: block %d has %d inputs", k, i, len(c.Blocks[i].Inputs))
			}
		}
	}
}

func TestMapDepthNotWorseThanGateDepthOverK(t *testing.T) {
	// A chain of 16 inverters must map to depth ≤ ceil(16 / something) —
	// with K=4 cuts collapsing 4 levels into one LUT level (single-path
	// cone), depth should shrink to ≤ 16 but also collapse buffers.
	b := netlist.NewBuilder("chain")
	x := b.Input("x")
	s := x
	for i := 0; i < 16; i++ {
		s = b.Not(s)
	}
	b.Output("y", s)
	c, err := Map(b.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Whole chain is a single-input function: one LUT suffices.
	if c.NumBlocks() != 1 {
		t.Errorf("inverter chain mapped to %d LUTs, want 1", c.NumBlocks())
	}
}

func TestMapDirectPIToPO(t *testing.T) {
	n := netlist.New("wire")
	x := n.AddInput("x")
	n.AddOutput("y", x)
	c, err := Map(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumBlocks() != 0 {
		t.Errorf("PI->PO mapped to %d blocks, want 0", c.NumBlocks())
	}
	if c.POs[0].Src.Kind != lutnet.SrcPI {
		t.Errorf("PO source = %v, want PI", c.POs[0].Src)
	}
}

func TestMapConstantOutput(t *testing.T) {
	b := netlist.NewBuilder("konst")
	b.Output("y", b.Const(true))
	c, err := Map(b.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := lutnet.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	if out := sim.Step(map[string]bool{}); !out["y"] {
		t.Error("constant-1 output mapped to 0")
	}
}

func TestMapRejectsOverwideGate(t *testing.T) {
	b := netlist.NewBuilder("over")
	ins := b.InputVector("x", 6)
	fn := logic.ConstTT(6, false).Not() // 6-input gate
	id := b.N.AddGate("wide", fn, ins...)
	b.Output("y", id)
	if _, err := Map(b.N, 4); err == nil {
		t.Fatal("expected error for 6-input gate with K=4")
	}
	if _, err := Map(b.N, 6); err != nil {
		t.Fatalf("K=6 should accept 6-input gate: %v", err)
	}
}

func TestMapSharedLatchSourceNotAbsorbed(t *testing.T) {
	// A LUT feeding both a latch and a PO cannot be packed into the latch
	// block (the block output would be Q, losing the combinational value).
	b := netlist.NewBuilder("shared")
	x := b.Input("x")
	y := b.Input("y")
	g := b.And(x, y)
	q := b.Latch(g, false)
	b.Output("comb", g)
	b.Output("reg", q)
	circ := checkMapEquivalent(t, b.N, 4, 30, 3)
	if circ.NumBlocks() != 2 {
		t.Errorf("blocks = %d, want 2 (AND LUT + pass-through FF)", circ.NumBlocks())
	}
}

func TestMapRandomNetlists(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := netlist.NewBuilder(fmt.Sprintf("r%d", seed))
		sigs := b.InputVector("in", 6)
		for i := 0; i < 80; i++ {
			x := sigs[rng.Intn(len(sigs))]
			y := sigs[rng.Intn(len(sigs))]
			z := sigs[rng.Intn(len(sigs))]
			var s int
			switch rng.Intn(6) {
			case 0:
				s = b.And(x, y)
			case 1:
				s = b.Or(x, y)
			case 2:
				s = b.Xor(x, y)
			case 3:
				s = b.Not(x)
			case 4:
				s = b.Mux(x, y, z)
			default:
				s = b.Latch(x, rng.Intn(2) == 0)
			}
			sigs = append(sigs, s)
		}
		for i := 0; i < 6; i++ {
			b.Output(fmt.Sprintf("out[%d]", i), sigs[len(sigs)-1-i])
		}
		checkMapEquivalent(t, b.N, 4, 50, seed+1000)
	}
}

func TestMapAfterSynthEquivalent(t *testing.T) {
	// The full front-end: builder -> synth.Optimize -> techmap.Map.
	b := netlist.NewBuilder("front")
	a := b.InputVector("a", 5)
	c := b.InputVector("b", 5)
	sum := b.RippleAdd(a, c)
	reg := b.RegisterVector(sum)
	b.OutputVector("s", reg)
	opt := synth.Optimize(b.N)
	circ := checkMapEquivalent(t, opt, 4, 60, 4)
	if err := circ.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNetsConsistency(t *testing.T) {
	b := netlist.NewBuilder("nets")
	x := b.Input("x")
	y := b.Input("y")
	g := b.And(x, y)
	b.Output("o1", g)
	b.Output("o2", g)
	c, err := Map(b.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	nets := c.Nets()
	totalPins := 0
	poSinks := 0
	for _, nt := range nets {
		totalPins += len(nt.BlockIn)
		poSinks += len(nt.POSinks)
	}
	if poSinks != 2 {
		t.Errorf("PO sinks = %d, want 2", poSinks)
	}
	wantPins := 0
	for i := range c.Blocks {
		wantPins += len(c.Blocks[i].Inputs)
	}
	if totalPins != wantPins {
		t.Errorf("net pin total %d != block input total %d", totalPins, wantPins)
	}
}
