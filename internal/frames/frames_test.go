package frames

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/merge"
	"repro/internal/mode"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/techmap"
	"repro/internal/troute"
)

func TestPartitionCoversEveryBit(t *testing.T) {
	a := arch.New(4, 4, 6)
	g := arch.BuildGraph(a)
	p := NewPartition(g, 32)
	seenFrames := map[int]bool{}
	for bit := int32(0); int(bit) < g.NumRoutingBits; bit++ {
		f := p.FrameOf(bit)
		if f < 0 || f >= p.NumFrames {
			t.Fatalf("bit %d in frame %d of %d", bit, f, p.NumFrames)
		}
		seenFrames[f] = true
	}
	if len(seenFrames) != p.NumFrames {
		t.Errorf("%d frames referenced, %d declared", len(seenFrames), p.NumFrames)
	}
}

func TestFrameSizeRespected(t *testing.T) {
	a := arch.New(4, 4, 6)
	g := arch.BuildGraph(a)
	p := NewPartition(g, 16)
	count := map[int]int{}
	for bit := int32(0); int(bit) < g.NumRoutingBits; bit++ {
		count[p.FrameOf(bit)]++
	}
	for f, n := range count {
		if n > 16 {
			t.Fatalf("frame %d holds %d bits > size 16", f, n)
		}
	}
}

func TestTouchedFrames(t *testing.T) {
	a := arch.New(3, 3, 4)
	g := arch.BuildGraph(a)
	p := NewPartition(g, 8)
	if got := p.TouchedFrames(nil); got != 0 {
		t.Errorf("empty set touches %d frames", got)
	}
	// A single bit touches exactly one frame.
	if got := p.TouchedFrames([]int32{0}); got != 1 {
		t.Errorf("one bit touches %d frames", got)
	}
	// All bits touch all frames.
	var all []int32
	for bit := int32(0); int(bit) < g.NumRoutingBits; bit++ {
		all = append(all, bit)
	}
	if got := p.TouchedFrames(all); got != p.NumFrames {
		t.Errorf("all bits touch %d of %d frames", got, p.NumFrames)
	}
}

func TestFrameSpeedupWindow(t *testing.T) {
	// End-to-end: frame-level DCS speed-up must sit between 1 and the
	// bit-level factor, in the spirit of the paper's 4x-20x window.
	mk := func(seed int64) *lutnet.Circuit {
		rng := rand.New(rand.NewSource(seed))
		b := netlist.NewBuilder(fmt.Sprintf("m%d", seed))
		sigs := b.InputVector("in", 4)
		for i := 0; i < 35; i++ {
			x := sigs[rng.Intn(len(sigs))]
			y := sigs[rng.Intn(len(sigs))]
			switch rng.Intn(4) {
			case 0:
				sigs = append(sigs, b.And(x, y))
			case 1:
				sigs = append(sigs, b.Or(x, y))
			case 2:
				sigs = append(sigs, b.Xor(x, y))
			default:
				sigs = append(sigs, b.Latch(x, false))
			}
		}
		for i := 0; i < 3; i++ {
			b.Output(fmt.Sprintf("o[%d]", i), sigs[len(sigs)-1-i])
		}
		c, err := techmap.Map(b.N, 4)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	modes := []*lutnet.Circuit{mk(51), mk(52)}
	maxB, maxIO := 0, 0
	for _, c := range modes {
		if c.NumBlocks() > maxB {
			maxB = c.NumBlocks()
		}
		if io := c.NumPIs() + len(c.POs); io > maxIO {
			maxIO = io
		}
	}
	side := arch.MinGridForBlocks(maxB, maxIO, 1.2)
	a := arch.New(side, side, 12)
	g := arch.BuildGraph(a)
	mres, err := merge.CombinedPlace("fr", modes, a, merge.Options{Seed: 1, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := troute.RouteTunable(g, mres.Tunable, mres.LUTSite, mres.PadSite, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(g, 64, nil, tr.BitModes, 2)
	if rep.TotalFrames <= 0 || rep.ParamFrames <= 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
	if rep.ParamFrames > rep.TotalFrames {
		t.Fatalf("touched frames exceed total: %+v", rep)
	}
	bitSpeedup := float64(g.NumRoutingBits) / float64(tr.ParamRoutingBits)
	if rep.SpeedupDCS < 1 || rep.SpeedupDCS > bitSpeedup+1e-9 {
		t.Errorf("frame speedup %.2f outside [1, bit-level %.2f]", rep.SpeedupDCS, bitSpeedup)
	}
}

func TestParameterisedFramesIgnoresStatic(t *testing.T) {
	a := arch.New(3, 3, 4)
	g := arch.BuildGraph(a)
	p := NewPartition(g, 8)
	bm := map[int32]mode.Set{
		0: mode.All(2),    // static
		1: mode.Single(0), // parameterised
	}
	if got := p.ParameterisedFrames(bm, 2); got != 1 {
		t.Errorf("ParameterisedFrames = %d, want 1", got)
	}
}
