// Package frames models configuration frames — the reconfiguration
// granularity of commercial FPGAs, where bits are written in column-wise
// groups rather than individually. The paper's §IV-C1 names this as the
// next step: "the reconfiguration granularity is a collection of bits
// called a frame. LUTs and routing memory cells reside in different
// frames... By reconfiguring only these frames we can further reduce
// reconfiguration time. Given the analysis above we expect the speed up of
// routing reconfiguration time to be roughly between 4× and 20×."
//
// The model groups the region's routing bits into frames by column (the
// geometry commercial devices use); a mode switch must rewrite every frame
// containing at least one bit whose value changes. Frame-level speed-up
// therefore falls between the region-based factor (rewriting everything)
// and the pure bit-level factor, exactly the 4×–20× window the paper
// predicts.
package frames

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/mode"
)

// Partition maps every routing configuration bit of a region to a frame.
type Partition struct {
	FrameSize int
	// frameOf[bit] is the frame index of a routing bit.
	frameOf []int32
	// NumFrames is the total number of routing frames.
	NumFrames int
}

// DefaultFrameSize mirrors the order of magnitude of commercial devices
// relative to our bit model (a Virtex-II frame configures one column
// slice).
const DefaultFrameSize = 64

// NewPartition groups the routing bits by column, then chops each column
// into frames of frameSize bits. Bits are localised at the X coordinate of
// the switch's driven node, matching the column-oriented layout of real
// configuration memories.
func NewPartition(g *arch.Graph, frameSize int) *Partition {
	if frameSize <= 0 {
		frameSize = DefaultFrameSize
	}
	p := &Partition{FrameSize: frameSize, frameOf: make([]int32, g.NumRoutingBits)}
	for i := range p.frameOf {
		p.frameOf[i] = -1
	}

	// Locate every bit: iterate all edges once; a bit's column is the X of
	// its target node (bidirectional switches see both directions; min X
	// wins for determinism).
	colOf := make([]int16, g.NumRoutingBits)
	for i := range colOf {
		colOf[i] = -1
	}
	for n := int32(0); n < int32(g.NumNodes()); n++ {
		bits := g.EdgeBits(n)
		tos := g.Edges(n)
		for i, bit := range bits {
			if bit < 0 {
				continue
			}
			x := g.Nodes[tos[i]].X
			if colOf[bit] < 0 || x < colOf[bit] {
				colOf[bit] = x
			}
		}
	}

	// Stable order: by (column, bit id); then chop into frames.
	order := make([]int32, g.NumRoutingBits)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if colOf[order[i]] != colOf[order[j]] {
			return colOf[order[i]] < colOf[order[j]]
		}
		return order[i] < order[j]
	})
	frame := int32(0)
	inFrame := 0
	lastCol := int16(-2)
	for _, bit := range order {
		if colOf[bit] != lastCol || inFrame == frameSize {
			if lastCol != -2 {
				frame++
			}
			inFrame = 0
			lastCol = colOf[bit]
		}
		p.frameOf[bit] = frame
		inFrame++
	}
	p.NumFrames = int(frame) + 1
	return p
}

// FrameOf returns the frame of a routing bit.
func (p *Partition) FrameOf(bit int32) int { return int(p.frameOf[bit]) }

// TouchedFrames counts the frames containing at least one of the given
// bits.
func (p *Partition) TouchedFrames(bits []int32) int {
	seen := map[int32]bool{}
	for _, b := range bits {
		seen[p.frameOf[b]] = true
	}
	return len(seen)
}

// ParameterisedFrames counts the frames a DCS mode switch must rewrite:
// those containing at least one routing bit whose value is a non-constant
// function of the mode.
func (p *Partition) ParameterisedFrames(bitModes map[int32]mode.Set, numModes int) int {
	all := mode.All(numModes)
	var bits []int32
	for bit, act := range bitModes {
		if act != all {
			bits = append(bits, bit)
		}
	}
	return p.TouchedFrames(bits)
}

// Report summarises frame-level reconfiguration for one implementation
// comparison.
type Report struct {
	FrameSize   int
	TotalFrames int
	// DiffFrames: frames containing at least one routing bit that differs
	// between the MDR configurations of the modes.
	DiffFrames int
	// ParamFrames: frames containing at least one parameterised bit of the
	// DCS configuration.
	ParamFrames int
	// SpeedupRegion = TotalFrames / DiffFrames (MDR rewrites every frame).
	SpeedupDiff float64
	// SpeedupDCS = TotalFrames / ParamFrames.
	SpeedupDCS float64
}

// Analyze builds the frame report from bit-level data: the set of routing
// bits that differ across the modes' MDR configurations, and the
// parameterised-bit activation map of TRoute.
func Analyze(g *arch.Graph, frameSize int, diffBits []int32, bitModes map[int32]mode.Set, numModes int) Report {
	p := NewPartition(g, frameSize)
	r := Report{
		FrameSize:   p.FrameSize,
		TotalFrames: p.NumFrames,
		DiffFrames:  p.TouchedFrames(diffBits),
		ParamFrames: p.ParameterisedFrames(bitModes, numModes),
	}
	if r.DiffFrames > 0 {
		r.SpeedupDiff = float64(r.TotalFrames) / float64(r.DiffFrames)
	}
	if r.ParamFrames > 0 {
		r.SpeedupDCS = float64(r.TotalFrames) / float64(r.ParamFrames)
	}
	return r
}
