// Package lutnet defines the mapped LUT-circuit representation shared by
// the placer, the router and the multi-mode merge step: a network of logic
// blocks (one K-LUT plus an optional output flip-flop, matching the
// 4lut_sanitized.arch logic block of VPR) connected to primary I/O pads.
package lutnet

import (
	"fmt"

	"repro/internal/logic"
)

// SourceKind discriminates signal sources in a LUT circuit.
type SourceKind int

const (
	// SrcPI is a primary-input pad.
	SrcPI SourceKind = iota
	// SrcBlock is the output of a logic block.
	SrcBlock
)

// Source identifies the driver of a signal: a primary input (by PI index)
// or a logic block output (by block index).
type Source struct {
	Kind SourceKind
	Idx  int
}

func (s Source) String() string {
	if s.Kind == SrcPI {
		return fmt.Sprintf("pi%d", s.Idx)
	}
	return fmt.Sprintf("blk%d", s.Idx)
}

// Block is one logic block: a K-LUT over its inputs with an optional
// flip-flop on the output (the block output is Q when HasFF is set).
type Block struct {
	Name   string
	TT     logic.TT // over len(Inputs) variables (≤ K)
	Inputs []Source
	HasFF  bool
	Init   bool // FF initial state
}

// PO is a named primary output and its driving source.
type PO struct {
	Name string
	Src  Source
}

// Circuit is a technology-mapped LUT circuit.
type Circuit struct {
	Name    string
	K       int
	PINames []string
	Blocks  []Block
	POs     []PO
}

// NumPIs returns the number of primary inputs.
func (c *Circuit) NumPIs() int { return len(c.PINames) }

// NumBlocks returns the number of logic blocks.
func (c *Circuit) NumBlocks() int { return len(c.Blocks) }

// NumFFs returns the number of blocks with a registered output.
func (c *Circuit) NumFFs() int {
	n := 0
	for i := range c.Blocks {
		if c.Blocks[i].HasFF {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: arities, source ranges, and
// acyclicity of the combinational part (paths through FF outputs are
// sequential and may loop).
func (c *Circuit) Validate() error {
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if len(b.Inputs) != b.TT.NumVars {
			return fmt.Errorf("block %d (%s): %d inputs but %d-var LUT", i, b.Name, len(b.Inputs), b.TT.NumVars)
		}
		if len(b.Inputs) > c.K {
			return fmt.Errorf("block %d (%s): %d inputs exceed K=%d", i, b.Name, len(b.Inputs), c.K)
		}
		for _, s := range b.Inputs {
			if err := c.checkSource(s); err != nil {
				return fmt.Errorf("block %d (%s): %w", i, b.Name, err)
			}
		}
	}
	for _, po := range c.POs {
		if err := c.checkSource(po.Src); err != nil {
			return fmt.Errorf("output %s: %w", po.Name, err)
		}
	}
	// Combinational cycle check: DFS over non-FF block edges.
	state := make([]int8, len(c.Blocks))
	var visit func(int) error
	visit = func(i int) error {
		switch state[i] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("combinational cycle through block %d (%s)", i, c.Blocks[i].Name)
		}
		state[i] = 1
		for _, s := range c.Blocks[i].Inputs {
			if s.Kind == SrcBlock && !c.Blocks[s.Idx].HasFF {
				if err := visit(s.Idx); err != nil {
					return err
				}
			}
		}
		state[i] = 2
		return nil
	}
	for i := range c.Blocks {
		if err := visit(i); err != nil {
			return err
		}
	}
	return nil
}

func (c *Circuit) checkSource(s Source) error {
	switch s.Kind {
	case SrcPI:
		if s.Idx < 0 || s.Idx >= len(c.PINames) {
			return fmt.Errorf("PI index %d out of range", s.Idx)
		}
	case SrcBlock:
		if s.Idx < 0 || s.Idx >= len(c.Blocks) {
			return fmt.Errorf("block index %d out of range", s.Idx)
		}
	default:
		return fmt.Errorf("bad source kind %d", s.Kind)
	}
	return nil
}

// Net is a signal source together with all of its sinks.
type Net struct {
	Src     Source
	BlockIn []BlockPin // block input pins fed by this net
	POSinks []int      // indices into POs
}

// BlockPin identifies one input pin of one block.
type BlockPin struct {
	Block int
	Pin   int
}

// Nets groups all connections by driving source. Sources with no sinks are
// omitted. Order: PIs first (by index), then blocks (by index).
func (c *Circuit) Nets() []Net {
	piNet := make(map[int]*Net)
	blkNet := make(map[int]*Net)
	get := func(s Source) *Net {
		m := blkNet
		if s.Kind == SrcPI {
			m = piNet
		}
		if n, ok := m[s.Idx]; ok {
			return n
		}
		n := &Net{Src: s}
		m[s.Idx] = n
		return n
	}
	for bi := range c.Blocks {
		for pin, s := range c.Blocks[bi].Inputs {
			n := get(s)
			n.BlockIn = append(n.BlockIn, BlockPin{Block: bi, Pin: pin})
		}
	}
	for pi, po := range c.POs {
		n := get(po.Src)
		n.POSinks = append(n.POSinks, pi)
	}
	var nets []Net
	for i := 0; i < len(c.PINames); i++ {
		if n, ok := piNet[i]; ok {
			nets = append(nets, *n)
		}
	}
	for i := 0; i < len(c.Blocks); i++ {
		if n, ok := blkNet[i]; ok {
			nets = append(nets, *n)
		}
	}
	return nets
}

// Simulator evaluates a LUT circuit cycle by cycle (used for equivalence
// checking against the pre-mapping netlist).
type Simulator struct {
	c     *Circuit
	order []int // block evaluation order (combinational topo)
	val   []bool
	state []bool
	piVal []bool
}

// NewSimulator builds a simulator; FF state starts at each block's Init.
func NewSimulator(c *Circuit) (*Simulator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		c:     c,
		val:   make([]bool, len(c.Blocks)),
		state: make([]bool, len(c.Blocks)),
		piVal: make([]bool, len(c.PINames)),
	}
	// Topological order over combinational edges.
	done := make([]bool, len(c.Blocks))
	var visit func(int)
	visit = func(i int) {
		if done[i] {
			return
		}
		done[i] = true
		for _, src := range c.Blocks[i].Inputs {
			if src.Kind == SrcBlock && !c.Blocks[src.Idx].HasFF {
				visit(src.Idx)
			}
		}
		s.order = append(s.order, i)
	}
	for i := range c.Blocks {
		visit(i)
	}
	s.Reset()
	return s, nil
}

// Reset restores all flip-flops to their initial state.
func (s *Simulator) Reset() {
	for i := range s.c.Blocks {
		s.state[i] = s.c.Blocks[i].Init
	}
}

// Step applies one clock cycle with the given PI values (by PI name) and
// returns the PO values by name.
func (s *Simulator) Step(inputs map[string]bool) map[string]bool {
	for i, nm := range s.c.PINames {
		s.piVal[i] = inputs[nm]
	}
	srcVal := func(src Source) bool {
		if src.Kind == SrcPI {
			return s.piVal[src.Idx]
		}
		if s.c.Blocks[src.Idx].HasFF {
			return s.state[src.Idx]
		}
		return s.val[src.Idx]
	}
	lutOut := make([]bool, len(s.c.Blocks))
	for _, i := range s.order {
		b := &s.c.Blocks[i]
		var row uint
		for pin, src := range b.Inputs {
			if srcVal(src) {
				row |= 1 << uint(pin)
			}
		}
		lutOut[i] = b.TT.Eval(row)
		if !b.HasFF {
			s.val[i] = lutOut[i]
		}
	}
	out := make(map[string]bool, len(s.c.POs))
	for _, po := range s.c.POs {
		out[po.Name] = srcVal(po.Src)
	}
	for i := range s.c.Blocks {
		if s.c.Blocks[i].HasFF {
			s.state[i] = lutOut[i]
		}
	}
	return out
}
