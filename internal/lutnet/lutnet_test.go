package lutnet

import (
	"testing"

	"repro/internal/logic"
)

// tiny builds a 2-block circuit: blk0 = a AND b (registered), blk1 = blk0
// OR a; outputs o1 = blk1, o2 = blk0.
func tiny() *Circuit {
	return &Circuit{
		Name:    "tiny",
		K:       4,
		PINames: []string{"a", "b"},
		Blocks: []Block{
			{
				Name: "andreg",
				TT:   logic.VarTT(2, 0).And(logic.VarTT(2, 1)),
				Inputs: []Source{
					{Kind: SrcPI, Idx: 0},
					{Kind: SrcPI, Idx: 1},
				},
				HasFF: true,
			},
			{
				Name: "or",
				TT:   logic.VarTT(2, 0).Or(logic.VarTT(2, 1)),
				Inputs: []Source{
					{Kind: SrcBlock, Idx: 0},
					{Kind: SrcPI, Idx: 0},
				},
			},
		},
		POs: []PO{
			{Name: "o1", Src: Source{Kind: SrcBlock, Idx: 1}},
			{Name: "o2", Src: Source{Kind: SrcBlock, Idx: 0}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsArityMismatch(t *testing.T) {
	c := tiny()
	c.Blocks[0].Inputs = c.Blocks[0].Inputs[:1]
	if err := c.Validate(); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestValidateRejectsBadSource(t *testing.T) {
	c := tiny()
	c.Blocks[1].Inputs[0] = Source{Kind: SrcBlock, Idx: 99}
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestValidateRejectsCombinationalCycle(t *testing.T) {
	c := tiny()
	c.Blocks[0].HasFF = false
	c.Blocks[0].Inputs[0] = Source{Kind: SrcBlock, Idx: 1} // 0 <-> 1 loop
	if err := c.Validate(); err == nil {
		t.Fatal("combinational cycle accepted")
	}
}

func TestSequentialLoopAllowed(t *testing.T) {
	c := tiny()
	// Loop through the FF: blk0 input from blk1, blk1 input from blk0
	// (blk0 has a FF, so the cycle is sequential).
	c.Blocks[0].Inputs[0] = Source{Kind: SrcBlock, Idx: 1}
	if err := c.Validate(); err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
}

func TestSimulatorBehaviour(t *testing.T) {
	sim, err := NewSimulator(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 1: a=1,b=1. FF still 0 -> o2=0, o1 = 0 OR 1 = 1.
	out := sim.Step(map[string]bool{"a": true, "b": true})
	if out["o2"] || !out["o1"] {
		t.Fatalf("cycle 1: %v", out)
	}
	// Cycle 2: a=0,b=0. FF now 1 -> o2=1, o1 = 1 OR 0 = 1.
	out = sim.Step(map[string]bool{"a": false, "b": false})
	if !out["o2"] || !out["o1"] {
		t.Fatalf("cycle 2: %v", out)
	}
	// Cycle 3: FF captured 0 -> o2=0, o1=0.
	out = sim.Step(map[string]bool{"a": false, "b": false})
	if out["o2"] || out["o1"] {
		t.Fatalf("cycle 3: %v", out)
	}
}

func TestSimulatorReset(t *testing.T) {
	c := tiny()
	c.Blocks[0].Init = true
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	out := sim.Step(map[string]bool{"a": false, "b": false})
	if !out["o2"] {
		t.Fatal("init=true not honoured")
	}
	sim.Step(map[string]bool{"a": false, "b": false})
	sim.Reset()
	out = sim.Step(map[string]bool{"a": false, "b": false})
	if !out["o2"] {
		t.Fatal("Reset did not restore init state")
	}
}

func TestNetsGrouping(t *testing.T) {
	c := tiny()
	nets := c.Nets()
	// Nets: a (feeds blk0 pin0, blk1 pin1), b (feeds blk0 pin1),
	// blk0 (feeds blk1 pin0 and o2), blk1 (feeds o1). Total 4.
	if len(nets) != 4 {
		t.Fatalf("nets = %d, want 4", len(nets))
	}
	bySrc := map[Source]Net{}
	for _, n := range nets {
		bySrc[n.Src] = n
	}
	aNet := bySrc[Source{Kind: SrcPI, Idx: 0}]
	if len(aNet.BlockIn) != 2 || len(aNet.POSinks) != 0 {
		t.Fatalf("net a: %+v", aNet)
	}
	b0 := bySrc[Source{Kind: SrcBlock, Idx: 0}]
	if len(b0.BlockIn) != 1 || len(b0.POSinks) != 1 {
		t.Fatalf("net blk0: %+v", b0)
	}
}

func TestCounts(t *testing.T) {
	c := tiny()
	if c.NumPIs() != 2 || c.NumBlocks() != 2 || c.NumFFs() != 1 {
		t.Fatalf("counts: PIs=%d blocks=%d FFs=%d", c.NumPIs(), c.NumBlocks(), c.NumFFs())
	}
}

func TestZeroInputBlock(t *testing.T) {
	c := &Circuit{
		Name: "const", K: 4,
		Blocks: []Block{{Name: "one", TT: logic.ConstTT(0, true)}},
		POs:    []PO{{Name: "y", Src: Source{Kind: SrcBlock, Idx: 0}}},
	}
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	if out := sim.Step(nil); !out["y"] {
		t.Fatal("constant block broken")
	}
}
