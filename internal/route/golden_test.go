package route

import (
	"errors"
	"testing"
)

// hashResult folds a complete routing result into one FNV-1a value: every
// tree's nodes, topological edges and mode masks, in net order. Any change
// to any routed path changes the hash.
func hashResult(res *Result) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, t := range res.Trees {
		mix(uint64(len(t.Nodes)))
		for i, n := range t.Nodes {
			mix(uint64(uint32(n)))
			mix(t.NodeMasks[i])
		}
		mix(uint64(len(t.Edges)))
		for _, e := range t.Edges {
			mix(uint64(uint32(e.From))<<32 | uint64(uint32(e.To)))
		}
	}
	mix(uint64(res.Iterations))
	return h
}

// goldenRouted pins the exact routed results of three seeded congested
// multi-mode workloads, recorded before the node-major SoA layout swap.
// The flat congestion arrays, the precomputed base costs and the SoA
// coordinate lower bound must keep every nodeCost evaluation bit-identical
// (same summation order over m = 0..ModeCount-1), so the routed trees —
// and therefore these hashes — must never move. A mismatch means the
// layout change altered results and would require artifact version bumps.
var goldenRouted = map[int64]uint64{
	1: 0xb720d85285557f6d,
	2: 0xccb0ede20548366d,
	5: 0xd90a30a875a19468,
}

// TestRoutedResultGoldenHashes asserts byte-identical routed results
// across the SoA layout swap, at every worker count the determinism
// contract names (-routej 1/2/8).
func TestRoutedResultGoldenHashes(t *testing.T) {
	for seed, want := range goldenRouted {
		g, nets, opt := randomWorkload(seed)
		for _, workers := range []int{1, 2, 8} {
			o := opt
			o.Workers = workers
			res, err := Route(g, nets, o)
			if err != nil {
				var un *ErrUnroutable
				if errors.As(err, &un) {
					t.Fatalf("seed %d workers %d: workload became unroutable: %v", seed, workers, err)
				}
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if got := hashResult(res); got != want {
				t.Errorf("seed %d workers %d: routed result hash %#x, golden %#x — routed results moved",
					seed, workers, got, want)
			}
		}
	}
}
