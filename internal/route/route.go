// Package route implements a connection-based PathFinder router over the
// routing-resource graph of package arch: negotiated congestion with
// present and history costs, A*-accelerated Dijkstra per connection, and
// per-net routing trees recording the programmable switches used (the
// routing configuration bits).
//
// The engine is incremental: every net is decomposed into source→sink
// connections, each holding its complete source-rooted path, and a
// negotiation iteration rips up and reroutes only the connections that
// cross congested nodes (plus a small history-driven set) instead of the
// whole netlist. A net's tree is the union of its connections' paths —
// new connections attach to the existing tree, so partial reroutes reuse
// everything that already converged.
//
// Iterations are parallel and deterministic: connections are processed in
// fixed-size batches; a bounded worker pool routes a batch against frozen
// congestion state, and results are committed serially in canonical net
// order. A commit that would newly overuse a node another net claimed in
// the same batch is requeued and rerouted serially against live state.
// Because batch composition and commit order never depend on the worker
// count, the same seed yields byte-identical routings at any Workers
// value — the same rule mmbench applies to its -j flag.
//
// The routing-resource graph itself is never written, so one graph can be
// shared by any number of concurrently running routers.
package route

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/obs"
)

// Net is one signal to route from a SOURCE node to one or more SINK nodes.
// ModeMask is the set of modes in which the net is active (Tunable
// routing): nets with disjoint masks may share routing resources, because
// the modes are mutually exclusive in time. A zero mask means "active in
// every mode".
type Net struct {
	Name     string
	Source   int32
	Sinks    []int32
	ModeMask uint64
	// SinkMasks optionally refines ModeMask per sink (parallel to Sinks):
	// the branch reaching a sink only occupies that sink's modes, so two
	// mode-disjoint connections can share a block pin. Nil means every
	// sink inherits ModeMask.
	SinkMasks []uint64
}

// Edge is one directed RRG edge used by a route.
type Edge struct {
	From, To int32
}

// Tree is the routing of one net: the set of nodes and directed edges used.
// NodeMasks (parallel to Nodes) records the mode mask each node serves —
// the union of the masks of the sinks reached through it.
//
// Edges are stored in discovery order, which is topological: the edge into
// a node always precedes every edge out of it. Consumers (troute's
// per-mode pruning) rely on this to compute subtree properties in one
// reverse sweep.
type Tree struct {
	Nodes     []int32
	Edges     []Edge
	NodeMasks []uint64
}

// Stats describes the work one Route call performed.
type Stats struct {
	// Iterations is the number of negotiation iterations executed.
	Iterations int
	// Connections is the number of source→sink connections in the netlist.
	Connections int
	// Rerouted[i] is the number of connections ripped up and rerouted in
	// iteration i+1. Rerouted[0] == Connections on a cold route (a warm
	// start reroutes only the connections its baseline could not seed);
	// later entries shrink as congestion localises.
	Rerouted []int
	// WarmConns is the number of connections seeded intact from
	// Options.Warm baseline trees; WarmNets the number of nets with at
	// least one such connection.
	WarmConns int
	WarmNets  int
	// Requeued counts parallel commits that conflicted and fell back to a
	// serial reroute. Deterministic: conflicts depend on batch composition
	// and commit order, not on worker scheduling.
	Requeued int
	// PeakOveruse is the worst single-mode overuse observed on any node
	// across all iterations.
	PeakOveruse int
	// HeapPushes and NodesVisited count the A* inner loop's work: priority
	// queue improvements (inserts plus decrease-keys) and node expansions
	// across every search, summed over all workers. Each connection's
	// search is a pure function of the congestion state it runs against,
	// so both counts are byte-identical at any Workers value, like the
	// routed trees themselves.
	HeapPushes   int64
	NodesVisited int64
}

// TotalRerouted sums the per-iteration reroute counts.
func (s Stats) TotalRerouted() int {
	t := 0
	for _, n := range s.Rerouted {
		t += n
	}
	return t
}

// Summary is the scalar aggregate of one or more routes' Stats — the one
// place that knows which fields sum and which take the maximum, shared by
// every layer that reports router work (the compile service's JSON, the
// experiment sweep's group artifacts).
type Summary struct {
	Iterations  int
	Connections int
	Rerouted    int
	Requeued    int
	PeakOveruse int
}

// Add folds one route's Stats into the aggregate.
func (a *Summary) Add(s Stats) {
	a.Iterations += s.Iterations
	a.Connections += s.Connections
	a.Rerouted += s.TotalRerouted()
	a.Requeued += s.Requeued
	if s.PeakOveruse > a.PeakOveruse {
		a.PeakOveruse = s.PeakOveruse
	}
}

// Result is a complete routing.
type Result struct {
	Trees []Tree
	// Iterations is the number of PathFinder iterations needed.
	Iterations int
	// Stats details the incremental engine's work.
	Stats Stats
}

// Options tunes the router.
type Options struct {
	MaxIters     int     // default 40
	FirstPresFac float64 // default 0.5
	PresFacMult  float64 // default 1.8
	AccFac       float64 // default 1.0
	AStarFac     float64 // default 1.1
	// ModeCount is the number of modes for Tunable routing: occupancy is
	// tracked per mode, so nets with disjoint mode masks can share wires,
	// pins and sinks — each mode reconfigures the switches for itself.
	// Default 1 (ordinary single-mode routing).
	ModeCount int
	// Workers is the number of goroutines routing each batch of
	// connections (default 1). The result is byte-identical at any value;
	// only the wall clock changes.
	Workers int
	// FullRipUp disables the incremental engine: every connection is
	// ripped up and rerouted on every iteration, as in classic whole-net
	// PathFinder. The baseline for BenchmarkRoute and a debugging aid.
	FullRipUp bool
	// Warm, when non-nil, is parallel to the nets slice and seeds the
	// router from a baseline routing (the ECO warm start): for each
	// non-nil tree, every connection whose sink is reachable from the
	// net's source by walking the tree's edges starts already routed on
	// that path, and only the rest — moved cells, edited nets, seeds
	// crossing overused nodes — are ripped up for negotiation. Trees that
	// no longer fit (different graph, moved source or sink) degrade to a
	// cold route for the affected connections; warm seeding can slow
	// convergence at worst, never change what a successful result means.
	Warm []*Tree
	// Obs, when non-nil, receives the call's Stats as mm_route_* metrics
	// after the negotiation finishes. Observed only at the call boundary —
	// the inner loops never touch it — so a nil registry costs nothing and
	// a live one cannot perturb results. Never hashed into cache keys.
	Obs *obs.Registry
}

func (o *Options) fill() {
	if o.MaxIters == 0 {
		o.MaxIters = 40
	}
	if o.FirstPresFac == 0 {
		o.FirstPresFac = 0.5
	}
	if o.PresFacMult == 0 {
		o.PresFacMult = 1.8
	}
	if o.AccFac == 0 {
		o.AccFac = 1.0
	}
	if o.AStarFac == 0 {
		o.AStarFac = 1.1
	}
	if o.ModeCount == 0 {
		o.ModeCount = 1
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	// More workers than a batch has connections can never help, and each
	// worker owns O(NumNodes) search scratch — clamping bounds the
	// allocation against absurd requests (the knob arrives over the wire
	// via the compile service).
	if o.Workers > batchConns {
		o.Workers = batchConns
	}
}

// ErrUnroutable is returned when congestion cannot be resolved.
type ErrUnroutable struct {
	Overused int
	Iters    int
	Detail   string // description of a few overused nodes
}

func (e *ErrUnroutable) Error() string {
	return fmt.Sprintf("route: %d overused nodes after %d iterations%s", e.Overused, e.Iters, e.Detail)
}

// ErrInvalidNet reports a malformed net specification. The router rejects
// these up front: a SinkMasks slice not parallel to Sinks, or a sink node
// listed twice, would silently corrupt the tree's mode-mask accounting if
// routed (callers that can legitimately hit one sink node from several
// logical pins must dedup, unioning the masks — see troute.BuildNets and
// NetsForPlacedCircuit).
type ErrInvalidNet struct {
	Net    string
	Reason string
}

func (e *ErrInvalidNet) Error() string {
	return fmt.Sprintf("route: net %q: %s", e.Net, e.Reason)
}

// validateNets rejects malformed net specifications before any state is
// built.
func validateNets(nets []Net) error {
	seen := map[int32]int{}
	for i := range nets {
		n := &nets[i]
		if n.SinkMasks != nil && len(n.SinkMasks) != len(n.Sinks) {
			return &ErrInvalidNet{Net: n.Name, Reason: fmt.Sprintf(
				"SinkMasks has %d entries for %d sinks", len(n.SinkMasks), len(n.Sinks))}
		}
		for _, s := range n.Sinks {
			if prev, ok := seen[s]; ok && prev == i {
				return &ErrInvalidNet{Net: n.Name, Reason: fmt.Sprintf(
					"duplicate sink node %d", s)}
			}
			seen[s] = i
		}
	}
	return nil
}

func baseCost(t arch.NodeType) float64 {
	switch t {
	case arch.NodeChanX, arch.NodeChanY:
		return 1.0
	case arch.NodeIPin:
		return 0.95
	case arch.NodeOPin:
		return 1.0
	case arch.NodeSink, arch.NodeSource:
		return 0.0
	}
	return 1.0
}

func capacities(g *arch.Graph) []int16 {
	caps := make([]int16, g.NumNodes())
	k := int16(g.Arch.K)
	for i := range caps {
		n := g.Nodes[i]
		onRing := n.X == 0 || n.Y == 0 || int(n.X) == g.Arch.Width+1 || int(n.Y) == g.Arch.Height+1
		switch n.Type {
		case arch.NodeSink:
			// A CLB sink accepts up to K nets per mode (one per input
			// pin); pad sinks accept one.
			if onRing {
				caps[i] = 1
			} else {
				caps[i] = k
			}
		default:
			caps[i] = 1
		}
	}
	return caps
}

// Route routes all nets, returning per-net trees. The graph is read-only
// throughout; all mutable state is private to this call, so concurrent
// Route calls may share g.
func Route(g *arch.Graph, nets []Net, opt Options) (*Result, error) {
	opt.fill()
	if err := validateNets(nets); err != nil {
		return nil, err
	}
	if opt.Warm != nil && len(opt.Warm) != len(nets) {
		return nil, fmt.Errorf("route: Warm has %d entries for %d nets", len(opt.Warm), len(nets))
	}
	r := newRouter(g, nets, opt)
	res, err := r.run()
	if res != nil {
		observe(opt.Obs, &res.Stats)
	}
	return res, err
}

// observe records one finished route's Stats into the registry. Work
// counters go into histograms (per-call distributions) rather than raw
// counters so a scrape distinguishes "many small routes" from "one huge
// route". Bounds are the shared obs.WorkBuckets, fixed by contract.
func observe(reg *obs.Registry, s *Stats) {
	if reg == nil {
		return
	}
	reg.Counter("mm_route_calls_total", "Route invocations.").Inc()
	reg.Histogram("mm_route_iterations",
		"Negotiation iterations per Route call.", obs.WorkBuckets).
		Observe(float64(s.Iterations))
	rerouted := reg.Histogram("mm_route_rerouted_connections",
		"Connections ripped up and rerouted, per negotiation iteration.", obs.WorkBuckets)
	for _, n := range s.Rerouted {
		rerouted.Observe(float64(n))
	}
	reg.Histogram("mm_route_requeued_connections",
		"Parallel commits that conflicted and fell back to serial reroute, per Route call.",
		obs.WorkBuckets).Observe(float64(s.Requeued))
	reg.Histogram("mm_route_heap_pushes",
		"A* priority-queue pushes and decrease-keys per Route call.", obs.WorkBuckets).
		Observe(float64(s.HeapPushes))
	reg.Histogram("mm_route_nodes_visited",
		"A* node expansions per Route call.", obs.WorkBuckets).
		Observe(float64(s.NodesVisited))
	reg.Histogram("mm_route_warm_connections",
		"Connections seeded intact from a warm baseline, per Route call.", obs.WorkBuckets).
		Observe(float64(s.WarmConns))
}

// WireLength counts the wire-segment nodes of a tree.
func WireLength(g *arch.Graph, t Tree) int {
	n := 0
	for _, node := range t.Nodes {
		if g.Nodes[node].IsWire() {
			n++
		}
	}
	return n
}

// TotalWireLength sums WireLength over all trees.
func TotalWireLength(g *arch.Graph, res *Result) int {
	total := 0
	for _, t := range res.Trees {
		total += WireLength(g, t)
	}
	return total
}

// UsedBits returns the set of routing configuration bits switched on by the
// given trees (bit ids from the architecture graph).
func UsedBits(g *arch.Graph, trees []Tree) map[int32]bool {
	used := map[int32]bool{}
	for _, t := range trees {
		for _, e := range t.Edges {
			bits := g.EdgeBits(e.From)
			for i, to := range g.Edges(e.From) {
				if to == e.To {
					if bits[i] >= 0 {
						used[bits[i]] = true
					}
					break
				}
			}
		}
	}
	return used
}
