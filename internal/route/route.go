// Package route implements a PathFinder negotiated-congestion router over
// the routing-resource graph of package arch: iterative rip-up and reroute
// with present-congestion and history costs, A*-accelerated Dijkstra per
// sink, and per-net routing trees recording the programmable switches used
// (the routing configuration bits).
//
// The inner search is allocation-free in steady state: the priority queue
// is a value-based binary heap and all per-net working state (visited
// costs, backtrace pointers, tree membership, subtree mode masks) lives in
// scratch buffers owned by the router and reused across nets and
// iterations. The routing-resource graph itself is never written, so one
// graph can be shared by any number of concurrently running routers.
package route

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
)

// Net is one signal to route from a SOURCE node to one or more SINK nodes.
// ModeMask is the set of modes in which the net is active (Tunable
// routing): nets with disjoint masks may share routing resources, because
// the modes are mutually exclusive in time. A zero mask means "active in
// every mode".
type Net struct {
	Name     string
	Source   int32
	Sinks    []int32
	ModeMask uint64
	// SinkMasks optionally refines ModeMask per sink (parallel to Sinks):
	// the branch reaching a sink only occupies that sink's modes, so two
	// mode-disjoint connections can share a block pin. Nil means every
	// sink inherits ModeMask.
	SinkMasks []uint64
}

// Edge is one directed RRG edge used by a route.
type Edge struct {
	From, To int32
}

// Tree is the routing of one net: the set of nodes and directed edges used.
// NodeMasks (parallel to Nodes) records the mode mask each node serves —
// the union of the masks of the sinks reached through it.
//
// Edges are stored in discovery order, which is topological: the edge into
// a node always precedes every edge out of it. Consumers (troute's
// per-mode pruning) rely on this to compute subtree properties in one
// reverse sweep.
type Tree struct {
	Nodes     []int32
	Edges     []Edge
	NodeMasks []uint64
}

// Result is a complete routing.
type Result struct {
	Trees []Tree
	// Iterations is the number of PathFinder iterations needed.
	Iterations int
}

// Options tunes the router.
type Options struct {
	MaxIters     int     // default 40
	FirstPresFac float64 // default 0.5
	PresFacMult  float64 // default 1.8
	AccFac       float64 // default 1.0
	AStarFac     float64 // default 1.1
	// ModeCount is the number of modes for Tunable routing: occupancy is
	// tracked per mode, so nets with disjoint mode masks can share wires,
	// pins and sinks — each mode reconfigures the switches for itself.
	// Default 1 (ordinary single-mode routing).
	ModeCount int
}

func (o *Options) fill() {
	if o.MaxIters == 0 {
		o.MaxIters = 40
	}
	if o.FirstPresFac == 0 {
		o.FirstPresFac = 0.5
	}
	if o.PresFacMult == 0 {
		o.PresFacMult = 1.8
	}
	if o.AccFac == 0 {
		o.AccFac = 1.0
	}
	if o.AStarFac == 0 {
		o.AStarFac = 1.1
	}
	if o.ModeCount == 0 {
		o.ModeCount = 1
	}
}

// ErrUnroutable is returned when congestion cannot be resolved.
type ErrUnroutable struct {
	Overused int
	Iters    int
	Detail   string // description of a few overused nodes
}

func (e *ErrUnroutable) Error() string {
	return fmt.Sprintf("route: %d overused nodes after %d iterations%s", e.Overused, e.Iters, e.Detail)
}

// pqItem is one priority-queue entry. Items are values, not pointers: the
// heap is a plain slice that is reset (not freed) between searches, so a
// search allocates nothing once the slice has grown to its working size.
type pqItem struct {
	node int32
	cost float64 // path cost so far
	est  float64 // cost + A* lower bound
}

// less orders the heap by estimated total cost, breaking ties by node id so
// the search (and therefore the whole routing) is deterministic.
func (a pqItem) less(b pqItem) bool {
	if a.est != b.est {
		return a.est < b.est
	}
	return a.node < b.node
}

// router carries the PathFinder state. Occupancy is per mode: a node is
// overused only if some single mode oversubscribes it, so nets of disjoint
// mode masks share resources freely.
type router struct {
	g    *arch.Graph
	opt  Options
	cap  []int16
	occ  [][]int16   // [mode][node]
	hist [][]float64 // [mode][node]: congestion history is per mode, so
	// contention in one mode does not repel nets of other modes from
	// resources they could legally share
	presFac  float64
	curMask  uint64 // mask of the branch being routed
	histMask uint64 // mask for history pricing (see nodeCost)
	allMask  uint64

	// Reusable scratch, sized to the graph once per Route call. visited and
	// nodeMask are kept clean between uses via touched lists so resetting
	// costs O(touched), not O(nodes).
	heap      []pqItem
	prev      []int32   // backtrace pointer per node
	visited   []float64 // best path cost per node (MaxFloat64 = unvisited)
	touched   []int32   // nodes whose visited entry must be reset
	path      []int32   // backtraced tree→sink path of the last search
	inTree    []bool    // membership of the net currently being routed
	nodeMask  []uint64  // subtree mode-mask accumulator per node
	sinkOrder []int     // per-net sink visiting order
}

func baseCost(t arch.NodeType) float64 {
	switch t {
	case arch.NodeChanX, arch.NodeChanY:
		return 1.0
	case arch.NodeIPin:
		return 0.95
	case arch.NodeOPin:
		return 1.0
	case arch.NodeSink, arch.NodeSource:
		return 0.0
	}
	return 1.0
}

func capacities(g *arch.Graph) []int16 {
	caps := make([]int16, g.NumNodes())
	k := int16(g.Arch.K)
	for i := range caps {
		n := g.Nodes[i]
		onRing := n.X == 0 || n.Y == 0 || int(n.X) == g.Arch.Width+1 || int(n.Y) == g.Arch.Height+1
		switch n.Type {
		case arch.NodeSink:
			// A CLB sink accepts up to K nets per mode (one per input
			// pin); pad sinks accept one.
			if onRing {
				caps[i] = 1
			} else {
				caps[i] = k
			}
		default:
			caps[i] = 1
		}
	}
	return caps
}

func (r *router) nodeCost(n int32) float64 {
	b := baseCost(r.g.Nodes[n].Type)
	// Worst overuse over the modes the current branch is active in;
	// history over histMask. For ≥3 modes histMask is the whole net's
	// mask: the prefix shared by a net's branches carries the union of
	// their modes, so a branch that prices only its own modes can keep
	// re-choosing a prefix whose congestion lives in a sibling branch's
	// mode — the history term is what breaks that deadlock.
	var worst int16
	var h float64
	for m := 0; m < len(r.occ); m++ {
		if r.histMask>>uint(m)&1 == 1 && r.hist[m][n] > h {
			h = r.hist[m][n]
		}
		if r.curMask>>uint(m)&1 == 0 {
			continue
		}
		if o := r.occ[m][n]; o > worst {
			worst = o
		}
	}
	over := float64(worst + 1 - r.cap[n])
	pres := 1.0
	if over > 0 {
		pres += r.presFac * over
	}
	return b * (1 + h) * pres
}

// adjustOcc adds delta to the occupancy of node n in every mode of mask.
func (r *router) adjustOcc(n int32, mask uint64, delta int16) {
	for m := 0; m < len(r.occ); m++ {
		if mask>>uint(m)&1 == 1 {
			r.occ[m][n] += delta
		}
	}
}

// maskOf normalises a net's mode mask.
func (r *router) maskOf(n *Net) uint64 {
	if n.ModeMask == 0 {
		return r.allMask
	}
	return n.ModeMask & r.allMask
}

// lowerBound estimates the remaining cost from node n to the target sink
// (Manhattan distance in channel units; admissible for unit-length wires).
func (r *router) lowerBound(n, target int32) float64 {
	a, b := r.g.Nodes[n], r.g.Nodes[target]
	dx := math.Abs(float64(a.X - b.X))
	dy := math.Abs(float64(a.Y - b.Y))
	return (dx + dy) * r.opt.AStarFac
}

// heapPush inserts a value item, sifting up.
func (r *router) heapPush(it pqItem) {
	q := append(r.heap, it)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q[i].less(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	r.heap = q
}

// heapPop removes and returns the minimum item, sifting down.
func (r *router) heapPop() pqItem {
	q := r.heap
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && q[l].less(q[small]) {
			small = l
		}
		if rt := 2*i + 2; rt < n && q[rt].less(q[small]) {
			small = rt
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	r.heap = q
	return top
}

// Route routes all nets, returning per-net trees. The graph is read-only
// throughout; all mutable state is private to this call, so concurrent
// Route calls may share g.
func Route(g *arch.Graph, nets []Net, opt Options) (*Result, error) {
	opt.fill()
	r := &router{
		g:   g,
		opt: opt,
		cap: capacities(g),
	}
	r.occ = make([][]int16, opt.ModeCount)
	r.hist = make([][]float64, opt.ModeCount)
	for m := range r.occ {
		r.occ[m] = make([]int16, g.NumNodes())
		r.hist[m] = make([]float64, g.NumNodes())
	}
	if opt.ModeCount >= 64 {
		r.allMask = ^uint64(0)
	} else {
		r.allMask = uint64(1)<<uint(opt.ModeCount) - 1
	}

	// Stable net order: nets active in more modes first (they have the
	// least resource-sharing freedom), then high-fanout, then by name.
	order := make([]int, len(nets))
	for i := range order {
		order[i] = i
	}
	popcount := func(v uint64) int {
		n := 0
		for ; v != 0; v &= v - 1 {
			n++
		}
		return n
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := nets[order[i]], nets[order[j]]
		pa, pb := popcount(r.maskOf(&a)), popcount(r.maskOf(&b))
		if pa != pb {
			return pa > pb
		}
		if len(a.Sinks) != len(b.Sinks) {
			return len(a.Sinks) > len(b.Sinks)
		}
		return a.Name < b.Name
	})

	trees := make([]Tree, len(nets))
	r.presFac = opt.FirstPresFac
	r.heap = make([]pqItem, 0, 256)
	r.prev = make([]int32, g.NumNodes())
	r.visited = make([]float64, g.NumNodes())
	for i := range r.visited {
		r.visited[i] = math.MaxFloat64
	}
	r.inTree = make([]bool, g.NumNodes())
	r.nodeMask = make([]uint64, g.NumNodes())

	for iter := 1; iter <= opt.MaxIters; iter++ {
		for _, ni := range order {
			// Rip up the previous tree of this net.
			for i, n := range trees[ni].Nodes {
				r.adjustOcc(n, trees[ni].NodeMasks[i], -1)
			}
			tree, err := r.routeNet(&nets[ni])
			if err != nil {
				return nil, fmt.Errorf("route: net %q: %w", nets[ni].Name, err)
			}
			trees[ni] = tree
			for i, n := range tree.Nodes {
				r.adjustOcc(n, tree.NodeMasks[i], 1)
			}
		}
		// Congestion check: a node is overused if any single mode
		// oversubscribes it; history accumulates in that mode only.
		overused := 0
		for n := 0; n < g.NumNodes(); n++ {
			over := false
			for m := range r.occ {
				if r.occ[m][n] > r.cap[n] {
					over = true
					r.hist[m][n] += opt.AccFac * float64(r.occ[m][n]-r.cap[n])
				}
			}
			if over {
				overused++
			}
		}
		if overused == 0 {
			return &Result{Trees: trees, Iterations: iter}, nil
		}
		if iter == 1 {
			r.presFac = opt.FirstPresFac
		} else {
			r.presFac *= opt.PresFacMult
		}
		if r.presFac > 1e6 {
			r.presFac = 1e6
		}
	}
	overused := 0
	detail := ""
	for n := 0; n < g.NumNodes(); n++ {
		var worst int16
		for m := range r.occ {
			if r.occ[m][n] > worst {
				worst = r.occ[m][n]
			}
		}
		if worst > r.cap[n] {
			overused++
			if overused <= 3 {
				detail += fmt.Sprintf("; node %d %v occ=%d cap=%d", n, g.Nodes[n], worst, r.cap[n])
			}
		}
	}
	return nil, &ErrUnroutable{Overused: overused, Iters: opt.MaxIters, Detail: detail}
}

// routeNet routes one net: sinks are connected one at a time, each found by
// an A* search seeded with the entire current routing tree. After routing,
// every tree node is annotated with the union mask of the sinks it serves.
func (r *router) routeNet(n *Net) (Tree, error) {
	netMask := r.maskOf(n)
	sinkMask := func(i int) uint64 {
		if n.SinkMasks == nil {
			return netMask
		}
		m := n.SinkMasks[i] & r.allMask
		if m == 0 {
			return netMask
		}
		return m
	}

	tree := Tree{Nodes: []int32{n.Source}}
	r.inTree[n.Source] = true
	defer func() {
		for _, node := range tree.Nodes {
			r.inTree[node] = false
			r.nodeMask[node] = 0
		}
	}()

	// Deterministic sink order: nearest to the source first.
	idx := r.sinkOrder[:0]
	for i := range n.Sinks {
		idx = append(idx, i)
	}
	r.sinkOrder = idx
	src := r.g.Nodes[n.Source]
	sort.SliceStable(idx, func(i, j int) bool {
		a, b := r.g.Nodes[n.Sinks[idx[i]]], r.g.Nodes[n.Sinks[idx[j]]]
		da := math.Abs(float64(a.X-src.X)) + math.Abs(float64(a.Y-src.Y))
		db := math.Abs(float64(b.X-src.X)) + math.Abs(float64(b.Y-src.Y))
		if da != db {
			return da < db
		}
		return n.Sinks[idx[i]] < n.Sinks[idx[j]]
	})

	// r.nodeMask doubles as the per-sink mask accumulator: seeded with each
	// sink's own mask here, completed into subtree masks below.
	for _, si := range idx {
		sink := n.Sinks[si]
		r.curMask = sinkMask(si)
		// History pricing: per-branch for 1-2 modes (the paper's tuning,
		// preserved bit-for-bit), net-wide from 3 modes up — see nodeCost.
		r.histMask = r.curMask
		if len(r.occ) >= 3 {
			r.histMask = netMask
		}
		r.nodeMask[sink] |= sinkMask(si)
		if r.inTree[sink] {
			// Multiple logical sinks can share one SINK node (e.g. two
			// input pins of the same block): account occupancy once per
			// use by adding the node again.
			tree.Nodes = append(tree.Nodes, sink)
			continue
		}
		path, err := r.search(tree.Nodes, sink)
		if err != nil {
			return Tree{}, err
		}
		// path runs tree→sink; path[0] is already in the tree.
		for i := 1; i < len(path); i++ {
			tree.Edges = append(tree.Edges, Edge{From: path[i-1], To: path[i]})
			if !r.inTree[path[i]] {
				r.inTree[path[i]] = true
				tree.Nodes = append(tree.Nodes, path[i])
			}
		}
	}

	// Annotate nodes with the union of downstream sink masks. Edges are in
	// discovery order, so the edge into a node precedes every edge out of
	// it; one reverse sweep therefore folds each subtree into its root.
	for i := len(tree.Edges) - 1; i >= 0; i-- {
		e := tree.Edges[i]
		r.nodeMask[e.From] |= r.nodeMask[e.To]
	}
	tree.NodeMasks = make([]uint64, len(tree.Nodes))
	for i, node := range tree.Nodes {
		m := r.nodeMask[node]
		if m == 0 {
			m = netMask // isolated source with no sinks
		}
		// Duplicate sink entries each count once with the sink's own mask.
		tree.NodeMasks[i] = m
	}
	return tree, nil
}

// search finds the cheapest path from any tree node to the sink. The
// returned slice is scratch owned by the router, valid until the next
// search call.
func (r *router) search(treeNodes []int32, sink int32) ([]int32, error) {
	const unvisited = math.MaxFloat64
	r.heap = r.heap[:0]
	r.touched = r.touched[:0]
	push := func(node int32, cost float64, from int32) {
		if r.visited[node] <= cost {
			return
		}
		if r.visited[node] == unvisited {
			r.touched = append(r.touched, node)
		}
		r.visited[node] = cost
		r.prev[node] = from
		r.heapPush(pqItem{node: node, cost: cost, est: cost + r.lowerBound(node, sink)})
	}
	defer func() {
		for _, n := range r.touched {
			r.visited[n] = unvisited
		}
	}()
	for _, n := range treeNodes {
		push(n, 0, -1)
	}
	for len(r.heap) > 0 {
		it := r.heapPop()
		if it.cost > r.visited[it.node] {
			continue
		}
		if it.node == sink {
			// Backtrace into the reusable path buffer, then reverse it in
			// place so it runs tree→sink.
			path := r.path[:0]
			for n := sink; n != -1; n = r.prev[n] {
				path = append(path, n)
				if r.prev[n] == -1 {
					break
				}
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			r.path = path
			return path, nil
		}
		for _, to := range r.g.Edges(it.node) {
			// Sinks other than the target are dead ends.
			if r.g.Nodes[to].Type == arch.NodeSink && to != sink {
				continue
			}
			push(to, it.cost+r.nodeCost(to), it.node)
		}
	}
	return nil, fmt.Errorf("no path to sink %d (%v)", sink, r.g.Nodes[sink])
}

// WireLength counts the wire-segment nodes of a tree.
func WireLength(g *arch.Graph, t Tree) int {
	n := 0
	for _, node := range t.Nodes {
		if g.Nodes[node].IsWire() {
			n++
		}
	}
	return n
}

// TotalWireLength sums WireLength over all trees.
func TotalWireLength(g *arch.Graph, res *Result) int {
	total := 0
	for _, t := range res.Trees {
		total += WireLength(g, t)
	}
	return total
}

// UsedBits returns the set of routing configuration bits switched on by the
// given trees (bit ids from the architecture graph).
func UsedBits(g *arch.Graph, trees []Tree) map[int32]bool {
	used := map[int32]bool{}
	for _, t := range trees {
		for _, e := range t.Edges {
			bits := g.EdgeBits(e.From)
			for i, to := range g.Edges(e.From) {
				if to == e.To {
					if bits[i] >= 0 {
						used[bits[i]] = true
					}
					break
				}
			}
		}
	}
	return used
}
