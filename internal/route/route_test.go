package route

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/techmap"
)

// checkRouting validates structural soundness of a routing result.
func checkRouting(t *testing.T, g *arch.Graph, nets []Net, res *Result) {
	t.Helper()
	if len(res.Trees) != len(nets) {
		t.Fatalf("%d trees for %d nets", len(res.Trees), len(nets))
	}
	occ := make(map[int32]int)
	for ni, tree := range res.Trees {
		inTree := map[int32]bool{}
		for _, n := range tree.Nodes {
			occ[n]++
			inTree[n] = true
		}
		if !inTree[nets[ni].Source] {
			t.Fatalf("net %d: source not in tree", ni)
		}
		for _, s := range nets[ni].Sinks {
			if !inTree[s] {
				t.Fatalf("net %d: sink %d not reached", ni, s)
			}
		}
		// Every edge must be a real RRG edge.
		for _, e := range tree.Edges {
			found := false
			for _, to := range g.Edges(e.From) {
				if to == e.To {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("net %d: edge %d->%d not in RRG", ni, e.From, e.To)
			}
		}
		// Connectivity: edges form a tree reaching all sinks from source.
		adj := map[int32][]int32{}
		for _, e := range tree.Edges {
			adj[e.From] = append(adj[e.From], e.To)
		}
		reach := map[int32]bool{nets[ni].Source: true}
		stack := []int32{nets[ni].Source}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, to := range adj[n] {
				if !reach[to] {
					reach[to] = true
					stack = append(stack, to)
				}
			}
		}
		for _, s := range nets[ni].Sinks {
			if !reach[s] {
				t.Fatalf("net %d: sink %d not connected to source via edges", ni, s)
			}
		}
	}
	// Capacity: wire nodes used at most once overall.
	for n, c := range occ {
		if g.Nodes[n].IsWire() && c > 1 {
			t.Fatalf("wire node %d overused (%d nets)", n, c)
		}
	}
}

func TestRouteSingleConnection(t *testing.T) {
	a := arch.New(4, 4, 4)
	g := arch.BuildGraph(a)
	nets := []Net{{
		Name:   "n0",
		Source: g.CLBSource(1, 1),
		Sinks:  []int32{g.CLBSink(4, 4)},
	}}
	res, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRouting(t, g, nets, res)
	wl := WireLength(g, res.Trees[0])
	// Manhattan distance is 6; unit wires mean at least 6 segments.
	if wl < 6 {
		t.Errorf("wirelength %d below Manhattan bound 6", wl)
	}
	if wl > 14 {
		t.Errorf("wirelength %d wildly above Manhattan bound 6", wl)
	}
}

func TestRouteFanout(t *testing.T) {
	a := arch.New(5, 5, 6)
	g := arch.BuildGraph(a)
	n := Net{Name: "fan", Source: g.CLBSource(3, 3)}
	for _, xy := range [][2]int{{1, 1}, {5, 1}, {1, 5}, {5, 5}} {
		n.Sinks = append(n.Sinks, g.CLBSink(xy[0], xy[1]))
	}
	res, err := Route(g, []Net{n}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRouting(t, g, []Net{n}, res)
	// Tree sharing: wirelength must be below the sum of individual paths.
	wl := WireLength(g, res.Trees[0])
	if wl >= 4*8 {
		t.Errorf("fanout tree does not share wires: wl=%d", wl)
	}
}

func TestRouteCongestionNegotiation(t *testing.T) {
	// Many parallel nets through a narrow channel force negotiation.
	a := arch.New(4, 4, 3)
	g := arch.BuildGraph(a)
	var nets []Net
	for y := 1; y <= 4; y++ {
		nets = append(nets, Net{
			Name:   fmt.Sprintf("h%d", y),
			Source: g.CLBSource(1, y),
			Sinks:  []int32{g.CLBSink(4, y)},
		})
	}
	res, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRouting(t, g, nets, res)
}

func TestRouteUnroutableReportsError(t *testing.T) {
	// W=1 and many competing nets from the same region must fail.
	a := arch.New(2, 2, 1)
	a.FcIn, a.FcOut = 1, 1
	g := arch.BuildGraph(a)
	var nets []Net
	k := 0
	for _, from := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}} {
		for _, to := range [][2]int{{2, 2}, {1, 1}} {
			if from == to {
				continue
			}
			nets = append(nets, Net{
				Name:   fmt.Sprintf("n%d", k),
				Source: g.CLBSource(from[0], from[1]),
				Sinks:  []int32{g.CLBSink(to[0], to[1])},
			})
			k++
		}
	}
	_, err := Route(g, nets, Options{MaxIters: 8})
	if err == nil {
		t.Skip("architecture routed everything; congestion scenario too weak")
	}
}

func TestRouteDeterministic(t *testing.T) {
	a := arch.New(4, 4, 4)
	g := arch.BuildGraph(a)
	nets := []Net{
		{Name: "a", Source: g.CLBSource(1, 1), Sinks: []int32{g.CLBSink(4, 4), g.CLBSink(4, 1)}},
		{Name: "b", Source: g.CLBSource(2, 2), Sinks: []int32{g.CLBSink(3, 3)}},
	}
	r1, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Trees {
		if len(r1.Trees[i].Nodes) != len(r2.Trees[i].Nodes) {
			t.Fatalf("non-deterministic tree size for net %d", i)
		}
		for j := range r1.Trees[i].Nodes {
			if r1.Trees[i].Nodes[j] != r2.Trees[i].Nodes[j] {
				t.Fatalf("non-deterministic node order for net %d", i)
			}
		}
	}
}

func TestUsedBits(t *testing.T) {
	a := arch.New(3, 3, 4)
	g := arch.BuildGraph(a)
	nets := []Net{{Name: "n", Source: g.CLBSource(1, 1), Sinks: []int32{g.CLBSink(3, 3)}}}
	res, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bits := UsedBits(g, res.Trees)
	if len(bits) == 0 {
		t.Fatal("no bits used by a real route")
	}
	// Every bit id must be within range.
	for b := range bits {
		if b < 0 || int(b) >= g.NumRoutingBits {
			t.Fatalf("bit %d out of range", b)
		}
	}
	// A route with E programmable edges uses at most E bits.
	if len(bits) > len(res.Trees[0].Edges) {
		t.Fatalf("more bits (%d) than edges (%d)", len(bits), len(res.Trees[0].Edges))
	}
}

func TestRoutePadToPad(t *testing.T) {
	a := arch.New(3, 3, 4)
	g := arch.BuildGraph(a)
	nets := []Net{{Name: "io", Source: g.PadSource(0), Sinks: []int32{g.PadSink(7)}}}
	res, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRouting(t, g, nets, res)
}

func TestRouteMappedPlacedCircuit(t *testing.T) {
	b := netlist.NewBuilder("full")
	av := b.InputVector("a", 3)
	bv := b.InputVector("b", 3)
	sum := b.RippleAdd(av, bv)
	b.OutputVector("s", sum)
	circ, err := techmap.Map(b.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	side := arch.MinGridForBlocks(circ.NumBlocks(), circ.NumPIs()+len(circ.POs), 1.2)
	a := arch.New(side, side, 8)
	g := arch.BuildGraph(a)
	prob, cc := place.FromCircuit(circ)
	pl, err := place.Place(prob, a, place.Options{Seed: 1, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	nets, err := NetsForPlacedCircuit(g, circ, cc, pl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRouting(t, g, nets, res)
	if TotalWireLength(g, res) == 0 {
		t.Error("zero total wirelength for real circuit")
	}
	_ = lutnet.Source{}
}
