package route

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/obs"
)

// TestRouteObsNeverPerturbsResult is the instrumentation contract for the
// router: an attached registry may change only what is observable on
// /metrics, never the routing. The congested workload forces several
// negotiation iterations so the reroute/requeue paths all record.
func TestRouteObsNeverPerturbsResult(t *testing.T) {
	a := arch.New(4, 4, 3)
	g := arch.BuildGraph(a)
	var nets []Net
	for y := 1; y <= 4; y++ {
		nets = append(nets, Net{
			Name:   fmt.Sprintf("h%d", y),
			Source: g.CLBSource(1, y),
			Sinks:  []int32{g.CLBSink(4, y)},
		})
	}
	plain, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	observed, err := Route(g, nets, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("attaching a metrics registry changed the routing result")
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := obs.ValidateText(buf.Bytes())
	if err != nil {
		t.Fatalf("router metrics are not valid exposition: %v\n%s", err, buf.Bytes())
	}
	for _, name := range []string{
		"mm_route_calls_total",
		"mm_route_iterations",
		"mm_route_rerouted_connections",
		"mm_route_requeued_connections",
		"mm_route_heap_pushes",
		"mm_route_nodes_visited",
		"mm_route_warm_connections",
	} {
		if !stats.Has(name) {
			t.Errorf("family %s missing from router metrics", name)
		}
	}
}
