package route

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/place"
)

// NetsForPlacedCircuit converts a placed mapped circuit into router nets:
// each signal net runs from the SOURCE node of its driver's site to the
// SINK node of every consuming site.
func NetsForPlacedCircuit(g *arch.Graph, c *lutnet.Circuit, cc place.CircuitCells, pl *place.Placement) ([]Net, error) {
	idx := g.Arch.NewIOIndexer()
	srcNode := func(cell int) (int32, error) {
		s := pl.SiteOf[cell]
		if s.IsIO {
			i, ok := idx[s]
			if !ok {
				return 0, fmt.Errorf("route: unknown pad site %v", s)
			}
			return g.PadSource(i), nil
		}
		return g.CLBSource(s.X, s.Y), nil
	}
	sinkNode := func(cell int) (int32, error) {
		s := pl.SiteOf[cell]
		if s.IsIO {
			i, ok := idx[s]
			if !ok {
				return 0, fmt.Errorf("route: unknown pad site %v", s)
			}
			return g.PadSink(i), nil
		}
		return g.CLBSink(s.X, s.Y), nil
	}

	var nets []Net
	for _, nt := range c.Nets() {
		driver := cc.SourceCell(nt.Src)
		src, err := srcNode(driver)
		if err != nil {
			return nil, err
		}
		n := Net{Name: nt.Src.String(), Source: src}
		// Dedup sink nodes: a block consuming the signal on several input
		// pins shares one SINK node and one routed branch (the router
		// rejects duplicate sinks).
		seen := map[int32]bool{}
		addSink := func(sk int32) {
			if !seen[sk] {
				seen[sk] = true
				n.Sinks = append(n.Sinks, sk)
			}
		}
		for _, bp := range nt.BlockIn {
			sk, err := sinkNode(cc.BlockCell(bp.Block))
			if err != nil {
				return nil, err
			}
			addSink(sk)
		}
		for _, po := range nt.POSinks {
			sk, err := sinkNode(cc.POCell(po))
			if err != nil {
				return nil, err
			}
			addSink(sk)
		}
		if len(n.Sinks) > 0 {
			nets = append(nets, n)
		}
	}
	return nets, nil
}
