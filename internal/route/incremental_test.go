package route

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arch"
)

// randomWorkload builds a seeded multi-mode netlist on a small fabric —
// congested enough to force several negotiation iterations, with per-sink
// mode masks exercising the union accounting.
func randomWorkload(seed int64) (*arch.Graph, []Net, Options) {
	rng := rand.New(rand.NewSource(seed))
	side := 4 + rng.Intn(3)
	a := arch.New(side, side, 4+rng.Intn(3))
	g := arch.BuildGraph(a)
	var nets []Net
	used := map[int32]bool{}
	numNets := 6 + rng.Intn(8)
	for i := 0; i < numNets; i++ {
		sx, sy := 1+rng.Intn(side), 1+rng.Intn(side)
		src := g.CLBSource(sx, sy)
		if used[src] {
			continue
		}
		used[src] = true
		n := Net{Name: fmt.Sprintf("n%d", i), Source: src, ModeMask: uint64(1 + rng.Intn(7))}
		seenSink := map[int32]bool{}
		for s := 0; s < 1+rng.Intn(6); s++ {
			sk := g.CLBSink(1+rng.Intn(side), 1+rng.Intn(side))
			if seenSink[sk] {
				continue
			}
			seenSink[sk] = true
			n.Sinks = append(n.Sinks, sk)
			n.SinkMasks = append(n.SinkMasks, uint64(1+rng.Intn(7))&n.ModeMask)
		}
		if len(n.Sinks) == 0 {
			continue
		}
		nets = append(nets, n)
	}
	return g, nets, Options{ModeCount: 3, MaxIters: 30}
}

// checkAccounting verifies the incremental engine's final bookkeeping
// against a from-scratch recompute of the same routing:
//
//   - structure: every tree is rooted at its source, reaches every sink,
//     uses only real RRG edges, and stores them in topological order (the
//     contract troute's reverse sweeps rely on);
//   - masks: NodeMasks equal the union of sink masks reached through each
//     node, recomputed from the sinks alone;
//   - legality: per-mode occupancy derived from the trees stays within
//     every node's capacity (congestion-free).
func checkAccounting(t *testing.T, g *arch.Graph, nets []Net, res *Result, modeCount int) {
	t.Helper()
	if len(res.Trees) != len(nets) {
		t.Fatalf("%d trees for %d nets", len(res.Trees), len(nets))
	}
	var allMask uint64 = 1<<uint(modeCount) - 1
	occ := make([][]int16, modeCount)
	for m := range occ {
		occ[m] = make([]int16, g.NumNodes())
	}
	for ni, tree := range res.Trees {
		net := &nets[ni]
		pos := map[int32]int{} // node -> discovery index
		for i, n := range tree.Nodes {
			if _, dup := pos[n]; dup {
				t.Fatalf("net %d: node %d appears twice in Nodes", ni, n)
			}
			pos[n] = i
		}
		if _, ok := pos[net.Source]; !ok {
			t.Fatalf("net %d: source not in tree", ni)
		}
		// Edge structure: real RRG edges, one in-edge per node, and the
		// topological order contract — the edge into a node precedes every
		// edge out of it.
		inEdge := map[int32]int{}
		for i, e := range tree.Edges {
			found := false
			for _, to := range g.Edges(e.From) {
				if to == e.To {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("net %d: edge %d->%d not in RRG", ni, e.From, e.To)
			}
			if _, dup := inEdge[e.To]; dup {
				t.Fatalf("net %d: node %d has two in-edges", ni, e.To)
			}
			inEdge[e.To] = i
			if e.From != net.Source {
				j, ok := inEdge[e.From]
				if !ok || j >= i {
					t.Fatalf("net %d: edge %d (%d->%d) precedes the edge into its tail", ni, i, e.From, e.To)
				}
			}
		}
		// Reachability of every sink.
		for _, s := range net.Sinks {
			if _, ok := pos[s]; !ok {
				t.Fatalf("net %d: sink %d not in tree", ni, s)
			}
		}
		// From-scratch mask recompute: seed sinks with their masks, fold
		// subtrees over the (verified topological) edge list in reverse.
		want := map[int32]uint64{}
		netMask := net.ModeMask & allMask
		if netMask == 0 {
			netMask = allMask
		}
		for i, s := range net.Sinks {
			m := netMask
			if net.SinkMasks != nil {
				if sm := net.SinkMasks[i] & allMask; sm != 0 {
					m = sm
				}
			}
			want[s] |= m
		}
		for i := len(tree.Edges) - 1; i >= 0; i-- {
			e := tree.Edges[i]
			want[e.From] |= want[e.To]
		}
		if len(net.Sinks) == 0 {
			want[net.Source] = netMask
		}
		for i, n := range tree.Nodes {
			if tree.NodeMasks[i] != want[n] {
				t.Fatalf("net %d node %d: NodeMask %b, from-scratch %b", ni, n, tree.NodeMasks[i], want[n])
			}
			for m := 0; m < modeCount; m++ {
				if tree.NodeMasks[i]>>uint(m)&1 == 1 {
					occ[m][n]++
				}
			}
		}
	}
	// Congestion-free: per-mode occupancy within capacity everywhere.
	caps := capacities(g)
	for m := range occ {
		for n := range occ[m] {
			if occ[m][n] > caps[n] {
				t.Fatalf("mode %d node %d (%v): occupancy %d exceeds capacity %d",
					m, n, g.Nodes[n], occ[m][n], caps[n])
			}
		}
	}
}

// TestIncrementalAccountingMatchesFromScratch routes seeded congested
// multi-mode workloads with the incremental engine and verifies the final
// routing is legal with mask accounting identical to a from-scratch
// recompute.
func TestIncrementalAccountingMatchesFromScratch(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, nets, opt := randomWorkload(seed)
		res, err := Route(g, nets, opt)
		if err != nil {
			var un *ErrUnroutable
			if errors.As(err, &un) {
				continue // genuinely congested beyond capacity at this seed
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkAccounting(t, g, nets, res, opt.ModeCount)
		if res.Stats.Connections == 0 || len(res.Stats.Rerouted) != res.Stats.Iterations {
			t.Fatalf("seed %d: inconsistent stats %+v", seed, res.Stats)
		}
		if res.Stats.Rerouted[0] != res.Stats.Connections {
			t.Fatalf("seed %d: first iteration rerouted %d of %d connections",
				seed, res.Stats.Rerouted[0], res.Stats.Connections)
		}
	}
}

// TestFullRipUpAlsoLegal runs the same workloads through the FullRipUp
// baseline: the classic whole-netlist behaviour must produce equally legal
// routings with exact accounting.
func TestFullRipUpAlsoLegal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, nets, opt := randomWorkload(seed)
		opt.FullRipUp = true
		res, err := Route(g, nets, opt)
		if err != nil {
			var un *ErrUnroutable
			if errors.As(err, &un) {
				continue
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkAccounting(t, g, nets, res, opt.ModeCount)
	}
}

// TestRouteWorkerDeterminism asserts the parallel iteration's contract:
// the complete Result — trees, iteration counts, reroute and requeue
// statistics — is identical at worker counts 1, 2 and 8.
func TestRouteWorkerDeterminism(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g, nets, opt := randomWorkload(seed)
		var base *Result
		for _, workers := range []int{1, 2, 8} {
			o := opt
			o.Workers = workers
			res, err := Route(g, nets, o)
			if err != nil {
				var un *ErrUnroutable
				if errors.As(err, &un) && workers == 1 {
					base = nil
					break // unroutable at this seed; skip
				}
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if workers == 1 {
				base = res
				continue
			}
			if base == nil {
				t.Fatalf("seed %d: routable at %d workers but not serially", seed, workers)
			}
			if !reflect.DeepEqual(base, res) {
				t.Fatalf("seed %d: result at %d workers differs from serial", seed, workers)
			}
		}
	}
}

// TestRouteValidation covers the typed rejection of malformed nets.
func TestRouteValidation(t *testing.T) {
	a := arch.New(3, 3, 4)
	g := arch.BuildGraph(a)
	var inv *ErrInvalidNet

	_, err := Route(g, []Net{{
		Name:      "bad-masks",
		Source:    g.CLBSource(1, 1),
		Sinks:     []int32{g.CLBSink(2, 2), g.CLBSink(3, 3)},
		SinkMasks: []uint64{1},
	}}, Options{ModeCount: 2})
	if !errors.As(err, &inv) {
		t.Fatalf("mismatched SinkMasks: got %v, want ErrInvalidNet", err)
	}

	_, err = Route(g, []Net{{
		Name:   "dup-sink",
		Source: g.CLBSource(1, 1),
		Sinks:  []int32{g.CLBSink(2, 2), g.CLBSink(2, 2)},
	}}, Options{})
	if !errors.As(err, &inv) {
		t.Fatalf("duplicate sinks: got %v, want ErrInvalidNet", err)
	}

	// Two different nets sharing a sink node remain legal.
	nets := []Net{
		{Name: "a", Source: g.CLBSource(1, 1), Sinks: []int32{g.CLBSink(2, 2)}},
		{Name: "b", Source: g.CLBSource(3, 3), Sinks: []int32{g.CLBSink(2, 2)}},
	}
	if _, err := Route(g, nets, Options{}); err != nil {
		t.Fatalf("cross-net shared sink rejected: %v", err)
	}
}

// TestIncrementalConvergesFasterThanFullRipUp is the qualitative half of
// the BenchmarkRoute claim: on a congested workload the incremental engine
// must do strictly less reroute work than whole-netlist rip-up while
// reaching an equally legal routing.
func TestIncrementalConvergesFasterThanFullRipUp(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g, nets, opt := randomWorkload(seed)
		inc, err1 := Route(g, nets, opt)
		full := opt
		full.FullRipUp = true
		rip, err2 := Route(g, nets, full)
		if err1 != nil || err2 != nil {
			continue
		}
		if rip.Iterations <= 1 {
			continue // uncongested: both engines cold-route once
		}
		if inc.Stats.TotalRerouted() >= rip.Stats.TotalRerouted() {
			t.Errorf("seed %d: incremental rerouted %d connections, full rip-up %d",
				seed, inc.Stats.TotalRerouted(), rip.Stats.TotalRerouted())
		}
	}
}
