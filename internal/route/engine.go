package route

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
)

// batchConns is the target number of connections per parallel batch. It is
// a fixed constant — never derived from Options.Workers — because batch
// composition decides which connections see which congestion snapshot:
// deriving it from the worker count would make results depend on it.
const batchConns = 64

// histExtraDiv bounds the history-driven reroute set: at most
// max(histExtraMin, connections/histExtraDiv) uncongested connections that
// sit on full, history-laden nodes are rerouted per iteration, giving
// negotiation a chance to vacate chronic hotspots before they overflow.
const (
	histExtraDiv = 16
	histExtraMin = 4
)

// Stall escalation: connection-level rip-up can livelock on instances
// where two nets flip-flop over one resource (classic whole-net PathFinder
// escapes these by reorganising entire trees). When the overused-node
// count has not improved for stallNetRip iterations the rip-up scope
// widens to whole nets (every connection of any net touching congestion);
// at stallFullRip it widens to the full netlist. The counters reset as
// soon as congestion improves, so converging runs never pay for this.
const (
	stallNetRip  = 4
	stallFullRip = 8
)

// conn is one source→sink connection. path, when routed, is the complete
// node sequence from the net's SOURCE to the sink; a net's tree is the
// union of its connections' paths, which stays a tree because a reroute
// only ever attaches fresh nodes to the existing union (shared prefixes
// are shared wires).
type conn struct {
	sink  int32
	mask  uint64  // occupancy mask of this connection
	path  []int32 // full source→sink path; nil = unrouted
	dirty bool    // scheduled for rip-up and reroute this iteration
}

// netRT is the routing state of one net.
type netRT struct {
	orig   int // index into the caller's net slice
	name   string
	source int32
	mask   uint64 // net-wide mode mask (normalised)
	conns  []conn // canonical (nearest-sink-first) order
}

// connRef addresses one connection canonically.
type connRef struct {
	net  int32 // canonical net index
	conn int32
}

// job is one net's reroute work within a batch: the dirty connection
// indices and, after the route phase, the new full paths (parallel to
// dirty).
type job struct {
	net   int32
	dirty []int32
	paths [][]int32
	err   error
}

// router carries the PathFinder state. Occupancy is per mode: a node is
// overused only if some single mode oversubscribes it, so nets of disjoint
// mode masks share resources freely.
type router struct {
	g    *arch.Graph
	opt  Options
	cap  []int16
	occ  [][]int16   // [mode][node]
	hist [][]float64 // [mode][node]: congestion history is per mode, so
	// contention in one mode does not repel nets of other modes from
	// resources they could legally share
	presFac float64
	allMask uint64
	nets    []netRT // canonical order

	searchers []*searcher

	// Union-table scratch for occupancy bookkeeping: treeMask[n] is the
	// mode mask net-under-edit occupies at n, treeList the nodes with a
	// nonzero entry (the wipe list).
	treeMask []uint64
	treeList []int32

	// Batch-commit conflict tracking: touchedBy[n] is the canonical index
	// of the last net whose commit increased occupancy at n in the current
	// batch (-1 outside commits), touchedList the wipe list.
	touchedBy   []int32
	touchedList []int32

	stats Stats
}

func newRouter(g *arch.Graph, nets []Net, opt Options) *router {
	r := &router{g: g, opt: opt, cap: capacities(g)}
	r.occ = make([][]int16, opt.ModeCount)
	r.hist = make([][]float64, opt.ModeCount)
	for m := range r.occ {
		r.occ[m] = make([]int16, g.NumNodes())
		r.hist[m] = make([]float64, g.NumNodes())
	}
	if opt.ModeCount >= 64 {
		r.allMask = ^uint64(0)
	} else {
		r.allMask = uint64(1)<<uint(opt.ModeCount) - 1
	}

	maskOf := func(n *Net) uint64 {
		if n.ModeMask == 0 {
			return r.allMask
		}
		return n.ModeMask & r.allMask
	}

	// Stable net order: nets active in more modes first (they have the
	// least resource-sharing freedom), then high-fanout, then by name.
	order := make([]int, len(nets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := nets[order[i]], nets[order[j]]
		pa, pb := bits.OnesCount64(maskOf(&a)), bits.OnesCount64(maskOf(&b))
		if pa != pb {
			return pa > pb
		}
		if len(a.Sinks) != len(b.Sinks) {
			return len(a.Sinks) > len(b.Sinks)
		}
		return a.Name < b.Name
	})

	r.nets = make([]netRT, len(nets))
	for ci, ni := range order {
		n := &nets[ni]
		netMask := maskOf(n)
		nr := &r.nets[ci]
		nr.orig = ni
		nr.name = n.Name
		nr.source = n.Source
		nr.mask = netMask

		// Deterministic connection order: nearest sink first, ties by
		// sink id. New connections attach to the tree grown by earlier
		// ones, so near sinks laying trunk first shortens the rest.
		idx := make([]int, len(n.Sinks))
		for i := range idx {
			idx[i] = i
		}
		src := g.Nodes[n.Source]
		sort.SliceStable(idx, func(i, j int) bool {
			a, b := g.Nodes[n.Sinks[idx[i]]], g.Nodes[n.Sinks[idx[j]]]
			da := math.Abs(float64(a.X-src.X)) + math.Abs(float64(a.Y-src.Y))
			db := math.Abs(float64(b.X-src.X)) + math.Abs(float64(b.Y-src.Y))
			if da != db {
				return da < db
			}
			return n.Sinks[idx[i]] < n.Sinks[idx[j]]
		})
		nr.conns = make([]conn, len(idx))
		for k, si := range idx {
			mask := netMask
			if n.SinkMasks != nil {
				if m := n.SinkMasks[si] & r.allMask; m != 0 {
					mask = m
				}
			}
			nr.conns[k] = conn{sink: n.Sinks[si], mask: mask, dirty: true}
			r.stats.Connections++
		}
		if opt.Warm != nil {
			if t := opt.Warm[ni]; t != nil {
				r.seedWarm(nr, t)
			}
		}
	}

	r.treeMask = make([]uint64, g.NumNodes())
	r.touchedBy = make([]int32, g.NumNodes())
	for i := range r.touchedBy {
		r.touchedBy[i] = -1
	}
	r.searchers = make([]*searcher, opt.Workers)
	for i := range r.searchers {
		r.searchers[i] = newSearcher(r)
	}
	// Park every net's source: isolated nets (no sinks) occupy their
	// source for the whole run, and the rip/commit bookkeeping below
	// always removes a net's full contribution before re-adding it.
	for ni := range r.nets {
		r.buildUnion(&r.nets[ni])
		r.applyUnion(+1)
		r.wipeUnion()
	}
	if opt.Warm != nil {
		r.dirtyOverusedWarm()
	}
	return r
}

// seedWarm pre-routes net nr's connections from a baseline tree: for each
// sink reachable from nr.source by a backward walk over the tree's edges,
// the connection starts routed on that source-rooted path and clean. A
// sink the walk cannot resolve — the cell moved, the tree belongs to an
// older geometry, the edge list is cyclic or out of bounds — leaves its
// connection dirty, so it simply routes cold. Occupancy for the seeded
// paths is folded in by the source-parking pass in newRouter.
func (r *router) seedWarm(nr *netRT, t *Tree) {
	numNodes := int32(r.g.NumNodes())
	if nr.source < 0 || nr.source >= numNodes {
		return
	}
	parent := make(map[int32]int32, len(t.Edges))
	for _, e := range t.Edges {
		if e.From < 0 || e.From >= numNodes || e.To < 0 || e.To >= numNodes {
			return
		}
		parent[e.To] = e.From
	}
	var rev []int32
	seeded := false
	for ci := range nr.conns {
		c := &nr.conns[ci]
		rev = rev[:0]
		node := c.sink
		ok := false
		for steps := 0; steps <= len(t.Edges); steps++ {
			rev = append(rev, node)
			if node == nr.source {
				ok = true
				break
			}
			p, exists := parent[node]
			if !exists {
				break
			}
			node = p
		}
		if !ok {
			continue
		}
		path := make([]int32, len(rev))
		for i, n := range rev {
			path[len(rev)-1-i] = n
		}
		c.path = path
		c.dirty = false
		seeded = true
		r.stats.WarmConns++
	}
	if seeded {
		r.stats.WarmNets++
	}
}

// dirtyOverusedWarm re-marks any warm-seeded connection whose path crosses
// a node overused in one of its modes. Mutually legal baseline trees never
// trip this, but a transferred placement can seed paths that collide with
// the fixed sources of moved nets — without this pass such a collision
// would present as "nothing to reroute, yet overused" and fail, instead of
// entering negotiation.
func (r *router) dirtyOverusedWarm() {
	for ni := range r.nets {
		N := &r.nets[ni]
		for ci := range N.conns {
			c := &N.conns[ci]
			if c.dirty || c.path == nil {
				continue
			}
		scan:
			for _, node := range c.path {
				for m := 0; m < len(r.occ); m++ {
					if c.mask>>uint(m)&1 == 1 && r.occ[m][node] > r.cap[node] {
						c.dirty = true
						break scan
					}
				}
			}
		}
	}
}

// nodeCost prices node n for a branch occupying curMask, with history over
// histMask. Worst overuse over the modes the branch is active in; for ≥3
// modes histMask is the whole net's mask: the prefix shared by a net's
// branches carries the union of their modes, so a branch that prices only
// its own modes can keep re-choosing a prefix whose congestion lives in a
// sibling branch's mode — the history term is what breaks that deadlock.
func (r *router) nodeCost(n int32, curMask, histMask uint64) float64 {
	b := baseCost(r.g.Nodes[n].Type)
	var worst int16
	var h float64
	for m := 0; m < len(r.occ); m++ {
		if histMask>>uint(m)&1 == 1 && r.hist[m][n] > h {
			h = r.hist[m][n]
		}
		if curMask>>uint(m)&1 == 0 {
			continue
		}
		if o := r.occ[m][n]; o > worst {
			worst = o
		}
	}
	over := float64(worst + 1 - r.cap[n])
	pres := 1.0
	if over > 0 {
		pres += r.presFac * over
	}
	return b * (1 + h) * pres
}

// adjustOcc adds delta to the occupancy of node n in every mode of mask.
func (r *router) adjustOcc(n int32, mask uint64, delta int16) {
	for m := 0; m < len(r.occ); m++ {
		if mask>>uint(m)&1 == 1 {
			r.occ[m][n] += delta
		}
	}
}

// buildUnionPaths fills the union table with the contribution of net N's
// routed connections: each occupies every node of its path in the
// connection's modes. The caller must wipeUnion when done.
func (r *router) buildUnionPaths(N *netRT) {
	r.treeList = r.treeList[:0]
	for ci := range N.conns {
		c := &N.conns[ci]
		if c.path == nil {
			continue
		}
		for _, node := range c.path {
			if r.treeMask[node] == 0 {
				r.treeList = append(r.treeList, node)
			}
			r.treeMask[node] |= c.mask
		}
	}
}

// finishUnion parks the source of a net with no routed connections. It
// must run after every fold into the table and before applyUnion, so the
// applied contribution is always a pure function of the net's connection
// state — mixing the parked-source entry with folded paths would leak
// occupancy in the modes the paths don't cover.
func (r *router) finishUnion(N *netRT) {
	if r.treeMask[N.source] == 0 {
		r.treeMask[N.source] = N.mask
		r.treeList = append(r.treeList, N.source)
	}
}

// buildUnion fills the union table with net N's complete current
// contribution (routed connections, or the parked source).
func (r *router) buildUnion(N *netRT) {
	r.buildUnionPaths(N)
	r.finishUnion(N)
}

// applyUnion adds delta occupancy over the current union table.
func (r *router) applyUnion(delta int16) {
	for _, n := range r.treeList {
		r.adjustOcc(n, r.treeMask[n], delta)
	}
}

// wipeUnion clears the union table in O(touched).
func (r *router) wipeUnion() {
	for _, n := range r.treeList {
		r.treeMask[n] = 0
	}
	r.treeList = r.treeList[:0]
}

// ripNet removes the paths of the given dirty connections, updating
// occupancy to the remaining tree.
func (r *router) ripNet(N *netRT, dirty []int32) {
	r.buildUnion(N)
	r.applyUnion(-1)
	r.wipeUnion()
	for _, ci := range dirty {
		N.conns[ci].path = nil
	}
	r.buildUnion(N)
	r.applyUnion(+1)
	r.wipeUnion()
}

// commitNet folds a routed batch job into net N: each new path is conflict
// checked (would it newly overuse a node another net's commit claimed this
// batch?) and either accepted or requeued for a serial reroute. Occupancy
// moves from the net's pre-commit contribution to the accepted union, and
// every node whose occupancy grew is stamped for later conflict checks.
func (r *router) commitNet(canon int32, jb *job, requeue *[]connRef) {
	N := &r.nets[canon]
	r.buildUnion(N)
	r.applyUnion(-1) // occ now excludes N entirely
	r.wipeUnion()
	r.buildUnionPaths(N) // conflict-check base: remaining connections only
	for k, ci := range jb.dirty {
		p := jb.paths[k]
		c := &N.conns[ci]
		conflict := false
		for _, node := range p {
			add := c.mask &^ r.treeMask[node]
			if add == 0 {
				continue
			}
			if tb := r.touchedBy[node]; tb >= 0 && tb != canon {
				for m := 0; m < len(r.occ); m++ {
					if add>>uint(m)&1 == 1 && r.occ[m][node]+1 > r.cap[node] {
						conflict = true
						break
					}
				}
				if conflict {
					break
				}
			}
		}
		if conflict {
			*requeue = append(*requeue, connRef{net: canon, conn: int32(ci)})
			r.stats.Requeued++
			continue
		}
		c.path = p
		for _, node := range p {
			if c.mask&^r.treeMask[node] == 0 {
				continue
			}
			if r.treeMask[node] == 0 {
				r.treeList = append(r.treeList, node)
			}
			r.treeMask[node] |= c.mask
			if r.touchedBy[node] < 0 {
				r.touchedList = append(r.touchedList, node)
			}
			r.touchedBy[node] = canon
		}
	}
	r.finishUnion(N)
	r.applyUnion(+1)
	r.wipeUnion()
}

// commitOne folds a single serially rerouted connection (requeue fallback:
// no conflict check, live state).
func (r *router) commitOne(N *netRT, ci int32, p []int32) {
	r.buildUnion(N)
	r.applyUnion(-1)
	r.wipeUnion()
	N.conns[ci].path = p
	r.buildUnion(N)
	r.applyUnion(+1)
	r.wipeUnion()
}

// run executes the negotiation loop.
func (r *router) run() (*Result, error) {
	g := r.g
	var requeue []connRef
	bestOverused := int(^uint(0) >> 1)
	stall := 0
	for iter := 1; iter <= r.opt.MaxIters; iter++ {
		// Present-congestion schedule: the first two iterations discover
		// congestion at the opening factor, then the price escalates.
		if iter <= 2 {
			r.presFac = r.opt.FirstPresFac
		} else {
			r.presFac *= r.opt.PresFacMult
			if r.presFac > 1e6 {
				r.presFac = 1e6
			}
		}

		// Collect this iteration's worklist as per-net jobs, canonical
		// order, batched at batchConns connections.
		var batches [][]job
		var cur []job
		inBatch := 0
		rerouted := 0
		for ni := range r.nets {
			N := &r.nets[ni]
			var dirty []int32
			for ci := range N.conns {
				if N.conns[ci].dirty {
					dirty = append(dirty, int32(ci))
					N.conns[ci].dirty = false
				}
			}
			if len(dirty) == 0 {
				continue
			}
			rerouted += len(dirty)
			cur = append(cur, job{net: int32(ni), dirty: dirty})
			inBatch += len(dirty)
			if inBatch >= batchConns {
				batches = append(batches, cur)
				cur, inBatch = nil, 0
			}
		}
		if cur != nil {
			batches = append(batches, cur)
		}
		if rerouted == 0 {
			// Nothing to rip. Either the netlist routed trivially (no
			// connections at all), or the remaining overuse sits on fixed
			// source nodes no reroute can move.
			if r.countOverused() == 0 {
				r.stats.Iterations = iter
				r.stats.Rerouted = append(r.stats.Rerouted, 0)
				return r.result(), nil
			}
			break
		}
		r.stats.Rerouted = append(r.stats.Rerouted, rerouted)
		r.stats.Iterations = iter

		requeue = requeue[:0]
		for bi := range batches {
			batch := batches[bi]
			for ji := range batch {
				r.ripNet(&r.nets[batch[ji].net], batch[ji].dirty)
			}
			// Route phase: occ/hist/presFac are frozen; each job depends
			// only on that state plus its own net, so worker scheduling
			// cannot change any result.
			r.routeBatch(batch)
			for ji := range batch {
				if err := batch[ji].err; err != nil {
					return nil, fmt.Errorf("route: net %q: %w", r.nets[batch[ji].net].name, err)
				}
			}
			// Commit phase: serial, canonical order.
			for ji := range batch {
				r.commitNet(batch[ji].net, &batch[ji], &requeue)
			}
			for _, n := range r.touchedList {
				r.touchedBy[n] = -1
			}
			r.touchedList = r.touchedList[:0]
		}

		// Requeue fallback: conflicting commits reroute serially against
		// live congestion, still in canonical order.
		s := r.searchers[0]
		for _, cr := range requeue {
			N := &r.nets[cr.net]
			p, err := s.routeOne(N, cr.conn)
			if err != nil {
				return nil, fmt.Errorf("route: net %q: %w", N.name, err)
			}
			r.commitOne(N, cr.conn, p)
		}

		// Congestion check: a node is overused if any single mode
		// oversubscribes it; history accumulates in that mode only.
		overused := 0
		for n := 0; n < g.NumNodes(); n++ {
			over := false
			for m := range r.occ {
				if d := r.occ[m][n] - r.cap[n]; d > 0 {
					over = true
					r.hist[m][n] += r.opt.AccFac * float64(d)
					if int(d) > r.stats.PeakOveruse {
						r.stats.PeakOveruse = int(d)
					}
				}
			}
			if over {
				overused++
			}
		}
		if overused == 0 {
			return r.result(), nil
		}
		if overused < bestOverused {
			bestOverused = overused
			stall = 0
		} else {
			stall++
		}
		r.markDirty(stall)
	}

	// Unroutable: report a few overused nodes.
	overused := 0
	detail := ""
	for n := 0; n < g.NumNodes(); n++ {
		var worst int16
		for m := range r.occ {
			if r.occ[m][n] > worst {
				worst = r.occ[m][n]
			}
		}
		if worst > r.cap[n] {
			overused++
			if overused <= 3 {
				detail += fmt.Sprintf("; node %d %v occ=%d cap=%d", n, g.Nodes[n], worst, r.cap[n])
			}
		}
	}
	return nil, &ErrUnroutable{Overused: overused, Iters: r.stats.Iterations, Detail: detail}
}

// routeBatch runs the batch's jobs on the worker pool. Workers pull jobs
// from an atomic counter; each job's result is a pure function of the
// frozen congestion state, so the pull order is irrelevant.
func (r *router) routeBatch(batch []job) {
	workers := r.opt.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		s := r.searchers[0]
		for ji := range batch {
			s.routeJob(&batch[ji])
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(s *searcher) {
			defer wg.Done()
			for {
				ji := int(next.Add(1)) - 1
				if ji >= len(batch) {
					return
				}
				s.routeJob(&batch[ji])
			}
		}(r.searchers[w])
	}
	wg.Wait()
}

// markDirty schedules the next iteration's reroute set: every connection
// crossing a node overused in one of its modes, plus — capped — clean
// connections parked on full nodes with congestion history, which lets
// negotiation vacate chronic hotspots early. The stall counter widens the
// scope when congestion stops improving (see stallNetRip/stallFullRip);
// FullRipUp schedules everything unconditionally (the classic
// whole-netlist behaviour).
func (r *router) markDirty(stall int) {
	if r.opt.FullRipUp || stall >= stallFullRip {
		for ni := range r.nets {
			for ci := range r.nets[ni].conns {
				r.nets[ni].conns[ci].dirty = true
			}
		}
		return
	}
	maxExtra := r.stats.Connections / histExtraDiv
	if maxExtra < histExtraMin {
		maxExtra = histExtraMin
	}
	extra := 0
	for ni := range r.nets {
		N := &r.nets[ni]
		netOver := false
		for ci := range N.conns {
			c := &N.conns[ci]
			over, histFull := false, false
		scan:
			for _, node := range c.path {
				for m := 0; m < len(r.occ); m++ {
					if c.mask>>uint(m)&1 == 0 {
						continue
					}
					switch {
					case r.occ[m][node] > r.cap[node]:
						over = true
						break scan
					case r.occ[m][node] == r.cap[node] && r.hist[m][node] > 0:
						histFull = true
					}
				}
			}
			if over {
				c.dirty = true
				netOver = true
			} else if histFull && extra < maxExtra {
				c.dirty = true
				extra++
			}
		}
		if netOver && stall >= stallNetRip {
			// Whole-net escalation: let the stuck net reorganise its
			// entire tree, as classic PathFinder would.
			for ci := range N.conns {
				N.conns[ci].dirty = true
			}
		}
	}
}

// countOverused counts nodes oversubscribed in some mode, without the
// main scan's history side effects.
func (r *router) countOverused() int {
	overused := 0
	for n := 0; n < r.g.NumNodes(); n++ {
		for m := range r.occ {
			if r.occ[m][n] > r.cap[n] {
				overused++
				break
			}
		}
	}
	return overused
}

// result builds the public Trees from the per-net connection paths. Edges
// are emitted in path-walk discovery order, which is topological: a node's
// incoming edge is appended when the node is first discovered, before any
// later connection walks past it.
func (r *router) result() *Result {
	trees := make([]Tree, len(r.nets))
	seen := make([]bool, r.g.NumNodes())
	for ni := range r.nets {
		N := &r.nets[ni]
		t := Tree{Nodes: []int32{N.source}}
		seen[N.source] = true
		for ci := range N.conns {
			p := N.conns[ci].path
			for i := 1; i < len(p); i++ {
				if seen[p[i]] {
					continue
				}
				t.Edges = append(t.Edges, Edge{From: p[i-1], To: p[i]})
				t.Nodes = append(t.Nodes, p[i])
				seen[p[i]] = true
			}
		}
		for _, node := range t.Nodes {
			seen[node] = false
		}
		r.buildUnion(N)
		t.NodeMasks = make([]uint64, len(t.Nodes))
		for i, node := range t.Nodes {
			t.NodeMasks[i] = r.treeMask[node]
		}
		r.wipeUnion()
		trees[N.orig] = t
	}
	res := &Result{Trees: trees, Iterations: r.stats.Iterations, Stats: r.stats}
	return res
}
