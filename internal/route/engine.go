package route

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
)

// batchConns is the target number of connections per parallel batch. It is
// a fixed constant — never derived from Options.Workers — because batch
// composition decides which connections see which congestion snapshot:
// deriving it from the worker count would make results depend on it.
const batchConns = 64

// histExtraDiv bounds the history-driven reroute set: at most
// max(histExtraMin, connections/histExtraDiv) uncongested connections that
// sit on full, history-laden nodes are rerouted per iteration, giving
// negotiation a chance to vacate chronic hotspots before they overflow.
const (
	histExtraDiv = 16
	histExtraMin = 4
)

// Stall escalation: connection-level rip-up can livelock on instances
// where two nets flip-flop over one resource (classic whole-net PathFinder
// escapes these by reorganising entire trees). When the overused-node
// count has not improved for stallNetRip iterations the rip-up scope
// widens to whole nets (every connection of any net touching congestion);
// at stallFullRip it widens to the full netlist. The counters reset as
// soon as congestion improves, so converging runs never pay for this.
const (
	stallNetRip  = 4
	stallFullRip = 8
)

// conn is one source→sink connection. path, when routed, is the complete
// node sequence from the net's SOURCE to the sink; a net's tree is the
// union of its connections' paths, which stays a tree because a reroute
// only ever attaches fresh nodes to the existing union (shared prefixes
// are shared wires).
type conn struct {
	sink  int32
	mask  uint64  // occupancy mask of this connection
	path  []int32 // full source→sink path; nil = unrouted
	dirty bool    // scheduled for rip-up and reroute this iteration
}

// netRT is the routing state of one net.
type netRT struct {
	orig   int // index into the caller's net slice
	name   string
	source int32
	mask   uint64 // net-wide mode mask (normalised)
	conns  []conn // canonical (nearest-sink-first) order
}

// connRef addresses one connection canonically.
type connRef struct {
	net  int32 // canonical net index
	conn int32
}

// job is one net's reroute work within a batch: the dirty connection
// indices and, after the route phase, the new full paths (parallel to
// dirty).
type job struct {
	net   int32
	dirty []int32
	paths [][]int32
	err   error
}

// router carries the PathFinder state. Occupancy is per mode: a node is
// overused only if some single mode oversubscribes it, so nets of disjoint
// mode masks share resources freely.
//
// The congestion state is node-major: occ[node*nModes+m] and
// hist[node*nModes+m] keep one node's per-mode occupancy and history on
// the same cache line, because every nodeCost evaluation in the A* inner
// loop scans all modes of one node — the mode-major [mode][node] layout
// touched nModes scattered lines per call. The m = 0..nModes-1 summation
// order inside each node is unchanged, so every cost comes out
// bit-identical to the old layout (TestRoutedResultGoldenHashes).
type router struct {
	g      *arch.Graph
	opt    Options
	nModes int
	cap    []int16
	occ    []int16   // node-major: occ[node*nModes+m]
	hist   []float64 // node-major: history is per mode, so contention in
	// one mode does not repel nets of other modes from resources they
	// could legally share
	base    []float64 // precomputed baseCost per node
	presFac float64
	allMask uint64
	nets    []netRT // canonical order

	searchers []*searcher

	// Persistent parallel-batch pool: opt.Workers-1 goroutines started at
	// the first parallel batch and fed one batchRun per routeBatch call
	// through dedicated channels (the caller is worker 0). Iterations no
	// longer pay goroutine startup per batch — the pool lives for the
	// whole negotiation loop.
	poolWake []chan *batchRun
	poolRun  batchRun

	// Worklist scratch reused across iterations: jobs is the flat per-net
	// job list, batchEnds its batch boundaries, dirtyBuf the backing array
	// every job's dirty slice points into (capacity fixed at the total
	// connection count, so appends never reallocate and the subslices stay
	// valid).
	jobs      []job
	batchEnds []int
	dirtyBuf  []int32

	// Union-table scratch for occupancy bookkeeping: treeMask[n] is the
	// mode mask net-under-edit occupies at n, treeList the nodes with a
	// nonzero entry (the wipe list).
	treeMask []uint64
	treeList []int32

	// Batch-commit conflict tracking: touchedBy[n] is the canonical index
	// of the last net whose commit increased occupancy at n in the current
	// batch (-1 outside commits), touchedList the wipe list.
	touchedBy   []int32
	touchedList []int32

	stats Stats
}

func newRouter(g *arch.Graph, nets []Net, opt Options) *router {
	r := &router{g: g, opt: opt, nModes: opt.ModeCount, cap: capacities(g)}
	r.occ = make([]int16, g.NumNodes()*r.nModes)
	r.hist = make([]float64, g.NumNodes()*r.nModes)
	r.base = make([]float64, g.NumNodes())
	for i := range r.base {
		r.base[i] = baseCost(g.Nodes[i].Type)
	}
	if opt.ModeCount >= 64 {
		r.allMask = ^uint64(0)
	} else {
		r.allMask = uint64(1)<<uint(opt.ModeCount) - 1
	}

	maskOf := func(n *Net) uint64 {
		if n.ModeMask == 0 {
			return r.allMask
		}
		return n.ModeMask & r.allMask
	}

	// Stable net order: nets active in more modes first (they have the
	// least resource-sharing freedom), then high-fanout, then by name.
	order := make([]int, len(nets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := nets[order[i]], nets[order[j]]
		pa, pb := bits.OnesCount64(maskOf(&a)), bits.OnesCount64(maskOf(&b))
		if pa != pb {
			return pa > pb
		}
		if len(a.Sinks) != len(b.Sinks) {
			return len(a.Sinks) > len(b.Sinks)
		}
		return a.Name < b.Name
	})

	r.nets = make([]netRT, len(nets))
	for ci, ni := range order {
		n := &nets[ni]
		netMask := maskOf(n)
		nr := &r.nets[ci]
		nr.orig = ni
		nr.name = n.Name
		nr.source = n.Source
		nr.mask = netMask

		// Deterministic connection order: nearest sink first, ties by
		// sink id. New connections attach to the tree grown by earlier
		// ones, so near sinks laying trunk first shortens the rest.
		idx := make([]int, len(n.Sinks))
		for i := range idx {
			idx[i] = i
		}
		sx, sy := g.Xs[n.Source], g.Ys[n.Source]
		sort.SliceStable(idx, func(i, j int) bool {
			a, b := n.Sinks[idx[i]], n.Sinks[idx[j]]
			da := math.Abs(float64(g.Xs[a]-sx)) + math.Abs(float64(g.Ys[a]-sy))
			db := math.Abs(float64(g.Xs[b]-sx)) + math.Abs(float64(g.Ys[b]-sy))
			if da != db {
				return da < db
			}
			return n.Sinks[idx[i]] < n.Sinks[idx[j]]
		})
		nr.conns = make([]conn, len(idx))
		for k, si := range idx {
			mask := netMask
			if n.SinkMasks != nil {
				if m := n.SinkMasks[si] & r.allMask; m != 0 {
					mask = m
				}
			}
			nr.conns[k] = conn{sink: n.Sinks[si], mask: mask, dirty: true}
			r.stats.Connections++
		}
		if opt.Warm != nil {
			if t := opt.Warm[ni]; t != nil {
				r.seedWarm(nr, t)
			}
		}
	}

	r.treeMask = make([]uint64, g.NumNodes())
	r.touchedBy = make([]int32, g.NumNodes())
	for i := range r.touchedBy {
		r.touchedBy[i] = -1
	}
	r.searchers = make([]*searcher, opt.Workers)
	for i := range r.searchers {
		r.searchers[i] = newSearcher(r)
	}
	// Fixed-capacity dirty backing array: an iteration schedules at most
	// every connection, so subslices handed to jobs never reallocate.
	r.dirtyBuf = make([]int32, 0, r.stats.Connections)
	// Park every net's source: isolated nets (no sinks) occupy their
	// source for the whole run, and the rip/commit bookkeeping below
	// always removes a net's full contribution before re-adding it.
	for ni := range r.nets {
		r.buildUnion(&r.nets[ni])
		r.applyUnion(+1)
		r.wipeUnion()
	}
	if opt.Warm != nil {
		r.dirtyOverusedWarm()
	}
	return r
}

// seedWarm pre-routes net nr's connections from a baseline tree: for each
// sink reachable from nr.source by a backward walk over the tree's edges,
// the connection starts routed on that source-rooted path and clean. A
// sink the walk cannot resolve — the cell moved, the tree belongs to an
// older geometry, the edge list is cyclic or out of bounds — leaves its
// connection dirty, so it simply routes cold. Occupancy for the seeded
// paths is folded in by the source-parking pass in newRouter.
func (r *router) seedWarm(nr *netRT, t *Tree) {
	numNodes := int32(r.g.NumNodes())
	if nr.source < 0 || nr.source >= numNodes {
		return
	}
	parent := make(map[int32]int32, len(t.Edges))
	for _, e := range t.Edges {
		if e.From < 0 || e.From >= numNodes || e.To < 0 || e.To >= numNodes {
			return
		}
		parent[e.To] = e.From
	}
	var rev []int32
	seeded := false
	for ci := range nr.conns {
		c := &nr.conns[ci]
		rev = rev[:0]
		node := c.sink
		ok := false
		for steps := 0; steps <= len(t.Edges); steps++ {
			rev = append(rev, node)
			if node == nr.source {
				ok = true
				break
			}
			p, exists := parent[node]
			if !exists {
				break
			}
			node = p
		}
		if !ok {
			continue
		}
		path := make([]int32, len(rev))
		for i, n := range rev {
			path[len(rev)-1-i] = n
		}
		c.path = path
		c.dirty = false
		seeded = true
		r.stats.WarmConns++
	}
	if seeded {
		r.stats.WarmNets++
	}
}

// dirtyOverusedWarm re-marks any warm-seeded connection whose path crosses
// a node overused in one of its modes. Mutually legal baseline trees never
// trip this, but a transferred placement can seed paths that collide with
// the fixed sources of moved nets — without this pass such a collision
// would present as "nothing to reroute, yet overused" and fail, instead of
// entering negotiation.
func (r *router) dirtyOverusedWarm() {
	for ni := range r.nets {
		N := &r.nets[ni]
		for ci := range N.conns {
			c := &N.conns[ci]
			if c.dirty || c.path == nil {
				continue
			}
		scan:
			for _, node := range c.path {
				occ := r.occ[int(node)*r.nModes : int(node)*r.nModes+r.nModes]
				for m := 0; m < r.nModes; m++ {
					if c.mask>>uint(m)&1 == 1 && occ[m] > r.cap[node] {
						c.dirty = true
						break scan
					}
				}
			}
		}
	}
}

// nodeCost prices node n for a branch occupying curMask, with history over
// histMask. Worst overuse over the modes the branch is active in; for ≥3
// modes histMask is the whole net's mask: the prefix shared by a net's
// branches carries the union of their modes, so a branch that prices only
// its own modes can keep re-choosing a prefix whose congestion lives in a
// sibling branch's mode — the history term is what breaks that deadlock.
func (r *router) nodeCost(n int32, curMask, histMask uint64) float64 {
	b := r.base[n]
	var worst int16
	var h float64
	// The 1- and 2-mode cases are unrolled: this is the hottest call in
	// the A* expansion loop, and the masked maxima over non-negative
	// occupancy/history values come out identical with or without the
	// generic scan, so specialisation cannot change routed bytes.
	switch r.nModes {
	case 1:
		if histMask&1 != 0 {
			h = r.hist[n]
		}
		if curMask&1 != 0 {
			worst = r.occ[n]
		}
	case 2:
		off := int(n) * 2
		if histMask&1 != 0 {
			h = r.hist[off]
		}
		if histMask&2 != 0 && r.hist[off+1] > h {
			h = r.hist[off+1]
		}
		if curMask&1 != 0 {
			worst = r.occ[off]
		}
		if curMask&2 != 0 && r.occ[off+1] > worst {
			worst = r.occ[off+1]
		}
	default:
		off := int(n) * r.nModes
		occ := r.occ[off : off+r.nModes]
		hist := r.hist[off : off+r.nModes]
		for m := 0; m < r.nModes; m++ {
			if histMask>>uint(m)&1 == 1 && hist[m] > h {
				h = hist[m]
			}
			if curMask>>uint(m)&1 == 0 {
				continue
			}
			if o := occ[m]; o > worst {
				worst = o
			}
		}
	}
	over := float64(worst + 1 - r.cap[n])
	pres := 1.0
	if over > 0 {
		pres += r.presFac * over
	}
	return b * (1 + h) * pres
}

// adjustOcc adds delta to the occupancy of node n in every mode of mask.
func (r *router) adjustOcc(n int32, mask uint64, delta int16) {
	occ := r.occ[int(n)*r.nModes : int(n)*r.nModes+r.nModes]
	for m := 0; m < r.nModes; m++ {
		if mask>>uint(m)&1 == 1 {
			occ[m] += delta
		}
	}
}

// buildUnionPaths fills the union table with the contribution of net N's
// routed connections: each occupies every node of its path in the
// connection's modes. The caller must wipeUnion when done.
func (r *router) buildUnionPaths(N *netRT) {
	r.treeList = r.treeList[:0]
	for ci := range N.conns {
		c := &N.conns[ci]
		if c.path == nil {
			continue
		}
		for _, node := range c.path {
			if r.treeMask[node] == 0 {
				r.treeList = append(r.treeList, node)
			}
			r.treeMask[node] |= c.mask
		}
	}
}

// finishUnion parks the source of a net with no routed connections. It
// must run after every fold into the table and before applyUnion, so the
// applied contribution is always a pure function of the net's connection
// state — mixing the parked-source entry with folded paths would leak
// occupancy in the modes the paths don't cover.
func (r *router) finishUnion(N *netRT) {
	if r.treeMask[N.source] == 0 {
		r.treeMask[N.source] = N.mask
		r.treeList = append(r.treeList, N.source)
	}
}

// buildUnion fills the union table with net N's complete current
// contribution (routed connections, or the parked source).
func (r *router) buildUnion(N *netRT) {
	r.buildUnionPaths(N)
	r.finishUnion(N)
}

// applyUnion adds delta occupancy over the current union table.
func (r *router) applyUnion(delta int16) {
	for _, n := range r.treeList {
		r.adjustOcc(n, r.treeMask[n], delta)
	}
}

// wipeUnion clears the union table in O(touched).
func (r *router) wipeUnion() {
	for _, n := range r.treeList {
		r.treeMask[n] = 0
	}
	r.treeList = r.treeList[:0]
}

// ripNet removes the paths of the given dirty connections, updating
// occupancy to the remaining tree.
func (r *router) ripNet(N *netRT, dirty []int32) {
	r.buildUnion(N)
	r.applyUnion(-1)
	r.wipeUnion()
	for _, ci := range dirty {
		N.conns[ci].path = nil
	}
	r.buildUnion(N)
	r.applyUnion(+1)
	r.wipeUnion()
}

// commitNet folds a routed batch job into net N: each new path is conflict
// checked (would it newly overuse a node another net's commit claimed this
// batch?) and either accepted or requeued for a serial reroute. Occupancy
// moves from the net's pre-commit contribution to the accepted union, and
// every node whose occupancy grew is stamped for later conflict checks.
func (r *router) commitNet(canon int32, jb *job, requeue *[]connRef) {
	N := &r.nets[canon]
	r.buildUnion(N)
	r.applyUnion(-1) // occ now excludes N entirely
	r.wipeUnion()
	r.buildUnionPaths(N) // conflict-check base: remaining connections only
	for k, ci := range jb.dirty {
		p := jb.paths[k]
		c := &N.conns[ci]
		conflict := false
		for _, node := range p {
			add := c.mask &^ r.treeMask[node]
			if add == 0 {
				continue
			}
			if tb := r.touchedBy[node]; tb >= 0 && tb != canon {
				occ := r.occ[int(node)*r.nModes : int(node)*r.nModes+r.nModes]
				for m := 0; m < r.nModes; m++ {
					if add>>uint(m)&1 == 1 && occ[m]+1 > r.cap[node] {
						conflict = true
						break
					}
				}
				if conflict {
					break
				}
			}
		}
		if conflict {
			*requeue = append(*requeue, connRef{net: canon, conn: int32(ci)})
			r.stats.Requeued++
			continue
		}
		c.path = p
		for _, node := range p {
			if c.mask&^r.treeMask[node] == 0 {
				continue
			}
			if r.treeMask[node] == 0 {
				r.treeList = append(r.treeList, node)
			}
			r.treeMask[node] |= c.mask
			if r.touchedBy[node] < 0 {
				r.touchedList = append(r.touchedList, node)
			}
			r.touchedBy[node] = canon
		}
	}
	r.finishUnion(N)
	r.applyUnion(+1)
	r.wipeUnion()
}

// commitOne folds a single serially rerouted connection (requeue fallback:
// no conflict check, live state).
func (r *router) commitOne(N *netRT, ci int32, p []int32) {
	r.buildUnion(N)
	r.applyUnion(-1)
	r.wipeUnion()
	N.conns[ci].path = p
	r.buildUnion(N)
	r.applyUnion(+1)
	r.wipeUnion()
}

// run executes the negotiation loop.
func (r *router) run() (*Result, error) {
	g := r.g
	defer r.stopPool()
	var requeue []connRef
	bestOverused := int(^uint(0) >> 1)
	stall := 0
	for iter := 1; iter <= r.opt.MaxIters; iter++ {
		// Present-congestion schedule: the first two iterations discover
		// congestion at the opening factor, then the price escalates.
		if iter <= 2 {
			r.presFac = r.opt.FirstPresFac
		} else {
			r.presFac *= r.opt.PresFacMult
			if r.presFac > 1e6 {
				r.presFac = 1e6
			}
		}

		// Collect this iteration's worklist as per-net jobs, canonical
		// order, batched at batchConns connections. jobs / batchEnds /
		// dirtyBuf are scratch reused across iterations; dirtyBuf's
		// capacity is fixed at the total connection count, so the dirty
		// subslices handed to jobs never move.
		r.jobs = r.jobs[:0]
		r.batchEnds = r.batchEnds[:0]
		r.dirtyBuf = r.dirtyBuf[:0]
		inBatch := 0
		rerouted := 0
		for ni := range r.nets {
			N := &r.nets[ni]
			start := len(r.dirtyBuf)
			for ci := range N.conns {
				if N.conns[ci].dirty {
					r.dirtyBuf = append(r.dirtyBuf, int32(ci))
					N.conns[ci].dirty = false
				}
			}
			dirty := r.dirtyBuf[start:len(r.dirtyBuf):len(r.dirtyBuf)]
			if len(dirty) == 0 {
				continue
			}
			rerouted += len(dirty)
			r.jobs = append(r.jobs, job{net: int32(ni), dirty: dirty})
			inBatch += len(dirty)
			if inBatch >= batchConns {
				r.batchEnds = append(r.batchEnds, len(r.jobs))
				inBatch = 0
			}
		}
		if inBatch > 0 {
			r.batchEnds = append(r.batchEnds, len(r.jobs))
		}
		if rerouted == 0 {
			// Nothing to rip. Either the netlist routed trivially (no
			// connections at all), or the remaining overuse sits on fixed
			// source nodes no reroute can move.
			if r.countOverused() == 0 {
				r.stats.Iterations = iter
				r.stats.Rerouted = append(r.stats.Rerouted, 0)
				return r.result(), nil
			}
			break
		}
		r.stats.Rerouted = append(r.stats.Rerouted, rerouted)
		r.stats.Iterations = iter

		requeue = requeue[:0]
		bStart := 0
		for _, bEnd := range r.batchEnds {
			batch := r.jobs[bStart:bEnd]
			bStart = bEnd
			for ji := range batch {
				r.ripNet(&r.nets[batch[ji].net], batch[ji].dirty)
			}
			// Route phase: occ/hist/presFac are frozen; each job depends
			// only on that state plus its own net, so worker scheduling
			// cannot change any result.
			r.routeBatch(batch)
			for ji := range batch {
				if err := batch[ji].err; err != nil {
					return nil, fmt.Errorf("route: net %q: %w", r.nets[batch[ji].net].name, err)
				}
			}
			// Commit phase: serial, canonical order.
			for ji := range batch {
				r.commitNet(batch[ji].net, &batch[ji], &requeue)
			}
			for _, n := range r.touchedList {
				r.touchedBy[n] = -1
			}
			r.touchedList = r.touchedList[:0]
		}

		// Requeue fallback: conflicting commits reroute serially against
		// live congestion, still in canonical order.
		s := r.searchers[0]
		for _, cr := range requeue {
			N := &r.nets[cr.net]
			p, err := s.routeOne(N, cr.conn)
			if err != nil {
				return nil, fmt.Errorf("route: net %q: %w", N.name, err)
			}
			r.commitOne(N, cr.conn, p)
		}

		// Congestion check: a node is overused if any single mode
		// oversubscribes it; history accumulates in that mode only.
		overused := 0
		for n := 0; n < g.NumNodes(); n++ {
			over := false
			off := n * r.nModes
			occ := r.occ[off : off+r.nModes]
			hist := r.hist[off : off+r.nModes]
			for m := 0; m < r.nModes; m++ {
				if d := occ[m] - r.cap[n]; d > 0 {
					over = true
					hist[m] += r.opt.AccFac * float64(d)
					if int(d) > r.stats.PeakOveruse {
						r.stats.PeakOveruse = int(d)
					}
				}
			}
			if over {
				overused++
			}
		}
		if overused == 0 {
			return r.result(), nil
		}
		if overused < bestOverused {
			bestOverused = overused
			stall = 0
		} else {
			stall++
		}
		r.markDirty(stall)
	}

	// Unroutable: report a few overused nodes.
	overused := 0
	detail := ""
	for n := 0; n < g.NumNodes(); n++ {
		var worst int16
		occ := r.occ[n*r.nModes : n*r.nModes+r.nModes]
		for m := 0; m < r.nModes; m++ {
			if occ[m] > worst {
				worst = occ[m]
			}
		}
		if worst > r.cap[n] {
			overused++
			if overused <= 3 {
				detail += fmt.Sprintf("; node %d %v occ=%d cap=%d", n, g.Nodes[n], worst, r.cap[n])
			}
		}
	}
	return nil, &ErrUnroutable{Overused: overused, Iters: r.stats.Iterations, Detail: detail}
}

// batchRun is the unit of work handed to the persistent pool: workers
// pull job indices from next until the batch is drained, then signal wg.
type batchRun struct {
	batch []job
	next  atomic.Int32
	wg    sync.WaitGroup
}

// startPool lazily starts the opt.Workers-1 pool goroutines; the caller
// of routeBatch acts as worker 0. Each worker owns searchers[w+1] and a
// dedicated wake channel carrying one *batchRun per routeBatch call;
// closing the channels (stopPool) shuts the pool down. The goroutines —
// and their searcher scratch — live for the whole negotiation loop, so
// iterations stop re-paying goroutine startup per batch.
func (r *router) startPool() {
	r.poolWake = make([]chan *batchRun, r.opt.Workers-1)
	for w := range r.poolWake {
		wake := make(chan *batchRun)
		r.poolWake[w] = wake
		s := r.searchers[w+1]
		go func() {
			for br := range wake {
				for {
					ji := int(br.next.Add(1)) - 1
					if ji >= len(br.batch) {
						break
					}
					s.routeJob(&br.batch[ji])
				}
				br.wg.Done()
			}
		}()
	}
}

// stopPool shuts the persistent workers down. Safe when the pool was
// never started.
func (r *router) stopPool() {
	for _, wake := range r.poolWake {
		close(wake)
	}
	r.poolWake = nil
}

// routeBatch runs the batch's jobs on the persistent worker pool. Workers
// pull jobs from an atomic counter; each job's result is a pure function
// of the frozen congestion state, so the pull order — and the number of
// workers woken — is irrelevant to results.
func (r *router) routeBatch(batch []job) {
	if r.opt.Workers <= 1 || len(batch) <= 1 {
		s := r.searchers[0]
		for ji := range batch {
			s.routeJob(&batch[ji])
		}
		return
	}
	if r.poolWake == nil {
		r.startPool()
	}
	br := &r.poolRun
	br.batch = batch
	br.next.Store(0)
	nWake := len(r.poolWake)
	if nWake > len(batch)-1 {
		nWake = len(batch) - 1
	}
	br.wg.Add(nWake)
	for _, wake := range r.poolWake[:nWake] {
		wake <- br
	}
	s := r.searchers[0] // the caller is worker 0
	for {
		ji := int(br.next.Add(1)) - 1
		if ji >= len(batch) {
			break
		}
		s.routeJob(&batch[ji])
	}
	br.wg.Wait()
	br.batch = nil
}

// markDirty schedules the next iteration's reroute set: every connection
// crossing a node overused in one of its modes, plus — capped — clean
// connections parked on full nodes with congestion history, which lets
// negotiation vacate chronic hotspots early. The stall counter widens the
// scope when congestion stops improving (see stallNetRip/stallFullRip);
// FullRipUp schedules everything unconditionally (the classic
// whole-netlist behaviour).
func (r *router) markDirty(stall int) {
	if r.opt.FullRipUp || stall >= stallFullRip {
		for ni := range r.nets {
			for ci := range r.nets[ni].conns {
				r.nets[ni].conns[ci].dirty = true
			}
		}
		return
	}
	maxExtra := r.stats.Connections / histExtraDiv
	if maxExtra < histExtraMin {
		maxExtra = histExtraMin
	}
	extra := 0
	for ni := range r.nets {
		N := &r.nets[ni]
		netOver := false
		for ci := range N.conns {
			c := &N.conns[ci]
			over, histFull := false, false
		scan:
			for _, node := range c.path {
				off := int(node) * r.nModes
				occ := r.occ[off : off+r.nModes]
				hist := r.hist[off : off+r.nModes]
				for m := 0; m < r.nModes; m++ {
					if c.mask>>uint(m)&1 == 0 {
						continue
					}
					switch {
					case occ[m] > r.cap[node]:
						over = true
						break scan
					case occ[m] == r.cap[node] && hist[m] > 0:
						histFull = true
					}
				}
			}
			if over {
				c.dirty = true
				netOver = true
			} else if histFull && extra < maxExtra {
				c.dirty = true
				extra++
			}
		}
		if netOver && stall >= stallNetRip {
			// Whole-net escalation: let the stuck net reorganise its
			// entire tree, as classic PathFinder would.
			for ci := range N.conns {
				N.conns[ci].dirty = true
			}
		}
	}
}

// countOverused counts nodes oversubscribed in some mode, without the
// main scan's history side effects.
func (r *router) countOverused() int {
	overused := 0
	for n := 0; n < r.g.NumNodes(); n++ {
		occ := r.occ[n*r.nModes : n*r.nModes+r.nModes]
		for m := 0; m < r.nModes; m++ {
			if occ[m] > r.cap[n] {
				overused++
				break
			}
		}
	}
	return overused
}

// result builds the public Trees from the per-net connection paths. Edges
// are emitted in path-walk discovery order, which is topological: a node's
// incoming edge is appended when the node is first discovered, before any
// later connection walks past it.
func (r *router) result() *Result {
	trees := make([]Tree, len(r.nets))
	seen := make([]bool, r.g.NumNodes())
	for ni := range r.nets {
		N := &r.nets[ni]
		t := Tree{Nodes: []int32{N.source}}
		seen[N.source] = true
		for ci := range N.conns {
			p := N.conns[ci].path
			for i := 1; i < len(p); i++ {
				if seen[p[i]] {
					continue
				}
				t.Edges = append(t.Edges, Edge{From: p[i-1], To: p[i]})
				t.Nodes = append(t.Nodes, p[i])
				seen[p[i]] = true
			}
		}
		for _, node := range t.Nodes {
			seen[node] = false
		}
		r.buildUnion(N)
		t.NodeMasks = make([]uint64, len(t.Nodes))
		for i, node := range t.Nodes {
			t.NodeMasks[i] = r.treeMask[node]
		}
		r.wipeUnion()
		trees[N.orig] = t
	}
	for _, s := range r.searchers {
		r.stats.HeapPushes += s.heapPushes
		r.stats.NodesVisited += s.nodesVisited
	}
	res := &Result{Trees: trees, Iterations: r.stats.Iterations, Stats: r.stats}
	return res
}
