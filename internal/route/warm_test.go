package route

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/arch"
)

// warmNets builds a moderately congested multi-net instance.
func warmNets(g *arch.Graph) []Net {
	var nets []Net
	for y := 1; y <= 4; y++ {
		nets = append(nets, Net{
			Name:   fmt.Sprintf("h%d", y),
			Source: g.CLBSource(1, y),
			Sinks:  []int32{g.CLBSink(4, y), g.CLBSink(3, y)},
		})
	}
	nets = append(nets, Net{
		Name:   "diag",
		Source: g.CLBSource(2, 2),
		Sinks:  []int32{g.CLBSink(4, 4)},
	})
	return nets
}

func warmTrees(res *Result) []*Tree {
	warm := make([]*Tree, len(res.Trees))
	for i := range res.Trees {
		warm[i] = &res.Trees[i]
	}
	return warm
}

// A fully valid baseline must seed every connection and reconverge in one
// iteration to the identical result.
func TestWarmStartFullReuse(t *testing.T) {
	a := arch.New(4, 4, 4)
	g := arch.BuildGraph(a)
	nets := warmNets(g)
	cold, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Route(g, nets, Options{Warm: warmTrees(cold)})
	if err != nil {
		t.Fatal(err)
	}
	checkRouting(t, g, nets, warm)
	if warm.Stats.WarmConns != warm.Stats.Connections {
		t.Fatalf("seeded %d/%d connections", warm.Stats.WarmConns, warm.Stats.Connections)
	}
	if warm.Stats.WarmNets != len(nets) {
		t.Fatalf("WarmNets %d, want %d", warm.Stats.WarmNets, len(nets))
	}
	if warm.Iterations != 1 || warm.Stats.TotalRerouted() != 0 {
		t.Fatalf("full warm start rerouted %d conns over %d iterations",
			warm.Stats.TotalRerouted(), warm.Iterations)
	}
	if !reflect.DeepEqual(warm.Trees, cold.Trees) {
		t.Fatal("full warm start changed the routing")
	}
}

// A baseline for a changed netlist (one net's sink moved) must seed the
// untouched nets, reroute the moved one cold, and produce a legal result.
func TestWarmStartPartialReuse(t *testing.T) {
	a := arch.New(4, 4, 4)
	g := arch.BuildGraph(a)
	nets := warmNets(g)
	cold, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edited := append([]Net(nil), nets...)
	edited[4].Sinks = []int32{g.CLBSink(2, 4)} // the "diag" cell moved
	warm, err := Route(g, edited, Options{Warm: warmTrees(cold)})
	if err != nil {
		t.Fatal(err)
	}
	checkRouting(t, g, edited, warm)
	if warm.Stats.WarmConns != cold.Stats.Connections-1 {
		t.Fatalf("seeded %d connections, want %d", warm.Stats.WarmConns, cold.Stats.Connections-1)
	}
	// The warm result must match a cold route at any worker count
	// (determinism contract extends to warm starts).
	warmJ4, err := Route(g, edited, Options{Warm: warmTrees(cold), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Trees, warmJ4.Trees) {
		t.Fatal("warm routing differs between 1 and 4 workers")
	}
}

// Garbage baselines — wrong length is an error; out-of-range nodes or
// trees that do not reach the sinks degrade to a cold route.
func TestWarmStartRejectsAndDegrades(t *testing.T) {
	a := arch.New(4, 4, 4)
	g := arch.BuildGraph(a)
	nets := warmNets(g)
	if _, err := Route(g, nets, Options{Warm: make([]*Tree, 1)}); err == nil {
		t.Fatal("mismatched Warm length not rejected")
	}
	bogus := make([]*Tree, len(nets))
	bogus[0] = &Tree{Edges: []Edge{{From: 1 << 30, To: 2}}}
	bogus[1] = &Tree{Edges: []Edge{{From: 5, To: 5}}} // cycle, reaches nothing
	res, err := Route(g, nets, Options{Warm: bogus})
	if err != nil {
		t.Fatal(err)
	}
	checkRouting(t, g, nets, res)
	if res.Stats.WarmConns != 0 {
		t.Fatalf("bogus baseline seeded %d connections", res.Stats.WarmConns)
	}
	cold, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Trees, cold.Trees) {
		t.Fatal("degraded warm route differs from cold route")
	}
}
