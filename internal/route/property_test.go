package route

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
)

// TestWirelengthLowerBound checks a routing invariant: every point-to-point
// route uses at least the Manhattan distance in wire segments.
func TestWirelengthLowerBound(t *testing.T) {
	a := arch.New(6, 6, 6)
	g := arch.BuildGraph(a)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		x1, y1 := 1+rng.Intn(6), 1+rng.Intn(6)
		x2, y2 := 1+rng.Intn(6), 1+rng.Intn(6)
		if x1 == x2 && y1 == y2 {
			continue
		}
		nets := []Net{{
			Name:   "p2p",
			Source: g.CLBSource(x1, y1),
			Sinks:  []int32{g.CLBSink(x2, y2)},
		}}
		res, err := Route(g, nets, Options{})
		if err != nil {
			t.Fatal(err)
		}
		manhattan := abs(x1-x2) + abs(y1-y2)
		wl := WireLength(g, res.Trees[0])
		if wl < manhattan {
			t.Fatalf("(%d,%d)->(%d,%d): wl %d below Manhattan %d", x1, y1, x2, y2, wl, manhattan)
		}
		// A* with small epsilon must stay near-optimal on an empty fabric.
		if wl > manhattan*2+4 {
			t.Errorf("(%d,%d)->(%d,%d): wl %d far above Manhattan %d", x1, y1, x2, y2, wl, manhattan)
		}
	}
}

// TestModeMaskSharing checks the Tunable-routing capacity model: two nets
// with disjoint mode masks may occupy the same wire, two nets sharing a
// mode may not.
func TestModeMaskSharing(t *testing.T) {
	// A 1-track fabric: only one horizontal path between two blocks, so
	// both nets MUST share wires — legal only when masks are disjoint.
	a := arch.New(3, 1, 1)
	a.FcIn, a.FcOut = 1, 1
	g := arch.BuildGraph(a)
	mk := func(maskA, maskB uint64) error {
		nets := []Net{
			{Name: "n0", Source: g.CLBSource(1, 1), Sinks: []int32{g.CLBSink(3, 1)}, ModeMask: maskA},
			{Name: "n1", Source: g.CLBSource(1, 1), Sinks: []int32{g.CLBSink(3, 1)}, ModeMask: maskB},
		}
		// Different sources are required (one net per source); use block 2
		// for the second net instead.
		nets[1].Source = g.CLBSource(2, 1)
		_, err := Route(g, nets, Options{ModeCount: 2, MaxIters: 12})
		return err
	}
	if err := mk(0b01, 0b10); err != nil {
		t.Errorf("mode-disjoint nets failed to share: %v", err)
	}
	// Same mode: with W=1 some resource must be overused — expect either a
	// failure or a successful detour; at least it must not panic. The
	// tight 3x1 fabric has only one channel, so overlap is forced.
	if err := mk(0b01, 0b01); err == nil {
		t.Log("same-mode nets routed disjointly (fabric had slack); acceptable")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
