package route

import (
	"fmt"
	"math"
)

// pqItem is one priority-queue entry. Items are values, not pointers: the
// heap is a plain slice that is reset (not freed) between searches, so a
// search allocates nothing once the slice has grown to its working size.
// The entry is deliberately 16 bytes — est plus node, no path cost: the
// cost is read back from visited[] on a pop, and the decrease-key queue
// (see heapPush) holds at most one entry per node, so no staleness state
// rides along. Sift swaps move these, so the bytes matter.
type pqItem struct {
	est  float64 // path cost + A* lower bound
	node int32
}

// less orders the heap by estimated total cost, breaking ties by node id so
// the search (and therefore the whole routing) is deterministic.
func (a pqItem) less(b pqItem) bool {
	if a.est != b.est {
		return a.est < b.est
	}
	return a.node < b.node
}

// seedItem is one seed-frontier entry: 8 bytes, integer-keyed. A seed's
// est is AStarFac·distance with the path cost always zero, and x ↦
// AStarFac·x is strictly monotone, so ordering by (key, node) — where
// key is the Manhattan distance, sign-flipped if AStarFac is negative —
// is exactly the (est, node) order of the main heap. Integer compares
// and half-size sift traffic make loading the seed frontier (the bulk of
// all queue entries, re-done per connection) much cheaper; the float est
// is materialised only when a seed top is compared against the main
// heap's.
type seedItem struct {
	key  int32 // Manhattan distance to the sink (negated iff AStarFac < 0)
	node int32
}

func (a seedItem) less(b seedItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.node < b.node
}

// searcher is the per-worker search state: the A* scratch plus the
// net-local tree view (seed membership and parent pointers) used to grow
// full source-rooted paths. Every worker owns one, so batch routing needs
// no locks — workers read the router's frozen congestion arrays and write
// only their own searcher.
type searcher struct {
	r *router

	heap    []pqItem   // open improvements (decrease-key indexed via pos)
	seeds   []seedItem // static per-search seed frontier (see search)
	pos     []int32    // node → current heap index, -1 when not enqueued
	prev    []int32    // backtrace pointer per node
	visited []float64  // best path cost per node (MaxFloat64 = unvisited)
	lb      []float64  // A* lower bound, cached at first touch per search
	touched []int32    // nodes whose visited entry must be reset
	path    []int32    // backtraced attach→sink segment of the last search

	curMask  uint64 // mask of the connection being routed
	histMask uint64 // mask for history pricing (see router.nodeCost)

	// Net-local tree view, wiped via seedList after each net.
	inTree   []bool
	parent   []int32 // tree parent per node, for source-prefix reconstruction
	seedList []int32
	prefix   []int32 // scratch for the source→attach prefix walk

	// Inner-loop work counters, summed into Stats by router.result(). Each
	// connection's search is a pure function of the congestion state it
	// runs against, and every job is routed exactly once, so the sums are
	// worker-count-invariant.
	heapPushes   int64
	nodesVisited int64
}

func newSearcher(r *router) *searcher {
	n := r.g.NumNodes()
	s := &searcher{
		r:       r,
		pos:     make([]int32, n),
		prev:    make([]int32, n),
		visited: make([]float64, n),
		lb:      make([]float64, n),
		touched: make([]int32, 0, n),
		inTree:  make([]bool, n),
		parent:  make([]int32, n),
		heap:    make([]pqItem, 0, 256),
	}
	for i := range s.visited {
		s.visited[i] = math.MaxFloat64
		s.pos[i] = -1
	}
	return s
}

// seedTree loads net N's current tree (the union of its routed
// connections' paths) into the searcher's membership and parent arrays.
func (s *searcher) seedTree(N *netRT) {
	s.seedList = s.seedList[:0]
	s.addSeed(N.source, -1)
	for ci := range N.conns {
		p := N.conns[ci].path
		for i := 1; i < len(p); i++ {
			if !s.inTree[p[i]] {
				s.addSeed(p[i], p[i-1])
			}
		}
	}
}

func (s *searcher) addSeed(node, parent int32) {
	s.inTree[node] = true
	s.parent[node] = parent
	s.seedList = append(s.seedList, node)
}

// wipeTree clears the net-local view in O(touched).
func (s *searcher) wipeTree() {
	for _, n := range s.seedList {
		s.inTree[n] = false
	}
	s.seedList = s.seedList[:0]
}

// routeJob routes every dirty connection of one net against the frozen
// congestion state, filling jb.paths with full source→sink paths. The
// net's tree grows connection by connection within the job, so later
// connections attach to segments found for earlier ones.
func (s *searcher) routeJob(jb *job) {
	N := &s.r.nets[jb.net]
	s.seedTree(N)
	defer s.wipeTree()
	jb.paths = make([][]int32, len(jb.dirty))
	for k, ci := range jb.dirty {
		p, err := s.connect(N, &N.conns[ci])
		if err != nil {
			jb.err = err
			return
		}
		jb.paths[k] = p
	}
}

// routeOne reroutes a single connection (the serial requeue fallback)
// against live congestion state.
func (s *searcher) routeOne(N *netRT, ci int32) ([]int32, error) {
	s.seedTree(N)
	defer s.wipeTree()
	return s.connect(N, &N.conns[ci])
}

// connect finds a path for one connection: an A* search seeded with the
// whole current tree, then the attach-node prefix walk that turns the
// backtraced segment into a full source→sink path. The tree view is
// extended with the new segment so subsequent connections can attach to
// it.
func (s *searcher) connect(N *netRT, c *conn) ([]int32, error) {
	s.curMask = c.mask
	// History pricing: per-branch for 1-2 modes (the paper's tuning),
	// net-wide from 3 modes up — see router.nodeCost.
	s.histMask = c.mask
	if s.r.nModes >= 3 {
		s.histMask = N.mask
	}
	seg, err := s.search(c.sink)
	if err != nil {
		return nil, err
	}
	// seg runs attach→sink with seg[0] in the tree. Reconstruct the
	// source→attach prefix from the parent pointers, then append.
	s.prefix = s.prefix[:0]
	for n := seg[0]; n != -1; n = s.parent[n] {
		s.prefix = append(s.prefix, n)
	}
	full := make([]int32, 0, len(s.prefix)+len(seg)-1)
	for i := len(s.prefix) - 1; i >= 0; i-- {
		full = append(full, s.prefix[i])
	}
	full = append(full, seg[1:]...)
	for i := 1; i < len(seg); i++ {
		if !s.inTree[seg[i]] {
			s.addSeed(seg[i], seg[i-1])
		}
	}
	return full, nil
}

// search finds the cheapest path from any tree node to the sink. The
// returned slice is scratch owned by the searcher, valid until the next
// search call.
func (s *searcher) search(sink int32) ([]int32, error) {
	const unvisited = math.MaxFloat64
	r := s.r
	s.heap = s.heap[:0]
	s.touched = s.touched[:0]
	push := func(node int32, cost float64, from int32) {
		if s.visited[node] <= cost {
			return
		}
		// The lower bound is a constant per (node, sink): compute it on
		// the node's first touch of this search and reuse the identical
		// value on every later improvement, so re-improvements (the common
		// case under the overweighted A* heuristic) skip the coordinate
		// loads entirely.
		if s.visited[node] == unvisited {
			s.touched = append(s.touched, node)
			s.lb[node] = s.lowerBound(node, sink)
		}
		// Counts improvements (inserts and decrease-keys alike), so the
		// number is comparable across queue implementations: it equals the
		// entry count a lazy-deletion queue would absorb for this search.
		s.heapPushes++
		s.visited[node] = cost
		s.prev[node] = from
		s.heapPush(pqItem{node: node, est: cost + s.lb[node]})
	}
	defer func() {
		// The heap still holds the open frontier when the sink is found;
		// clear its node→index entries so the next search starts from the
		// all-out invariant (live pops clear their own). Seed visited
		// entries are reset from seedList — they never enter touched.
		for _, e := range s.heap {
			s.pos[e.node] = -1
		}
		for _, n := range s.seedList {
			s.visited[n] = unvisited
		}
		for _, n := range s.touched {
			s.visited[n] = unvisited
		}
	}()
	// Seeds — the whole current tree, re-seeded per connection — are the
	// bulk of all queue entries, yet almost none of them ever pop. They
	// live in their own Floyd-heapified array: seeds enter at cost 0 and
	// an improvement would need a negative cost, so no seed is ever
	// decrease-keyed (and no node is in both queues), which makes the
	// seed heap static — loaded in O(seeds) with no position tracking.
	// The main heap is left holding only live improvements, a handful of
	// entries instead of hundreds. Extract-min over the two-queue union
	// takes whichever top is less(); the pop sequence over the union is
	// the same as one combined heap's, so the split cannot change routed
	// bytes.
	// Seeds skip the touched list (the deferred reset walks seedList
	// directly) and the lb cache (a seed is never re-improved, so its
	// cached bound would never be read).
	s.seeds = s.seeds[:0]
	sx, sy := int32(r.g.Xs[sink]), int32(r.g.Ys[sink])
	fac := r.opt.AStarFac
	negFac := fac < 0
	for _, n := range s.seedList {
		dx := int32(r.g.Xs[n]) - sx
		if dx < 0 {
			dx = -dx
		}
		dy := int32(r.g.Ys[n]) - sy
		if dy < 0 {
			dy = -dy
		}
		key := dx + dy
		if negFac {
			key = -key
		}
		s.visited[n] = 0
		s.prev[n] = -1
		s.heapPushes++
		s.seeds = append(s.seeds, seedItem{key: key, node: n})
	}
	s.heapifySeeds()
	// seedEst materialises the seed top's float est for the cross-queue
	// comparison — the same fac·distance product the one-heap scheme
	// stored, so the interleaving is bit-identical.
	seedEst := func() float64 {
		d := s.seeds[0].key
		if negFac {
			d = -d
		}
		return float64(d) * fac
	}
	sinkFlag := r.g.SinkFlags
	for len(s.heap) > 0 || len(s.seeds) > 0 {
		var node int32
		if len(s.seeds) > 0 {
			if len(s.heap) > 0 {
				est := seedEst()
				if top := &s.heap[0]; est > top.est || (est == top.est && s.seeds[0].node > top.node) {
					node = s.heapPop().node
				} else {
					node = s.seedPop()
				}
			} else {
				node = s.seedPop()
			}
		} else {
			node = s.heapPop().node
		}
		s.nodesVisited++
		if node == sink {
			// Backtrace into the reusable path buffer, then reverse it in
			// place so it runs attach→sink.
			path := s.path[:0]
			for n := sink; n != -1; n = s.prev[n] {
				path = append(path, n)
				if s.prev[n] == -1 {
					break
				}
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			s.path = path
			return path, nil
		}
		cost := s.visited[node]
		for _, to := range r.g.Edges(node) {
			// Sinks other than the target are dead ends. The flat flag
			// array keeps the check off the Node structs (see Graph.Xs).
			if sinkFlag[to] && to != sink {
				continue
			}
			push(to, cost+r.nodeCost(to, s.curMask, s.histMask), node)
		}
	}
	return nil, fmt.Errorf("no path to sink %d (%v)", sink, r.g.Nodes[sink])
}

// lowerBound estimates the remaining cost from node n to the target sink
// (Manhattan distance in channel units; admissible for unit-length wires).
// It reads the graph's SoA coordinate arrays: the full Node structs span
// several cache lines each, and this is the hottest load in the search.
// The distance is summed in integers — exact, so bit-identical to the
// float formulation — and converted once.
func (s *searcher) lowerBound(n, target int32) float64 {
	g := s.r.g
	dx := int32(g.Xs[n]) - int32(g.Xs[target])
	if dx < 0 {
		dx = -dx
	}
	dy := int32(g.Ys[n]) - int32(g.Ys[target])
	if dy < 0 {
		dy = -dy
	}
	return float64(dx+dy) * s.r.opt.AStarFac
}

// The priority queue is a 4-ary implicit heap with a node→index side
// array (s.pos) for in-place decrease-key: an improvement to an
// already-enqueued node re-prices its existing entry and sifts it up
// instead of inserting a duplicate. The classic lazy-deletion queue
// absorbs an order of magnitude more entries than live pops (every
// superseded duplicate is pushed, popped and discarded, each a full
// sift); here the heap never exceeds the open frontier and every pop is
// live. Pop order is unchanged: both schemes extract the minimum of the
// per-node-latest entries under less()'s strict total order (est ties
// break by node id, and one node never carries two equal ests), so the
// queue implementation is invisible to routing results. 4-ary because
// half the levels of binary, and one parent's four 16-byte children sit
// on a single cache line.

// heapPush inserts node's entry, or decrease-keys the one already
// enqueued. Improvements strictly lower est, so re-pricing only ever
// sifts up.
func (s *searcher) heapPush(it pqItem) {
	if p := s.pos[it.node]; p >= 0 {
		s.heap[p].est = it.est
		s.siftUp(int(p))
		return
	}
	s.heap = append(s.heap, it)
	i := len(s.heap) - 1
	s.pos[it.node] = int32(i)
	s.siftUp(i)
}

// heapPop removes and returns the minimum item, sifting down.
func (s *searcher) heapPop() pqItem {
	q := s.heap
	top := q[0]
	s.pos[top.node] = -1
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	s.heap = q
	if n > 0 {
		s.pos[q[0].node] = 0
		s.siftDown(0)
	}
	return top
}

// heapifySeeds establishes the heap property over the seed array in
// O(n) (Floyd's bottom-up construction). Seeds carry no position index,
// so the sifts are pure slice traffic.
func (s *searcher) heapifySeeds() {
	q := s.seeds
	n := len(q)
	for i := (n - 2) >> 2; i >= 0; i-- {
		siftDownSeeds(q, i)
	}
}

// seedPop removes and returns the minimum seed's node.
func (s *searcher) seedPop() int32 {
	q := s.seeds
	top := q[0].node
	n := len(q) - 1
	q[0] = q[n]
	s.seeds = q[:n]
	if n > 0 {
		siftDownSeeds(s.seeds, 0)
	}
	return top
}

// siftDownSeeds is siftDown without the node→index bookkeeping.
func siftDownSeeds(q []seedItem, i int) {
	n := len(q)
	it := q[i]
	for {
		small := -1
		c := i<<2 + 1
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if q[c].less(it) && (small < 0 || q[c].less(q[small])) {
				small = c
			}
		}
		if small < 0 {
			break
		}
		q[i] = q[small]
		i = small
	}
	q[i] = it
}

// siftDown restores the heap property below index i. The sift carries
// the displaced item in a register and moves smaller children into the
// hole (one write each) instead of swapping — the element arrangement it
// produces is the same.
func (s *searcher) siftDown(i int) {
	q := s.heap
	n := len(q)
	it := q[i]
	for {
		small := -1
		c := i<<2 + 1
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if q[c].less(it) && (small < 0 || q[c].less(q[small])) {
				small = c
			}
		}
		if small < 0 {
			break
		}
		q[i] = q[small]
		s.pos[q[i].node] = int32(i)
		i = small
	}
	q[i] = it
	s.pos[it.node] = int32(i)
}

// siftUp restores the heap property above index i, hole-style like
// heapPop's sift-down.
func (s *searcher) siftUp(i int) {
	q := s.heap
	it := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !it.less(q[p]) {
			break
		}
		q[i] = q[p]
		s.pos[q[i].node] = int32(i)
		i = p
	}
	q[i] = it
	s.pos[it.node] = int32(i)
}
