package route

import (
	"fmt"
	"math"

	"repro/internal/arch"
)

// pqItem is one priority-queue entry. Items are values, not pointers: the
// heap is a plain slice that is reset (not freed) between searches, so a
// search allocates nothing once the slice has grown to its working size.
type pqItem struct {
	node int32
	cost float64 // path cost so far
	est  float64 // cost + A* lower bound
}

// less orders the heap by estimated total cost, breaking ties by node id so
// the search (and therefore the whole routing) is deterministic.
func (a pqItem) less(b pqItem) bool {
	if a.est != b.est {
		return a.est < b.est
	}
	return a.node < b.node
}

// searcher is the per-worker search state: the A* scratch plus the
// net-local tree view (seed membership and parent pointers) used to grow
// full source-rooted paths. Every worker owns one, so batch routing needs
// no locks — workers read the router's frozen congestion arrays and write
// only their own searcher.
type searcher struct {
	r *router

	heap    []pqItem
	prev    []int32   // backtrace pointer per node
	visited []float64 // best path cost per node (MaxFloat64 = unvisited)
	touched []int32   // nodes whose visited entry must be reset
	path    []int32   // backtraced attach→sink segment of the last search

	curMask  uint64 // mask of the connection being routed
	histMask uint64 // mask for history pricing (see router.nodeCost)

	// Net-local tree view, wiped via seedList after each net.
	inTree   []bool
	parent   []int32 // tree parent per node, for source-prefix reconstruction
	seedList []int32
	prefix   []int32 // scratch for the source→attach prefix walk
}

func newSearcher(r *router) *searcher {
	n := r.g.NumNodes()
	s := &searcher{
		r:       r,
		prev:    make([]int32, n),
		visited: make([]float64, n),
		inTree:  make([]bool, n),
		parent:  make([]int32, n),
		heap:    make([]pqItem, 0, 256),
	}
	for i := range s.visited {
		s.visited[i] = math.MaxFloat64
	}
	return s
}

// seedTree loads net N's current tree (the union of its routed
// connections' paths) into the searcher's membership and parent arrays.
func (s *searcher) seedTree(N *netRT) {
	s.seedList = s.seedList[:0]
	s.addSeed(N.source, -1)
	for ci := range N.conns {
		p := N.conns[ci].path
		for i := 1; i < len(p); i++ {
			if !s.inTree[p[i]] {
				s.addSeed(p[i], p[i-1])
			}
		}
	}
}

func (s *searcher) addSeed(node, parent int32) {
	s.inTree[node] = true
	s.parent[node] = parent
	s.seedList = append(s.seedList, node)
}

// wipeTree clears the net-local view in O(touched).
func (s *searcher) wipeTree() {
	for _, n := range s.seedList {
		s.inTree[n] = false
	}
	s.seedList = s.seedList[:0]
}

// routeJob routes every dirty connection of one net against the frozen
// congestion state, filling jb.paths with full source→sink paths. The
// net's tree grows connection by connection within the job, so later
// connections attach to segments found for earlier ones.
func (s *searcher) routeJob(jb *job) {
	N := &s.r.nets[jb.net]
	s.seedTree(N)
	defer s.wipeTree()
	jb.paths = make([][]int32, len(jb.dirty))
	for k, ci := range jb.dirty {
		p, err := s.connect(N, &N.conns[ci])
		if err != nil {
			jb.err = err
			return
		}
		jb.paths[k] = p
	}
}

// routeOne reroutes a single connection (the serial requeue fallback)
// against live congestion state.
func (s *searcher) routeOne(N *netRT, ci int32) ([]int32, error) {
	s.seedTree(N)
	defer s.wipeTree()
	return s.connect(N, &N.conns[ci])
}

// connect finds a path for one connection: an A* search seeded with the
// whole current tree, then the attach-node prefix walk that turns the
// backtraced segment into a full source→sink path. The tree view is
// extended with the new segment so subsequent connections can attach to
// it.
func (s *searcher) connect(N *netRT, c *conn) ([]int32, error) {
	s.curMask = c.mask
	// History pricing: per-branch for 1-2 modes (the paper's tuning),
	// net-wide from 3 modes up — see router.nodeCost.
	s.histMask = c.mask
	if len(s.r.occ) >= 3 {
		s.histMask = N.mask
	}
	seg, err := s.search(c.sink)
	if err != nil {
		return nil, err
	}
	// seg runs attach→sink with seg[0] in the tree. Reconstruct the
	// source→attach prefix from the parent pointers, then append.
	s.prefix = s.prefix[:0]
	for n := seg[0]; n != -1; n = s.parent[n] {
		s.prefix = append(s.prefix, n)
	}
	full := make([]int32, 0, len(s.prefix)+len(seg)-1)
	for i := len(s.prefix) - 1; i >= 0; i-- {
		full = append(full, s.prefix[i])
	}
	full = append(full, seg[1:]...)
	for i := 1; i < len(seg); i++ {
		if !s.inTree[seg[i]] {
			s.addSeed(seg[i], seg[i-1])
		}
	}
	return full, nil
}

// search finds the cheapest path from any tree node to the sink. The
// returned slice is scratch owned by the searcher, valid until the next
// search call.
func (s *searcher) search(sink int32) ([]int32, error) {
	const unvisited = math.MaxFloat64
	r := s.r
	s.heap = s.heap[:0]
	s.touched = s.touched[:0]
	push := func(node int32, cost float64, from int32) {
		if s.visited[node] <= cost {
			return
		}
		if s.visited[node] == unvisited {
			s.touched = append(s.touched, node)
		}
		s.visited[node] = cost
		s.prev[node] = from
		s.heapPush(pqItem{node: node, cost: cost, est: cost + s.lowerBound(node, sink)})
	}
	defer func() {
		for _, n := range s.touched {
			s.visited[n] = unvisited
		}
	}()
	for _, n := range s.seedList {
		push(n, 0, -1)
	}
	for len(s.heap) > 0 {
		it := s.heapPop()
		if it.cost > s.visited[it.node] {
			continue
		}
		if it.node == sink {
			// Backtrace into the reusable path buffer, then reverse it in
			// place so it runs attach→sink.
			path := s.path[:0]
			for n := sink; n != -1; n = s.prev[n] {
				path = append(path, n)
				if s.prev[n] == -1 {
					break
				}
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			s.path = path
			return path, nil
		}
		for _, to := range r.g.Edges(it.node) {
			// Sinks other than the target are dead ends.
			if r.g.Nodes[to].Type == arch.NodeSink && to != sink {
				continue
			}
			push(to, it.cost+r.nodeCost(to, s.curMask, s.histMask), it.node)
		}
	}
	return nil, fmt.Errorf("no path to sink %d (%v)", sink, r.g.Nodes[sink])
}

// lowerBound estimates the remaining cost from node n to the target sink
// (Manhattan distance in channel units; admissible for unit-length wires).
func (s *searcher) lowerBound(n, target int32) float64 {
	a, b := s.r.g.Nodes[n], s.r.g.Nodes[target]
	dx := math.Abs(float64(a.X - b.X))
	dy := math.Abs(float64(a.Y - b.Y))
	return (dx + dy) * s.r.opt.AStarFac
}

// heapPush inserts a value item, sifting up.
func (s *searcher) heapPush(it pqItem) {
	q := append(s.heap, it)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q[i].less(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	s.heap = q
}

// heapPop removes and returns the minimum item, sifting down.
func (s *searcher) heapPop() pqItem {
	q := s.heap
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && q[l].less(q[small]) {
			small = l
		}
		if rt := 2*i + 2; rt < n && q[rt].less(q[small]) {
			small = rt
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	s.heap = q
	return top
}
