// Package firgen generates constant-coefficient FIR filter circuits — the
// paper's second workload (adaptive filtering: a multi-mode circuit that
// switches between a low-pass and a high-pass filter). Coefficients come
// from a windowed-sinc design with a randomly chosen sparse non-zero
// support ("the non-zero coefficients were chosen randomly"), quantised to
// two's-complement integers; multipliers are canonical-signed-digit
// shift-add networks, so constant propagation (package synth) collapses
// the filter to a fraction of the generic programmable-coefficient
// version.
package firgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/netlist"
)

// Kind selects the filter prototype.
type Kind int

const (
	// LowPass is a windowed-sinc low-pass prototype.
	LowPass Kind = iota
	// HighPass is the spectrally inverted prototype.
	HighPass
)

func (k Kind) String() string {
	if k == HighPass {
		return "highpass"
	}
	return "lowpass"
}

// Spec describes one filter instance.
type Spec struct {
	Kind      Kind
	Taps      int     // filter length
	NonZero   int     // number of non-zero coefficients kept
	Cutoff    float64 // normalised cutoff (0..0.5)
	CoeffBits int     // two's-complement coefficient width
	InputBits int     // input sample width
	Seed      int64   // non-zero support selection
}

// DefaultSpec returns the experiment configuration: 12 taps, 5 random
// non-zero 7-bit coefficients, 7-bit samples (calibrated to Table I).
func DefaultSpec(kind Kind, seed int64) Spec {
	return Spec{
		Kind: kind, Taps: 12, NonZero: 5, Cutoff: 0.22,
		CoeffBits: 7, InputBits: 7, Seed: seed,
	}
}

// Design computes the quantised coefficient vector of the spec: a
// Hamming-windowed sinc prototype, sparsified by keeping NonZero randomly
// chosen taps, quantised to CoeffBits two's-complement integers.
func Design(s Spec) []int {
	n := s.Taps
	c := make([]float64, n)
	center := float64(n-1) / 2
	for i := 0; i < n; i++ {
		x := float64(i) - center
		var v float64
		if x == 0 {
			v = 2 * s.Cutoff
		} else {
			v = math.Sin(2*math.Pi*s.Cutoff*x) / (math.Pi * x)
		}
		// Hamming window.
		v *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		c[i] = v
	}
	if s.Kind == HighPass {
		// Spectral inversion.
		for i := range c {
			c[i] = -c[i]
		}
		c[int(center+0.5)] += 1.0
	}
	// Sparsify: keep NonZero taps chosen uniformly at random.
	rng := rand.New(rand.NewSource(s.Seed))
	keep := map[int]bool{}
	perm := rng.Perm(n)
	for i := 0; i < s.NonZero && i < n; i++ {
		keep[perm[i]] = true
	}
	// Quantise: scale the largest magnitude to use the full coefficient
	// range.
	maxMag := 0.0
	for i := range c {
		if keep[i] && math.Abs(c[i]) > maxMag {
			maxMag = math.Abs(c[i])
		}
	}
	if maxMag == 0 {
		maxMag = 1
	}
	limit := float64(int(1)<<uint(s.CoeffBits-1) - 1)
	out := make([]int, n)
	for i := range c {
		if !keep[i] {
			continue
		}
		q := int(math.Round(c[i] / maxMag * limit))
		if q == 0 {
			q = 1 // keep the tap genuinely non-zero
		}
		out[i] = q
	}
	return out
}

// signedVec is a little-endian two's-complement signal vector.
type signedVec []int

// builderOps wraps signed fixed-point helpers over the netlist builder.
type builderOps struct{ b *netlist.Builder }

// ext sign-extends v to width w.
func (o builderOps) ext(v signedVec, w int) signedVec {
	out := append(signedVec{}, v...)
	if len(out) == 0 {
		panic("firgen: empty vector")
	}
	msb := out[len(out)-1]
	for len(out) < w {
		out = append(out, msb)
	}
	return out[:w]
}

// add returns a+b at the width of the operands (two's-complement wrap).
func (o builderOps) add(a, b signedVec) signedVec {
	if len(a) != len(b) {
		panic(fmt.Sprintf("firgen: add width mismatch %d vs %d", len(a), len(b)))
	}
	return signedVec(o.b.RippleAdd([]int(a), []int(b))[:len(a)])
}

// addGrow returns a+b at one bit wider than the widest operand, sign
// extending both (no overflow).
func (o builderOps) addGrow(a, b signedVec) signedVec {
	w := len(a)
	if len(b) > w {
		w = len(b)
	}
	w++
	return o.add(o.ext(a, w), o.ext(b, w))
}

// sub returns a-b at the width of the operands.
func (o builderOps) sub(a, b signedVec) signedVec {
	if len(a) != len(b) {
		panic(fmt.Sprintf("firgen: sub width mismatch %d vs %d", len(a), len(b)))
	}
	return signedVec(o.b.RippleSub([]int(a), []int(b)))
}

// shl shifts left by k, keeping width w.
func (o builderOps) shl(v signedVec, k, w int) signedVec {
	out := make(signedVec, 0, w)
	for i := 0; i < k && len(out) < w; i++ {
		out = append(out, o.b.Const(false))
	}
	ve := o.ext(v, w)
	for i := 0; len(out) < w; i++ {
		out = append(out, ve[i])
	}
	return out
}

// csd decomposes |c| into canonical signed digits: pairs (shift, negative).
func csd(c int) []struct {
	Shift int
	Neg   bool
} {
	if c < 0 {
		c = -c
	}
	var digits []struct {
		Shift int
		Neg   bool
	}
	shift := 0
	for c != 0 {
		if c&1 == 1 {
			if c&3 == 3 { // ...11 -> +1 at next power, -1 here
				digits = append(digits, struct {
					Shift int
					Neg   bool
				}{shift, true})
				c += 1
			} else {
				digits = append(digits, struct {
					Shift int
					Neg   bool
				}{shift, false})
				c -= 1
			}
		}
		c >>= 1
		shift++
	}
	return digits
}

// widthFor returns the bits needed for x*c given len(x)-bit signed x.
func widthFor(xBits, c int) int {
	if c < 0 {
		c = -c
	}
	extra := 1
	for 1<<uint(extra) <= c {
		extra++
	}
	return xBits + extra
}

// mulConst multiplies the signed vector by integer constant c at width w
// using the CSD shift-add network.
func (o builderOps) mulConst(x signedVec, c, w int) signedVec {
	zero := make(signedVec, w)
	for i := range zero {
		zero[i] = o.b.Const(false)
	}
	if c == 0 {
		return zero
	}
	acc := zero
	for _, d := range csd(c) {
		term := o.shl(x, d.Shift, w)
		if d.Neg {
			acc = o.sub(acc, term)
		} else {
			acc = o.add(acc, term)
		}
	}
	if c < 0 {
		acc = o.sub(zero, acc)
	}
	return acc
}

// mulVar multiplies x by a variable coefficient vector c (both signed) at
// width w — the generic filter's array multiplier.
func (o builderOps) mulVar(x signedVec, c signedVec, w int) signedVec {
	zero := make(signedVec, w)
	for i := range zero {
		zero[i] = o.b.Const(false)
	}
	acc := zero
	xe := o.ext(x, w)
	for i := 0; i < len(c); i++ {
		// Partial product: x << i gated by c_i.
		pp := make(signedVec, w)
		for k := 0; k < w; k++ {
			if k-i >= 0 {
				pp[k] = o.b.And(xe[k-i], c[i])
			} else {
				pp[k] = o.b.Const(false)
			}
		}
		if i == len(c)-1 {
			// Sign bit of the coefficient: subtract the partial product.
			acc = o.sub(acc, pp)
		} else {
			acc = o.add(acc, pp)
		}
	}
	return acc
}

// OutputBits returns the accumulator width of a filter with the spec.
func (s Spec) OutputBits() int {
	growth := 1
	for 1<<uint(growth) < s.Taps {
		growth++
	}
	return s.InputBits + s.CoeffBits + growth
}

// Generate builds the constant-coefficient filter circuit: an input shift
// register chain, CSD constant multipliers on the non-zero taps and a
// balanced adder tree, with a registered output.
func Generate(name string, s Spec, coeffs []int) (*netlist.Netlist, error) {
	if len(coeffs) != s.Taps {
		return nil, fmt.Errorf("firgen: %d coefficients for %d taps", len(coeffs), s.Taps)
	}
	b := netlist.NewBuilder(name)
	o := builderOps{b}
	w := s.OutputBits()

	x := signedVec(b.InputVector("x", s.InputBits))
	// Shift register chain of samples.
	delayed := make([]signedVec, s.Taps)
	cur := x
	for i := 0; i < s.Taps; i++ {
		delayed[i] = cur
		if i+1 < s.Taps {
			cur = signedVec(b.RegisterVector([]int(cur)))
		}
	}
	// Products on non-zero taps, at minimal widths.
	var terms []signedVec
	for i, c := range coeffs {
		if c == 0 {
			continue
		}
		terms = append(terms, o.mulConst(delayed[i], c, widthFor(s.InputBits, c)))
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("firgen: all coefficients are zero")
	}
	// Balanced adder tree, growing one bit per level.
	for len(terms) > 1 {
		var next []signedVec
		for i := 0; i+1 < len(terms); i += 2 {
			next = append(next, o.addGrow(terms[i], terms[i+1]))
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	y := signedVec(b.RegisterVector([]int(o.ext(terms[0], w))))
	b.OutputVector("y", []int(y))
	return b.N, nil
}

// GenerateGeneric builds the programmable-coefficient filter: coefficients
// are primary inputs and each tap in the support carries an array
// multiplier (support nil means all taps). Used for the paper's area
// claim: the constant-propagated filter is ~3× smaller than the generic
// filter of the same structure.
func GenerateGeneric(name string, s Spec, support []bool) (*netlist.Netlist, error) {
	b := netlist.NewBuilder(name)
	o := builderOps{b}
	w := s.OutputBits()
	if support == nil {
		support = make([]bool, s.Taps)
		for i := range support {
			support[i] = true
		}
	}
	if len(support) != s.Taps {
		return nil, fmt.Errorf("firgen: support has %d entries for %d taps", len(support), s.Taps)
	}

	x := signedVec(b.InputVector("x", s.InputBits))
	coeffs := make([]signedVec, s.Taps)
	for i := range coeffs {
		if support[i] {
			coeffs[i] = signedVec(b.InputVector(fmt.Sprintf("c%d", i), s.CoeffBits))
		}
	}
	delayed := make([]signedVec, s.Taps)
	cur := x
	for i := 0; i < s.Taps; i++ {
		delayed[i] = cur
		if i+1 < s.Taps {
			cur = signedVec(b.RegisterVector([]int(cur)))
		}
	}
	mulW := s.InputBits + s.CoeffBits
	var terms []signedVec
	for i := 0; i < s.Taps; i++ {
		if support[i] {
			terms = append(terms, o.mulVar(delayed[i], coeffs[i], mulW))
		}
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("firgen: empty support")
	}
	for len(terms) > 1 {
		var next []signedVec
		for i := 0; i+1 < len(terms); i += 2 {
			next = append(next, o.addGrow(terms[i], terms[i+1]))
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	y := signedVec(b.RegisterVector([]int(o.ext(terms[0], w))))
	b.OutputVector("y", []int(y))
	return b.N, nil
}

// Reference computes the expected filter response in software for
// equivalence testing: given the input sample history (most recent last),
// the output the registered circuit shows after the corresponding clock
// edges.
func Reference(coeffs []int, samples []int, outBits int) []int {
	var out []int
	hist := make([]int, len(coeffs))
	maskW := outBits
	for _, x := range samples {
		copy(hist[1:], hist[:len(hist)-1])
		hist[0] = x
		acc := 0
		for i, c := range coeffs {
			acc += c * hist[i]
		}
		// Two's-complement wrap at outBits.
		m := 1 << uint(maskW)
		acc = ((acc % m) + m) % m
		if acc >= m/2 {
			acc -= m
		}
		out = append(out, acc)
	}
	return out
}
