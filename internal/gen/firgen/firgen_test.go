package firgen

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/techmap"
)

func TestCSDDecomposition(t *testing.T) {
	for c := 1; c <= 300; c++ {
		sum := 0
		for _, d := range csd(c) {
			v := 1 << uint(d.Shift)
			if d.Neg {
				sum -= v
			} else {
				sum += v
			}
		}
		if sum != c {
			t.Fatalf("csd(%d) sums to %d", c, sum)
		}
		// CSD property: no two adjacent digits.
		digits := csd(c)
		for i := 1; i < len(digits); i++ {
			if digits[i].Shift == digits[i-1].Shift+1 {
				t.Errorf("csd(%d): adjacent digits at shifts %d,%d", c, digits[i-1].Shift, digits[i].Shift)
			}
		}
	}
}

func TestDesignProperties(t *testing.T) {
	for _, kind := range []Kind{LowPass, HighPass} {
		for seed := int64(0); seed < 10; seed++ {
			s := DefaultSpec(kind, seed)
			c := Design(s)
			if len(c) != s.Taps {
				t.Fatalf("%v seed %d: %d taps", kind, seed, len(c))
			}
			nz := 0
			limit := 1 << uint(s.CoeffBits-1)
			for _, v := range c {
				if v != 0 {
					nz++
				}
				if v < -limit || v >= limit {
					t.Fatalf("%v: coefficient %d out of %d-bit range", kind, v, s.CoeffBits)
				}
			}
			if nz != s.NonZero {
				t.Errorf("%v seed %d: %d non-zero coefficients, want %d", kind, seed, nz, s.NonZero)
			}
		}
	}
}

func TestDesignDeterministic(t *testing.T) {
	a := Design(DefaultSpec(LowPass, 3))
	b := Design(DefaultSpec(LowPass, 3))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different designs")
		}
	}
}

// simulateFilter drives the circuit with samples and returns outputs.
func simulateFilter(t *testing.T, n *netlist.Netlist, s Spec, samples []int) []int {
	t.Helper()
	sim := netlist.NewSimulator(n)
	w := s.OutputBits()
	var outs []int
	for _, x := range samples {
		in := map[string]bool{}
		for i := 0; i < s.InputBits; i++ {
			in[fmt.Sprintf("x[%d]", i)] = x>>uint(i)&1 == 1
		}
		out := sim.Step(in)
		v := 0
		for i := 0; i < w; i++ {
			if out[fmt.Sprintf("y[%d]", i)] {
				v |= 1 << uint(i)
			}
		}
		if v >= 1<<uint(w-1) {
			v -= 1 << uint(w)
		}
		outs = append(outs, v)
	}
	return outs
}

func TestFilterMatchesReference(t *testing.T) {
	s := Spec{Kind: LowPass, Taps: 8, NonZero: 4, Cutoff: 0.25, CoeffBits: 6, InputBits: 5, Seed: 1}
	coeffs := Design(s)
	n, err := Generate("fir", s, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var samples []int
	for i := 0; i < 50; i++ {
		samples = append(samples, rng.Intn(1<<uint(s.InputBits-1))-(1<<uint(s.InputBits-2)))
	}
	// The output register delays the response by one cycle.
	got := simulateFilter(t, n, s, samples)
	want := Reference(coeffs, samples, s.OutputBits())
	for i := 1; i < len(samples); i++ {
		if got[i] != want[i-1] {
			t.Fatalf("sample %d: circuit %d, reference %d", i, got[i], want[i-1])
		}
	}
}

func TestFilterMatchesReferenceAfterSynthesis(t *testing.T) {
	s := Spec{Kind: HighPass, Taps: 8, NonZero: 4, Cutoff: 0.2, CoeffBits: 6, InputBits: 5, Seed: 3}
	coeffs := Design(s)
	n, err := Generate("fir", s, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	opt := synth.Optimize(n)
	rng := rand.New(rand.NewSource(4))
	var samples []int
	for i := 0; i < 40; i++ {
		samples = append(samples, rng.Intn(1<<uint(s.InputBits))-(1<<uint(s.InputBits-1)))
	}
	got := simulateFilter(t, opt, s, samples)
	want := Reference(coeffs, samples, s.OutputBits())
	for i := 1; i < len(samples); i++ {
		if got[i] != want[i-1] {
			t.Fatalf("sample %d: synthesised %d, reference %d", i, got[i], want[i-1])
		}
	}
}

func TestNegativeCoefficients(t *testing.T) {
	s := Spec{Kind: LowPass, Taps: 4, NonZero: 4, Cutoff: 0.3, CoeffBits: 5, InputBits: 4, Seed: 5}
	coeffs := []int{-7, 3, -1, 5}
	n, err := Generate("neg", s, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	samples := []int{1, -2, 3, -4, 5, 0, 7, -8}
	got := simulateFilter(t, n, s, samples)
	want := Reference(coeffs, samples, s.OutputBits())
	for i := 1; i < len(samples); i++ {
		if got[i] != want[i-1] {
			t.Fatalf("sample %d: circuit %d, reference %d", i, got[i], want[i-1])
		}
	}
}

func TestConstantFilterSmallerThanGeneric(t *testing.T) {
	// The paper: the constant-propagated filter is ~3× smaller than the
	// generic filter.
	s := Spec{Kind: LowPass, Taps: 12, NonZero: 4, Cutoff: 0.22, CoeffBits: 6, InputBits: 6, Seed: 7}
	cn, err := Generate("const", s, Design(s))
	if err != nil {
		t.Fatal(err)
	}
	coeffs := Design(s)
	support := make([]bool, s.Taps)
	for i, c := range coeffs {
		support[i] = c != 0
	}
	gn, err := GenerateGeneric("generic", s, support)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := techmap.Map(synth.Optimize(cn), 4)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := techmap.Map(synth.Optimize(gn), 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(gm.NumBlocks()) / float64(cm.NumBlocks())
	if ratio < 2 {
		t.Errorf("generic/constant LUT ratio %.2f — expected ≥2 (paper: ~3)", ratio)
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	s := DefaultSpec(LowPass, 1)
	if _, err := Generate("bad", s, []int{1, 2}); err == nil {
		t.Error("wrong coefficient count accepted")
	}
	zero := make([]int, s.Taps)
	if _, err := Generate("zero", s, zero); err == nil {
		t.Error("all-zero coefficients accepted")
	}
}

func TestHighPassDiffersFromLowPass(t *testing.T) {
	lp := Design(DefaultSpec(LowPass, 9))
	hp := Design(DefaultSpec(HighPass, 9))
	same := true
	for i := range lp {
		if lp[i] != hp[i] {
			same = false
		}
	}
	if same {
		t.Error("LP and HP designs identical")
	}
}
