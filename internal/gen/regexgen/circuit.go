package regexgen

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// glushkov holds the position-automaton construction: every character-class
// occurrence in the pattern is a state; transitions carry no epsilon moves.
type glushkov struct {
	classes  []CharClass
	nullable bool
	first    []int
	last     []int
	follow   [][]int
}

type posInfo struct {
	nullable    bool
	first, last []int
}

// expand rewrites bounded repetitions into copies so only star/opt remain.
func expand(n node) node {
	switch t := n.(type) {
	case litNode:
		return t
	case seqNode:
		parts := make([]node, len(t.parts))
		for i, p := range t.parts {
			parts[i] = expand(p)
		}
		return seqNode{parts: parts}
	case altNode:
		alts := make([]node, len(t.alts))
		for i, a := range t.alts {
			alts[i] = expand(a)
		}
		return altNode{alts: alts}
	case repNode:
		child := expand(t.child)
		var parts []node
		for i := 0; i < t.min; i++ {
			parts = append(parts, child)
		}
		switch {
		case t.max < 0 && t.min == 0:
			return repNode{child: child, min: 0, max: -1} // pure star
		case t.max < 0:
			parts = append(parts, repNode{child: child, min: 0, max: -1})
		default:
			for i := t.min; i < t.max; i++ {
				parts = append(parts, repNode{child: child, min: 0, max: 1}) // opt
			}
		}
		if len(parts) == 1 {
			return parts[0]
		}
		return seqNode{parts: parts}
	default:
		panic("regexgen: unknown node")
	}
}

// build computes the Glushkov automaton of the expanded AST.
func build(n node) *glushkov {
	g := &glushkov{}
	info := g.visit(expand(n))
	g.nullable = info.nullable
	g.first = info.first
	g.last = info.last
	return g
}

func (g *glushkov) visit(n node) posInfo {
	switch t := n.(type) {
	case litNode:
		p := len(g.classes)
		g.classes = append(g.classes, t.class)
		g.follow = append(g.follow, nil)
		return posInfo{nullable: false, first: []int{p}, last: []int{p}}
	case seqNode:
		cur := posInfo{nullable: true}
		for _, part := range t.parts {
			pi := g.visit(part)
			// follow: last(cur) -> first(pi)
			for _, q := range cur.last {
				g.follow[q] = append(g.follow[q], pi.first...)
			}
			var first []int
			if cur.nullable {
				first = append(append([]int{}, cur.first...), pi.first...)
			} else {
				first = cur.first
			}
			var last []int
			if pi.nullable {
				last = append(append([]int{}, pi.last...), cur.last...)
			} else {
				last = pi.last
			}
			cur = posInfo{nullable: cur.nullable && pi.nullable, first: dedup(first), last: dedup(last)}
		}
		return cur
	case altNode:
		out := posInfo{}
		for _, a := range t.alts {
			pi := g.visit(a)
			out.nullable = out.nullable || pi.nullable
			out.first = append(out.first, pi.first...)
			out.last = append(out.last, pi.last...)
		}
		out.first = dedup(out.first)
		out.last = dedup(out.last)
		return out
	case repNode:
		pi := g.visit(t.child)
		if t.max == 1 { // opt
			return posInfo{nullable: true, first: pi.first, last: pi.last}
		}
		// star: follow last -> first
		for _, q := range pi.last {
			g.follow[q] = append(g.follow[q], pi.first...)
		}
		return posInfo{nullable: true, first: pi.first, last: pi.last}
	default:
		panic("regexgen: unexpanded node")
	}
}

func dedup(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Options tunes circuit generation.
type Options struct {
	// Anchored starts matching only at stream start; the default scans the
	// payload continuously (Snort semantics).
	Anchored bool
}

// Generate compiles the pattern into a matching circuit with an 8-bit
// character input ch[0..7], a pulse output "match" (accepting state
// reached this cycle) and a sticky output "found".
func Generate(name, pattern string, opt Options) (*netlist.Netlist, error) {
	ast, err := Parse(pattern)
	if err != nil {
		return nil, err
	}
	g := build(ast)
	if len(g.classes) == 0 {
		return nil, fmt.Errorf("regexgen: pattern %q has no positions", pattern)
	}

	b := netlist.NewBuilder(name)
	ch := b.InputVector("ch", 8)

	// Shared character-class decoders.
	decoder := map[CharClass]int{}
	classSig := func(cc CharClass) int {
		if sig, ok := decoder[cc]; ok {
			return sig
		}
		sig := buildClassDecoder(b, ch, cc)
		decoder[cc] = sig
		return sig
	}

	// One-hot state registers (position automaton).
	states := make([]int, len(g.classes))
	for p := range g.classes {
		states[p] = b.N.AddLatchPlaceholder(fmt.Sprintf("s%d", p), false)
	}
	isFirst := map[int]bool{}
	for _, p := range g.first {
		isFirst[p] = true
	}
	preds := make([][]int, len(g.classes))
	for q, fs := range g.follow {
		for _, p := range fs {
			preds[p] = append(preds[p], q)
		}
	}
	nextState := make([]int, len(g.classes))
	for p := range g.classes {
		match := classSig(g.classes[p])
		var activation int
		switch {
		case isFirst[p] && !opt.Anchored:
			// Unanchored scan: the virtual start state is always active, so
			// the state fires whenever its class matches.
			activation = b.Const(true)
		case isFirst[p] && opt.Anchored:
			// Start-of-stream flag: a one-shot register that is 1 only on
			// the first cycle.
			activation = b.Or(append([]int{startFlag(b)}, stateSignals(states, preds[p])...)...)
		default:
			if len(preds[p]) == 0 {
				activation = b.Const(false)
			} else {
				activation = b.Or(stateSignals(states, preds[p])...)
			}
		}
		nextState[p] = b.And(match, activation)
		b.N.SetLatchData(states[p], nextState[p])
	}

	// Accept combinationally on the next-state signals, so the match pulse
	// coincides with the final character of the pattern.
	var accepts []int
	for _, p := range g.last {
		accepts = append(accepts, nextState[p])
	}
	match := b.Or(accepts...)
	b.Output("match", match)
	sticky := b.N.AddLatchPlaceholder("found_reg", false)
	b.N.SetLatchData(sticky, b.Or(sticky, match))
	b.Output("found", b.Or(sticky, match))
	return b.N, nil
}

// startFlag builds a register producing 1 only on the first cycle.
func startFlag(b *netlist.Builder) int {
	seen := b.N.AddLatchPlaceholder("seen", false)
	b.N.SetLatchData(seen, b.Const(true))
	return b.Not(seen)
}

func stateSignals(states []int, ps []int) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = states[p]
	}
	return out
}

// buildClassDecoder produces the match signal of a character class from the
// 8 input bits, decomposing the class into maximal byte ranges implemented
// with ripple comparators (equality for singleton ranges).
func buildClassDecoder(b *netlist.Builder, ch []int, cc CharClass) int {
	full := true
	for v := 0; v < 256; v++ {
		if !cc.Contains(byte(v)) {
			full = false
			break
		}
	}
	if full {
		return b.Const(true)
	}
	if cc.Count() == 0 {
		return b.Const(false)
	}
	var terms []int
	v := 0
	for v < 256 {
		if !cc.Contains(byte(v)) {
			v++
			continue
		}
		lo := v
		for v < 256 && cc.Contains(byte(v)) {
			v++
		}
		hi := v - 1
		switch {
		case lo == hi:
			terms = append(terms, b.EqualsConst(ch, int64(lo)))
		case lo == 0:
			terms = append(terms, lessEqualConst(b, ch, hi))
		case hi == 255:
			terms = append(terms, b.Not(lessEqualConst(b, ch, lo-1)))
		default:
			ge := b.Not(lessEqualConst(b, ch, lo-1))
			le := lessEqualConst(b, ch, hi)
			terms = append(terms, b.And(ge, le))
		}
	}
	return b.Or(terms...)
}

// lessEqualConst returns a signal that is true when the unsigned vector is
// ≤ k, built as a bitwise comparator chain.
func lessEqualConst(b *netlist.Builder, v []int, k int) int {
	// le_i over bits i..n-1: le = (v_i < k_i) OR (v_i == k_i AND le_{i+1}).
	le := b.Const(true)
	for i := 0; i < len(v); i++ {
		ki := k>>uint(i)&1 == 1
		if ki {
			// v_i=0 -> strictly less at this bit (rest irrelevant): true...
			// le' = !v_i OR (v_i AND le) = !v_i OR le... careful: v_i=1,k_i=1 equal -> le
			le = b.Or(b.Not(v[i]), le)
		} else {
			// k_i=0: v_i=1 -> greater: false; v_i=0 -> equal -> le
			le = b.And(b.Not(v[i]), le)
		}
	}
	return le
}
