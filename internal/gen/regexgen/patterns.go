package regexgen

// Rule is a named intrusion-detection payload signature.
type Rule struct {
	Name    string
	Pattern string
}

// BleedingEdgeRules returns five payload signatures modelled on the
// Bleeding Edge Threats rule set used by the paper (the original rules are
// no longer distributed; these reproduce the typical structure: literal
// command strings, hex shellcode prefixes, repeated filler classes and
// protocol keywords). Sizes are calibrated so the generated engines match
// Table I of the paper (224–261 4-LUTs).
func BleedingEdgeRules() []Rule {
	return []Rule{
		{
			// Web CGI exploit probe: literal paths plus parameter sniffing.
			Name:    "web-cgi-phf",
			Pattern: `GET /cgi-bin/(phf|php\.cgi|test-cgi|handler|campas|websendmail|view-source)\?[\w%/\.\-]{88,}(HTTP/1\.[01])?`,
		},
		{
			// Shellcode NOP sled: long x86 0x90 filler, a call and a shell.
			Name:    "shellcode-nop",
			Pattern: `\x90{140,}\xe8[\x00-\xff]{16}(/bin/sh|/bin/bash|cmd\.exe|powershell|/usr/bin/id)`,
		},
		{
			// FTP exploit: overlong USER/PASS command arguments.
			Name:    "ftp-user-overflow",
			Pattern: `(USER|PASS|ACCT|CWD|RETR|STOR|SITE) [\w\.\-]{152,}(\r\n|\x00)`,
		},
		{
			// IRC botnet command-and-control phrases.
			Name:    "irc-botnet",
			Pattern: `(PRIVMSG|NOTICE) [#&][\w\-]{4,24} :[!\.](exec|download|update|ddos|flood|keylog)\.(start|stop|status)( [\w/\.:]{4,16})?`,
		},
		{
			// SMTP relay probe with spammer tell-tales.
			Name:    "smtp-relay-probe",
			Pattern: `(MAIL FROM|RCPT TO):\s?<[\w\.\-]{8,32}@[\w\-]{4,20}\.(com|net|org|info|biz)>( SIZE=\d{1,7})?`,
		},
	}
}
