package regexgen

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/techmap"
)

// refMatcher evaluates the Glushkov automaton in software with the same
// unanchored, sticky semantics as the generated circuit.
type refMatcher struct {
	g      *glushkov
	active []bool
	found  bool
}

func newRef(pattern string) (*refMatcher, error) {
	ast, err := Parse(pattern)
	if err != nil {
		return nil, err
	}
	g := build(ast)
	return &refMatcher{g: g, active: make([]bool, len(g.classes))}, nil
}

// step consumes one byte, returning whether an accepting state is active
// after the transition.
func (r *refMatcher) step(c byte) bool {
	isFirst := map[int]bool{}
	for _, p := range r.g.first {
		isFirst[p] = true
	}
	next := make([]bool, len(r.active))
	for p := range r.g.classes {
		if !r.g.classes[p].Contains(c) {
			continue
		}
		act := isFirst[p]
		if !act {
			for q := range r.g.follow {
				for _, f := range r.g.follow[q] {
					if f == p && r.active[q] {
						act = true
					}
				}
			}
		}
		next[p] = act
	}
	r.active = next
	match := false
	for _, p := range r.g.last {
		if r.active[p] {
			match = true
		}
	}
	if match {
		r.found = true
	}
	return match
}

// runCircuit feeds a byte string through the generated circuit.
func runCircuit(t *testing.T, n *netlist.Netlist, input []byte) (matches []bool, found bool) {
	t.Helper()
	sim := netlist.NewSimulator(n)
	for _, c := range input {
		in := map[string]bool{}
		for i := 0; i < 8; i++ {
			in[fmt.Sprintf("ch[%d]", i)] = c>>uint(i)&1 == 1
		}
		out := sim.Step(in)
		matches = append(matches, out["match"])
		found = out["found"]
	}
	return matches, found
}

func TestLiteralMatch(t *testing.T) {
	n, err := Generate("lit", "abc", Options{})
	if err != nil {
		t.Fatal(err)
	}
	matches, found := runCircuit(t, n, []byte("xxabcxx"))
	// "abc" completes after consuming the 'c' at index 4.
	want := []bool{false, false, false, false, true, false, false}
	for i, m := range matches {
		if m != want[i] {
			t.Errorf("pos %d: match=%v want %v", i, m, want[i])
		}
	}
	if !found {
		t.Error("sticky found not set")
	}
	if _, found := runCircuit(t, n, []byte("abd abx")); found {
		t.Error("false positive")
	}
}

func TestAlternation(t *testing.T) {
	n, err := Generate("alt", "cat|dog", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, found := runCircuit(t, n, []byte("hotdog!")); !found {
		t.Error("dog not matched")
	}
	if _, found := runCircuit(t, n, []byte("a cat")); !found {
		t.Error("cat not matched")
	}
	if _, found := runCircuit(t, n, []byte("cow dig")); found {
		t.Error("false positive")
	}
}

func TestStarAndPlus(t *testing.T) {
	n, err := Generate("rep", "ab*c+", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"ac", true}, {"abc", true}, {"abbbbc", true}, {"accc", true},
		{"ab", false}, {"bc", false}, {"a", false},
	} {
		if _, found := runCircuit(t, n, []byte(tc.in)); found != tc.want {
			t.Errorf("%q: found=%v want %v", tc.in, found, tc.want)
		}
	}
}

func TestCharClassAndRanges(t *testing.T) {
	n, err := Generate("cls", `[a-f0-3]x`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"ax", true}, {"fx", true}, {"0x", true}, {"3x", true},
		{"gx", false}, {"4x", false}, {"zx", false},
	} {
		if _, found := runCircuit(t, n, []byte(tc.in)); found != tc.want {
			t.Errorf("%q: found=%v want %v", tc.in, found, tc.want)
		}
	}
}

func TestNegatedClass(t *testing.T) {
	n, err := Generate("neg", `a[^0-9]b`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, found := runCircuit(t, n, []byte("axb")); !found {
		t.Error("a<non-digit>b should match")
	}
	if _, found := runCircuit(t, n, []byte("a5b")); found {
		t.Error("digit should not match")
	}
}

func TestBoundedRepetition(t *testing.T) {
	n, err := Generate("bnd", `x{3,5}y`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"xxy", false}, {"xxxy", true}, {"xxxxy", true}, {"xxxxxy", true},
		// xxxxxxy: the last 5 x's before y still match (unanchored).
		{"xxxxxxy", true}, {"xy", false},
	} {
		if _, found := runCircuit(t, n, []byte(tc.in)); found != tc.want {
			t.Errorf("%q: found=%v want %v", tc.in, found, tc.want)
		}
	}
}

func TestHexEscapes(t *testing.T) {
	n, err := Generate("hex", `\x90{3}\xe8`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, found := runCircuit(t, n, []byte{0x41, 0x90, 0x90, 0x90, 0xe8}); !found {
		t.Error("shellcode prefix not matched")
	}
	if _, found := runCircuit(t, n, []byte{0x90, 0x90, 0xe8}); found {
		t.Error("too-short sled matched")
	}
}

func TestDotAndEscapedMeta(t *testing.T) {
	n, err := Generate("dot", `a.c\.d`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, found := runCircuit(t, n, []byte("aXc.d")); !found {
		t.Error("dot should match any byte")
	}
	if _, found := runCircuit(t, n, []byte("aXcXd")); found {
		t.Error("escaped dot must be literal")
	}
}

func TestAnchoredOption(t *testing.T) {
	n, err := Generate("anch", "ab", Options{Anchored: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, found := runCircuit(t, n, []byte("ab")); !found {
		t.Error("anchored match at start failed")
	}
	if _, found := runCircuit(t, n, []byte("xab")); found {
		t.Error("anchored pattern matched mid-stream")
	}
}

func TestCircuitAgainstReferenceNFA(t *testing.T) {
	patterns := []string{
		`abc`, `a(b|c)*d`, `[a-z]{2,4}!`, `(GET|POST) /[\w/]{1,8}`, `\d+\.\d+`,
	}
	rng := rand.New(rand.NewSource(5))
	alphabet := []byte("abcdGET POST/w.!0123456789xyz")
	for _, pat := range patterns {
		n, err := Generate("p", pat, Options{})
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		ref, err := newRef(pat)
		if err != nil {
			t.Fatal(err)
		}
		sim := netlist.NewSimulator(n)
		for step := 0; step < 300; step++ {
			c := alphabet[rng.Intn(len(alphabet))]
			in := map[string]bool{}
			for i := 0; i < 8; i++ {
				in[fmt.Sprintf("ch[%d]", i)] = c>>uint(i)&1 == 1
			}
			out := sim.Step(in)
			wantMatch := ref.step(c)
			if out["match"] != wantMatch {
				t.Fatalf("%q step %d (byte %q): circuit match=%v ref=%v", pat, step, c, out["match"], wantMatch)
			}
			if out["found"] != ref.found {
				t.Fatalf("%q step %d: sticky mismatch", pat, step)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{`(ab`, `a[b`, `a{2`, `a{5,2}`, `*a`, `a\`, `a{,}`, `[z-a]`}
	for _, pat := range bad {
		if _, err := Parse(pat); err == nil {
			t.Errorf("Parse(%q) did not fail", pat)
		}
	}
}

func TestBleedingEdgeRulesGenerate(t *testing.T) {
	for _, r := range BleedingEdgeRules() {
		n, err := Generate(r.Name, r.Pattern, Options{})
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		opt := synth.Optimize(n)
		c, err := techmap.Map(opt, 4)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if c.NumBlocks() < 50 {
			t.Errorf("%s: only %d LUTs — too small for a realistic rule", r.Name, c.NumBlocks())
		}
	}
}

func TestRuleSemantics(t *testing.T) {
	rules := BleedingEdgeRules()
	n, err := Generate(rules[2].Name, rules[2].Pattern, Options{})
	if err != nil {
		t.Fatal(err)
	}
	attack := []byte("USER " + string(make160('a')) + "\r\n")
	if _, found := runCircuit(t, n, attack); !found {
		t.Error("FTP overflow signature missed")
	}
	benign := []byte("USER bob\r\n")
	if _, found := runCircuit(t, n, benign); found {
		t.Error("benign login flagged")
	}
}

// make160 returns 160 copies of the byte (overflow payload filler).
func make160(c byte) []byte {
	out := make([]byte, 160)
	for i := range out {
		out[i] = c
	}
	return out
}
