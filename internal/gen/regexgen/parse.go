// Package regexgen generates regular-expression matching hardware in the
// style of Sourdis et al. ("Regular expression matching in reconfigurable
// hardware"): the pattern is parsed into a Thompson NFA, whose states
// become one-hot flip-flops; an 8-bit input character is decoded by shared
// character-class comparators and the next-state logic is the OR of the
// incoming (state AND class) products. This reproduces the paper's first
// workload: network-intrusion payload signatures (Bleeding Edge / Snort
// style rules).
package regexgen

import (
	"fmt"
	"strconv"
)

// node is a parsed regex AST node.
type node interface{ isNode() }

type litNode struct{ class CharClass } // one character class
type seqNode struct{ parts []node }
type altNode struct{ alts []node }
type repNode struct { // {min,max}; max<0 means unbounded
	child    node
	min, max int
}

func (litNode) isNode() {}
func (seqNode) isNode() {}
func (altNode) isNode() {}
func (repNode) isNode() {}

// CharClass is a set of byte values.
type CharClass [4]uint64

// Add puts byte b in the class.
func (c *CharClass) Add(b byte) { c[b>>6] |= 1 << (b & 63) }

// AddRange puts bytes lo..hi in the class.
func (c *CharClass) AddRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		c.Add(byte(b))
	}
}

// Contains reports whether byte b is in the class.
func (c CharClass) Contains(b byte) bool { return c[b>>6]>>(b&63)&1 == 1 }

// Negate inverts the class over all 256 byte values.
func (c CharClass) Negate() CharClass {
	var out CharClass
	for i := range c {
		out[i] = ^c[i]
	}
	return out
}

// Count returns the number of bytes in the class.
func (c CharClass) Count() int {
	n := 0
	for _, w := range c {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

type parser struct {
	src []byte
	pos int
}

// Parse parses the supported regex dialect: literals, escapes (\xNN, \d,
// \w, \s, \n, \r, \t and escaped metacharacters), character classes with
// ranges and negation, '.', alternation, grouping, and the postfix
// operators * + ? {n} {n,} {n,m}.
func Parse(pattern string) (node, error) {
	p := &parser{src: []byte(pattern)}
	n, err := p.alternation()
	if err != nil {
		return nil, fmt.Errorf("regexgen: parse %q: %w", pattern, err)
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regexgen: parse %q: trailing %q", pattern, p.src[p.pos:])
	}
	return n, nil
}

func (p *parser) alternation() (node, error) {
	first, err := p.sequence()
	if err != nil {
		return nil, err
	}
	alts := []node{first}
	for p.peek() == '|' {
		p.pos++
		n, err := p.sequence()
		if err != nil {
			return nil, err
		}
		alts = append(alts, n)
	}
	if len(alts) == 1 {
		return first, nil
	}
	return altNode{alts: alts}, nil
}

func (p *parser) sequence() (node, error) {
	var parts []node
	for {
		c := p.peek()
		if c == 0 || c == '|' || c == ')' {
			break
		}
		n, err := p.repeatable()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return seqNode{parts: parts}, nil
}

func (p *parser) repeatable() (node, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			atom = repNode{child: atom, min: 0, max: -1}
		case '+':
			p.pos++
			atom = repNode{child: atom, min: 1, max: -1}
		case '?':
			p.pos++
			atom = repNode{child: atom, min: 0, max: 1}
		case '{':
			rep, err := p.braces()
			if err != nil {
				return nil, err
			}
			rep.child = atom
			atom = rep
		default:
			return atom, nil
		}
	}
}

func (p *parser) braces() (repNode, error) {
	start := p.pos
	p.pos++ // '{'
	digits := func() (int, bool) {
		s := p.pos
		for p.peek() >= '0' && p.peek() <= '9' {
			p.pos++
		}
		if s == p.pos {
			return 0, false
		}
		v, _ := strconv.Atoi(string(p.src[s:p.pos]))
		return v, true
	}
	min, ok := digits()
	if !ok {
		return repNode{}, fmt.Errorf("bad repetition at %d", start)
	}
	max := min
	if p.peek() == ',' {
		p.pos++
		if v, ok := digits(); ok {
			max = v
		} else {
			max = -1
		}
	}
	if p.peek() != '}' {
		return repNode{}, fmt.Errorf("unterminated repetition at %d", start)
	}
	p.pos++
	if max >= 0 && max < min {
		return repNode{}, fmt.Errorf("repetition {%d,%d} inverted", min, max)
	}
	return repNode{min: min, max: max}, nil
}

func (p *parser) atom() (node, error) {
	switch c := p.peek(); c {
	case '(':
		p.pos++
		n, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("unclosed group")
		}
		p.pos++
		return n, nil
	case '[':
		return p.charClass()
	case '.':
		p.pos++
		var cc CharClass
		cc.AddRange(0, 255)
		return litNode{class: cc}, nil
	case '\\':
		cc, err := p.escape()
		if err != nil {
			return nil, err
		}
		return litNode{class: cc}, nil
	case 0:
		return nil, fmt.Errorf("unexpected end of pattern")
	case '*', '+', '?', '{', ')':
		return nil, fmt.Errorf("unexpected %q", c)
	default:
		p.pos++
		var cc CharClass
		cc.Add(c)
		return litNode{class: cc}, nil
	}
}

func (p *parser) charClass() (node, error) {
	p.pos++ // '['
	var cc CharClass
	negate := false
	if p.peek() == '^' {
		negate = true
		p.pos++
	}
	first := true
	for {
		c := p.peek()
		if c == 0 {
			return nil, fmt.Errorf("unclosed character class")
		}
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		var lo byte
		if c == '\\' {
			esc, err := p.escape()
			if err != nil {
				return nil, err
			}
			if esc.Count() != 1 {
				// Multi-byte escape inside class: union it in.
				for b := 0; b < 256; b++ {
					if esc.Contains(byte(b)) {
						cc.Add(byte(b))
					}
				}
				continue
			}
			for b := 0; b < 256; b++ {
				if esc.Contains(byte(b)) {
					lo = byte(b)
					break
				}
			}
		} else {
			lo = c
			p.pos++
		}
		if p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // '-'
			hi := p.peek()
			if hi == '\\' {
				esc, err := p.escape()
				if err != nil {
					return nil, err
				}
				if esc.Count() != 1 {
					return nil, fmt.Errorf("bad range end")
				}
				for b := 0; b < 256; b++ {
					if esc.Contains(byte(b)) {
						hi = byte(b)
						break
					}
				}
			} else {
				p.pos++
			}
			if hi < lo {
				return nil, fmt.Errorf("inverted range %c-%c", lo, hi)
			}
			cc.AddRange(lo, hi)
		} else {
			cc.Add(lo)
		}
	}
	if negate {
		cc = cc.Negate()
	}
	return litNode{class: cc}, nil
}

func (p *parser) escape() (CharClass, error) {
	p.pos++ // backslash
	var cc CharClass
	c := p.peek()
	if c == 0 {
		return cc, fmt.Errorf("dangling backslash")
	}
	p.pos++
	switch c {
	case 'd':
		cc.AddRange('0', '9')
	case 'w':
		cc.AddRange('a', 'z')
		cc.AddRange('A', 'Z')
		cc.AddRange('0', '9')
		cc.Add('_')
	case 's':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\v', '\f'} {
			cc.Add(b)
		}
	case 'n':
		cc.Add('\n')
	case 'r':
		cc.Add('\r')
	case 't':
		cc.Add('\t')
	case 'x':
		if p.pos+2 > len(p.src) {
			return cc, fmt.Errorf("truncated \\x escape")
		}
		v, err := strconv.ParseUint(string(p.src[p.pos:p.pos+2]), 16, 8)
		if err != nil {
			return cc, fmt.Errorf("bad \\x escape: %w", err)
		}
		p.pos += 2
		cc.Add(byte(v))
	default:
		cc.Add(c) // escaped metacharacter
	}
	return cc, nil
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}
