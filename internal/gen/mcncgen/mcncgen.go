// Package mcncgen generates synthetic general-logic benchmark circuits
// standing in for the MCNC suite used in the paper's third experiment (the
// original .blif files are not redistributable). The generator produces
// levelised random logic with Rent-style locality: gates draw most fanins
// from nearby levels within their own cluster, a tunable fraction of
// signals is registered, and sizes are calibrated to Table I's MCNC row
// (264–404 4-LUTs). Unlike the RegExp and FIR workloads, two circuits from
// this generator share only incidental structure — reproducing the paper's
// observation that general circuit pairs merge less profitably than true
// multi-mode pairs.
package mcncgen

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Spec parameterises one synthetic circuit.
type Spec struct {
	Name      string
	PIs       int
	POs       int
	Gates     int     // 2-input gate budget before mapping
	Levels    int     // logic depth of the frame
	Clusters  int     // locality clusters per level
	LatchFrac float64 // fraction of cluster outputs registered
	Seed      int64
}

// Suite returns the five circuit specs of the experiment, sized to match
// the paper's MCNC row.
func Suite() []Spec {
	return []Spec{
		{Name: "synth-alu", PIs: 24, POs: 16, Gates: 680, Levels: 9, Clusters: 6, LatchFrac: 0.10, Seed: 101},
		{Name: "synth-ctrl", PIs: 30, POs: 20, Gates: 700, Levels: 8, Clusters: 5, LatchFrac: 0.25, Seed: 202},
		{Name: "synth-dsp", PIs: 20, POs: 14, Gates: 860, Levels: 10, Clusters: 6, LatchFrac: 0.15, Seed: 303},
		{Name: "synth-enc", PIs: 26, POs: 18, Gates: 800, Levels: 9, Clusters: 5, LatchFrac: 0.20, Seed: 404},
		{Name: "synth-rand", PIs: 28, POs: 16, Gates: 920, Levels: 10, Clusters: 7, LatchFrac: 0.12, Seed: 505},
	}
}

// gateFuncs are the 2-input functions the generator draws from (balanced
// mix of symmetric and asymmetric functions, as in typical mapped logic).
func gateFuncs() []logic.TT {
	a, b := logic.VarTT(2, 0), logic.VarTT(2, 1)
	return []logic.TT{
		a.And(b), a.Or(b), a.Xor(b),
		a.And(b).Not(), a.Or(b).Not(),
		a.And(b.Not()), a.Not().Or(b),
	}
}

// Generate builds the circuit of the spec. The construction is levelised:
// level 0 is the PIs plus the latch outputs; each subsequent level adds
// Gates/Levels gates whose fanins come from the previous levels, biased
// towards the gate's own cluster (Rent-style locality). A LatchFrac
// fraction of the final level is registered and fed back to level 0.
func Generate(s Spec) (*netlist.Netlist, error) {
	if s.PIs < 2 || s.Gates < 4 || s.Levels < 2 || s.Clusters < 1 {
		return nil, fmt.Errorf("mcncgen: degenerate spec %+v", s)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	b := netlist.NewBuilder(s.Name)
	funcs := gateFuncs()

	pis := make([]int, s.PIs)
	for i := range pis {
		pis[i] = b.Input(fmt.Sprintf("pi%d", i))
	}

	// Feedback latches: created up-front with placeholder data, wired to
	// late-level signals at the end.
	nLatches := int(float64(s.Gates/s.Levels) * s.LatchFrac)
	if nLatches < 1 {
		nLatches = 1
	}
	latches := make([]int, nLatches)
	for i := range latches {
		latches[i] = b.N.AddLatchPlaceholder(fmt.Sprintf("st%d", i), rng.Intn(2) == 0)
	}

	// levels[l][c] holds the signals of cluster c at level l.
	level0 := make([][]int, s.Clusters)
	for i, pi := range pis {
		c := i % s.Clusters
		level0[c] = append(level0[c], pi)
	}
	for i, q := range latches {
		c := i % s.Clusters
		level0[c] = append(level0[c], q)
	}
	levels := [][][]int{level0}

	perLevel := s.Gates / s.Levels
	for l := 1; l <= s.Levels; l++ {
		cur := make([][]int, s.Clusters)
		for gi := 0; gi < perLevel; gi++ {
			c := gi % s.Clusters
			pick := func() int {
				// Locality: 70% from own cluster, 30% anywhere; 75% from
				// the immediately preceding level, tail from older levels.
				lv := len(levels) - 1
				for lv > 0 && rng.Float64() > 0.75 {
					lv--
				}
				cluster := c
				if rng.Float64() < 0.3 {
					cluster = rng.Intn(s.Clusters)
				}
				pool := levels[lv][cluster]
				for len(pool) == 0 {
					cluster = rng.Intn(s.Clusters)
					pool = levels[lv][cluster]
					lv = len(levels) - 1
				}
				return pool[rng.Intn(len(pool))]
			}
			x, y := pick(), pick()
			for y == x {
				y = pick()
			}
			fn := funcs[rng.Intn(len(funcs))]
			cur[c] = append(cur[c], b.N.AddGate(fmt.Sprintf("g%d_%d", l, gi), fn, x, y))
		}
		levels = append(levels, cur)
	}

	// Wire latch data from the last two levels.
	lastPool := flatten(levels[len(levels)-1])
	prevPool := flatten(levels[len(levels)-2])
	pool := append(append([]int{}, lastPool...), prevPool...)
	for _, q := range latches {
		b.N.SetLatchData(q, pool[rng.Intn(len(pool))])
	}

	// Primary outputs from the final level (falling back to earlier
	// signals if the level is small).
	for i := 0; i < s.POs; i++ {
		src := lastPool[rng.Intn(len(lastPool))]
		b.Output(fmt.Sprintf("po%d", i), src)
	}
	if err := b.N.Validate(); err != nil {
		return nil, fmt.Errorf("mcncgen: %w", err)
	}
	return b.N, nil
}

func flatten(clusters [][]int) []int {
	var out []int
	for _, c := range clusters {
		out = append(out, c...)
	}
	return out
}
