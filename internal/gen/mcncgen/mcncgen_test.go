package mcncgen

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/techmap"
)

func TestSuiteGenerates(t *testing.T) {
	for _, s := range Suite() {
		n, err := Generate(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		st := n.Stats()
		if st.Inputs != s.PIs || st.Outputs != s.POs {
			t.Errorf("%s: IO %d/%d want %d/%d", s.Name, st.Inputs, st.Outputs, s.PIs, s.POs)
		}
	}
}

func TestSuiteSizesMatchTableI(t *testing.T) {
	// Paper Table I, MCNC row: min 264, avg 310, max 404 4-LUTs.
	min, max, sum := 1<<30, 0, 0
	for _, s := range Suite() {
		n, err := Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		c, err := techmap.Map(synth.Optimize(n), 4)
		if err != nil {
			t.Fatal(err)
		}
		blocks := c.NumBlocks()
		t.Logf("%s: %d LUTs", s.Name, blocks)
		if blocks < min {
			min = blocks
		}
		if blocks > max {
			max = blocks
		}
		sum += blocks
	}
	avg := sum / len(Suite())
	if min < 200 || max > 480 || avg < 250 || avg > 380 {
		t.Errorf("size envelope min=%d avg=%d max=%d outside Table I calibration (264/310/404)", min, avg, max)
	}
}

func TestDeterminism(t *testing.T) {
	s := Suite()[0]
	a, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("same seed, different node count")
	}
	sa, sb := netlist.NewSimulator(a), netlist.NewSimulator(b)
	in := map[string]bool{}
	for _, nm := range sa.InputNames() {
		in[nm] = true
	}
	oa, ob := sa.Step(in), sb.Step(in)
	for k, v := range oa {
		if ob[k] != v {
			t.Fatalf("same seed, different behaviour at %s", k)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	s1 := Suite()[0]
	s2 := s1
	s2.Seed++
	a, _ := Generate(s1)
	b, _ := Generate(s2)
	if len(a.Nodes) == len(b.Nodes) {
		// Same budget, so same node count is expected — compare functions.
		sa, sb := netlist.NewSimulator(a), netlist.NewSimulator(b)
		same := true
		for trial := 0; trial < 8 && same; trial++ {
			in := map[string]bool{}
			for i, nm := range sa.InputNames() {
				in[nm] = (trial>>uint(i%3))&1 == 1
			}
			oa, ob := sa.Step(in), sb.Step(in)
			for k, v := range oa {
				if ob[k] != v {
					same = false
				}
			}
		}
		if same {
			t.Error("different seeds produced behaviourally identical circuits")
		}
	}
}

func TestRejectsDegenerateSpec(t *testing.T) {
	if _, err := Generate(Spec{PIs: 1, Gates: 2, Levels: 1}); err == nil {
		t.Error("degenerate spec accepted")
	}
}

func TestSequentialBehaviourStable(t *testing.T) {
	// The generated circuit must simulate for many cycles without issue
	// (guards against dangling latch wiring).
	n, err := Generate(Suite()[1])
	if err != nil {
		t.Fatal(err)
	}
	sim := netlist.NewSimulator(n)
	in := map[string]bool{}
	for _, nm := range sim.InputNames() {
		in[nm] = false
	}
	for cyc := 0; cyc < 50; cyc++ {
		sim.Step(in)
	}
}
