package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/store"
)

// postCompile submits the request and returns the decoded result.
func postCompile(t *testing.T, url string, body []byte) *Result {
	t.Helper()
	resp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d: %s", resp.StatusCode, data)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("undecodable result: %v", err)
	}
	return &res
}

// TestMetricsExposition is the /metrics acceptance test: after one cold
// and one warm compile the endpoint must serve valid Prometheus text
// carrying the request, latency, cache and kernel-work families — and the
// numbers must agree with /stats, because both render from one snapshot.
func TestMetricsExposition(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(flow.NewCacheWithStore(st), 2)
	srv.Instrument(obs.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(testRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	cold := postCompile(t, ts.URL, body)
	warm := postCompile(t, ts.URL, body)
	if len(cold.Timings) == 0 || len(warm.Timings) == 0 {
		t.Fatalf("results carry no stage timings: cold %v warm %v", cold.Timings, warm.Timings)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("content type %q, want %q", ct, obs.TextContentType)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := obs.ValidateText(text)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, text)
	}
	var missing []string
	for _, name := range []string{
		"mm_requests_total",
		"mm_requests_deduped_total",
		"mm_requests_inflight",
		"mm_compiles_total",
		"mm_compile_failures_total",
		"mm_compile_seconds",
		"mm_compile_workers",
		"mm_compile_workers_busy",
		"mm_uptime_seconds",
		"mm_cache_place_anneals_total",
		"mm_cache_artifact_hits_total",
		"mm_store_hits_total",
		"mm_route_calls_total",
		"mm_route_iterations",
		"mm_anneal_runs_total",
		"mm_anneal_moves",
	} {
		if !stats.Has(name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Fatalf("families missing from /metrics: %s\n%s", strings.Join(missing, " "), text)
	}
	// The first compile ran the flow, the second was an artifact hit: both
	// latency paths must have recorded.
	for _, series := range []string{
		`mm_compile_seconds_count{path="cold"} 1`,
		`mm_compile_seconds_count{path="warm"} 1`,
	} {
		if !bytes.Contains(text, []byte(series)) {
			t.Errorf("series %q missing from /metrics\n%s", series, text)
		}
	}

	// Satellite contract: /stats and /metrics are the same snapshot
	// rendered two ways, so the shared counters must agree exactly.
	resp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for series, want := range map[string]uint64{
		"mm_requests_total ":            snap.Requests,
		"mm_compiles_total ":            snap.Compiles,
		"mm_cache_place_anneals_total ": snap.Cache.PlaceAnneals,
	} {
		if !bytes.Contains(text, []byte(fmt.Sprintf("%s%d", series, want))) {
			t.Errorf("/metrics disagrees with /stats on %s(want %d)\n%s", series, want, text)
		}
	}
}

// TestMetricsDisabled: a server never Instrumented must refuse the
// endpoint rather than serve an empty page that looks like zero traffic.
func TestMetricsDisabled(t *testing.T) {
	ts := httptest.NewServer(NewServer(flow.NewCache(), 1).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uninstrumented /metrics status %d, want 404", resp.StatusCode)
	}
}

// TestTraceCoversStages: a traced compile must produce a span per flow
// stage, the Chrome export must carry them all, and the warm path must
// report its artifact load instead of pretending the flow ran.
func TestTraceCoversStages(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := flow.NewCacheWithStore(st)
	req := testRequest(t)

	tr := obs.NewTrace()
	res, _, err := CompileEnv(req, Env{Cache: cache, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, n := range tr.SpanNames() {
		names[n] = true
	}
	for _, stage := range []string{
		"compile", "synth", "size", "graph", "place", "route",
		"merge", "tplace", "troute", "bitstream",
	} {
		if !names[stage] {
			t.Errorf("cold compile trace missing stage %q (have %v)", stage, tr.SpanNames())
		}
	}
	if len(res.Timings) == 0 {
		t.Fatal("cold result carries no stage timings")
	}
	var chrome bytes.Buffer
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil {
		t.Fatalf("Chrome trace is not a JSON event array: %v\n%s", err, chrome.Bytes())
	}
	got := map[string]bool{}
	for _, ev := range events {
		got[ev["name"].(string)] = true
	}
	for n := range names {
		if !got[n] {
			t.Errorf("Chrome export dropped span %q", n)
		}
	}

	// Warm: the artifact store serves the result, so the only work the
	// trace can honestly report is loading it.
	tr2 := obs.NewTrace()
	res2, cmp2, err := CompileEnv(req, Env{Cache: cache, Trace: tr2})
	if err != nil {
		t.Fatal(err)
	}
	if cmp2 != nil {
		t.Fatal("second identical compile was not served from the artifact store")
	}
	warmNames := tr2.SpanNames()
	want := []string{"artifact-load", "compile"}
	if !stringSlicesEqual(warmNames, want) {
		t.Fatalf("warm trace spans %v, want %v", warmNames, want)
	}
	if len(res2.Timings) == 0 {
		t.Fatal("warm result carries no stage timings")
	}
	for _, st := range res2.Timings {
		if st.Stage != "artifact-load" {
			t.Fatalf("warm result reports flow stage %q; warm hits do no flow work", st.Stage)
		}
	}
}

func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
