package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeBackend is a stub worker: it answers /compile with a canned status
// and body and records which request keys it served, and /readyz with a
// settable status.
type fakeBackend struct {
	mu     sync.Mutex
	keys   []string
	status int
	body   string
	ready  int
	block  chan struct{} // when non-nil, /compile parks here first
	ts     *httptest.Server
}

func newFakeBackend(t *testing.T, status int, body string) *fakeBackend {
	t.Helper()
	f := &fakeBackend{status: status, body: body, ready: http.StatusOK}
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", func(w http.ResponseWriter, r *http.Request) {
		if f.block != nil {
			<-f.block
		}
		var req CompileRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		nls, err := ParseModes(&req)
		if err == nil {
			f.mu.Lock()
			f.keys = append(f.keys, RequestKey(nls, &req).Hex())
			f.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		f.mu.Lock()
		st, bd := f.status, f.body
		f.mu.Unlock()
		w.WriteHeader(st)
		fmt.Fprint(w, bd)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		st := f.ready
		f.mu.Unlock()
		w.WriteHeader(st)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeBackend) servedKeys() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]int{}
	for _, k := range f.keys {
		out[k]++
	}
	return out
}

// newTestDispatcher builds a dispatcher over the given backends with the
// background prober disabled (tests drive ProbeOnce explicitly) and fast
// failover timings.
func newTestDispatcher(t *testing.T, opts DispatchOptions, urls ...string) (*Dispatcher, *httptest.Server) {
	t.Helper()
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = -1
	}
	if opts.DialTimeout == 0 {
		opts.DialTimeout = time.Second
	}
	if opts.RetryBaseDelay == 0 {
		opts.RetryBaseDelay = time.Millisecond
	}
	d, err := NewDispatcher(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	return d, ts
}

// loadRequestBody builds a small valid compile request with the given
// seed (distinct seeds have distinct RequestKeys).
func loadRequestBody(t *testing.T, seed int64) []byte {
	t.Helper()
	req := testRequest(t)
	req.Seed = seed
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestDispatcherShardsByKey: every request identity routes to exactly one
// backend, stably across repeats, and the keyspace spreads over the
// fleet.
func TestDispatcherShardsByKey(t *testing.T) {
	backends := []*fakeBackend{
		newFakeBackend(t, http.StatusOK, `{}`),
		newFakeBackend(t, http.StatusOK, `{}`),
		newFakeBackend(t, http.StatusOK, `{}`),
	}
	_, ts := newTestDispatcher(t, DispatchOptions{},
		backends[0].ts.URL, backends[1].ts.URL, backends[2].ts.URL)

	const nKeys, repeats = 12, 3
	for rep := 0; rep < repeats; rep++ {
		for seed := int64(0); seed < nKeys; seed++ {
			resp, err := http.Post(ts.URL+"/compile", "application/json",
				bytes.NewReader(loadRequestBody(t, seed)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d rep %d: status %d", seed, rep, resp.StatusCode)
			}
		}
	}
	owners := map[string]int{} // key -> backend index
	used := 0
	for i, b := range backends {
		keys := b.servedKeys()
		if len(keys) > 0 {
			used++
		}
		for k, n := range keys {
			if prev, dup := owners[k]; dup {
				t.Fatalf("key %s served by backends %d and %d — sharding is not stable", k[:12], prev, i)
			}
			owners[k] = i
			if n != repeats {
				t.Fatalf("key %s served %d times by backend %d, want %d", k[:12], n, i, repeats)
			}
		}
	}
	if len(owners) != nKeys {
		t.Fatalf("saw %d distinct keys, want %d", len(owners), nKeys)
	}
	if used < 2 {
		t.Fatalf("all %d keys landed on one backend — rendezvous hashing is not spreading", nKeys)
	}
}

// TestDispatcherFailover: a dead backend is retried around, the request
// succeeds on the survivor, and the dead backend is ejected for the
// cooldown.
func TestDispatcherFailover(t *testing.T) {
	live := newFakeBackend(t, http.StatusOK, `{"ok":true}`)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here any more

	d, ts := newTestDispatcher(t, DispatchOptions{Cooldown: time.Minute}, deadURL, live.ts.URL)

	// Find a request identity that ranks the dead backend first, so the
	// test deterministically exercises the failover path.
	var body []byte
	for seed := int64(0); ; seed++ {
		b := loadRequestBody(t, seed)
		var req CompileRequest
		_ = json.Unmarshal(b, &req)
		nls, err := ParseModes(&req)
		if err != nil {
			t.Fatal(err)
		}
		if d.rank(RequestKey(nls, &req))[0].url == deadURL {
			body = b
			break
		}
	}
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", resp.StatusCode)
	}
	st := d.Stats()
	if st.Retries == 0 {
		t.Fatalf("no retries recorded: %+v", st)
	}
	for _, b := range st.Backends {
		switch b.URL {
		case deadURL:
			if b.Failures == 0 || b.Available {
				t.Fatalf("dead backend not ejected: %+v", b)
			}
		case live.ts.URL:
			if b.Forwards != 1 {
				t.Fatalf("live backend forwards = %d, want 1", b.Forwards)
			}
		}
	}
	// With the dead backend in cooldown, even dead-first keys now go
	// straight to the live one without a retry.
	before := d.Stats().Retries
	resp, err = http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after ejection", resp.StatusCode)
	}
	if d.Stats().Retries != before {
		t.Fatal("ejected backend was still tried first")
	}
}

// TestDispatcherBackpressure: past the admission queue the dispatcher
// sheds with 503 + Retry-After instead of queueing unboundedly.
func TestDispatcherBackpressure(t *testing.T) {
	slow := newFakeBackend(t, http.StatusOK, `{}`)
	slow.block = make(chan struct{})
	d, ts := newTestDispatcher(t, DispatchOptions{QueueLimit: 2}, slow.ts.URL)

	var wg sync.WaitGroup
	statuses := make([]int, 4)
	retryAfter := make([]string, 4)
	for i := range statuses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/compile", "application/json",
				bytes.NewReader(loadRequestBody(t, int64(i))))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	// Wait until the two admitted requests are parked inside the backend
	// and the rest have been shed.
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Shed < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(slow.block)
	wg.Wait()

	ok, shed := 0, 0
	for i, s := range statuses {
		switch s {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if retryAfter[i] == "" {
				t.Fatalf("shed response %d missing Retry-After", i)
			}
		default:
			t.Fatalf("unexpected status %d", s)
		}
	}
	if ok != 2 || shed != 2 {
		t.Fatalf("ok=%d shed=%d, want 2/2", ok, shed)
	}
	if st := d.Stats(); st.Shed != 2 {
		t.Fatalf("stats.Shed = %d, want 2", st.Shed)
	}
}

// TestDispatcherRelaysAuthoritativeResponses: a worker's 422 (a mode set
// that does not route) is an answer, not a failure — it must be relayed
// verbatim with no failover to another backend.
func TestDispatcherRelaysAuthoritativeResponses(t *testing.T) {
	failing := newFakeBackend(t, http.StatusUnprocessableEntity, `{"error":"mode set does not route"}`)
	other := newFakeBackend(t, http.StatusOK, `{}`)
	// Single-backend ranking: only the failing worker is configured for
	// this key's shard by using a one-backend fleet, plus a second fleet
	// member that must stay cold.
	d, ts := newTestDispatcher(t, DispatchOptions{}, failing.ts.URL, other.ts.URL)

	for seed := int64(0); seed < 6; seed++ {
		resp, err := http.Post(ts.URL+"/compile", "application/json",
			bytes.NewReader(loadRequestBody(t, seed)))
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		_, _ = body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusUnprocessableEntity {
			if body.String() != `{"error":"mode set does not route"}` {
				t.Fatalf("422 body not relayed verbatim: %q", body)
			}
		}
	}
	if st := d.Stats(); st.Retries != 0 {
		t.Fatalf("422 triggered failover: %+v", st)
	}
}

// TestDispatcherEjectsUnreadyBackend: the readiness prober removes a
// worker that reports unready (dead remote store, saturated queue) from
// routing, and restores it when it recovers.
func TestDispatcherEjectsUnreadyBackend(t *testing.T) {
	sick := newFakeBackend(t, http.StatusOK, `{}`)
	healthy := newFakeBackend(t, http.StatusOK, `{}`)
	d, ts := newTestDispatcher(t, DispatchOptions{}, sick.ts.URL, healthy.ts.URL)

	sick.mu.Lock()
	sick.ready = http.StatusServiceUnavailable
	sick.mu.Unlock()
	d.ProbeOnce()

	const n = 8
	for seed := int64(0); seed < n; seed++ {
		resp, err := http.Post(ts.URL+"/compile", "application/json",
			bytes.NewReader(loadRequestBody(t, seed)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
	}
	if got := len(sick.servedKeys()); got != 0 {
		t.Fatalf("unready backend served %d keys", got)
	}
	if got := len(healthy.servedKeys()); got != n {
		t.Fatalf("healthy backend served %d keys, want %d", got, n)
	}

	// Recovery: the prober restores the backend and sharding resumes.
	sick.mu.Lock()
	sick.ready = http.StatusOK
	sick.mu.Unlock()
	d.ProbeOnce()
	for seed := int64(0); seed < 32; seed++ {
		resp, err := http.Post(ts.URL+"/compile", "application/json",
			bytes.NewReader(loadRequestBody(t, 100+seed)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if len(sick.servedKeys()) == 0 {
		t.Fatal("recovered backend never rejoined the rotation")
	}
}

// TestServerAdmissionControl: the worker itself sheds past its bounded
// queue with 503 + Retry-After, and reports saturation on /readyz.
func TestServerAdmissionControl(t *testing.T) {
	srv := NewServer(nil, 1)
	srv.SetQueueLimit(1) // admit workers+queue = 2 requests
	release := make(chan struct{})
	srv.testHookBeforeCompile = func() { <-release }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two distinct requests park inside the server (one compiling, one
	// queued); they fill the admission budget.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/compile", "application/json",
				bytes.NewReader(loadRequestBody(t, int64(i))))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.admitted.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.admitted.Load() < 2 {
		t.Fatal("requests never occupied the admission queue")
	}

	// Saturated: readiness fails, and the next request is shed.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while saturated: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/compile", "application/json",
		bytes.NewReader(loadRequestBody(t, 99)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Fatalf("stats.Shed = %d, want 1", st.Shed)
	}

	close(release)
	wg.Wait()

	// Drained: ready again, and liveness was never affected.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after drain: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d", resp.StatusCode)
	}
}
