// The fleet dispatcher: a stateless request router that turns N
// shared-nothing mmserved workers into one compile service.
//
// Routing is rendezvous (highest-random-weight) hashing over the request
// identity: every backend is scored by hashing (RequestKey, backend URL)
// and the request goes to the highest score. Two properties make this the
// right shape here:
//
//   - Identical requests always land on the same worker, so that worker's
//     in-flight dedup map keeps collapsing concurrent identical compiles
//     fleet-wide — no coordination service, no shared state, just the
//     same pure function of the key computed by every dispatcher.
//   - Adding or removing a backend remaps only the keys that scored
//     highest on it (~1/N of the space); everything else keeps its warm
//     worker.
//
// The RequestKey itself never learns about the fleet: worker counts,
// backend URLs and transport details stay out of every request and
// artifact identity by construction (the dispatcher only *reads* the
// key).
//
// Failures degrade by retrying the remainder of the rendezvous order with
// jittered backoff; a backend that fails transport or answers 503 is
// ejected for a cooldown (and a background prober watches /readyz to
// eject workers whose remote store died mid-flight). Past the bounded
// admission queue the dispatcher sheds with 503 + Retry-After rather than
// queueing unboundedly.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
)

// DispatchOptions tunes the dispatcher; the zero value selects every
// default.
type DispatchOptions struct {
	// QueueLimit bounds concurrently admitted requests; excess is shed
	// with 503 + Retry-After. <= 0 selects 256.
	QueueLimit int
	// Attempts is the maximum number of backends tried per request
	// (first attempt + failovers). <= 0 tries every backend once.
	Attempts int
	// DialTimeout bounds connection establishment per attempt — the
	// "is this worker alive at all" stage. <= 0 selects 2s.
	DialTimeout time.Duration
	// ForwardTimeout bounds one whole forward attempt (connect + compile
	// + response). <= 0 selects 30m: full-effort compiles are slow, and
	// cutting one off only to retry it colder elsewhere helps nobody.
	ForwardTimeout time.Duration
	// RetryBaseDelay is the base of the jittered backoff between
	// attempts (doubled per extra failover, jittered ±50%). <= 0
	// selects 25ms.
	RetryBaseDelay time.Duration
	// Cooldown is how long a backend stays ejected after a transport
	// failure or a 503. <= 0 selects 3s.
	Cooldown time.Duration
	// ProbeInterval is the period of the background /readyz prober; 0
	// selects 2s, < 0 disables probing (tests drive ProbeOnce directly).
	ProbeInterval time.Duration
}

// DefaultDispatchOptions returns the production defaults spelled out on
// the DispatchOptions fields.
func DefaultDispatchOptions() DispatchOptions {
	return DispatchOptions{}.withDefaults()
}

func (o DispatchOptions) withDefaults() DispatchOptions {
	if o.QueueLimit <= 0 {
		o.QueueLimit = 256
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 30 * time.Minute
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 25 * time.Millisecond
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 3 * time.Second
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 2 * time.Second
	}
	return o
}

// backend is one worker as the dispatcher sees it.
type backend struct {
	url string

	forwards, failures, saturated atomic.Uint64
	// downUntil (unix nanos) ejects the backend after a passive failure;
	// ready mirrors the last /readyz probe (starts true: a fresh fleet
	// is assumed healthy until proven otherwise).
	downUntil atomic.Int64
	unready   atomic.Bool
}

func (b *backend) available(now time.Time) bool {
	return !b.unready.Load() && now.UnixNano() >= b.downUntil.Load()
}

// Dispatcher routes compile requests across a fixed backend list. Create
// with NewDispatcher, optionally Instrument, then serve Handler; Close
// stops the background prober.
type Dispatcher struct {
	backends []*backend
	opts     DispatchOptions
	client   *http.Client
	probeCl  *http.Client
	started  time.Time
	stop     chan struct{}
	stopOnce sync.Once

	admitted                        atomic.Int64
	requests, shed, retries, failed atomic.Uint64

	// Observability (nil-safe when Instrument was never called).
	reg            *obs.Registry
	forwardSeconds *obs.Histogram
	inflightGauge  *obs.Gauge
	metricsSnap    atomic.Pointer[DispatchStats]
}

// NewDispatcher builds a dispatcher over the given backend base URLs
// (e.g. "http://10.0.0.1:8433") and starts its readiness prober. The
// backend list is fixed for the dispatcher's lifetime.
func NewDispatcher(urls []string, opts DispatchOptions) (*Dispatcher, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("service: dispatcher needs at least one backend")
	}
	opts = opts.withDefaults()
	d := &Dispatcher{
		opts:    opts,
		started: time.Now(),
		stop:    make(chan struct{}),
		client: &http.Client{
			Timeout: opts.ForwardTimeout,
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: opts.DialTimeout}).DialContext,
				MaxIdleConnsPerHost: 128,
			},
		},
		probeCl: &http.Client{Timeout: opts.DialTimeout},
	}
	seen := map[string]bool{}
	for _, u := range urls {
		if seen[u] {
			return nil, fmt.Errorf("service: duplicate backend %q", u)
		}
		seen[u] = true
		d.backends = append(d.backends, &backend{url: u})
	}
	if opts.ProbeInterval > 0 {
		go d.probeLoop()
	}
	return d, nil
}

// Close stops the background prober. In-flight forwards finish normally.
func (d *Dispatcher) Close() { d.stopOnce.Do(func() { close(d.stop) }) }

// probeLoop polls every backend's /readyz so that a worker that reports
// itself unready (saturated queue, dead remote store) is ejected from
// routing until it recovers — the active half of health tracking, next to
// the passive per-request failure marking.
func (d *Dispatcher) probeLoop() {
	t := time.NewTicker(d.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.ProbeOnce()
		}
	}
}

// ProbeOnce probes every backend's /readyz once, concurrently, and
// updates their readiness. Exported for tests and for callers that want
// an initial synchronous sweep before serving.
func (d *Dispatcher) ProbeOnce() {
	var wg sync.WaitGroup
	for _, b := range d.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			resp, err := d.probeCl.Get(b.url + "/readyz")
			ok := false
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
			b.unready.Store(!ok)
		}(b)
	}
	wg.Wait()
}

// rank orders the backends for a key by rendezvous score, highest first.
// The order is a pure function of (key, backend URLs): every dispatcher
// replica computes the same one, which is what keeps same-key requests on
// one worker without any shared state.
func (d *Dispatcher) rank(key codec.Hash) []*backend {
	type scored struct {
		b     *backend
		score uint64
	}
	ranked := make([]scored, len(d.backends))
	for i, b := range d.backends {
		h := fnv.New64a()
		h.Write(key[:])
		h.Write([]byte(b.url))
		ranked[i] = scored{b: b, score: h.Sum64()}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].b.url < ranked[j].b.url
	})
	out := make([]*backend, len(ranked))
	for i, s := range ranked {
		out[i] = s.b
	}
	return out
}

// Handler returns the dispatcher's HTTP routes:
//
//	POST /compile — routed to a worker by request identity
//	GET  /healthz — dispatcher liveness
//	GET  /readyz  — 503 when no backend is currently available
//	GET  /stats   — DispatchStats JSON
//	GET  /metrics — Prometheus text exposition (after Instrument)
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", d.handleCompile)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "backends": len(d.backends),
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		avail := 0
		for _, b := range d.backends {
			if b.available(now) {
				avail++
			}
		}
		status, state := http.StatusOK, "ready"
		if avail == 0 {
			status, state = http.StatusServiceUnavailable, "no backend available"
		}
		writeJSON(w, status, map[string]any{"status": state, "available_backends": avail})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if d.reg == nil {
			http.Error(w, "metrics not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", obs.TextContentType)
		_ = d.reg.WriteText(w)
	})
	return mux
}

func (d *Dispatcher) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, &Result{Error: "POST required"})
		return
	}
	d.requests.Add(1)
	// Admission control first: shedding must stay cheap under overload,
	// so it happens before the body is even read.
	if d.admitted.Add(1) > int64(d.opts.QueueLimit) {
		d.admitted.Add(-1)
		d.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, &Result{Error: "dispatcher saturated; retry"})
		return
	}
	defer d.admitted.Add(-1)
	if d.inflightGauge != nil {
		d.inflightGauge.Add(1)
		defer d.inflightGauge.Add(-1)
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &Result{Error: "body too large or unreadable"})
		return
	}
	// Parse just far enough to derive the routing identity. A request the
	// workers would reject is rejected here, once, instead of N times.
	var req CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, &Result{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	nls, err := ParseModes(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &Result{Error: err.Error()})
		return
	}
	key := RequestKey(nls, &req)

	start := time.Now()
	status, hdr, respBody, err := d.forward(r.Context(), key, body)
	if d.forwardSeconds != nil {
		d.forwardSeconds.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		d.failed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusBadGateway, &Result{Error: fmt.Sprintf("no backend could serve the request: %v", err)})
		return
	}
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	_, _ = w.Write(respBody)
}

// forward tries the rendezvous order until a backend answers
// authoritatively. Worker responses — 200, 4xx, 422 — are relayed as-is;
// transport failures, 503 (worker saturated) and other 5xx mark the
// backend down for the cooldown and fail over to the next one after a
// jittered backoff.
func (d *Dispatcher) forward(ctx context.Context, key codec.Hash, body []byte) (int, http.Header, []byte, error) {
	ranked := d.rank(key)
	now := time.Now()
	// Prefer available backends in rendezvous order; if every backend is
	// ejected, fall back to the full order — trying a sick worker beats
	// refusing outright, and a success un-ejects it.
	candidates := make([]*backend, 0, len(ranked))
	for _, b := range ranked {
		if b.available(now) {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		candidates = ranked
	}
	attempts := d.opts.Attempts
	if attempts <= 0 || attempts > len(candidates) {
		attempts = len(candidates)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d.retries.Add(1)
			// Exponential backoff with ±50% jitter, so synchronized
			// failovers from many concurrent requests spread out instead
			// of stampeding the next backend in lockstep.
			base := d.opts.RetryBaseDelay << (i - 1)
			delay := base/2 + time.Duration(rand.Int64N(int64(base)))
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return 0, nil, nil, ctx.Err()
			}
		}
		b := candidates[i]
		status, hdr, respBody, err := d.tryBackend(ctx, b, body)
		if err == nil && status != http.StatusServiceUnavailable && status/100 != 5 {
			b.forwards.Add(1)
			b.downUntil.Store(0) // a success un-ejects immediately
			return status, hdr, respBody, nil
		}
		if err != nil {
			b.failures.Add(1)
			lastErr = err
		} else {
			// The worker itself shed (503) or failed (5xx): honor its
			// backpressure by going elsewhere for a while.
			b.saturated.Add(1)
			lastErr = fmt.Errorf("%s: status %d", b.url, status)
		}
		b.downUntil.Store(time.Now().Add(d.opts.Cooldown).UnixNano())
		if ctx.Err() != nil {
			return 0, nil, nil, ctx.Err()
		}
	}
	return 0, nil, nil, lastErr
}

// tryBackend performs one forward attempt.
func (d *Dispatcher) tryBackend(ctx context.Context, b *backend, body []byte) (int, http.Header, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, d.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/compile", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%s: %w", b.url, err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%s: read response: %w", b.url, err)
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// BackendStats is one backend's row in DispatchStats.
type BackendStats struct {
	URL string `json:"url"`
	// Forwards counts authoritative responses relayed from this backend;
	// Failures transport-level attempt failures; Saturated 503/5xx
	// answers that triggered failover.
	Forwards  uint64 `json:"forwards"`
	Failures  uint64 `json:"failures"`
	Saturated uint64 `json:"saturated"`
	// Available is the routing eligibility right now (ready and not in a
	// failure cooldown).
	Available bool `json:"available"`
}

// DispatchStats is the dispatcher's /stats document.
type DispatchStats struct {
	UptimeSeconds int64          `json:"uptime_seconds"`
	Requests      uint64         `json:"requests"`
	Shed          uint64         `json:"shed"`
	Retries       uint64         `json:"retries"`
	Failed        uint64         `json:"failed"`
	Admitted      int64          `json:"admitted"`
	QueueLimit    int            `json:"queue_limit"`
	Backends      []BackendStats `json:"backends"`
}

// Stats returns a snapshot of the dispatcher counters.
func (d *Dispatcher) Stats() DispatchStats {
	now := time.Now()
	st := DispatchStats{
		UptimeSeconds: int64(time.Since(d.started).Seconds()),
		Requests:      d.requests.Load(),
		Shed:          d.shed.Load(),
		Retries:       d.retries.Load(),
		Failed:        d.failed.Load(),
		Admitted:      d.admitted.Load(),
		QueueLimit:    d.opts.QueueLimit,
	}
	for _, b := range d.backends {
		st.Backends = append(st.Backends, BackendStats{
			URL:       b.url,
			Forwards:  b.forwards.Load(),
			Failures:  b.failures.Load(),
			Saturated: b.saturated.Load(),
			Available: b.available(now),
		})
	}
	return st
}

// Instrument registers the dispatcher's mm_fleet_* metrics into reg and
// makes /metrics serve it. Counter families are snapshot-backed through
// one OnScrape Stats() call, so /stats and /metrics render from the same
// construction path (the PR 9 rule). Call before serving.
func (d *Dispatcher) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.reg = reg
	d.forwardSeconds = reg.Histogram("mm_fleet_forward_seconds",
		"End-to-end forward latency through the dispatcher in seconds.",
		obs.DurationBuckets)
	d.inflightGauge = reg.Gauge("mm_fleet_inflight",
		"Requests currently being dispatched.")
	reg.OnScrape(func() {
		snap := d.Stats()
		d.metricsSnap.Store(&snap)
	})
	snap := func(f func(*DispatchStats) float64) func() float64 {
		return func() float64 {
			p := d.metricsSnap.Load()
			if p == nil {
				return 0
			}
			return f(p)
		}
	}
	reg.GaugeFunc("mm_fleet_backends", "Configured backend count.",
		func() float64 { return float64(len(d.backends)) })
	reg.GaugeFunc("mm_fleet_backends_available", "Backends currently eligible for routing.",
		snap(func(st *DispatchStats) float64 {
			n := 0
			for _, b := range st.Backends {
				if b.Available {
					n++
				}
			}
			return float64(n)
		}))
	reg.CounterFunc("mm_fleet_requests_total", "Requests accepted by the dispatcher.",
		snap(func(st *DispatchStats) float64 { return float64(st.Requests) }))
	reg.CounterFunc("mm_fleet_shed_total", "Requests shed with 503 by dispatcher admission control.",
		snap(func(st *DispatchStats) float64 { return float64(st.Shed) }))
	reg.CounterFunc("mm_fleet_retries_total", "Failover attempts after a backend failure or 503.",
		snap(func(st *DispatchStats) float64 { return float64(st.Retries) }))
	reg.CounterFunc("mm_fleet_failed_total", "Requests that exhausted every backend.",
		snap(func(st *DispatchStats) float64 { return float64(st.Failed) }))
	reg.CounterFunc("mm_fleet_backend_errors_total", "Transport-level forward failures across all backends.",
		snap(func(st *DispatchStats) float64 {
			var n uint64
			for _, b := range st.Backends {
				n += b.Failures
			}
			return float64(n)
		}))
}
