package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/flow"
	"repro/internal/netlist"
)

// maxRequestBytes bounds a compile request body (BLIF text compresses the
// wire format poorly, but even the paper's largest benchmarks are far
// below this).
const maxRequestBytes = 64 << 20

// Server is the long-running compile service: it owns one flow.Cache
// (usually store-backed, so results survive the process) shared by every
// request, bounds concurrent flow executions with a worker semaphore, and
// deduplicates identical in-flight requests — N clients submitting the
// same mode set while it compiles share a single flow execution and all
// receive its result.
type Server struct {
	cache   *flow.Cache
	workers int
	sem     chan struct{}

	mu       sync.Mutex
	inflight map[codec.Hash]*call

	started time.Time

	requests, deduped, compiles, failures atomic.Uint64

	// testHookBeforeCompile, when set, runs in the winning request's
	// goroutine after it registered as in-flight and before it compiles —
	// the dedup test parks the compile there until every duplicate has
	// arrived, making the single-execution assertion timing-independent.
	testHookBeforeCompile func()
}

// call is one in-flight compile execution; duplicates block on done and
// read the shared outcome.
type call struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewServer returns a server executing at most workers concurrent
// compiles (<= 0 means 1) against the given cache (nil for uncached).
func NewServer(cache *flow.Cache, workers int) *Server {
	if workers <= 0 {
		workers = 1
	}
	return &Server{
		cache:    cache,
		workers:  workers,
		sem:      make(chan struct{}, workers),
		inflight: map[codec.Hash]*call{},
		started:  time.Now(),
	}
}

// Handler returns the service's HTTP routes:
//
//	POST /compile — CompileRequest JSON in, Result JSON out
//	GET  /healthz — liveness: {"status":"ok"}
//	GET  /stats   — traffic counters and cache statistics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, &Result{Error: "POST required"})
		return
	}
	s.requests.Add(1)
	var req CompileRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &Result{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	nls, err := ParseModes(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &Result{Error: err.Error()})
		return
	}
	if _, err := req.objective(); err != nil {
		writeJSON(w, http.StatusBadRequest, &Result{Error: err.Error()})
		return
	}

	key := RequestKey(nls, &req)
	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		// An identical compile is already executing: join it.
		s.mu.Unlock()
		s.deduped.Add(1)
		<-c.done
		s.respond(w, c.res, c.err)
		return
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	if s.testHookBeforeCompile != nil {
		s.testHookBeforeCompile()
	}
	s.execute(c, nls, &req, key)
	s.respond(w, c.res, c.err)
}

// execute runs the winning request's compile. The unwind work — freeing
// the worker slot, unregistering the in-flight entry, waking the
// duplicates — runs in a defer so that a panicking flow (we parse
// arbitrary BLIF into code paths that panic on broken invariants) cannot
// wedge the daemon: without it the duplicates would block on done
// forever and the semaphore slot would leak until, after `workers`
// panics, no request could ever compile again.
func (s *Server) execute(c *call, nls []*netlist.Netlist, req *CompileRequest, key codec.Hash) {
	s.sem <- struct{}{} // bound concurrent flow executions
	s.compiles.Add(1)
	defer func() {
		if r := recover(); r != nil {
			c.res, c.err = nil, fmt.Errorf("service: compile panicked: %v", r)
		}
		<-s.sem
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(c.done)
	}()
	c.res, _, c.err = CompileNetlists(nls, req, s.cache)
}

// respond writes a compile outcome: 200 with the result, or 422 with the
// error folded into the Result schema (a mode set that does not route is
// a property of the request, not a server fault). res may be shared by
// every deduplicated client of one execution, so the error rides in a
// per-response copy — mutating the shared value here would race.
func (s *Server) respond(w http.ResponseWriter, res *Result, err error) {
	if err != nil {
		s.failures.Add(1)
		out := Result{}
		if res != nil {
			out = *res
		}
		out.Error = err.Error()
		writeJSON(w, http.StatusUnprocessableEntity, &out)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
	})
}

// StatsSnapshot is the /stats document.
type StatsSnapshot struct {
	UptimeSeconds int64      `json:"uptime_seconds"`
	Workers       int        `json:"workers"`
	Requests      uint64     `json:"requests"`
	Deduped       uint64     `json:"deduped"`
	Compiles      uint64     `json:"compiles"`
	Failures      uint64     `json:"failures"`
	Inflight      int        `json:"inflight"`
	Cache         flow.Stats `json:"cache"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() StatsSnapshot {
	s.mu.Lock()
	inflight := len(s.inflight)
	s.mu.Unlock()
	snap := StatsSnapshot{
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
		Workers:       s.workers,
		Requests:      s.requests.Load(),
		Deduped:       s.deduped.Load(),
		Compiles:      s.compiles.Load(),
		Failures:      s.failures.Load(),
		Inflight:      inflight,
	}
	if s.cache != nil {
		snap.Cache = s.cache.Stats()
	}
	return snap
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
