package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// maxRequestBytes bounds a compile request body (BLIF text compresses the
// wire format poorly, but even the paper's largest benchmarks are far
// below this).
const maxRequestBytes = 64 << 20

// Server is the long-running compile service: it owns one flow.Cache
// (usually store-backed, so results survive the process) shared by every
// request, bounds concurrent flow executions with a worker semaphore, and
// deduplicates identical in-flight requests — N clients submitting the
// same mode set while it compiles share a single flow execution and all
// receive its result.
type Server struct {
	cache   *flow.Cache
	workers int
	sem     chan struct{}

	// maxQueue bounds how many admitted requests may wait beyond the
	// running workers; 0 disables admission control (every request
	// queues). With a limit, request number workers+maxQueue+1 is shed
	// with 503 + Retry-After instead of queueing unboundedly — the
	// backpressure a dispatcher converts into retry-on-another-worker.
	maxQueue int
	admitted atomic.Int64

	mu       sync.Mutex
	inflight map[codec.Hash]*call

	started time.Time

	requests, deduped, compiles, failures, shed atomic.Uint64

	// Observability (all nil/zero when Instrument was never called; every
	// use is nil-safe, so the uninstrumented server pays nothing).
	reg            *obs.Registry
	compileSeconds *obs.HistogramVec
	inflightGauge  *obs.Gauge
	// metricsSnap holds the StatsSnapshot taken by the last /metrics
	// scrape: the snapshot-backed counter families read from it, so one
	// Stats() call feeds every series of one exposition — /metrics and
	// /stats render from the same construction path by design.
	metricsSnap atomic.Pointer[StatsSnapshot]
	pprof       bool

	// testHookBeforeCompile, when set, runs in the winning request's
	// goroutine after it registered as in-flight and before it compiles —
	// the dedup test parks the compile there until every duplicate has
	// arrived, making the single-execution assertion timing-independent.
	testHookBeforeCompile func()
}

// call is one in-flight compile execution; duplicates block on done and
// read the shared outcome.
type call struct {
	done chan struct{}
	res  *Result
	err  error
	// warm marks a result served from the artifact store without running
	// any flow (the latency histogram's "warm" path).
	warm bool
}

// NewServer returns a server executing at most workers concurrent
// compiles (<= 0 means 1) against the given cache (nil for uncached).
func NewServer(cache *flow.Cache, workers int) *Server {
	if workers <= 0 {
		workers = 1
	}
	return &Server{
		cache:    cache,
		workers:  workers,
		sem:      make(chan struct{}, workers),
		inflight: map[codec.Hash]*call{},
		started:  time.Now(),
	}
}

// Instrument registers the server's metrics into reg and makes the
// /metrics route serve it as Prometheus text. Registered families:
//
//   - mm_compile_seconds{path=cold|warm|delta|dedup} — request latency
//     histogram by serving path;
//   - mm_requests_inflight, mm_compile_workers, mm_compile_workers_busy —
//     saturation gauges;
//   - mm_requests_total / mm_requests_deduped_total / mm_compiles_total /
//     mm_compile_failures_total and the mm_cache_* / mm_store_* counter
//     families — snapshot-backed: an OnScrape hook takes one Stats()
//     snapshot per exposition, so /metrics and /stats always render from
//     the same construction path and one scrape is internally coherent.
//
// The same registry also receives the flows' mm_route_* / mm_anneal_*
// work metrics (it is threaded into every compile's Env). Call before
// serving; not safe to call concurrently with requests.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.reg = reg
	s.compileSeconds = reg.HistogramVec("mm_compile_seconds",
		"Compile request latency in seconds by serving path (cold, warm, delta, dedup).",
		obs.DurationBuckets, "path")
	s.inflightGauge = reg.Gauge("mm_requests_inflight",
		"Compile requests currently being served (including deduplicated joiners).")
	reg.GaugeFunc("mm_compile_workers",
		"Size of the compile worker pool.",
		func() float64 { return float64(s.workers) })
	reg.GaugeFunc("mm_compile_workers_busy",
		"Compile workers currently executing a flow.",
		func() float64 { return float64(len(s.sem)) })
	reg.OnScrape(func() {
		snap := s.Stats()
		s.metricsSnap.Store(&snap)
	})
	snap := func(f func(*StatsSnapshot) float64) func() float64 {
		return func() float64 {
			p := s.metricsSnap.Load()
			if p == nil {
				return 0
			}
			return f(p)
		}
	}
	reg.GaugeFunc("mm_uptime_seconds", "Seconds since the server started.",
		snap(func(st *StatsSnapshot) float64 { return float64(st.UptimeSeconds) }))
	reg.CounterFunc("mm_requests_total", "Compile requests accepted.",
		snap(func(st *StatsSnapshot) float64 { return float64(st.Requests) }))
	reg.CounterFunc("mm_requests_deduped_total", "Requests joined to an identical in-flight compile.",
		snap(func(st *StatsSnapshot) float64 { return float64(st.Deduped) }))
	reg.CounterFunc("mm_compiles_total", "Flow executions started.",
		snap(func(st *StatsSnapshot) float64 { return float64(st.Compiles) }))
	reg.CounterFunc("mm_compile_failures_total", "Compiles that returned an error.",
		snap(func(st *StatsSnapshot) float64 { return float64(st.Failures) }))
	reg.CounterFunc("mm_requests_shed_total", "Requests refused with 503 by admission control.",
		snap(func(st *StatsSnapshot) float64 { return float64(st.Shed) }))
	reg.GaugeFunc("mm_compile_queue_limit", "Admission limit on in-flight compile requests (0: unbounded).",
		snap(func(st *StatsSnapshot) float64 { return float64(st.QueueLimit) }))
	reg.GaugeFunc("mm_compile_admitted", "Compile requests currently admitted (executing, queued or joined).",
		snap(func(st *StatsSnapshot) float64 { return float64(st.Admitted) }))
	for _, m := range []struct {
		name, help string
		get        func(*flow.Stats) uint64
	}{
		{"mm_cache_graph_builds_total", "Routing-resource graphs built.", func(c *flow.Stats) uint64 { return c.GraphBuilds }},
		{"mm_cache_graph_hits_total", "Graph requests served from memory.", func(c *flow.Stats) uint64 { return c.GraphHits }},
		{"mm_cache_graph_loads_total", "Graphs decoded from the artifact store.", func(c *flow.Stats) uint64 { return c.GraphLoads }},
		{"mm_cache_graph_store_hits_total", "Graph keys found in the artifact store.", func(c *flow.Stats) uint64 { return c.GraphStoreHits }},
		{"mm_cache_place_anneals_total", "Placement anneals executed.", func(c *flow.Stats) uint64 { return c.PlaceAnneals }},
		{"mm_cache_place_hits_total", "Placement requests served from memory.", func(c *flow.Stats) uint64 { return c.PlaceHits }},
		{"mm_cache_place_store_hits_total", "Placements decoded from the artifact store.", func(c *flow.Stats) uint64 { return c.PlaceStoreHits }},
		{"mm_cache_artifact_hits_total", "Top-level artifact store hits.", func(c *flow.Stats) uint64 { return c.ArtifactHits }},
		{"mm_cache_artifact_misses_total", "Top-level artifact store misses.", func(c *flow.Stats) uint64 { return c.ArtifactMisses }},
		{"mm_cache_mem_flushes_total", "Wholesale flushes of the in-memory memo tier.", func(c *flow.Stats) uint64 { return c.MemFlushes }},
		{"mm_cache_place_transfers_total", "Anneals seeded by ECO baseline placement transfer.", func(c *flow.Stats) uint64 { return c.PlaceTransfers }},
		{"mm_cache_warm_route_nets_total", "Nets seeded from ECO baseline routing trees.", func(c *flow.Stats) uint64 { return c.WarmRouteNets }},
		{"mm_cache_baseline_misses_total", "Delta compiles that fell back to cold.", func(c *flow.Stats) uint64 { return c.BaselineMisses }},
		{"mm_store_hits_total", "Persistent store reads that hit.", func(c *flow.Stats) uint64 { return c.Store.Hits }},
		{"mm_store_misses_total", "Persistent store reads that missed.", func(c *flow.Stats) uint64 { return c.Store.Misses }},
		{"mm_store_corrupt_total", "Persistent store entries that failed verification.", func(c *flow.Stats) uint64 { return c.Store.Corrupt }},
		{"mm_store_bytes_read_total", "Bytes read from the persistent store.", func(c *flow.Stats) uint64 { return uint64(c.Store.BytesRead) }},
		{"mm_store_bytes_written_total", "Bytes written to the persistent store.", func(c *flow.Stats) uint64 { return uint64(c.Store.BytesWritten) }},
		{"mm_store_evictions_total", "Entries evicted from the persistent store.", func(c *flow.Stats) uint64 { return c.Store.Evictions }},
		{"mm_store_remote_hits_total", "Local store misses served by the remote tier.", func(c *flow.Stats) uint64 { return c.Store.RemoteHits }},
		{"mm_store_remote_misses_total", "Keys absent from both store tiers.", func(c *flow.Stats) uint64 { return c.Store.RemoteMisses }},
		{"mm_store_remote_puts_total", "Artifacts pushed to the remote store tier.", func(c *flow.Stats) uint64 { return c.Store.RemotePuts }},
		{"mm_store_remote_errors_total", "Remote store failures handled fail-open (unreachable, transfer or checksum).", func(c *flow.Stats) uint64 { return c.Store.RemoteErrors }},
	} {
		get := m.get
		reg.CounterFunc(m.name, m.help,
			snap(func(st *StatsSnapshot) float64 { return float64(get(&st.Cache)) }))
	}
}

// SetQueueLimit bounds the compile admission queue: at most limit
// requests may be waiting beyond the ones the worker pool is executing;
// excess requests are shed immediately with 503 + Retry-After. limit <= 0
// disables shedding (the pre-fleet behaviour). Call before serving; not
// safe to call concurrently with requests.
func (s *Server) SetQueueLimit(limit int) {
	if limit < 0 {
		limit = 0
	}
	s.maxQueue = limit
}

// admissionLimit is the total number of in-flight /compile requests
// (executing + queued + deduplicated joiners) the server accepts; 0 means
// unbounded.
func (s *Server) admissionLimit() int64 {
	if s.maxQueue <= 0 {
		return 0
	}
	return int64(s.workers + s.maxQueue)
}

// saturated reports whether the admission queue is at its limit — the
// readiness signal a dispatcher uses to stop sending work here.
func (s *Server) saturated() bool {
	limit := s.admissionLimit()
	return limit > 0 && s.admitted.Load() >= limit
}

// EnablePprof mounts net/http/pprof's profiling routes under /debug/pprof/
// on the next Handler() call. Opt-in: profiling endpoints expose stacks
// and heap contents, so the daemon only serves them behind its -pprof
// flag.
func (s *Server) EnablePprof() { s.pprof = true }

// Handler returns the service's HTTP routes:
//
//	POST /compile — CompileRequest JSON in, Result JSON out
//	GET  /healthz — liveness: {"status":"ok"} while the process serves
//	GET  /readyz  — readiness: 503 while the admission queue is saturated
//	                or the remote store tier is unreachable
//	GET  /stats   — traffic counters and cache statistics
//	GET  /metrics — Prometheus text exposition (after Instrument)
//	GET  /debug/pprof/* — profiling (after EnablePprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		http.Error(w, "metrics not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	_ = s.reg.WriteText(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, &Result{Error: "POST required"})
		return
	}
	// Admission control: past the bounded queue the request is shed NOW,
	// cheaply, instead of parking on the worker semaphore forever. The
	// Retry-After tells well-behaved clients (and the dispatcher, which
	// prefers another backend) when to come back.
	if limit := s.admissionLimit(); limit > 0 {
		if s.admitted.Add(1) > limit {
			s.admitted.Add(-1)
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, &Result{Error: "compile queue saturated; retry"})
			return
		}
		defer s.admitted.Add(-1)
	}
	s.requests.Add(1)
	var req CompileRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &Result{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	nls, err := ParseModes(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &Result{Error: err.Error()})
		return
	}
	if _, err := req.objective(); err != nil {
		writeJSON(w, http.StatusBadRequest, &Result{Error: err.Error()})
		return
	}

	start := time.Now()
	s.inflightGauge.Add(1)
	defer s.inflightGauge.Add(-1)

	key := RequestKey(nls, &req)
	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		// An identical compile is already executing: join it.
		s.mu.Unlock()
		s.deduped.Add(1)
		<-c.done
		s.observeCompile("dedup", start)
		s.respond(w, c.res, c.err)
		return
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	if s.testHookBeforeCompile != nil {
		s.testHookBeforeCompile()
	}
	s.execute(c, nls, &req, key)
	s.observeCompile(compilePath(c), start)
	s.respond(w, c.res, c.err)
}

// compilePath classifies how a winning (non-deduplicated) request was
// served, for the latency histogram's path label.
func compilePath(c *call) string {
	switch {
	case c.warm:
		return "warm"
	case c.res != nil && c.res.Delta != nil && c.res.Delta.UsedBaseline:
		return "delta"
	default:
		return "cold"
	}
}

func (s *Server) observeCompile(path string, start time.Time) {
	if s.compileSeconds == nil {
		return
	}
	s.compileSeconds.With(path).Observe(time.Since(start).Seconds())
}

// execute runs the winning request's compile. The unwind work — freeing
// the worker slot, unregistering the in-flight entry, waking the
// duplicates — runs in a defer so that a panicking flow (we parse
// arbitrary BLIF into code paths that panic on broken invariants) cannot
// wedge the daemon: without it the duplicates would block on done
// forever and the semaphore slot would leak until, after `workers`
// panics, no request could ever compile again.
func (s *Server) execute(c *call, nls []*netlist.Netlist, req *CompileRequest, key codec.Hash) {
	s.sem <- struct{}{} // bound concurrent flow executions
	s.compiles.Add(1)
	defer func() {
		if r := recover(); r != nil {
			c.res, c.err = nil, fmt.Errorf("service: compile panicked: %v", r)
		}
		<-s.sem
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(c.done)
	}()
	var cmp *flow.Comparison
	c.res, cmp, c.err = CompileNetlistsEnv(nls, req, Env{Cache: s.cache, Obs: s.reg})
	// A nil Comparison with a non-nil Result means the artifact store
	// served the whole compile — no flow ran.
	c.warm = c.err == nil && c.res != nil && cmp == nil
}

// respond writes a compile outcome: 200 with the result, or 422 with the
// error folded into the Result schema (a mode set that does not route is
// a property of the request, not a server fault). res may be shared by
// every deduplicated client of one execution, so the error rides in a
// per-response copy — mutating the shared value here would race.
func (s *Server) respond(w http.ResponseWriter, res *Result, err error) {
	if err != nil {
		s.failures.Add(1)
		out := Result{}
		if res != nil {
			out = *res
		}
		out.Error = err.Error()
		writeJSON(w, http.StatusUnprocessableEntity, &out)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
	})
}

// handleReadyz is the readiness probe: liveness says "the process runs",
// readiness says "sending a compile here right now is useful". A worker
// is unready while its admission queue is saturated (requests would be
// shed anyway) or while its remote store tier is unreachable (it would
// compile cold work some other worker already did) — either way the
// dispatcher should prefer a healthier backend until the condition
// clears.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.saturated() {
		reasons = append(reasons, "compile queue saturated")
	}
	if s.cache != nil && !s.cache.Store().RemoteHealthy() {
		reasons = append(reasons, "remote store unreachable")
	}
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unready", "reasons": reasons,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// StatsSnapshot is the /stats document.
type StatsSnapshot struct {
	UptimeSeconds int64  `json:"uptime_seconds"`
	Workers       int    `json:"workers"`
	Requests      uint64 `json:"requests"`
	Deduped       uint64 `json:"deduped"`
	Compiles      uint64 `json:"compiles"`
	Failures      uint64 `json:"failures"`
	// Shed counts requests refused with 503 by admission control;
	// Admitted and QueueLimit describe the queue right now (QueueLimit 0
	// = shedding disabled).
	Shed       uint64     `json:"shed"`
	Admitted   int64      `json:"admitted"`
	QueueLimit int64      `json:"queue_limit"`
	Inflight   int        `json:"inflight"`
	Cache      flow.Stats `json:"cache"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() StatsSnapshot {
	s.mu.Lock()
	inflight := len(s.inflight)
	s.mu.Unlock()
	snap := StatsSnapshot{
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
		Workers:       s.workers,
		Requests:      s.requests.Load(),
		Deduped:       s.deduped.Load(),
		Compiles:      s.compiles.Load(),
		Failures:      s.failures.Load(),
		Shed:          s.shed.Load(),
		Admitted:      s.admitted.Load(),
		QueueLimit:    s.admissionLimit(),
		Inflight:      inflight,
	}
	if s.cache != nil {
		snap.Cache = s.cache.Stats()
	}
	return snap
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
