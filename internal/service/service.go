// Package service is the compile service behind cmd/mmserved and the
// local engine of cmd/mmflow: submit N BLIF mode descriptions, receive
// the full RunComparison result (region, MDR, DCS, switch-cost matrices)
// as one JSON document. Keeping the request/response types and the
// Compile function here means the daemon, the CLI's local path and the
// CLI's -remote path all speak the same schema by construction.
package service

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/codec"
	"repro/internal/flow"
	"repro/internal/merge"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/route"
)

// Mode is one BLIF mode description of a compile request. Name, when set,
// overrides the BLIF .model name (useful when submitting generated text
// that lacks one).
type Mode struct {
	Name string `json:"name,omitempty"`
	BLIF string `json:"blif"`
}

// CompileRequest asks for a full multi-mode comparison of N ≥ 2 modes.
// Zero-valued knobs take the flow defaults (K=4, effort 1.0, seed 0).
type CompileRequest struct {
	Modes []Mode `json:"modes"`
	// K is the LUT input count.
	K int `json:"k,omitempty"`
	// Effort scales the annealing schedules.
	Effort float64 `json:"effort,omitempty"`
	// RefineFrac is TPlace's refinement opening-temperature fraction.
	RefineFrac float64 `json:"refine_frac,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	// Objective selects the combined-placement objective the DCS summary
	// reports: "wire" (default) or "edge". Both are always computed (the
	// comparison needs them); this picks which one the flat fields
	// describe.
	Objective string `json:"objective,omitempty"`
	// RouteWorkers sets the router's worker count. Routing is
	// byte-identical at any value, so this knob is deliberately NOT part
	// of RequestKey: requests differing only in worker count share one
	// cached result.
	RouteWorkers int `json:"route_workers,omitempty"`
	// PlaceWorkers sets the annealers' worker count. Like RouteWorkers,
	// placement is byte-identical at any value, so this knob is
	// deliberately NOT part of RequestKey.
	PlaceWorkers int `json:"place_workers,omitempty"`
	// Starts is the multi-start count: run that many independently seeded
	// anneals and keep the best. Unlike the worker knobs it changes
	// results, so it IS part of RequestKey.
	Starts int `json:"starts,omitempty"`
	// BaselineKey, when set, is the baseline key a prior compile returned
	// (Result.BaselineKey): the flow then recompiles as an ECO delta —
	// reusing the baseline's region, transferring its placements through
	// a structural netlist diff and warm-starting its routers. A missing
	// or unusable baseline falls back to a cold compile (reported in
	// Result.Delta). Delta results follow a different trajectory than
	// cold ones, so the key IS part of RequestKey.
	BaselineKey string `json:"baseline_key,omitempty"`
}

// ModeInfo summarises one mapped mode.
type ModeInfo struct {
	Name string `json:"name"`
	LUTs int    `json:"luts"`
	FFs  int    `json:"ffs"`
	PIs  int    `json:"pis"`
	POs  int    `json:"pos"`
}

// RegionInfo describes the shared reconfigurable region.
type RegionInfo struct {
	Side        int `json:"side"`
	ChannelW    int `json:"channel_width"`
	MinW        int `json:"min_channel_width"`
	RoutingBits int `json:"routing_bits"`
	LUTBits     int `json:"lut_bits"`
}

// MDRInfo summarises the MDR baseline.
type MDRInfo struct {
	ReconfigBits int     `json:"reconfig_bits"`
	AvgWire      float64 `json:"avg_wire"`
}

// DCSInfo summarises the selected DCS implementation.
type DCSInfo struct {
	Objective        string  `json:"objective"`
	TLUTs            int     `json:"tluts"`
	Conns            int     `json:"tunable_connections"`
	SharedConns      int     `json:"shared_connections"`
	ReconfigBits     int     `json:"reconfig_bits"`
	ParamRoutingBits int     `json:"param_routing_bits"`
	AvgWire          float64 `json:"avg_wire"`
}

// SwitchInfo carries the per-transition cost matrices (row = from mode,
// column = to mode).
type SwitchInfo struct {
	MDRFull flow.SwitchMatrix `json:"mdr_full"`
	MDRDiff flow.SwitchMatrix `json:"mdr_diff,omitempty"`
	// MDRDiffError explains an absent MDRDiff (bitstream assembly can
	// fail without failing the compile); consumers can then distinguish
	// "unavailable, here is why" from a schema change.
	MDRDiffError string            `json:"mdr_diff_error,omitempty"`
	DCS          flow.SwitchMatrix `json:"dcs"`
	DCSAvg       float64           `json:"dcs_avg"`
	DCSWorst     int               `json:"dcs_worst"`
}

// RoutingInfo aggregates the router's work statistics over every final
// route of the compile (the MDR per-mode routes plus both DCS TRoute
// passes; region-sizing probes are excluded). Deterministic — the numbers
// do not depend on the worker count — so they are safely part of the
// cached result.
type RoutingInfo struct {
	// Iterations is the summed negotiation iteration count.
	Iterations int `json:"iterations"`
	// Connections is the summed source→sink connection count.
	Connections int `json:"connections"`
	// Rerouted is the summed number of connection reroutes (the cold
	// route counts each connection once; congested iterations add more).
	Rerouted int `json:"rerouted"`
	// PeakOveruse is the worst single-mode node overuse seen anywhere.
	PeakOveruse int `json:"peak_overuse"`
	// Requeued counts parallel commits retried serially after conflicts.
	Requeued int `json:"requeued,omitempty"`
}

// DeltaInfo reports how a compile used its requested baseline.
type DeltaInfo struct {
	// UsedBaseline: the delta path produced this result. BaselineMiss:
	// a baseline was requested but the compile fell back to cold.
	UsedBaseline bool `json:"used_baseline"`
	BaselineMiss bool `json:"baseline_miss,omitempty"`
	// ReusedModes counts MDR placements inherited verbatim,
	// PlaceTransfers annealer runs seeded by baseline transfer, and
	// WarmRouteNets nets seeded from baseline routing trees.
	ReusedModes    int `json:"reused_modes,omitempty"`
	PlaceTransfers int `json:"place_transfers,omitempty"`
	WarmRouteNets  int `json:"warm_route_nets,omitempty"`
}

// Result is the compile response. Error is set (and every other field
// possibly partial) when the flow fails.
type Result struct {
	Error string     `json:"error,omitempty"`
	Modes []ModeInfo `json:"modes,omitempty"`

	Region *RegionInfo `json:"region,omitempty"`
	MDR    *MDRInfo    `json:"mdr,omitempty"`
	DCS    *DCSInfo    `json:"dcs,omitempty"`

	SpeedupVsMDR float64 `json:"speedup_vs_mdr,omitempty"`
	WireVsMDR    float64 `json:"wire_vs_mdr,omitempty"`

	Routing *RoutingInfo `json:"routing,omitempty"`

	SwitchCost *SwitchInfo `json:"switch_cost,omitempty"`

	// BaselineKey is the key under which this compile's own baseline
	// artifact was stored (persistent caches only) — pass it back as
	// CompileRequest.BaselineKey to recompile an edit as a delta.
	BaselineKey string `json:"baseline_key,omitempty"`
	// Delta is present when the request asked for a delta compile.
	Delta *DeltaInfo `json:"delta,omitempty"`
	// Timings is the per-stage wall-time breakdown of THIS process's work
	// on the request: flow stages for a live compile, a single
	// artifact-load row for a warm store hit. Wall-clock only — it is
	// stripped before a result is persisted (a cached result's timings
	// would describe some other process's run) and excluded from every
	// identity, so instrumented and uninstrumented compiles remain
	// byte-identical in all hashed fields.
	Timings []obs.StageTiming `json:"timings,omitempty"`
}

// objective resolves the requested combined-placement objective.
func (req *CompileRequest) objective() (merge.Objective, error) {
	switch strings.ToLower(req.Objective) {
	case "", "wire":
		return merge.WireLength, nil
	case "edge":
		return merge.EdgeMatch, nil
	default:
		return merge.WireLength, fmt.Errorf("service: unknown objective %q (want wire or edge)", req.Objective)
	}
}

// config assembles the flow configuration of a request.
func (req *CompileRequest) config(cache *flow.Cache) flow.Config {
	return flow.Config{
		K:                  req.K,
		PlaceEffort:        req.Effort,
		RefineTempFraction: req.RefineFrac,
		Seed:               req.Seed,
		RouteWorkers:       req.RouteWorkers,
		PlaceWorkers:       req.PlaceWorkers,
		PlaceStarts:        req.Starts,
		Baseline:           req.BaselineKey,
		Cache:              cache,
	}
}

// ParseModes reads every BLIF mode description of a request into a
// netlist, applying the optional per-mode name overrides.
func ParseModes(req *CompileRequest) ([]*netlist.Netlist, error) {
	if len(req.Modes) < 2 {
		return nil, fmt.Errorf("service: need at least two modes, got %d", len(req.Modes))
	}
	nls := make([]*netlist.Netlist, len(req.Modes))
	for i, m := range req.Modes {
		n, err := netlist.ReadBLIF(strings.NewReader(m.BLIF))
		if err != nil {
			return nil, fmt.Errorf("service: mode %d: %w", i, err)
		}
		if m.Name != "" {
			n.Name = m.Name
		}
		nls[i] = n
	}
	return nls, nil
}

// RequestKey derives the content-addressed identity of a parsed request:
// the netlist content hashes plus every knob the result depends on. Two
// textually different submissions of the same networks under the same
// knobs collapse to one key — the identity mmserved deduplicates in-flight
// requests on.
func RequestKey(nls []*netlist.Netlist, req *CompileRequest) codec.Hash {
	w := codec.NewWriter()
	// v2: the multi-start count joined the identity (the worker knobs
	// deliberately stay out — they never change results).
	w.Header("compile-request", 2)
	w.Uvarint(uint64(len(nls)))
	for _, n := range nls {
		h := codec.HashNetlist(n)
		w.String(h.Hex())
	}
	w.Int(req.K)
	w.Float64(req.Effort)
	w.Float64(req.RefineFrac)
	w.Varint(req.Seed)
	obj, _ := req.objective()
	w.Int(int(obj))
	starts := req.Starts
	if starts < 1 {
		starts = 1 // normalised: 0 and 1 starts are the same computation
	}
	w.Int(starts)
	// The baseline key changes the compile trajectory, so it joins the
	// identity — appended only when present, so every baseline-free
	// request keeps its pre-delta key (the encoding is prefix-free, so
	// the conditional field cannot collide with the fixed ones).
	if req.BaselineKey != "" {
		w.String(req.BaselineKey)
	}
	return w.Sum()
}

// resultVersion covers the Result schema and the semantics of everything
// CompileNetlists executes. Like every artifact version it is hashed into
// the store key, so bumping it orphans stale entries.
//
// v2: the connection-based incremental router (routing trajectories
// changed) and the RoutingInfo block in the schema.
//
// v3: the batched parallel-move annealing kernel (placement trajectories
// changed) and the multi-start count in the request identity.
//
// v4: ECO delta compilation — the baseline key joined the request
// identity, results carry BaselineKey/Delta, and every persistent
// compile stores a baseline artifact alongside its result.
const resultVersion = 4

// resultKey derives the store key of a whole compile result from the
// request's content identity.
func resultKey(nls []*netlist.Netlist, req *CompileRequest) codec.Hash {
	w := codec.NewWriter()
	w.Header("compile-result", resultVersion)
	h := RequestKey(nls, req)
	w.String(h.Hex())
	return w.Sum()
}

// Env bundles the cross-cutting machinery a compile runs inside: the
// work cache plus the observability sinks. The zero Env is valid — no
// memoization, no metrics, and an internal throwaway trace (so Timings
// are always populated on live compiles).
type Env struct {
	Cache *flow.Cache
	// Obs receives route/anneal/cache work metrics for this compile.
	Obs *obs.Registry
	// Trace receives the compile's span tree (mmflow -trace hands its
	// own in to write the Chrome trace afterwards). Must not be shared
	// by concurrent compiles.
	Trace *obs.Trace
}

// Compile runs the full comparison for a request. The returned Comparison
// carries the in-memory implementation objects for callers (mmflow -v)
// that need more than the serialisable Result; remote callers — and warm
// store hits, which skip the flow entirely — only see the Result. A nil
// cache is valid and simply disables memoization.
func Compile(req *CompileRequest, cache *flow.Cache) (*Result, *flow.Comparison, error) {
	return CompileEnv(req, Env{Cache: cache})
}

// CompileEnv is Compile with explicit observability plumbing.
func CompileEnv(req *CompileRequest, env Env) (*Result, *flow.Comparison, error) {
	nls, err := ParseModes(req)
	if err != nil {
		return nil, nil, err
	}
	return CompileNetlistsEnv(nls, req, env)
}

// CompileNetlists is Compile after BLIF parsing (the server parses first
// to derive the dedup key, then compiles the parsed forms). When the
// cache carries a persistent store, whole results are content-addressed
// under the request identity: a warm request returns the stored Result
// without running any flow, and by determinism that Result is identical
// to what a fresh compile would produce.
func CompileNetlists(nls []*netlist.Netlist, req *CompileRequest, cache *flow.Cache) (*Result, *flow.Comparison, error) {
	return CompileNetlistsEnv(nls, req, Env{Cache: cache})
}

// CompileNetlistsEnv is CompileNetlists with explicit observability
// plumbing: every flow stage lands as a span in env.Trace (or an
// internal trace when nil), and the resulting per-stage breakdown is
// returned in Result.Timings.
func CompileNetlistsEnv(nls []*netlist.Netlist, req *CompileRequest, env Env) (*Result, *flow.Comparison, error) {
	obj, err := req.objective()
	if err != nil {
		return nil, nil, err
	}
	cache := env.Cache
	tr := env.Trace
	if tr == nil {
		tr = obs.NewTrace()
	}
	root := tr.Start("compile")
	persistent := cache != nil && cache.Store() != nil
	var key codec.Hash
	if persistent {
		key = resultKey(nls, req)
		sp := tr.Start("artifact-load")
		data, ok := cache.GetArtifact(key)
		if ok {
			var res Result
			if jerr := json.Unmarshal(data, &res); jerr == nil && res.Error == "" && res.Region != nil {
				sp.End()
				root.SetLabel("path", "warm")
				root.End()
				res.Timings = tr.Stages()
				return &res, nil, nil
			}
			// Undecodable or incomplete: fall through and overwrite.
		}
		sp.End()
	}
	cfg := req.config(cache)
	cfg.Obs = env.Obs
	cfg.Trace = tr
	mapped, err := flow.MapModes(nls, cfg)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{}
	for _, c := range mapped {
		res.Modes = append(res.Modes, ModeInfo{
			Name: c.Name, LUTs: c.NumBlocks(), FFs: c.NumFFs(), PIs: c.NumPIs(), POs: len(c.POs),
		})
	}
	cmp, err := flow.RunComparison("multimode", mapped, cfg)
	if err != nil {
		return res, nil, fmt.Errorf("mode set does not route: %w", err)
	}
	if d := cmp.Delta; d != nil {
		res.Delta = &DeltaInfo{
			UsedBaseline: d.UsedBaseline, BaselineMiss: d.BaselineMiss,
			ReusedModes: d.ReusedModes, PlaceTransfers: d.PlaceTransfers,
			WarmRouteNets: d.WarmRouteNets,
		}
	}
	region, mdr := cmp.Region, cmp.MDR
	dcs := cmp.WireLen
	if obj == merge.EdgeMatch {
		dcs = cmp.EdgeMatch
	}
	st := dcs.Merge.Tunable.Stats()
	n := len(mapped)

	res.Region = &RegionInfo{
		Side: region.Arch.Width, ChannelW: region.Arch.W, MinW: region.MinW,
		RoutingBits: region.Graph.NumRoutingBits, LUTBits: region.Arch.TotalLUTBits(),
	}
	res.MDR = &MDRInfo{ReconfigBits: mdr.ReconfigBits, AvgWire: mdr.AvgWire}
	res.DCS = &DCSInfo{
		Objective: fmt.Sprint(obj), TLUTs: st.NumTLUTs, Conns: st.NumConns, SharedConns: st.SharedConns,
		ReconfigBits: dcs.ReconfigBits, ParamRoutingBits: dcs.TRoute.ParamRoutingBits, AvgWire: dcs.AvgWire,
	}
	res.SpeedupVsMDR = flow.Speedup(mdr, dcs)
	res.WireVsMDR = flow.WireRatio(mdr, dcs)
	var sum route.Summary
	for _, m := range mdr.PerMode {
		sum.Add(m.Routing.Stats)
	}
	sum.Add(cmp.EdgeMatch.TRoute.Route.Stats)
	sum.Add(cmp.WireLen.TRoute.Route.Stats)
	res.Routing = &RoutingInfo{
		Iterations: sum.Iterations, Connections: sum.Connections,
		Rerouted: sum.Rerouted, PeakOveruse: sum.PeakOveruse, Requeued: sum.Requeued,
	}

	sp := tr.Start("bitstream")
	sw := &SwitchInfo{
		MDRFull: flow.MDRSwitchMatrix(region, n),
		DCS:     flow.DCSSwitchMatrix(region.Arch, dcs.TRoute, n),
	}
	// The Diff matrix assembles real bitstreams; when assembly fails the
	// compile still succeeds, with the reason recorded next to the gap.
	if diff, derr := flow.MDRDiffSwitchMatrix(region, mapped, mdr); derr == nil {
		sw.MDRDiff = diff
	} else {
		sw.MDRDiffError = derr.Error()
	}
	sw.DCSAvg = sw.DCS.Avg()
	_, _, sw.DCSWorst = sw.DCS.Worst()
	res.SwitchCost = sw
	sp.End()
	if res.Delta != nil && res.Delta.UsedBaseline {
		root.SetLabel("path", "delta")
	} else {
		root.SetLabel("path", "cold")
	}
	root.End()
	if persistent {
		// Store the baseline artifact of THIS compile next to the result,
		// keyed by the request identity, and hand the key back — the next
		// edit of these modes passes it as BaselineKey to compile as a
		// delta against today's run.
		bkey := flow.BaselineArtifactKey(RequestKey(nls, req))
		cache.PutArtifact(bkey, flow.EncodeBaseline(flow.BuildBaseline(cmp, mapped)))
		res.BaselineKey = bkey.Hex()
		// A baseline-miss fallback is transient state (the artifact may
		// exist by the next request); persisting it would pin the miss
		// forever. Cache only results whose delta disposition is stable.
		// Timings are deliberately absent here (res.Timings is set only
		// after this marshal): a persisted result is served to other
		// processes, whose time-to-result is their own artifact load, not
		// this compile's stage breakdown.
		if res.Delta == nil || !res.Delta.BaselineMiss {
			if data, jerr := json.Marshal(res); jerr == nil {
				cache.PutArtifact(key, data)
			}
		}
	}
	res.Timings = tr.Stages()
	return res, cmp, nil
}
