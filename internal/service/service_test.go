package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/store"
)

// blifMode renders a small generated sequential netlist as BLIF text.
func blifMode(t *testing.T, seed int64, nGates int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("mode%d", seed))
	sigs := b.InputVector("in", 4)
	for i := 0; i < nGates; i++ {
		x := sigs[rng.Intn(len(sigs))]
		y := sigs[rng.Intn(len(sigs))]
		switch rng.Intn(5) {
		case 0:
			sigs = append(sigs, b.And(x, y))
		case 1:
			sigs = append(sigs, b.Or(x, y))
		case 2:
			sigs = append(sigs, b.Xor(x, y))
		case 3:
			sigs = append(sigs, b.Not(x))
		default:
			sigs = append(sigs, b.Latch(x, false))
		}
	}
	for i := 0; i < 3; i++ {
		b.Output(fmt.Sprintf("o[%d]", i), sigs[len(sigs)-1-i])
	}
	var buf bytes.Buffer
	if err := netlist.WriteBLIF(&buf, b.N); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func testRequest(t *testing.T) *CompileRequest {
	return &CompileRequest{
		Modes:  []Mode{{BLIF: blifMode(t, 1, 30)}, {BLIF: blifMode(t, 2, 30)}},
		Effort: 0.2,
		Seed:   1,
	}
}

// stripTimings removes the wall-clock timings field from a Result JSON
// body so deterministic-content comparisons can ignore it.
func stripTimings(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("undecodable result body: %v", err)
	}
	delete(m, "timings")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompileMatchesFlow(t *testing.T) {
	req := testRequest(t)
	res, cmp, err := Compile(req, flow.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	if cmp == nil || res.Region == nil || res.MDR == nil || res.DCS == nil || res.SwitchCost == nil {
		t.Fatalf("incomplete result: %+v", res)
	}
	if res.MDR.ReconfigBits != cmp.MDR.ReconfigBits ||
		res.DCS.ReconfigBits != cmp.WireLen.ReconfigBits ||
		res.SpeedupVsMDR != flow.Speedup(cmp.MDR, cmp.WireLen) {
		t.Fatalf("result fields disagree with the comparison: %+v", res)
	}
	if len(res.Modes) != 2 || res.Modes[0].Name != "mode1" {
		t.Fatalf("mode summaries wrong: %+v", res.Modes)
	}
	if res.SwitchCost.DCS.N() != 2 || res.SwitchCost.MDRFull[0][1] != res.MDR.ReconfigBits {
		t.Fatalf("switch matrices wrong: %+v", res.SwitchCost)
	}
}

// TestRequestKeyCanonical: the dedup key must ignore textual BLIF
// presentation but track every semantic knob.
func TestRequestKeyCanonical(t *testing.T) {
	req := testRequest(t)
	nls, err := ParseModes(req)
	if err != nil {
		t.Fatal(err)
	}
	base := RequestKey(nls, req)

	// Re-parsing the same text (fresh pointers) keys identically.
	nls2, _ := ParseModes(req)
	if RequestKey(nls2, req) != base {
		t.Fatal("identical request keyed differently across parses")
	}
	// Comments and blank lines do not change the network.
	commented := *req
	commented.Modes = append([]Mode(nil), req.Modes...)
	commented.Modes[0].BLIF = "# a comment\n\n" + commented.Modes[0].BLIF
	nls3, err := ParseModes(&commented)
	if err != nil {
		t.Fatal(err)
	}
	if RequestKey(nls3, &commented) != base {
		t.Fatal("cosmetic BLIF change altered the request key")
	}
	// A knob change does.
	seeded := *req
	seeded.Seed = 99
	if RequestKey(nls, &seeded) == base {
		t.Fatal("seed change did not alter the request key")
	}
	objed := *req
	objed.Objective = "edge"
	if RequestKey(nls, &objed) == base {
		t.Fatal("objective change did not alter the request key")
	}
}

// TestServerDedupsConcurrentRequests is the daemon's acceptance test:
// identical compile requests in flight at once share a single flow
// execution, and every client receives the same successful result.
func TestServerDedupsConcurrentRequests(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(flow.NewCacheWithStore(st), 2)
	const clients = 6
	// Park the winning request's compile until every duplicate has
	// committed to joining its in-flight call, so the single-execution
	// assertion below cannot depend on how compile latency compares to
	// request-arrival spread.
	var release atomic.Bool
	srv.testHookBeforeCompile = func() {
		for !release.Load() && srv.deduped.Load() < clients-1 {
			runtime.Gosched()
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(testRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	responses := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			responses[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	release.Store(true) // later single requests must not park
	for i := 1; i < clients; i++ {
		if !bytes.Equal(responses[i], responses[0]) {
			t.Fatalf("client %d received a different result", i)
		}
	}
	stats := srv.Stats()
	if stats.Compiles != 1 {
		t.Fatalf("%d concurrent identical requests ran %d flow executions, want 1", clients, stats.Compiles)
	}
	if stats.Deduped != clients-1 {
		t.Fatalf("deduped %d, want %d", stats.Deduped, clients-1)
	}
	if stats.Requests != clients || stats.Failures != 0 || stats.Inflight != 0 {
		t.Fatalf("unexpected stats %+v", stats)
	}

	// A later identical request is a fresh execution (the in-flight window
	// is over) but a cheap one: the server's shared cache already holds
	// every placement, so no new annealing happens.
	annealsAfterFirst := stats.Cache.PlaceAnneals
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	again, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// Timings are wall-clock (a warm hit reports an artifact-load stage,
	// the cold compile its flow stages), so they are the one field allowed
	// to differ; everything deterministic must match byte-for-byte.
	if !bytes.Equal(stripTimings(t, again), stripTimings(t, responses[0])) {
		t.Fatal("warm re-request returned a different result")
	}
	if s := srv.Stats(); s.Compiles != 2 {
		t.Fatalf("warm re-request: %d compiles, want 2", s.Compiles)
	} else if s.Cache.PlaceAnneals != annealsAfterFirst {
		t.Fatalf("warm re-request annealed %d new placements, want 0", s.Cache.PlaceAnneals-annealsAfterFirst)
	}
}

func TestServerEndpointsAndErrors(t *testing.T) {
	srv := NewServer(flow.NewCache(), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Workers != 1 {
		t.Fatalf("stats: %+v", snap)
	}

	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/compile", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// Too few modes.
	resp, err = http.Post(ts.URL+"/compile", "application/json", strings.NewReader(`{"modes":[{"blif":".model a\n.inputs x\n.outputs y\n.names x y\n1 1\n.end"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("single mode: status %d, want 400", resp.StatusCode)
	}
	// GET on /compile.
	resp, err = http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compile: status %d, want 405", resp.StatusCode)
	}
}

// TestResultJSONSchema pins the wire schema mmflow's -json consumers see.
func TestResultJSONSchema(t *testing.T) {
	res := &Result{
		Modes:  []ModeInfo{{Name: "a", LUTs: 1}},
		Region: &RegionInfo{Side: 5, ChannelW: 6, MinW: 5, RoutingBits: 7, LUTBits: 8},
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["error"]; ok {
		t.Fatal("empty error serialised")
	}
	region, ok := m["region"].(map[string]any)
	if !ok {
		t.Fatalf("region missing: %s", data)
	}
	for _, k := range []string{"side", "channel_width", "min_channel_width", "routing_bits", "lut_bits"} {
		if _, ok := region[k]; !ok {
			t.Fatalf("region key %q missing: %s", k, data)
		}
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, res) {
		t.Fatal("JSON round trip changed the result")
	}
}

// TestCompileDeltaBaseline is the service-level ECO loop: a persistent
// compile hands back a baseline key, an edited resubmission with that key
// compiles as a delta, and a bogus key degrades to a cold compile with
// the miss reported — never a failure.
func TestCompileDeltaBaseline(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := flow.NewCacheWithStore(st)
	req := testRequest(t)
	res, _, err := Compile(req, cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineKey == "" {
		t.Fatal("persistent compile returned no baseline key")
	}
	if res.Delta != nil {
		t.Fatalf("cold compile reported delta info: %+v", res.Delta)
	}

	// Edit one mode (one extra gate) and recompile against the baseline.
	edited := *req
	edited.Modes = append([]Mode(nil), req.Modes...)
	edited.Modes[1].BLIF = blifMode(t, 2, 31)
	edited.BaselineKey = res.BaselineKey
	res2, _, err := Compile(&edited, cache)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Delta == nil || !res2.Delta.UsedBaseline {
		t.Fatalf("edited resubmission did not use the baseline: %+v", res2.Delta)
	}
	if res2.Delta.WarmRouteNets == 0 {
		t.Fatal("delta compile warm-routed no nets")
	}
	if res2.BaselineKey == "" || res2.BaselineKey == res.BaselineKey {
		t.Fatal("delta compile must store its own baseline under a new key")
	}
	// The baseline key is part of the request identity.
	nls, err := ParseModes(&edited)
	if err != nil {
		t.Fatal(err)
	}
	plain := edited
	plain.BaselineKey = ""
	if RequestKey(nls, &edited) == RequestKey(nls, &plain) {
		t.Fatal("baseline key did not alter the request key")
	}

	// A bogus baseline falls back to cold, reported but successful.
	bogus := *req
	bogus.BaselineKey = "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"
	res3, _, err := Compile(&bogus, cache)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Delta == nil || !res3.Delta.BaselineMiss {
		t.Fatalf("bogus baseline not reported as a miss: %+v", res3.Delta)
	}
	if cache.Stats().BaselineMisses == 0 {
		t.Fatal("baseline miss not counted")
	}

	// A miss is transient, so its fallback result must not be pinned in
	// the persistent result cache: once an artifact appears under the
	// requested key, the very same request compiles as a delta.
	bkey, err := codec.ParseHash(res.BaselineKey)
	if err != nil {
		t.Fatal(err)
	}
	art, ok := cache.GetArtifact(bkey)
	if !ok {
		t.Fatal("stored baseline artifact not retrievable")
	}
	lateKey, err := codec.ParseHash(bogus.BaselineKey)
	if err != nil {
		t.Fatal(err)
	}
	cache.PutArtifact(lateKey, art)
	res4, _, err := Compile(&bogus, cache)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Delta == nil || !res4.Delta.UsedBaseline {
		t.Fatalf("late-arriving baseline not picked up on retry: %+v", res4.Delta)
	}
}
