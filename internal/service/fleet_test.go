package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/store"
)

// fleetWorker is one compile worker with a private local store attached
// to a shared remote blob service.
type fleetWorker struct {
	store *store.Store
	srv   *Server
	ts    *httptest.Server
}

// newFleet starts a remote blob service over its own store plus n
// workers sharing it, each with an isolated local cache directory.
func newFleet(t *testing.T, n int) (*httptest.Server, []*fleetWorker) {
	t.Helper()
	shared, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blob := httptest.NewServer(store.Handler(shared))
	t.Cleanup(blob.Close)
	workers := make([]*fleetWorker, n)
	for i := range workers {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		st.AttachRemote(store.NewRemote(blob.URL, 5*time.Second))
		srv := NewServer(flow.NewCacheWithStore(st), 2)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		workers[i] = &fleetWorker{store: st, srv: srv, ts: ts}
	}
	return blob, workers
}

// postCompileRaw submits the request and returns the raw status and body
// (postCompile in obs_test.go decodes; fleet tests compare bytes).
func postCompileRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestFleetSecondWorkerWarmViaRemote is the fleet's acceptance test: a
// key compiled cold by worker A is served warm by worker B purely
// through the shared remote artifact tier — B runs zero placement
// anneals and builds zero routing graphs, and the bytes match A's.
func TestFleetSecondWorkerWarmViaRemote(t *testing.T) {
	_, ws := newFleet(t, 2)
	a, b := ws[0], ws[1]
	body, err := json.Marshal(testRequest(t))
	if err != nil {
		t.Fatal(err)
	}

	status, coldBytes := postCompileRaw(t, a.ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("worker A cold compile: status %d: %s", status, coldBytes)
	}
	if st := a.srv.Stats(); st.Cache.PlaceAnneals == 0 || st.Cache.Store.RemotePuts == 0 {
		t.Fatalf("worker A did not compile cold and push artifacts: %+v", st.Cache)
	}

	status, warmBytes := postCompileRaw(t, b.ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("worker B warm compile: status %d: %s", status, warmBytes)
	}
	st := b.srv.Stats()
	if st.Cache.PlaceAnneals != 0 {
		t.Fatalf("worker B ran %d placement anneals, want 0 (warm via remote)", st.Cache.PlaceAnneals)
	}
	if st.Cache.GraphBuilds != 0 {
		t.Fatalf("worker B built %d routing graphs, want 0 (warm via remote)", st.Cache.GraphBuilds)
	}
	if st.Cache.ArtifactHits == 0 {
		t.Fatalf("worker B reported no artifact hit: %+v", st.Cache)
	}
	if st.Cache.Store.RemoteHits == 0 {
		t.Fatalf("worker B's warm result did not come through the remote tier: %+v", st.Cache.Store)
	}
	if !bytes.Equal(stripTimings(t, warmBytes), stripTimings(t, coldBytes)) {
		t.Fatal("worker B's warm result differs from worker A's cold result")
	}

	// The write-through made B's copy local: a repeat visit stays off the
	// network entirely.
	remoteHits := st.Cache.Store.RemoteHits
	status, againBytes := postCompileRaw(t, b.ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("worker B repeat: status %d", status)
	}
	if !bytes.Equal(stripTimings(t, againBytes), stripTimings(t, coldBytes)) {
		t.Fatal("worker B repeat returned different bytes")
	}
	if st := b.srv.Stats(); st.Cache.Store.RemoteHits != remoteHits {
		t.Fatalf("repeat request went remote again: %+v", st.Cache.Store)
	}
}

// TestFleetRemoteDownMidRun: the remote tier dying mid-run must cost
// performance only — every request still succeeds, served by local
// recompute, and the worker reports itself unready so the dispatcher
// can steer around it.
func TestFleetRemoteDownMidRun(t *testing.T) {
	blob, ws := newFleet(t, 1)
	w := ws[0]

	req1 := testRequest(t)
	body1, _ := json.Marshal(req1)
	if status, out := postCompileRaw(t, w.ts.URL, body1); status != http.StatusOK {
		t.Fatalf("compile with remote up: status %d: %s", status, out)
	}

	blob.Close() // the remote tier dies mid-run

	// A new key (cold, put must fail remotely) and the old key (warm
	// locally) both still succeed.
	req2 := testRequest(t)
	req2.Seed = 7
	body2, _ := json.Marshal(req2)
	if status, out := postCompileRaw(t, w.ts.URL, body2); status != http.StatusOK {
		t.Fatalf("cold compile with remote down: status %d: %s", status, out)
	}
	if status, _ := postCompileRaw(t, w.ts.URL, body1); status != http.StatusOK {
		t.Fatalf("warm compile with remote down: status %d", status)
	}

	st := w.srv.Stats()
	if st.Failures != 0 {
		t.Fatalf("remote outage caused %d request failures, want 0 (fail-open)", st.Failures)
	}
	if st.Cache.Store.RemoteErrors == 0 {
		t.Fatalf("remote outage left no error trace: %+v", st.Cache.Store)
	}

	// Readiness (not liveness) reflects the outage.
	resp, err := http.Get(w.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with remote down: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(w.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz with remote down: status %d, want 200", resp.StatusCode)
	}
}

// TestFleetWorkerCountIndependence pins the determinism contract the
// fleet relies on: worker-pool sizes are execution detail, not identity
// — the same request compiled cold under different parallelism knobs
// yields byte-identical results, which is why RouteWorkers/PlaceWorkers
// are excluded from RequestKey and artifacts are shareable fleet-wide.
func TestFleetWorkerCountIndependence(t *testing.T) {
	var results [][]byte
	for _, workers := range []int{1, 4} {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(flow.NewCacheWithStore(st), workers)
		ts := httptest.NewServer(srv.Handler())
		req := testRequest(t)
		req.RouteWorkers = workers
		req.PlaceWorkers = workers
		body, _ := json.Marshal(req)
		status, out := postCompileRaw(t, ts.URL, body)
		ts.Close()
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, status, out)
		}
		results = append(results, stripTimings(t, out))
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatal("cold compiles at different worker counts diverged")
	}

	// The knobs that differ must not have changed the request identity —
	// otherwise the fleet's cross-worker warm path could never hit.
	req1, req4 := testRequest(t), testRequest(t)
	req4.RouteWorkers, req4.PlaceWorkers = 4, 4
	nls, err := ParseModes(req1)
	if err != nil {
		t.Fatal(err)
	}
	if RequestKey(nls, req1) != RequestKey(nls, req4) {
		t.Fatal("worker-count knobs leaked into RequestKey")
	}
}
