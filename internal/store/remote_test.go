package store

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
)

// fleet builds a remote blob service over its own store plus n workers
// attached to it, each with a private local directory.
func fleet(t *testing.T, n int) (*Store, *httptest.Server, []*Store) {
	t.Helper()
	shared, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(shared))
	t.Cleanup(ts.Close)
	workers := make([]*Store, n)
	for i := range workers {
		w, err := Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		w.AttachRemote(NewRemote(ts.URL, 5*time.Second))
		workers[i] = w
	}
	return shared, ts, workers
}

func TestRemoteWriteThroughSharesArtifacts(t *testing.T) {
	_, _, ws := fleet(t, 2)
	a, b := ws[0], ws[1]
	payload := []byte("artifact payload produced by worker A")
	key := codec.Sum(payload)

	if err := a.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.RemotePuts != 1 || st.RemoteErrors != 0 {
		t.Fatalf("worker A remote stats after put: %+v", st)
	}

	// Worker B never computed this key: its local tier misses, the remote
	// serves it, and the write-through makes the next read local.
	got, err := b.Get(key)
	if err != nil {
		t.Fatalf("worker B get: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("worker B got %q, want %q", got, payload)
	}
	st := b.Stats()
	if st.RemoteHits != 1 || st.RemoteMisses != 0 || st.RemoteErrors != 0 {
		t.Fatalf("worker B remote stats after first get: %+v", st)
	}
	if _, err := b.Get(key); err != nil {
		t.Fatalf("worker B second get: %v", err)
	}
	st = b.Stats()
	if st.RemoteHits != 1 {
		t.Fatalf("second get went remote again: %+v", st)
	}
	if st.Hits != 1 {
		t.Fatalf("second get missed the written-through local entry: %+v", st)
	}
}

func TestRemoteMissReportsNotFound(t *testing.T) {
	_, _, ws := fleet(t, 1)
	if _, err := ws[0].Get(codec.Sum([]byte("nowhere"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if st := ws[0].Stats(); st.RemoteMisses != 1 || st.RemoteErrors != 0 {
		t.Fatalf("remote stats: %+v", st)
	}
}

// TestRemoteBitFlipHealed covers corruption at rest on the store host: the
// blob service verifies its own entries, so a bit-flipped file is deleted
// server-side and reported as a miss; the worker recomputes, and its Put
// re-pushes a good copy that every later worker can fetch again.
func TestRemoteBitFlipHealed(t *testing.T) {
	shared, _, ws := fleet(t, 2)
	a, b := ws[0], ws[1]
	payload := []byte("the artifact that gets damaged at rest")
	key := codec.Sum(payload)
	if err := a.Put(key, payload); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in the shared store's entry file.
	path := shared.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := b.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get of damaged blob: err = %v, want ErrNotFound (server-side delete)", err)
	}
	if st := shared.Stats(); st.Corrupt != 1 {
		t.Fatalf("shared store never detected the corruption: %+v", st)
	}
	// "Recompute" and re-push.
	if err := b.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Get(key); err != nil || string(got) != string(payload) {
		t.Fatalf("after heal, worker A get = %q, %v", got, err)
	}
}

// TestRemoteTransitCorruptionHealed covers corruption on the wire: the
// first transfer of the blob is served with a flipped byte (checksum
// header intact), which the client must reject as ErrCorrupt; the
// recompute-and-put re-push overwrites the remote entry, and the next
// fetch succeeds.
func TestRemoteTransitCorruptionHealed(t *testing.T) {
	shared, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	inner := Handler(shared)
	var corruptNext atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && corruptNext.Load() {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if rec.Code == http.StatusOK && len(body) > 0 {
				body[0] ^= 0xff
			}
			for k, vs := range rec.Header() {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.Code)
			w.Write(body)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	w, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w.AttachRemote(NewRemote(ts.URL, 5*time.Second))

	payload := []byte("the artifact that gets damaged in transit")
	key := codec.Sum(payload)
	if err := shared.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	corruptNext.Store(true)
	if _, err := w.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted transfer: err = %v, want ErrCorrupt", err)
	}
	if st := w.Stats(); st.RemoteErrors != 1 {
		t.Fatalf("remote stats after corrupt transfer: %+v", st)
	}
	// The client must not have written the damaged payload through.
	if _, err := w.getLocal(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt payload reached the local tier: %v", err)
	}
	// Recompute, re-push, clean fetch.
	corruptNext.Store(false)
	if err := w.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh.AttachRemote(NewRemote(ts.URL, 5*time.Second))
	if got, err := fresh.Get(key); err != nil || string(got) != string(payload) {
		t.Fatalf("after heal, fresh worker get = %q, %v", got, err)
	}
}

// TestRemoteDownFailOpen: with the remote unreachable, gets degrade to
// local misses (recompute) and puts still succeed locally — no operation
// returns a remote-induced failure.
func TestRemoteDownFailOpen(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // nothing listens here any more

	w, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w.AttachRemote(NewRemote(url, time.Second))

	payload := []byte("computed while the remote is down")
	key := codec.Sum(payload)
	if _, err := w.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get with remote down: err = %v, want ErrNotFound", err)
	}
	if err := w.Put(key, payload); err != nil {
		t.Fatalf("put with remote down: %v", err)
	}
	if got, err := w.Get(key); err != nil || string(got) != string(payload) {
		t.Fatalf("local readback: %q, %v", got, err)
	}
	st := w.Stats()
	if st.RemoteErrors < 2 || st.RemotePuts != 0 {
		t.Fatalf("remote stats with remote down: %+v", st)
	}
	if w.RemoteHealthy() {
		t.Fatal("RemoteHealthy() = true for a dead remote")
	}
}

// TestRemoteSingleFlight: concurrent local misses of one key trigger one
// remote transfer, not N.
func TestRemoteSingleFlight(t *testing.T) {
	shared, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("fetched exactly once")
	key := codec.Sum(payload)
	if err := shared.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	var gets atomic.Int64
	release := make(chan struct{})
	inner := Handler(shared)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			gets.Add(1)
			<-release // park every fetch until all requesters have piled up
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	w, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w.AttachRemote(NewRemote(ts.URL, 10*time.Second))

	const n = 8
	var wg sync.WaitGroup
	results := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = w.Get(key)
		}(i)
	}
	// Give the requesters time to reach the single-flight gate, then let
	// the one leader through.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("requester %d: %v", i, err)
		}
	}
	if got := gets.Load(); got != 1 {
		t.Fatalf("remote saw %d GETs, want 1 (single-flight)", got)
	}
	if st := w.Stats(); st.RemoteHits != 1 {
		t.Fatalf("remote stats: %+v", st)
	}
}
