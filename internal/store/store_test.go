package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
)

func keyOf(s string) codec.Hash { return codec.Sum([]byte(s)) }

func openTest(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, 0)
	key := keyOf("k1")
	payload := []byte("the artifact payload")
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned %q, want %q", got, payload)
	}
	// Reopening the directory (a new process) still finds the entry.
	s2, err := Open(s.Root(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get(key); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("entry did not survive reopen: %q, %v", got, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

// TestParallelWritersOneKey: concurrent writers of the same key (identical
// payloads, as determinism guarantees) and concurrent readers must never
// observe a partial or corrupt entry. Run under -race in CI.
func TestParallelWritersOneKey(t *testing.T) {
	s := openTest(t, 0)
	key := keyOf("contended")
	payload := bytes.Repeat([]byte("abcdefgh"), 4096)
	const writers, readers = 8, 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := s.Put(key, payload); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				got, err := s.Get(key)
				if errors.Is(err, ErrNotFound) {
					continue // writer has not published yet
				}
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Error("reader observed a wrong payload")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, err := s.Get(key); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("final Get: %v", err)
	}
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("observed %d corrupt reads under contention", st.Corrupt)
	}
}

// TestCorruptEntryFallsBack: a truncated or bit-flipped entry must fail
// verification, be deleted, and be replaceable — never parsed, never
// sticky.
func TestCorruptEntryFallsBack(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-1] ^= 0x40 // flip inside the payload
			return out
		}},
		{"emptied", func([]byte) []byte { return nil }},
		{"foreign", func([]byte) []byte { return []byte("not a store entry at all") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := openTest(t, 0)
			key := keyOf("victim")
			payload := []byte("precious artifact bytes")
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(s.Path(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.Path(key), tc.corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Get on corrupt entry: %v, want ErrCorrupt", err)
			}
			// The corrupt entry is gone: the next read is a plain miss...
			if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("corrupt entry not deleted: %v", err)
			}
			// ...and a recompute-and-Put heals the key.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, err := s.Get(key); err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("healed entry unreadable: %v", err)
			}
		})
	}
}

// TestSizeCapEvictsOldest: pushing the store over its byte cap evicts the
// least-recently-used entries; recently read entries survive.
func TestSizeCapEvictsOldest(t *testing.T) {
	// Each entry: 8 magic + 32 checksum + 100 payload = 140 bytes.
	s := openTest(t, 600)
	payload := bytes.Repeat([]byte("x"), 100)
	var keys []codec.Hash
	for i := 0; i < 4; i++ {
		k := keyOf(fmt.Sprintf("k%d", i))
		keys = append(keys, k)
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	// All four fit (560 <= 600). Make k0 recently used, then overflow.
	for _, k := range keys {
		if _, err := s.Get(k); err != nil {
			t.Fatalf("entry evicted below the cap: %v", err)
		}
	}
	// Backdate k1 so it is the LRU victim.
	ancient := time.Unix(1, 0)
	if err := os.Chtimes(s.Path(keys[1]), ancient, ancient); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyOf("k4"), payload); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(keys[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU entry survived eviction: %v", err)
	}
	if _, err := s.Get(keys[3]); err != nil {
		t.Fatalf("recent entry was evicted: %v", err)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}

// TestStaleTempSweep: Open removes old abandoned writer temp files (they
// are invisible to the size cap) but leaves young ones for their writer.
func TestStaleTempSweep(t *testing.T) {
	s := openTest(t, 0)
	if err := s.Put(keyOf("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(s.Path(keyOf("k")))
	stale := filepath.Join(shard, ".tmp-stale")
	young := filepath.Join(shard, ".tmp-young")
	for _, p := range []string{stale, young} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(s.Root(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
	if _, err := os.Stat(young); err != nil {
		t.Fatal("young temp file was swept")
	}
	if got, err := s.Get(keyOf("k")); err != nil || string(got) != "v" {
		t.Fatalf("entry damaged by sweep: %v", err)
	}
}

// TestDistinctKeysDoNotCollide: two keys differing in any bit land in
// different entries (also exercises the shard layout).
func TestDistinctKeysDoNotCollide(t *testing.T) {
	s := openTest(t, 0)
	a, b := keyOf("a"), keyOf("b")
	if err := s.Put(a, []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b, []byte("B")); err != nil {
		t.Fatal(err)
	}
	ga, _ := s.Get(a)
	gb, _ := s.Get(b)
	if !bytes.Equal(ga, []byte("A")) || !bytes.Equal(gb, []byte("B")) {
		t.Fatalf("payloads crossed: %q %q", ga, gb)
	}
}
