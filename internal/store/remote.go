// The remote tier: a content-addressed blob service over HTTP that lets N
// shared-nothing worker processes share one warm artifact universe.
//
// The protocol is deliberately tiny — the store's identity contract does
// all the work. A blob is addressed by the same codec.Hash key the local
// tier uses (the content hash of the artifact's *inputs*), so any worker
// that derives a key can fetch what any other worker compiled:
//
//	GET  /blob/{keyhex} — 200 + payload (X-Mm-Sum: sha256 of the body),
//	                      404 for absent or locally-corrupt entries
//	PUT  /blob/{keyhex} — store the body, 204
//	GET  /healthz       — liveness of the blob service
//	GET  /stats         — the backing Store's traffic counters as JSON
//
// Payloads are checksummed end to end: the server recomputes the SHA-256
// of what it serves, the client verifies the body against the header, and
// the local write-through re-verifies on every later read. A mismatch
// anywhere degrades to the store's universal failure mode — recompute —
// and the next Put heals both tiers.
//
// Every remote failure is fail-open by design: an unreachable, slow, or
// corrupt remote makes the fleet slower (cold compiles happen more than
// once), never wrong and never down.
package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/codec"
)

// blobPath prefixes every blob route of the remote store protocol.
const blobPath = "/blob/"

// sumHeader carries the hex SHA-256 of the payload body, letting the
// receiving side detect in-transit corruption before any decoder runs.
const sumHeader = "X-Mm-Sum"

// maxBlobBytes bounds a single artifact transfer in either direction.
// Whole compile results and RRG graphs are a few MB at most; the cap only
// exists so a confused peer cannot make a worker buffer gigabytes.
const maxBlobBytes = 256 << 20

// ErrRemoteUnavailable wraps transport-level remote failures. Callers
// inside the store treat it as a miss (fail-open); it is exported so
// readiness probes can distinguish "remote down" from "key absent".
var ErrRemoteUnavailable = errors.New("store: remote unavailable")

// Remote is the client half of the blob protocol: one per store, shared
// by every goroutine. All methods are safe for concurrent use.
type Remote struct {
	base   string
	client *http.Client

	// Readiness probe cache: Healthy() is called per /readyz scrape and
	// must not turn every readiness check into remote traffic.
	probeMu sync.Mutex
	probeAt time.Time
	probeOK bool
}

// probeTTL is how long one /healthz probe result answers Healthy() calls.
const probeTTL = 2 * time.Second

// probeTimeout bounds a single readiness probe; a remote that cannot
// answer /healthz in this window is unreachable for readiness purposes.
const probeTimeout = time.Second

// NewRemote returns a client for the blob service at base (e.g.
// "http://store-host:9400"). timeout bounds every blob transfer; <= 0
// selects a default generous enough for multi-MB artifacts on a slow
// link but short enough that a hung remote cannot wedge a compile.
func NewRemote(base string, timeout time.Duration) *Remote {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Remote{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Timeout: timeout},
	}
}

// Base returns the remote's base URL.
func (r *Remote) Base() string { return r.base }

func (r *Remote) blobURL(key codec.Hash) string { return r.base + blobPath + key.Hex() }

// Get fetches the payload stored remotely under key. It returns
// ErrNotFound for absent entries, ErrCorrupt when the body fails its
// checksum, and an ErrRemoteUnavailable-wrapped error for transport
// failures — the caller maps all three to "recompute".
func (r *Remote) Get(key codec.Hash) ([]byte, error) {
	resp, err := r.client.Get(r.blobURL(key))
	if err != nil {
		return nil, fmt.Errorf("%w: get %s: %v", ErrRemoteUnavailable, r.base, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// fall through to the body
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, ErrNotFound
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%w: get %s: status %d", ErrRemoteUnavailable, r.base, resp.StatusCode)
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
	if err != nil {
		return nil, fmt.Errorf("%w: get %s: %v", ErrRemoteUnavailable, r.base, err)
	}
	if len(payload) > maxBlobBytes {
		return nil, ErrCorrupt
	}
	// Verify the body against the server's checksum. A missing header is
	// treated like a mismatch: an unchecksummed payload from a confused
	// peer must never reach a decoder.
	sum := sha256.Sum256(payload)
	if resp.Header.Get(sumHeader) != hex.EncodeToString(sum[:]) {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// Put stores payload remotely under key. Failures are reported, not
// retried: the caller's local tier already holds the artifact, so a lost
// push only costs some other worker a recompute (which re-pushes).
func (r *Remote) Put(key codec.Hash, payload []byte) error {
	sum := sha256.Sum256(payload)
	req, err := http.NewRequest(http.MethodPut, r.blobURL(key), bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("%w: put %s: %v", ErrRemoteUnavailable, r.base, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(sumHeader, hex.EncodeToString(sum[:]))
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: put %s: %v", ErrRemoteUnavailable, r.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%w: put %s: status %d", ErrRemoteUnavailable, r.base, resp.StatusCode)
	}
	return nil
}

// Healthy reports whether the remote answered a recent liveness probe.
// Results are cached for probeTTL so readiness scrapes stay cheap; the
// probe itself is bounded by probeTimeout.
func (r *Remote) Healthy() bool {
	r.probeMu.Lock()
	defer r.probeMu.Unlock()
	if time.Since(r.probeAt) < probeTTL {
		return r.probeOK
	}
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	ok := false
	if err == nil {
		if resp, rerr := r.client.Do(req); rerr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	r.probeAt, r.probeOK = time.Now(), ok
	return ok
}

// Handler returns the server half of the blob protocol over a local
// store: the routes cmd/mmstored serves. The backing store verifies every
// entry it reads, so a bit-flipped blob on the store host is deleted
// server-side and reported as 404 — the fetching worker recomputes and
// its re-push heals the entry.
func Handler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(blobPath, func(w http.ResponseWriter, r *http.Request) {
		key, err := codec.ParseHash(strings.TrimPrefix(r.URL.Path, blobPath))
		if err != nil {
			http.Error(w, "bad blob key", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			payload, err := s.Get(key)
			switch {
			case err == nil:
				sum := sha256.Sum256(payload)
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set(sumHeader, hex.EncodeToString(sum[:]))
				_, _ = w.Write(payload)
			case errors.Is(err, ErrNotFound), errors.Is(err, ErrCorrupt):
				http.Error(w, "not found", http.StatusNotFound)
			default:
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case http.MethodPut:
			payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
			if err != nil {
				http.Error(w, "body too large or unreadable", http.StatusBadRequest)
				return
			}
			// Reject in-transit corruption before it is persisted: the
			// client always sends the checksum it computed over its copy.
			if h := r.Header.Get(sumHeader); h != "" {
				sum := sha256.Sum256(payload)
				if h != hex.EncodeToString(sum[:]) {
					http.Error(w, "checksum mismatch", http.StatusBadRequest)
					return
				}
			}
			if err := s.Put(key, payload); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "GET or PUT required", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{\"status\":\"ok\"}\n"))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Stats())
	})
	return mux
}
