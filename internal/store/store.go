// Package store is the content-addressed on-disk artifact store under the
// flow's caches: the persistence tier that lets a placement annealed (or
// a group evaluated) by one process be reused by every later process.
//
// An entry is addressed by the content hash of its *inputs* (the cache
// key built by internal/codec) and holds the encoded artifact, prefixed
// by a checksum of the payload. The contract mirrors flow.Cache's: a
// store only changes how often work is done, never its results — so every
// failure mode degrades to a recompute:
//
//   - A missing entry is a miss (ErrNotFound).
//   - A truncated or bit-flipped entry fails its checksum, is deleted,
//     and reports ErrCorrupt — the caller recomputes and the next Put
//     heals the entry. Corruption can never poison the cache because the
//     payload is verified before any decoder sees it.
//   - Writers are crash- and race-safe: an entry is written to a private
//     temp file and atomically renamed into place, so readers observe
//     either nothing or a complete entry, and concurrent writers of one
//     key (which, by determinism, carry identical bytes) simply race to
//     publish the same content.
//
// The store is size-capped: when the configured budget is exceeded after
// a write, the least-recently-used entries (read hits refresh an entry's
// timestamp) are evicted until the total is back under the cap.
package store

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
)

// ErrNotFound reports a key with no stored entry.
var ErrNotFound = errors.New("store: artifact not found")

// ErrCorrupt reports an entry whose payload failed verification; the
// entry has been deleted and the caller should recompute.
var ErrCorrupt = errors.New("store: artifact corrupt")

// magic opens every entry file; a different prefix means the file is not
// (or is no longer) a store entry of this format.
const magic = "MMSTOR1\n"

// Stats counts store traffic. Counters only ever increase; read them via
// Store.Stats for a consistent-enough snapshot (individual counters are
// atomic, the set is not).
type Stats struct {
	Hits, Misses, Corrupt uint64 // local-tier Get outcomes
	Puts                  uint64
	BytesRead             uint64 // payload bytes returned by hits
	BytesWritten          uint64 // payload bytes stored by puts
	Evictions             uint64 // entries removed by the size cap
	// Remote-tier traffic (all zero without an attached remote).
	// RemoteHits are local misses served by the remote (and written
	// through locally); RemoteMisses are keys absent from both tiers;
	// RemotePuts are artifacts pushed to the remote; RemoteErrors count
	// every fail-open event — unreachable remote, transfer failure, or a
	// blob that failed its checksum.
	RemoteHits, RemoteMisses uint64
	RemotePuts, RemoteErrors uint64
}

// Store is a content-addressed artifact store rooted at one directory.
// All methods are safe for concurrent use, also across processes sharing
// the directory.
type Store struct {
	root     string
	maxBytes int64

	mu       sync.Mutex // guards curBytes and eviction
	curBytes int64

	// remote, when attached, is the shared fleet tier consulted on local
	// misses and pushed to on every Put. fetchMu/fetches single-flight
	// concurrent remote misses of one key so a thundering herd of workers
	// warming the same artifact costs one transfer, not N.
	remote  *Remote
	fetchMu sync.Mutex
	fetches map[codec.Hash]*remoteFetch

	hits, misses, corrupt, puts atomic.Uint64
	bytesRead, bytesWritten     atomic.Uint64
	evictions                   atomic.Uint64

	remoteHits, remoteMisses atomic.Uint64
	remotePuts, remoteErrors atomic.Uint64
}

// staleTempAge is how old an unpublished temp file must be before Open
// treats it as the debris of a crashed writer. Young temp files may
// belong to a live writer in another process and are left alone — their
// rename still wins either way.
const staleTempAge = 15 * time.Minute

// Open creates (if needed) and opens a store rooted at dir. maxBytes caps
// the total size of stored entries; 0 means uncapped.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{root: dir, maxBytes: maxBytes}
	s.sweepStaleTemps()
	s.curBytes = s.diskUsage()
	return s, nil
}

// sweepStaleTemps deletes temp files abandoned by crashed or killed
// writers. They are invisible to Get/evict (dot-prefixed), so without
// this sweep they would accumulate outside the size cap forever.
func (s *Store) sweepStaleTemps() {
	cutoff := time.Now().Add(-staleTempAge)
	_ = filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasPrefix(filepath.Base(path), ".tmp-") {
			return nil
		}
		if fi, err := d.Info(); err == nil && fi.ModTime().Before(cutoff) {
			_ = os.Remove(path)
		}
		return nil
	})
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// AttachRemote adds a shared remote tier: local Get misses fall through
// to it (verified and written through locally), and every Put is pushed
// to it so other workers find the artifact warm. Attach before serving
// traffic; not safe to call concurrently with Get/Put.
func (s *Store) AttachRemote(r *Remote) {
	s.remote = r
	s.fetches = map[codec.Hash]*remoteFetch{}
}

// Remote returns the attached remote tier, or nil.
func (s *Store) Remote() *Remote { return s.remote }

// RemoteHealthy reports whether the remote tier is reachable; stores
// without a remote are trivially healthy. Readiness probes call this so a
// dispatcher can eject a worker whose shared tier is gone.
func (s *Store) RemoteHealthy() bool {
	if s == nil || s.remote == nil {
		return true
	}
	return s.remote.Healthy()
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Corrupt:      s.corrupt.Load(),
		Puts:         s.puts.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Evictions:    s.evictions.Load(),
		RemoteHits:   s.remoteHits.Load(),
		RemoteMisses: s.remoteMisses.Load(),
		RemotePuts:   s.remotePuts.Load(),
		RemoteErrors: s.remoteErrors.Load(),
	}
}

// Path returns the entry path for a key: entries shard into 256
// hash-prefix directories so no single directory grows unboundedly.
func (s *Store) Path(key codec.Hash) string {
	hex := key.Hex()
	return filepath.Join(s.root, hex[:2], hex[2:])
}

// Get returns the payload stored under key, consulting the local tier
// first and then — when one is attached — the shared remote tier, with
// remote hits verified and written through locally. It reports
// ErrNotFound for entries absent from every tier and ErrCorrupt (after
// deleting the local entry) for entries that fail verification; every
// error, including a remote that is down or serving garbage, means
// "recompute" — a worker whose shared tier fails answers from local
// state plus fresh work, never with an error of its own.
func (s *Store) Get(key codec.Hash) ([]byte, error) {
	payload, err := s.getLocal(key)
	if err == nil || s.remote == nil {
		return payload, err
	}
	return s.fetchRemote(key, err)
}

// getLocal is the local-tier read: the whole Get of a remote-less store.
func (s *Store) getLocal(key codec.Hash) ([]byte, error) {
	path := s.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: read %s: %w", path, err)
	}
	payload, ok := verify(data)
	if !ok {
		s.corrupt.Add(1)
		s.discard(path, int64(len(data)))
		return nil, ErrCorrupt
	}
	s.hits.Add(1)
	s.bytesRead.Add(uint64(len(payload)))
	// Refresh the entry's timestamp so the size-capped eviction below
	// approximates LRU rather than FIFO. Best effort: a failure (e.g. a
	// concurrent eviction) costs nothing but eviction precision.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return payload, nil
}

// remoteFetch is one in-flight remote miss; concurrent requesters of the
// same key block on done and share the outcome.
type remoteFetch struct {
	done chan struct{}
	data []byte
	err  error
}

// fetchRemote serves a local miss from the remote tier, single-flighted
// per key. localErr is what the local tier reported; it is also what the
// caller sees whenever the remote cannot help (fail-open).
func (s *Store) fetchRemote(key codec.Hash, localErr error) ([]byte, error) {
	s.fetchMu.Lock()
	if f, ok := s.fetches[key]; ok {
		s.fetchMu.Unlock()
		<-f.done
		return f.data, f.err
	}
	f := &remoteFetch{done: make(chan struct{})}
	s.fetches[key] = f
	s.fetchMu.Unlock()

	f.data, f.err = s.fetchRemoteOnce(key, localErr)

	s.fetchMu.Lock()
	delete(s.fetches, key)
	s.fetchMu.Unlock()
	close(f.done)
	return f.data, f.err
}

// fetchRemoteOnce performs the actual remote read and local write-through.
func (s *Store) fetchRemoteOnce(key codec.Hash, localErr error) ([]byte, error) {
	payload, err := s.remote.Get(key)
	switch {
	case err == nil:
		s.remoteHits.Add(1)
		// Write through: the next Get of this key is a local hit. Best
		// effort — a failed publish only costs a refetch.
		_ = s.putLocal(key, payload)
		return payload, nil
	case errors.Is(err, ErrNotFound):
		s.remoteMisses.Add(1)
		return nil, localErr
	case errors.Is(err, ErrCorrupt):
		// The remote served bytes that failed their checksum. Recompute;
		// the resulting Put re-pushes a good copy over the bad entry.
		s.remoteErrors.Add(1)
		return nil, ErrCorrupt
	default:
		// Transport failure: fail open to the local outcome (a miss), so
		// a dead remote degrades to recompute, never to request failure.
		s.remoteErrors.Add(1)
		return nil, localErr
	}
}

// Put stores payload under key in the local tier, atomically replacing
// any existing entry and enforcing the size cap, then pushes it to the
// remote tier when one is attached. A failed push is counted and
// swallowed: the local tier holds the artifact, and the next worker to
// compute this key re-pushes.
func (s *Store) Put(key codec.Hash, payload []byte) error {
	if err := s.putLocal(key, payload); err != nil {
		return err
	}
	if s.remote != nil {
		if err := s.remote.Put(key, payload); err != nil {
			s.remoteErrors.Add(1)
		} else {
			s.remotePuts.Add(1)
		}
	}
	return nil
}

// putLocal writes the local tier's entry.
func (s *Store) putLocal(key codec.Hash, payload []byte) error {
	path := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(payload)
	// Write to a private temp file in the destination directory (same
	// filesystem, so the rename is atomic) and publish with one rename.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write([]byte(magic))
	if werr == nil {
		_, werr = tmp.Write(sum[:])
	}
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("store: write %s: %w", path, werr)
	}
	newSize := int64(len(magic) + sha256.Size + len(payload))
	var oldSize int64
	if fi, err := os.Stat(path); err == nil {
		oldSize = fi.Size()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: publish %s: %w", path, err)
	}
	s.puts.Add(1)
	s.bytesWritten.Add(uint64(len(payload)))
	s.mu.Lock()
	s.curBytes += newSize - oldSize
	s.mu.Unlock()
	s.evict()
	return nil
}

// verify splits an entry file into its payload, checking the magic and
// the payload checksum.
func verify(data []byte) ([]byte, bool) {
	header := len(magic) + sha256.Size
	if len(data) < header || string(data[:len(magic)]) != magic {
		return nil, false
	}
	payload := data[header:]
	sum := sha256.Sum256(payload)
	for i, b := range data[len(magic):header] {
		if sum[i] != b {
			return nil, false
		}
	}
	return payload, true
}

// discard removes a corrupt entry and adjusts the size accounting.
func (s *Store) discard(path string, size int64) {
	if err := os.Remove(path); err == nil {
		s.mu.Lock()
		s.curBytes -= size
		s.mu.Unlock()
	}
}

// entry is one stored file during an eviction scan.
type entry struct {
	path  string
	size  int64
	mtime time.Time
}

// evict removes least-recently-used entries until the store is within its
// cap. The scan re-derives the true usage, which also resynchronises the
// in-memory accounting with any concurrent external writers.
func (s *Store) evict() {
	if s.maxBytes <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.curBytes <= s.maxBytes {
		return
	}
	var entries []entry
	var total int64
	s.walk(func(path string, fi fs.FileInfo) {
		entries = append(entries, entry{path: path, size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		if err := os.Remove(e.path); err == nil {
			total -= e.size
			s.evictions.Add(1)
		}
	}
	s.curBytes = total
}

// diskUsage sums the sizes of all stored entries.
func (s *Store) diskUsage() int64 {
	var total int64
	s.walk(func(_ string, fi fs.FileInfo) { total += fi.Size() })
	return total
}

// walk visits every entry file (skipping in-flight temp files).
func (s *Store) walk(fn func(path string, fi fs.FileInfo)) {
	_ = filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Base(path)[0] == '.' {
			return nil
		}
		if fi, err := d.Info(); err == nil {
			fn(path, fi)
		}
		return nil
	})
}
