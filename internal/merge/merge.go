// Package merge implements the key step of the paper: merging several mode
// LUT circuits into one Tunable circuit via *combined placement* — a
// simulated annealing over all modes simultaneously in which LUTs of
// different modes may share a physical logic block and a swap moves one
// mode's LUT between two sites. Two optimisation objectives are provided:
//
//   - circuit edge matching (prior work, Rullmann & Merker): minimise the
//     number of Tunable connections, i.e. maximise per-mode connections
//     that share (source site, sink site);
//   - wire-length optimisation (the paper's novel approach): minimise the
//     estimated wirelength of the Tunable circuit implied by the current
//     combined placement, using the same half-perimeter estimate TPlace
//     uses.
package merge

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/place"
	"repro/internal/tunable"
)

// Objective selects the combined-placement cost function.
type Objective int

const (
	// WireLength is the paper's novel wire-length-driven objective.
	WireLength Objective = iota
	// EdgeMatch is the circuit-edge-matching objective of prior work.
	EdgeMatch
)

func (o Objective) String() string {
	if o == EdgeMatch {
		return "edge-match"
	}
	return "wire-length"
}

// Options tunes the combined placement.
type Options struct {
	Seed      int64
	Effort    float64
	Objective Objective
}

// Result carries the merged Tunable circuit, the grouping assignment and
// the entity placement implied by the combined placement.
type Result struct {
	Assignment *tunable.Assignment
	Tunable    *tunable.Circuit
	// LUTSite[g] is the site of Tunable LUT group g; PadSite[g] of pad
	// group g.
	LUTSite []arch.Site
	PadSite []arch.Site
	// Cost is the final combined-placement cost (objective-dependent).
	Cost float64
	// MatchedConns counts per-mode connections absorbed into shared
	// Tunable connections.
	TotalModeConns int
	TunableConns   int
}

// Per-mode cell encoding: blocks [0,B), PIs [B,B+P), POs [B+P,B+P+O).
type modeInfo struct {
	c          *lutnet.Circuit
	numBlocks  int
	numPIs     int
	numPOs     int
	sinksOf    [][]int32 // driver cell -> sink cells (dedup)
	driversFor [][]int32 // sink cell -> driver cells whose net feeds it
}

func (mi *modeInfo) numCells() int { return mi.numBlocks + mi.numPIs + mi.numPOs }

func (mi *modeInfo) isIO(cell int32) bool { return int(cell) >= mi.numBlocks }

func buildModeInfo(c *lutnet.Circuit) *modeInfo {
	mi := &modeInfo{
		c:         c,
		numBlocks: len(c.Blocks),
		numPIs:    len(c.PINames),
		numPOs:    len(c.POs),
	}
	mi.sinksOf = make([][]int32, mi.numCells())
	mi.driversFor = make([][]int32, mi.numCells())
	for _, nt := range c.Nets() {
		var drv int32
		if nt.Src.Kind == lutnet.SrcPI {
			drv = int32(mi.numBlocks + nt.Src.Idx)
		} else {
			drv = int32(nt.Src.Idx)
		}
		seen := map[int32]bool{}
		for _, bp := range nt.BlockIn {
			s := int32(bp.Block)
			if !seen[s] {
				seen[s] = true
				mi.sinksOf[drv] = append(mi.sinksOf[drv], s)
				mi.driversFor[s] = append(mi.driversFor[s], drv)
			}
		}
		for _, po := range nt.POSinks {
			s := int32(mi.numBlocks + mi.numPIs + po)
			if !seen[s] {
				seen[s] = true
				mi.sinksOf[drv] = append(mi.sinksOf[drv], s)
				mi.driversFor[s] = append(mi.driversFor[s], drv)
			}
		}
	}
	return mi
}

// state is the combined-placement state.
type state struct {
	modes    []*modeInfo
	clbSites []arch.Site
	ioSites  []arch.Site
	nPos     int
	// posOf[m][cell], cellAt[m][pos] (-1 empty)
	posOf  [][]int32
	cellAt [][]int32
	// cost per position (as a source site of a tunable net)
	posCost   []float64
	objective Objective
}

func (st *state) siteAt(pos int32) arch.Site {
	if int(pos) < len(st.clbSites) {
		return st.clbSites[pos]
	}
	return st.ioSites[int(pos)-len(st.clbSites)]
}

func (st *state) xy(pos int32) (int, int) {
	s := st.siteAt(pos)
	return s.X, s.Y
}

// costAt computes the objective contribution of position p as a source
// site: the Tunable net rooted at p spans the union of sink sites of the
// nets driven by the cells (one per mode) placed at p.
func (st *state) costAt(p int32, scratch map[int32]bool) float64 {
	for k := range scratch {
		delete(scratch, k)
	}
	hasDriver := false
	for m, mi := range st.modes {
		cell := st.cellAt[m][p]
		if cell < 0 || len(mi.sinksOf[cell]) == 0 {
			continue
		}
		hasDriver = true
		for _, s := range mi.sinksOf[cell] {
			scratch[st.posOf[m][s]] = true
		}
	}
	if !hasDriver || len(scratch) == 0 {
		return 0
	}
	if st.objective == EdgeMatch {
		// Number of Tunable connections rooted here.
		return float64(len(scratch))
	}
	// Wire-length estimate of the Tunable net: q-corrected HPWL over the
	// union of sink sites plus the source site (same estimator as TPlace).
	minX, minY := math.MaxInt32, math.MaxInt32
	maxX, maxY := math.MinInt32, math.MinInt32
	upd := func(x, y int) {
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	nTerm := 1
	{
		x, y := st.xy(p)
		upd(x, y)
	}
	for sp := range scratch {
		x, y := st.xy(sp)
		upd(x, y)
		nTerm++
	}
	return place.QFactor(nTerm) * float64((maxX-minX)+(maxY-minY))
}

func (st *state) totalCost() float64 {
	t := 0.0
	for _, c := range st.posCost {
		t += c
	}
	return t
}

// affected feeds add the positions whose cost a move of cell c in mode m
// can change: the cell's own position and its drivers' positions.
func (st *state) affected(m int, c int32, add func(int32)) {
	add(st.posOf[m][c])
	for _, d := range st.modes[m].driversFor[c] {
		add(st.posOf[m][d])
	}
}

// CombinedPlace runs the multi-mode simulated annealing and extracts the
// resulting Tunable circuit.
func CombinedPlace(name string, modes []*lutnet.Circuit, a arch.Arch, opt Options) (*Result, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("merge: no modes")
	}
	if opt.Effort <= 0 {
		opt.Effort = 1.0
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	st := &state{
		clbSites:  a.CLBSites(),
		ioSites:   a.IOSites(),
		objective: opt.Objective,
	}
	st.nPos = len(st.clbSites) + len(st.ioSites)
	for _, c := range modes {
		mi := buildModeInfo(c)
		if mi.numBlocks > len(st.clbSites) {
			return nil, fmt.Errorf("merge: mode %q has %d blocks for %d CLB sites", c.Name, mi.numBlocks, len(st.clbSites))
		}
		if mi.numPIs+mi.numPOs > len(st.ioSites) {
			return nil, fmt.Errorf("merge: mode %q has %d IOs for %d pad sites", c.Name, mi.numPIs+mi.numPOs, len(st.ioSites))
		}
		st.modes = append(st.modes, mi)
	}

	// Random legal initial placement per mode.
	st.posOf = make([][]int32, len(st.modes))
	st.cellAt = make([][]int32, len(st.modes))
	for m, mi := range st.modes {
		st.posOf[m] = make([]int32, mi.numCells())
		st.cellAt[m] = make([]int32, st.nPos)
		for p := range st.cellAt[m] {
			st.cellAt[m][p] = -1
		}
		clbPerm := rng.Perm(len(st.clbSites))
		ioPerm := rng.Perm(len(st.ioSites))
		for c := int32(0); int(c) < mi.numCells(); c++ {
			var pos int32
			if mi.isIO(c) {
				pos = int32(len(st.clbSites) + ioPerm[int(c)-mi.numBlocks])
			} else {
				pos = int32(clbPerm[c])
			}
			st.posOf[m][c] = pos
			st.cellAt[m][pos] = c
		}
	}
	st.posCost = make([]float64, st.nPos)
	scratch := map[int32]bool{}
	for p := int32(0); int(p) < st.nPos; p++ {
		st.posCost[p] = st.costAt(p, scratch)
	}

	anneal(st, a, opt, rng)
	repairPins(st, a)

	return extract(name, modes, st)
}

// doSwap exchanges the mode-m occupants of posA and posB.
func (st *state) doSwap(m int, posA, posB int32) {
	ca, cb := st.cellAt[m][posA], st.cellAt[m][posB]
	st.cellAt[m][posA], st.cellAt[m][posB] = cb, ca
	if ca >= 0 {
		st.posOf[m][ca] = posB
	}
	if cb >= 0 {
		st.posOf[m][cb] = posA
	}
}

func anneal(st *state, a arch.Arch, opt Options, rng *rand.Rand) {
	nCells := 0
	for _, mi := range st.modes {
		nCells += mi.numCells()
	}
	if nCells == 0 {
		return
	}
	span := a.Width + a.Height
	scratch := map[int32]bool{}
	// Affected-position scratch, reused across moves. The list is built in
	// deterministic insertion order: summing the cost delta in map
	// iteration order would make annealing outcomes vary run to run,
	// because float addition is not associative.
	seen := map[int32]bool{}
	var affected []int32
	var oldCost []float64

	// evalSwap computes the cost delta of swapping (m, posA, posB),
	// leaving the swap applied; the returned slices (valid until the next
	// evalSwap) let undo restore posCost.
	evalSwap := func(m int, posA, posB int32) (float64, []int32, []float64) {
		for k := range seen {
			delete(seen, k)
		}
		affected = affected[:0]
		add := func(p int32) {
			if !seen[p] {
				seen[p] = true
				affected = append(affected, p)
			}
		}
		ca, cb := st.cellAt[m][posA], st.cellAt[m][posB]
		if ca >= 0 {
			st.affected(m, ca, add)
		}
		if cb >= 0 {
			st.affected(m, cb, add)
		}
		add(posA)
		add(posB)
		st.doSwap(m, posA, posB)
		delta := 0.0
		oldCost = oldCost[:0]
		for _, p := range affected {
			oldCost = append(oldCost, st.posCost[p])
			nc := st.costAt(p, scratch)
			delta += nc - st.posCost[p]
			st.posCost[p] = nc
		}
		return delta, affected, oldCost
	}
	undo := func(m int, posA, posB int32, positions []int32, old []float64) {
		st.doSwap(m, posA, posB)
		for i, p := range positions {
			st.posCost[p] = old[i]
		}
	}

	pick := func(rlim float64) (int, int32, int32, bool) {
		m := rng.Intn(len(st.modes))
		mi := st.modes[m]
		if mi.numCells() == 0 {
			return 0, 0, 0, false
		}
		c := int32(rng.Intn(mi.numCells()))
		posA := st.posOf[m][c]
		var posB int32
		if mi.isIO(c) {
			posB = int32(len(st.clbSites) + rng.Intn(len(st.ioSites)))
		} else {
			sa := st.siteAt(posA)
			r := int(rlim)
			if r < 1 {
				r = 1
			}
			x := clampInt(sa.X+rng.Intn(2*r+1)-r, 1, a.Width)
			y := clampInt(sa.Y+rng.Intn(2*r+1)-r, 1, a.Height)
			posB = int32((y-1)*a.Width + (x - 1))
		}
		if posB == posA {
			return 0, 0, 0, false
		}
		return m, posA, posB, true
	}

	// Initial temperature from a random walk.
	var deltas []float64
	for i := 0; i < nCells; i++ {
		m, posA, posB, ok := pick(float64(span))
		if !ok {
			continue
		}
		d, _, _ := evalSwap(m, posA, posB)
		deltas = append(deltas, d)
	}
	sigma := stddev(deltas)
	sch := place.NewSchedule(sigma, span, nCells, opt.Effort)

	nNets := 0
	for _, mi := range st.modes {
		for _, s := range mi.sinksOf {
			if len(s) > 0 {
				nNets++
			}
		}
	}
	if nNets == 0 {
		nNets = 1
	}

	for {
		for mv := 0; mv < sch.Moves; mv++ {
			m, posA, posB, ok := pick(sch.RLim)
			if !ok {
				continue
			}
			d, positions, old := evalSwap(m, posA, posB)
			if d <= 0 || rng.Float64() < math.Exp(-d/sch.T) {
				sch.Record(true)
			} else {
				undo(m, posA, posB, positions, old)
				sch.Record(false)
			}
		}
		if !sch.Next(st.totalCost()/float64(nNets), span) {
			break
		}
	}
}

// extract converts the final combined placement into an Assignment, a
// Tunable circuit and per-group sites.
func extract(name string, modes []*lutnet.Circuit, st *state) (*Result, error) {
	asg := &tunable.Assignment{
		BlockGroup: make([][]int, len(modes)),
		PIGroup:    make([][]int, len(modes)),
		POGroup:    make([][]int, len(modes)),
	}
	lutGroupOf := map[int32]int{} // CLB position -> group
	padGroupOf := map[int32]int{} // IO position -> group
	var lutSites, padSites []arch.Site

	lutGroup := func(pos int32) int {
		if g, ok := lutGroupOf[pos]; ok {
			return g
		}
		g := len(lutSites)
		lutGroupOf[pos] = g
		lutSites = append(lutSites, st.siteAt(pos))
		return g
	}
	padGroup := func(pos int32) int {
		if g, ok := padGroupOf[pos]; ok {
			return g
		}
		g := len(padSites)
		padGroupOf[pos] = g
		padSites = append(padSites, st.siteAt(pos))
		return g
	}

	for m, mi := range st.modes {
		asg.BlockGroup[m] = make([]int, mi.numBlocks)
		for b := 0; b < mi.numBlocks; b++ {
			asg.BlockGroup[m][b] = lutGroup(st.posOf[m][b])
		}
		asg.PIGroup[m] = make([]int, mi.numPIs)
		for i := 0; i < mi.numPIs; i++ {
			asg.PIGroup[m][i] = padGroup(st.posOf[m][int32(mi.numBlocks+i)])
		}
		asg.POGroup[m] = make([]int, mi.numPOs)
		for o := 0; o < mi.numPOs; o++ {
			asg.POGroup[m][o] = padGroup(st.posOf[m][int32(mi.numBlocks+mi.numPIs+o)])
		}
	}
	asg.NumLUTGroups = len(lutSites)
	asg.NumPadGroups = len(padSites)

	tc, err := tunable.Merge(name, modes, asg)
	if err != nil {
		return nil, fmt.Errorf("merge: extract: %w", err)
	}
	res := &Result{
		Assignment: asg,
		Tunable:    tc,
		LUTSite:    lutSites,
		PadSite:    padSites,
		Cost:       st.totalCost(),
	}
	stats := tc.Stats()
	res.TunableConns = stats.NumConns
	for _, n := range stats.PerModeConn {
		res.TotalModeConns += n
	}
	return res, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return math.Sqrt(v / float64(len(xs)))
}
