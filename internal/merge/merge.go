// Package merge implements the key step of the paper: merging several mode
// LUT circuits into one Tunable circuit via *combined placement* — a
// simulated annealing over all modes simultaneously in which LUTs of
// different modes may share a physical logic block and a swap moves one
// mode's LUT between two sites. The annealing itself is the shared kernel
// in internal/anneal; this package supplies the multi-mode move and the
// incremental cost model. Two optimisation objectives are provided:
//
//   - circuit edge matching (prior work, Rullmann & Merker): minimise the
//     number of Tunable connections, i.e. maximise per-mode connections
//     that share (source site, sink site);
//   - wire-length optimisation (the paper's novel approach): minimise the
//     estimated wirelength of the Tunable circuit implied by the current
//     combined placement, using the same half-perimeter estimate TPlace
//     uses.
package merge

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/tunable"
)

// Objective selects the combined-placement cost function.
type Objective int

const (
	// WireLength is the paper's novel wire-length-driven objective.
	WireLength Objective = iota
	// EdgeMatch is the circuit-edge-matching objective of prior work.
	EdgeMatch
)

func (o Objective) String() string {
	if o == EdgeMatch {
		return "edge-match"
	}
	return "wire-length"
}

// Options tunes the combined placement.
type Options struct {
	Seed      int64
	Effort    float64
	Objective Objective
	// Workers bounds the parallel evaluation of move batches. Results are
	// byte-identical at any worker count (see internal/anneal), so
	// Workers is a wall-clock knob only and stays out of artifact keys.
	Workers int
	// Starts anneals this many independently-seeded combined placements
	// (Seed, Seed+StartSeedStride, ...) sharing one worker pool and keeps
	// the best by the deterministic (cost, seed) tiebreak. 0 or 1 is a
	// single start. Starts changes results, so it IS part of artifact
	// keys.
	Starts int
	// Init seeds each mode's placement (Init[m][cell] in the per-mode
	// cell encoding: blocks, then PIs, then POs) instead of the random
	// start, and switches the annealer to refinement. The ECO path builds
	// it by transferring a baseline combined placement through the
	// netlist diff.
	Init [][]arch.Site
	// WarmStart quenches Init at the anneal kernel's warm-start
	// temperature instead of the refinement temperature.
	WarmStart bool
	// WarmStartTempFraction scales the starting temperature when
	// WarmStart is set (default 0.02).
	WarmStartTempFraction float64
	// Obs forwards to anneal.Config.Obs: per-run move/accept counts land
	// as mm_anneal_* metrics. Wall-clock-only, never in artifact keys.
	Obs *obs.Registry
}

// Result carries the merged Tunable circuit, the grouping assignment and
// the entity placement implied by the combined placement.
type Result struct {
	Assignment *tunable.Assignment
	Tunable    *tunable.Circuit
	// LUTSite[g] is the site of Tunable LUT group g; PadSite[g] of pad
	// group g.
	LUTSite []arch.Site
	PadSite []arch.Site
	// Cost is the final combined-placement cost (objective-dependent).
	Cost float64
	// MatchedConns counts per-mode connections absorbed into shared
	// Tunable connections.
	TotalModeConns int
	TunableConns   int
}

// Per-mode cell encoding: blocks [0,B), PIs [B,B+P), POs [B+P,B+P+O).
type modeInfo struct {
	c          *lutnet.Circuit
	numBlocks  int
	numPIs     int
	numPOs     int
	sinksOf    [][]int32 // driver cell -> sink cells (dedup)
	driversFor [][]int32 // sink cell -> driver cells whose net feeds it
}

func (mi *modeInfo) numCells() int { return mi.numBlocks + mi.numPIs + mi.numPOs }

func (mi *modeInfo) isIO(cell int32) bool { return int(cell) >= mi.numBlocks }

func buildModeInfo(c *lutnet.Circuit) *modeInfo {
	mi := &modeInfo{
		c:         c,
		numBlocks: len(c.Blocks),
		numPIs:    len(c.PINames),
		numPOs:    len(c.POs),
	}
	n := mi.numCells()
	// Collect the deduplicated (driver, sink) edges once, then carve the
	// adjacency lists out of two exact-size backing arrays — hundreds of
	// append-grown slices otherwise dominate CombinedPlace's allocations.
	type edge struct{ d, s int32 }
	var edges []edge
	seen := make([]bool, n)
	var touched []int32
	for _, nt := range c.Nets() {
		var drv int32
		if nt.Src.Kind == lutnet.SrcPI {
			drv = int32(mi.numBlocks + nt.Src.Idx)
		} else {
			drv = int32(nt.Src.Idx)
		}
		for _, s := range touched {
			seen[s] = false
		}
		touched = touched[:0]
		for _, bp := range nt.BlockIn {
			s := int32(bp.Block)
			if !seen[s] {
				seen[s] = true
				touched = append(touched, s)
				edges = append(edges, edge{drv, s})
			}
		}
		for _, po := range nt.POSinks {
			s := int32(mi.numBlocks + mi.numPIs + po)
			if !seen[s] {
				seen[s] = true
				touched = append(touched, s)
				edges = append(edges, edge{drv, s})
			}
		}
	}
	sinkCnt := make([]int32, n)
	drvCnt := make([]int32, n)
	for _, e := range edges {
		sinkCnt[e.d]++
		drvCnt[e.s]++
	}
	sinkBack := make([]int32, len(edges))
	drvBack := make([]int32, len(edges))
	mi.sinksOf = make([][]int32, n)
	mi.driversFor = make([][]int32, n)
	so, do := 0, 0
	for i := 0; i < n; i++ {
		mi.sinksOf[i] = sinkBack[so : so : so+int(sinkCnt[i])]
		so += int(sinkCnt[i])
		mi.driversFor[i] = drvBack[do : do : do+int(drvCnt[i])]
		do += int(drvCnt[i])
	}
	// Appends fill the pre-carved slices in the original edge order, so
	// the adjacency ordering (and hence every downstream iteration) is
	// identical to a direct append-per-cell construction.
	for _, e := range edges {
		mi.sinksOf[e.d] = append(mi.sinksOf[e.d], e.s)
		mi.driversFor[e.s] = append(mi.driversFor[e.s], e.d)
	}
	return mi
}

// state is the combined-placement state; it implements anneal.Mover.
type state struct {
	modes    []*modeInfo
	clbSites []arch.Site
	ioSites  []arch.Site
	nPos     int
	width    int
	height   int
	// posOf[m][cell], cellAt[m][pos] (-1 empty)
	posOf  [][]int32
	cellAt [][]int32
	// cost per position (as a source site of a tunable net)
	posCost   []float64
	objective Objective
	// costAt scratch: sinkSeen dedups the sink-position set of the
	// Tunable net rooted at a position, sinkBuf holds it; both are wiped
	// via the touched list in O(touched), never by a full clear.
	sinkSeen []bool
	sinkBuf  []int32
	// Move-evaluation scratch, reused across moves: affSeen dedups the
	// affected-position list, affBuf holds it, oldCost (parallel) the
	// pre-move costs Undo restores. The list is built in deterministic
	// insertion order: summing the cost delta in map iteration order
	// would make annealing outcomes vary run to run, because float
	// addition is not associative.
	affSeen []bool
	affBuf  []int32
	oldCost []float64
	// Pending move for anneal.Mover (set by TryMove, used by Undo).
	mvMode   int
	mvA, mvB int32
	// Batched-protocol state (parallel.go): recorded proposals and the
	// per-worker frozen-evaluation scratch.
	slots   []mergeSlot
	scratch []mergeScratch
}

// newState builds the combined-placement state with a random legal
// initial placement per mode, or — when init is non-nil — the given
// per-mode placement (validated for class, occupancy and site existence).
func newState(modes []*lutnet.Circuit, a arch.Arch, obj Objective, rng *rand.Rand, init [][]arch.Site) (*state, error) {
	st := &state{
		clbSites:  a.CLBSites(),
		ioSites:   a.IOSites(),
		width:     a.Width,
		height:    a.Height,
		objective: obj,
	}
	st.nPos = len(st.clbSites) + len(st.ioSites)
	for _, c := range modes {
		mi := buildModeInfo(c)
		if mi.numBlocks > len(st.clbSites) {
			return nil, fmt.Errorf("merge: mode %q has %d blocks for %d CLB sites", c.Name, mi.numBlocks, len(st.clbSites))
		}
		if mi.numPIs+mi.numPOs > len(st.ioSites) {
			return nil, fmt.Errorf("merge: mode %q has %d IOs for %d pad sites", c.Name, mi.numPIs+mi.numPOs, len(st.ioSites))
		}
		st.modes = append(st.modes, mi)
	}

	if init != nil && len(init) != len(st.modes) {
		return nil, fmt.Errorf("merge: init covers %d modes, want %d", len(init), len(st.modes))
	}
	var posBySite map[arch.Site]int32
	if init != nil {
		posBySite = make(map[arch.Site]int32, st.nPos)
		for i, s := range st.clbSites {
			posBySite[s] = int32(i)
		}
		for i, s := range st.ioSites {
			posBySite[s] = int32(len(st.clbSites) + i)
		}
	}
	st.posOf = make([][]int32, len(st.modes))
	st.cellAt = make([][]int32, len(st.modes))
	for m, mi := range st.modes {
		st.posOf[m] = make([]int32, mi.numCells())
		st.cellAt[m] = make([]int32, st.nPos)
		for p := range st.cellAt[m] {
			st.cellAt[m][p] = -1
		}
		if init != nil {
			if len(init[m]) != mi.numCells() {
				return nil, fmt.Errorf("merge: init mode %d covers %d cells, want %d", m, len(init[m]), mi.numCells())
			}
			for c := int32(0); int(c) < mi.numCells(); c++ {
				s := init[m][c]
				pos, ok := posBySite[s]
				if !ok {
					return nil, fmt.Errorf("merge: init mode %d site %v not in architecture", m, s)
				}
				if s.IsIO != mi.isIO(c) {
					return nil, fmt.Errorf("merge: init mode %d puts cell %d on wrong site class %v", m, c, s)
				}
				if st.cellAt[m][pos] >= 0 {
					return nil, fmt.Errorf("merge: init mode %d places two cells on %v", m, s)
				}
				st.posOf[m][c] = pos
				st.cellAt[m][pos] = c
			}
			continue
		}
		clbPerm := rng.Perm(len(st.clbSites))
		ioPerm := rng.Perm(len(st.ioSites))
		for c := int32(0); int(c) < mi.numCells(); c++ {
			var pos int32
			if mi.isIO(c) {
				pos = int32(len(st.clbSites) + ioPerm[int(c)-mi.numBlocks])
			} else {
				pos = int32(clbPerm[c])
			}
			st.posOf[m][c] = pos
			st.cellAt[m][pos] = c
		}
	}
	st.sinkSeen = make([]bool, st.nPos)
	st.affSeen = make([]bool, st.nPos)
	st.posCost = make([]float64, st.nPos)
	for p := int32(0); int(p) < st.nPos; p++ {
		st.posCost[p] = st.costAt(p)
	}
	return st, nil
}

func (st *state) siteAt(pos int32) arch.Site {
	if int(pos) < len(st.clbSites) {
		return st.clbSites[pos]
	}
	return st.ioSites[int(pos)-len(st.clbSites)]
}

func (st *state) xy(pos int32) (int, int) {
	s := st.siteAt(pos)
	return s.X, s.Y
}

// costAt computes the objective contribution of position p as a source
// site: the Tunable net rooted at p spans the union of sink sites of the
// nets driven by the cells (one per mode) placed at p. The sink-position
// set is deduplicated through the state's array scratch and touched list
// — allocation-free and cleared in O(touched).
func (st *state) costAt(p int32) float64 {
	touched := st.sinkBuf[:0]
	hasDriver := false
	for m, mi := range st.modes {
		cell := st.cellAt[m][p]
		if cell < 0 || len(mi.sinksOf[cell]) == 0 {
			continue
		}
		hasDriver = true
		for _, s := range mi.sinksOf[cell] {
			sp := st.posOf[m][s]
			if !st.sinkSeen[sp] {
				st.sinkSeen[sp] = true
				touched = append(touched, sp)
			}
		}
	}
	st.sinkBuf = touched
	if !hasDriver || len(touched) == 0 {
		for _, sp := range touched {
			st.sinkSeen[sp] = false
		}
		return 0
	}
	if st.objective == EdgeMatch {
		// Number of Tunable connections rooted here.
		n := float64(len(touched))
		for _, sp := range touched {
			st.sinkSeen[sp] = false
		}
		return n
	}
	// Wire-length estimate of the Tunable net: q-corrected HPWL over the
	// union of sink sites plus the source site (same estimator as TPlace).
	minX, minY := math.MaxInt32, math.MaxInt32
	maxX, maxY := math.MinInt32, math.MinInt32
	upd := func(x, y int) {
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	nTerm := 1
	{
		x, y := st.xy(p)
		upd(x, y)
	}
	for _, sp := range touched {
		st.sinkSeen[sp] = false
		x, y := st.xy(sp)
		upd(x, y)
		nTerm++
	}
	return place.QFactor(nTerm) * float64((maxX-minX)+(maxY-minY))
}

func (st *state) totalCost() float64 {
	t := 0.0
	for _, c := range st.posCost {
		t += c
	}
	return t
}

// affected feeds add the positions whose cost a move of cell c in mode m
// can change: the cell's own position and its drivers' positions.
func (st *state) affected(m int, c int32, add func(int32)) {
	add(st.posOf[m][c])
	for _, d := range st.modes[m].driversFor[c] {
		add(st.posOf[m][d])
	}
}

// pickMove selects a mode, one of its cells and a range-limited same-class
// target position — the shared proposal logic of TryMove and Propose
// (identical rng draw sequence on either path).
func (st *state) pickMove(rng *rand.Rand, rlim float64) (m int, posA, posB int32, ok bool) {
	m = rng.Intn(len(st.modes))
	mi := st.modes[m]
	if mi.numCells() == 0 {
		return 0, 0, 0, false
	}
	c := int32(rng.Intn(mi.numCells()))
	posA = st.posOf[m][c]
	if mi.isIO(c) {
		posB = int32(len(st.clbSites) + rng.Intn(len(st.ioSites)))
	} else {
		sa := st.siteAt(posA)
		r := int(rlim)
		if r < 1 {
			r = 1
		}
		x := anneal.Clamp(sa.X+rng.Intn(2*r+1)-r, 1, st.width)
		y := anneal.Clamp(sa.Y+rng.Intn(2*r+1)-r, 1, st.height)
		posB = int32((y-1)*st.width + (x - 1))
	}
	if posB == posA {
		return 0, 0, 0, false
	}
	return m, posA, posB, true
}

// TryMove implements anneal.Mover: pick a mode and one of its cells, swap
// it with a range-limited target position, and return the incremental
// cost delta over the affected positions.
func (st *state) TryMove(rng *rand.Rand, rlim float64) (float64, bool) {
	m, posA, posB, ok := st.pickMove(rng, rlim)
	if !ok {
		return 0, false
	}
	return st.applyMove(m, posA, posB), true
}

// applyMove swaps the mode-m occupants of posA/posB against live state,
// updates the affected position costs, and returns the incremental delta,
// leaving the move applied for Undo.
func (st *state) applyMove(m int, posA, posB int32) float64 {
	affected := st.affBuf[:0]
	add := func(p int32) {
		if !st.affSeen[p] {
			st.affSeen[p] = true
			affected = append(affected, p)
		}
	}
	ca, cb := st.cellAt[m][posA], st.cellAt[m][posB]
	if ca >= 0 {
		st.affected(m, ca, add)
	}
	if cb >= 0 {
		st.affected(m, cb, add)
	}
	add(posA)
	add(posB)
	st.doSwap(m, posA, posB)
	delta := 0.0
	st.oldCost = st.oldCost[:0]
	for _, p := range affected {
		st.affSeen[p] = false
		st.oldCost = append(st.oldCost, st.posCost[p])
		nc := st.costAt(p)
		delta += nc - st.posCost[p]
		st.posCost[p] = nc
	}
	st.affBuf = affected
	st.mvMode, st.mvA, st.mvB = m, posA, posB
	return delta
}

// Undo implements anneal.Mover: revert the last TryMove's swap and the
// posCost entries of its affected positions.
func (st *state) Undo() {
	st.doSwap(st.mvMode, st.mvA, st.mvB)
	for i, p := range st.affBuf {
		st.posCost[p] = st.oldCost[i]
	}
}

// Cost implements anneal.Mover.
func (st *state) Cost() float64 { return st.totalCost() }

// numNets counts the cost-bearing nets across all modes (drivers with at
// least one sink), the denominator of the kernel's stop criterion.
func (st *state) numNets() int {
	n := 0
	for _, mi := range st.modes {
		for _, s := range mi.sinksOf {
			if len(s) > 0 {
				n++
			}
		}
	}
	return n
}

// CombinedPlace runs the multi-mode simulated annealing and extracts the
// resulting Tunable circuit.
func CombinedPlace(name string, modes []*lutnet.Circuit, a arch.Arch, opt Options) (*Result, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("merge: no modes")
	}
	if opt.Effort <= 0 {
		opt.Effort = 1.0
	}
	starts := opt.Starts
	if starts < 1 {
		starts = 1
	}
	var pool *anneal.Pool
	if opt.Workers > 1 {
		pool = anneal.NewPool(opt.Workers)
		defer pool.Close()
	}
	states := make([]*state, starts)
	costs := make([]float64, starts)
	seeds := make([]int64, starts)
	for i := range states {
		seed := opt.Seed + int64(i)*anneal.StartSeedStride
		rng := rand.New(rand.NewSource(seed))
		st, err := newState(modes, a, opt.Objective, rng, opt.Init)
		if err != nil {
			return nil, err
		}
		nCells := 0
		for _, mi := range st.modes {
			nCells += mi.numCells()
		}
		nNets := st.numNets()
		if nNets == 0 {
			nNets = 1
		}
		anneal.Run(st, anneal.Config{
			Effort:                opt.Effort,
			Span:                  a.Width + a.Height,
			Cells:                 nCells,
			Nets:                  nNets,
			Refine:                opt.Init != nil,
			WarmStart:             opt.Init != nil && opt.WarmStart,
			WarmStartTempFraction: opt.WarmStartTempFraction,
			Pool:                  pool,
			Obs:                   opt.Obs,
		}, rng)
		states[i], costs[i], seeds[i] = st, st.totalCost(), seed
	}
	// Pick by post-anneal cost; the (deterministic, rng-free) pin repair
	// then runs on the winner only, exactly as a single start would.
	st := states[anneal.BestStart(costs, seeds)]
	repairPins(st, a)

	return extract(name, modes, st)
}

// doSwap exchanges the mode-m occupants of posA and posB.
func (st *state) doSwap(m int, posA, posB int32) {
	ca, cb := st.cellAt[m][posA], st.cellAt[m][posB]
	st.cellAt[m][posA], st.cellAt[m][posB] = cb, ca
	if ca >= 0 {
		st.posOf[m][ca] = posB
	}
	if cb >= 0 {
		st.posOf[m][cb] = posA
	}
}

// extract converts the final combined placement into an Assignment, a
// Tunable circuit and per-group sites.
func extract(name string, modes []*lutnet.Circuit, st *state) (*Result, error) {
	asg := &tunable.Assignment{
		BlockGroup: make([][]int, len(modes)),
		PIGroup:    make([][]int, len(modes)),
		POGroup:    make([][]int, len(modes)),
	}
	groupOf := make([]int32, st.nPos) // position -> group (lut or pad), -1 unseen
	for i := range groupOf {
		groupOf[i] = -1
	}
	var lutSites, padSites []arch.Site

	lutGroup := func(pos int32) int {
		if g := groupOf[pos]; g >= 0 {
			return int(g)
		}
		g := len(lutSites)
		groupOf[pos] = int32(g)
		lutSites = append(lutSites, st.siteAt(pos))
		return g
	}
	padGroup := func(pos int32) int {
		if g := groupOf[pos]; g >= 0 {
			return int(g)
		}
		g := len(padSites)
		groupOf[pos] = int32(g)
		padSites = append(padSites, st.siteAt(pos))
		return g
	}

	for m, mi := range st.modes {
		asg.BlockGroup[m] = make([]int, mi.numBlocks)
		for b := 0; b < mi.numBlocks; b++ {
			asg.BlockGroup[m][b] = lutGroup(st.posOf[m][b])
		}
		asg.PIGroup[m] = make([]int, mi.numPIs)
		for i := 0; i < mi.numPIs; i++ {
			asg.PIGroup[m][i] = padGroup(st.posOf[m][int32(mi.numBlocks+i)])
		}
		asg.POGroup[m] = make([]int, mi.numPOs)
		for o := 0; o < mi.numPOs; o++ {
			asg.POGroup[m][o] = padGroup(st.posOf[m][int32(mi.numBlocks+mi.numPIs+o)])
		}
	}
	asg.NumLUTGroups = len(lutSites)
	asg.NumPadGroups = len(padSites)

	tc, err := tunable.Merge(name, modes, asg)
	if err != nil {
		return nil, fmt.Errorf("merge: extract: %w", err)
	}
	res := &Result{
		Assignment: asg,
		Tunable:    tc,
		LUTSite:    lutSites,
		PadSite:    padSites,
		Cost:       st.totalCost(),
	}
	stats := tc.Stats()
	res.TunableConns = stats.NumConns
	for _, n := range stats.PerModeConn {
		res.TotalModeConns += n
	}
	return res, nil
}
