package merge

import (
	"math/rand"
	"testing"

	"repro/internal/lutnet"
)

// checkPosCosts verifies the maintained posCost array against costAt,
// which always rescans the position's drivers and sinks from scratch —
// the maintained side under test is the affected-set bookkeeping that
// decides which positions a move must re-evaluate.
func checkPosCosts(t *testing.T, st *state, step int) {
	t.Helper()
	for p := int32(0); int(p) < st.nPos; p++ {
		if got, want := st.posCost[p], st.costAt(p); got != want {
			t.Fatalf("step %d: pos %d maintained cost %v != recomputed %v", step, p, got, want)
		}
	}
}

// TestMergeIncrementalCostMatchesRecompute drives the combined-placement
// mover through a random accepted/rejected sequence and verifies the
// incrementally maintained per-position costs against from-scratch
// recomputation, under both objectives.
func TestMergeIncrementalCostMatchesRecompute(t *testing.T) {
	modes := []*lutnet.Circuit{
		randomCircuit(t, 50, 30),
		randomCircuit(t, 51, 30),
		randomCircuit(t, 52, 30),
	}
	a := archFor(modes)
	for _, obj := range []Objective{WireLength, EdgeMatch} {
		rng := rand.New(rand.NewSource(13))
		st, err := newState(modes, a, obj, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkPosCosts(t, st, -1)
		for i := 0; i < 3000; i++ {
			rlim := 1 + rng.Float64()*float64(a.Width+a.Height)
			d, ok := st.TryMove(rng, rlim)
			if !ok {
				continue
			}
			if rng.Intn(2) == 0 {
				st.Undo()
			}
			_ = d
			if i%83 == 0 {
				checkPosCosts(t, st, i)
			}
		}
		checkPosCosts(t, st, 3000)

		// The delta TryMove reports must equal the actual total change,
		// and Undo must restore the total exactly.
		for i := 0; i < 300; i++ {
			before := st.totalCost()
			d, ok := st.TryMove(rng, 4)
			if !ok {
				continue
			}
			after := st.totalCost()
			if diff := after - before - d; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%v step %d: delta %v but total moved by %v", obj, i, d, after-before)
			}
			st.Undo()
			if got := st.totalCost(); got != before {
				t.Fatalf("%v step %d: undo left total %v, want %v", obj, i, got, before)
			}
		}
	}
}

// TestCombinedPlaceResultDeterministic is the same-seed contract at the
// Result level: identical cost, connection counts, and group sites.
func TestCombinedPlaceResultDeterministic(t *testing.T) {
	modes := similarPair(t)
	a := archFor(modes)
	for _, obj := range []Objective{WireLength, EdgeMatch} {
		r1, err := CombinedPlace("det", modes, a, Options{Seed: 21, Effort: 0.2, Objective: obj})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := CombinedPlace("det", modes, a, Options{Seed: 21, Effort: 0.2, Objective: obj})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cost != r2.Cost || r1.TunableConns != r2.TunableConns || r1.TotalModeConns != r2.TotalModeConns {
			t.Fatalf("%v: non-deterministic result: cost %v/%v conns %d/%d", obj, r1.Cost, r2.Cost, r1.TunableConns, r2.TunableConns)
		}
		for g := range r1.LUTSite {
			if r1.LUTSite[g] != r2.LUTSite[g] {
				t.Fatalf("%v: LUT group %d site differs", obj, g)
			}
		}
		for g := range r1.PadSite {
			if r1.PadSite[g] != r2.PadSite[g] {
				t.Fatalf("%v: pad group %d site differs", obj, g)
			}
		}
	}
}
