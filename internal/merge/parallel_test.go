package merge

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/anneal"
	"repro/internal/lutnet"
)

// TestMergeWorkerDeterminism is the combined-placement half of the
// determinism-at-any-j contract: the complete Result — cost, connection
// counts, assignment and every group site — must be identical at 1, 2
// and 8 workers, under both objectives.
func TestMergeWorkerDeterminism(t *testing.T) {
	modes := []*lutnet.Circuit{
		randomCircuit(t, 60, 30),
		randomCircuit(t, 61, 30),
		randomCircuit(t, 62, 30),
	}
	a := archFor(modes)
	for _, obj := range []Objective{WireLength, EdgeMatch} {
		var base *Result
		for _, workers := range []int{1, 2, 8} {
			res, err := CombinedPlace("det", modes, a, Options{
				Seed: 7, Effort: 0.2, Objective: obj, Workers: workers,
			})
			if err != nil {
				t.Fatalf("%v workers %d: %v", obj, workers, err)
			}
			if workers == 1 {
				base = res
				continue
			}
			if !reflect.DeepEqual(base, res) {
				t.Fatalf("%v: result at %d workers differs from serial", obj, workers)
			}
		}
	}
}

// TestMergeMultiStartDeterministic: a multi-start combined placement must
// equal the best single start under the (cost, seed) tiebreak, at any
// worker count.
func TestMergeMultiStartDeterministic(t *testing.T) {
	modes := similarPair(t)
	a := archFor(modes)
	const starts = 3
	var singles []*Result
	costs := make([]float64, starts)
	seeds := make([]int64, starts)
	for i := 0; i < starts; i++ {
		seeds[i] = 9 + int64(i)*anneal.StartSeedStride
		res, err := CombinedPlace("ms", modes, a, Options{Seed: seeds[i], Effort: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		singles = append(singles, res)
		costs[i] = res.Cost
	}
	want := singles[anneal.BestStart(costs, seeds)]
	for _, workers := range []int{1, 4} {
		res, err := CombinedPlace("ms", modes, a, Options{
			Seed: 9, Effort: 0.2, Starts: starts, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, res) {
			t.Fatalf("multi-start at %d workers differs from best single start (cost %v vs %v)",
				workers, res.Cost, want.Cost)
		}
	}
}

// TestMergeEvalSlotMatchesApplySlot pins the frozen-evaluation contract
// down move by move under both objectives: EvalSlot's read-only delta
// must equal applyMove's live delta bit-identically.
func TestMergeEvalSlotMatchesApplySlot(t *testing.T) {
	modes := []*lutnet.Circuit{
		randomCircuit(t, 50, 30),
		randomCircuit(t, 51, 30),
		randomCircuit(t, 52, 30),
	}
	a := archFor(modes)
	for _, obj := range []Objective{WireLength, EdgeMatch} {
		rng := rand.New(rand.NewSource(14))
		st, err := newState(modes, a, obj, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		st.SetupBatch(2, 1)
		for i := 0; i < 3000; i++ {
			rlim := 1 + rng.Float64()*float64(a.Width+a.Height)
			if !st.Propose(rng, rlim, 0) {
				continue
			}
			frozen := st.EvalSlot(0, i%2)
			live := st.ApplySlot(0)
			if frozen != live {
				t.Fatalf("%v step %d: frozen delta %v != live delta %v", obj, i, frozen, live)
			}
			if rng.Intn(2) == 0 {
				st.Undo()
			}
		}
	}
}

// TestMergeBatchAccountingMatchesRecompute extends the incremental
// exact-equality contract to the batched commit/requeue path: after
// EVERY batch commit cycle of a real parallel combined-placement anneal,
// each maintained position cost must equal a from-scratch costAt. The
// run must also exercise the conflict-requeue path.
func TestMergeBatchAccountingMatchesRecompute(t *testing.T) {
	modes := []*lutnet.Circuit{
		randomCircuit(t, 50, 30),
		randomCircuit(t, 51, 30),
		randomCircuit(t, 52, 30),
	}
	a := archFor(modes)
	rng := rand.New(rand.NewSource(15))
	st, err := newState(modes, a, WireLength, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	nCells := 0
	for _, mi := range st.modes {
		nCells += mi.numCells()
	}
	batch := 0
	stats := anneal.Run(st, anneal.Config{
		Effort: 0.2, Span: a.Width + a.Height,
		Cells: nCells, Nets: st.numNets(),
		Workers: 3,
		AfterBatch: func() {
			batch++
			checkPosCosts(t, st, batch)
		},
	}, rng)
	if stats.Batches == 0 || batch != stats.Batches {
		t.Fatalf("AfterBatch ran %d times for %d batches", batch, stats.Batches)
	}
	if stats.Requeued == 0 {
		t.Fatal("anneal never exercised the conflict-requeue path")
	}
}
