package merge

import (
	"sort"

	"repro/internal/arch"
)

// Input-pin feasibility of a combined placement.
//
// A Tunable LUT's input branches are the distinct driver entities feeding
// it, each active in a set of modes; two branches whose mode sets overlap
// must enter the CLB through different physical pins, while mode-disjoint
// branches may share one. Routing therefore needs a conflict-free
// assignment of branches to the K pins — a graph colouring where branches
// conflict when their activation sets intersect.
//
// With two modes this is always satisfiable: every mode drives at most K
// branches, and single-mode branches of different modes can pair up on a
// pin. From three modes up the union demand can exceed K (e.g. three
// pairwise-overlapping two-mode branches plus per-mode exclusive inputs),
// and no router can fix that — the grouping itself is infeasible. The
// combined-placement annealer optimises wirelength or edge matching and
// knows nothing about pins, so repairPins post-processes its result:
// every CLB position whose greedy pin colouring needs more than K pins
// has one mode's cell relocated until the placement is colourable.
func repairPins(st *state, a arch.Arch) {
	if len(st.modes) < 3 {
		return // two-mode groupings are always pin-feasible
	}
	k := a.K
	nCLB := len(st.clbSites)

	// Worklist of CLB positions to check, deduplicated.
	inQueue := make([]bool, nCLB)
	queue := make([]int32, 0, nCLB)
	push := func(p int32) {
		if int(p) < nCLB && !inQueue[p] {
			inQueue[p] = true
			queue = append(queue, p)
		}
	}
	for p := int32(0); int(p) < nCLB; p++ {
		push(p)
	}

	branches := map[int32]uint64{}
	// Deterministic bound: each relocation enqueues O(1) positions, so a
	// generous multiple of the array size terminates even if some hotspot
	// cannot be repaired (the router's own retries then take over).
	for budget := 8 * nCLB; budget > 0 && len(queue) > 0; budget-- {
		p := queue[0]
		queue = queue[1:]
		inQueue[p] = false
		if st.pinDemand(p, branches) <= k {
			continue
		}
		// Relocate the cell contributing the most branches; break cost
		// ties by mode index for determinism.
		bestMode, bestDrv := -1, -1
		for m, mi := range st.modes {
			c := st.cellAt[m][p]
			if c < 0 || mi.isIO(c) {
				continue
			}
			if d := len(mi.driversFor[c]); d > bestDrv {
				bestMode, bestDrv = m, d
			}
		}
		if bestMode < 0 {
			continue
		}
		c := st.cellAt[bestMode][p]
		q := st.relocationTarget(p, bestMode, k, branches)
		if q < 0 {
			continue // nowhere feasible; leave it to the router retries
		}
		st.doSwap(bestMode, p, q)
		// The move changes the pin demand at p, at q, and at every
		// position sinking the moved cell's nets in that mode (their
		// branch keyed by this driver changed position).
		push(p)
		push(q)
		for _, s := range st.modes[bestMode].sinksOf[c] {
			push(st.posOf[bestMode][s])
		}
	}

	// Repair moved cells around: refresh the cached per-position costs so
	// any later consumer of the state sees consistent numbers.
	for p := int32(0); int(p) < st.nPos; p++ {
		st.posCost[p] = st.costAt(p)
	}
}

// pinDemand returns the number of input pins a greedy colouring needs at
// CLB position p: branches (distinct driver positions with their mode
// sets) are assigned first-fit to pins whose accumulated mode set they do
// not intersect. Greedy never underestimates the true chromatic demand,
// matching the conservative behaviour of the router's own pin choice.
func (st *state) pinDemand(p int32, branches map[int32]uint64) int {
	for key := range branches {
		delete(branches, key)
	}
	for m, mi := range st.modes {
		c := st.cellAt[m][p]
		if c < 0 || mi.isIO(c) {
			continue
		}
		for _, d := range mi.driversFor[c] {
			branches[st.posOf[m][d]] |= uint64(1) << uint(m)
		}
	}
	if len(branches) == 0 {
		return 0
	}
	order := make([]int32, 0, len(branches))
	for d := range branches {
		order = append(order, d)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	var pins []uint64
	for _, d := range order {
		mask := branches[d]
		placed := false
		for i := range pins {
			if pins[i]&mask == 0 {
				pins[i] |= mask
				placed = true
				break
			}
		}
		if !placed {
			pins = append(pins, mask)
		}
	}
	return len(pins)
}

// relocationTarget picks the nearest CLB position that is free in the
// given mode and stays pin-feasible after receiving the cell currently at
// p — preferring positions empty in every mode (always feasible). Returns
// -1 when no candidate qualifies.
func (st *state) relocationTarget(p int32, m, k int, branches map[int32]uint64) int32 {
	px, py := st.xy(p)
	type cand struct {
		pos  int32
		dist int
	}
	var cands []cand
	for q := int32(0); int(q) < len(st.clbSites); q++ {
		if q == p || st.cellAt[m][q] >= 0 {
			continue
		}
		x, y := st.xy(q)
		d := abs(x-px) + abs(y-py)
		cands = append(cands, cand{pos: q, dist: d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].pos < cands[j].pos
	})
	for _, c := range cands {
		st.doSwap(m, p, c.pos)
		ok := st.pinDemand(c.pos, branches) <= k
		st.doSwap(m, p, c.pos)
		if ok {
			return c.pos
		}
	}
	return -1
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
