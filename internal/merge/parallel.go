// Batched parallel-move support: the combined-placement state implements
// anneal.BatchMover. As in package place, the load-bearing contract is
// EvalSlot ≡ ApplySlot on unchanged state: the frozen evaluation replays
// applyMove's exact affected-position order and per-position cost
// computation through a view of the arrays with the proposed swap
// applied, so the delta matches bit for bit.
package merge

import (
	"math"
	"math/rand"

	"repro/internal/place"
)

// mergeSlot is one recorded batch proposal: a mode and a position pair.
type mergeSlot struct {
	m          int
	posA, posB int32
}

// mergeScratch is one worker's frozen-evaluation scratch, mirroring the
// state's own costAt/move scratch (sink-position dedup, affected-position
// dedup) so concurrent evaluations never share buffers.
type mergeScratch struct {
	sinkSeen []bool
	sinkBuf  []int32
	affSeen  []bool
	affBuf   []int32
}

// SetupBatch implements anneal.BatchMover.
func (st *state) SetupBatch(workers, slots int) {
	st.slots = make([]mergeSlot, slots)
	st.scratch = make([]mergeScratch, workers)
	for w := range st.scratch {
		st.scratch[w] = mergeScratch{
			sinkSeen: make([]bool, st.nPos),
			affSeen:  make([]bool, st.nPos),
		}
	}
}

// Propose implements anneal.BatchMover: the same pick (and rng draw
// sequence) as TryMove, recorded instead of applied.
func (st *state) Propose(rng *rand.Rand, rlim float64, slot int) bool {
	m, posA, posB, ok := st.pickMove(rng, rlim)
	if !ok {
		return false
	}
	st.slots[slot] = mergeSlot{m, posA, posB}
	return true
}

// Claims implements anneal.BatchMover: a move's mutation footprint is its
// (mode, position) pair, flattened to mode*nPos+pos. Swaps of different
// modes never touch the same occupancy arrays, so they only claim their
// own mode's slots; within a mode the same-class position-pair argument
// from package place applies, so requeued swaps stay legal.
func (st *state) Claims(slot int, buf []int64) []int64 {
	s := st.slots[slot]
	base := int64(s.m) * int64(st.nPos)
	return append(buf, base+int64(s.posA), base+int64(s.posB))
}

// ApplySlot implements anneal.BatchMover.
func (st *state) ApplySlot(slot int) float64 {
	s := st.slots[slot]
	return st.applyMove(s.m, s.posA, s.posB)
}

// EvalSlot implements anneal.BatchMover: applyMove's delta computed
// read-only against the frozen state using worker w's scratch. The
// affected-position list is built pre-swap from the live arrays (exactly
// as applyMove builds it), then each position is re-costed through a view
// with the swap applied.
func (st *state) EvalSlot(slot, w int) float64 {
	s := st.slots[slot]
	sc := &st.scratch[w]
	ca, cb := st.cellAt[s.m][s.posA], st.cellAt[s.m][s.posB]

	affected := sc.affBuf[:0]
	add := func(p int32) {
		if !sc.affSeen[p] {
			sc.affSeen[p] = true
			affected = append(affected, p)
		}
	}
	if ca >= 0 {
		st.affected(s.m, ca, add)
	}
	if cb >= 0 {
		st.affected(s.m, cb, add)
	}
	add(s.posA)
	add(s.posB)
	delta := 0.0
	for _, p := range affected {
		sc.affSeen[p] = false
		delta += st.costAtView(p, s.m, s.posA, s.posB, ca, cb, sc) - st.posCost[p]
	}
	sc.affBuf = affected
	return delta
}

// costAtView is costAt evaluated through a view of the occupancy arrays
// with the mode-vm swap of vA and vB applied: cellAt[vm][vA] reads as cb,
// cellAt[vm][vB] as ca, and the positions of ca/cb read swapped. Same
// iteration order, same dedup, same min/max accumulation as costAt.
func (st *state) costAtView(p int32, vm int, vA, vB, ca, cb int32, sc *mergeScratch) float64 {
	touched := sc.sinkBuf[:0]
	hasDriver := false
	for m, mi := range st.modes {
		cell := st.cellAt[m][p]
		if m == vm {
			if p == vA {
				cell = cb
			} else if p == vB {
				cell = ca
			}
		}
		if cell < 0 || len(mi.sinksOf[cell]) == 0 {
			continue
		}
		hasDriver = true
		for _, s := range mi.sinksOf[cell] {
			sp := st.posOf[m][s]
			if m == vm {
				if s == ca {
					sp = vB
				} else if s == cb {
					sp = vA
				}
			}
			if !sc.sinkSeen[sp] {
				sc.sinkSeen[sp] = true
				touched = append(touched, sp)
			}
		}
	}
	sc.sinkBuf = touched
	if !hasDriver || len(touched) == 0 {
		for _, sp := range touched {
			sc.sinkSeen[sp] = false
		}
		return 0
	}
	if st.objective == EdgeMatch {
		n := float64(len(touched))
		for _, sp := range touched {
			sc.sinkSeen[sp] = false
		}
		return n
	}
	minX, minY := math.MaxInt32, math.MaxInt32
	maxX, maxY := math.MinInt32, math.MinInt32
	upd := func(x, y int) {
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	nTerm := 1
	{
		x, y := st.xy(p)
		upd(x, y)
	}
	for _, sp := range touched {
		sc.sinkSeen[sp] = false
		x, y := st.xy(sp)
		upd(x, y)
		nTerm++
	}
	return place.QFactor(nTerm) * float64((maxX-minX)+(maxY-minY))
}
