package merge

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/netlist"
	"repro/internal/techmap"
)

// randomCircuit builds a seeded random sequential LUT circuit.
func randomCircuit(t *testing.T, seed int64, nGates int) *lutnet.Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("rand%d", seed))
	sigs := b.InputVector("in", 5)
	for i := 0; i < nGates; i++ {
		x := sigs[rng.Intn(len(sigs))]
		y := sigs[rng.Intn(len(sigs))]
		var s int
		switch rng.Intn(5) {
		case 0:
			s = b.And(x, y)
		case 1:
			s = b.Or(x, y)
		case 2:
			s = b.Xor(x, y)
		case 3:
			s = b.Not(x)
		default:
			s = b.Latch(x, false)
		}
		sigs = append(sigs, s)
	}
	for i := 0; i < 4; i++ {
		b.Output(fmt.Sprintf("o[%d]", i), sigs[len(sigs)-1-i])
	}
	c, err := techmap.Map(b.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// similarPair builds two structurally related circuits (same generator,
// perturbed seed) — the typical multi-mode scenario.
func similarPair(t *testing.T) []*lutnet.Circuit {
	return []*lutnet.Circuit{randomCircuit(t, 10, 40), randomCircuit(t, 11, 40)}
}

func archFor(modes []*lutnet.Circuit) arch.Arch {
	maxBlocks, maxIO := 0, 0
	for _, c := range modes {
		if c.NumBlocks() > maxBlocks {
			maxBlocks = c.NumBlocks()
		}
		if io := c.NumPIs() + len(c.POs); io > maxIO {
			maxIO = io
		}
	}
	side := arch.MinGridForBlocks(maxBlocks, maxIO, 1.2)
	return arch.New(side, side, 8)
}

func TestCombinedPlaceLegalAndEquivalent(t *testing.T) {
	modes := similarPair(t)
	a := archFor(modes)
	for _, obj := range []Objective{WireLength, EdgeMatch} {
		res, err := CombinedPlace("mm", modes, a, Options{Seed: 1, Effort: 0.3, Objective: obj})
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		// Each extracted mode must be IO-equivalent to its original.
		for m := range modes {
			got, err := res.Tunable.ExtractMode(m)
			if err != nil {
				t.Fatalf("%v mode %d: %v", obj, m, err)
			}
			simEq(t, modes[m], got, 32, int64(m))
		}
		// Site arrays must be consistent with group counts.
		if len(res.LUTSite) != res.Assignment.NumLUTGroups {
			t.Fatalf("%v: %d LUT sites for %d groups", obj, len(res.LUTSite), res.Assignment.NumLUTGroups)
		}
		if len(res.PadSite) != res.Assignment.NumPadGroups {
			t.Fatalf("%v: %d pad sites for %d groups", obj, len(res.PadSite), res.Assignment.NumPadGroups)
		}
		// Sites must be unique (a group is a physical location).
		seen := map[arch.Site]bool{}
		for _, s := range append(append([]arch.Site{}, res.LUTSite...), res.PadSite...) {
			if seen[s] {
				t.Fatalf("%v: duplicate group site %v", obj, s)
			}
			seen[s] = true
		}
		for _, s := range res.LUTSite {
			if s.IsIO {
				t.Fatalf("%v: LUT group on pad site", obj)
			}
		}
		for _, s := range res.PadSite {
			if !s.IsIO {
				t.Fatalf("%v: pad group on CLB site", obj)
			}
		}
	}
}

func simEq(t *testing.T, a, b *lutnet.Circuit, cycles int, seed int64) {
	t.Helper()
	sa, err := lutnet.NewSimulator(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := lutnet.NewSimulator(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]bool{}
		for _, nm := range a.PINames {
			in[nm] = rng.Intn(2) == 0
		}
		oa, ob := sa.Step(in), sb.Step(in)
		for k, v := range oa {
			if ob[k] != v {
				t.Fatalf("cycle %d output %s differs", cyc, k)
			}
		}
	}
}

func TestEdgeMatchReducesTunableConnections(t *testing.T) {
	// Merging two identical circuits must match almost all connections
	// under the edge-matching objective.
	c1 := randomCircuit(t, 20, 40)
	c2 := randomCircuit(t, 20, 40) // same seed: identical circuit
	modes := []*lutnet.Circuit{c1, c2}
	a := archFor(modes)
	res, err := CombinedPlace("twin", modes, a, Options{Seed: 2, Effort: 0.5, Objective: EdgeMatch})
	if err != nil {
		t.Fatal(err)
	}
	perMode := res.TotalModeConns / 2
	if res.TunableConns > perMode*13/10 {
		t.Errorf("identical modes: %d tunable conns vs %d per-mode (poor matching)",
			res.TunableConns, perMode)
	}
}

func TestWireLengthObjectiveBeatsRandomGrouping(t *testing.T) {
	modes := similarPair(t)
	a := archFor(modes)
	res, err := CombinedPlace("mm", modes, a, Options{Seed: 3, Effort: 0.4, Objective: WireLength})
	if err != nil {
		t.Fatal(err)
	}
	low, err := CombinedPlace("mm", modes, a, Options{Seed: 3, Effort: 0.01, Objective: WireLength})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > low.Cost {
		t.Errorf("more effort worsened cost: %.1f vs %.1f", res.Cost, low.Cost)
	}
}

func TestCombinedPlaceDeterministic(t *testing.T) {
	modes := similarPair(t)
	a := archFor(modes)
	r1, err := CombinedPlace("mm", modes, a, Options{Seed: 4, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CombinedPlace("mm", modes, a, Options{Seed: 4, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost || r1.TunableConns != r2.TunableConns {
		t.Fatalf("non-deterministic: cost %.2f/%.2f conns %d/%d", r1.Cost, r2.Cost, r1.TunableConns, r2.TunableConns)
	}
	for g := range r1.LUTSite {
		if r1.LUTSite[g] != r2.LUTSite[g] {
			t.Fatalf("site of group %d differs", g)
		}
	}
}

func TestCombinedPlaceRejectsOversize(t *testing.T) {
	modes := similarPair(t)
	tiny := arch.New(2, 2, 4)
	if _, err := CombinedPlace("mm", modes, tiny, Options{Seed: 1}); err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestTunableConnsNeverBelowMaxMode(t *testing.T) {
	// The tunable circuit must contain at least as many connections as the
	// largest mode (lower bound on merging).
	modes := similarPair(t)
	a := archFor(modes)
	for _, obj := range []Objective{WireLength, EdgeMatch} {
		res, err := CombinedPlace("mm", modes, a, Options{Seed: 5, Effort: 0.3, Objective: obj})
		if err != nil {
			t.Fatal(err)
		}
		st := res.Tunable.Stats()
		maxMode := 0
		for _, n := range st.PerModeConn {
			if n > maxMode {
				maxMode = n
			}
		}
		if st.NumConns < maxMode {
			t.Errorf("%v: %d conns below largest mode %d", obj, st.NumConns, maxMode)
		}
		if st.NumConns > res.TotalModeConns {
			t.Errorf("%v: merging increased connection count", obj)
		}
	}
}

func TestThreeModeCombinedPlace(t *testing.T) {
	modes := []*lutnet.Circuit{
		randomCircuit(t, 30, 25),
		randomCircuit(t, 31, 25),
		randomCircuit(t, 32, 25),
	}
	a := archFor(modes)
	res, err := CombinedPlace("tri", modes, a, Options{Seed: 6, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tunable.NumModes != 3 {
		t.Fatalf("NumModes = %d", res.Tunable.NumModes)
	}
	for m := range modes {
		got, err := res.Tunable.ExtractMode(m)
		if err != nil {
			t.Fatal(err)
		}
		simEq(t, modes[m], got, 16, int64(m+40))
	}
}
