package synth

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// checkEquivalent simulates both netlists on random stimulus and compares
// primary outputs cycle by cycle.
func checkEquivalent(t *testing.T, a, b *netlist.Netlist, cycles int, seed int64) {
	t.Helper()
	sa, sb := netlist.NewSimulator(a), netlist.NewSimulator(b)
	rng := rand.New(rand.NewSource(seed))
	names := sa.InputNames()
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]bool{}
		for _, nm := range names {
			in[nm] = rng.Intn(2) == 0
		}
		oa, ob := sa.Step(in), sb.Step(in)
		for k, v := range oa {
			if ob[k] != v {
				t.Fatalf("cycle %d: output %s differs (orig %v, opt %v)", cyc, k, v, ob[k])
			}
		}
	}
}

func TestConstPropagation(t *testing.T) {
	b := netlist.NewBuilder("cp")
	x := b.Input("x")
	zero := b.Const(false)
	y := b.And(x, zero) // == 0
	z := b.Or(x, y)     // == x
	b.Output("z", z)
	opt := Optimize(b.N)
	if g := opt.CountKind(netlist.KindGate); g != 0 {
		t.Errorf("expected all gates folded, have %d", g)
	}
	checkEquivalent(t, b.N, opt, 16, 1)
}

func TestBufferElision(t *testing.T) {
	b := netlist.NewBuilder("buf")
	x := b.Input("x")
	s := x
	for i := 0; i < 6; i++ {
		s = b.Buf(s)
	}
	b.Output("y", s)
	opt := Optimize(b.N)
	if g := opt.CountKind(netlist.KindGate); g != 0 {
		t.Errorf("buffers not elided: %d gates remain", g)
	}
}

func TestDoubleInverterCollapses(t *testing.T) {
	b := netlist.NewBuilder("inv2")
	x := b.Input("x")
	y := b.Not(b.Not(x))
	b.Output("y", y)
	opt := Optimize(b.N)
	// not(not(x)) -> not has support {x}; strash can't merge two different
	// NOT gates but cofactoring pushes the identity through: the outer gate
	// becomes a buffer of the inner, then... both remain NOTs structurally.
	// The guaranteed property is IO equivalence and no growth.
	if opt.CountKind(netlist.KindGate) > 2 {
		t.Errorf("double inverter grew: %d gates", opt.CountKind(netlist.KindGate))
	}
	checkEquivalent(t, b.N, opt, 8, 2)
}

func TestStructuralHashing(t *testing.T) {
	b := netlist.NewBuilder("sh")
	x := b.Input("x")
	y := b.Input("y")
	a1 := b.And(x, y)
	a2 := b.And(x, y) // duplicate
	o := b.Or(a1, a2) // == a1
	b.Output("o", o)
	opt := Optimize(b.N)
	if g := opt.CountKind(netlist.KindGate); g != 1 {
		t.Errorf("expected 1 gate after strash, have %d", g)
	}
	checkEquivalent(t, b.N, opt, 16, 3)
}

func TestSweepRemovesDeadLogic(t *testing.T) {
	b := netlist.NewBuilder("dead")
	x := b.Input("x")
	y := b.Input("y")
	live := b.And(x, y)
	dead := b.Xor(x, y)
	deadReg := b.Latch(dead, false)
	_ = deadReg
	b.Output("z", live)
	opt := Optimize(b.N)
	if g := opt.CountKind(netlist.KindGate); g != 1 {
		t.Errorf("dead gate not swept: %d gates", g)
	}
	if l := opt.CountKind(netlist.KindLatch); l != 0 {
		t.Errorf("dead latch not swept: %d latches", l)
	}
}

func TestConstLatchFolding(t *testing.T) {
	// A latch fed by constant 0 with init 0 is stuck at 0.
	b := netlist.NewBuilder("cl")
	x := b.Input("x")
	stuck := b.Latch(b.Const(false), false)
	y := b.Or(x, stuck) // == x
	b.Output("y", y)
	opt := Optimize(b.N)
	if l := opt.CountKind(netlist.KindLatch); l != 0 {
		t.Errorf("stuck latch not folded: %d latches", l)
	}
	checkEquivalent(t, b.N, opt, 16, 4)
}

func TestSelfLoopConstLatch(t *testing.T) {
	// q := q (self loop), init 1: constant 1 forever.
	n := netlist.New("loop")
	x := n.AddInput("x")
	q := n.AddLatchPlaceholder("q", true) // self-loop: q := q
	and := n.AddGate("y", logic.VarTT(2, 0).And(logic.VarTT(2, 1)), x, q)
	n.AddOutput("y", and)
	opt := Optimize(n)
	if l := opt.CountKind(netlist.KindLatch); l != 0 {
		t.Errorf("self-loop constant latch not folded: %d latches", l)
	}
	checkEquivalent(t, n, opt, 16, 5)
}

func TestNonConstLatchPreserved(t *testing.T) {
	// Toggle flip-flop must not be folded.
	n := netlist.New("tff")
	q := n.AddLatchPlaceholder("q", false)
	inv := n.AddGate("d", logic.VarTT(1, 0).Not(), q)
	n.SetLatchData(q, inv)
	n.AddOutput("q", q)
	opt := Optimize(n)
	if l := opt.CountKind(netlist.KindLatch); l != 1 {
		t.Errorf("toggle latch count = %d, want 1", l)
	}
	checkEquivalent(t, n, opt, 16, 6)
}

func TestOptimizeRandomEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := netlist.NewBuilder(fmt.Sprintf("rand%d", seed))
		sigs := b.InputVector("in", 4)
		sigs = append(sigs, b.Const(false), b.Const(true))
		for i := 0; i < 60; i++ {
			x := sigs[rng.Intn(len(sigs))]
			y := sigs[rng.Intn(len(sigs))]
			var s int
			switch rng.Intn(6) {
			case 0:
				s = b.And(x, y)
			case 1:
				s = b.Or(x, y)
			case 2:
				s = b.Xor(x, y)
			case 3:
				s = b.Not(x)
			case 4:
				s = b.Mux(x, y, sigs[rng.Intn(len(sigs))])
			default:
				s = b.Latch(x, rng.Intn(2) == 0)
			}
			sigs = append(sigs, s)
		}
		for i := 0; i < 5; i++ {
			b.Output(fmt.Sprintf("out[%d]", i), sigs[len(sigs)-1-i])
		}
		opt := Optimize(b.N)
		if err := opt.Validate(); err != nil {
			t.Fatalf("seed %d: invalid optimized netlist: %v", seed, err)
		}
		if sizeOf(opt) > sizeOf(b.N) {
			t.Errorf("seed %d: optimization grew the netlist (%d -> %d)", seed, sizeOf(b.N), sizeOf(opt))
		}
		checkEquivalent(t, b.N, opt, 48, seed+100)
	}
}

func TestConstantMultiplierShrinks(t *testing.T) {
	// Multiplying by a constant with few set bits should fold most of the
	// generic multiplier away — the mechanism behind the FIR area claim.
	generic := buildMulAdd(t, nil)
	constant := buildMulAdd(t, []int64{0, 1}) // coefficients 0 and 1: extreme folding
	g1 := Optimize(generic).CountKind(netlist.KindGate)
	g2 := Optimize(constant).CountKind(netlist.KindGate)
	if g2*2 >= g1 {
		t.Errorf("constant folding too weak: generic %d gates, constant %d gates", g1, g2)
	}
}

// buildMulAdd builds sum of x*coeff_i for two taps; nil coeffs means generic
// (coefficients as inputs).
func buildMulAdd(t *testing.T, coeffs []int64) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("fir2")
	x := b.InputVector("x", 4)
	width := 8
	ext := func(v []int) []int {
		out := append([]int(nil), v...)
		for len(out) < width {
			out = append(out, b.Const(false))
		}
		return out[:width]
	}
	mul := func(xi []int, c []int) []int {
		acc := b.ConstVector(0, width)
		for i := 0; i < 4; i++ {
			sh := make([]int, width)
			for k := 0; k < width; k++ {
				if k-i >= 0 && k-i < len(xi) {
					sh[k] = b.And(xi[k-i], c[i])
				} else {
					sh[k] = b.Const(false)
				}
			}
			acc = b.RippleAdd(acc, sh)[:width]
		}
		return acc
	}
	var c0, c1 []int
	if coeffs == nil {
		c0 = b.InputVector("c0", 4)
		c1 = b.InputVector("c1", 4)
	} else {
		c0 = b.ConstVector(coeffs[0], 4)
		c1 = b.ConstVector(coeffs[1], 4)
	}
	p0 := mul(ext(x), c0)
	p1 := mul(ext(x), c1)
	sum := b.RippleAdd(p0, p1)[:width]
	b.OutputVector("y", sum)
	return b.N
}
