// Package synth implements the logic-synthesis clean-up passes of the
// front-end: constant propagation, support reduction, buffer elision,
// structural hashing and dead-node sweeping. The FIR workload relies on
// constant propagation to shrink constant-coefficient filters (the paper
// reports a 3× reduction versus the generic filter).
package synth

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Optimize runs constant propagation, support reduction, buffer elision,
// structural hashing and a reachability sweep until fixpoint, returning a
// fresh netlist that is cycle-by-cycle IO-equivalent to the input.
func Optimize(n *netlist.Netlist) *netlist.Netlist {
	cur := n
	for round := 0; round < 8; round++ {
		next := pass(cur)
		if sizeOf(next) == sizeOf(cur) && round > 0 {
			return next
		}
		cur = next
	}
	return cur
}

func sizeOf(n *netlist.Netlist) int {
	return n.CountKind(netlist.KindGate) + n.CountKind(netlist.KindLatch)
}

// signal describes the rewritten form of an old node: either a constant or
// a node ID in the new netlist.
type signal struct {
	isConst bool
	constV  bool
	id      int
}

// pass performs one rewrite round.
func pass(n *netlist.Netlist) *netlist.Netlist {
	out := netlist.New(n.Name)
	oldToNew := make([]signal, len(n.Nodes))

	// Constant-valued latches: a latch whose data input is a constant equal
	// to its initial value is a constant forever. Detect by fixpoint over
	// latch graph: start assuming every latch may be constant at its init
	// value, and invalidate when its (gate-propagated) data input disagrees
	// or is non-constant. To keep the pass simple and sound we only fold a
	// latch when its data fanin evaluates to a constant equal to init under
	// the candidate assumption set; one outer Optimize round per latch layer
	// converges.
	constLatch := detectConstLatches(n)

	hash := map[string]int{}
	var latchFixups []struct {
		newID, oldFanin int
	}

	emit := func(fn logic.TT, fanins []signal, name string) signal {
		// Fold constant fanins into the function.
		work := fn
		for i, f := range fanins {
			if f.isConst {
				work = work.Cofactor(i, f.constV)
			}
		}
		// Collapse duplicate fanin nodes: if variables i and j feed from the
		// same node, rewrite the table so rows are read with v_j := v_i,
		// letting Shrink drop v_j.
		for i := 0; i < len(fanins); i++ {
			if fanins[i].isConst {
				continue
			}
			for j := i + 1; j < len(fanins); j++ {
				if fanins[j].isConst || fanins[j].id != fanins[i].id {
					continue
				}
				dedup := logic.ConstTT(work.NumVars, false)
				for r := 0; r < work.NumRows(); r++ {
					src := r&^(1<<uint(j)) | (r >> uint(i) & 1 << uint(j))
					if work.Get(src) {
						dedup = dedup.Set(r, true)
					}
				}
				work = dedup
			}
		}
		// Support reduction.
		small, keep := work.Shrink()
		if small.NumVars == 0 {
			return signal{isConst: true, constV: small.IsConst1()}
		}
		newFanins := make([]int, small.NumVars)
		for i, oldVar := range keep {
			newFanins[i] = fanins[oldVar].id
		}
		// Buffer elision.
		if small.NumVars == 1 && small.Equal(logic.VarTT(1, 0)) {
			return signal{id: newFanins[0]}
		}
		// Structural hashing.
		key := fmt.Sprintf("%d:%x:%v", small.NumVars, small.Bits, newFanins)
		if id, ok := hash[key]; ok {
			return signal{id: id}
		}
		id := out.AddGate(name, small, newFanins...)
		hash[key] = id
		return signal{id: id}
	}

	for _, oldID := range n.TopoOrder() {
		nd := n.Nodes[oldID]
		switch nd.Kind {
		case netlist.KindInput:
			oldToNew[oldID] = signal{id: out.AddInput(nd.Name)}
		case netlist.KindLatch:
			if cv, ok := constLatch[oldID]; ok {
				oldToNew[oldID] = signal{isConst: true, constV: cv}
				continue
			}
			// Fanin may not be rewritten yet (latches can close cycles);
			// record a fixup.
			id := out.AddLatchPlaceholder(nd.Name, nd.Init)
			latchFixups = append(latchFixups, struct{ newID, oldFanin int }{id, nd.Fanins[0]})
			oldToNew[oldID] = signal{id: id}
		case netlist.KindGate:
			fanins := make([]signal, len(nd.Fanins))
			for i, f := range nd.Fanins {
				fanins[i] = oldToNew[f]
			}
			oldToNew[oldID] = emit(nd.Func, fanins, nd.Name)
		}
	}

	// Materialise constants on demand.
	constID := map[bool]int{}
	materialise := func(s signal) int {
		if !s.isConst {
			return s.id
		}
		if id, ok := constID[s.constV]; ok {
			return id
		}
		name := "const0"
		if s.constV {
			name = "const1"
		}
		id := out.AddGate(name, logic.ConstTT(0, s.constV))
		constID[s.constV] = id
		return id
	}

	for _, fx := range latchFixups {
		out.Nodes[fx.newID].Fanins[0] = materialise(oldToNew[fx.oldFanin])
	}
	for _, o := range n.Outputs {
		out.AddOutput(o.Name, materialise(oldToNew[o.Driver]))
	}
	return Sweep(out)
}

// detectConstLatches returns latches provably stuck at their initial value:
// the greatest fixpoint of "assume all latches constant at init, then
// repeatedly un-assume any latch whose data input does not evaluate to its
// init value under the current assumptions".
func detectConstLatches(n *netlist.Netlist) map[int]bool {
	cand := map[int]bool{}
	for _, nd := range n.Nodes {
		if nd.Kind == netlist.KindLatch {
			cand[nd.ID] = nd.Init
		}
	}
	order := n.TopoOrder()
	for changed := true; changed; {
		changed = false
		// Evaluate each node to (isConst, value) under assumptions.
		type cv struct {
			known bool
			v     bool
		}
		val := make([]cv, len(n.Nodes))
		for _, id := range order {
			nd := n.Nodes[id]
			switch nd.Kind {
			case netlist.KindInput:
				val[id] = cv{}
			case netlist.KindLatch:
				if v, ok := cand[id]; ok {
					val[id] = cv{known: true, v: v}
				}
			case netlist.KindGate:
				work := nd.Func
				allKnown := true
				for i, f := range nd.Fanins {
					if val[f].known {
						work = work.Cofactor(i, val[f].v)
					} else {
						allKnown = false
					}
				}
				if work.IsConst0() {
					val[id] = cv{known: true, v: false}
				} else if work.IsConst1() {
					val[id] = cv{known: true, v: true}
				} else if allKnown {
					panic("synth: fully-known gate not constant")
				}
			}
		}
		for _, nd := range n.Nodes {
			if nd.Kind != netlist.KindLatch {
				continue
			}
			want, ok := cand[nd.ID]
			if !ok {
				continue
			}
			d := val[nd.Fanins[0]]
			if !d.known || d.v != want {
				delete(cand, nd.ID)
				changed = true
			}
		}
	}
	return cand
}

// Sweep removes nodes not reachable from any primary output (walking
// through latch data inputs), preserving primary inputs.
func Sweep(n *netlist.Netlist) *netlist.Netlist {
	reach := make([]bool, len(n.Nodes))
	var visit func(int)
	visit = func(id int) {
		if reach[id] {
			return
		}
		reach[id] = true
		for _, f := range n.Nodes[id].Fanins {
			visit(f)
		}
	}
	for _, o := range n.Outputs {
		visit(o.Driver)
	}

	out := netlist.New(n.Name)
	oldToNew := make([]int, len(n.Nodes))
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	var latchFixups []struct{ newID, oldFanin int }
	for _, oldID := range n.TopoOrder() {
		nd := n.Nodes[oldID]
		switch nd.Kind {
		case netlist.KindInput:
			oldToNew[oldID] = out.AddInput(nd.Name) // inputs always kept (port list)
		case netlist.KindLatch:
			if !reach[oldID] {
				continue
			}
			id := out.AddLatchPlaceholder(nd.Name, nd.Init)
			latchFixups = append(latchFixups, struct{ newID, oldFanin int }{id, nd.Fanins[0]})
			oldToNew[oldID] = id
		case netlist.KindGate:
			if !reach[oldID] {
				continue
			}
			fanins := make([]int, len(nd.Fanins))
			for i, f := range nd.Fanins {
				fanins[i] = oldToNew[f]
				if fanins[i] < 0 {
					panic("synth: sweep ordering bug")
				}
			}
			oldToNew[oldID] = out.AddGate(nd.Name, nd.Func, fanins...)
		}
	}
	for _, fx := range latchFixups {
		out.Nodes[fx.newID].Fanins[0] = oldToNew[fx.oldFanin]
	}
	for _, o := range n.Outputs {
		out.AddOutput(o.Name, oldToNew[o.Driver])
	}
	return out
}
