package place

import (
	"testing"

	"repro/internal/arch"
)

func TestPlaceFromInit(t *testing.T) {
	a := arch.New(6, 6, 4)
	p := ringProblem(20)
	// First get any placement, then refine it.
	base, err := Place(p, a, Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Place(p, a, Options{Seed: 2, Effort: 0.2, Init: base.SiteOf})
	if err != nil {
		t.Fatal(err)
	}
	validatePlacement(t, p, a, refined)
	// Refinement at low temperature must not destroy a good placement.
	if refined.Cost > base.Cost*1.15 {
		t.Errorf("refinement worsened cost: %.1f -> %.1f", base.Cost, refined.Cost)
	}
}

func TestPlaceInitValidation(t *testing.T) {
	a := arch.New(4, 4, 4)
	p := ringProblem(4)
	sites := a.CLBSites()

	// Wrong length.
	if _, err := Place(p, a, Options{Init: sites[:2]}); err == nil {
		t.Error("short init accepted")
	}
	// Duplicate site.
	dup := []arch.Site{sites[0], sites[0], sites[1], sites[2]}
	if _, err := Place(p, a, Options{Init: dup}); err == nil {
		t.Error("duplicate init site accepted")
	}
	// Wrong class: logic cell on a pad site.
	bad := []arch.Site{a.IOSites()[0], sites[1], sites[2], sites[3]}
	if _, err := Place(p, a, Options{Init: bad}); err == nil {
		t.Error("class mismatch accepted")
	}
}

func TestRefineDeterministic(t *testing.T) {
	a := arch.New(5, 5, 4)
	p := ringProblem(12)
	base, err := Place(p, a, Options{Seed: 3, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Place(p, a, Options{Seed: 4, Effort: 0.2, Init: base.SiteOf})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Place(p, a, Options{Seed: 4, Effort: 0.2, Init: base.SiteOf})
	if err != nil {
		t.Fatal(err)
	}
	for c := range r1.SiteOf {
		if r1.SiteOf[c] != r2.SiteOf[c] {
			t.Fatal("refinement not deterministic")
		}
	}
}
