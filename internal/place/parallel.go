// Batched parallel-move support: state implements anneal.BatchMover, so
// the kernel proposes fixed-size batches of swaps, evaluates them
// concurrently against the frozen placement, and commits serially in slot
// order with position-footprint conflict detection.
//
// The load-bearing contract is EvalSlot ≡ ApplySlot on unchanged state:
// the frozen evaluation must reproduce applySwap's delta BIT-identically
// (same affected-net order, same box-update/rescan decisions, same float
// accumulation order), or accept decisions — and with them whole seeded
// trajectories — would depend on which phase evaluated a move. The
// property tests in parallel_test.go pin this equivalence down move by
// move.
package place

import (
	"math"
	"math/rand"
)

// slotMove is one recorded batch proposal: a position pair to swap.
type slotMove struct {
	posA, posB int
}

// evalScratch is one worker's frozen-evaluation scratch: flags dedups the
// affected-net list while remembering HOW each net is touched (bit 1: via
// posA's occupant, bit 2: via posB's occupant — the box simulation must
// replay the same per-cell update sequence applySwap would), nets holds
// the insertion-ordered list.
type evalScratch struct {
	flags []uint8
	nets  []int
}

// SetupBatch implements anneal.BatchMover.
func (st *state) SetupBatch(workers, slots int) {
	st.slots = make([]slotMove, slots)
	st.scratch = make([]evalScratch, workers)
	for w := range st.scratch {
		st.scratch[w] = evalScratch{flags: make([]uint8, len(st.p.Nets))}
	}
}

// Propose implements anneal.BatchMover: the same pick (and rng draw
// sequence) as TryMove, recorded instead of applied.
func (st *state) Propose(rng *rand.Rand, rlim float64, slot int) bool {
	posA, posB, ok := st.pickMove(rng, rlim)
	if !ok {
		return false
	}
	st.slots[slot] = slotMove{posA, posB}
	return true
}

// Claims implements anneal.BatchMover. A swap's full mutation footprint
// is its two positions: commits with disjoint position pairs move
// disjoint cells, and since every pair is same-class by construction a
// requeued swap stays legal no matter what earlier commits did to its
// occupants. (Net costs of untouched positions can still shift — the
// frozen delta of a non-conflicting move may be stale — but staleness is
// decided by batch composition alone, identically at every worker count.)
func (st *state) Claims(slot int, buf []int64) []int64 {
	s := st.slots[slot]
	return append(buf, int64(s.posA), int64(s.posB))
}

// ApplySlot implements anneal.BatchMover: apply the recorded swap against
// live state, exactly like TryMove, leaving it applied for Undo.
func (st *state) ApplySlot(slot int) float64 {
	s := st.slots[slot]
	st.mvA, st.mvB = s.posA, s.posB
	return st.applySwap(s.posA, s.posB)
}

// EvalSlot implements anneal.BatchMover: applySwap's cost delta computed
// read-only against the frozen placement, using worker w's scratch. It
// replays applySwap's exact sequence on a simulated view — occupant of
// posA at posB's coordinates and vice versa, one cell "moved" at a time
// for the box updates — so the result matches a real applySwap on this
// state bit for bit.
func (st *state) EvalSlot(slot, w int) float64 {
	s := st.slots[slot]
	sc := &st.scratch[w]
	ca, cb := st.cellAt[s.posA], st.cellAt[s.posB]
	ax, ay := st.posX[s.posA], st.posY[s.posA]
	bx, by := st.posX[s.posB], st.posY[s.posB]

	// Affected nets in applySwap's insertion order: ca's nets, then cb's.
	nets := sc.nets[:0]
	flags := sc.flags
	if ca >= 0 {
		for _, ni := range st.netsOf[ca] {
			if flags[ni] == 0 {
				nets = append(nets, ni)
			}
			flags[ni] |= 1
		}
	}
	if cb >= 0 {
		for _, ni := range st.netsOf[cb] {
			if flags[ni] == 0 {
				nets = append(nets, ni)
			}
			flags[ni] |= 2
		}
	}
	delta := 0.0
	for _, ni := range nets {
		f := flags[ni]
		flags[ni] = 0
		var nc float64
		if st.small[ni] {
			nc = st.scanCostWith(ni, ca, bx, by, cb, ax, ay)
		} else {
			// Replay applySwap's box maintenance on a copy: first ca's
			// move (a shrink-rescan here sees ca moved, cb not yet —
			// applySwap moves the cells one at a time), then cb's.
			b := st.boxes[ni]
			if f&1 != 0 {
				if !boxStep(&b, ax, ay, bx, by) {
					b = st.computeBoxWith(ni, ca, bx, by, -1, 0, 0)
				}
			}
			if f&2 != 0 {
				if !boxStep(&b, bx, by, ax, ay) {
					b = st.computeBoxWith(ni, ca, bx, by, cb, ax, ay)
				}
			}
			if b.nMinX == 0 {
				nc = 0
			} else {
				nc = st.wq[ni] * float64((b.maxX-b.minX)+(b.maxY-b.minY))
			}
		}
		delta += nc - st.netCost[ni]
	}
	sc.nets = nets
	return delta
}

// scanCostWith is scanCost with the coordinates of up to two cells
// overridden (pass -1 to disable an override) — the frozen view of a
// small net after the proposed swap. Same loop, same comparison chain.
func (st *state) scanCostWith(ni, ca int, cax, cay int32, cb int, cbx, cby int32) float64 {
	cells := st.p.Nets[ni].Cells
	if len(cells) == 0 {
		return 0
	}
	at := func(c int) (int32, int32) {
		if c == ca {
			return cax, cay
		}
		if c == cb {
			return cbx, cby
		}
		return st.cellX[c], st.cellY[c]
	}
	minX, minY := at(cells[0])
	maxX, maxY := minX, minY
	for _, c := range cells[1:] {
		x, y := at(c)
		if x < minX {
			minX = x
		} else if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		} else if y > maxY {
			maxY = y
		}
	}
	return st.wq[ni] * float64((maxX-minX)+(maxY-minY))
}

// computeBoxWith is computeBox with the coordinates of up to two cells
// overridden (pass -1 to disable an override) — the frozen-view rescan
// fallback when a simulated box update vacates an edge.
func (st *state) computeBoxWith(ni, c1 int, x1, y1 int32, c2 int, x2, y2 int32) netBox {
	cells := st.p.Nets[ni].Cells
	if len(cells) == 0 {
		return netBox{}
	}
	var b netBox
	b.minX, b.minY = math.MaxInt32, math.MaxInt32
	b.maxX, b.maxY = math.MinInt32, math.MinInt32
	for _, c := range cells {
		xx, yy := st.cellX[c], st.cellY[c]
		if c == c1 {
			xx, yy = x1, y1
		} else if c == c2 {
			xx, yy = x2, y2
		}
		switch {
		case xx < b.minX:
			b.minX, b.nMinX = xx, 1
		case xx == b.minX:
			b.nMinX++
		}
		switch {
		case xx > b.maxX:
			b.maxX, b.nMaxX = xx, 1
		case xx == b.maxX:
			b.nMaxX++
		}
		switch {
		case yy < b.minY:
			b.minY, b.nMinY = yy, 1
		case yy == b.minY:
			b.nMinY++
		}
		switch {
		case yy > b.maxY:
			b.maxY, b.nMaxY = yy, 1
		case yy == b.maxY:
			b.nMaxY++
		}
	}
	return b
}
