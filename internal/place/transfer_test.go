package place

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arch"
)

// transferProblem builds a small mixed CLB/IO problem with a few nets.
func transferProblem(cells int) *Problem {
	p := &Problem{}
	for i := 0; i < cells; i++ {
		p.Cells = append(p.Cells, Cell{Name: "c", IsIO: i%4 == 0})
	}
	for i := 0; i+3 < cells; i += 2 {
		p.Nets = append(p.Nets, Net{Cells: []int{i, i + 1, i + 3}})
	}
	return p
}

func TestTransferInitIdentity(t *testing.T) {
	a := arch.New(6, 6, 4)
	p := transferProblem(16)
	base, err := Place(p, a, Options{Seed: 3, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	match := make([]int, len(p.Cells))
	for i := range match {
		match[i] = i
	}
	init, inherited, err := TransferInit(p, a, match, base.SiteOf)
	if err != nil {
		t.Fatal(err)
	}
	if inherited != len(p.Cells) {
		t.Fatalf("identity transfer inherited %d/%d sites", inherited, len(p.Cells))
	}
	if !reflect.DeepEqual(init, base.SiteOf) {
		t.Fatalf("identity transfer moved cells:\n got %v\nwant %v", init, base.SiteOf)
	}
}

func TestTransferInitPartialSeedsWarmStart(t *testing.T) {
	a := arch.New(6, 6, 4)
	p := transferProblem(16)
	base, err := Place(p, a, Options{Seed: 3, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Drop a third of the matches, as if those cells were added by an
	// edit; greedy placement must fill them on legal free sites.
	rnd := rand.New(rand.NewSource(7))
	match := make([]int, len(p.Cells))
	for i := range match {
		match[i] = i
		if rnd.Intn(3) == 0 {
			match[i] = -1
		}
	}
	init, inherited, err := TransferInit(p, a, match, base.SiteOf)
	if err != nil {
		t.Fatal(err)
	}
	if inherited >= len(p.Cells) || inherited == 0 {
		t.Fatalf("partial transfer inherited %d/%d sites", inherited, len(p.Cells))
	}
	// Deterministic: a second call is byte-identical.
	init2, _, err := TransferInit(p, a, match, base.SiteOf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(init, init2) {
		t.Fatal("TransferInit is not deterministic")
	}
	// The init must be accepted by the warm-start annealer (newState
	// validates class, occupancy and site existence).
	warm, err := Place(p, a, Options{Seed: 3, Effort: 0.2, Init: init, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cost <= 0 {
		t.Fatalf("warm placement cost %v", warm.Cost)
	}
	// Matched cells inherit their exact baseline site.
	for c := range p.Cells {
		if match[c] >= 0 && init[c] != base.SiteOf[c] {
			t.Fatalf("cell %d lost its baseline site: %v -> %v", c, base.SiteOf[c], init[c])
		}
	}
}
