package place

import (
	"repro/internal/lutnet"
)

// CircuitCells maps a mapped circuit onto placement cells: one cell per
// logic block, one pad cell per PI and one per PO. Cell indexing:
// blocks [0, B), PIs [B, B+P), POs [B+P, B+P+O).
type CircuitCells struct {
	Circuit *lutnet.Circuit
	NumBlk  int
	NumPI   int
	NumPO   int
}

// BlockCell returns the cell index of logic block b.
func (cc CircuitCells) BlockCell(b int) int { return b }

// PICell returns the cell index of primary input pi.
func (cc CircuitCells) PICell(pi int) int { return cc.NumBlk + pi }

// POCell returns the cell index of primary output po.
func (cc CircuitCells) POCell(po int) int { return cc.NumBlk + cc.NumPI + po }

// SourceCell returns the cell driving the given signal source.
func (cc CircuitCells) SourceCell(s lutnet.Source) int {
	if s.Kind == lutnet.SrcPI {
		return cc.PICell(s.Idx)
	}
	return cc.BlockCell(s.Idx)
}

// CellsOf returns the cell partition of a circuit without building the
// placement problem — what a cache needs when the annealed placement
// itself comes from the artifact store and only the index mapping must be
// rebuilt.
func CellsOf(c *lutnet.Circuit) CircuitCells {
	return CircuitCells{Circuit: c, NumBlk: len(c.Blocks), NumPI: len(c.PINames), NumPO: len(c.POs)}
}

// FromCircuit builds a placement problem from a mapped circuit: every net
// becomes a bounding-box net over its driver and sink cells.
func FromCircuit(c *lutnet.Circuit) (*Problem, CircuitCells) {
	cc := CellsOf(c)
	p := &Problem{}
	for i := range c.Blocks {
		p.Cells = append(p.Cells, Cell{Name: c.Blocks[i].Name})
	}
	for _, nm := range c.PINames {
		p.Cells = append(p.Cells, Cell{Name: nm, IsIO: true})
	}
	for _, po := range c.POs {
		p.Cells = append(p.Cells, Cell{Name: po.Name, IsIO: true})
	}
	for _, nt := range c.Nets() {
		cells := []int{cc.SourceCell(nt.Src)}
		seen := map[int]bool{cells[0]: true}
		for _, bp := range nt.BlockIn {
			c := cc.BlockCell(bp.Block)
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
		for _, po := range nt.POSinks {
			c := cc.POCell(po)
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
		if len(cells) > 1 {
			p.Nets = append(p.Nets, Net{Cells: cells, Weight: 1})
		}
	}
	return p, cc
}
