package place

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
)

// randomProblem builds a problem with multi-terminal nets (2–6 pins) over
// logic and IO cells, the shape that exercises every box-update path:
// growth, interior moves, and recompute-on-shrink.
func randomProblem(seed int64, nBlocks, nIO, nNets int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &Problem{}
	for i := 0; i < nBlocks; i++ {
		p.Cells = append(p.Cells, Cell{Name: fmt.Sprintf("b%d", i)})
	}
	for i := 0; i < nIO; i++ {
		p.Cells = append(p.Cells, Cell{Name: fmt.Sprintf("io%d", i), IsIO: true})
	}
	for i := 0; i < nNets; i++ {
		n := 2 + rng.Intn(5)
		seen := map[int]bool{}
		var cells []int
		for len(cells) < n {
			c := rng.Intn(len(p.Cells))
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
		w := 1.0
		if rng.Intn(4) == 0 {
			w = 1 + rng.Float64()
		}
		p.Nets = append(p.Nets, Net{Cells: cells, Weight: w})
	}
	return p
}

// checkAgainstRecompute asserts that every incrementally maintained net
// cost (and the summed total) equals a from-scratch HPWL recompute.
func checkAgainstRecompute(t *testing.T, st *state, step int) {
	t.Helper()
	total := 0.0
	for ni, n := range st.p.Nets {
		w := n.Weight
		if w == 0 {
			w = 1
		}
		want := HPWL(n.Cells, w, st.loc)
		if st.netCost[ni] != want {
			t.Fatalf("step %d: net %d incremental cost %v != recomputed %v", step, ni, st.netCost[ni], want)
		}
		total += st.netCost[ni]
	}
	if got := st.totalCost(); got != total {
		t.Fatalf("step %d: totalCost %v != summed %v", step, got, total)
	}
}

// TestIncrementalCostMatchesRecompute drives the placer's move engine
// through a random accepted/rejected sequence and verifies the
// incremental bounding-box costs against from-scratch recomputation.
func TestIncrementalCostMatchesRecompute(t *testing.T) {
	a := arch.New(7, 7, 4)
	p := randomProblem(41, 30, 16, 60)
	rng := rand.New(rand.NewSource(42))
	st, err := newState(p, a.CLBSites(), a.IOSites(), rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, st, -1)
	for i := 0; i < 4000; i++ {
		rlim := 1 + rng.Float64()*float64(a.Width+a.Height)
		d, ok := st.TryMove(rng, rlim)
		if !ok {
			continue
		}
		if rng.Intn(2) == 0 {
			st.Undo()
		}
		_ = d
		if i%97 == 0 {
			checkAgainstRecompute(t, st, i)
		}
	}
	checkAgainstRecompute(t, st, 4000)
}

// TestTryMoveDeltaConsistent verifies that the delta returned by TryMove
// equals the actual change of the from-scratch total, and that Undo
// restores it exactly.
func TestTryMoveDeltaConsistent(t *testing.T) {
	a := arch.New(6, 6, 4)
	p := randomProblem(7, 20, 12, 40)
	rng := rand.New(rand.NewSource(8))
	st, err := newState(p, a.CLBSites(), a.IOSites(), rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		before := st.totalCost()
		d, ok := st.TryMove(rng, 5)
		if !ok {
			continue
		}
		after := st.totalCost()
		if diff := after - before - d; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("step %d: delta %v but total moved by %v", i, d, after-before)
		}
		st.Undo()
		if got := st.totalCost(); got != before {
			t.Fatalf("step %d: undo left total %v, want %v", i, got, before)
		}
	}
}

// TestPlacementDeterministicWithCost is the same-seed contract at the
// Placement level: identical sites and identical cost, fresh and refined.
func TestPlacementDeterministicWithCost(t *testing.T) {
	a := arch.New(7, 7, 4)
	p := randomProblem(11, 24, 14, 50)
	run := func(opt Options) *Placement {
		pl, err := Place(p, a, opt)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	p1, p2 := run(Options{Seed: 3, Effort: 0.3}), run(Options{Seed: 3, Effort: 0.3})
	if p1.Cost != p2.Cost {
		t.Fatalf("same seed, costs %v vs %v", p1.Cost, p2.Cost)
	}
	for c := range p1.SiteOf {
		if p1.SiteOf[c] != p2.SiteOf[c] {
			t.Fatalf("same seed, cell %d placed differently", c)
		}
	}
	r1 := run(Options{Seed: 9, Effort: 0.2, Init: p1.SiteOf})
	r2 := run(Options{Seed: 9, Effort: 0.2, Init: p2.SiteOf})
	if r1.Cost != r2.Cost {
		t.Fatalf("same refine seed, costs %v vs %v", r1.Cost, r2.Cost)
	}
	for c := range r1.SiteOf {
		if r1.SiteOf[c] != r2.SiteOf[c] {
			t.Fatalf("same refine seed, cell %d placed differently", c)
		}
	}
}
