package place

import (
	"fmt"

	"repro/internal/arch"
)

// TransferInit builds an initial placement for prob from a baseline
// placement of an earlier design version — the ECO placement transfer.
// match[c] names the baseline cell whose site cell c inherits (-1 for
// none), and baseSites holds the baseline's per-cell sites. Matched cells
// keep their baseline site when it is legal for them (exists in a, right
// class, not already claimed); every other cell is placed greedily in cell
// index order on the free same-class site nearest the centroid of its
// already-placed net neighbors (first free site when it has none). The
// result seeds Place with Options.Init + WarmStart. Returns the init
// sites and the number of cells that inherited a baseline site.
//
// The construction reads only prob, match and baseSites in fixed index
// order, so it is deterministic; legality is re-validated by newState.
func TransferInit(prob *Problem, a arch.Arch, match []int, baseSites []arch.Site) ([]arch.Site, int, error) {
	if len(match) != len(prob.Cells) {
		return nil, 0, fmt.Errorf("place: transfer match covers %d cells, want %d", len(match), len(prob.Cells))
	}
	clbSites := a.CLBSites()
	ioSites := a.IOSites()
	posBySite := make(map[arch.Site]int, len(clbSites)+len(ioSites))
	for i, s := range clbSites {
		posBySite[s] = i
	}
	for i, s := range ioSites {
		posBySite[s] = len(clbSites) + i
	}
	taken := make([]bool, len(clbSites)+len(ioSites))

	init := make([]arch.Site, len(prob.Cells))
	placed := make([]bool, len(prob.Cells))
	inherited := 0
	for c := range prob.Cells {
		o := match[c]
		if o < 0 || o >= len(baseSites) {
			continue
		}
		s := baseSites[o]
		pos, ok := posBySite[s]
		if !ok || taken[pos] || s.IsIO != prob.Cells[c].IsIO {
			continue
		}
		init[c] = s
		placed[c] = true
		taken[pos] = true
		inherited++
	}

	// Net adjacency for centroid targeting of the unplaced cells.
	netsOf := make([][]int, len(prob.Cells))
	for ni := range prob.Nets {
		for _, c := range prob.Nets[ni].Cells {
			netsOf[c] = append(netsOf[c], ni)
		}
	}
	for c := range prob.Cells {
		if placed[c] {
			continue
		}
		tx, ty := float64(a.Width+1)/2, float64(a.Height+1)/2
		sumX, sumY, n := 0, 0, 0
		for _, ni := range netsOf[c] {
			for _, other := range prob.Nets[ni].Cells {
				if other != c && placed[other] {
					sumX += init[other].X
					sumY += init[other].Y
					n++
				}
			}
		}
		if n > 0 {
			tx, ty = float64(sumX)/float64(n), float64(sumY)/float64(n)
		}
		sites, base := clbSites, 0
		if prob.Cells[c].IsIO {
			sites, base = ioSites, len(clbSites)
		}
		best, bestDist := -1, 0.0
		for i, s := range sites {
			if taken[base+i] {
				continue
			}
			d := abs64(float64(s.X)-tx) + abs64(float64(s.Y)-ty)
			if best < 0 || d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			return nil, 0, fmt.Errorf("place: transfer ran out of %s sites at cell %d",
				map[bool]string{true: "pad", false: "CLB"}[prob.Cells[c].IsIO], c)
		}
		init[c] = sites[best]
		placed[c] = true
		taken[base+best] = true
	}
	return init, inherited, nil
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
