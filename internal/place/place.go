// Package place implements a VPR-style wirelength-driven simulated-
// annealing placer for island FPGAs: half-perimeter bounding-box cost with
// the q(n) pin-count correction, an adaptive temperature schedule, and
// range-limited swap moves. The same engine places ordinary mapped
// circuits (the MDR flow), and Tunable circuits after merging (TPlace) —
// both reduce to the generic cell/net Problem below.
package place

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
)

// Cell is a movable object: a logic block (CLB site) or an I/O (pad site).
type Cell struct {
	Name string
	IsIO bool
}

// Net connects a set of cells; the bounding box over their locations gives
// its wirelength estimate.
type Net struct {
	Cells  []int
	Weight float64
}

// Problem is a placement instance.
type Problem struct {
	Cells []Cell
	Nets  []Net
}

// Placement assigns every cell a site.
type Placement struct {
	SiteOf []arch.Site
	Cost   float64
}

// QFactor compensates HPWL underestimation for multi-terminal nets
// (Cheng/VPR table: 1.0 up to 3 terminals, growing to 2.79 at 50).
func QFactor(terminals int) float64 {
	q := []float64{
		1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
		1.4493, 1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
		1.8924, 1.9288, 1.9652, 2.0015, 2.0379, 2.0743, 2.1061, 2.1379, 2.1698, 2.2016,
		2.2334, 2.2646, 2.2958, 2.3271, 2.3583, 2.3895, 2.4187, 2.4479, 2.4772, 2.5064,
		2.5356, 2.5610, 2.5864, 2.6117, 2.6371, 2.6625, 2.6887, 2.7148, 2.7410, 2.7671,
		2.7933,
	}
	if terminals < len(q) {
		return q[terminals]
	}
	return q[len(q)-1] + 0.02616*float64(terminals-len(q)+1)
}

// HPWL returns the q-corrected half-perimeter wirelength of one net under
// the location function loc.
func HPWL(cells []int, weight float64, loc func(int) (int, int)) float64 {
	if len(cells) == 0 {
		return 0
	}
	minX, minY := math.MaxInt32, math.MaxInt32
	maxX, maxY := math.MinInt32, math.MinInt32
	for _, c := range cells {
		x, y := loc(c)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	return weight * QFactor(len(cells)) * float64((maxX-minX)+(maxY-minY))
}

// Options tunes the annealer.
type Options struct {
	Seed   int64
	Effort float64 // scales moves per temperature; 1.0 ≈ VPR inner_num 10
	// Init seeds the annealer with an existing placement (one site per
	// cell) instead of a random start; the schedule then opens at a
	// refinement temperature so the seed is improved, not destroyed.
	Init []arch.Site
	// RefineTempFraction scales the usual starting temperature when Init
	// is set (default 0.1).
	RefineTempFraction float64
}

// Place runs simulated annealing and returns a legal placement.
func Place(p *Problem, a arch.Arch, opt Options) (*Placement, error) {
	if opt.Effort <= 0 {
		opt.Effort = 1.0
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	clbSites := a.CLBSites()
	ioSites := a.IOSites()
	nCLBCells, nIOCells := 0, 0
	for _, c := range p.Cells {
		if c.IsIO {
			nIOCells++
		} else {
			nCLBCells++
		}
	}
	if nCLBCells > len(clbSites) {
		return nil, fmt.Errorf("place: %d logic cells exceed %d CLB sites", nCLBCells, len(clbSites))
	}
	if nIOCells > len(ioSites) {
		return nil, fmt.Errorf("place: %d IO cells exceed %d pad sites", nIOCells, len(ioSites))
	}

	st, err := newState(p, clbSites, ioSites, rng, opt.Init)
	if err != nil {
		return nil, err
	}
	anneal(st, a, opt, rng)

	pl := &Placement{SiteOf: make([]arch.Site, len(p.Cells))}
	for c := range p.Cells {
		pl.SiteOf[c] = st.siteAt(st.posOf[c])
	}
	pl.Cost = st.totalCost()
	return pl, nil
}

// state holds occupancy and incremental cost bookkeeping. Site positions
// are flattened: CLB sites first, then IO sites.
type state struct {
	p        *Problem
	clbSites []arch.Site
	ioSites  []arch.Site
	posOf    []int // cell -> position
	cellAt   []int // position -> cell (-1 empty)
	netsOf   [][]int
	netCost  []float64
	// Swap-evaluation scratch, reused across moves: netSeen dedups the
	// affected-net list, netsBuf holds it, oldCost (parallel to netsBuf)
	// the pre-move costs undoSwap restores. A deterministic (insertion-
	// ordered) list matters beyond speed — summing the cost delta in map
	// iteration order would make annealing outcomes vary run to run,
	// because float addition is not associative.
	netSeen []bool
	netsBuf []int
	oldCost []float64
}

func newState(p *Problem, clbSites, ioSites []arch.Site, rng *rand.Rand, init []arch.Site) (*state, error) {
	st := &state{
		p:        p,
		clbSites: clbSites,
		ioSites:  ioSites,
		posOf:    make([]int, len(p.Cells)),
		cellAt:   make([]int, len(clbSites)+len(ioSites)),
		netsOf:   make([][]int, len(p.Cells)),
		netCost:  make([]float64, len(p.Nets)),
		netSeen:  make([]bool, len(p.Nets)),
	}
	for i := range st.cellAt {
		st.cellAt[i] = -1
	}
	if init != nil {
		if len(init) != len(p.Cells) {
			return nil, fmt.Errorf("place: init covers %d cells, want %d", len(init), len(p.Cells))
		}
		posBySite := map[arch.Site]int{}
		for i, s := range clbSites {
			posBySite[s] = i
		}
		for i, s := range ioSites {
			posBySite[s] = len(clbSites) + i
		}
		for c, s := range init {
			pos, ok := posBySite[s]
			if !ok {
				return nil, fmt.Errorf("place: init site %v not in architecture", s)
			}
			if st.cellAt[pos] >= 0 {
				return nil, fmt.Errorf("place: init places two cells on %v", s)
			}
			if p.Cells[c].IsIO != s.IsIO {
				return nil, fmt.Errorf("place: init puts cell %d on wrong site class %v", c, s)
			}
			st.place(c, pos)
		}
	} else {
		// Random legal initial placement.
		clbPerm := rng.Perm(len(clbSites))
		ioPerm := rng.Perm(len(ioSites))
		ci, ii := 0, 0
		for c := range p.Cells {
			if p.Cells[c].IsIO {
				st.place(c, len(clbSites)+ioPerm[ii])
				ii++
			} else {
				st.place(c, clbPerm[ci])
				ci++
			}
		}
	}
	for ni, n := range p.Nets {
		for _, c := range n.Cells {
			st.netsOf[c] = append(st.netsOf[c], ni)
		}
		st.netCost[ni] = st.costOf(ni)
	}
	return st, nil
}

func (st *state) place(c, pos int) {
	st.posOf[c] = pos
	st.cellAt[pos] = c
}

func (st *state) siteAt(pos int) arch.Site {
	if pos < len(st.clbSites) {
		return st.clbSites[pos]
	}
	return st.ioSites[pos-len(st.clbSites)]
}

func (st *state) loc(c int) (int, int) {
	s := st.siteAt(st.posOf[c])
	return s.X, s.Y
}

func (st *state) costOf(ni int) float64 {
	n := st.p.Nets[ni]
	w := n.Weight
	if w == 0 {
		w = 1
	}
	return HPWL(n.Cells, w, st.loc)
}

func (st *state) totalCost() float64 {
	t := 0.0
	for _, c := range st.netCost {
		t += c
	}
	return t
}

// swapDelta swaps the contents of two positions (either may be empty),
// updates netCost for the affected nets, and returns the cost delta along
// with the affected-net list (valid until the next swapDelta call). The
// move is left applied: an accepted move needs nothing further, a rejected
// one is reverted with undoSwap. The affected list is built in
// deterministic insertion order and allocation-free via the state's
// scratch buffers.
func (st *state) swapDelta(posA, posB int) (float64, []int) {
	ca, cb := st.cellAt[posA], st.cellAt[posB]
	nets := st.netsBuf[:0]
	add := func(c int) {
		for _, ni := range st.netsOf[c] {
			if !st.netSeen[ni] {
				st.netSeen[ni] = true
				nets = append(nets, ni)
			}
		}
	}
	if ca >= 0 {
		add(ca)
	}
	if cb >= 0 {
		add(cb)
	}
	// Apply move.
	st.cellAt[posA], st.cellAt[posB] = cb, ca
	if ca >= 0 {
		st.posOf[ca] = posB
	}
	if cb >= 0 {
		st.posOf[cb] = posA
	}
	delta := 0.0
	st.oldCost = st.oldCost[:0]
	for _, ni := range nets {
		st.netSeen[ni] = false
		nc := st.costOf(ni)
		st.oldCost = append(st.oldCost, st.netCost[ni])
		delta += nc - st.netCost[ni]
		st.netCost[ni] = nc
	}
	st.netsBuf = nets
	return delta, nets
}

// undoSwap reverts the last swapDelta: the swap itself and the netCost
// entries of its affected nets (nets must be swapDelta's return value).
func (st *state) undoSwap(posA, posB int, nets []int) {
	ca, cb := st.cellAt[posA], st.cellAt[posB]
	st.cellAt[posA], st.cellAt[posB] = cb, ca
	if ca >= 0 {
		st.posOf[ca] = posB
	}
	if cb >= 0 {
		st.posOf[cb] = posA
	}
	for i, ni := range nets {
		st.netCost[ni] = st.oldCost[i]
	}
}

// Schedule holds the adaptive annealing parameters shared with the
// combined placer in package merge.
type Schedule struct {
	T      float64
	RLim   float64
	Moves  int
	accept int
	tried  int
}

// NewSchedule seeds the schedule from an initial cost standard deviation
// (VPR: T0 = 20 σ) and the device span.
func NewSchedule(sigma float64, span int, nCells int, effort float64) *Schedule {
	t0 := 20 * sigma
	if t0 <= 0 {
		t0 = 1
	}
	moves := int(effort * 10 * math.Pow(float64(nCells), 4.0/3.0))
	if moves < 64 {
		moves = 64
	}
	return &Schedule{T: t0, RLim: float64(span), Moves: moves}
}

// Record notes one attempted move and whether it was accepted.
func (s *Schedule) Record(accepted bool) {
	s.tried++
	if accepted {
		s.accept++
	}
}

// Next advances the temperature and range limit after one round of moves,
// reporting whether annealing should continue given the current
// cost-per-net scale.
func (s *Schedule) Next(costPerNet float64, span int) bool {
	alphaAccept := 0.0
	if s.tried > 0 {
		alphaAccept = float64(s.accept) / float64(s.tried)
	}
	var gamma float64
	switch {
	case alphaAccept > 0.96:
		gamma = 0.5
	case alphaAccept > 0.8:
		gamma = 0.9
	case alphaAccept > 0.15:
		gamma = 0.95
	default:
		gamma = 0.8
	}
	s.T *= gamma
	// Range limit tracks 44% acceptance (Lam/VPR).
	s.RLim *= 1 - 0.44 + alphaAccept
	if s.RLim < 1 {
		s.RLim = 1
	}
	if s.RLim > float64(span) {
		s.RLim = float64(span)
	}
	s.accept, s.tried = 0, 0
	return s.T >= 0.005*costPerNet
}

func anneal(st *state, a arch.Arch, opt Options, rng *rand.Rand) {
	nCells := len(st.p.Cells)
	if nCells == 0 || len(st.p.Nets) == 0 {
		return
	}
	span := a.Width + a.Height

	// Estimate initial temperature from probed (and undone) swap deltas.
	var deltas []float64
	for i := 0; i < nCells; i++ {
		posA, posB, ok := pickMove(st, rng, float64(span))
		if !ok {
			continue
		}
		d, nets := st.swapDelta(posA, posB)
		deltas = append(deltas, d)
		st.undoSwap(posA, posB, nets)
	}
	sigma := stddev(deltas)
	sch := NewSchedule(sigma, span, nCells, opt.Effort)
	if opt.Init != nil {
		frac := opt.RefineTempFraction
		if frac <= 0 {
			frac = 0.1
		}
		sch.T *= frac
		sch.RLim = float64(span) / 4
		if sch.RLim < 1 {
			sch.RLim = 1
		}
	}

	for {
		for m := 0; m < sch.Moves; m++ {
			posA, posB, ok := pickMove(st, rng, sch.RLim)
			if !ok {
				continue
			}
			d, nets := st.swapDelta(posA, posB)
			if d <= 0 || rng.Float64() < math.Exp(-d/sch.T) {
				sch.Record(true)
			} else {
				st.undoSwap(posA, posB, nets)
				sch.Record(false)
			}
		}
		costPerNet := st.totalCost() / float64(len(st.p.Nets))
		if !sch.Next(costPerNet, span) {
			break
		}
	}
}

// pickMove selects a random occupied position and a partner position of the
// same class (CLB or IO) within the range limit.
func pickMove(st *state, rng *rand.Rand, rlim float64) (int, int, bool) {
	c := rng.Intn(len(st.p.Cells))
	posA := st.posOf[c]
	isIO := st.p.Cells[c].IsIO
	var posB int
	if isIO {
		posB = len(st.clbSites) + rng.Intn(len(st.ioSites))
	} else {
		// Range-limited CLB target.
		sa := st.siteAt(posA)
		r := int(rlim)
		if r < 1 {
			r = 1
		}
		x := clamp(sa.X+rng.Intn(2*r+1)-r, 1, widthOf(st))
		y := clamp(sa.Y+rng.Intn(2*r+1)-r, 1, heightOf(st))
		posB = (y-1)*widthOf(st) + (x - 1)
	}
	if posB == posA {
		return 0, 0, false
	}
	// Swapping with a same-class cell or empty slot only.
	if other := st.cellAt[posB]; other >= 0 && st.p.Cells[other].IsIO != isIO {
		return 0, 0, false
	}
	return posA, posB, true
}

func widthOf(st *state) int {
	last := st.clbSites[len(st.clbSites)-1]
	return last.X
}

func heightOf(st *state) int {
	last := st.clbSites[len(st.clbSites)-1]
	return last.Y
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return math.Sqrt(v / float64(len(xs)))
}
