// Package place implements a VPR-style wirelength-driven placer for
// island FPGAs: half-perimeter bounding-box cost with the q(n) pin-count
// correction and range-limited swap moves, driven by the shared
// simulated-annealing kernel in internal/anneal. The same engine places
// ordinary mapped circuits (the MDR flow), and Tunable circuits after
// merging (TPlace) — both reduce to the generic cell/net Problem below.
//
// The cost model is incremental and two-tier. Nets above smallNetPins
// carry a bounding box with per-edge occupancy counters, maintained in
// O(1) amortised per move — a full per-pin rescan happens only when a
// move vacates a box edge (recompute-on-shrink). That turns the
// high-fanout broadcast nets of the paper's workloads (a regex engine's
// char-match nets reach >150 pins) from a per-move rescan into a
// constant-time update. Small nets skip the counter upkeep — a few-pin
// min/max scan over the flat per-cell coordinate arrays is cheaper than
// maintaining, snapshotting and restoring counters, and on an island
// grid such nets have a lone cell on most box edges anyway, which would
// degenerate the counters into rescans.
package place

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/arch"
	"repro/internal/obs"
)

// Cell is a movable object: a logic block (CLB site) or an I/O (pad site).
type Cell struct {
	Name string
	IsIO bool
}

// Net connects a set of cells; the bounding box over their locations gives
// its wirelength estimate.
type Net struct {
	Cells  []int
	Weight float64
}

// Problem is a placement instance.
type Problem struct {
	Cells []Cell
	Nets  []Net
}

// Placement assigns every cell a site.
type Placement struct {
	SiteOf []arch.Site
	Cost   float64
}

// QFactor compensates HPWL underestimation for multi-terminal nets
// (Cheng/VPR table: 1.0 up to 3 terminals, growing to 2.79 at 50).
func QFactor(terminals int) float64 {
	q := []float64{
		1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
		1.4493, 1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
		1.8924, 1.9288, 1.9652, 2.0015, 2.0379, 2.0743, 2.1061, 2.1379, 2.1698, 2.2016,
		2.2334, 2.2646, 2.2958, 2.3271, 2.3583, 2.3895, 2.4187, 2.4479, 2.4772, 2.5064,
		2.5356, 2.5610, 2.5864, 2.6117, 2.6371, 2.6625, 2.6887, 2.7148, 2.7410, 2.7671,
		2.7933,
	}
	if terminals < len(q) {
		return q[terminals]
	}
	return q[len(q)-1] + 0.02616*float64(terminals-len(q)+1)
}

// HPWL returns the q-corrected half-perimeter wirelength of one net under
// the location function loc.
func HPWL(cells []int, weight float64, loc func(int) (int, int)) float64 {
	if len(cells) == 0 {
		return 0
	}
	minX, minY := math.MaxInt32, math.MaxInt32
	maxX, maxY := math.MinInt32, math.MinInt32
	for _, c := range cells {
		x, y := loc(c)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	return weight * QFactor(len(cells)) * float64((maxX-minX)+(maxY-minY))
}

// Options tunes the annealer.
type Options struct {
	Seed   int64
	Effort float64 // scales moves per temperature; 1.0 ≈ VPR inner_num 10
	// Init seeds the annealer with an existing placement (one site per
	// cell) instead of a random start; the schedule then opens at a
	// refinement temperature so the seed is improved, not destroyed.
	Init []arch.Site
	// RefineTempFraction scales the usual starting temperature when Init
	// is set (default 0.1).
	RefineTempFraction float64
	// WarmStart quenches Init at an even lower temperature and a tighter
	// range limit (see anneal.Config.WarmStart) — the ECO placement
	// transfer path, where Init is a baseline placement already near its
	// optimum and only the edited region should move.
	WarmStart bool
	// WarmStartTempFraction scales the starting temperature when
	// WarmStart is set (default 0.02).
	WarmStartTempFraction float64
	// Workers bounds the parallel evaluation of move batches. Results are
	// byte-identical at any worker count (see internal/anneal), so
	// Workers is a wall-clock knob only and stays out of artifact keys.
	Workers int
	// Starts anneals this many independently-seeded runs (Seed,
	// Seed+StartSeedStride, ...) sharing one worker pool, and returns the
	// best by the deterministic (cost, seed) tiebreak. 0 or 1 is a single
	// start. Starts changes results, so it IS part of artifact keys.
	Starts int
	// Obs forwards to anneal.Config.Obs: per-run move/accept counts land
	// as mm_anneal_* metrics. Wall-clock-only, never in artifact keys.
	Obs *obs.Registry
}

// Place runs simulated annealing and returns a legal placement.
func Place(p *Problem, a arch.Arch, opt Options) (*Placement, error) {
	if opt.Effort <= 0 {
		opt.Effort = 1.0
	}
	starts := opt.Starts
	if starts < 1 {
		starts = 1
	}

	clbSites := a.CLBSites()
	ioSites := a.IOSites()
	nCLBCells, nIOCells := 0, 0
	for _, c := range p.Cells {
		if c.IsIO {
			nIOCells++
		} else {
			nCLBCells++
		}
	}
	if nCLBCells > len(clbSites) {
		return nil, fmt.Errorf("place: %d logic cells exceed %d CLB sites", nCLBCells, len(clbSites))
	}
	if nIOCells > len(ioSites) {
		return nil, fmt.Errorf("place: %d IO cells exceed %d pad sites", nIOCells, len(ioSites))
	}

	var pool *anneal.Pool
	if opt.Workers > 1 {
		pool = anneal.NewPool(opt.Workers)
		defer pool.Close()
	}
	states := make([]*state, starts)
	costs := make([]float64, starts)
	seeds := make([]int64, starts)
	for i := range states {
		seed := opt.Seed + int64(i)*anneal.StartSeedStride
		rng := rand.New(rand.NewSource(seed))
		st, err := newState(p, clbSites, ioSites, rng, opt.Init)
		if err != nil {
			return nil, err
		}
		anneal.Run(st, anneal.Config{
			Effort:                opt.Effort,
			Span:                  a.Width + a.Height,
			Cells:                 len(p.Cells),
			Nets:                  len(p.Nets),
			Refine:                opt.Init != nil,
			RefineTempFraction:    opt.RefineTempFraction,
			WarmStart:             opt.Init != nil && opt.WarmStart,
			WarmStartTempFraction: opt.WarmStartTempFraction,
			Pool:                  pool,
			Obs:                   opt.Obs,
		}, rng)
		states[i], costs[i], seeds[i] = st, st.totalCost(), seed
	}
	st := states[anneal.BestStart(costs, seeds)]

	pl := &Placement{SiteOf: make([]arch.Site, len(p.Cells))}
	for c := range p.Cells {
		pl.SiteOf[c] = st.siteAt(st.posOf[c])
	}
	pl.Cost = st.totalCost()
	return pl, nil
}

// netBox is a net's bounding box with per-edge occupancy counters: how
// many of the net's cells sit on each extreme coordinate. A move off an
// edge with counter 1 invalidates that edge and triggers a full rescan of
// the net; every other move updates the box in O(1).
type netBox struct {
	minX, maxX, minY, maxY     int32
	nMinX, nMaxX, nMinY, nMaxY int32
}

// state holds occupancy and incremental cost bookkeeping, and implements
// anneal.Mover. Site positions are flattened: CLB sites first, then IO
// sites.
type state struct {
	p        *Problem
	clbSites []arch.Site
	ioSites  []arch.Site
	posX     []int32 // position -> site coordinates, flattened for hot scans
	posY     []int32
	cellX    []int32 // cell -> current coordinates, updated on every swap:
	cellY    []int32 // net scans read these directly, one load per axis
	posOf    []int   // cell -> position
	cellAt   []int   // position -> cell (-1 empty)
	netsOf   [][]int
	w, h     int       // CLB grid extent
	wq       []float64 // per-net weight * QFactor (constant)
	small    []bool    // per-net: few pins, rescan beats counter upkeep
	boxes    []netBox  // large nets only; small nets never store a box
	netCost  []float64
	// Swap-evaluation scratch, reused across moves: netSeen dedups the
	// affected-net list, netsBuf holds it, oldCost (parallel to netsBuf)
	// the pre-move costs Undo restores; largeBuf/oldBox snapshot the
	// boxes of affected large nets. A deterministic (insertion-ordered)
	// list matters beyond speed — summing the cost delta in map
	// iteration order would make annealing outcomes vary run to run,
	// because float addition is not associative.
	nLarge    int // number of nets above smallNetPins
	netSeen   []bool
	largeSeen []bool
	netsBuf   []int
	oldCost   []float64
	largeBuf  []int
	oldBox    []netBox
	// Pending move for anneal.Mover (set by TryMove, used by Undo).
	mvA, mvB int
	// Batched-protocol state (parallel.go): recorded proposals and the
	// per-worker frozen-evaluation scratch.
	slots   []slotMove
	scratch []evalScratch
}

func newState(p *Problem, clbSites, ioSites []arch.Site, rng *rand.Rand, init []arch.Site) (*state, error) {
	st := &state{
		p:         p,
		clbSites:  clbSites,
		ioSites:   ioSites,
		posOf:     make([]int, len(p.Cells)),
		cellAt:    make([]int, len(clbSites)+len(ioSites)),
		netsOf:    make([][]int, len(p.Cells)),
		wq:        make([]float64, len(p.Nets)),
		small:     make([]bool, len(p.Nets)),
		boxes:     make([]netBox, len(p.Nets)),
		netCost:   make([]float64, len(p.Nets)),
		netSeen:   make([]bool, len(p.Nets)),
		largeSeen: make([]bool, len(p.Nets)),
	}
	st.posX = make([]int32, len(st.cellAt))
	st.posY = make([]int32, len(st.cellAt))
	for pos := range st.cellAt {
		s := st.siteAt(pos)
		st.posX[pos], st.posY[pos] = int32(s.X), int32(s.Y)
	}
	last := clbSites[len(clbSites)-1]
	st.w, st.h = last.X, last.Y
	st.cellX = make([]int32, len(p.Cells))
	st.cellY = make([]int32, len(p.Cells))
	for i := range st.cellAt {
		st.cellAt[i] = -1
	}
	if init != nil {
		if len(init) != len(p.Cells) {
			return nil, fmt.Errorf("place: init covers %d cells, want %d", len(init), len(p.Cells))
		}
		posBySite := map[arch.Site]int{}
		for i, s := range clbSites {
			posBySite[s] = i
		}
		for i, s := range ioSites {
			posBySite[s] = len(clbSites) + i
		}
		for c, s := range init {
			pos, ok := posBySite[s]
			if !ok {
				return nil, fmt.Errorf("place: init site %v not in architecture", s)
			}
			if st.cellAt[pos] >= 0 {
				return nil, fmt.Errorf("place: init places two cells on %v", s)
			}
			if p.Cells[c].IsIO != s.IsIO {
				return nil, fmt.Errorf("place: init puts cell %d on wrong site class %v", c, s)
			}
			st.place(c, pos)
		}
	} else {
		// Random legal initial placement.
		clbPerm := rng.Perm(len(clbSites))
		ioPerm := rng.Perm(len(ioSites))
		ci, ii := 0, 0
		for c := range p.Cells {
			if p.Cells[c].IsIO {
				st.place(c, len(clbSites)+ioPerm[ii])
				ii++
			} else {
				st.place(c, clbPerm[ci])
				ci++
			}
		}
	}
	for ni, n := range p.Nets {
		for _, c := range n.Cells {
			st.netsOf[c] = append(st.netsOf[c], ni)
		}
		w := n.Weight
		if w == 0 {
			w = 1
		}
		st.wq[ni] = w * QFactor(len(n.Cells))
		st.small[ni] = len(n.Cells) <= smallNetPins
		if st.small[ni] {
			st.netCost[ni] = st.scanCost(ni)
		} else {
			st.nLarge++
			st.boxes[ni] = st.computeBox(ni)
			st.netCost[ni] = st.boxCost(ni)
		}
	}
	return st, nil
}

func (st *state) place(c, pos int) {
	st.posOf[c] = pos
	st.cellAt[pos] = c
	st.cellX[c], st.cellY[c] = st.posX[pos], st.posY[pos]
}

func (st *state) siteAt(pos int) arch.Site {
	if pos < len(st.clbSites) {
		return st.clbSites[pos]
	}
	return st.ioSites[pos-len(st.clbSites)]
}

func (st *state) loc(c int) (int, int) {
	s := st.siteAt(st.posOf[c])
	return s.X, s.Y
}

// smallNetPins is the pin count below which a direct min/max rescan is
// cheaper than maintaining edge counters (VPR's SMALL_NET idea): on an
// island grid a net this size usually has a lone cell on each box edge,
// so the counter scheme degenerates into shrink-rescans anyway and only
// its bookkeeping overhead remains. Small nets therefore never store a
// box at all — their cost is recomputed by scanCost on every affected
// move — while larger nets amortise real O(1) updates.
const smallNetPins = 10

// scanCost recomputes a small net's cost with a plain min/max scan over
// its pins, reading nothing but the flat coordinate arrays.
func (st *state) scanCost(ni int) float64 {
	cells := st.p.Nets[ni].Cells
	if len(cells) == 0 {
		return 0
	}
	cellX, cellY := st.cellX, st.cellY
	c0 := cells[0]
	minX, maxX := cellX[c0], cellX[c0]
	minY, maxY := cellY[c0], cellY[c0]
	for _, c := range cells[1:] {
		x, y := cellX[c], cellY[c]
		if x < minX {
			minX = x
		} else if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		} else if y > maxY {
			maxY = y
		}
	}
	return st.wq[ni] * float64((maxX-minX)+(maxY-minY))
}

// computeBox scans every pin of a large net, rebuilding its box and edge
// counters — used at initialisation and as the fallback when an
// incremental update vacates a box edge. Small nets never have a box:
// their cost comes from scanCost.
func (st *state) computeBox(ni int) netBox {
	cells := st.p.Nets[ni].Cells
	if len(cells) == 0 {
		return netBox{}
	}
	var b netBox
	b.minX, b.minY = math.MaxInt32, math.MaxInt32
	b.maxX, b.maxY = math.MinInt32, math.MinInt32
	for _, c := range cells {
		xx, yy := st.cellX[c], st.cellY[c]
		switch {
		case xx < b.minX:
			b.minX, b.nMinX = xx, 1
		case xx == b.minX:
			b.nMinX++
		}
		switch {
		case xx > b.maxX:
			b.maxX, b.nMaxX = xx, 1
		case xx == b.maxX:
			b.nMaxX++
		}
		switch {
		case yy < b.minY:
			b.minY, b.nMinY = yy, 1
		case yy == b.minY:
			b.nMinY++
		}
		switch {
		case yy > b.maxY:
			b.maxY, b.nMaxY = yy, 1
		case yy == b.maxY:
			b.nMaxY++
		}
	}
	return b
}

// boxCost reads net ni's cost off its maintained bounding box.
func (st *state) boxCost(ni int) float64 {
	b := &st.boxes[ni]
	if b.nMinX == 0 {
		return 0 // empty net
	}
	return st.wq[ni] * float64((b.maxX-b.minX)+(b.maxY-b.minY))
}

// updateBox moves one of net ni's cells from (ox,oy) to (nx,ny),
// maintaining the box and its edge counters. Growth and interior moves
// are O(1); vacating an edge (its counter reaching zero) falls back to a
// computeBox rescan, which requires posOf to already hold the moved
// cell's new position.
func (st *state) updateBox(ni int, ox, oy, nx, ny int32) {
	if !boxStep(&st.boxes[ni], ox, oy, nx, ny) {
		st.boxes[ni] = st.computeBox(ni)
	}
}

// boxStep is the pure incremental half of updateBox: it applies one cell
// move to the box and reports whether the counters survived. false means
// the move vacated an edge and the caller must rescan — the live path
// recomputes from the coordinate arrays, the frozen parallel evaluation
// (parallel.go) from an overridden view of them. Once the X axis demands
// a rescan the Y-axis counters are left untouched (the rescan rebuilds
// everything), matching the historical updateBox short-circuit exactly.
func boxStep(b *netBox, ox, oy, nx, ny int32) bool {
	rescan := false
	if nx != ox {
		switch {
		case nx < b.minX:
			b.minX, b.nMinX = nx, 1
		case nx == b.minX:
			b.nMinX++
		}
		switch {
		case nx > b.maxX:
			b.maxX, b.nMaxX = nx, 1
		case nx == b.maxX:
			b.nMaxX++
		}
		if ox == b.minX {
			if b.nMinX > 1 {
				b.nMinX--
			} else {
				rescan = true
			}
		}
		if ox == b.maxX {
			if b.nMaxX > 1 {
				b.nMaxX--
			} else {
				rescan = true
			}
		}
	}
	if ny != oy && !rescan {
		switch {
		case ny < b.minY:
			b.minY, b.nMinY = ny, 1
		case ny == b.minY:
			b.nMinY++
		}
		switch {
		case ny > b.maxY:
			b.maxY, b.nMaxY = ny, 1
		case ny == b.maxY:
			b.nMaxY++
		}
		if oy == b.minY {
			if b.nMinY > 1 {
				b.nMinY--
			} else {
				rescan = true
			}
		}
		if oy == b.maxY {
			if b.nMaxY > 1 {
				b.nMaxY--
			} else {
				rescan = true
			}
		}
	}
	return !rescan
}

func (st *state) totalCost() float64 {
	t := 0.0
	for _, c := range st.netCost {
		t += c
	}
	return t
}

// applySwap swaps the contents of two positions (either may be empty),
// updates the boxes and netCost of the affected nets, and returns the
// cost delta. The move is left applied: an accepted move needs nothing
// further, a rejected one is reverted with undoSwap. The affected list is
// built in deterministic insertion order and allocation-free via the
// state's scratch buffers.
func (st *state) applySwap(posA, posB int) float64 {
	ca, cb := st.cellAt[posA], st.cellAt[posB]
	nets := st.netsBuf[:0]
	largeBuf := st.largeBuf[:0]
	oldBox := st.oldBox[:0]
	// Dedup the affected-net list; the netSeen marks are cleared in the
	// cost pass.
	netSeen := st.netSeen
	if ca >= 0 {
		for _, ni := range st.netsOf[ca] {
			if !netSeen[ni] {
				netSeen[ni] = true
				nets = append(nets, ni)
			}
		}
	}
	if cb >= 0 {
		for _, ni := range st.netsOf[cb] {
			if !netSeen[ni] {
				netSeen[ni] = true
				nets = append(nets, ni)
			}
		}
	}
	// Apply the move one cell at a time: a shrink rescan triggered by
	// cell A's update must see A at its new position and B still at its
	// old one. Small nets skip the counter upkeep entirely — their cost
	// is rescanned in the pass below, after both cells moved — so when
	// the state has no large net the update loops vanish. A large net
	// touched by both cells is snapshotted once (largeSeen) and updated
	// twice.
	ax, ay := st.posX[posA], st.posY[posA]
	bx, by := st.posX[posB], st.posY[posB]
	st.cellAt[posA], st.cellAt[posB] = cb, ca
	if ca >= 0 {
		st.posOf[ca] = posB
		st.cellX[ca], st.cellY[ca] = bx, by
		if st.nLarge > 0 {
			for _, ni := range st.netsOf[ca] {
				if !st.small[ni] {
					if !st.largeSeen[ni] {
						st.largeSeen[ni] = true
						largeBuf = append(largeBuf, ni)
						oldBox = append(oldBox, st.boxes[ni])
					}
					st.updateBox(ni, ax, ay, bx, by)
				}
			}
		}
	}
	if cb >= 0 {
		st.posOf[cb] = posA
		st.cellX[cb], st.cellY[cb] = ax, ay
		if st.nLarge > 0 {
			for _, ni := range st.netsOf[cb] {
				if !st.small[ni] {
					if !st.largeSeen[ni] {
						st.largeSeen[ni] = true
						largeBuf = append(largeBuf, ni)
						oldBox = append(oldBox, st.boxes[ni])
					}
					st.updateBox(ni, bx, by, ax, ay)
				}
			}
		}
	}
	for _, ni := range largeBuf {
		st.largeSeen[ni] = false
	}
	// Cost pass: snapshot the pre-move cost (for Undo) and accumulate the
	// delta in the deterministic dedup order.
	oldCost := st.oldCost[:0]
	delta := 0.0
	for _, ni := range nets {
		netSeen[ni] = false
		var nc float64
		if st.small[ni] {
			nc = st.scanCost(ni)
		} else {
			nc = st.boxCost(ni)
		}
		old := st.netCost[ni]
		oldCost = append(oldCost, old)
		delta += nc - old
		st.netCost[ni] = nc
	}
	st.netsBuf, st.oldCost = nets, oldCost
	st.largeBuf, st.oldBox = largeBuf, oldBox
	return delta
}

// undoSwap reverts the last applySwap: the swap itself, the netCost
// entries of its affected nets, and the boxes of the large ones.
func (st *state) undoSwap(posA, posB int) {
	ca, cb := st.cellAt[posA], st.cellAt[posB]
	st.cellAt[posA], st.cellAt[posB] = cb, ca
	if ca >= 0 {
		st.posOf[ca] = posB
		st.cellX[ca], st.cellY[ca] = st.posX[posB], st.posY[posB]
	}
	if cb >= 0 {
		st.posOf[cb] = posA
		st.cellX[cb], st.cellY[cb] = st.posX[posA], st.posY[posA]
	}
	for i, ni := range st.netsBuf {
		st.netCost[ni] = st.oldCost[i]
	}
	for i, ni := range st.largeBuf {
		st.boxes[ni] = st.oldBox[i]
	}
}

// TryMove implements anneal.Mover: propose a range-limited swap and apply
// it, returning its incremental cost delta.
func (st *state) TryMove(rng *rand.Rand, rlim float64) (float64, bool) {
	posA, posB, ok := st.pickMove(rng, rlim)
	if !ok {
		return 0, false
	}
	st.mvA, st.mvB = posA, posB
	return st.applySwap(posA, posB), true
}

// Undo implements anneal.Mover.
func (st *state) Undo() { st.undoSwap(st.mvA, st.mvB) }

// Cost implements anneal.Mover.
func (st *state) Cost() float64 { return st.totalCost() }

// pickMove selects a random occupied position and a partner position of the
// same class (CLB or IO) within the range limit.
func (st *state) pickMove(rng *rand.Rand, rlim float64) (int, int, bool) {
	c := rng.Intn(len(st.p.Cells))
	posA := st.posOf[c]
	isIO := st.p.Cells[c].IsIO
	var posB int
	if isIO {
		posB = len(st.clbSites) + rng.Intn(len(st.ioSites))
	} else {
		// Range-limited CLB target.
		sa := st.siteAt(posA)
		r := int(rlim)
		if r < 1 {
			r = 1
		}
		x := anneal.Clamp(sa.X+rng.Intn(2*r+1)-r, 1, st.w)
		y := anneal.Clamp(sa.Y+rng.Intn(2*r+1)-r, 1, st.h)
		posB = (y-1)*st.w + (x - 1)
	}
	if posB == posA {
		return 0, 0, false
	}
	// Swapping with a same-class cell or empty slot only.
	if other := st.cellAt[posB]; other >= 0 && st.p.Cells[other].IsIO != isIO {
		return 0, 0, false
	}
	return posA, posB, true
}
