package place

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/netlist"
	"repro/internal/techmap"
)

func validatePlacement(t *testing.T, p *Problem, a arch.Arch, pl *Placement) {
	t.Helper()
	if len(pl.SiteOf) != len(p.Cells) {
		t.Fatalf("placement covers %d cells, want %d", len(pl.SiteOf), len(p.Cells))
	}
	seen := map[arch.Site]int{}
	for c, s := range pl.SiteOf {
		if prev, dup := seen[s]; dup {
			t.Fatalf("cells %d and %d share site %v", prev, c, s)
		}
		seen[s] = c
		if p.Cells[c].IsIO != s.IsIO {
			t.Fatalf("cell %d (IsIO=%v) on site %v", c, p.Cells[c].IsIO, s)
		}
		if !s.IsIO {
			if s.X < 1 || s.X > a.Width || s.Y < 1 || s.Y > a.Height {
				t.Fatalf("CLB site %v out of grid", s)
			}
		}
	}
}

func ringProblem(n int) *Problem {
	// n cells in a ring: net i connects cell i and (i+1)%n. Optimal
	// placement is a compact loop with cost ~2 per net.
	p := &Problem{}
	for i := 0; i < n; i++ {
		p.Cells = append(p.Cells, Cell{Name: fmt.Sprintf("c%d", i)})
	}
	for i := 0; i < n; i++ {
		p.Nets = append(p.Nets, Net{Cells: []int{i, (i + 1) % n}, Weight: 1})
	}
	return p
}

func TestPlaceLegal(t *testing.T) {
	a := arch.New(5, 5, 4)
	p := ringProblem(16)
	pl, err := Place(p, a, Options{Seed: 1, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	validatePlacement(t, p, a, pl)
}

func TestPlaceImprovesOverRandom(t *testing.T) {
	a := arch.New(8, 8, 4)
	p := ringProblem(40)
	pl, err := Place(p, a, Options{Seed: 2, Effort: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Random placement cost for a ring of 40 on an 8x8 grid is ~40*avg
	// distance (~5.3) ≈ 210; annealing must do much better.
	randomCost := estimateRandomCost(p, a, 3)
	if pl.Cost > 0.6*randomCost {
		t.Errorf("annealed cost %.1f not clearly better than random %.1f", pl.Cost, randomCost)
	}
}

func estimateRandomCost(p *Problem, a arch.Arch, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	sites := a.CLBSites()
	total := 0.0
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(sites))
		loc := func(c int) (int, int) {
			s := sites[perm[c%len(sites)]]
			return s.X, s.Y
		}
		for _, n := range p.Nets {
			total += HPWL(n.Cells, 1, loc)
		}
	}
	return total / 10
}

func TestPlaceDeterministic(t *testing.T) {
	a := arch.New(6, 6, 4)
	p := ringProblem(20)
	pl1, err := Place(p, a, Options{Seed: 7, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := Place(p, a, Options{Seed: 7, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for c := range pl1.SiteOf {
		if pl1.SiteOf[c] != pl2.SiteOf[c] {
			t.Fatalf("same seed produced different placements at cell %d", c)
		}
	}
}

func TestPlaceIOCells(t *testing.T) {
	a := arch.New(4, 4, 4)
	p := &Problem{}
	for i := 0; i < 6; i++ {
		p.Cells = append(p.Cells, Cell{Name: fmt.Sprintf("b%d", i)})
	}
	for i := 0; i < 8; i++ {
		p.Cells = append(p.Cells, Cell{Name: fmt.Sprintf("io%d", i), IsIO: true})
	}
	for i := 0; i < 8; i++ {
		p.Nets = append(p.Nets, Net{Cells: []int{i % 6, 6 + i}})
	}
	pl, err := Place(p, a, Options{Seed: 3, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	validatePlacement(t, p, a, pl)
}

func TestPlaceOverflowErrors(t *testing.T) {
	a := arch.New(2, 2, 4)
	p := &Problem{}
	for i := 0; i < 5; i++ { // 5 logic cells, 4 CLB sites
		p.Cells = append(p.Cells, Cell{Name: fmt.Sprintf("b%d", i)})
	}
	if _, err := Place(p, a, Options{Seed: 1}); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestHPWLQFactor(t *testing.T) {
	if QFactor(2) != 1.0 || QFactor(3) != 1.0 {
		t.Error("q for small nets must be 1.0")
	}
	if QFactor(10) <= 1.0 {
		t.Error("q must grow with terminal count")
	}
	if QFactor(100) <= QFactor(50) {
		t.Error("q must extrapolate past the table")
	}
}

func TestHPWLComputation(t *testing.T) {
	locs := map[int][2]int{0: {1, 1}, 1: {4, 1}, 2: {1, 5}}
	loc := func(c int) (int, int) { return locs[c][0], locs[c][1] }
	got := HPWL([]int{0, 1, 2}, 1, loc)
	if got != 7 { // (4-1)+(5-1)
		t.Errorf("HPWL = %v, want 7", got)
	}
	if HPWL([]int{0}, 1, loc) != 0 {
		t.Error("single-cell net must cost 0")
	}
}

func TestFromCircuit(t *testing.T) {
	b := netlist.NewBuilder("c")
	x := b.Input("x")
	y := b.Input("y")
	g := b.And(x, y)
	h := b.Or(g, x)
	b.Output("o", h)
	circ, err := techmap.Map(b.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, cc := FromCircuit(circ)
	if len(p.Cells) != circ.NumBlocks()+len(circ.PINames)+len(circ.POs) {
		t.Fatalf("cell count %d", len(p.Cells))
	}
	// Every net must reference valid cells.
	for _, n := range p.Nets {
		if len(n.Cells) < 2 {
			t.Fatalf("degenerate net %v", n)
		}
		for _, c := range n.Cells {
			if c < 0 || c >= len(p.Cells) {
				t.Fatalf("net references cell %d out of range", c)
			}
		}
	}
	_ = cc
}

func TestPlaceMappedCircuitEndToEnd(t *testing.T) {
	b := netlist.NewBuilder("e2e")
	av := b.InputVector("a", 4)
	bv := b.InputVector("b", 4)
	b.OutputVector("s", b.RippleAdd(av, bv))
	circ, err := techmap.Map(b.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	side := arch.MinGridForBlocks(circ.NumBlocks(), circ.NumPIs()+len(circ.POs), 1.2)
	a := arch.New(side, side, 6)
	p, _ := FromCircuit(circ)
	pl, err := Place(p, a, Options{Seed: 5, Effort: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	validatePlacement(t, p, a, pl)
	if pl.Cost <= 0 {
		t.Error("zero cost for non-trivial circuit")
	}
	_ = lutnet.Source{}
}
