package place

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/anneal"
	"repro/internal/arch"
)

// TestPlaceWorkerDeterminism is the placer half of the repo's
// determinism-at-any-j contract: the complete Placement — every site and
// the cost — must be identical at 1, 2 and 8 workers across seeds.
func TestPlaceWorkerDeterminism(t *testing.T) {
	a := arch.New(7, 7, 4)
	for seed := int64(0); seed < 5; seed++ {
		p := randomProblem(seed, 24, 14, 50)
		var base *Placement
		for _, workers := range []int{1, 2, 8} {
			pl, err := Place(p, a, Options{Seed: seed, Effort: 0.3, Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if workers == 1 {
				base = pl
				continue
			}
			if !reflect.DeepEqual(base, pl) {
				t.Fatalf("seed %d: placement at %d workers differs from serial", seed, workers)
			}
		}
	}
}

// TestPlaceRefineWorkerDeterminism: the refine path (Init set, opening at
// the refinement temperature) must be worker-count deterministic too.
func TestPlaceRefineWorkerDeterminism(t *testing.T) {
	a := arch.New(7, 7, 4)
	p := randomProblem(21, 24, 14, 50)
	seedPl, err := Place(p, a, Options{Seed: 21, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var base *Placement
	for _, workers := range []int{1, 2, 8} {
		pl, err := Place(p, a, Options{Seed: 4, Effort: 0.2, Init: seedPl.SiteOf, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if workers == 1 {
			base = pl
			continue
		}
		if !reflect.DeepEqual(base, pl) {
			t.Fatalf("refine placement at %d workers differs from serial", workers)
		}
	}
}

// TestPlaceMultiStartDeterministic: a multi-start run must equal the best
// of the equivalent single-start runs under the (cost, seed) tiebreak,
// at any worker count, and never be worse than its own single start.
func TestPlaceMultiStartDeterministic(t *testing.T) {
	a := arch.New(7, 7, 4)
	p := randomProblem(31, 24, 14, 50)
	const starts = 4
	var singles []*Placement
	costs := make([]float64, starts)
	seeds := make([]int64, starts)
	for i := 0; i < starts; i++ {
		seeds[i] = 5 + int64(i)*anneal.StartSeedStride
		pl, err := Place(p, a, Options{Seed: seeds[i], Effort: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		singles = append(singles, pl)
		costs[i] = pl.Cost
	}
	want := singles[anneal.BestStart(costs, seeds)]
	var base *Placement
	for _, workers := range []int{1, 2, 8} {
		pl, err := Place(p, a, Options{Seed: 5, Effort: 0.3, Starts: starts, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, pl) {
			t.Fatalf("multi-start at %d workers differs from best single start (cost %v vs %v)",
				workers, pl.Cost, want.Cost)
		}
		if workers == 1 {
			base = pl
			continue
		}
		if !reflect.DeepEqual(base, pl) {
			t.Fatalf("multi-start at %d workers differs from serial multi-start", workers)
		}
	}
	if want.Cost > singles[0].Cost {
		t.Fatalf("multi-start pick %v worse than first start %v", want.Cost, singles[0].Cost)
	}
}

// TestEvalSlotMatchesApplySlot pins the frozen-evaluation contract down
// move by move: for thousands of proposals on evolving state, EvalSlot's
// read-only delta must equal ApplySlot's live delta BIT-identically —
// same box-update decisions, same rescans, same accumulation order.
func TestEvalSlotMatchesApplySlot(t *testing.T) {
	a := arch.New(7, 7, 4)
	p := randomProblem(41, 30, 16, 60)
	rng := rand.New(rand.NewSource(43))
	st, err := newState(p, a.CLBSites(), a.IOSites(), rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.SetupBatch(2, 1)
	for i := 0; i < 4000; i++ {
		rlim := 1 + rng.Float64()*float64(a.Width+a.Height)
		if !st.Propose(rng, rlim, 0) {
			continue
		}
		frozen := st.EvalSlot(0, i%2)
		live := st.ApplySlot(0)
		if frozen != live {
			t.Fatalf("step %d: frozen delta %v != live delta %v", i, frozen, live)
		}
		// Random walk: keep some moves so later proposals see varied
		// boxes (growth, interior and shrink-rescan paths all fire).
		if rng.Intn(2) == 0 {
			st.Undo()
		}
	}
}

// TestPlaceBatchAccountingMatchesRecompute extends the incremental
// exact-equality contract to the batched commit/requeue path: after
// EVERY batch commit cycle of a real parallel anneal, each maintained
// net cost must equal a from-scratch HPWL recompute. The run must also
// actually exercise the conflict-requeue path.
func TestPlaceBatchAccountingMatchesRecompute(t *testing.T) {
	a := arch.New(7, 7, 4)
	p := randomProblem(41, 30, 16, 60)
	rng := rand.New(rand.NewSource(6))
	st, err := newState(p, a.CLBSites(), a.IOSites(), rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := 0
	stats := anneal.Run(st, anneal.Config{
		Effort: 0.3, Span: a.Width + a.Height,
		Cells: len(p.Cells), Nets: len(p.Nets),
		Workers: 3,
		AfterBatch: func() {
			batch++
			checkAgainstRecompute(t, st, batch)
		},
	}, rng)
	if stats.Batches == 0 || batch != stats.Batches {
		t.Fatalf("AfterBatch ran %d times for %d batches", batch, stats.Batches)
	}
	if stats.Requeued == 0 {
		t.Fatal("anneal never exercised the conflict-requeue path")
	}
}
