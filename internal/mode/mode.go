// Package mode provides the mode algebra of the multi-mode tool flow: sets
// of modes (used as activation functions of Tunable connections and as the
// value vectors of parameterised configuration bits) and their rendering as
// Boolean expressions over the binary mode word m_{k-1}..m_0.
package mode

import (
	"fmt"
	"math/bits"

	"repro/internal/logic"
)

// MaxModes bounds the number of modes of a multi-mode circuit (the mode
// word must fit logic.MaxVars bits; 2^6 = 64 modes is far beyond the
// paper's 2-mode experiments).
const MaxModes = 64

// Set is a set of mode indices, as a bitmask. As an activation function it
// reads "active exactly in these modes"; as a parameterised configuration
// bit it reads "1 exactly in these modes".
type Set uint64

// Single returns the set containing only mode m.
func Single(m int) Set {
	if m < 0 || m >= MaxModes {
		panic(fmt.Sprintf("mode: index %d out of range", m))
	}
	return Set(1) << uint(m)
}

// All returns the set of all n modes.
func All(n int) Set {
	if n < 0 || n > MaxModes {
		panic(fmt.Sprintf("mode: count %d out of range", n))
	}
	if n == MaxModes {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Contains reports whether mode m is in the set.
func (s Set) Contains(m int) bool { return s>>uint(m)&1 == 1 }

// With returns s ∪ {m}.
func (s Set) With(m int) Set { return s | Single(m) }

// Union returns s ∪ o.
func (s Set) Union(o Set) Set { return s | o }

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set { return s & o }

// Count returns the number of modes in the set.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set is empty.
func (s Set) Empty() bool { return s == 0 }

// IsAll reports whether the set covers all n modes (the activation function
// is the constant True — no reconfiguration ever needed).
func (s Set) IsAll(n int) bool { return s == All(n) }

// NumModeBits returns the number of bits of the binary mode word for n
// modes (⌈log2 n⌉, at least 1).
func NumModeBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// TT converts the set to a truth table over the mode-word bits, treating
// the unused encodings (≥ numModes) as 0.
func (s Set) TT(numModes int) logic.TT {
	nb := NumModeBits(numModes)
	tt := logic.ConstTT(nb, false)
	for m := 0; m < numModes; m++ {
		if s.Contains(m) {
			tt = tt.Set(m, true)
		}
	}
	return tt
}

// Expression renders the set as a minimised sum-of-products over the mode
// bits m0..mk ("1" when active in all modes, "0" when empty). Unused mode
// encodings are treated as off-set, matching a reconfiguration manager that
// only ever writes valid mode numbers.
func (s Set) Expression(numModes int) string {
	if s.IsAll(numModes) {
		return "1"
	}
	nb := NumModeBits(numModes)
	names := make([]string, nb)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}
	return logic.Minimize(s.TT(numModes)).String(names)
}

// VectorSet builds the set of modes in which a per-mode Boolean vector is
// true.
func VectorSet(values []bool) Set {
	var s Set
	for m, v := range values {
		if v {
			s = s.With(m)
		}
	}
	return s
}
