package mode

import (
	"testing"
	"testing/quick"
)

func TestSingleAndContains(t *testing.T) {
	s := Single(3)
	if !s.Contains(3) || s.Contains(0) || s.Count() != 1 {
		t.Errorf("Single(3) misbehaves: %b", s)
	}
}

func TestAll(t *testing.T) {
	for n := 1; n <= 8; n++ {
		s := All(n)
		if s.Count() != n {
			t.Errorf("All(%d).Count = %d", n, s.Count())
		}
		if !s.IsAll(n) {
			t.Errorf("All(%d) not IsAll", n)
		}
	}
}

func TestNumModeBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for n, want := range cases {
		if got := NumModeBits(n); got != want {
			t.Errorf("NumModeBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestExpressionTwoModes(t *testing.T) {
	// The paper's running example: 2 modes, 1 mode bit.
	if got := Single(0).Expression(2); got != "!m0" {
		t.Errorf("mode0 activation = %q, want !m0", got)
	}
	if got := Single(1).Expression(2); got != "m0" {
		t.Errorf("mode1 activation = %q, want m0", got)
	}
	if got := All(2).Expression(2); got != "1" {
		t.Errorf("shared activation = %q, want 1 (m0 + !m0 simplifies)", got)
	}
	if got := Set(0).Expression(2); got != "0" {
		t.Errorf("empty activation = %q, want 0", got)
	}
}

func TestExpressionThreeModes(t *testing.T) {
	// 3 modes, 2 mode bits; mode 2 is encoded 10: m1.!m0, but encoding 11
	// is unused off-set so the minimiser may keep m1 alone.
	got := Single(2).Expression(3)
	if got != "m1" && got != "!m0.m1" {
		t.Errorf("mode2 activation = %q", got)
	}
	tt := Single(2).TT(3)
	if !tt.Get(2) || tt.Get(0) || tt.Get(1) {
		t.Errorf("TT wrong: %s", tt)
	}
}

func TestVectorSet(t *testing.T) {
	s := VectorSet([]bool{true, false, true})
	if !s.Contains(0) || s.Contains(1) || !s.Contains(2) {
		t.Errorf("VectorSet = %b", s)
	}
}

func TestSetOps(t *testing.T) {
	a := Single(0).With(2)
	b := Single(1).With(2)
	if u := a.Union(b); u.Count() != 3 {
		t.Errorf("union count = %d", u.Count())
	}
	if i := a.Intersect(b); i != Single(2) {
		t.Errorf("intersect = %b", i)
	}
	if !Set(0).Empty() || a.Empty() {
		t.Error("Empty misbehaves")
	}
}

func TestQuickExpressionMatchesSet(t *testing.T) {
	// The rendered TT must evaluate true exactly on in-set mode encodings.
	f := func(raw uint8) bool {
		const numModes = 5
		s := Set(raw) & All(numModes)
		tt := s.TT(numModes)
		for m := 0; m < numModes; m++ {
			if tt.Get(m) != s.Contains(m) {
				return false
			}
		}
		for enc := numModes; enc < tt.NumRows(); enc++ {
			if tt.Get(enc) {
				return false // unused encodings must be off
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
