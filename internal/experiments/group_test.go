package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/flow"
)

// TestBuildMultiSuitesShapes checks the ≥3-mode suite construction.
func TestBuildMultiSuitesShapes(t *testing.T) {
	suites, err := BuildMultiSuites(Scale{Effort: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 3 {
		t.Fatalf("multi suites = %d, want 3", len(suites))
	}
	sawBig := false
	for _, s := range suites {
		if len(s.Groups) == 0 {
			t.Errorf("%s: no groups", s.Name)
		}
		for _, grp := range s.Groups {
			if len(grp) < 3 {
				t.Errorf("%s: group %v has fewer than 3 modes", s.Name, grp)
			}
			if len(grp) >= 4 {
				sawBig = true
			}
			for _, idx := range grp {
				if idx < 0 || idx >= len(s.Circuits) {
					t.Errorf("%s: group %v indexes outside circuits", s.Name, grp)
				}
			}
		}
	}
	if !sawBig {
		t.Error("no 4-mode group in the multi suites")
	}
}

// TestRunGroupThreeModes runs one 3-mode group end to end and checks the
// N×N switch-cost matrices: shape 3×3, zero diagonal, symmetry for the
// diff-based accountings, and the DCS entries bounded by the full MDR
// rewrite.
func TestRunGroupThreeModes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: 3-mode group takes ~1min")
	}
	sc := Scale{Effort: 0.15, Seed: 1, Cache: flow.NewCache()}
	suites, err := BuildMultiSuites(sc)
	if err != nil {
		t.Fatal(err)
	}
	var xc *Suite
	for _, s := range suites {
		if s.Name == "Xceiver" {
			xc = s
		}
	}
	if xc == nil {
		t.Fatal("no Xceiver suite")
	}
	r, err := RunGroup(xc, xc.Groups[0], sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumModes() != 3 {
		t.Fatalf("NumModes = %d, want 3", r.NumModes())
	}
	if r.Name != "Xceiver-0-1-2" {
		t.Errorf("group name %q", r.Name)
	}
	for _, m := range []flow.SwitchMatrix{r.MDRSwitch, r.DiffSwitch, r.DCSSwitch} {
		if m.N() != 3 {
			t.Fatalf("matrix size %d, want 3", m.N())
		}
		if !m.Symmetric() {
			t.Error("switch matrix not symmetric")
		}
		for i := 0; i < 3; i++ {
			if m[i][i] != 0 {
				t.Error("switch matrix diagonal not zero")
			}
			for j := 0; j < 3; j++ {
				if i != j && (m[i][j] <= 0 || m[i][j] > r.MDRBits) {
					t.Errorf("switch cost m[%d][%d] = %d outside (0, %d]", i, j, m[i][j], r.MDRBits)
				}
			}
		}
	}
	// DCS per-switch cost never exceeds the 2^N upper bound of rewriting
	// every parameterised bit.
	lut := r.LUTBitsTotal
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && r.DCSSwitch[i][j] > lut+r.WLRoutingBits {
				t.Errorf("DCS switch %d exceeds LUT+param bound %d", r.DCSSwitch[i][j], lut+r.WLRoutingBits)
			}
		}
	}
	// The report must render the matrices.
	var buf bytes.Buffer
	WriteGroupReport(&buf, []*GroupResult{r})
	out := buf.String()
	if !strings.Contains(out, "Xceiver-0-1-2") || !strings.Contains(out, "DCS parameterised") {
		t.Errorf("group report missing matrix section:\n%s", out)
	}
}
