package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
)

// Runner executes a sweep of benchmark × pair jobs across a pool of
// workers. Every job — one multi-mode circuit evaluated under MDR and both
// DCS objectives — is independent of every other, so the sweep is
// embarrassingly parallel; the Runner fans jobs over Workers goroutines
// while keeping the result slice in the deterministic enumeration order
// (suites in the given order, each suite's pairs in order). Because each
// job is itself a pure function of its inputs, the results are identical
// at any worker count, byte for byte once rendered.
//
// All jobs share one flow.Cache: the immutable routing-resource graphs and
// the per-benchmark placements are computed once and reused across
// workers instead of being rebuilt per job.
type Runner struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called as each job starts. Calls are
	// serialised, but under multiple workers their order follows the
	// scheduler, not the job enumeration.
	Progress func(msg string)
}

// sweepJob is one pair evaluation with its slot in the result order.
type sweepJob struct {
	suite *Suite
	pair  [2]int
	index int
}

// Run evaluates every selected pair of every suite and returns the results
// in enumeration order. On failure it returns the error of the
// lowest-indexed failing job (jobs already running when a failure is
// observed still finish; jobs not yet started are skipped).
func (r *Runner) Run(suites []*Suite, sc Scale) ([]*PairResult, error) {
	if sc.Cache == nil {
		sc.Cache = flow.NewCache()
	}
	var jobs []sweepJob
	for _, s := range suites {
		for _, p := range s.Pairs {
			jobs = append(jobs, sweepJob{suite: s, pair: p, index: len(jobs)})
		}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	results := make([]*PairResult, len(jobs))
	errs := make([]error, len(jobs))
	var failed atomic.Bool
	var progressMu sync.Mutex
	ch := make(chan sweepJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if failed.Load() {
					continue
				}
				if r.Progress != nil {
					progressMu.Lock()
					r.Progress(fmt.Sprintf("%s pair (%d,%d)", j.suite.Name, j.pair[0], j.pair[1]))
					progressMu.Unlock()
				}
				res, err := RunPair(j.suite, j.pair, sc)
				if err != nil {
					errs[j.index] = err
					failed.Store(true)
					continue
				}
				results[j.index] = res
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s pair (%d,%d): %w",
				jobs[i].suite.Name, jobs[i].pair[0], jobs[i].pair[1], err)
		}
	}
	return results, nil
}

// RunAll is the convenience form of Runner.Run: it sweeps all suites with
// the given worker count.
func RunAll(suites []*Suite, sc Scale, workers int, progress func(string)) ([]*PairResult, error) {
	return (&Runner{Workers: workers, Progress: progress}).Run(suites, sc)
}
