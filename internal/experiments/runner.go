package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
)

// Runner executes a sweep of benchmark × group jobs across a pool of
// workers. Every job — one multi-mode group evaluated under MDR and both
// DCS objectives — is independent of every other, so the sweep is
// embarrassingly parallel; the Runner fans jobs over Workers goroutines
// while keeping the result slice in the deterministic enumeration order
// (suites in the given order, each suite's groups in order). Because each
// job is itself a pure function of its inputs, the results are identical
// at any worker count, byte for byte once rendered.
//
// All jobs share one flow.Cache: the immutable routing-resource graphs and
// the per-benchmark placements are computed once and reused across
// workers instead of being rebuilt per job.
type Runner struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called as each job starts. Calls are
	// serialised, but under multiple workers their order follows the
	// scheduler, not the job enumeration.
	Progress func(msg string)
}

// sweepJob is one group evaluation with its slot in the result order.
type sweepJob struct {
	suite *Suite
	group []int
	index int
}

func (j sweepJob) describe() string {
	idx := make([]string, len(j.group))
	for i, m := range j.group {
		idx[i] = fmt.Sprint(m)
	}
	return fmt.Sprintf("%s group (%s)", j.suite.Name, strings.Join(idx, ","))
}

// Run evaluates every selected group of every suite and returns the
// results in enumeration order. On failure it returns the error of the
// lowest-indexed failing job (jobs already running when a failure is
// observed still finish; jobs not yet started are skipped).
func (r *Runner) Run(suites []*Suite, sc Scale) ([]*GroupResult, error) {
	if sc.Cache == nil {
		sc.Cache = flow.NewCache()
	}
	var jobs []sweepJob
	for _, s := range suites {
		for _, grp := range s.Groups {
			jobs = append(jobs, sweepJob{suite: s, group: grp, index: len(jobs)})
		}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	results := make([]*GroupResult, len(jobs))
	errs := make([]error, len(jobs))
	var failed atomic.Bool
	var progressMu sync.Mutex
	ch := make(chan sweepJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if failed.Load() {
					continue
				}
				if r.Progress != nil {
					progressMu.Lock()
					r.Progress(j.describe())
					progressMu.Unlock()
				}
				res, err := RunGroup(j.suite, j.group, sc)
				if err != nil {
					errs[j.index] = err
					failed.Store(true)
					continue
				}
				results[j.index] = res
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", jobs[i].describe(), err)
		}
	}
	return results, nil
}

// RunAll is the convenience form of Runner.Run: it sweeps all suites with
// the given worker count.
func RunAll(suites []*Suite, sc Scale, workers int, progress func(string)) ([]*GroupResult, error) {
	return (&Runner{Workers: workers, Progress: progress}).Run(suites, sc)
}
