package experiments

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/flow"
	"repro/internal/lutnet"
)

// Group results are the top-level artifact of the persistence subsystem:
// one entry is a whole benchmark × group evaluation — region sizing, the
// MDR baseline and both DCS objectives — so a warm store turns the
// dominant cost of a sweep (annealing and routing every group) into one
// read and a decode. The encoder lives here rather than in internal/codec
// because GroupResult sits above flow in the import DAG (experiments →
// flow → codec); it is built from the same codec primitives and follows
// the same versioned-header contract.
const (
	kindGroupResult = "group-result"
	// groupResultVersion covers the encoding below AND the semantics of
	// everything RunGroup executes (flow.RunComparison, the switch-cost
	// matrices, region sizing). Bump it whenever either changes: the
	// version is hashed into the key, so a bump orphans stale entries
	// instead of serving results an updated algorithm would no longer
	// produce.
	//
	// v2: the connection-based incremental router (routing trajectories
	// changed) and the router-stats fields in the encoding.
	//
	// v3: the batched parallel-move annealing kernel (placement
	// trajectories changed) and the multi-start count in the key.
	groupResultVersion = 3
)

// groupResultKey derives the content-addressed store key of one group
// evaluation: the canonical group name, the content hashes of the mode
// circuits (in group order), and the scale knobs RunGroup feeds into
// flow.Config. Everything else RunGroup depends on is constant per
// groupResultVersion.
func groupResultKey(c *flow.Cache, name string, modes []*lutnet.Circuit, sc Scale) codec.Hash {
	w := codec.NewWriter()
	w.Header(kindGroupResult, groupResultVersion)
	w.String(name)
	w.Uvarint(uint64(len(modes)))
	for _, m := range modes {
		h := c.CircuitHash(m)
		w.String(h.Hex())
	}
	w.Float64(sc.Effort)
	w.Varint(sc.Seed)
	starts := sc.PlaceStarts
	if starts < 1 {
		starts = 1 // normalised: 0 and 1 starts are the same computation
	}
	w.Int(starts)
	return w.Sum()
}

func encodeMatrix(w *codec.Writer, m flow.SwitchMatrix) {
	w.Bool(m != nil)
	if m == nil {
		return
	}
	w.Uvarint(uint64(len(m)))
	for _, row := range m {
		w.Ints(row)
	}
}

func decodeMatrix(r *codec.Reader) flow.SwitchMatrix {
	if !r.Bool() {
		return nil
	}
	n := r.Len(1)
	m := make(flow.SwitchMatrix, 0, n)
	for i := 0; i < n; i++ {
		m = append(m, r.Ints())
	}
	return m
}

// encodeGroupResult renders the canonical encoding of a group evaluation.
func encodeGroupResult(res *GroupResult) []byte {
	w := codec.NewWriter()
	w.Header(kindGroupResult, groupResultVersion)
	w.String(res.Suite)
	w.String(res.Name)
	w.Ints(res.ModeLUTs)
	w.Int(res.Side)
	w.Int(res.MinW)
	w.Int(res.ChannelW)
	w.Int(res.MDRBits)
	w.Int(res.DiffBits)
	w.Int(res.EMBits)
	w.Int(res.WLBits)
	w.Int(res.LUTBitsTotal)
	w.Int(res.MDRRoutingBits)
	w.Int(res.DiffRoutingBits)
	w.Int(res.EMRoutingBits)
	w.Int(res.WLRoutingBits)
	w.Float64(res.SpeedupEM)
	w.Float64(res.SpeedupWL)
	w.Float64(res.WireMDR)
	w.Float64(res.WireEM)
	w.Float64(res.WireWL)
	encodeMatrix(w, res.MDRSwitch)
	encodeMatrix(w, res.DiffSwitch)
	encodeMatrix(w, res.DCSSwitch)
	w.Int(res.RouteIters)
	w.Int(res.RerouteConns)
	w.Int(res.PeakOveruse)
	return w.Bytes()
}

// decodeGroupResult is the inverse of encodeGroupResult. Any malformation
// (including a version mismatch) returns an error and the caller falls
// back to recomputing the group.
func decodeGroupResult(data []byte) (*GroupResult, error) {
	r := codec.NewReader(data)
	r.Header(kindGroupResult, groupResultVersion)
	res := &GroupResult{
		Suite:           r.String(),
		Name:            r.String(),
		ModeLUTs:        r.Ints(),
		Side:            r.Int(),
		MinW:            r.Int(),
		ChannelW:        r.Int(),
		MDRBits:         r.Int(),
		DiffBits:        r.Int(),
		EMBits:          r.Int(),
		WLBits:          r.Int(),
		LUTBitsTotal:    r.Int(),
		MDRRoutingBits:  r.Int(),
		DiffRoutingBits: r.Int(),
		EMRoutingBits:   r.Int(),
		WLRoutingBits:   r.Int(),
		SpeedupEM:       r.Float64(),
		SpeedupWL:       r.Float64(),
		WireMDR:         r.Float64(),
		WireEM:          r.Float64(),
		WireWL:          r.Float64(),
	}
	res.MDRSwitch = decodeMatrix(r)
	res.DiffSwitch = decodeMatrix(r)
	res.DCSSwitch = decodeMatrix(r)
	res.RouteIters = r.Int()
	res.RerouteConns = r.Int()
	res.PeakOveruse = r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(res.ModeLUTs) < 2 {
		return nil, fmt.Errorf("experiments: decoded group result has %d modes", len(res.ModeLUTs))
	}
	return res, nil
}
