package experiments

import (
	"fmt"
	"io"

	"repro/internal/flow"
	"repro/internal/frames"
)

// FrameResult is the frame-granularity analysis of one multi-mode group —
// the paper's §IV-C1 outlook ("we expect the speed up of routing
// reconfiguration time to be roughly between 4× and 20×").
type FrameResult struct {
	Suite       string
	FrameSize   int
	TotalFrames int
	DiffFrames  int // frames containing bits that differ between MDR configs
	ParamFrames int // frames containing parameterised DCS bits

	// Routing-reconfiguration speed-ups at the three granularities.
	BitSpeedup   float64 // routing bits: MDR all vs DCS parameterised
	FrameSpeedup float64 // frames: all vs parameterised-touched
	DiffSpeedup  float64 // frames: all vs differing-touched (MDR w/ frames)
}

// RunFrames evaluates the frame model on the first group of a suite.
func RunFrames(s *Suite, sc Scale, frameSize int) (*FrameResult, error) {
	if len(s.Groups) == 0 {
		return nil, fmt.Errorf("experiments: suite %s has no groups", s.Name)
	}
	cfg := s.config(sc)
	modes := groupModes(s, s.Groups[0])
	cmp, err := flow.RunComparison(s.Name+"-frames", modes, cfg)
	if err != nil {
		return nil, err
	}

	// Bits that differ between the MDR configurations of the modes.
	onCount := map[int32]int{}
	for _, m := range cmp.MDR.PerMode {
		for b := range m.UsedBits {
			onCount[b]++
		}
	}
	var diffBits []int32
	for b, c := range onCount {
		if c != len(cmp.MDR.PerMode) {
			diffBits = append(diffBits, b)
		}
	}

	rep := frames.Analyze(cmp.Region.Graph, frameSize, diffBits,
		cmp.WireLen.TRoute.BitModes, len(modes))
	res := &FrameResult{
		Suite:        s.Name,
		FrameSize:    rep.FrameSize,
		TotalFrames:  rep.TotalFrames,
		DiffFrames:   rep.DiffFrames,
		ParamFrames:  rep.ParamFrames,
		FrameSpeedup: rep.SpeedupDCS,
		DiffSpeedup:  rep.SpeedupDiff,
	}
	if pr := cmp.WireLen.TRoute.ParamRoutingBits; pr > 0 {
		res.BitSpeedup = float64(cmp.Region.Graph.NumRoutingBits) / float64(pr)
	}
	return res, nil
}

// PrintFrames writes the frame-granularity outlook table.
func PrintFrames(w io.Writer, rows []*FrameResult) {
	fmt.Fprintln(w, "Frame-granularity outlook (SIV-C1): routing reconfiguration speed-up")
	fmt.Fprintln(w, "when only frames containing rewritten bits are reconfigured")
	fmt.Fprintf(w, "%-8s %6s %8s %8s %8s %10s %10s %10s\n",
		"", "fsize", "frames", "diff", "param", "bit-level", "frame-DCS", "frame-Diff")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %6d %8d %8d %8d %9.1fx %9.1fx %9.1fx\n",
			r.Suite, r.FrameSize, r.TotalFrames, r.DiffFrames, r.ParamFrames,
			r.BitSpeedup, r.FrameSpeedup, r.DiffSpeedup)
	}
	fmt.Fprintln(w, "(paper predicts the frame-level routing speed-up lands between ~4x and ~20x)")
}
