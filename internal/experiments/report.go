package experiments

import (
	"fmt"
	"io"
)

// PrintTableI writes Table I in the paper's layout.
func PrintTableI(w io.Writer, rows []SizeRow) {
	fmt.Fprintln(w, "TABLE I: Size of the LUT circuits used in the experiments.")
	fmt.Fprintf(w, "%-8s %8s %8s %8s\n", "", "Minimum", "Average", "Maximum")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %8d %8d %8d\n", r.Suite, r.Min, r.Avg, r.Max)
	}
}

// PrintFig5 writes the reconfiguration speed-up series of Fig. 5.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Fig. 5: Reconfiguration speed up of DCS compared to MDR (MDR = 1.0x).")
	fmt.Fprintf(w, "%-8s %28s %28s\n", "", "DCS-Edge matching", "DCS-Wire length")
	fmt.Fprintf(w, "%-8s %8s %9s %9s %8s %9s %9s\n", "", "min", "avg", "max", "min", "avg", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7.2fx %8.2fx %8.2fx %7.2fx %8.2fx %8.2fx\n",
			r.Suite,
			r.EdgeMatch.Min, r.EdgeMatch.Avg, r.EdgeMatch.Max,
			r.WireLen.Min, r.WireLen.Avg, r.WireLen.Max)
	}
}

// PrintFig6 writes the LUT/routing contribution breakdown of Fig. 6.
func PrintFig6(w io.Writer, bars []Fig6Bar) {
	fmt.Fprintln(w, "Fig. 6: Relative contribution of LUTs and routing in the reconfiguration time.")
	fmt.Fprintf(w, "%-14s %12s %14s %10s %10s\n", "", "LUT bits", "routing bits", "LUT %", "routing %")
	for _, b := range bars {
		fmt.Fprintf(w, "%-14s %12.0f %14.0f %9.1f%% %9.1f%%\n",
			b.Label, b.LUTBits, b.RoutingBits, 100*b.LUTShare, 100*(1-b.LUTShare))
	}
}

// PrintFig7 writes the wirelength series of Fig. 7.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Fig. 7: Number of wires relative to MDR (MDR = 100%).")
	fmt.Fprintf(w, "%-8s %28s %28s\n", "", "DCS-Edge matching", "DCS-Wire length")
	fmt.Fprintf(w, "%-8s %8s %9s %9s %8s %9s %9s\n", "", "min", "avg", "max", "min", "avg", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7.0f%% %8.0f%% %8.0f%% %7.0f%% %8.0f%% %8.0f%%\n",
			r.Suite,
			100*r.EdgeMatch.Min, 100*r.EdgeMatch.Avg, 100*r.EdgeMatch.Max,
			100*r.WireLen.Min, 100*r.WireLen.Avg, 100*r.WireLen.Max)
	}
}

// PrintArea writes the §IV-C area observations.
func PrintArea(w io.Writer, rows []AreaRow, firConst, firGeneric int, firRatio float64) {
	fmt.Fprintln(w, "Area (SIV-C): multi-mode region vs static side-by-side implementation.")
	fmt.Fprintf(w, "%-8s %14s %14s %8s\n", "", "multi-mode", "static sum", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %14.0f %14.0f %7.0f%%\n", r.Suite, r.MultiModeCLBs, r.StaticCLBs, 100*r.Ratio)
	}
	fmt.Fprintf(w, "FIR constant vs generic filter: %d vs %d LUTs (%.0f%% of generic; paper: ~33%%)\n",
		firConst, firGeneric, 100*firRatio)
}

// WriteFigures writes the three pair-sweep figures (Fig. 5, Fig. 6 for the
// RegExp suite, Fig. 7) in the fixed report layout. Results are consumed
// in slice order, so for a deterministically ordered result set — e.g. the
// output of Runner.Run at any worker count — the rendered report is byte
// identical.
func WriteFigures(w io.Writer, results []*PairResult) {
	PrintFig5(w, Fig5(results))
	fmt.Fprintln(w)
	PrintFig6(w, Fig6(results, "RegExp"))
	fmt.Fprintln(w)
	PrintFig7(w, Fig7(results))
}

// PrintPair writes one pair's detailed metrics.
func PrintPair(w io.Writer, r *PairResult) {
	fmt.Fprintf(w, "%-18s modes %4d/%4d LUTs  grid %2dx%-2d W=%2d (min %2d)  "+
		"bits MDR=%d Diff=%d EM=%d WL=%d  speedup EM=%.2fx WL=%.2fx  wire EM=%.0f%% WL=%.0f%%\n",
		r.Name, r.ModeLUTs[0], r.ModeLUTs[1], r.Side, r.Side, r.ChannelW, r.MinW,
		r.MDRBits, r.DiffBits, r.EMBits, r.WLBits,
		r.SpeedupEM, r.SpeedupWL, 100*r.WireEM, 100*r.WireWL)
}

// PrintAblation writes the merge-strategy ablation.
func PrintAblation(w io.Writer, a *AblationResult) {
	fmt.Fprintf(w, "Ablation %s:\n", a.Name)
	fmt.Fprintf(w, "  reconfig bits: identity=%d edge-match=%d wire-length=%d\n",
		a.IdentityBits, a.EdgeMatchBits, a.WireLenBits)
	fmt.Fprintf(w, "  wire vs MDR:   identity=%.0f%% edge-match=%.0f%% wire-length=%.0f%%\n",
		100*a.IdentityWire, 100*a.EdgeMatchWire, 100*a.WireLenWire)
	fmt.Fprintf(w, "  Diff decomposition: region factor %.1fx × merge factor %.1fx\n",
		a.RegionFactor, a.MergeFactor)
}
