package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/flow"
)

// PrintTableI writes Table I in the paper's layout.
func PrintTableI(w io.Writer, rows []SizeRow) {
	fmt.Fprintln(w, "TABLE I: Size of the LUT circuits used in the experiments.")
	fmt.Fprintf(w, "%-8s %8s %8s %8s\n", "", "Minimum", "Average", "Maximum")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %8d %8d %8d\n", r.Suite, r.Min, r.Avg, r.Max)
	}
}

// PrintFig5 writes the reconfiguration speed-up series of Fig. 5.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Fig. 5: Reconfiguration speed up of DCS compared to MDR (MDR = 1.0x).")
	fmt.Fprintf(w, "%-8s %28s %28s\n", "", "DCS-Edge matching", "DCS-Wire length")
	fmt.Fprintf(w, "%-8s %8s %9s %9s %8s %9s %9s\n", "", "min", "avg", "max", "min", "avg", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7.2fx %8.2fx %8.2fx %7.2fx %8.2fx %8.2fx\n",
			r.Suite,
			r.EdgeMatch.Min, r.EdgeMatch.Avg, r.EdgeMatch.Max,
			r.WireLen.Min, r.WireLen.Avg, r.WireLen.Max)
	}
}

// PrintFig6 writes the LUT/routing contribution breakdown of Fig. 6.
func PrintFig6(w io.Writer, bars []Fig6Bar) {
	fmt.Fprintln(w, "Fig. 6: Relative contribution of LUTs and routing in the reconfiguration time.")
	fmt.Fprintf(w, "%-14s %12s %14s %10s %10s\n", "", "LUT bits", "routing bits", "LUT %", "routing %")
	for _, b := range bars {
		fmt.Fprintf(w, "%-14s %12.0f %14.0f %9.1f%% %9.1f%%\n",
			b.Label, b.LUTBits, b.RoutingBits, 100*b.LUTShare, 100*(1-b.LUTShare))
	}
}

// PrintFig7 writes the wirelength series of Fig. 7.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Fig. 7: Number of wires relative to MDR (MDR = 100%).")
	fmt.Fprintf(w, "%-8s %28s %28s\n", "", "DCS-Edge matching", "DCS-Wire length")
	fmt.Fprintf(w, "%-8s %8s %9s %9s %8s %9s %9s\n", "", "min", "avg", "max", "min", "avg", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7.0f%% %8.0f%% %8.0f%% %7.0f%% %8.0f%% %8.0f%%\n",
			r.Suite,
			100*r.EdgeMatch.Min, 100*r.EdgeMatch.Avg, 100*r.EdgeMatch.Max,
			100*r.WireLen.Min, 100*r.WireLen.Avg, 100*r.WireLen.Max)
	}
}

// PrintArea writes the §IV-C area observations.
func PrintArea(w io.Writer, rows []AreaRow, firConst, firGeneric int, firRatio float64) {
	fmt.Fprintln(w, "Area (SIV-C): multi-mode region vs static side-by-side implementation.")
	fmt.Fprintf(w, "%-8s %14s %14s %8s\n", "", "multi-mode", "static sum", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %14.0f %14.0f %7.0f%%\n", r.Suite, r.MultiModeCLBs, r.StaticCLBs, 100*r.Ratio)
	}
	fmt.Fprintf(w, "FIR constant vs generic filter: %d vs %d LUTs (%.0f%% of generic; paper: ~33%%)\n",
		firConst, firGeneric, 100*firRatio)
}

// WriteFigures writes the three group-sweep figures (Fig. 5, Fig. 6 for
// the RegExp suite, Fig. 7) in the fixed report layout. Results are
// consumed in slice order, so for a deterministically ordered result set —
// e.g. the output of Runner.Run at any worker count — the rendered report
// is byte identical.
func WriteFigures(w io.Writer, results []*GroupResult) {
	PrintFig5(w, Fig5(results))
	fmt.Fprintln(w)
	PrintFig6(w, Fig6(results, "RegExp"))
	fmt.Fprintln(w)
	PrintFig7(w, Fig7(results))
}

// PrintGroup writes one group's detailed metrics. For 2-mode groups the
// line is identical to the historical pair rendering.
func PrintGroup(w io.Writer, r *GroupResult) {
	luts := make([]string, len(r.ModeLUTs))
	for i, n := range r.ModeLUTs {
		luts[i] = fmt.Sprintf("%4d", n)
	}
	fmt.Fprintf(w, "%-18s modes %s LUTs  grid %2dx%-2d W=%2d (min %2d)  "+
		"bits MDR=%d Diff=%d EM=%d WL=%d  speedup EM=%.2fx WL=%.2fx  wire EM=%.0f%% WL=%.0f%%\n",
		r.Name, strings.Join(luts, "/"), r.Side, r.Side, r.ChannelW, r.MinW,
		r.MDRBits, r.DiffBits, r.EMBits, r.WLBits,
		r.SpeedupEM, r.SpeedupWL, 100*r.WireEM, 100*r.WireWL)
}

// printMatrix renders one switch-cost matrix with its average and
// worst-case transition. A nil matrix (e.g. bitstream assembly failed for
// the Diff accounting) is reported as such rather than omitted.
func printMatrix(w io.Writer, label string, m flow.SwitchMatrix) {
	if m == nil {
		fmt.Fprintf(w, "  %-18s unavailable\n", label)
		return
	}
	from, to, worst := m.Worst()
	fmt.Fprintf(w, "  %-18s avg %10.1f   worst %8d (%d->%d)\n", label, m.Avg(), worst, from, to)
	m.FprintRows(w, "      ")
}

// PrintSwitchMatrices writes a group's N×N switch-cost matrices (bits
// rewritten per specific mode transition, row = from, column = to) under
// the three accountings: MDR full rewrite, MDR diff (actually differing
// bitstream bits) and DCS (LUT bits + differing parameterised bits).
func PrintSwitchMatrices(w io.Writer, r *GroupResult) {
	fmt.Fprintf(w, "%s: %d-mode switch-cost matrices (bits, row=from col=to)\n", r.Name, r.NumModes())
	printMatrix(w, "MDR full rewrite", r.MDRSwitch)
	printMatrix(w, "MDR diff", r.DiffSwitch)
	printMatrix(w, "DCS parameterised", r.DCSSwitch)
}

// WriteGroupReport writes the multi-mode group report: one detail line and
// the switch-cost matrices per group. Like WriteFigures it consumes the
// results in slice order, so the rendering is deterministic at any worker
// count.
func WriteGroupReport(w io.Writer, results []*GroupResult) {
	fmt.Fprintln(w, "Multi-mode groups: per-switch reconfiguration cost")
	for _, r := range results {
		fmt.Fprintln(w)
		PrintGroup(w, r)
		PrintSwitchMatrices(w, r)
	}
}

// PrintAblation writes the merge-strategy ablation.
func PrintAblation(w io.Writer, a *AblationResult) {
	fmt.Fprintf(w, "Ablation %s:\n", a.Name)
	fmt.Fprintf(w, "  reconfig bits: identity=%d edge-match=%d wire-length=%d\n",
		a.IdentityBits, a.EdgeMatchBits, a.WireLenBits)
	fmt.Fprintf(w, "  wire vs MDR:   identity=%.0f%% edge-match=%.0f%% wire-length=%.0f%%\n",
		100*a.IdentityWire, 100*a.EdgeMatchWire, 100*a.WireLenWire)
	fmt.Fprintf(w, "  Diff decomposition: region factor %.1fx × merge factor %.1fx\n",
		a.RegionFactor, a.MergeFactor)
}
