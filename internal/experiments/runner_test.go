package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/flow"
	"repro/internal/gen/regexgen"
	"repro/internal/netlist"
)

// tinySuites builds a fast two-suite workload (small regex engines) for
// runner tests: 2 suites × 2 pairs = 4 jobs.
func tinySuites(t *testing.T, sc Scale) []*Suite {
	t.Helper()
	cfg := flow.Config{PlaceEffort: sc.Effort, Seed: sc.Seed}
	mk := func(suiteName string, patterns []string) *Suite {
		var nls []*netlist.Netlist
		for i, p := range patterns {
			n, err := regexgen.Generate(fmt.Sprintf("%s%d", suiteName, i), p, regexgen.Options{})
			if err != nil {
				t.Fatal(err)
			}
			nls = append(nls, n)
		}
		circuits, err := flow.MapModes(nls, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return &Suite{Name: suiteName, Circuits: circuits, Groups: [][]int{{0, 1}, {0, 2}}}
	}
	return []*Suite{
		mk("RegExp", []string{`GET /(a|b)x+`, `POST /(c|d)y+`, `PUT /(e|f)z+`}),
		mk("Tiny", []string{`ab(c|d)e`, `fg(h|i)j`, `kl(m|n)o`}),
	}
}

// TestRunnerDeterministicAcrossWorkerCounts runs the same sweep serially
// and on a wide pool and demands identical results — both the structured
// metrics and the rendered report, byte for byte. Under -race this also
// exercises the shared cache and shared suites concurrently.
func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := Scale{Effort: 0.1, Seed: 1}
	suites := tinySuites(t, sc)

	var serial []*GroupResult
	for _, workers := range []int{1, 8} {
		sc := sc
		sc.Cache = flow.NewCache()
		got, err := (&Runner{Workers: workers}).Run(suites, sc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 4 {
			t.Fatalf("workers=%d: %d results, want 4", workers, len(got))
		}
		for i, r := range got {
			wantSuite := suites[i/2].Name
			if r.Suite != wantSuite {
				t.Fatalf("workers=%d: result %d from suite %s, want %s (ordering broken)",
					workers, i, r.Suite, wantSuite)
			}
		}
		if workers == 1 {
			serial = got
			continue
		}
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d: results differ from serial run", workers)
		}
		var a, b bytes.Buffer
		WriteFigures(&a, serial)
		WriteFigures(&b, got)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("workers=%d: rendered report differs from serial run", workers)
		}
	}
}

// TestRunSuiteMatchesRunner checks the compatibility wrapper: RunSuite must
// behave exactly like a one-worker Runner over a single suite, including
// progress callbacks in enumeration order.
func TestRunSuiteMatchesRunner(t *testing.T) {
	sc := Scale{Effort: 0.1, Seed: 1}
	suites := tinySuites(t, sc)

	var msgs []string
	got, err := RunSuite(suites[0], sc, func(m string) { msgs = append(msgs, m) })
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Runner{Workers: 1}).Run(suites[:1], sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RunSuite results differ from Runner results")
	}
	wantMsgs := []string{"RegExp group (0,1)", "RegExp group (0,2)"}
	if !reflect.DeepEqual(msgs, wantMsgs) {
		t.Fatalf("progress = %v, want %v", msgs, wantMsgs)
	}
}

// TestRunnerSharedGraphsUnmutated is the regression test for RRG sharing:
// after a concurrent sweep in which every worker routed over the cached
// graphs, each graph must still checksum identically to a freshly built
// copy of the same architecture.
func TestRunnerSharedGraphsUnmutated(t *testing.T) {
	sc := Scale{Effort: 0.1, Seed: 1, Cache: flow.NewCache()}
	suites := tinySuites(t, sc)
	if _, err := (&Runner{Workers: 4}).Run(suites, sc); err != nil {
		t.Fatal(err)
	}
	graphs := sc.Cache.Graphs()
	if len(graphs) == 0 {
		t.Fatal("sweep left no graphs in the shared cache")
	}
	for _, g := range graphs {
		fresh := arch.BuildGraph(g.Arch)
		if g.Checksum() != fresh.Checksum() {
			t.Errorf("shared graph for %dx%d W=%d was mutated during the sweep",
				g.Arch.Width, g.Arch.Height, g.Arch.W)
		}
	}
}
