// Package experiments reproduces the evaluation section of the paper:
// Table I (benchmark sizes), Fig. 5 (reconfiguration speed-up), Fig. 6
// (LUT/routing contribution breakdown), Fig. 7 (per-mode wirelength), the
// §IV-C area observations, and the ablations discussed in the text. The
// workloads are the three suites of §IV-A: regular-expression engines,
// constant-coefficient FIR filters, and general (MCNC-style) circuits.
//
// The benchmark × pair sweep is executed by Runner, a worker pool that
// fans the independent jobs across GOMAXPROCS (or any requested number of)
// workers with deterministic result ordering, sharing routing-resource
// graphs and per-benchmark placements between jobs through a flow.Cache.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/flow"
	"repro/internal/gen/firgen"
	"repro/internal/gen/mcncgen"
	"repro/internal/gen/regexgen"
	"repro/internal/lutnet"
	"repro/internal/netlist"
)

// Scale controls experiment size so the harness can run anywhere from a
// smoke test to the full paper configuration.
type Scale struct {
	// PairsPerSuite caps the number of multi-mode circuits per suite
	// (paper: 10). 0 means all.
	PairsPerSuite int
	// Effort is the annealing effort (paper-equivalent ≈ 1.0).
	Effort float64
	Seed   int64
	// Cache shares deterministic intermediate products (routing-resource
	// graphs, placements) between jobs. Runner fills it automatically;
	// set it explicitly to extend the sharing across separate runs (e.g.
	// the figure sweep and the ablations of one mmbench invocation).
	// Nil means no memoization. Results are identical either way.
	Cache *flow.Cache
}

// DefaultScale is a laptop-friendly configuration that preserves the
// paper's qualitative results.
func DefaultScale() Scale { return Scale{PairsPerSuite: 4, Effort: 0.25, Seed: 1} }

// FullScale reproduces the paper's complete sweep (30 multi-mode pairs).
func FullScale() Scale { return Scale{PairsPerSuite: 10, Effort: 0.5, Seed: 1} }

// Suite is one benchmark family with its multi-mode combinations.
type Suite struct {
	Name     string
	Circuits []*lutnet.Circuit
	// Pairs lists mode-circuit index combinations forming multi-mode
	// circuits.
	Pairs [][2]int
}

func (s *Suite) config(sc Scale) flow.Config {
	return flow.Config{PlaceEffort: sc.Effort, Seed: sc.Seed, Cache: sc.Cache}
}

// BuildSuites generates the three benchmark suites of §IV-A.
func BuildSuites(sc Scale) ([]*Suite, error) {
	cfg := flow.Config{PlaceEffort: sc.Effort, Seed: sc.Seed}

	// RegExp: 5 engines, all C(5,2)=10 combinations.
	var regexNLs []*netlist.Netlist
	for _, r := range regexgen.BleedingEdgeRules() {
		n, err := regexgen.Generate(r.Name, r.Pattern, regexgen.Options{})
		if err != nil {
			return nil, err
		}
		regexNLs = append(regexNLs, n)
	}
	regexCircuits, err := flow.MapModes(regexNLs, cfg)
	if err != nil {
		return nil, err
	}
	regexSuite := &Suite{Name: "RegExp", Circuits: regexCircuits, Pairs: allPairs(len(regexCircuits))}

	// FIR: 10 low-pass + 10 high-pass; pair i combines LP_i with HP_i.
	var firNLs []*netlist.Netlist
	for i := 0; i < 10; i++ {
		lp := firgen.DefaultSpec(firgen.LowPass, int64(i))
		n, err := firgen.Generate(fmt.Sprintf("lp%d", i), lp, firgen.Design(lp))
		if err != nil {
			return nil, err
		}
		firNLs = append(firNLs, n)
	}
	for i := 0; i < 10; i++ {
		hp := firgen.DefaultSpec(firgen.HighPass, int64(100+i))
		n, err := firgen.Generate(fmt.Sprintf("hp%d", i), hp, firgen.Design(hp))
		if err != nil {
			return nil, err
		}
		firNLs = append(firNLs, n)
	}
	firCircuits, err := flow.MapModes(firNLs, cfg)
	if err != nil {
		return nil, err
	}
	firSuite := &Suite{Name: "FIR", Circuits: firCircuits}
	for i := 0; i < 10; i++ {
		firSuite.Pairs = append(firSuite.Pairs, [2]int{i, 10 + i})
	}

	// MCNC-like: 5 synthetic circuits, all combinations.
	var mcncNLs []*netlist.Netlist
	for _, spec := range mcncgen.Suite() {
		n, err := mcncgen.Generate(spec)
		if err != nil {
			return nil, err
		}
		mcncNLs = append(mcncNLs, n)
	}
	mcncCircuits, err := flow.MapModes(mcncNLs, cfg)
	if err != nil {
		return nil, err
	}
	mcncSuite := &Suite{Name: "MCNC", Circuits: mcncCircuits, Pairs: allPairs(len(mcncCircuits))}

	suites := []*Suite{regexSuite, firSuite, mcncSuite}
	for _, s := range suites {
		if sc.PairsPerSuite > 0 && len(s.Pairs) > sc.PairsPerSuite {
			s.Pairs = s.Pairs[:sc.PairsPerSuite]
		}
	}
	return suites, nil
}

func allPairs(n int) [][2]int {
	var out [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// SizeRow is one row of Table I.
type SizeRow struct {
	Suite         string
	Min, Avg, Max int
}

// TableI computes the size statistics of every suite's mode circuits.
func TableI(suites []*Suite) []SizeRow {
	var rows []SizeRow
	for _, s := range suites {
		min, max, sum := math.MaxInt32, 0, 0
		for _, c := range s.Circuits {
			b := c.NumBlocks()
			if b < min {
				min = b
			}
			if b > max {
				max = b
			}
			sum += b
		}
		rows = append(rows, SizeRow{Suite: s.Name, Min: min, Avg: sum / len(s.Circuits), Max: max})
	}
	return rows
}

// PairResult holds every metric of one multi-mode circuit's evaluation.
type PairResult struct {
	Suite, Name string
	ModeLUTs    [2]int
	Side, MinW  int
	ChannelW    int

	MDRBits  int
	DiffBits int // Diff accounting (all LUT bits + differing routing bits)
	EMBits   int // DCS edge matching
	WLBits   int // DCS wire-length optimisation

	// Routing-only cell counts for the Fig. 6 breakdown.
	LUTBitsTotal    int
	MDRRoutingBits  int
	DiffRoutingBits int
	EMRoutingBits   int
	WLRoutingBits   int

	SpeedupEM float64
	SpeedupWL float64

	WireMDR float64
	WireEM  float64 // relative to MDR (1.0 = equal)
	WireWL  float64
}

// RunPair evaluates one multi-mode circuit under MDR, DCS-EdgeMatch and
// DCS-WireLength on a shared region.
func RunPair(suite *Suite, pair [2]int, sc Scale) (*PairResult, error) {
	cfg := suite.config(sc)
	modes := []*lutnet.Circuit{suite.Circuits[pair[0]], suite.Circuits[pair[1]]}
	name := fmt.Sprintf("%s-%d-%d", suite.Name, pair[0], pair[1])

	cmp, err := flow.RunComparison(name, modes, cfg)
	if err != nil {
		return nil, err
	}
	region, mdr, em, wl := cmp.Region, cmp.MDR, cmp.EdgeMatch, cmp.WireLen

	res := &PairResult{
		Suite:    suite.Name,
		Name:     name,
		ModeLUTs: [2]int{modes[0].NumBlocks(), modes[1].NumBlocks()},
		Side:     region.Arch.Width,
		MinW:     region.MinW,
		ChannelW: region.Arch.W,

		MDRBits:  mdr.ReconfigBits,
		DiffBits: mdr.DiffReconfigBits(region.Arch),
		EMBits:   em.ReconfigBits,
		WLBits:   wl.ReconfigBits,

		LUTBitsTotal:    region.Arch.TotalLUTBits(),
		MDRRoutingBits:  region.Graph.NumRoutingBits,
		DiffRoutingBits: mdr.DiffRoutingBits,
		EMRoutingBits:   em.TRoute.ParamRoutingBits,
		WLRoutingBits:   wl.TRoute.ParamRoutingBits,

		SpeedupEM: flow.Speedup(mdr, em),
		SpeedupWL: flow.Speedup(mdr, wl),

		WireMDR: mdr.AvgWire,
		WireEM:  flow.WireRatio(mdr, em),
		WireWL:  flow.WireRatio(mdr, wl),
	}
	return res, nil
}

// RunSuite evaluates every selected pair of a suite, serially (one
// worker). It is the single-suite form of Runner.Run.
func RunSuite(s *Suite, sc Scale, progress func(string)) ([]*PairResult, error) {
	return (&Runner{Workers: 1, Progress: progress}).Run([]*Suite{s}, sc)
}

// Dist is a min/avg/max summary.
type Dist struct {
	Min, Avg, Max float64
}

func distOf(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Dist{Min: sorted[0], Avg: sum / float64(len(sorted)), Max: sorted[len(sorted)-1]}
}

// Fig5Row is one suite's bar group of Fig. 5 (speed-up vs MDR).
type Fig5Row struct {
	Suite     string
	EdgeMatch Dist
	WireLen   Dist
}

// Fig5 summarises the reconfiguration speed-up per suite.
func Fig5(results []*PairResult) []Fig5Row {
	return groupBy(results, func(rs []*PairResult) Fig5Row {
		var em, wl []float64
		for _, r := range rs {
			em = append(em, r.SpeedupEM)
			wl = append(wl, r.SpeedupWL)
		}
		return Fig5Row{Suite: rs[0].Suite, EdgeMatch: distOf(em), WireLen: distOf(wl)}
	})
}

// Fig6Bar is one bar of Fig. 6: the split of rewritten configuration bits
// between LUTs and routing.
type Fig6Bar struct {
	Label       string
	LUTBits     float64 // average
	RoutingBits float64
	LUTShare    float64 // fraction of the bar
}

// Fig6 computes the LUT/routing breakdown for the RegExp suite (the
// paper's Fig. 6), with bars MDR, Diff and DCS (wire-length optimised).
func Fig6(results []*PairResult, suite string) []Fig6Bar {
	var lut, mdrR, diffR, dcsR []float64
	for _, r := range results {
		if r.Suite != suite {
			continue
		}
		lut = append(lut, float64(r.LUTBitsTotal))
		mdrR = append(mdrR, float64(r.MDRRoutingBits))
		diffR = append(diffR, float64(r.DiffRoutingBits))
		dcsR = append(dcsR, float64(r.WLRoutingBits))
	}
	mk := func(label string, routing []float64) Fig6Bar {
		l := distOf(lut).Avg
		rt := distOf(routing).Avg
		share := 0.0
		if l+rt > 0 {
			share = l / (l + rt)
		}
		return Fig6Bar{Label: label, LUTBits: l, RoutingBits: rt, LUTShare: share}
	}
	return []Fig6Bar{
		mk(suite+"-MDR", mdrR),
		mk(suite+"-Diff", diffR),
		mk(suite+"-DCS", dcsR),
	}
}

// Fig7Row is one suite's bar group of Fig. 7 (wirelength relative to MDR).
type Fig7Row struct {
	Suite     string
	EdgeMatch Dist
	WireLen   Dist
}

// Fig7 summarises the per-mode wirelength ratios.
func Fig7(results []*PairResult) []Fig7Row {
	return groupBy(results, func(rs []*PairResult) Fig7Row {
		var em, wl []float64
		for _, r := range rs {
			em = append(em, r.WireEM)
			wl = append(wl, r.WireWL)
		}
		return Fig7Row{Suite: rs[0].Suite, EdgeMatch: distOf(em), WireLen: distOf(wl)}
	})
}

func groupBy[T any](results []*PairResult, f func([]*PairResult) T) []T {
	order := []string{}
	groups := map[string][]*PairResult{}
	for _, r := range results {
		if _, ok := groups[r.Suite]; !ok {
			order = append(order, r.Suite)
		}
		groups[r.Suite] = append(groups[r.Suite], r)
	}
	var out []T
	for _, s := range order {
		out = append(out, f(groups[s]))
	}
	return out
}
