// Package experiments reproduces the evaluation section of the paper:
// Table I (benchmark sizes), Fig. 5 (reconfiguration speed-up), Fig. 6
// (LUT/routing contribution breakdown), Fig. 7 (per-mode wirelength), the
// §IV-C area observations, and the ablations discussed in the text. The
// workloads are the three suites of §IV-A: regular-expression engines,
// constant-coefficient FIR filters, and general (MCNC-style) circuits.
//
// The evaluation is organised around mode *groups*: a group is any set of
// N ≥ 2 mode-circuit indices implemented together on one shared region.
// The paper's experiments are the 2-mode special case; BuildMultiSuites
// adds groups of 3–4 modes, for which every result carries the N×N
// switch-cost matrix (bits rewritten per specific mode transition).
//
// The benchmark × group sweep is executed by Runner, a worker pool that
// fans the independent jobs across GOMAXPROCS (or any requested number of)
// workers with deterministic result ordering, sharing routing-resource
// graphs and per-benchmark placements between jobs through a flow.Cache.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/codec"
	"repro/internal/flow"
	"repro/internal/gen/firgen"
	"repro/internal/gen/mcncgen"
	"repro/internal/gen/regexgen"
	"repro/internal/lutnet"
	"repro/internal/netlist"
	"repro/internal/route"
)

// Scale controls experiment size so the harness can run anywhere from a
// smoke test to the full paper configuration.
type Scale struct {
	// GroupsPerSuite caps the number of multi-mode groups per suite
	// (paper: 10). 0 means all. When the cap bites, a seeded
	// deterministic spread of the enumerated groups is selected, not a
	// prefix — a prefix would keep only the lowest-index combinations
	// and bias every statistic towards the first few benchmarks.
	GroupsPerSuite int
	// Effort is the annealing effort (paper-equivalent ≈ 1.0).
	Effort float64
	Seed   int64
	// RouteWorkers is the router's per-route worker count (see
	// flow.Config.RouteWorkers). Results are byte-identical at any value,
	// so it is not part of any artifact key.
	RouteWorkers int
	// PlaceWorkers is the annealers' worker count (see
	// flow.Config.PlaceWorkers). Like RouteWorkers, results are
	// byte-identical at any value, so it is not part of any artifact key.
	PlaceWorkers int
	// PlaceStarts is the placement multi-start count (see
	// flow.Config.PlaceStarts). It changes results and IS part of the
	// group-result artifact key.
	PlaceStarts int
	// Cache shares deterministic intermediate products (routing-resource
	// graphs, placements) between jobs. Runner fills it automatically;
	// set it explicitly to extend the sharing across separate runs (e.g.
	// the figure sweep and the ablations of one mmbench invocation), and
	// back it with a persistent store (flow.NewCacheWithStore) to extend
	// it across processes — whole group results are then served from the
	// store. Nil means no memoization. Results are identical either way.
	Cache *flow.Cache
}

// DefaultScale is a laptop-friendly configuration that preserves the
// paper's qualitative results.
func DefaultScale() Scale { return Scale{GroupsPerSuite: 4, Effort: 0.25, Seed: 1} }

// FullScale reproduces the paper's complete sweep (30 multi-mode pairs).
func FullScale() Scale { return Scale{GroupsPerSuite: 10, Effort: 0.5, Seed: 1} }

// Suite is one benchmark family with its multi-mode combinations.
type Suite struct {
	Name     string
	Circuits []*lutnet.Circuit
	// Groups lists mode-circuit index sets forming multi-mode circuits.
	// Every group has at least two members; the paper's pair sweep is
	// the all-2-mode-groups case.
	Groups [][]int
}

func (s *Suite) config(sc Scale) flow.Config {
	return flow.Config{
		PlaceEffort: sc.Effort, Seed: sc.Seed,
		RouteWorkers: sc.RouteWorkers,
		PlaceWorkers: sc.PlaceWorkers, PlaceStarts: sc.PlaceStarts,
		Cache: sc.Cache,
	}
}

// BuildSuites generates the three benchmark suites of §IV-A with the
// paper's 2-mode groups.
func BuildSuites(sc Scale) ([]*Suite, error) {
	cfg := flow.Config{PlaceEffort: sc.Effort, Seed: sc.Seed}

	// RegExp: 5 engines, all C(5,2)=10 combinations.
	var regexNLs []*netlist.Netlist
	for _, r := range regexgen.BleedingEdgeRules() {
		n, err := regexgen.Generate(r.Name, r.Pattern, regexgen.Options{})
		if err != nil {
			return nil, err
		}
		regexNLs = append(regexNLs, n)
	}
	regexCircuits, err := flow.MapModes(regexNLs, cfg)
	if err != nil {
		return nil, err
	}
	regexSuite := &Suite{Name: "RegExp", Circuits: regexCircuits, Groups: allGroups(len(regexCircuits), 2)}

	// FIR: 10 low-pass + 10 high-pass; group i combines LP_i with HP_i.
	var firNLs []*netlist.Netlist
	for i := 0; i < 10; i++ {
		lp := firgen.DefaultSpec(firgen.LowPass, int64(i))
		n, err := firgen.Generate(fmt.Sprintf("lp%d", i), lp, firgen.Design(lp))
		if err != nil {
			return nil, err
		}
		firNLs = append(firNLs, n)
	}
	for i := 0; i < 10; i++ {
		hp := firgen.DefaultSpec(firgen.HighPass, int64(100+i))
		n, err := firgen.Generate(fmt.Sprintf("hp%d", i), hp, firgen.Design(hp))
		if err != nil {
			return nil, err
		}
		firNLs = append(firNLs, n)
	}
	firCircuits, err := flow.MapModes(firNLs, cfg)
	if err != nil {
		return nil, err
	}
	firSuite := &Suite{Name: "FIR", Circuits: firCircuits}
	for i := 0; i < 10; i++ {
		firSuite.Groups = append(firSuite.Groups, []int{i, 10 + i})
	}

	// MCNC-like: 5 synthetic circuits, all combinations.
	var mcncNLs []*netlist.Netlist
	for _, spec := range mcncgen.Suite() {
		n, err := mcncgen.Generate(spec)
		if err != nil {
			return nil, err
		}
		mcncNLs = append(mcncNLs, n)
	}
	mcncCircuits, err := flow.MapModes(mcncNLs, cfg)
	if err != nil {
		return nil, err
	}
	mcncSuite := &Suite{Name: "MCNC", Circuits: mcncCircuits, Groups: allGroups(len(mcncCircuits), 2)}

	suites := []*Suite{regexSuite, firSuite, mcncSuite}
	for _, s := range suites {
		s.Groups = selectSpread(s.Groups, sc.GroupsPerSuite, sc.Seed)
	}
	return suites, nil
}

// FIRBankSpecs is the coefficient-bank set of the FIRBank multi-mode
// suite: four 4-tap banks of an adaptive filter (two low-pass cutoffs,
// two high-pass). Exported so the examples/coeffbank walkthrough
// illustrates exactly the suite that `mmbench -exp multi` evaluates.
func FIRBankSpecs() []firgen.Spec {
	return []firgen.Spec{
		{Kind: firgen.LowPass, Taps: 4, NonZero: 4, Cutoff: 0.18, CoeffBits: 4, InputBits: 4, Seed: 1},
		{Kind: firgen.LowPass, Taps: 4, NonZero: 4, Cutoff: 0.32, CoeffBits: 4, InputBits: 4, Seed: 2},
		{Kind: firgen.HighPass, Taps: 4, NonZero: 4, Cutoff: 0.24, CoeffBits: 4, InputBits: 4, Seed: 3},
		{Kind: firgen.HighPass, Taps: 4, NonZero: 4, Cutoff: 0.38, CoeffBits: 4, InputBits: 4, Seed: 4},
	}
}

// BuildMultiSuites generates suites whose groups have three or more
// modes — the scenario axis the pair sweep cannot express. The circuits
// are kept compact (a fraction of the paper's benchmark sizes) so the
// N-mode combined placement stays tractable:
//
//   - FIRBank: the FIRBankSpecs coefficient banks as one 4-mode group.
//   - RegExpSet: compact protocol signatures evaluated as 3-engine sets.
//   - Xceiver: a transceiver-style group of three mutually exclusive
//     protocol front-ends (web, ftp, dns).
//
// Every group result of these suites carries N×N switch-cost matrices.
func BuildMultiSuites(sc Scale) ([]*Suite, error) {
	cfg := flow.Config{PlaceEffort: sc.Effort, Seed: sc.Seed}

	// FIRBank: one 4-mode group of 4-tap coefficient banks.
	var firNLs []*netlist.Netlist
	for i, spec := range FIRBankSpecs() {
		n, err := firgen.Generate(fmt.Sprintf("bank%d", i), spec, firgen.Design(spec))
		if err != nil {
			return nil, err
		}
		firNLs = append(firNLs, n)
	}
	firCircuits, err := flow.MapModes(firNLs, cfg)
	if err != nil {
		return nil, err
	}
	firSuite := &Suite{Name: "FIRBank", Circuits: firCircuits, Groups: [][]int{{0, 1, 2, 3}}}

	// RegExpSet: four compact engines, all 3-mode subsets.
	patterns := []string{`GET /(a|b)x+`, `POST /(c|d)y+`, `PUT /(e|f)z+`, `HEAD /(g|h)w+`}
	var reNLs []*netlist.Netlist
	for i, p := range patterns {
		n, err := regexgen.Generate(fmt.Sprintf("re%d", i), p, regexgen.Options{})
		if err != nil {
			return nil, err
		}
		reNLs = append(reNLs, n)
	}
	reCircuits, err := flow.MapModes(reNLs, cfg)
	if err != nil {
		return nil, err
	}
	reSuite := &Suite{Name: "RegExpSet", Circuits: reCircuits, Groups: allGroups(len(reCircuits), 3)}

	// Xceiver: three mutually exclusive protocol front-ends.
	protos := []struct{ name, pattern string }{
		{"web", `GET /(admin|login)\?\w{4,}`},
		{"ftp", `(USER|PASS) \w{8,}`},
		{"dns", `\x00\x01(a|b|c)\w{6,}`},
	}
	var xNLs []*netlist.Netlist
	for _, p := range protos {
		n, err := regexgen.Generate(p.name, p.pattern, regexgen.Options{})
		if err != nil {
			return nil, err
		}
		xNLs = append(xNLs, n)
	}
	xCircuits, err := flow.MapModes(xNLs, cfg)
	if err != nil {
		return nil, err
	}
	xSuite := &Suite{Name: "Xceiver", Circuits: xCircuits, Groups: [][]int{{0, 1, 2}}}

	suites := []*Suite{firSuite, reSuite, xSuite}
	for _, s := range suites {
		s.Groups = selectSpread(s.Groups, sc.GroupsPerSuite, sc.Seed)
	}
	return suites, nil
}

// allGroups enumerates every k-subset of {0..n-1} in lexicographic order.
func allGroups(n, k int) [][]int {
	var out [][]int
	group := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			out = append(out, append([]int(nil), group...))
			return
		}
		for i := start; i < n; i++ {
			group[depth] = i
			rec(i+1, depth+1)
		}
	}
	if k >= 1 && k <= n {
		rec(0, 0)
	}
	return out
}

// selectSpread caps the group list at max entries by drawing a seeded
// deterministic sample spread over the whole enumeration, then restores
// enumeration order so reports stay order-stable. A cap of 0 (or a list
// already within the cap) returns the list unchanged.
func selectSpread(groups [][]int, max int, seed int64) [][]int {
	if max <= 0 || len(groups) <= max {
		return groups
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(groups))[:max]
	sort.Ints(idx)
	out := make([][]int, 0, max)
	for _, i := range idx {
		out = append(out, groups[i])
	}
	return out
}

// SizeRow is one row of Table I.
type SizeRow struct {
	Suite         string
	Min, Avg, Max int
}

// TableI computes the size statistics of every suite's mode circuits.
func TableI(suites []*Suite) []SizeRow {
	var rows []SizeRow
	for _, s := range suites {
		min, max, sum := math.MaxInt32, 0, 0
		for _, c := range s.Circuits {
			b := c.NumBlocks()
			if b < min {
				min = b
			}
			if b > max {
				max = b
			}
			sum += b
		}
		rows = append(rows, SizeRow{Suite: s.Name, Min: min, Avg: sum / len(s.Circuits), Max: max})
	}
	return rows
}

// GroupResult holds every metric of one multi-mode group's evaluation.
type GroupResult struct {
	Suite, Name string
	ModeLUTs    []int
	Side, MinW  int
	ChannelW    int

	MDRBits  int
	DiffBits int // Diff accounting (all LUT bits + differing routing bits)
	EMBits   int // DCS edge matching
	WLBits   int // DCS wire-length optimisation

	// Routing-only cell counts for the Fig. 6 breakdown.
	LUTBitsTotal    int
	MDRRoutingBits  int
	DiffRoutingBits int
	EMRoutingBits   int
	WLRoutingBits   int

	SpeedupEM float64
	SpeedupWL float64

	WireMDR float64
	WireEM  float64 // relative to MDR (1.0 = equal)
	WireWL  float64

	// Per-switch cost matrices: bits rewritten when switching from mode i
	// to mode j, under the three accountings the paper compares. For a
	// 2-mode group these collapse to the single-number metrics above; for
	// N ≥ 3 they expose the cost of each specific transition.
	MDRSwitch  flow.SwitchMatrix // full-region rewrite
	DiffSwitch flow.SwitchMatrix // actually differing bitstream bits
	DCSSwitch  flow.SwitchMatrix // LUT bits + differing parameterised bits (WL objective)

	// Router work statistics, aggregated over the group's final routes
	// (MDR per mode plus both DCS objectives). Deterministic, so they are
	// encoded in the stored artifact like every other field.
	RouteIters   int // summed negotiation iterations
	RerouteConns int // summed connection reroutes
	PeakOveruse  int // worst single-mode node overuse seen
}

// NumModes returns the group's mode count.
func (r *GroupResult) NumModes() int { return len(r.ModeLUTs) }

// groupName renders a group's canonical name: the suite name followed by
// the member indices ("RegExp-0-1"; identical to the historical pair
// naming for 2-mode groups).
func groupName(suite string, group []int) string {
	var sb strings.Builder
	sb.WriteString(suite)
	for _, m := range group {
		fmt.Fprintf(&sb, "-%d", m)
	}
	return sb.String()
}

// groupModes resolves a group's circuit list.
func groupModes(s *Suite, group []int) []*lutnet.Circuit {
	modes := make([]*lutnet.Circuit, len(group))
	for i, idx := range group {
		modes[i] = s.Circuits[idx]
	}
	return modes
}

// RunGroup evaluates one multi-mode group under MDR, DCS-EdgeMatch and
// DCS-WireLength on a shared region, including the N×N switch-cost
// matrices. When the Scale's Cache carries a persistent artifact store,
// the whole evaluation is content-addressed: a warm store serves the
// result without running any flow (and therefore without any annealing or
// routing), and a computed result is written back for later processes.
// Store entries are pure functions of their keys, so warm and cold runs
// render byte-identical reports.
func RunGroup(suite *Suite, group []int, sc Scale) (*GroupResult, error) {
	if len(group) < 2 {
		return nil, fmt.Errorf("experiments: group %v has fewer than two modes", group)
	}
	cfg := suite.config(sc)
	modes := groupModes(suite, group)
	name := groupName(suite.Name, group)

	persistent := sc.Cache != nil && sc.Cache.Store() != nil
	var key codec.Hash
	if persistent {
		key = groupResultKey(sc.Cache, name, modes, sc)
		if data, ok := sc.Cache.GetArtifact(key); ok {
			if res, err := decodeGroupResult(data); err == nil {
				return res, nil
			}
			// Undecodable (stale format, logical corruption below the
			// store's checksum): recompute and overwrite below.
		}
	}

	cmp, err := flow.RunComparison(name, modes, cfg)
	if err != nil {
		return nil, err
	}
	region, mdr, em, wl := cmp.Region, cmp.MDR, cmp.EdgeMatch, cmp.WireLen

	luts := make([]int, len(modes))
	for i, m := range modes {
		luts[i] = m.NumBlocks()
	}
	// The Diff matrix assembles real bitstreams — negligible next to the
	// routing above, but the only part of the job the pre-group pair sweep
	// never exercised. If assembly fails the matrix stays nil rather than
	// sinking the whole sweep: the figures don't consume it, and the group
	// report renders the gap explicitly as "unavailable".
	diffSwitch, _ := flow.MDRDiffSwitchMatrix(region, modes, mdr)

	res := &GroupResult{
		Suite:    suite.Name,
		Name:     name,
		ModeLUTs: luts,
		Side:     region.Arch.Width,
		MinW:     region.MinW,
		ChannelW: region.Arch.W,

		MDRBits:  mdr.ReconfigBits,
		DiffBits: mdr.DiffReconfigBits(region.Arch),
		EMBits:   em.ReconfigBits,
		WLBits:   wl.ReconfigBits,

		LUTBitsTotal:    region.Arch.TotalLUTBits(),
		MDRRoutingBits:  region.Graph.NumRoutingBits,
		DiffRoutingBits: mdr.DiffRoutingBits,
		EMRoutingBits:   em.TRoute.ParamRoutingBits,
		WLRoutingBits:   wl.TRoute.ParamRoutingBits,

		SpeedupEM: flow.Speedup(mdr, em),
		SpeedupWL: flow.Speedup(mdr, wl),

		WireMDR: mdr.AvgWire,
		WireEM:  flow.WireRatio(mdr, em),
		WireWL:  flow.WireRatio(mdr, wl),

		MDRSwitch:  flow.MDRSwitchMatrix(region, len(modes)),
		DiffSwitch: diffSwitch,
		DCSSwitch:  flow.DCSSwitchMatrix(region.Arch, wl.TRoute, len(modes)),
	}
	var sum route.Summary
	for _, m := range mdr.PerMode {
		sum.Add(m.Routing.Stats)
	}
	sum.Add(em.TRoute.Route.Stats)
	sum.Add(wl.TRoute.Route.Stats)
	res.RouteIters, res.RerouteConns, res.PeakOveruse = sum.Iterations, sum.Rerouted, sum.PeakOveruse
	if persistent {
		sc.Cache.PutArtifact(key, encodeGroupResult(res))
	}
	return res, nil
}

// RunSuite evaluates every selected group of a suite, serially (one
// worker). It is the single-suite form of Runner.Run.
func RunSuite(s *Suite, sc Scale, progress func(string)) ([]*GroupResult, error) {
	return (&Runner{Workers: 1, Progress: progress}).Run([]*Suite{s}, sc)
}

// Dist is a min/avg/max summary.
type Dist struct {
	Min, Avg, Max float64
}

func distOf(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Dist{Min: sorted[0], Avg: sum / float64(len(sorted)), Max: sorted[len(sorted)-1]}
}

// Fig5Row is one suite's bar group of Fig. 5 (speed-up vs MDR).
type Fig5Row struct {
	Suite     string
	EdgeMatch Dist
	WireLen   Dist
}

// Fig5 summarises the reconfiguration speed-up per suite.
func Fig5(results []*GroupResult) []Fig5Row {
	return groupBy(results, func(rs []*GroupResult) Fig5Row {
		var em, wl []float64
		for _, r := range rs {
			em = append(em, r.SpeedupEM)
			wl = append(wl, r.SpeedupWL)
		}
		return Fig5Row{Suite: rs[0].Suite, EdgeMatch: distOf(em), WireLen: distOf(wl)}
	})
}

// Fig6Bar is one bar of Fig. 6: the split of rewritten configuration bits
// between LUTs and routing.
type Fig6Bar struct {
	Label       string
	LUTBits     float64 // average
	RoutingBits float64
	LUTShare    float64 // fraction of the bar
}

// Fig6 computes the LUT/routing breakdown for the RegExp suite (the
// paper's Fig. 6), with bars MDR, Diff and DCS (wire-length optimised).
func Fig6(results []*GroupResult, suite string) []Fig6Bar {
	var lut, mdrR, diffR, dcsR []float64
	for _, r := range results {
		if r.Suite != suite {
			continue
		}
		lut = append(lut, float64(r.LUTBitsTotal))
		mdrR = append(mdrR, float64(r.MDRRoutingBits))
		diffR = append(diffR, float64(r.DiffRoutingBits))
		dcsR = append(dcsR, float64(r.WLRoutingBits))
	}
	mk := func(label string, routing []float64) Fig6Bar {
		l := distOf(lut).Avg
		rt := distOf(routing).Avg
		share := 0.0
		if l+rt > 0 {
			share = l / (l + rt)
		}
		return Fig6Bar{Label: label, LUTBits: l, RoutingBits: rt, LUTShare: share}
	}
	return []Fig6Bar{
		mk(suite+"-MDR", mdrR),
		mk(suite+"-Diff", diffR),
		mk(suite+"-DCS", dcsR),
	}
}

// Fig7Row is one suite's bar group of Fig. 7 (wirelength relative to MDR).
type Fig7Row struct {
	Suite     string
	EdgeMatch Dist
	WireLen   Dist
}

// Fig7 summarises the per-mode wirelength ratios.
func Fig7(results []*GroupResult) []Fig7Row {
	return groupBy(results, func(rs []*GroupResult) Fig7Row {
		var em, wl []float64
		for _, r := range rs {
			em = append(em, r.WireEM)
			wl = append(wl, r.WireWL)
		}
		return Fig7Row{Suite: rs[0].Suite, EdgeMatch: distOf(em), WireLen: distOf(wl)}
	})
}

func groupBy[T any](results []*GroupResult, f func([]*GroupResult) T) []T {
	order := []string{}
	groups := map[string][]*GroupResult{}
	for _, r := range results {
		if _, ok := groups[r.Suite]; !ok {
			order = append(order, r.Suite)
		}
		groups[r.Suite] = append(groups[r.Suite], r)
	}
	var out []T
	for _, s := range order {
		out = append(out, f(groups[s]))
	}
	return out
}
