package experiments

import (
	"strings"
	"testing"
)

func TestBuildSuitesShapes(t *testing.T) {
	sc := Scale{PairsPerSuite: 2, Effort: 0.1, Seed: 1}
	suites, err := BuildSuites(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 3 {
		t.Fatalf("suites = %d, want 3", len(suites))
	}
	wantCircuits := map[string]int{"RegExp": 5, "FIR": 20, "MCNC": 5}
	for _, s := range suites {
		if len(s.Circuits) != wantCircuits[s.Name] {
			t.Errorf("%s: %d circuits, want %d", s.Name, len(s.Circuits), wantCircuits[s.Name])
		}
		if len(s.Pairs) != 2 {
			t.Errorf("%s: %d pairs, want 2 (capped)", s.Name, len(s.Pairs))
		}
		for _, p := range s.Pairs {
			if p[0] < 0 || p[0] >= len(s.Circuits) || p[1] < 0 || p[1] >= len(s.Circuits) || p[0] == p[1] {
				t.Errorf("%s: bad pair %v", s.Name, p)
			}
		}
	}
}

func TestTableIMatchesPaperEnvelope(t *testing.T) {
	suites, err := BuildSuites(Scale{PairsPerSuite: 1, Effort: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := TableI(suites)
	// Paper Table I: RegExp 224/243/261, FIR 235/302/371, MCNC 264/310/404.
	paper := map[string][3]int{
		"RegExp": {224, 243, 261},
		"FIR":    {235, 302, 371},
		"MCNC":   {264, 310, 404},
	}
	for _, r := range rows {
		want := paper[r.Suite]
		// Calibration tolerance: ±20% on each statistic.
		check := func(got, target int, label string) {
			lo, hi := target*8/10, target*12/10
			if got < lo || got > hi {
				t.Errorf("%s %s = %d outside ±20%% of paper's %d", r.Suite, label, got, target)
			}
		}
		check(r.Min, want[0], "min")
		check(r.Avg, want[1], "avg")
		check(r.Max, want[2], "max")
	}
}

func TestAreaSavingsNearPaper(t *testing.T) {
	suites, err := BuildSuites(Scale{PairsPerSuite: 4, Effort: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range AreaSavings(suites) {
		// Two similar-size modes share one region: ratio near 50%.
		if row.Ratio < 0.40 || row.Ratio > 0.62 {
			t.Errorf("%s area ratio %.2f outside the ~50%% envelope", row.Suite, row.Ratio)
		}
	}
}

func TestFIRGenericRatioNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c, g, ratio, err := FIRGenericRatio(Scale{Effort: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || g <= c {
		t.Fatalf("sizes: const %d generic %d", c, g)
	}
	// Paper: constant filter ≈ 33% of the generic one.
	if ratio < 0.15 || ratio > 0.55 {
		t.Errorf("constant/generic ratio %.2f far from paper's ~0.33", ratio)
	}
}

func TestDistOf(t *testing.T) {
	d := distOf([]float64{3, 1, 2})
	if d.Min != 1 || d.Max != 3 || d.Avg != 2 {
		t.Errorf("distOf = %+v", d)
	}
}

func TestRunPairFullMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: full pair takes ~30s")
	}
	sc := Scale{PairsPerSuite: 1, Effort: 0.12, Seed: 1}
	suites, err := BuildSuites(sc)
	if err != nil {
		t.Fatal(err)
	}
	// FIR pairs are the smallest/quickest.
	var fir *Suite
	for _, s := range suites {
		if s.Name == "FIR" {
			fir = s
		}
	}
	r, err := RunPair(fir, fir.Pairs[0], sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedupWL <= 1 || r.SpeedupEM <= 1 {
		t.Errorf("speed-ups not above 1: EM=%.2f WL=%.2f", r.SpeedupEM, r.SpeedupWL)
	}
	if r.WLBits >= r.MDRBits || r.EMBits >= r.MDRBits {
		t.Errorf("DCS bits not below MDR: %d/%d vs %d", r.WLBits, r.EMBits, r.MDRBits)
	}
	if r.DiffBits >= r.MDRBits {
		t.Errorf("Diff bits %d not below MDR %d", r.DiffBits, r.MDRBits)
	}
	if r.WireWL <= 0 || r.WireEM <= 0 {
		t.Errorf("wire ratios: EM=%.2f WL=%.2f", r.WireEM, r.WireWL)
	}
	// Reports must render.
	var sb strings.Builder
	PrintPair(&sb, r)
	PrintFig5(&sb, Fig5([]*PairResult{r}))
	PrintFig6(&sb, Fig6([]*PairResult{r}, "FIR"))
	PrintFig7(&sb, Fig7([]*PairResult{r}))
	if !strings.Contains(sb.String(), "FIR") {
		t.Error("report rendering broken")
	}
}
