package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/flow"
)

func TestBuildSuitesShapes(t *testing.T) {
	sc := Scale{GroupsPerSuite: 2, Effort: 0.1, Seed: 1}
	suites, err := BuildSuites(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 3 {
		t.Fatalf("suites = %d, want 3", len(suites))
	}
	wantCircuits := map[string]int{"RegExp": 5, "FIR": 20, "MCNC": 5}
	for _, s := range suites {
		if len(s.Circuits) != wantCircuits[s.Name] {
			t.Errorf("%s: %d circuits, want %d", s.Name, len(s.Circuits), wantCircuits[s.Name])
		}
		if len(s.Groups) != 2 {
			t.Errorf("%s: %d groups, want 2 (capped)", s.Name, len(s.Groups))
		}
		for _, grp := range s.Groups {
			if len(grp) != 2 {
				t.Errorf("%s: paper suites must form 2-mode groups, got %v", s.Name, grp)
			}
			seen := map[int]bool{}
			for _, idx := range grp {
				if idx < 0 || idx >= len(s.Circuits) || seen[idx] {
					t.Errorf("%s: bad group %v", s.Name, grp)
				}
				seen[idx] = true
			}
		}
	}
}

func TestSelectSpreadDeterministicAndUnbiased(t *testing.T) {
	groups := allGroups(6, 2) // 15 combinations
	a := selectSpread(groups, 5, 42)
	b := selectSpread(groups, 5, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("seeded spread is not deterministic")
	}
	if len(a) != 5 {
		t.Fatalf("cap not applied: %d groups", len(a))
	}
	// Not the old prefix bias: at least one selected group must come from
	// the back half of the enumeration.
	prefix := true
	for _, g := range a {
		for i, full := range groups[len(groups)/2:] {
			_ = i
			if reflect.DeepEqual(g, full) {
				prefix = false
			}
		}
	}
	if prefix {
		t.Error("spread selected only the enumeration prefix")
	}
	// Selection order must remain the enumeration order.
	last := -1
	pos := map[string]int{}
	for i, g := range groups {
		pos[fmt.Sprint(g)] = i
	}
	for _, g := range a {
		if p := pos[fmt.Sprint(g)]; p < last {
			t.Fatal("spread broke enumeration order")
		} else {
			last = p
		}
	}
	// No cap: unchanged.
	if got := selectSpread(groups, 0, 1); !reflect.DeepEqual(got, groups) {
		t.Error("cap 0 must keep all groups")
	}
}

func TestAllGroups(t *testing.T) {
	if got := len(allGroups(5, 2)); got != 10 {
		t.Errorf("C(5,2) = %d, want 10", got)
	}
	if got := len(allGroups(4, 3)); got != 4 {
		t.Errorf("C(4,3) = %d, want 4", got)
	}
	if got := allGroups(3, 3); len(got) != 1 || !reflect.DeepEqual(got[0], []int{0, 1, 2}) {
		t.Errorf("C(3,3) = %v", got)
	}
	if got := len(allGroups(2, 3)); got != 0 {
		t.Errorf("C(2,3) = %d, want 0", got)
	}
}

func TestTableIMatchesPaperEnvelope(t *testing.T) {
	suites, err := BuildSuites(Scale{GroupsPerSuite: 1, Effort: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := TableI(suites)
	// Paper Table I: RegExp 224/243/261, FIR 235/302/371, MCNC 264/310/404.
	paper := map[string][3]int{
		"RegExp": {224, 243, 261},
		"FIR":    {235, 302, 371},
		"MCNC":   {264, 310, 404},
	}
	for _, r := range rows {
		want := paper[r.Suite]
		// Calibration tolerance: ±20% on each statistic.
		check := func(got, target int, label string) {
			lo, hi := target*8/10, target*12/10
			if got < lo || got > hi {
				t.Errorf("%s %s = %d outside ±20%% of paper's %d", r.Suite, label, got, target)
			}
		}
		check(r.Min, want[0], "min")
		check(r.Avg, want[1], "avg")
		check(r.Max, want[2], "max")
	}
}

func TestAreaSavingsNearPaper(t *testing.T) {
	suites, err := BuildSuites(Scale{GroupsPerSuite: 4, Effort: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range AreaSavings(suites) {
		// Two similar-size modes share one region: ratio near 50%.
		if row.Ratio < 0.40 || row.Ratio > 0.62 {
			t.Errorf("%s area ratio %.2f outside the ~50%% envelope", row.Suite, row.Ratio)
		}
	}
}

func TestFIRGenericRatioNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c, g, ratio, err := FIRGenericRatio(Scale{Effort: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || g <= c {
		t.Fatalf("sizes: const %d generic %d", c, g)
	}
	// Paper: constant filter ≈ 33% of the generic one.
	if ratio < 0.15 || ratio > 0.55 {
		t.Errorf("constant/generic ratio %.2f far from paper's ~0.33", ratio)
	}
}

func TestDistOf(t *testing.T) {
	d := distOf([]float64{3, 1, 2})
	if d.Min != 1 || d.Max != 3 || d.Avg != 2 {
		t.Errorf("distOf = %+v", d)
	}
}

func TestRunGroupFullMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: full group takes ~30s")
	}
	sc := Scale{GroupsPerSuite: 1, Effort: 0.12, Seed: 1}
	suites, err := BuildSuites(sc)
	if err != nil {
		t.Fatal(err)
	}
	// FIR groups are the smallest/quickest.
	var fir *Suite
	for _, s := range suites {
		if s.Name == "FIR" {
			fir = s
		}
	}
	r, err := RunGroup(fir, fir.Groups[0], sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedupWL <= 1 || r.SpeedupEM <= 1 {
		t.Errorf("speed-ups not above 1: EM=%.2f WL=%.2f", r.SpeedupEM, r.SpeedupWL)
	}
	if r.WLBits >= r.MDRBits || r.EMBits >= r.MDRBits {
		t.Errorf("DCS bits not below MDR: %d/%d vs %d", r.WLBits, r.EMBits, r.MDRBits)
	}
	if r.DiffBits >= r.MDRBits {
		t.Errorf("Diff bits %d not below MDR %d", r.DiffBits, r.MDRBits)
	}
	if r.WireWL <= 0 || r.WireEM <= 0 {
		t.Errorf("wire ratios: EM=%.2f WL=%.2f", r.WireEM, r.WireWL)
	}
	// Switch-cost matrices: right shape, symmetric, consistent with the
	// single-number accounting of a 2-mode group.
	n := r.NumModes()
	for _, m := range []struct {
		label string
		mat   flow.SwitchMatrix
	}{{"MDR", r.MDRSwitch}, {"Diff", r.DiffSwitch}, {"DCS", r.DCSSwitch}} {
		if m.mat.N() != n {
			t.Fatalf("%s switch matrix is %d×, want %d×", m.label, m.mat.N(), n)
		}
		if !m.mat.Symmetric() {
			t.Errorf("%s switch matrix not symmetric", m.label)
		}
		for i := 0; i < n; i++ {
			if m.mat[i][i] != 0 {
				t.Errorf("%s switch matrix diagonal not zero", m.label)
			}
		}
	}
	if r.MDRSwitch[0][1] != r.MDRBits {
		t.Errorf("MDR full-rewrite switch %d != reconfig bits %d", r.MDRSwitch[0][1], r.MDRBits)
	}
	if r.DCSSwitch[0][1] != r.WLBits {
		t.Errorf("2-mode DCS switch %d != WL reconfig bits %d", r.DCSSwitch[0][1], r.WLBits)
	}
	if r.DiffSwitch[0][1] <= 0 || r.DiffSwitch[0][1] >= r.MDRBits {
		t.Errorf("Diff switch cost %d outside (0, MDR %d)", r.DiffSwitch[0][1], r.MDRBits)
	}
	// Reports must render.
	var sb strings.Builder
	PrintGroup(&sb, r)
	PrintSwitchMatrices(&sb, r)
	PrintFig5(&sb, Fig5([]*GroupResult{r}))
	PrintFig6(&sb, Fig6([]*GroupResult{r}, "FIR"))
	PrintFig7(&sb, Fig7([]*GroupResult{r}))
	if !strings.Contains(sb.String(), "FIR") {
		t.Error("report rendering broken")
	}
}
