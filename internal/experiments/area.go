package experiments

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/gen/firgen"
	"repro/internal/merge"
	"repro/internal/netlist"
)

// AreaRow captures the §IV-C area observations for one suite: the
// multi-mode region versus static side-by-side implementations.
type AreaRow struct {
	Suite string
	// MultiModeCLBs is the region size shared by all modes (max mode).
	MultiModeCLBs float64
	// StaticCLBs is the summed size of the separate static
	// implementations.
	StaticCLBs float64
	// Ratio = MultiModeCLBs / StaticCLBs (paper: ~50% for RegExp/MCNC).
	Ratio float64
}

// AreaSavings computes the multi-mode vs static area ratio per suite,
// averaged over the selected groups: a group's shared region is sized by
// its biggest mode, the static alternative sums every mode.
func AreaSavings(suites []*Suite) []AreaRow {
	var rows []AreaRow
	for _, s := range suites {
		var mm, static float64
		for _, grp := range s.Groups {
			max, sum := 0, 0
			for _, idx := range grp {
				b := s.Circuits[idx].NumBlocks()
				if b > max {
					max = b
				}
				sum += b
			}
			mm += float64(max)
			static += float64(sum)
		}
		rows = append(rows, AreaRow{
			Suite:         s.Name,
			MultiModeCLBs: mm / float64(len(s.Groups)),
			StaticCLBs:    static / float64(len(s.Groups)),
			Ratio:         mm / static,
		})
	}
	return rows
}

// FIRGenericRatio reproduces the claim that a constant-coefficient filter
// is ~3× smaller (the paper reports the adaptive filter needing only 33%
// of the generic filter's area).
func FIRGenericRatio(sc Scale) (constant, generic int, ratio float64, err error) {
	cfg := flow.Config{PlaceEffort: sc.Effort, Seed: sc.Seed}
	spec := firgen.DefaultSpec(firgen.LowPass, sc.Seed)
	coeffs := firgen.Design(spec)
	cn, err := firgen.Generate("fir-const", spec, coeffs)
	if err != nil {
		return 0, 0, 0, err
	}
	support := make([]bool, spec.Taps)
	for i, c := range coeffs {
		support[i] = c != 0
	}
	gn, err := firgen.GenerateGeneric("fir-generic", spec, support)
	if err != nil {
		return 0, 0, 0, err
	}
	mapped, err := flow.MapModes([]*netlist.Netlist{cn, gn}, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	constant = mapped[0].NumBlocks()
	generic = mapped[1].NumBlocks()
	return constant, generic, float64(constant) / float64(generic), nil
}

// AblationResult compares merge strategies on one multi-mode pair.
type AblationResult struct {
	Name string
	// Reconfiguration bits per strategy.
	IdentityBits  int
	EdgeMatchBits int
	WireLenBits   int
	// Wirelength ratio vs MDR per strategy.
	IdentityWire  float64
	EdgeMatchWire float64
	WireLenWire   float64
	// Diff decomposition (§IV-C1): total speed-up = RegionFactor ×
	// MergeFactor.
	RegionFactor float64 // MDR routing bits / differing routing bits
	MergeFactor  float64 // differing routing bits / parameterised bits (WL)
}

// RunAblation evaluates the identity merge (no combined placement), edge
// matching and wire-length optimisation on the first group of a suite.
func RunAblation(s *Suite, sc Scale) (*AblationResult, error) {
	if len(s.Groups) == 0 {
		return nil, fmt.Errorf("experiments: suite %s has no groups", s.Name)
	}
	cfg := s.config(sc)
	modes := groupModes(s, s.Groups[0])
	name := fmt.Sprintf("%s-abl", s.Name)

	region, err := flow.SizeRegion(modes, cfg)
	if err != nil {
		return nil, err
	}
	// All four implementations must share one region; the identity merge
	// routes worst, so widen until everything fits (same policy as
	// flow.RunComparison).
	var (
		mdr        *flow.MDRResult
		id, em, wl *flow.DCSResult
	)
	for attempt := 0; ; attempt++ {
		mdr, err = flow.RunMDR(modes, region, cfg)
		if err == nil {
			id, err = flow.RunDCSIdentity(name, modes, region, cfg)
		}
		if err == nil {
			em, err = flow.RunDCS(name, modes, region, merge.EdgeMatch, cfg)
		}
		if err == nil {
			wl, err = flow.RunDCS(name, modes, region, merge.WireLength, cfg)
		}
		if err == nil {
			break
		}
		if attempt >= 8 {
			return nil, fmt.Errorf("experiments: ablation %s: %w", name, err)
		}
		region = cfg.NewRegion(region.Arch.Width, region.Arch.W+2)
	}
	res := &AblationResult{
		Name:          name,
		IdentityBits:  id.ReconfigBits,
		EdgeMatchBits: em.ReconfigBits,
		WireLenBits:   wl.ReconfigBits,
		IdentityWire:  flow.WireRatio(mdr, id),
		EdgeMatchWire: flow.WireRatio(mdr, em),
		WireLenWire:   flow.WireRatio(mdr, wl),
	}
	if mdr.DiffRoutingBits > 0 {
		res.RegionFactor = float64(region.Graph.NumRoutingBits) / float64(mdr.DiffRoutingBits)
		res.MergeFactor = float64(mdr.DiffRoutingBits) / float64(wl.TRoute.ParamRoutingBits)
	}
	return res, nil
}

// RelaxAblation measures the effect of the 20% area/channel relaxation by
// re-running one pair with no slack.
type RelaxAblation struct {
	RelaxedSpeedup float64
	TightSpeedup   float64
	RelaxedWire    float64
	TightWire      float64
}

// RunRelaxAblation compares relax=1.2 (paper) against relax=1.0.
func RunRelaxAblation(s *Suite, sc Scale) (*RelaxAblation, error) {
	if len(s.Groups) == 0 {
		return nil, fmt.Errorf("experiments: suite %s has no groups", s.Name)
	}
	run := func(relax float64) (float64, float64, error) {
		cfg := s.config(sc)
		cfg.RelaxArea = relax
		cfg.RelaxW = relax
		modes := groupModes(s, s.Groups[0])
		cmp, err := flow.RunComparison("relax", modes, cfg)
		if err != nil {
			return 0, 0, err
		}
		return flow.Speedup(cmp.MDR, cmp.WireLen), flow.WireRatio(cmp.MDR, cmp.WireLen), nil
	}
	rs, rw, err := run(1.2)
	if err != nil {
		return nil, err
	}
	ts, tw, err := run(1.0)
	if err != nil {
		return nil, err
	}
	return &RelaxAblation{RelaxedSpeedup: rs, TightSpeedup: ts, RelaxedWire: rw, TightWire: tw}, nil
}
