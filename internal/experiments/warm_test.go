package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/store"
)

// warmSuites builds a small one-suite workload: three tiny generated
// sequential modes (kept far below benchmark size so the cold pass stays
// fast under -race), all 2-mode groups plus the 3-mode group.
func warmSuites(t *testing.T) []*Suite {
	t.Helper()
	var nls []*netlist.Netlist
	for i := 0; i < 3; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		b := netlist.NewBuilder(fmt.Sprintf("m%d", i))
		sigs := b.InputVector("in", 4)
		for g := 0; g < 30; g++ {
			x := sigs[rng.Intn(len(sigs))]
			y := sigs[rng.Intn(len(sigs))]
			switch rng.Intn(4) {
			case 0:
				sigs = append(sigs, b.And(x, y))
			case 1:
				sigs = append(sigs, b.Or(x, y))
			case 2:
				sigs = append(sigs, b.Xor(x, y))
			default:
				sigs = append(sigs, b.Latch(x, false))
			}
		}
		for o := 0; o < 3; o++ {
			b.Output(fmt.Sprintf("o[%d]", o), sigs[len(sigs)-1-o])
		}
		nls = append(nls, b.N)
	}
	mapped, err := flow.MapModes(nls, flow.Config{PlaceEffort: 0.15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return []*Suite{{
		Name:     "Mini",
		Circuits: mapped,
		Groups:   [][]int{{0, 1}, {0, 2}, {1, 2}, {0, 1, 2}},
	}}
}

// TestSweepColdWarmIdentical is the acceptance test of the persistence
// subsystem: an mmbench-style sweep run twice against one artifact-store
// directory renders byte-identical reports, and the warm run performs no
// placement annealing at all — every group comes back as one store read.
func TestSweepColdWarmIdentical(t *testing.T) {
	suites := warmSuites(t)
	dir := t.TempDir()
	njobs := len(suites[0].Groups)

	run := func() ([]byte, []*GroupResult, flow.Stats) {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		sc := Scale{Effort: 0.15, Seed: 1, Cache: flow.NewCacheWithStore(st)}
		results, err := RunAll(suites, sc, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		WriteFigures(&buf, results)
		WriteGroupReport(&buf, results)
		return buf.Bytes(), results, sc.Cache.Stats()
	}

	coldReport, coldResults, coldStats := run()
	if coldStats.PlaceAnneals == 0 || coldStats.ArtifactHits != 0 {
		t.Fatalf("cold stats %+v: expected annealing work and no group hits", coldStats)
	}

	warmReport, warmResults, warmStats := run()
	if !bytes.Equal(warmReport, coldReport) {
		t.Fatal("warm-store report is not byte-identical to the cold one")
	}
	if warmStats.PlaceAnneals != 0 {
		t.Fatalf("warm run annealed %d placements, want 0", warmStats.PlaceAnneals)
	}
	if warmStats.GraphBuilds != 0 {
		t.Fatalf("warm run built %d routing graphs, want 0", warmStats.GraphBuilds)
	}
	if warmStats.ArtifactHits != uint64(njobs) {
		t.Fatalf("warm run hit %d group artifacts, want %d", warmStats.ArtifactHits, njobs)
	}
	for i := range coldResults {
		if !reflect.DeepEqual(coldResults[i], warmResults[i]) {
			t.Fatalf("group %d: decoded result differs from computed one", i)
		}
	}
}

// TestGroupResultRoundTrip pins the GroupResult codec, including a nil
// Diff matrix (the report renders it as "unavailable" and the artifact
// must preserve the gap rather than materialise a zero matrix).
func TestGroupResultRoundTrip(t *testing.T) {
	res := &GroupResult{
		Suite: "S", Name: "S-0-1", ModeLUTs: []int{12, 15},
		Side: 6, MinW: 4, ChannelW: 5,
		MDRBits: 1000, DiffBits: 600, EMBits: 300, WLBits: 280,
		LUTBitsTotal: 612, MDRRoutingBits: 400, DiffRoutingBits: 88,
		EMRoutingBits: 40, WLRoutingBits: 36,
		SpeedupEM: 3.3, SpeedupWL: 3.57, WireMDR: 120.5, WireEM: 1.1, WireWL: 1.05,
		MDRSwitch: flow.SwitchMatrix{{0, 1000}, {1000, 0}},
		DCSSwitch: flow.SwitchMatrix{{0, 280}, {280, 0}},
	}
	got, err := decodeGroupResult(encodeGroupResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("round trip changed the result:\n got %+v\nwant %+v", got, res)
	}
	if got.DiffSwitch != nil {
		t.Fatal("nil Diff matrix did not survive the round trip")
	}
	// Corrupt payloads must decode to an error, not a bogus result.
	data := encodeGroupResult(res)
	if _, err := decodeGroupResult(data[:len(data)-3]); err == nil {
		t.Fatal("truncated group result decoded without error")
	}
}
