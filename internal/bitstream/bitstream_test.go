package bitstream

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/logic"
	"repro/internal/lutnet"
	"repro/internal/merge"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/techmap"
	"repro/internal/troute"
)

// buildCircuit maps a small random netlist (init-false latches only, since
// FF initial state is not part of a configuration).
func buildCircuit(t *testing.T, seed int64, nGates int) *lutnet.Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("c%d", seed))
	sigs := b.InputVector("in", 4)
	for i := 0; i < nGates; i++ {
		x := sigs[rng.Intn(len(sigs))]
		y := sigs[rng.Intn(len(sigs))]
		var s int
		switch rng.Intn(5) {
		case 0:
			s = b.And(x, y)
		case 1:
			s = b.Or(x, y)
		case 2:
			s = b.Xor(x, y)
		case 3:
			s = b.Not(x)
		default:
			s = b.Latch(x, false)
		}
		sigs = append(sigs, s)
	}
	for i := 0; i < 3; i++ {
		b.Output(fmt.Sprintf("o[%d]", i), sigs[len(sigs)-1-i])
	}
	c, err := techmap.Map(b.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func simEq(t *testing.T, a, b *lutnet.Circuit, cycles int, seed int64) {
	t.Helper()
	sa, err := lutnet.NewSimulator(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := lutnet.NewSimulator(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for cyc := 0; cyc < cycles; cyc++ {
		in := map[string]bool{}
		for _, nm := range a.PINames {
			in[nm] = rng.Intn(2) == 0
		}
		oa, ob := sa.Step(in), sb.Step(in)
		for k, v := range oa {
			if ob[k] != v {
				t.Fatalf("cycle %d output %s: %v vs %v", cyc, k, v, ob[k])
			}
		}
	}
}

func TestConfigLUTReadback(t *testing.T) {
	a := arch.New(3, 3, 4)
	g := arch.BuildGraph(a)
	cfg := NewConfig(a, g)
	tt := logic.NewTT(4, 0xBEEF)
	if err := cfg.SetLUT(2, 3, tt, true); err != nil {
		t.Fatal(err)
	}
	got, ff := cfg.GetLUT(2, 3)
	if !got.Equal(tt) || !ff {
		t.Fatalf("readback %s/%v, want %s/true", got, ff, tt)
	}
	// Other sites untouched.
	other, ff2 := cfg.GetLUT(1, 1)
	if !other.IsConst0() || ff2 {
		t.Fatal("neighbouring LUT disturbed")
	}
}

func TestDiffBits(t *testing.T) {
	a := arch.New(2, 2, 2)
	g := arch.BuildGraph(a)
	c1 := NewConfig(a, g)
	c2 := NewConfig(a, g)
	c2.LUT[3] = true
	c2.Routing[5] = true
	c2.Routing[9] = true
	l, r, err := DiffBits(c1, c2)
	if err != nil || l != 1 || r != 2 {
		t.Fatalf("DiffBits = %d,%d,%v", l, r, err)
	}
}

// assembleMDR places, routes and assembles one circuit.
func assembleMDR(t *testing.T, c *lutnet.Circuit, g *arch.Graph, seed int64) (*Config, PadNames) {
	t.Helper()
	prob, cc := place.FromCircuit(c)
	pl, err := place.Place(prob, g.Arch, place.Options{Seed: seed, Effort: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	nets, err := route.NetsForPlacedCircuit(g, c, cc, pl)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := route.Route(g, nets, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Assemble(g, c, cc, pl, nets, rr)
	if err != nil {
		t.Fatal(err)
	}
	names, err := CircuitPadNames(g, c, cc, pl)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, names
}

func TestAssembleDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c := buildCircuit(t, seed, 30)
		side := arch.MinGridForBlocks(c.NumBlocks(), c.NumPIs()+len(c.POs), 1.2)
		a := arch.New(side, side, 10)
		g := arch.BuildGraph(a)
		cfg, names := assembleMDR(t, c, g, seed)
		decoded, err := Decode(g, cfg, names)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		simEq(t, c, decoded, 48, seed+100)
	}
}

func TestMDRDiffMatchesFlowAccounting(t *testing.T) {
	// The routing bits differing between two assembled MDR configurations
	// must equal the flow's Diff counting.
	c0 := buildCircuit(t, 11, 30)
	c1 := buildCircuit(t, 12, 30)
	maxB := c0.NumBlocks()
	if c1.NumBlocks() > maxB {
		maxB = c1.NumBlocks()
	}
	side := arch.MinGridForBlocks(maxB, c0.NumPIs()+len(c0.POs), 1.2)
	a := arch.New(side, side, 10)
	g := arch.BuildGraph(a)
	cfg0, _ := assembleMDR(t, c0, g, 1)
	cfg1, _ := assembleMDR(t, c1, g, 2)
	_, routingDiff, err := DiffBits(cfg0, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	on0 := map[int]bool{}
	for i, v := range cfg0.Routing {
		if v {
			on0[i] = true
		}
	}
	sym := 0
	for i, v := range cfg1.Routing {
		if v != cfg0.Routing[i] {
			sym++
		}
	}
	if routingDiff != sym {
		t.Fatalf("DiffBits disagrees with itself: %d vs %d", routingDiff, sym)
	}
	if routingDiff == 0 {
		t.Fatal("different circuits with identical routing configurations")
	}
}

func TestTunableModeConfigsRoundTrip(t *testing.T) {
	modes := []*lutnet.Circuit{buildCircuit(t, 21, 28), buildCircuit(t, 22, 28)}
	maxB, maxIO := 0, 0
	for _, c := range modes {
		if c.NumBlocks() > maxB {
			maxB = c.NumBlocks()
		}
		if io := c.NumPIs() + len(c.POs); io > maxIO {
			maxIO = io
		}
	}
	side := arch.MinGridForBlocks(maxB, maxIO, 1.2)
	a := arch.New(side, side, 12)
	g := arch.BuildGraph(a)

	mres, err := merge.CombinedPlace("bs", modes, a, merge.Options{Seed: 3, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := troute.RouteTunable(g, mres.Tunable, mres.LUTSite, mres.PadSite, route.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var cfgs []*Config
	for m := range modes {
		cfg, err := AssembleTunableMode(g, mres.Tunable, mres.LUTSite, mres.PadSite, tr, m)
		if err != nil {
			t.Fatalf("mode %d: %v", m, err)
		}
		names, err := TunablePadNames(g, mres.Tunable, mres.PadSite, m)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := Decode(g, cfg, names)
		if err != nil {
			t.Fatalf("mode %d decode: %v", m, err)
		}
		// The decoded configuration must implement the original mode.
		simEq(t, modes[m], decoded, 48, int64(m+200))
		cfgs = append(cfgs, cfg)
	}

	// The bits differing between the two mode configurations are exactly
	// the parameterised routing bits of the TRoute analysis.
	_, routingDiff, err := DiffBits(cfgs[0], cfgs[1])
	if err != nil {
		t.Fatal(err)
	}
	if routingDiff != tr.ParamRoutingBits {
		t.Fatalf("bitstream diff %d != parameterised bits %d", routingDiff, tr.ParamRoutingBits)
	}
}

func TestDecodeRejectsConflict(t *testing.T) {
	// Turn on two drivers into one wire: decoding must fail.
	a := arch.New(2, 2, 4)
	g := arch.BuildGraph(a)
	cfg := NewConfig(a, g)
	// Find two OPIN->wire switches onto the same wire.
	type hit struct {
		bit int32
	}
	wireIn := map[int32][]hit{}
	for n := int32(0); n < int32(g.NumNodes()); n++ {
		if g.Nodes[n].Type != arch.NodeOPin {
			continue
		}
		tos := g.Edges(n)
		bits := g.EdgeBits(n)
		for i, to := range tos {
			if g.Nodes[to].IsWire() {
				wireIn[to] = append(wireIn[to], hit{bits[i]})
			}
		}
	}
	for _, hits := range wireIn {
		if len(hits) >= 2 {
			cfg.Routing[hits[0].bit] = true
			cfg.Routing[hits[1].bit] = true
			break
		}
	}
	if _, err := Decode(g, cfg, PadNames{}); err == nil {
		t.Fatal("conflicting drivers accepted")
	}
}
