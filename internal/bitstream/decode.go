package bitstream

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/lutnet"
)

// PadNames names the I/O pads of a configuration (by IOSites index) so the
// decoded circuit carries usable port names — the equivalent of a pin
// constraint file.
type PadNames struct {
	In  map[int]string // pad index -> PI name
	Out map[int]string // pad index -> PO name
}

// Decode reconstructs the LUT circuit a configuration implements: it
// traces every switched-on routing switch from each driving output pin,
// recovers block connectivity and input-pin usage, and re-expresses each
// LUT truth table over its logical inputs. Flip-flop initial state is not
// part of a configuration (it is reset circuitry on real devices), so all
// decoded FFs start at false.
func Decode(g *arch.Graph, cfg *Config, names PadNames) (*lutnet.Circuit, error) {
	a := g.Arch
	if len(cfg.Routing) != g.NumRoutingBits || len(cfg.LUT) != a.TotalLUTBits() {
		return nil, fmt.Errorf("bitstream: configuration does not match region")
	}

	// On-edge traversal: hardwired edges are always usable; programmable
	// edges only when their bit is set.
	edgeOn := func(from int32, i int) bool {
		bit := g.EdgeBits(from)[i]
		return bit < 0 || cfg.Routing[bit]
	}

	// Discover drivers: every OPIN with at least one switched-on edge.
	type driver struct {
		opin int32
		// reached CLB ipins and pad ipins
		clbPins []int32
		padPins []int32
	}
	var drivers []driver
	claimedBy := map[int32]int{} // wire/ipin node -> driver index

	for n := int32(0); n < int32(g.NumNodes()); n++ {
		if g.Nodes[n].Type != arch.NodeOPin {
			continue
		}
		active := false
		for i := range g.Edges(n) {
			if edgeOn(n, i) {
				active = true
				break
			}
		}
		if !active {
			continue
		}
		di := len(drivers)
		d := driver{opin: n}
		// BFS over on-switches.
		stack := []int32{n}
		seen := map[int32]bool{n: true}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			tos := g.Edges(cur)
			for i, to := range tos {
				if !edgeOn(cur, i) || seen[to] {
					continue
				}
				toN := g.Nodes[to]
				switch toN.Type {
				case arch.NodeChanX, arch.NodeChanY:
					if prev, clash := claimedBy[to]; clash && prev != di {
						return nil, fmt.Errorf("bitstream: wire %v driven by two nets", toN)
					}
					claimedBy[to] = di
					seen[to] = true
					stack = append(stack, to)
				case arch.NodeIPin:
					if prev, clash := claimedBy[to]; clash && prev != di {
						return nil, fmt.Errorf("bitstream: input pin %v driven by two nets", toN)
					}
					claimedBy[to] = di
					seen[to] = true
					onRing := toN.X == 0 || toN.Y == 0 || int(toN.X) == a.Width+1 || int(toN.Y) == a.Height+1
					if onRing {
						d.padPins = append(d.padPins, to)
					} else {
						d.clbPins = append(d.clbPins, to)
					}
				case arch.NodeSink, arch.NodeSource, arch.NodeOPin:
					// SOURCE→OPIN and IPIN→SINK hardwired hops terminate
					// here; nothing further to traverse.
				}
			}
		}
		drivers = append(drivers, d)
	}

	// Identify logic blocks: every CLB whose OPIN drives something.
	type blockSite struct{ x, y int }
	var blockSites []blockSite
	blockIdxAt := map[blockSite]int{}
	for _, d := range drivers {
		nd := g.Nodes[d.opin]
		onRing := nd.X == 0 || nd.Y == 0 || int(nd.X) == a.Width+1 || int(nd.Y) == a.Height+1
		if onRing {
			continue
		}
		bs := blockSite{int(nd.X), int(nd.Y)}
		if _, ok := blockIdxAt[bs]; !ok {
			blockIdxAt[bs] = -1 // assign after sorting
			blockSites = append(blockSites, bs)
		}
	}
	sort.Slice(blockSites, func(i, j int) bool {
		if blockSites[i].y != blockSites[j].y {
			return blockSites[i].y < blockSites[j].y
		}
		return blockSites[i].x < blockSites[j].x
	})
	for i, bs := range blockSites {
		blockIdxAt[bs] = i
	}

	out := &lutnet.Circuit{Name: "decoded", K: a.K}
	ioIdx := a.NewIOIndexer()
	ioSites := a.IOSites()

	// PI pads: drivers whose OPIN is a pad.
	piIdxOfPad := map[int]int{}
	driverSource := make([]lutnet.Source, len(drivers))
	for di, d := range drivers {
		nd := g.Nodes[d.opin]
		onRing := nd.X == 0 || nd.Y == 0 || int(nd.X) == a.Width+1 || int(nd.Y) == a.Height+1
		if onRing {
			pad := -1
			for i, s := range ioSites {
				if int16(s.X) == nd.X && int16(s.Y) == nd.Y && int16(s.Sub) == nd.Track {
					pad = i
					break
				}
			}
			if pad < 0 {
				return nil, fmt.Errorf("bitstream: pad OPIN %v not found", nd)
			}
			name := names.In[pad]
			if name == "" {
				name = fmt.Sprintf("pad%d", pad)
			}
			piIdxOfPad[pad] = len(out.PINames)
			driverSource[di] = lutnet.Source{Kind: lutnet.SrcPI, Idx: len(out.PINames)}
			out.PINames = append(out.PINames, name)
		} else {
			driverSource[di] = lutnet.Source{Kind: lutnet.SrcBlock, Idx: blockIdxAt[blockSite{int(nd.X), int(nd.Y)}]}
		}
	}

	// Pin drivers per CLB.
	pinDriver := map[blockSite]map[int]int{} // site -> pin -> driver index
	for di, d := range drivers {
		for _, pin := range d.clbPins {
			nd := g.Nodes[pin]
			bs := blockSite{int(nd.X), int(nd.Y)}
			if pinDriver[bs] == nil {
				pinDriver[bs] = map[int]int{}
			}
			pinDriver[bs][int(nd.Track)] = di
		}
	}

	// Build blocks.
	out.Blocks = make([]lutnet.Block, len(blockSites))
	for i, bs := range blockSites {
		phys, hasFF := cfg.GetLUT(bs.x, bs.y)
		small, keep := phys.Shrink()
		blk := lutnet.Block{Name: fmt.Sprintf("clb_%d_%d", bs.x, bs.y), TT: small, HasFF: hasFF}
		for _, pin := range keep {
			di, ok := pinDriver[bs][pin]
			if !ok {
				return nil, fmt.Errorf("bitstream: CLB(%d,%d) truth table depends on undriven pin %d", bs.x, bs.y, pin)
			}
			blk.Inputs = append(blk.Inputs, driverSource[di])
		}
		out.Blocks[i] = blk
	}

	// POs: pad ipins reached by a driver.
	for di, d := range drivers {
		for _, pin := range d.padPins {
			nd := g.Nodes[pin]
			pad, ok := ioIdx[arch.Site{X: int(nd.X), Y: int(nd.Y), Sub: int(nd.Track), IsIO: true}]
			if !ok {
				return nil, fmt.Errorf("bitstream: pad IPIN %v not found", nd)
			}
			name := names.Out[pad]
			if name == "" {
				name = fmt.Sprintf("pad%d", pad)
			}
			out.POs = append(out.POs, lutnet.PO{Name: name, Src: driverSource[di]})
		}
	}
	sort.Slice(out.POs, func(i, j int) bool { return out.POs[i].Name < out.POs[j].Name })

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("bitstream: decoded circuit invalid: %w", err)
	}
	return out, nil
}
