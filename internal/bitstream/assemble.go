package bitstream

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/logic"
	"repro/internal/lutnet"
	"repro/internal/place"
	"repro/internal/route"
)

// Assemble produces the full configuration of a placed and routed
// single-mode circuit (the artefact MDR writes for one mode).
//
// LUT-input permutation: the router treats the K input pins of a block as
// equivalent and lands each incoming net on an arbitrary IPIN; the truth
// table written into the bitstream must therefore be re-expressed over the
// physical pins.
func Assemble(g *arch.Graph, c *lutnet.Circuit, cc place.CircuitCells,
	pl *place.Placement, nets []route.Net, rr *route.Result) (*Config, error) {

	cfg := NewConfig(g.Arch, g)

	// Routing bits.
	for bit := range route.UsedBits(g, rr.Trees) {
		cfg.Routing[bit] = true
	}

	// Which IPIN did each (driver source, block) connection land on?
	ipinOf, err := ipinAssignments(g, nets, rr)
	if err != nil {
		return nil, err
	}
	idx := g.Arch.NewIOIndexer()
	srcNode := func(cell int) (int32, error) {
		s := pl.SiteOf[cell]
		if s.IsIO {
			i, ok := idx[s]
			if !ok {
				return 0, fmt.Errorf("bitstream: unknown pad site %v", s)
			}
			return g.PadSource(i), nil
		}
		return g.CLBSource(s.X, s.Y), nil
	}

	for bi := range c.Blocks {
		blk := &c.Blocks[bi]
		site := pl.SiteOf[cc.BlockCell(bi)]
		if site.IsIO {
			return nil, fmt.Errorf("bitstream: block %d on pad site", bi)
		}
		sink := g.CLBSink(site.X, site.Y)

		// Logical input i -> physical pin. Nets that feed several logical
		// pins of one block are impossible after mapping (cut leaves are
		// distinct), so the assignment is a bijection on the used pins.
		varMap := make([]int, len(blk.Inputs))
		seen := map[int]bool{}
		for i, src := range blk.Inputs {
			drv, err := srcNode(cc.SourceCell(src))
			if err != nil {
				return nil, err
			}
			key := pinKey{driver: drv, sink: sink}
			pins := ipinOf[key]
			if len(pins) == 0 {
				return nil, fmt.Errorf("bitstream: block %d input %d (%v): no ipin found", bi, i, src)
			}
			// Take the first unused pin assigned to this driver at this
			// block.
			assigned := -1
			for _, p := range pins {
				if !seen[p] {
					assigned = p
					break
				}
			}
			if assigned < 0 {
				return nil, fmt.Errorf("bitstream: block %d input %d: pins exhausted", bi, i)
			}
			seen[assigned] = true
			varMap[i] = assigned
		}
		phys := blk.TT.Expand(g.Arch.K, varMap)
		if err := cfg.SetLUT(site.X, site.Y, phys, blk.HasFF); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

type pinKey struct {
	driver int32 // SOURCE node of the driving net
	sink   int32 // SINK node of the consuming block
}

// ipinAssignments maps (driver cell, block sink) to the physical pins the
// router chose, by walking each routing tree's wire→IPIN edges.
func ipinAssignments(g *arch.Graph, nets []route.Net, rr *route.Result) (map[pinKey][]int, error) {
	// Nets are parallel to rr.Trees; each net is keyed by its (unique)
	// SOURCE node.
	out := map[pinKey][]int{}
	for ni, tree := range rr.Trees {
		for _, e := range tree.Edges {
			toN := g.Nodes[e.To]
			if toN.Type != arch.NodeIPin {
				continue
			}
			// CLB ipin? (pads have their own IPIN nodes; skip them, pad
			// sinks need no permutation.)
			onRing := toN.X == 0 || toN.Y == 0 || int(toN.X) == g.Arch.Width+1 || int(toN.Y) == g.Arch.Height+1
			if onRing {
				continue
			}
			sink := g.CLBSink(int(toN.X), int(toN.Y))
			key := pinKey{driver: nets[ni].Source, sink: sink}
			out[key] = append(out[key], int(toN.Track))
		}
	}
	return out, nil
}

// expandForPins is a helper shared with the DCS assembler: re-express a
// content table over the physical pins given the logical→physical map.
func expandForPins(tt logic.TT, k int, varMap []int) logic.TT {
	return tt.Expand(k, varMap)
}
