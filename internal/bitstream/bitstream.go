// Package bitstream assembles and decodes full configurations of the
// reconfigurable region — the artefact the reconfiguration manager writes.
// A Config holds the value of every LUT bit (2^K truth-table bits plus the
// FF-select bit per logic block) and every routing bit (one per
// programmable switch). Assembly resolves the LUT-input permutation chosen
// by the router (input pins of a LUT are logically equivalent, so the
// truth table must be permuted to match the pins the nets landed on); the
// decoder reverses the process, reconstructing a LUT circuit from bits
// alone. Together they close the loop for verification: the circuit
// decoded from an assembled configuration must be cycle-equivalent to the
// source circuit, and the number of bits differing between two modes'
// configurations is exactly what the paper's Diff/DCS accounting counts.
package bitstream

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/logic"
)

// Config is a full configuration of a region.
type Config struct {
	Arch    arch.Arch
	LUT     []bool // Arch.TotalLUTBits() entries, CLB sites row-major
	Routing []bool // one per routing bit id
}

// NewConfig returns an all-zero configuration (the erased fabric).
func NewConfig(a arch.Arch, g *arch.Graph) *Config {
	return &Config{
		Arch:    a,
		LUT:     make([]bool, a.TotalLUTBits()),
		Routing: make([]bool, g.NumRoutingBits),
	}
}

// lutBase returns the first LUT-bit index of the CLB at (x, y).
func (c *Config) lutBase(x, y int) int {
	return ((y-1)*c.Arch.Width + (x - 1)) * c.Arch.LUTBitsPerCLB()
}

// SetLUT writes the truth table and FF-select bit of the CLB at (x, y).
// The table must already be expressed over the K physical input pins.
func (c *Config) SetLUT(x, y int, tt logic.TT, hasFF bool) error {
	if tt.NumVars != c.Arch.K {
		return fmt.Errorf("bitstream: LUT table has %d vars, want %d", tt.NumVars, c.Arch.K)
	}
	base := c.lutBase(x, y)
	for b := 0; b < 1<<uint(c.Arch.K); b++ {
		c.LUT[base+b] = tt.Get(b)
	}
	c.LUT[base+1<<uint(c.Arch.K)] = hasFF
	return nil
}

// GetLUT reads back the truth table and FF-select bit of the CLB at (x, y).
func (c *Config) GetLUT(x, y int) (logic.TT, bool) {
	base := c.lutBase(x, y)
	tt := logic.ConstTT(c.Arch.K, false)
	for b := 0; b < 1<<uint(c.Arch.K); b++ {
		if c.LUT[base+b] {
			tt = tt.Set(b, true)
		}
	}
	return tt, c.LUT[base+1<<uint(c.Arch.K)]
}

// DiffBits counts configuration bits whose value differs between the two
// configurations, split into LUT and routing contributions.
func DiffBits(a, b *Config) (lutDiff, routingDiff int, err error) {
	if len(a.LUT) != len(b.LUT) || len(a.Routing) != len(b.Routing) {
		return 0, 0, fmt.Errorf("bitstream: configurations of different regions")
	}
	for i := range a.LUT {
		if a.LUT[i] != b.LUT[i] {
			lutDiff++
		}
	}
	for i := range a.Routing {
		if a.Routing[i] != b.Routing[i] {
			routingDiff++
		}
	}
	return lutDiff, routingDiff, nil
}

// OnRoutingBits returns the number of switched-on routing bits.
func (c *Config) OnRoutingBits() int {
	n := 0
	for _, v := range c.Routing {
		if v {
			n++
		}
	}
	return n
}
