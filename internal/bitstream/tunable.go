package bitstream

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/logic"
	"repro/internal/lutnet"
	"repro/internal/place"
	"repro/internal/troute"
	"repro/internal/tunable"
)

// AssembleTunableMode produces the full configuration the reconfiguration
// manager would realise for one mode value of a routed Tunable circuit:
// every parameterised bit is evaluated at that mode and written next to
// the static bits. Comparing two modes' configurations with DiffBits ties
// the paper's bit accounting to actual bitstreams.
func AssembleTunableMode(g *arch.Graph, tc *tunable.Circuit,
	lutSite, padSite []arch.Site, tr *troute.Result, m int) (*Config, error) {
	if m < 0 || m >= tc.NumModes {
		return nil, fmt.Errorf("bitstream: mode %d out of range", m)
	}
	cfg := NewConfig(g.Arch, g)

	// Routing bits: the parameterised bits evaluated at mode m plus the
	// static-on bits (those active in every mode).
	for bit, act := range tr.BitModes {
		if act.Contains(m) {
			cfg.Routing[bit] = true
		}
	}

	// LUT-input permutation per mode: entity source -> this CLB's pins.
	// tr.PinActs[i] records, for net i (grouped by source entity, in
	// BuildNets order), which CLB input pins it enters and in which modes.
	netBySource := map[int32]int{}
	for i, n := range tr.Nets {
		netBySource[n.Source] = i
	}
	em := g.Arch.NewIOIndexer()
	sourceNode := func(e tunable.Entity) (int32, error) {
		if e.IsPad {
			i, ok := em[padSite[e.Idx]]
			if !ok {
				return 0, fmt.Errorf("bitstream: pad group %d site unknown", e.Idx)
			}
			return g.PadSource(i), nil
		}
		s := lutSite[e.Idx]
		return g.CLBSource(s.X, s.Y), nil
	}

	for t := range tc.TLUTs {
		content := tc.TLUTs[t].PerMode[m]
		site := lutSite[t]
		if content == nil {
			// Inactive in this mode: clear LUT (constant 0, no FF).
			if err := cfg.SetLUT(site.X, site.Y, logic.ConstTT(g.Arch.K, false), false); err != nil {
				return nil, err
			}
			continue
		}
		varMap := make([]int, len(content.Inputs))
		used := map[int]bool{}
		for i, e := range content.Inputs {
			src, err := sourceNode(e)
			if err != nil {
				return nil, err
			}
			ni, ok := netBySource[src]
			if !ok {
				return nil, fmt.Errorf("bitstream: TLUT %d input %d: no net for %v", t, i, e)
			}
			pin := -1
			for node, act := range tr.PinActs[ni] {
				nd := g.Nodes[node]
				if int(nd.X) != site.X || int(nd.Y) != site.Y {
					continue
				}
				if !act.Contains(m) || used[int(nd.Track)] {
					continue
				}
				pin = int(nd.Track)
				break
			}
			if pin < 0 {
				return nil, fmt.Errorf("bitstream: TLUT %d input %d (%v): no pin active in mode %d", t, i, e, m)
			}
			used[pin] = true
			varMap[i] = pin
		}
		phys := content.TT.Expand(g.Arch.K, varMap)
		if err := cfg.SetLUT(site.X, site.Y, phys, content.HasFF); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// TunablePadNames derives the pad naming of one mode from the Tunable
// circuit's pad contents.
func TunablePadNames(g *arch.Graph, tc *tunable.Circuit, padSite []arch.Site, m int) (PadNames, error) {
	names := PadNames{In: map[int]string{}, Out: map[int]string{}}
	em := g.Arch.NewIOIndexer()
	for p := range tc.TPads {
		pc := tc.TPads[p].PerMode[m]
		if pc == nil {
			continue
		}
		idx, ok := em[padSite[p]]
		if !ok {
			return names, fmt.Errorf("bitstream: pad group %d site unknown", p)
		}
		if pc.IsInput {
			names.In[idx] = pc.Name
		} else {
			names.Out[idx] = pc.Name
		}
	}
	return names, nil
}

// CircuitPadNames derives pad naming from an ordinary placed circuit.
func CircuitPadNames(g *arch.Graph, c *lutnet.Circuit, cc place.CircuitCells, pl *place.Placement) (PadNames, error) {
	names := PadNames{In: map[int]string{}, Out: map[int]string{}}
	em := g.Arch.NewIOIndexer()
	for i, nm := range c.PINames {
		idx, ok := em[pl.SiteOf[cc.PICell(i)]]
		if !ok {
			return names, fmt.Errorf("bitstream: PI %d site unknown", i)
		}
		names.In[idx] = nm
	}
	for o, po := range c.POs {
		idx, ok := em[pl.SiteOf[cc.POCell(o)]]
		if !ok {
			return names, fmt.Errorf("bitstream: PO %d site unknown", o)
		}
		names.Out[idx] = po.Name
	}
	return names, nil
}
