package flow

import (
	"testing"

	"repro/internal/lutnet"
)

func TestSwitchMatrixStats(t *testing.T) {
	m := SwitchMatrix{
		{0, 10, 30},
		{10, 0, 20},
		{30, 20, 0},
	}
	if !m.Symmetric() {
		t.Error("symmetric matrix reported asymmetric")
	}
	if got := m.Avg(); got != 20 {
		t.Errorf("Avg = %v, want 20", got)
	}
	from, to, cost := m.Worst()
	if cost != 30 || from+to != 2 {
		t.Errorf("Worst = (%d,%d,%d), want cost 30 between modes 0 and 2", from, to, cost)
	}
	m[1][2] = 25
	if m.Symmetric() {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewSwitchMatrix(0).Avg() != 0 {
		t.Error("empty matrix Avg not 0")
	}
}

// TestMDRSwitchMatrixSymmetric is the full-rewrite accounting invariant:
// every off-diagonal entry is the whole region and the matrix is
// symmetric for any mode count.
func TestMDRSwitchMatrixSymmetric(t *testing.T) {
	region := BuildRegion(4, 6)
	total := region.Graph.TotalConfigBits()
	for n := 2; n <= 5; n++ {
		m := MDRSwitchMatrix(region, n)
		if m.N() != n {
			t.Fatalf("n=%d: matrix size %d", n, m.N())
		}
		if !m.Symmetric() {
			t.Errorf("n=%d: MDR full-rewrite matrix not symmetric", n)
		}
		for i := range m {
			for j := range m[i] {
				want := total
				if i == j {
					want = 0
				}
				if m[i][j] != want {
					t.Errorf("n=%d: m[%d][%d] = %d, want %d", n, i, j, m[i][j], want)
				}
			}
		}
	}
}

// TestIdenticalModesZeroParamBits: a group whose modes are all the same
// circuit must need no parameterised routing bits — every Tunable
// connection is active in every mode, so the entire routing is static and
// only the (always-rewritten) LUT bits remain in the DCS switch cost.
func TestIdenticalModesZeroParamBits(t *testing.T) {
	cfg := Config{PlaceEffort: 0.2, Seed: 5}
	nls := buildPair(t, 61, 62, 24)
	mapped, err := MapModes(nls[:1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := mapped[0]
	modes := []*lutnet.Circuit{c, c, c}

	region, err := SizeRegion(modes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var id *DCSResult
	for attempt := 0; ; attempt++ {
		id, err = RunDCSIdentity("same", modes, region, cfg)
		if err == nil {
			break
		}
		if attempt >= 6 {
			t.Fatal(err)
		}
		region = cfg.NewRegion(region.Arch.Width, region.Arch.W+2)
	}
	if id.TRoute.ParamRoutingBits != 0 {
		t.Fatalf("identical 3-mode group has %d parameterised routing bits, want 0",
			id.TRoute.ParamRoutingBits)
	}
	m := DCSSwitchMatrix(region.Arch, id.TRoute, len(modes))
	lut := region.Arch.TotalLUTBits()
	for i := range m {
		for j := range m[i] {
			want := 0
			if i != j {
				want = lut // the conservative all-LUT rewrite, nothing else
			}
			if m[i][j] != want {
				t.Errorf("DCS switch m[%d][%d] = %d, want %d", i, j, m[i][j], want)
			}
		}
	}
}

// TestDiffSwitchMatrixMatchesDiffCounting ties the Diff matrix to the
// flow's routing-bit Diff analysis on a 2-mode group: the routing part of
// the assembled-bitstream diff must equal MDRResult.DiffRoutingBits, so
// the matrix entry sits between that and the full Diff accounting.
func TestDiffSwitchMatrixMatchesDiffCounting(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{PlaceEffort: 0.2, Seed: 3}
	nls := buildPair(t, 71, 72, 26)
	mapped, err := MapModes(nls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	region, err := SizeRegion(mapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mdr *MDRResult
	for attempt := 0; ; attempt++ {
		mdr, err = RunMDR(mapped, region, cfg)
		if err == nil {
			break
		}
		if attempt >= 6 {
			t.Fatal(err)
		}
		region = cfg.NewRegion(region.Arch.Width, region.Arch.W+2)
	}
	m, err := MDRDiffSwitchMatrix(region, mapped, mdr)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Symmetric() {
		t.Error("Diff switch matrix not symmetric")
	}
	// The assembled-bitstream diff includes LUT bits; its routing share
	// alone cannot exceed the full Diff accounting, and the total must be
	// positive for two different circuits.
	if m[0][1] <= 0 {
		t.Error("Diff switch cost not positive for distinct modes")
	}
	if max := mdr.DiffReconfigBits(region.Arch); m[0][1] > max {
		t.Errorf("Diff switch cost %d exceeds Diff accounting %d", m[0][1], max)
	}
}
