package flow

import (
	"fmt"

	"repro/internal/lutnet"
	"repro/internal/merge"
)

// Comparison bundles the three implementations of one multi-mode circuit
// on a shared reconfigurable region: the MDR baseline and the DCS flow
// under both combined-placement objectives.
type Comparison struct {
	Region    *Region
	MDR       *MDRResult
	EdgeMatch *DCSResult
	WireLen   *DCSResult
	// Delta is set when a baseline was requested: either the delta path
	// ran (UsedBaseline) or it fell back to a cold compile
	// (BaselineMiss). Nil for ordinary cold compiles.
	Delta *DeltaStats
}

// RunComparison sizes a shared region and implements the modes under MDR,
// DCS-EdgeMatch and DCS-WireLength. The Tunable circuit can need a few
// more tracks than the single-mode minimum (its placement compromises
// between modes), so the common region is widened until all three flows
// route — keeping MDR and DCS on identical hardware for fair bit
// accounting. When widening alone does not converge (input-pin congestion
// of an N-mode merge does not scale with channel width — a CLB has K pins
// at any W), the last attempts re-anneal with a perturbed seed instead;
// runs that succeed within the widening attempts are unaffected.
//
// With Config.Baseline set, the compile first attempts the delta path
// (see delta.go): reuse the baseline's region, transfer its placements
// through the structural diff and warm-start routing. Every delta
// failure — baseline missing, corrupt, or no longer fitting the edited
// modes — falls back to this cold path, so a baseline never makes a
// compilable input fail.
func RunComparison(name string, modes []*lutnet.Circuit, cfg Config) (*Comparison, error) {
	cfg = cfg.filled()
	if cfg.Baseline != "" {
		cmp, err := runComparisonDelta(name, modes, cfg)
		if err == nil {
			return cmp, nil
		}
		if cfg.Cache != nil {
			cfg.Cache.baselineMisses.Add(1)
		}
		cmp, err = runComparisonCold(name, modes, cfg)
		if err == nil {
			cmp.Delta = &DeltaStats{BaselineMiss: true}
		}
		return cmp, err
	}
	return runComparisonCold(name, modes, cfg)
}

func runComparisonCold(name string, modes []*lutnet.Circuit, cfg Config) (*Comparison, error) {
	region, err := SizeRegion(modes, cfg)
	if err != nil {
		return nil, err
	}
	minW := region.MinW
	for attempt := 0; ; attempt++ {
		cmp := &Comparison{Region: region}
		cmp.MDR, err = RunMDR(modes, region, cfg)
		if err == nil {
			cmp.EdgeMatch, err = RunDCS(name, modes, region, merge.EdgeMatch, cfg)
		}
		if err == nil {
			cmp.WireLen, err = RunDCS(name, modes, region, merge.WireLength, cfg)
		}
		if err == nil {
			region.MinW = minW
			return cmp, nil
		}
		if attempt >= 9 {
			return nil, fmt.Errorf("flow: %s: %w", name, err)
		}
		if attempt < 6 {
			region = cfg.NewRegion(region.Arch.Width, region.Arch.W+2)
		} else {
			// Deterministic re-anneal on the widest region, with a router
			// iteration budget raised for these near-capacity instances.
			cfg.Seed += 7919
			cfg.RouteOpts.MaxIters = 2 * cfg.RouteOpts.MaxIters
		}
	}
}
