package flow

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/merge"
)

// TestTPlaceRefineWorkerDeterminism is the flow-level half of the
// worker-determinism contract: the TPlace refinement pass (annealing from
// the combined placement's extracted sites rather than a random start)
// must return byte-identical sites and cost at any PlaceWorkers value.
func TestTPlaceRefineWorkerDeterminism(t *testing.T) {
	cfg := testConfig()
	mapped, err := MapModes(buildPair(t, 11, 12, 32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	region, err := SizeRegion(mapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One combined placement feeds every refinement run, so any
	// divergence below is TPlace's alone.
	mres, err := merge.CombinedPlace("det", mapped, region.Arch, merge.Options{
		Seed: cfg.Seed, Effort: cfg.PlaceEffort, Objective: merge.WireLength,
	})
	if err != nil {
		t.Fatal(err)
	}

	type refined struct {
		lut, pad []arch.Site
		cost     float64
	}
	run := func(workers int) refined {
		c := cfg
		c.PlaceWorkers = workers
		lut, pad, cost, err := TPlace(mres.Tunable, region.Arch, c, mres.LUTSite, mres.PadSite)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return refined{lut, pad, cost}
	}
	base := run(1)
	for _, j := range []int{2, 8} {
		if got := run(j); !reflect.DeepEqual(got, base) {
			t.Errorf("TPlace refine diverges at workers=%d (cost %v vs %v)", j, got.cost, base.cost)
		}
	}
}
