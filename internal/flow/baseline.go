package flow

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/codec"
	"repro/internal/lutnet"
	"repro/internal/merge"
	"repro/internal/route"
)

// The eco-baseline artifact captures everything a later delta compile
// needs to warm-start from a finished comparison: the sized region, each
// mode's circuit (to diff the edited version against), its placement and
// its routing trees, plus the per-mode combined-placement sites of both
// DCS objectives. It is written next to every persistent compile result
// (see service.CompileNetlists) under a key derived from the request
// identity, so "recompile this edit against yesterday's run" is one key
// away.
const (
	// KindBaseline is the artifact kind tag of an encoded Baseline.
	KindBaseline = "eco-baseline"
	// BaselineVersion covers the encoding and the delta-path semantics
	// that consume it (diff matching, transfer rules, warm routing).
	BaselineVersion = 1
)

// BaselineNet is one net's baseline routing, keyed by the net's canonical
// name ("pi<i>"/"blk<i>" with baseline indices). Only the edges are kept:
// warm seeding reconstructs paths by walking them.
type BaselineNet struct {
	Name  string
	Edges []route.Edge
}

// BaselineMode is one mode's separate (MDR) implementation.
type BaselineMode struct {
	// CircuitHash identifies the mapped circuit; a delta compile whose
	// mode hashes identically reuses Sites verbatim without diffing.
	CircuitHash codec.Hash
	// Circuit is the codec.EncodeCircuit form, decoded only when the new
	// version differs and a structural diff is needed.
	Circuit []byte
	// Sites is the placement in the place.FromCircuit cell encoding
	// (blocks, then PIs, then POs); Cost its annealing cost.
	Sites []arch.Site
	Cost  float64
	Nets  []BaselineNet
}

// BaselineMerge is the combined placement of one DCS objective, as
// per-mode site vectors in the same cell encoding as BaselineMode.Sites.
type BaselineMerge struct {
	ModeSites [][]arch.Site
}

// Baseline is the decoded eco-baseline artifact.
type Baseline struct {
	// Side, W and MinW reproduce the sized region, skipping SizeRegion
	// and RunComparison's widening retries entirely.
	Side, W, MinW int
	Modes         []BaselineMode
	// Merges is indexed by merge.Objective (WireLength, EdgeMatch).
	Merges [2]BaselineMerge
}

// BaselineArtifactKey derives the store key under which a compile's
// baseline artifact lives from the compile request's content identity.
func BaselineArtifactKey(requestKey codec.Hash) codec.Hash {
	w := codec.NewWriter()
	w.Header(KindBaseline, BaselineVersion)
	w.String(requestKey.Hex())
	return w.Sum()
}

// BuildBaseline captures a finished comparison as a baseline artifact.
// modes must be the mapped circuits the comparison implemented, in order.
func BuildBaseline(cmp *Comparison, modes []*lutnet.Circuit) *Baseline {
	b := &Baseline{
		Side: cmp.Region.Arch.Width,
		W:    cmp.Region.Arch.W,
		MinW: cmp.Region.MinW,
	}
	for m, c := range modes {
		enc := codec.EncodeCircuit(c)
		pm := &cmp.MDR.PerMode[m]
		bm := BaselineMode{
			CircuitHash: codec.Sum(enc),
			Circuit:     enc,
			Sites:       pm.Placement.SiteOf,
			Cost:        pm.Placement.Cost,
		}
		for i := range pm.Nets {
			bm.Nets = append(bm.Nets, BaselineNet{
				Name:  pm.Nets[i].Name,
				Edges: pm.Routing.Trees[i].Edges,
			})
		}
		b.Modes = append(b.Modes, bm)
	}
	b.Merges[merge.WireLength] = BaselineMerge{ModeSites: mergeModeSites(cmp.WireLen.Merge, modes)}
	b.Merges[merge.EdgeMatch] = BaselineMerge{ModeSites: mergeModeSites(cmp.EdgeMatch.Merge, modes)}
	return b
}

// mergeModeSites flattens a combined placement into per-mode site vectors:
// the site of each mode cell is the site of the Tunable group it was
// assigned to. The result is exactly the form place.TransferInit consumes.
func mergeModeSites(mres *merge.Result, modes []*lutnet.Circuit) [][]arch.Site {
	asg := mres.Assignment
	sites := make([][]arch.Site, len(modes))
	for m, c := range modes {
		s := make([]arch.Site, 0, len(c.Blocks)+len(c.PINames)+len(c.POs))
		for b := range c.Blocks {
			s = append(s, mres.LUTSite[asg.BlockGroup[m][b]])
		}
		for i := range c.PINames {
			s = append(s, mres.PadSite[asg.PIGroup[m][i]])
		}
		for o := range c.POs {
			s = append(s, mres.PadSite[asg.POGroup[m][o]])
		}
		sites[m] = s
	}
	return sites
}

func encodeSites(w *codec.Writer, sites []arch.Site) {
	w.Uvarint(uint64(len(sites)))
	for _, s := range sites {
		w.Int(s.X)
		w.Int(s.Y)
		w.Int(s.Sub)
		w.Bool(s.IsIO)
	}
}

func decodeSites(r *codec.Reader) []arch.Site {
	n := r.Len(4)
	sites := make([]arch.Site, 0, n)
	for i := 0; i < n; i++ {
		s := arch.Site{X: r.Int(), Y: r.Int(), Sub: r.Int()}
		s.IsIO = r.Bool()
		sites = append(sites, s)
	}
	return sites
}

// EncodeBaseline renders the canonical encoding of a baseline artifact.
func EncodeBaseline(b *Baseline) []byte {
	w := codec.NewWriter()
	w.Header(KindBaseline, BaselineVersion)
	w.Int(b.Side)
	w.Int(b.W)
	w.Int(b.MinW)
	w.Uvarint(uint64(len(b.Modes)))
	for i := range b.Modes {
		bm := &b.Modes[i]
		w.String(bm.CircuitHash.Hex())
		w.String(string(bm.Circuit))
		encodeSites(w, bm.Sites)
		w.Float64(bm.Cost)
		w.Uvarint(uint64(len(bm.Nets)))
		for j := range bm.Nets {
			bn := &bm.Nets[j]
			w.String(bn.Name)
			w.Uvarint(uint64(len(bn.Edges)))
			for _, e := range bn.Edges {
				w.Int(int(e.From))
				w.Int(int(e.To))
			}
		}
	}
	for obj := range b.Merges {
		w.Uvarint(uint64(len(b.Merges[obj].ModeSites)))
		for _, ms := range b.Merges[obj].ModeSites {
			encodeSites(w, ms)
		}
	}
	return w.Bytes()
}

// DecodeBaseline is the inverse of EncodeBaseline. Structural validation
// (do the sites fit the circuits? do the trees fit the graph?) is left to
// the delta path, which degrades to a cold compile on any mismatch.
func DecodeBaseline(data []byte) (*Baseline, error) {
	r := codec.NewReader(data)
	r.Header(KindBaseline, BaselineVersion)
	b := &Baseline{Side: r.Int(), W: r.Int(), MinW: r.Int()}
	for i, n := 0, r.Len(4); i < n; i++ {
		var bm BaselineMode
		h, err := codec.ParseHash(r.String())
		if err != nil {
			return nil, fmt.Errorf("flow: baseline mode hash: %w", err)
		}
		bm.CircuitHash = h
		bm.Circuit = []byte(r.String())
		bm.Sites = decodeSites(r)
		bm.Cost = r.Float64()
		for j, m := 0, r.Len(2); j < m; j++ {
			bn := BaselineNet{Name: r.String()}
			for k, e := 0, r.Len(2); k < e; k++ {
				bn.Edges = append(bn.Edges, route.Edge{From: int32(r.Int()), To: int32(r.Int())})
			}
			bm.Nets = append(bm.Nets, bn)
		}
		b.Modes = append(b.Modes, bm)
	}
	for obj := range b.Merges {
		for i, n := 0, r.Len(4); i < n; i++ {
			b.Merges[obj].ModeSites = append(b.Merges[obj].ModeSites, decodeSites(r))
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return b, nil
}
