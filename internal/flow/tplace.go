package flow

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/place"
	"repro/internal/tunable"
)

// TPlace places a Tunable circuit with the conventional annealer: Tunable
// LUTs and pads become cells, Tunable nets (a source entity and the union
// of its sink entities over all modes) become bounding-box nets — the same
// wire-length estimate the combined placement optimises. When initLUT and
// initPad carry the combined placement's extracted sites, TPlace refines
// that placement (the topology is fixed after merging, so this is where
// the paper's observation that "wire length is best optimised during the
// combined placement, not after, with TPlace" becomes visible). It returns
// the sites of LUT groups and pad groups plus the final cost.
func TPlace(tc *tunable.Circuit, a arch.Arch, cfg Config, initLUT, initPad []arch.Site) ([]arch.Site, []arch.Site, float64, error) {
	cfg = cfg.filled()
	prob := &place.Problem{}
	// Cells: TLUTs first, pads after.
	for i := range tc.TLUTs {
		prob.Cells = append(prob.Cells, place.Cell{Name: tc.TLUTs[i].Name})
	}
	for i := range tc.TPads {
		prob.Cells = append(prob.Cells, place.Cell{Name: tc.TPads[i].Name, IsIO: true})
	}
	cellOf := func(e tunable.Entity) int {
		if e.IsPad {
			return len(tc.TLUTs) + e.Idx
		}
		return e.Idx
	}
	// Tunable nets grouped by source entity.
	type srcKey struct {
		isPad bool
		idx   int
	}
	sinkSet := map[srcKey]map[int]bool{}
	var order []srcKey
	for _, cn := range tc.Conns {
		k := srcKey{cn.Src.IsPad, cn.Src.Idx}
		if _, ok := sinkSet[k]; !ok {
			sinkSet[k] = map[int]bool{}
			order = append(order, k)
		}
		sinkSet[k][cellOf(cn.Dst)] = true
	}
	for _, k := range order {
		cells := []int{cellOf(tunable.Entity{IsPad: k.isPad, Idx: k.idx})}
		for s := range sinkSet[k] {
			if s != cells[0] {
				cells = append(cells, s)
			}
		}
		if len(cells) > 1 {
			prob.Nets = append(prob.Nets, place.Net{Cells: cells, Weight: 1})
		}
	}

	popt := place.Options{
		Seed:               cfg.Seed + 7777,
		Effort:             cfg.PlaceEffort,
		RefineTempFraction: cfg.RefineTempFraction,
		Workers:            cfg.PlaceWorkers,
		Starts:             cfg.PlaceStarts,
		Obs:                cfg.Obs,
	}
	if initLUT != nil && initPad != nil {
		init := make([]arch.Site, 0, len(prob.Cells))
		init = append(init, initLUT...)
		init = append(init, initPad...)
		popt.Init = init
	}
	pl, err := place.Place(prob, a, popt)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("flow: TPlace: %w", err)
	}
	lutSites := make([]arch.Site, len(tc.TLUTs))
	padSites := make([]arch.Site, len(tc.TPads))
	for i := range tc.TLUTs {
		lutSites[i] = pl.SiteOf[i]
	}
	for i := range tc.TPads {
		padSites[i] = pl.SiteOf[len(tc.TLUTs)+i]
	}
	return lutSites, padSites, pl.Cost, nil
}
