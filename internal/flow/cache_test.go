package flow

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
)

// TestGraphCacheSingleInstance checks that concurrent requests for the
// same region geometry all receive one graph instance, built once, and
// that the shared instance matches an independently built graph.
func TestGraphCacheSingleInstance(t *testing.T) {
	c := NewCache()
	const workers = 8
	got := make([]*arch.Graph, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.graph(5, 6)
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if got[i] != got[0] {
			t.Fatalf("worker %d received a different graph instance", i)
		}
	}
	fresh := arch.BuildGraph(arch.New(5, 5, 6))
	if got[0].Checksum() != fresh.Checksum() {
		t.Fatalf("cached graph differs from a freshly built one")
	}
	if gs := c.Graphs(); len(gs) != 1 {
		t.Fatalf("cache holds %d graphs, want 1", len(gs))
	}
}

// TestPlacementMemoMatchesUncached checks that the memoized placement path
// returns exactly what the direct path computes: the memo must change how
// often work is done, never its outcome.
func TestPlacementMemoMatchesUncached(t *testing.T) {
	cfg := testConfig().filled()
	mapped, err := MapModes(buildPair(t, 3, 4, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := mapped[0]
	a := arch.New(6, 6, 8)

	plain, ccPlain, err := placeCircuit(c, a, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cached := cfg
	cached.Cache = NewCache()
	memo1, ccMemo, err := placeCircuit(c, a, cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, memo1) {
		t.Fatalf("memoized placement differs from direct placement")
	}
	if !reflect.DeepEqual(ccPlain, ccMemo) {
		t.Fatalf("memoized circuit cells differ from direct ones")
	}
	// Second request must hit the memo: same instance back.
	memo2, _, err := placeCircuit(c, a, cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if memo1 != memo2 {
		t.Fatalf("second request rebuilt the placement instead of reusing it")
	}
	// Placement is independent of channel width: a different W, same side,
	// must reuse the same entry.
	wide := arch.New(6, 6, 16)
	memo3, _, err := placeCircuit(c, wide, cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if memo1 != memo3 {
		t.Fatalf("channel width leaked into the placement key")
	}
	// A different seed must not.
	other, _, err := placeCircuit(c, a, cached, 1)
	if err != nil {
		t.Fatal(err)
	}
	if memo1 == other {
		t.Fatalf("different seeds shared one placement entry")
	}
}

// TestComparisonIdenticalWithCache runs the full three-way comparison with
// and without a cache and demands identical metrics — the guarantee the
// concurrent sweep's byte-identical reports rest on.
func TestComparisonIdenticalWithCache(t *testing.T) {
	cfg := testConfig()
	mapped, err := MapModes(buildPair(t, 1, 2, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunComparison("plain", mapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cachedCfg := cfg
	cachedCfg.Cache = NewCache()
	cached, err := RunComparison("cached", mapped, cachedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MDR.ReconfigBits != cached.MDR.ReconfigBits ||
		plain.MDR.DiffRoutingBits != cached.MDR.DiffRoutingBits ||
		plain.MDR.AvgWire != cached.MDR.AvgWire {
		t.Fatalf("MDR metrics differ with cache: %+v vs %+v", plain.MDR, cached.MDR)
	}
	if plain.EdgeMatch.ReconfigBits != cached.EdgeMatch.ReconfigBits ||
		plain.WireLen.ReconfigBits != cached.WireLen.ReconfigBits ||
		plain.EdgeMatch.AvgWire != cached.EdgeMatch.AvgWire ||
		plain.WireLen.AvgWire != cached.WireLen.AvgWire {
		t.Fatalf("DCS metrics differ with cache")
	}
	if plain.Region.Arch != cached.Region.Arch || plain.Region.MinW != cached.Region.MinW {
		t.Fatalf("region sizing differs with cache: %+v vs %+v", plain.Region.Arch, cached.Region.Arch)
	}
}
