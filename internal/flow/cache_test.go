package flow

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/codec"
	"repro/internal/lutnet"
	"repro/internal/place"
	"repro/internal/store"
)

// TestGraphCacheSingleInstance checks that concurrent requests for the
// same region geometry all receive one graph instance, built once, and
// that the shared instance matches an independently built graph.
func TestGraphCacheSingleInstance(t *testing.T) {
	c := NewCache()
	const workers = 8
	got := make([]*arch.Graph, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.graph(5, 6)
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if got[i] != got[0] {
			t.Fatalf("worker %d received a different graph instance", i)
		}
	}
	fresh := arch.BuildGraph(arch.New(5, 5, 6))
	if got[0].Checksum() != fresh.Checksum() {
		t.Fatalf("cached graph differs from a freshly built one")
	}
	if gs := c.Graphs(); len(gs) != 1 {
		t.Fatalf("cache holds %d graphs, want 1", len(gs))
	}
}

// TestPlacementMemoMatchesUncached checks that the memoized placement path
// returns exactly what the direct path computes: the memo must change how
// often work is done, never its outcome.
func TestPlacementMemoMatchesUncached(t *testing.T) {
	cfg := testConfig().filled()
	mapped, err := MapModes(buildPair(t, 3, 4, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := mapped[0]
	a := arch.New(6, 6, 8)

	plain, ccPlain, err := placeCircuit(c, a, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cached := cfg
	cached.Cache = NewCache()
	memo1, ccMemo, err := placeCircuit(c, a, cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, memo1) {
		t.Fatalf("memoized placement differs from direct placement")
	}
	if !reflect.DeepEqual(ccPlain, ccMemo) {
		t.Fatalf("memoized circuit cells differ from direct ones")
	}
	// Second request must hit the memo: same instance back.
	memo2, _, err := placeCircuit(c, a, cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if memo1 != memo2 {
		t.Fatalf("second request rebuilt the placement instead of reusing it")
	}
	// Placement is independent of channel width: a different W, same side,
	// must reuse the same entry.
	wide := arch.New(6, 6, 16)
	memo3, _, err := placeCircuit(c, wide, cached, 0)
	if err != nil {
		t.Fatal(err)
	}
	if memo1 != memo3 {
		t.Fatalf("channel width leaked into the placement key")
	}
	// A different seed must not.
	other, _, err := placeCircuit(c, a, cached, 1)
	if err != nil {
		t.Fatal(err)
	}
	if memo1 == other {
		t.Fatalf("different seeds shared one placement entry")
	}
}

// TestPlacementIgnoresChannelWidth asserts the invariant behind
// placementChannelWidth and behind the cache's channel-width-free key:
// place.Place is a pure function of the logic array's dimensions — the
// routing channel width of the architecture it is handed never influences
// the result.
func TestPlacementIgnoresChannelWidth(t *testing.T) {
	cfg := testConfig().filled()
	mapped, err := MapModes(buildPair(t, 5, 6, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prob, _ := place.FromCircuit(mapped[0])
	var baseline *place.Placement
	for _, w := range []int{2, placementChannelWidth, 64} {
		pl, err := place.Place(prob, arch.New(6, 6, w), place.Options{Seed: 3, Effort: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = pl
		} else if !reflect.DeepEqual(pl, baseline) {
			t.Fatalf("placement at channel width %d differs from the baseline", w)
		}
	}
}

// TestPlacementContentAddressed checks that the cache keys placements by
// circuit content, not pointer identity: two structurally equal circuits
// behind distinct pointers share one entry.
func TestPlacementContentAddressed(t *testing.T) {
	cfg := testConfig().filled()
	mappedA, err := MapModes(buildPair(t, 3, 4, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mappedB, err := MapModes(buildPair(t, 3, 4, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mappedA[0] == mappedB[0] {
		t.Fatal("test wants distinct circuit pointers")
	}
	c := NewCache()
	a := arch.New(6, 6, 8)
	pl1, _, err := c.placement(mappedA[0], a.Width, a.Height, 1, cfg.PlaceEffort, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl2, _, err := c.placement(mappedB[0], a.Width, a.Height, 1, cfg.PlaceEffort, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl1 != pl2 {
		t.Fatal("structurally equal circuits did not share one placement entry")
	}
	if st := c.Stats(); st.PlaceAnneals != 1 || st.PlaceHits != 1 {
		t.Fatalf("stats %+v, want 1 anneal and 1 hit", st)
	}
}

// TestPlacementStoreTier checks the persistent tier end to end: a second
// cache (a second process, in effect) sharing the same store directory
// must reload the identical placement without annealing, and a corrupted
// artifact must degrade to a recompute with the same result.
func TestPlacementStoreTier(t *testing.T) {
	cfg := testConfig().filled()
	mapped, err := MapModes(buildPair(t, 3, 4, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct := mapped[0]
	dir := t.TempDir()
	st1, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewCacheWithStore(st1)
	plCold, ccCold, err := cold.placement(ct, 6, 6, 1, cfg.PlaceEffort, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.PlaceAnneals != 1 || s.PlaceStoreHits != 0 {
		t.Fatalf("cold stats %+v, want 1 anneal / 0 store hits", s)
	}

	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewCacheWithStore(st2)
	plWarm, ccWarm, err := warm.placement(ct, 6, 6, 1, cfg.PlaceEffort, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plWarm, plCold) || !reflect.DeepEqual(ccWarm, ccCold) {
		t.Fatal("store-tier placement differs from the annealed one")
	}
	if s := warm.Stats(); s.PlaceAnneals != 0 || s.PlaceStoreHits != 1 {
		t.Fatalf("warm stats %+v, want 0 anneals / 1 store hit", s)
	}

	// Corrupt the artifact: the next process must fall back to annealing
	// and reproduce the identical placement (determinism), not error out.
	key := placeKey{circuit: warm.CircuitHash(ct), width: 6, height: 6, seed: 1, effort: cfg.PlaceEffort, starts: 1}.storeKey()
	raw, err := os.ReadFile(st2.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(st2.Path(key), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	healed := NewCacheWithStore(st3)
	plHealed, _, err := healed.placement(ct, 6, 6, 1, cfg.PlaceEffort, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plHealed, plCold) {
		t.Fatal("recompute after corruption produced a different placement")
	}
	if s := healed.Stats(); s.PlaceAnneals != 1 || s.Store.Corrupt != 1 {
		t.Fatalf("healed stats %+v, want 1 anneal / 1 corrupt", s)
	}
	// The recompute healed the entry on disk.
	st4, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	final := NewCacheWithStore(st4)
	if _, _, err := final.placement(ct, 6, 6, 1, cfg.PlaceEffort, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if s := final.Stats(); s.PlaceStoreHits != 1 {
		t.Fatalf("final stats %+v, want a store hit after healing", s)
	}
}

// TestMemoryTierFlush checks the memo-tier bound: exceeding
// memoryCapEntries flushes the maps (keeping a long-running server's
// footprint finite) and the cache keeps answering correctly afterwards.
func TestMemoryTierFlush(t *testing.T) {
	c := NewCache()
	first := &lutnet.Circuit{Name: "c0", K: 4}
	want := c.CircuitHash(first)
	for i := 1; i <= memoryCapEntries+1; i++ {
		c.CircuitHash(&lutnet.Circuit{Name: fmt.Sprintf("c%d", i), K: 4})
	}
	if c.Stats().MemFlushes == 0 {
		t.Fatalf("no flush after %d entries", memoryCapEntries+2)
	}
	if c.CircuitHash(first) != want {
		t.Fatal("hash changed across a flush")
	}
}

// TestComparisonWarmStore runs the full comparison twice against one store
// directory with fresh in-memory caches and demands identical metrics with
// zero placement annealing on the warm pass.
func TestComparisonWarmStore(t *testing.T) {
	cfg := testConfig()
	mapped, err := MapModes(buildPair(t, 1, 2, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	run := func() (*Comparison, Stats) {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Cache = NewCacheWithStore(st)
		cmp, err := RunComparison("warmstore", mapped, c)
		if err != nil {
			t.Fatal(err)
		}
		return cmp, c.Cache.Stats()
	}
	cold, coldStats := run()
	warm, warmStats := run()
	if coldStats.PlaceAnneals == 0 {
		t.Fatal("cold run annealed nothing — test is vacuous")
	}
	if warmStats.PlaceAnneals != 0 {
		t.Fatalf("warm run annealed %d placements, want 0", warmStats.PlaceAnneals)
	}
	if cold.MDR.ReconfigBits != warm.MDR.ReconfigBits ||
		cold.WireLen.ReconfigBits != warm.WireLen.ReconfigBits ||
		cold.EdgeMatch.ReconfigBits != warm.EdgeMatch.ReconfigBits ||
		cold.MDR.AvgWire != warm.MDR.AvgWire ||
		cold.Region.Arch != warm.Region.Arch {
		t.Fatal("warm-store comparison differs from the cold one")
	}
}

// TestComparisonIdenticalWithCache runs the full three-way comparison with
// and without a cache and demands identical metrics — the guarantee the
// concurrent sweep's byte-identical reports rest on.
func TestComparisonIdenticalWithCache(t *testing.T) {
	cfg := testConfig()
	mapped, err := MapModes(buildPair(t, 1, 2, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunComparison("plain", mapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cachedCfg := cfg
	cachedCfg.Cache = NewCache()
	cached, err := RunComparison("cached", mapped, cachedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MDR.ReconfigBits != cached.MDR.ReconfigBits ||
		plain.MDR.DiffRoutingBits != cached.MDR.DiffRoutingBits ||
		plain.MDR.AvgWire != cached.MDR.AvgWire {
		t.Fatalf("MDR metrics differ with cache: %+v vs %+v", plain.MDR, cached.MDR)
	}
	if plain.EdgeMatch.ReconfigBits != cached.EdgeMatch.ReconfigBits ||
		plain.WireLen.ReconfigBits != cached.WireLen.ReconfigBits ||
		plain.EdgeMatch.AvgWire != cached.EdgeMatch.AvgWire ||
		plain.WireLen.AvgWire != cached.WireLen.AvgWire {
		t.Fatalf("DCS metrics differ with cache")
	}
	if plain.Region.Arch != cached.Region.Arch || plain.Region.MinW != cached.Region.MinW {
		t.Fatalf("region sizing differs with cache: %+v vs %+v", plain.Region.Arch, cached.Region.Arch)
	}
}

// TestGraphStoreTier checks the graph artifact tier end to end: a cold
// process builds and persists the graph; a warm process (fresh cache, same
// store directory) serves it from the store with zero builds; a corrupt
// entry — at the store's checksum level or at the codec's decode level —
// degrades to a rebuild that heals the entry.
func TestGraphStoreTier(t *testing.T) {
	dir := t.TempDir()
	open := func() *Cache {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return NewCacheWithStore(st)
	}

	cold := open()
	g1 := cold.graph(5, 6)
	if s := cold.Stats(); s.GraphBuilds != 1 || s.GraphLoads != 0 {
		t.Fatalf("cold stats %+v, want 1 build / 0 loads", s)
	}

	warm := open()
	g2 := warm.graph(5, 6)
	if g2.Checksum() != g1.Checksum() {
		t.Fatal("store-served graph differs from the built one")
	}
	if g2.NumRoutingBits != g1.NumRoutingBits {
		t.Fatal("store-served graph has different routing-bit count")
	}
	if s := warm.Stats(); s.GraphBuilds != 0 || s.GraphStoreHits != 1 || s.GraphLoads != 1 {
		t.Fatalf("warm stats %+v, want 0 builds / 1 store hit / 1 load", s)
	}
	// In-process re-request is a memory hit, not another store read.
	if g3 := warm.graph(5, 6); g3 != g2 {
		t.Fatal("second in-process request returned a different instance")
	}
	if s := warm.Stats(); s.GraphHits != 1 || s.GraphStoreHits != 1 {
		t.Fatalf("stats %+v, want 1 mem hit and still 1 store hit", s)
	}

	// Store-level corruption: the entry's content no longer matches its
	// key, so store.Get reports it corrupt and the cache rebuilds.
	key := codec.GraphKey(5, 6)
	raw, err := os.ReadFile(warm.Store().Path(key))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(warm.Store().Path(key), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	healed := open()
	if g := healed.graph(5, 6); g.Checksum() != g1.Checksum() {
		t.Fatal("rebuild after store corruption produced a different graph")
	}
	if s := healed.Stats(); s.GraphBuilds != 1 || s.GraphLoads != 0 || s.Store.Corrupt != 1 {
		t.Fatalf("healed stats %+v, want 1 build / 0 loads / 1 corrupt", s)
	}
	// The rebuild healed the entry on disk.
	final := open()
	final.graph(5, 6)
	if s := final.Stats(); s.GraphBuilds != 0 || s.GraphLoads != 1 {
		t.Fatalf("final stats %+v, want the healed entry served as a load", s)
	}

	// Decode-level corruption: a store entry that passes the store's own
	// checksum (Put recomputes it) but is not a valid graph encoding must
	// count as a store hit that fails to load, then rebuild.
	bogusDir := t.TempDir()
	stBogus, err := store.Open(bogusDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := stBogus.Put(key, []byte("not a graph artifact")); err != nil {
		t.Fatal(err)
	}
	bogus := NewCacheWithStore(stBogus)
	if g := bogus.graph(5, 6); g.Checksum() != g1.Checksum() {
		t.Fatal("rebuild after decode failure produced a different graph")
	}
	if s := bogus.Stats(); s.GraphBuilds != 1 || s.GraphStoreHits != 1 || s.GraphLoads != 0 {
		t.Fatalf("bogus stats %+v, want 1 build / 1 store hit / 0 loads", s)
	}
}
