// Package flow orchestrates the two tool flows the paper compares on a
// shared reconfigurable region:
//
//   - MDR (Modular Dynamic Reconfiguration): every mode is placed and
//     routed separately; a mode switch rewrites the entire region.
//   - DCS (the paper's flow): the modes are merged by combined placement
//     into a Tunable circuit, placed (TPlace) and routed (TRoute) once; a
//     mode switch rewrites only the parameterised bits (plus, by the
//     paper's conservative convention, all LUT bits).
//
// The package also performs region sizing (area and channel width 20%
// above minimum, as in the paper) and computes every metric the evaluation
// section reports: reconfiguration bits, the Diff analysis bar, and
// per-mode wirelength.
package flow

import (
	"fmt"
	"strconv"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/merge"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/synth"
	"repro/internal/techmap"
	"repro/internal/troute"
)

// Config tunes the flows.
type Config struct {
	K           int     // LUT size (default 4)
	RelaxArea   float64 // region area relaxation (default 1.2)
	RelaxW      float64 // channel-width relaxation (default 1.2)
	PlaceEffort float64 // SA effort (default 1.0)
	// RefineTempFraction scales the annealing kernel's starting
	// temperature when TPlace refines the combined placement
	// (0 = the kernel default, 0.1).
	RefineTempFraction float64
	Seed               int64
	RouteOpts          route.Options
	// RouteWorkers sets the router's worker count (route.Options.Workers)
	// for every route this configuration runs — MDR per-mode routing,
	// TRoute, and the SizeRegion bisection probes. Routing results are
	// byte-identical at any value; only the wall clock changes. 0 keeps
	// RouteOpts.Workers (default: serial).
	RouteWorkers int
	// PlaceWorkers sets the annealers' worker count for every placement
	// this configuration runs — per-mode MDR placement, combined
	// placement, and TPlace refinement. Like RouteWorkers, results are
	// byte-identical at any value (see internal/anneal), so the knob
	// stays out of every artifact key.
	PlaceWorkers int
	// PlaceStarts runs every placement anneal as this many independently
	// seeded starts, keeping the best by the deterministic (cost, seed)
	// tiebreak. Unlike the worker knobs it CHANGES results, so it is part
	// of placement, group-result and compile-request artifact keys.
	// 0 or 1 is a single start.
	PlaceStarts int
	// Baseline, when non-empty, is the hex store key of an eco-baseline
	// artifact from a prior compile (see BuildBaseline): RunComparison
	// then skips region sizing, transfers the baseline placements onto
	// the edited modes through a structural diff, and warm-starts the
	// routers from the baseline trees. Delta results are deterministic
	// but follow a different trajectory than a cold compile, so the key
	// is part of every artifact identity; a missing or unusable baseline
	// degrades to a cold compile (counted in Stats.BaselineMisses).
	Baseline string
	// Cache, when non-nil, memoizes routing-resource graphs and placements
	// across calls (see Cache), and — when backed by a persistent artifact
	// store — across processes. Results are identical with or without it;
	// sharing one Cache between concurrent jobs deduplicates their work.
	Cache *Cache
	// Obs, when non-nil, receives route and anneal work metrics (it is
	// propagated into RouteOpts and every placement call). Trace, when
	// non-nil, records one span per flow stage (synth, size, graph,
	// place, route, merge, tplace, troute). Both are observability-only:
	// they never feed back into any algorithm and are excluded from every
	// artifact key. A Trace must not be shared by concurrent compiles —
	// the flow's stages are serial within one compile, which is what the
	// span nesting relies on.
	Obs   *obs.Registry
	Trace *obs.Trace
}

func (c Config) filled() Config {
	if c.K == 0 {
		c.K = 4
	}
	if c.RelaxArea == 0 {
		c.RelaxArea = 1.2
	}
	if c.RelaxW == 0 {
		c.RelaxW = 1.2
	}
	if c.PlaceEffort == 0 {
		c.PlaceEffort = 1.0
	}
	// Gentler PathFinder settings than the package defaults: Tunable
	// circuits of dissimilar modes route close to the region's capacity,
	// where a slowly growing present-congestion factor converges and a
	// fast one oscillates.
	if c.RouteOpts.MaxIters == 0 {
		c.RouteOpts.MaxIters = 90
	}
	if c.RouteOpts.PresFacMult == 0 {
		c.RouteOpts.PresFacMult = 1.4
	}
	if c.RouteOpts.Workers == 0 {
		c.RouteOpts.Workers = c.RouteWorkers
	}
	if c.RouteOpts.Obs == nil {
		c.RouteOpts.Obs = c.Obs
	}
	return c
}

// MapModes runs the front-end (synthesis clean-up plus technology mapping)
// on every mode description.
func MapModes(modes []*netlist.Netlist, cfg Config) ([]*lutnet.Circuit, error) {
	cfg = cfg.filled()
	defer cfg.Trace.Start("synth").End()
	out := make([]*lutnet.Circuit, len(modes))
	for i, n := range modes {
		opt := synth.Optimize(n)
		c, err := techmap.Map(opt, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("flow: mode %q: %w", n.Name, err)
		}
		out[i] = c
	}
	return out, nil
}

// Region is the shared reconfigurable region: architecture plus its
// routing-resource graph.
type Region struct {
	Arch  arch.Arch
	Graph *arch.Graph
	// MinW is the minimum routable channel width found during sizing.
	MinW int
}

// SizeRegion chooses the region: the square logic array fits the biggest
// mode with 20% area slack, and the channel width is 20% above the minimum
// width at which every mode routes individually.
func SizeRegion(modes []*lutnet.Circuit, cfg Config) (*Region, error) {
	cfg = cfg.filled()
	defer cfg.Trace.Start("size").End()
	maxBlocks, maxIO := 0, 0
	for _, c := range modes {
		if c.NumBlocks() > maxBlocks {
			maxBlocks = c.NumBlocks()
		}
		if io := c.NumPIs() + len(c.POs); io > maxIO {
			maxIO = io
		}
	}
	if maxBlocks == 0 {
		return nil, fmt.Errorf("flow: empty modes")
	}
	side := arch.MinGridForBlocks(maxBlocks, maxIO, cfg.RelaxArea)

	// Find the minimum channel width by bisection: W is routable when every
	// mode places and routes on the region. Placements do not depend on the
	// channel width, so with a Cache every probe after the first reuses the
	// same per-mode placements and only the routing is redone.
	routable := func(w int) bool {
		g := buildGraph(cfg, side, w)
		a := g.Arch
		for mi, c := range modes {
			pl, cc, err := placeCircuit(c, a, cfg, int64(mi))
			if err != nil {
				return false
			}
			nets, err := route.NetsForPlacedCircuit(g, c, cc, pl)
			if err != nil {
				return false
			}
			ro := cfg.RouteOpts
			ro.MaxIters = 24
			if _, err := route.Route(g, nets, ro); err != nil {
				return false
			}
		}
		return true
	}
	lo, hi := 2, 4
	for !routable(hi) {
		lo = hi + 1
		hi *= 2
		if hi > 128 {
			return nil, fmt.Errorf("flow: unroutable even at channel width %d", hi)
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if routable(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	minW := hi
	w := int(float64(minW)*cfg.RelaxW + 0.999)
	region := cfg.NewRegion(side, w)
	region.MinW = minW
	return region, nil
}

// BuildRegion constructs a region with an explicit logic-array side and
// channel width (used when a caller must widen the region, e.g. when the
// Tunable circuit needs more tracks than the single-mode minimum).
func BuildRegion(side, w int) *Region {
	a := arch.New(side, side, w)
	return &Region{Arch: a, Graph: arch.BuildGraph(a), MinW: w}
}

// buildGraph builds (or, with a Cache, fetches) the RRG for a side×side
// region of channel width w.
func buildGraph(cfg Config, side, w int) *arch.Graph {
	defer cfg.Trace.Start("graph",
		"side", strconv.Itoa(side), "w", strconv.Itoa(w)).End()
	if cfg.Cache != nil {
		return cfg.Cache.graph(side, w)
	}
	return arch.BuildGraph(arch.New(side, side, w))
}

// NewRegion is BuildRegion routed through the configuration's Cache: the
// region wrapper is always fresh (its MinW field is per-call state), but
// with a Cache the graph inside is built once per geometry and shared.
// Use it wherever a Config is in hand — in particular in widen-and-retry
// loops, so retries probing the same geometry reuse the graph.
func (c Config) NewRegion(side, w int) *Region {
	g := buildGraph(c, side, w)
	return &Region{Arch: g.Arch, Graph: g, MinW: w}
}

func placeCircuit(c *lutnet.Circuit, a arch.Arch, cfg Config, seedOffset int64) (*place.Placement, place.CircuitCells, error) {
	if cfg.Cache != nil {
		return cfg.Cache.placement(c, a.Width, a.Height, cfg.Seed+seedOffset, cfg.PlaceEffort, cfg.PlaceStarts, cfg.PlaceWorkers, cfg.Obs)
	}
	prob, cc := place.FromCircuit(c)
	pl, err := place.Place(prob, a, place.Options{
		Seed: cfg.Seed + seedOffset, Effort: cfg.PlaceEffort,
		Starts: cfg.PlaceStarts, Workers: cfg.PlaceWorkers,
		Obs: cfg.Obs,
	})
	if err != nil {
		return nil, cc, err
	}
	return pl, cc, nil
}

// ModeImpl is one mode's separate implementation under MDR. It retains
// everything needed to assemble the mode's full configuration afterwards
// (bitstream.Assemble, e.g. for the Diff switch-cost matrix).
type ModeImpl struct {
	Placement *place.Placement
	Cells     place.CircuitCells
	Nets      []route.Net
	Routing   *route.Result
	WireLen   int
	UsedBits  map[int32]bool
}

// MDRResult aggregates the Modular Dynamic Reconfiguration baseline.
type MDRResult struct {
	PerMode []ModeImpl
	// ReconfigBits: a mode switch rewrites the whole region.
	ReconfigBits int
	// DiffRoutingBits counts routing bits whose configured value differs
	// between modes (the paper's RegExp-Diff analysis bar).
	DiffRoutingBits int
	// AvgWire is the average per-mode wire usage.
	AvgWire float64
}

// implementMode routes one placed mode and assembles its ModeImpl. warm,
// when non-nil, maps the derived nets to baseline routing trees (the
// delta path's seed); a nil warm routes cold.
func implementMode(region *Region, c *lutnet.Circuit, cc place.CircuitCells, pl *place.Placement, ro route.Options, warm func([]route.Net) []*route.Tree) (ModeImpl, error) {
	nets, err := route.NetsForPlacedCircuit(region.Graph, c, cc, pl)
	if err != nil {
		return ModeImpl{}, err
	}
	if warm != nil {
		ro.Warm = warm(nets)
	}
	rr, err := route.Route(region.Graph, nets, ro)
	if err != nil {
		return ModeImpl{}, err
	}
	return ModeImpl{
		Placement: pl, Cells: cc, Nets: nets, Routing: rr,
		WireLen:  route.TotalWireLength(region.Graph, rr),
		UsedBits: route.UsedBits(region.Graph, rr.Trees),
	}, nil
}

// aggregateMDR folds per-mode implementations into the MDR metrics.
func aggregateMDR(region *Region, impls []ModeImpl) *MDRResult {
	res := &MDRResult{ReconfigBits: region.Graph.TotalConfigBits(), PerMode: impls}
	bitCount := map[int32]int{} // bit -> number of modes where on
	for i := range impls {
		for b := range impls[i].UsedBits {
			bitCount[b]++
		}
		res.AvgWire += float64(impls[i].WireLen)
	}
	res.AvgWire /= float64(len(impls))
	for _, cnt := range bitCount {
		if cnt != len(impls) {
			res.DiffRoutingBits++ // on in some but not all modes
		}
	}
	return res
}

// RunMDR implements every mode separately in the region.
func RunMDR(modes []*lutnet.Circuit, region *Region, cfg Config) (*MDRResult, error) {
	cfg = cfg.filled()
	impls := make([]ModeImpl, 0, len(modes))
	for mi, c := range modes {
		sp := cfg.Trace.Start("place", "mode", strconv.Itoa(mi))
		pl, cc, err := placeCircuit(c, region.Arch, cfg, int64(mi))
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("flow: MDR mode %d: %w", mi, err)
		}
		sp = cfg.Trace.Start("route", "mode", strconv.Itoa(mi))
		impl, err := implementMode(region, c, cc, pl, cfg.RouteOpts, nil)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("flow: MDR mode %d: %w", mi, err)
		}
		impls = append(impls, impl)
	}
	return aggregateMDR(region, impls), nil
}

// DiffReconfigBits is the Diff accounting: all LUT bits plus only the
// differing routing bits.
func (r *MDRResult) DiffReconfigBits(a arch.Arch) int {
	return a.TotalLUTBits() + r.DiffRoutingBits
}

// DCSResult aggregates the paper's flow.
type DCSResult struct {
	Merge  *merge.Result
	TRoute *troute.Result
	// ReconfigBits: all LUT bits + parameterised routing bits.
	ReconfigBits int
	// AvgWire is the average per-mode wire usage of the Tunable circuit.
	AvgWire float64
	// TPlaceCost is the placement cost of the Tunable circuit.
	TPlaceCost float64
}

// RunDCS merges the modes with combined placement (using the given
// objective), places the Tunable circuit with TPlace and routes it with
// TRoute.
func RunDCS(name string, modes []*lutnet.Circuit, region *Region, obj merge.Objective, cfg Config) (*DCSResult, error) {
	cfg = cfg.filled()
	sp := cfg.Trace.Start("merge", "objective", obj.String())
	mres, err := merge.CombinedPlace(name, modes, region.Arch, merge.Options{
		Seed: cfg.Seed, Effort: cfg.PlaceEffort, Objective: obj,
		Workers: cfg.PlaceWorkers, Starts: cfg.PlaceStarts,
		Obs: cfg.Obs,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	return finishDCS(mres, region, cfg)
}

// finishDCS takes a combined placement through TPlace and TRoute and
// assembles the DCS metrics — shared by the cold path and the delta path
// (which differ only in how the combined placement was seeded).
func finishDCS(mres *merge.Result, region *Region, cfg Config) (*DCSResult, error) {
	// TPlace: refine the combined placement of the Tunable circuit (the
	// topology is fixed now), then route.
	sp := cfg.Trace.Start("tplace")
	lutSites, padSites, tpCost, err := TPlace(mres.Tunable, region.Arch, cfg, mres.LUTSite, mres.PadSite)
	sp.End()
	if err != nil {
		return nil, err
	}
	ro := cfg.RouteOpts
	sp = cfg.Trace.Start("troute")
	tr, err := troute.RouteTunable(region.Graph, mres.Tunable, lutSites, padSites, ro)
	sp.End()
	if err != nil {
		return nil, err
	}
	res := &DCSResult{
		Merge:        mres,
		TRoute:       tr,
		ReconfigBits: tr.ReconfigBits(region.Arch),
		TPlaceCost:   tpCost,
	}
	for _, w := range tr.PerModeWire {
		res.AvgWire += float64(w)
	}
	res.AvgWire /= float64(len(tr.PerModeWire))
	return res, nil
}

// Speedup returns MDR reconfiguration bits over DCS reconfiguration bits
// (reconfiguration time is proportional to bits rewritten).
func Speedup(mdr *MDRResult, dcs *DCSResult) float64 {
	return float64(mdr.ReconfigBits) / float64(dcs.ReconfigBits)
}

// WireRatio returns the DCS average per-mode wirelength relative to MDR.
func WireRatio(mdr *MDRResult, dcs *DCSResult) float64 {
	if mdr.AvgWire == 0 {
		return 1
	}
	return dcs.AvgWire / mdr.AvgWire
}
