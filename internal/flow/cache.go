package flow

import (
	"sync"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/place"
)

// Cache memoizes the expensive, deterministic intermediate products of the
// flows so repeated jobs share work instead of redoing it:
//
//   - Routing-resource graphs, keyed by region geometry. A graph is built
//     once and then shared read-only — the channel-width bisection of
//     SizeRegion, the widening retries of RunComparison, and every worker
//     of a concurrent sweep all route over the same immutable structure.
//   - Placements, keyed by (circuit, logic-array side, seed, effort).
//     Placement is independent of channel width, so the placement computed
//     for the first bisection probe is reused by every later probe and by
//     the final MDR implementation on the sized region.
//
// Everything cached is a pure function of its key, so cached and uncached
// runs produce identical results; a Cache only changes how often the work
// is done. All methods are safe for concurrent use, and concurrent
// requests for the same key compute the value exactly once.
type Cache struct {
	mu     sync.Mutex
	graphs map[graphKey]*graphEntry
	places map[placeKey]*placeEntry
}

// NewCache returns an empty cache, ready for concurrent use.
func NewCache() *Cache {
	return &Cache{
		graphs: map[graphKey]*graphEntry{},
		places: map[placeKey]*placeEntry{},
	}
}

type graphKey struct {
	side, w int
}

type graphEntry struct {
	once sync.Once
	g    *arch.Graph
}

// graph returns the routing-resource graph of a side×side region with
// channel width w, building it on first request.
func (c *Cache) graph(side, w int) *arch.Graph {
	c.mu.Lock()
	e := c.graphs[graphKey{side: side, w: w}]
	if e == nil {
		e = &graphEntry{}
		c.graphs[graphKey{side: side, w: w}] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		g := arch.BuildGraph(arch.New(side, side, w))
		// Publish under mu so that Graphs — which cannot use once.Do
		// without racing to mark unbuilt entries done — can read e.g
		// safely; callers of graph() itself are ordered by once.Do.
		c.mu.Lock()
		e.g = g
		c.mu.Unlock()
	})
	return e.g
}

// Graphs returns the graphs currently held by the cache, for tests and
// diagnostics (e.g. verifying that shared graphs were not mutated).
func (c *Cache) Graphs() []*arch.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*arch.Graph
	for _, e := range c.graphs {
		if e.g != nil { // published under mu; nil while a build is in flight
			out = append(out, e.g)
		}
	}
	return out
}

// placeKey identifies a placement by everything place.Place depends on:
// the circuit (by identity — suites share *lutnet.Circuit pointers across
// pairs), the logic-array dimensions, and the annealer seed and effort.
// Channel width is deliberately absent: placement never looks at it.
type placeKey struct {
	circuit       *lutnet.Circuit
	width, height int
	seed          int64
	effort        float64
}

type placeEntry struct {
	once sync.Once
	pl   *place.Placement
	cc   place.CircuitCells
	err  error
}

// placement returns the annealed placement of circuit ct on a
// width×height logic array under the given seed and effort, computing it
// on first request. The returned placement is shared: callers must treat
// it as immutable.
func (c *Cache) placement(ct *lutnet.Circuit, width, height int, seed int64, effort float64) (*place.Placement, place.CircuitCells, error) {
	k := placeKey{circuit: ct, width: width, height: height, seed: seed, effort: effort}
	c.mu.Lock()
	e := c.places[k]
	if e == nil {
		e = &placeEntry{}
		c.places[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		a := arch.New(width, height, 4) // channel width is irrelevant to placement
		prob, cc := place.FromCircuit(ct)
		pl, err := place.Place(prob, a, place.Options{Seed: seed, Effort: effort})
		e.pl, e.cc, e.err = pl, cc, err
	})
	return e.pl, e.cc, e.err
}
