package flow

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/codec"
	"repro/internal/lutnet"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/store"
)

// placementChannelWidth is the channel width of the throwaway architecture
// handed to place.Place by the cache. Placement is wirelength-driven over
// logic and pad *sites* only — it never reads the channel width, which is
// why one cached placement serves every channel-width probe of SizeRegion
// and why this value is arbitrary. The invariant is asserted by
// TestPlacementIgnoresChannelWidth; anything routing-related must not be
// built from this architecture.
const placementChannelWidth = 4

// memoryCapEntries bounds the in-process memo tier. A sweep or a CLI run
// never approaches it, but a long-running mmserved accumulates entries
// (and the hashes map pins every requested circuit) for the process
// lifetime; past the cap the maps are flushed wholesale. Flushing is
// always sound — at worst the next request recomputes or re-reads the
// persistent store — so the coarse policy buys a bounded footprint
// without per-entry LRU bookkeeping. In-flight computations are
// unaffected: waiters hold their entry pointer, and a re-request simply
// creates a fresh entry.
const memoryCapEntries = 4096

// Cache memoizes the expensive, deterministic intermediate products of the
// flows so repeated jobs share work instead of redoing it:
//
//   - Routing-resource graphs, keyed by region geometry. A graph is built
//     once and then shared read-only — the channel-width bisection of
//     SizeRegion, the widening retries of RunComparison, and every worker
//     of a concurrent sweep all route over the same immutable structure.
//   - Placements, keyed by (circuit content hash, logic-array side, seed,
//     effort). Placement is independent of channel width, so the placement
//     computed for the first bisection probe is reused by every later
//     probe and by the final MDR implementation on the sized region. The
//     key is the circuit's *content* — structurally equal circuits hit the
//     same entry regardless of pointer identity or which process computed
//     it first.
//
// A cache optionally carries a persistent second tier: a content-addressed
// artifact store (see NewCacheWithStore). Memory misses then consult the
// store before computing, and computed placements (plus, one layer up,
// experiments' whole group results) are written back, so warm-path work
// survives the process. Everything cached is a pure function of its key,
// so cached and uncached runs produce identical results; a Cache only
// changes how often the work is done. All methods are safe for concurrent
// use, and concurrent requests for the same key compute the value exactly
// once per process.
type Cache struct {
	mu     sync.Mutex
	graphs map[graphKey]*graphEntry
	places map[placeKey]*placeEntry
	hashes map[*lutnet.Circuit]codec.Hash // memoized content hashes
	store  *store.Store

	graphBuilds, graphHits       atomic.Uint64
	graphLoads, graphStoreHits   atomic.Uint64
	placeAnneals, placeHits      atomic.Uint64
	placeStoreHits               atomic.Uint64
	artifactHits, artifactMisses atomic.Uint64
	memFlushes                   atomic.Uint64

	placeTransfers, warmRouteNets atomic.Uint64
	baselineMisses                atomic.Uint64
}

// maybeFlushLocked empties the memo maps when the entry cap is exceeded.
// Callers hold c.mu.
func (c *Cache) maybeFlushLocked() {
	if len(c.graphs)+len(c.places)+len(c.hashes) <= memoryCapEntries {
		return
	}
	c.graphs = map[graphKey]*graphEntry{}
	c.places = map[placeKey]*placeEntry{}
	c.hashes = map[*lutnet.Circuit]codec.Hash{}
	c.memFlushes.Add(1)
}

// NewCache returns an empty in-memory cache, ready for concurrent use.
func NewCache() *Cache {
	return &Cache{
		graphs: map[graphKey]*graphEntry{},
		places: map[placeKey]*placeEntry{},
		hashes: map[*lutnet.Circuit]codec.Hash{},
	}
}

// NewCacheWithStore returns a cache backed by a persistent artifact store:
// the in-memory tier works exactly as in NewCache, and misses fall through
// to st before computing. st may be nil, which is equivalent to NewCache.
func NewCacheWithStore(st *store.Store) *Cache {
	c := NewCache()
	c.store = st
	return c
}

// Store returns the persistent tier, or nil for a memory-only cache.
func (c *Cache) Store() *store.Store { return c.store }

// Stats is a snapshot of cache traffic, reported by mmbench and asserted
// by the warm-path tests (a warm sweep must show zero PlaceAnneals).
type Stats struct {
	// GraphBuilds counts routing-resource graphs built; GraphHits counts
	// requests served by an already-built graph.
	GraphBuilds, GraphHits uint64
	// GraphStoreHits counts graph keys for which the artifact store
	// returned an entry; GraphLoads counts entries that decoded, validated
	// and were used in place of a build. A warm process shows GraphBuilds
	// == 0 with every graph served as a load.
	GraphLoads, GraphStoreHits uint64
	// PlaceAnneals counts actual place.Place executions — the annealing
	// work a warm cache exists to skip. PlaceHits are memory-tier hits,
	// PlaceStoreHits are placements decoded from the artifact store.
	PlaceAnneals, PlaceHits, PlaceStoreHits uint64
	// ArtifactHits / ArtifactMisses count top-level artifact lookups —
	// whole group results (experiments.RunGroup) and whole compile
	// results (service.CompileNetlists), the tiers consulted before
	// running any flow at all.
	ArtifactHits, ArtifactMisses uint64
	// MemFlushes counts wholesale flushes of the in-memory tier (the
	// memoryCapEntries bound that keeps a long-running server's
	// footprint finite).
	MemFlushes uint64
	// PlaceTransfers counts annealer runs seeded by baseline placement
	// transfer, and WarmRouteNets nets seeded from baseline routing
	// trees — the ECO delta path's reuse. BaselineMisses counts delta
	// compiles that fell back to the cold path because their baseline
	// was missing, corrupt or no longer fit the edited modes.
	PlaceTransfers, WarmRouteNets uint64
	BaselineMisses                uint64
	// Store is the persistent tier's own traffic (zero without a store).
	Store store.Stats
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		GraphBuilds:    c.graphBuilds.Load(),
		GraphHits:      c.graphHits.Load(),
		GraphLoads:     c.graphLoads.Load(),
		GraphStoreHits: c.graphStoreHits.Load(),
		PlaceAnneals:   c.placeAnneals.Load(),
		PlaceHits:      c.placeHits.Load(),
		PlaceStoreHits: c.placeStoreHits.Load(),
		ArtifactHits:   c.artifactHits.Load(),
		ArtifactMisses: c.artifactMisses.Load(),
		MemFlushes:     c.memFlushes.Load(),
		PlaceTransfers: c.placeTransfers.Load(),
		WarmRouteNets:  c.warmRouteNets.Load(),
		BaselineMisses: c.baselineMisses.Load(),
	}
	if c.store != nil {
		s.Store = c.store.Stats()
	}
	return s
}

// String renders the snapshot as the one-line summary mmbench prints.
func (s Stats) String() string {
	line := fmt.Sprintf("graphs %d built / %d hits / %d store hits / %d loaded; placements %d annealed / %d mem hits / %d store hits; artifacts %d store hits / %d misses",
		s.GraphBuilds, s.GraphHits, s.GraphStoreHits, s.GraphLoads, s.PlaceAnneals, s.PlaceHits, s.PlaceStoreHits, s.ArtifactHits, s.ArtifactMisses)
	if s.PlaceTransfers != 0 || s.WarmRouteNets != 0 || s.BaselineMisses != 0 {
		line += fmt.Sprintf("; delta %d place transfers / %d warm nets / %d baseline misses",
			s.PlaceTransfers, s.WarmRouteNets, s.BaselineMisses)
	}
	if s.Store != (store.Stats{}) {
		line += fmt.Sprintf("; store %d hits / %d misses / %d corrupt, %dB read / %dB written, %d evicted",
			s.Store.Hits, s.Store.Misses, s.Store.Corrupt, s.Store.BytesRead, s.Store.BytesWritten, s.Store.Evictions)
	}
	if st := s.Store; st.RemoteHits != 0 || st.RemoteMisses != 0 || st.RemotePuts != 0 || st.RemoteErrors != 0 {
		line += fmt.Sprintf("; remote %d hits / %d misses / %d puts / %d errors",
			st.RemoteHits, st.RemoteMisses, st.RemotePuts, st.RemoteErrors)
	}
	return line
}

// CircuitHash returns the circuit's content hash, memoized per pointer so
// suites sharing circuit pointers across groups hash each circuit once.
func (c *Cache) CircuitHash(ct *lutnet.Circuit) codec.Hash {
	c.mu.Lock()
	h, ok := c.hashes[ct]
	c.mu.Unlock()
	if ok {
		return h
	}
	h = codec.HashCircuit(ct)
	c.mu.Lock()
	c.maybeFlushLocked()
	c.hashes[ct] = h
	c.mu.Unlock()
	return h
}

type graphKey struct {
	side, w int
}

type graphEntry struct {
	once sync.Once
	g    *arch.Graph
}

// graph returns the routing-resource graph of a side×side region with
// channel width w, building it on first request.
func (c *Cache) graph(side, w int) *arch.Graph {
	c.mu.Lock()
	e := c.graphs[graphKey{side: side, w: w}]
	if e == nil {
		c.maybeFlushLocked()
		e = &graphEntry{}
		c.graphs[graphKey{side: side, w: w}] = e
	}
	c.mu.Unlock()
	built := false
	e.once.Do(func() {
		built = true
		g := c.loadOrBuildGraph(side, w)
		// Publish under mu so that Graphs — which cannot use once.Do
		// without racing to mark unbuilt entries done — can read e.g
		// safely; callers of graph() itself are ordered by once.Do.
		c.mu.Lock()
		e.g = g
		c.mu.Unlock()
	})
	if !built {
		c.graphHits.Add(1)
	}
	return e.g
}

// loadOrBuildGraph serves a graph miss of the in-memory tier: the
// persistent store (when attached) is consulted for a prebuilt graph
// first, and only a store miss — or an entry that fails to decode,
// fails its checksum, or describes a different architecture than the
// requested geometry implies — falls through to BuildGraph. Built graphs
// are written back, so a corrupt or stale entry heals itself and warm
// processes skip the build entirely (GraphBuilds == 0).
func (c *Cache) loadOrBuildGraph(side, w int) *arch.Graph {
	var key codec.Hash
	if c.store != nil {
		key = codec.GraphKey(side, w)
		if data, err := c.store.Get(key); err == nil {
			c.graphStoreHits.Add(1)
			if g, derr := codec.DecodeGraph(data); derr == nil && g.Arch == arch.New(side, side, w) {
				c.graphLoads.Add(1)
				return g
			}
		}
	}
	c.graphBuilds.Add(1)
	g := arch.BuildGraph(arch.New(side, side, w))
	if c.store != nil {
		// Best effort, like placements: a failed write only costs the
		// next process a rebuild.
		_ = c.store.Put(key, codec.EncodeGraph(g))
	}
	return g
}

// Graphs returns the graphs currently held by the cache, for tests and
// diagnostics (e.g. verifying that shared graphs were not mutated).
func (c *Cache) Graphs() []*arch.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*arch.Graph
	for _, e := range c.graphs {
		if e.g != nil { // published under mu; nil while a build is in flight
			out = append(out, e.g)
		}
	}
	return out
}

// placeKey identifies a placement by everything place.Place depends on:
// the circuit (by content hash — structurally equal circuits share the
// entry, within and across processes), the logic-array dimensions, and the
// annealer seed, effort and multi-start count. Channel width is
// deliberately absent: placement never looks at it (see
// placementChannelWidth). Worker count is deliberately absent too:
// results are byte-identical at any -placej, so keying on it would only
// split identical artifacts.
type placeKey struct {
	circuit       codec.Hash
	width, height int
	seed          int64
	effort        float64
	starts        int
}

// storeKey derives the artifact-store key of a placement entry. The
// placement format version rides in via codec.EncodePlacement's header at
// write time and, for the key itself, below — so a format bump orphans
// stale entries instead of misreading them.
func (k placeKey) storeKey() codec.Hash {
	w := codec.NewWriter()
	w.Header(codec.KindPlacement, codec.PlacementVersion)
	w.String(k.circuit.Hex())
	w.Int(k.width)
	w.Int(k.height)
	w.Varint(k.seed)
	w.Float64(k.effort)
	w.Int(k.starts)
	return w.Sum()
}

type placeEntry struct {
	once sync.Once
	pl   *place.Placement
	cc   place.CircuitCells
	err  error
}

// placement returns the annealed placement of circuit ct on a
// width×height logic array under the given seed, effort and multi-start
// count, computing it on first request per process and consulting the
// artifact store (when attached) before annealing. workers parallelises
// the annealing without affecting the result (and so stays out of the
// key); reg likewise only observes the anneal that actually runs — a
// memory or store hit records nothing, which is exactly the work-done
// truth. The returned placement is shared: callers must treat it as
// immutable.
func (c *Cache) placement(ct *lutnet.Circuit, width, height int, seed int64, effort float64, starts, workers int, reg *obs.Registry) (*place.Placement, place.CircuitCells, error) {
	if starts < 1 {
		starts = 1 // normalised so 0 and 1 share the (identical) artifact
	}
	k := placeKey{circuit: c.CircuitHash(ct), width: width, height: height, seed: seed, effort: effort, starts: starts}
	c.mu.Lock()
	e := c.places[k]
	if e == nil {
		c.maybeFlushLocked()
		e = &placeEntry{}
		c.places[k] = e
	}
	c.mu.Unlock()
	computed := false
	e.once.Do(func() {
		computed = true
		var key codec.Hash
		if c.store != nil {
			key = k.storeKey()
			if data, err := c.store.Get(key); err == nil {
				pl, cc, derr := codec.DecodePlacement(data)
				// The artifact must match the circuit in hand; a mismatch
				// (e.g. a hash collision would require one, but a stale
				// format is the realistic case) degrades to a recompute.
				if derr == nil && cc.NumBlk == len(ct.Blocks) && cc.NumPI == len(ct.PINames) && cc.NumPO == len(ct.POs) {
					cc.Circuit = ct
					c.placeStoreHits.Add(1)
					e.pl, e.cc = pl, cc
					return
				}
			}
		}
		c.placeAnneals.Add(1)
		a := arch.New(width, height, placementChannelWidth)
		prob, cc := place.FromCircuit(ct)
		pl, err := place.Place(prob, a, place.Options{Seed: seed, Effort: effort, Starts: starts, Workers: workers, Obs: reg})
		e.pl, e.cc, e.err = pl, cc, err
		if c.store != nil && err == nil {
			// Best effort: a failed write only costs the next process a
			// recompute.
			_ = c.store.Put(key, codec.EncodePlacement(pl, cc))
		}
	})
	if !computed {
		c.placeHits.Add(1)
	}
	return e.pl, e.cc, e.err
}

// GetArtifact looks a top-level artifact (a whole group result, a whole
// compile result) up in the persistent tier. It returns (nil, false) for
// memory-only caches, misses, and corrupt entries alike — callers
// recompute and PutArtifact heals the entry.
func (c *Cache) GetArtifact(key codec.Hash) ([]byte, bool) {
	if c.store == nil {
		return nil, false
	}
	data, err := c.store.Get(key)
	if err != nil {
		c.artifactMisses.Add(1)
		return nil, false
	}
	c.artifactHits.Add(1)
	return data, true
}

// PutArtifact stores a top-level artifact in the persistent tier (a no-op
// for memory-only caches; these artifacts need no in-process memo — a
// sweep evaluates each group exactly once, and mmserved's in-flight dedup
// covers the request level).
func (c *Cache) PutArtifact(key codec.Hash, data []byte) {
	if c.store == nil {
		return
	}
	_ = c.store.Put(key, data)
}
