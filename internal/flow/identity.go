package flow

import (
	"repro/internal/lutnet"
	"repro/internal/troute"
	"repro/internal/tunable"
)

// RunDCSIdentity runs the DCS back-end on the naive index-based merge of
// the paper's Fig. 3 (no combined placement): block i of every mode shares
// Tunable LUT i, pad i shares pad group i. Used as an ablation baseline
// showing the value of the combined-placement merge heuristics.
func RunDCSIdentity(name string, modes []*lutnet.Circuit, region *Region, cfg Config) (*DCSResult, error) {
	cfg = cfg.filled()
	tc, err := tunable.Merge(name, modes, tunable.Identity(modes))
	if err != nil {
		return nil, err
	}
	lutSites, padSites, tpCost, err := TPlace(tc, region.Arch, cfg, nil, nil)
	if err != nil {
		return nil, err
	}
	tr, err := troute.RouteTunable(region.Graph, tc, lutSites, padSites, cfg.RouteOpts)
	if err != nil {
		return nil, err
	}
	res := &DCSResult{
		TRoute:       tr,
		ReconfigBits: tr.ReconfigBits(region.Arch),
		TPlaceCost:   tpCost,
	}
	for _, w := range tr.PerModeWire {
		res.AvgWire += float64(w)
	}
	res.AvgWire /= float64(len(tr.PerModeWire))
	return res, nil
}
