package flow

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/lutnet"
	"repro/internal/troute"
)

// SwitchMatrix is the N×N per-switch reconfiguration-cost matrix of an
// N-mode group: m[i][j] is the number of configuration bits rewritten when
// the region switches from mode i to mode j. The diagonal is zero (staying
// in a mode rewrites nothing). The pair sweep's single "bits per switch"
// number is the 2-mode special case; for N ≥ 3 the matrix exposes which
// specific transitions are cheap and which are expensive.
type SwitchMatrix [][]int

// NewSwitchMatrix returns a zeroed n×n matrix.
func NewSwitchMatrix(n int) SwitchMatrix {
	m := make(SwitchMatrix, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	return m
}

// N returns the number of modes the matrix covers.
func (m SwitchMatrix) N() int { return len(m) }

// Avg returns the mean cost over all ordered off-diagonal switches.
func (m SwitchMatrix) Avg() float64 {
	n := len(m)
	if n < 2 {
		return 0
	}
	sum := 0
	for i := range m {
		for j := range m[i] {
			if i != j {
				sum += m[i][j]
			}
		}
	}
	return float64(sum) / float64(n*(n-1))
}

// Worst returns the most expensive switch (from, to, cost). For an empty
// or 1×1 matrix it returns (0, 0, 0).
func (m SwitchMatrix) Worst() (from, to, cost int) {
	for i := range m {
		for j := range m[i] {
			if i != j && m[i][j] > cost {
				from, to, cost = i, j, m[i][j]
			}
		}
	}
	return from, to, cost
}

// Symmetric reports whether m[i][j] == m[j][i] for every mode pair —
// guaranteed for any accounting that counts *differing* bits between two
// configurations (bit difference is an unordered relation).
func (m SwitchMatrix) Symmetric() bool {
	for i := range m {
		if len(m[i]) != len(m) {
			return false
		}
		for j := i + 1; j < len(m); j++ {
			if m[i][j] != m[j][i] {
				return false
			}
		}
	}
	return true
}

// FprintRows writes the matrix body, one "[ ... ]" row per line with
// right-aligned cells, each line prefixed by indent — the shared rendering
// under every report's own header line.
func (m SwitchMatrix) FprintRows(w io.Writer, indent string) {
	for i := range m {
		cells := make([]string, len(m[i]))
		for j, v := range m[i] {
			cells[j] = fmt.Sprintf("%8d", v)
		}
		fmt.Fprintf(w, "%s[%s ]\n", indent, strings.Join(cells, " "))
	}
}

// MDRSwitchMatrix is the full-rewrite accounting of the MDR baseline:
// every mode switch rewrites the whole region, so every off-diagonal
// entry is the region's total configuration-bit count.
func MDRSwitchMatrix(region *Region, n int) SwitchMatrix {
	total := region.Graph.TotalConfigBits()
	m := NewSwitchMatrix(n)
	for i := range m {
		for j := range m[i] {
			if i != j {
				m[i][j] = total
			}
		}
	}
	return m
}

// MDRDiffSwitchMatrix is the Diff accounting of the MDR baseline tied to
// actual bitstreams: each mode's separate implementation is assembled into
// a full configuration, and m[i][j] is bitstream.DiffBits between the
// configurations of modes i and j (LUT plus routing bits that actually
// change). It is symmetric by construction.
func MDRDiffSwitchMatrix(region *Region, modes []*lutnet.Circuit, mdr *MDRResult) (SwitchMatrix, error) {
	if len(modes) != len(mdr.PerMode) {
		return nil, fmt.Errorf("flow: %d modes but %d MDR implementations", len(modes), len(mdr.PerMode))
	}
	cfgs := make([]*bitstream.Config, len(modes))
	for i, impl := range mdr.PerMode {
		cfg, err := bitstream.Assemble(region.Graph, modes[i], impl.Cells, impl.Placement, impl.Nets, impl.Routing)
		if err != nil {
			return nil, fmt.Errorf("flow: assembling MDR mode %d: %w", i, err)
		}
		cfgs[i] = cfg
	}
	m := NewSwitchMatrix(len(modes))
	for i := range cfgs {
		for j := i + 1; j < len(cfgs); j++ {
			lutDiff, routingDiff, err := bitstream.DiffBits(cfgs[i], cfgs[j])
			if err != nil {
				return nil, err
			}
			m[i][j] = lutDiff + routingDiff
			m[j][i] = m[i][j]
		}
	}
	return m, nil
}

// DCSSwitchMatrix is the paper's accounting applied per transition: a
// switch from mode i to mode j rewrites all LUT bits of the region (the
// conservative convention) plus only the parameterised routing bits whose
// configured value differs between the two modes.
func DCSSwitchMatrix(a arch.Arch, tr *troute.Result, n int) SwitchMatrix {
	m := NewSwitchMatrix(n)
	lut := a.TotalLUTBits()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			diff := 0
			for _, act := range tr.BitModes {
				if act.Contains(i) != act.Contains(j) {
					diff++
				}
			}
			m[i][j] = lut + diff
			m[j][i] = m[i][j]
		}
	}
	return m
}
