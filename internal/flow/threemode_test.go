package flow

import (
	"testing"

	"repro/internal/merge"
	"repro/internal/mode"
)

// TestThreeModeFlow exercises the full pipeline with three modes (two mode
// bits): sizing, MDR with generalised Diff counting, and DCS with
// multi-bit activation functions.
func TestThreeModeFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{PlaceEffort: 0.2, Seed: 9}
	nls := buildPair(t, 21, 22, 28)
	nls = append(nls, buildPair(t, 23, 24, 28)[0])
	mapped, err := MapModes(nls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := RunComparison("tri", mapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cmp.WireLen.Merge.Tunable.NumModes; got != 3 {
		t.Fatalf("NumModes = %d", got)
	}
	if mode.NumModeBits(3) != 2 {
		t.Fatal("3 modes need 2 mode bits")
	}
	if sp := Speedup(cmp.MDR, cmp.WireLen); sp <= 1 {
		t.Errorf("3-mode speedup %.2f not above 1", sp)
	}
	// Activation functions over two mode bits must render correctly.
	sawMultiBit := false
	for _, cn := range cmp.WireLen.Merge.Tunable.Conns {
		expr := cn.Act.Expression(3)
		if expr == "" {
			t.Fatal("empty activation expression")
		}
		if len(expr) > 2 && expr != "1" && expr != "0" {
			sawMultiBit = true
		}
	}
	if !sawMultiBit {
		t.Error("no non-trivial activation functions in a 3-mode merge")
	}
	// Every mode still extractable and valid.
	for m := 0; m < 3; m++ {
		if _, err := cmp.WireLen.Merge.Tunable.ExtractMode(m); err != nil {
			t.Fatalf("mode %d: %v", m, err)
		}
	}
	_ = merge.WireLength
}
