package flow

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/codec"
	"repro/internal/lutnet"
	"repro/internal/merge"
	"repro/internal/place"
	"repro/internal/route"
)

// The delta path is the ECO flow: instead of sizing a region and placing
// and routing every mode from scratch, a compile against a baseline
// artifact reuses the baseline's region, matches every mode's cells
// against the baseline version with a structural diff, transfers the
// baseline placements onto the matched portion, quenches the annealers at
// the warm-start temperature, and seeds the routers from the baseline
// trees so only nets touching moved or edited cells renegotiate.
//
// Delta results are deterministic (same baseline + same edit + same seed
// give byte-identical results at any worker count) but are a different
// trajectory than a cold compile of the same input — the QoR difference
// is bounded by the equivalence suite in delta_test.go. Any problem with
// the baseline — missing from the store, corrupt, wrong mode count,
// sites that no longer fit — degrades to a cold compile, counted in
// Stats.BaselineMisses; a baseline can never turn a compilable input
// into a failure.

// DeltaStats reports what a delta compile reused from its baseline.
type DeltaStats struct {
	// UsedBaseline is set when the delta path produced the result;
	// BaselineMiss when a baseline was requested but the compile fell
	// back to the cold path.
	UsedBaseline bool
	BaselineMiss bool
	// ReusedModes counts MDR mode placements inherited verbatim
	// (hash-identical circuits).
	ReusedModes int
	// PlaceTransfers counts annealer runs seeded by baseline transfer
	// (edited MDR modes plus the two combined placements).
	PlaceTransfers int
	// WarmRouteNets counts nets seeded intact from baseline trees across
	// every route of the compile.
	WarmRouteNets int
}

// loadBaseline resolves Config.Baseline to a decoded artifact.
func loadBaseline(cfg Config) (*Baseline, error) {
	if cfg.Cache == nil {
		return nil, fmt.Errorf("flow: baseline %q requested without a cache", cfg.Baseline)
	}
	key, err := codec.ParseHash(cfg.Baseline)
	if err != nil {
		return nil, err
	}
	data, ok := cfg.Cache.GetArtifact(key)
	if !ok {
		return nil, fmt.Errorf("flow: baseline %s not in store", cfg.Baseline)
	}
	return DecodeBaseline(data)
}

// runComparisonDelta implements the modes against a baseline. Any error
// is a reason to fall back to the cold path, never a final failure.
func runComparisonDelta(name string, modes []*lutnet.Circuit, cfg Config) (*Comparison, error) {
	base, err := loadBaseline(cfg)
	if err != nil {
		return nil, err
	}
	if len(base.Modes) != len(modes) {
		return nil, fmt.Errorf("flow: baseline has %d modes, request has %d", len(base.Modes), len(modes))
	}
	region := cfg.NewRegion(base.Side, base.W)
	region.MinW = base.MinW

	// Diff each edited mode against its baseline version once; both the
	// MDR and the DCS paths consume the same match.
	diffs := make([]*codec.CircuitDiff, len(modes))
	oldCs := make([]*lutnet.Circuit, len(modes))
	for m, c := range modes {
		bm := &base.Modes[m]
		var h codec.Hash
		if cfg.Cache != nil {
			h = cfg.Cache.CircuitHash(c)
		} else {
			h = codec.HashCircuit(c)
		}
		if h == bm.CircuitHash {
			continue // unchanged: nil diff means identity
		}
		oldC, derr := codec.DecodeCircuit(bm.Circuit)
		if derr != nil {
			return nil, fmt.Errorf("flow: baseline mode %d: %w", m, derr)
		}
		oldCs[m] = oldC
		diffs[m] = codec.DiffCircuits(oldC, c)
	}

	delta := &DeltaStats{UsedBaseline: true}
	cmp := &Comparison{Region: region, Delta: delta}
	cmp.MDR, err = runMDRDelta(modes, region, cfg, base, oldCs, diffs, delta)
	if err == nil {
		cmp.EdgeMatch, err = runDCSDelta(name, modes, region, merge.EdgeMatch, cfg, base, oldCs, diffs, delta)
	}
	if err == nil {
		cmp.WireLen, err = runDCSDelta(name, modes, region, merge.WireLength, cfg, base, oldCs, diffs, delta)
	}
	if err != nil {
		return nil, err
	}
	return cmp, nil
}

// matchVector maps the new circuit's cells onto baseline cell indices in
// the place.FromCircuit encoding (blocks, PIs, POs), -1 for unmatched.
func matchVector(d *codec.CircuitDiff, oldC, newC *lutnet.Circuit) []int {
	oldB, oldP := len(oldC.Blocks), len(oldC.PINames)
	match := make([]int, 0, len(newC.Blocks)+len(newC.PINames)+len(newC.POs))
	for b := range newC.Blocks {
		match = append(match, d.CellMap[b])
	}
	for i := range newC.PINames {
		if j := d.PIMap[i]; j >= 0 {
			match = append(match, oldB+j)
		} else {
			match = append(match, -1)
		}
	}
	for o := range newC.POs {
		if j := d.POMap[o]; j >= 0 {
			match = append(match, oldB+oldP+j)
		} else {
			match = append(match, -1)
		}
	}
	return match
}

// identityMatch is the match vector of an unchanged mode.
func identityMatch(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// mapNetName translates a new net's canonical name ("blk<i>"/"pi<i>",
// new indices) into the baseline's name space through the diff, or ""
// when the driver has no baseline counterpart.
func mapNetName(name string, d *codec.CircuitDiff) string {
	if s := strings.TrimPrefix(name, "blk"); s != name {
		i, err := strconv.Atoi(s)
		if err != nil || i < 0 || i >= len(d.CellMap) || d.CellMap[i] < 0 {
			return ""
		}
		return "blk" + strconv.Itoa(d.CellMap[i])
	}
	if s := strings.TrimPrefix(name, "pi"); s != name {
		i, err := strconv.Atoi(s)
		if err != nil || i < 0 || i >= len(d.PIMap) || d.PIMap[i] < 0 {
			return ""
		}
		return "pi" + strconv.Itoa(d.PIMap[i])
	}
	return ""
}

// warmTreesFor pairs each new net with its baseline tree by canonical
// name (mapped through the diff for edited modes). Nets without a
// counterpart stay nil and route cold; trees that no longer reach their
// sinks are discarded by the router itself.
func warmTreesFor(nets []route.Net, bm *BaselineMode, d *codec.CircuitDiff) []*route.Tree {
	byName := make(map[string]*route.Tree, len(bm.Nets))
	for i := range bm.Nets {
		byName[bm.Nets[i].Name] = &route.Tree{Edges: bm.Nets[i].Edges}
	}
	warm := make([]*route.Tree, len(nets))
	for i := range nets {
		name := nets[i].Name
		if d != nil {
			if name = mapNetName(name, d); name == "" {
				continue
			}
		}
		warm[i] = byName[name]
	}
	return warm
}

// runMDRDelta is RunMDR with warm starts: unchanged modes inherit the
// baseline placement verbatim, edited modes transfer the matched portion
// and quench, and every route is seeded from the baseline trees.
func runMDRDelta(modes []*lutnet.Circuit, region *Region, cfg Config, base *Baseline, oldCs []*lutnet.Circuit, diffs []*codec.CircuitDiff, delta *DeltaStats) (*MDRResult, error) {
	impls := make([]ModeImpl, 0, len(modes))
	for mi, c := range modes {
		bm := &base.Modes[mi]
		cc := place.CellsOf(c)
		numCells := cc.NumBlk + cc.NumPI + cc.NumPO
		sp := cfg.Trace.Start("place", "mode", strconv.Itoa(mi), "path", "delta")
		var pl *place.Placement
		if diffs[mi] == nil {
			if len(bm.Sites) != numCells {
				return nil, fmt.Errorf("flow: baseline mode %d has %d sites for %d cells", mi, len(bm.Sites), numCells)
			}
			pl = &place.Placement{SiteOf: bm.Sites, Cost: bm.Cost}
			delta.ReusedModes++
		} else {
			prob, _ := place.FromCircuit(c)
			match := matchVector(diffs[mi], oldCs[mi], c)
			init, _, err := place.TransferInit(prob, region.Arch, match, bm.Sites)
			if err != nil {
				return nil, fmt.Errorf("flow: delta MDR mode %d: %w", mi, err)
			}
			pl, err = place.Place(prob, region.Arch, place.Options{
				Seed: cfg.Seed + int64(mi), Effort: cfg.PlaceEffort,
				Workers: cfg.PlaceWorkers, Init: init, WarmStart: true,
				Obs: cfg.Obs,
			})
			if err != nil {
				return nil, fmt.Errorf("flow: delta MDR mode %d: %w", mi, err)
			}
			delta.PlaceTransfers++
			if cfg.Cache != nil {
				cfg.Cache.placeTransfers.Add(1)
			}
		}
		sp.End()
		sp = cfg.Trace.Start("route", "mode", strconv.Itoa(mi), "path", "delta")
		impl, err := implementMode(region, c, cc, pl, cfg.RouteOpts, func(nets []route.Net) []*route.Tree {
			return warmTreesFor(nets, bm, diffs[mi])
		})
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("flow: delta MDR mode %d: %w", mi, err)
		}
		delta.WarmRouteNets += impl.Routing.Stats.WarmNets
		if cfg.Cache != nil {
			cfg.Cache.warmRouteNets.Add(uint64(impl.Routing.Stats.WarmNets))
		}
		impls = append(impls, impl)
	}
	return aggregateMDR(region, impls), nil
}

// runDCSDelta is RunDCS seeded from the baseline combined placement:
// every mode's cells transfer through the diff onto the baseline's
// per-mode sites, and the combined annealer quenches from there. TPlace
// refines as usual and TRoute runs cold — tunable routing is rebuilt
// from the (mostly inherited) placement, which negotiation reconverges
// quickly anyway.
func runDCSDelta(name string, modes []*lutnet.Circuit, region *Region, obj merge.Objective, cfg Config, base *Baseline, oldCs []*lutnet.Circuit, diffs []*codec.CircuitDiff, delta *DeltaStats) (*DCSResult, error) {
	bm := &base.Merges[obj]
	if len(bm.ModeSites) != len(modes) {
		return nil, fmt.Errorf("flow: baseline %s merge has %d modes, request has %d", obj, len(bm.ModeSites), len(modes))
	}
	inits := make([][]arch.Site, len(modes))
	for m, c := range modes {
		prob, cc := place.FromCircuit(c)
		var match []int
		if diffs[m] == nil {
			numCells := cc.NumBlk + cc.NumPI + cc.NumPO
			if len(bm.ModeSites[m]) != numCells {
				return nil, fmt.Errorf("flow: baseline %s merge mode %d has %d sites for %d cells", obj, m, len(bm.ModeSites[m]), numCells)
			}
			match = identityMatch(numCells)
		} else {
			match = matchVector(diffs[m], oldCs[m], c)
		}
		init, _, err := place.TransferInit(prob, region.Arch, match, bm.ModeSites[m])
		if err != nil {
			return nil, fmt.Errorf("flow: delta %s merge mode %d: %w", obj, m, err)
		}
		inits[m] = init
	}
	sp := cfg.Trace.Start("merge", "objective", obj.String(), "path", "delta")
	mres, err := merge.CombinedPlace(name, modes, region.Arch, merge.Options{
		Seed: cfg.Seed, Effort: cfg.PlaceEffort, Objective: obj,
		Workers: cfg.PlaceWorkers, Init: inits, WarmStart: true,
		Obs: cfg.Obs,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	delta.PlaceTransfers++
	if cfg.Cache != nil {
		cfg.Cache.placeTransfers.Add(1)
	}
	// TPlace normally refines the combined placement at the refinement
	// temperature; in the delta path the topology it refines was already
	// TPlace-refined in the baseline, so open at the warm-start quench
	// temperature instead (a caller-set fraction still wins).
	qcfg := cfg
	if qcfg.RefineTempFraction == 0 {
		qcfg.RefineTempFraction = 0.02
	}
	res, err := finishDCS(mres, region, qcfg)
	if err == nil {
		return res, nil
	}
	// The quench can leave the tunable circuit unroutable on congested
	// instances: the combined annealer is blind to pin congestion, and a
	// placement nudged off the baseline can demand the same input pin
	// twice in ways no channel width fixes. Re-anneal just this objective
	// from scratch on the baseline region — the MDR savings and the other
	// objective's delta are kept, and the retry is deterministic like
	// everything else here.
	return RunDCS(name, modes, region, obj, cfg)
}
