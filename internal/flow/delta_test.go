package flow

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/codec"
	"repro/internal/logic"
	"repro/internal/lutnet"
	"repro/internal/store"
)

// editCircuit returns a deep copy of c with nEdits random LUTs re-functioned
// (one truth-table row flipped each) — the canonical ECO edit. Flipping a
// valid row guarantees the content hash changes.
func editCircuit(c *lutnet.Circuit, seed int64, nEdits int) *lutnet.Circuit {
	e := &lutnet.Circuit{
		Name:    c.Name,
		K:       c.K,
		PINames: append([]string(nil), c.PINames...),
		POs:     append([]lutnet.PO(nil), c.POs...),
		Blocks:  append([]lutnet.Block(nil), c.Blocks...),
	}
	for i := range e.Blocks {
		e.Blocks[i].Inputs = append([]lutnet.Source(nil), e.Blocks[i].Inputs...)
	}
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < nEdits; k++ {
		bi := rng.Intn(len(e.Blocks))
		tt := e.Blocks[bi].TT
		rows := 1 << tt.NumVars
		e.Blocks[bi].TT = logic.NewTT(tt.NumVars, tt.Bits^(uint64(1)<<rng.Intn(rows)))
	}
	return e
}

// deltaFixture compiles a three-mode group cold, stores its baseline
// artifact and returns everything a delta test needs.
type deltaFixture struct {
	cfg    Config
	mapped []*lutnet.Circuit
	cold   *Comparison
	key    codec.Hash
}

func newDeltaFixture(t *testing.T) *deltaFixture {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{PlaceEffort: 0.15, Seed: 5, Cache: NewCacheWithStore(st)}
	nls := buildPair(t, 41, 42, 24)
	nls = append(nls, buildPair(t, 43, 44, 24)[0])
	mapped, err := MapModes(nls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunComparison("base", mapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := codec.Sum([]byte("delta-test-baseline"))
	cfg.Cache.PutArtifact(key, EncodeBaseline(BuildBaseline(cold, mapped)))
	return &deltaFixture{cfg: cfg, mapped: mapped, cold: cold, key: key}
}

// TestBaselineRoundTrip: the artifact encoding is lossless.
func TestBaselineRoundTrip(t *testing.T) {
	fx := newDeltaFixture(t)
	b := BuildBaseline(fx.cold, fx.mapped)
	dec, err := DecodeBaseline(EncodeBaseline(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, dec) {
		t.Fatal("baseline artifact did not round-trip")
	}
	if _, err := DecodeBaseline([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded as a baseline")
	}
}

// TestDeltaEquivalence is the delta-vs-cold equivalence suite: over 20
// seeded 1-to-3-LUT edits of a three-mode group, every delta compile must
// (a) succeed and use the baseline, (b) reuse the two untouched modes
// verbatim and warm-route most nets, (c) be byte-identical at any worker
// count, and (d) on the sampled edits, stay within the documented QoR
// envelope of a cold compile of the same edited input: average per-mode
// wirelength within 1.75x (the delta placement is a quench of the
// baseline, not a fresh anneal, so some wirelength regression is the
// price of the speedup; the envelope is asserted so it cannot silently
// grow).
func TestDeltaEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fx := newDeltaFixture(t)
	dcfg := fx.cfg
	dcfg.Baseline = fx.key.Hex()

	for i := 0; i < 20; i++ {
		i := i
		t.Run(fmt.Sprintf("edit%02d", i), func(t *testing.T) {
			mi := i % 3
			nEdits := 1 + i%3
			edited := append([]*lutnet.Circuit(nil), fx.mapped...)
			edited[mi] = editCircuit(fx.mapped[mi], int64(100+i), nEdits)

			dcmp, err := RunComparison("delta", edited, dcfg)
			if err != nil {
				t.Fatalf("delta compile failed: %v", err)
			}
			d := dcmp.Delta
			if d == nil || !d.UsedBaseline || d.BaselineMiss {
				t.Fatalf("delta path not taken: %+v", d)
			}
			if d.ReusedModes != 2 {
				t.Fatalf("reused %d/2 untouched modes", d.ReusedModes)
			}
			// One edited MDR mode + two combined placements transfer.
			if d.PlaceTransfers != 3 {
				t.Fatalf("PlaceTransfers = %d, want 3", d.PlaceTransfers)
			}
			if d.WarmRouteNets == 0 {
				t.Fatal("no nets warm-routed")
			}
			// The delta region is the baseline region verbatim.
			if dcmp.Region.Arch.Width != fx.cold.Region.Arch.Width || dcmp.Region.Arch.W != fx.cold.Region.Arch.W {
				t.Fatalf("delta region %dx%d/W%d differs from baseline",
					dcmp.Region.Arch.Width, dcmp.Region.Arch.Width, dcmp.Region.Arch.W)
			}

			if i == 0 {
				// Determinism: the same delta at -placej/-routej 4 is
				// byte-identical.
				jcfg := dcfg
				jcfg.PlaceWorkers = 4
				jcfg.RouteWorkers = 4
				jcmp, err := RunComparison("delta", edited, jcfg)
				if err != nil {
					t.Fatal(err)
				}
				for m := range dcmp.MDR.PerMode {
					if !reflect.DeepEqual(dcmp.MDR.PerMode[m].Placement.SiteOf, jcmp.MDR.PerMode[m].Placement.SiteOf) {
						t.Fatalf("mode %d placement differs across worker counts", m)
					}
					if !reflect.DeepEqual(dcmp.MDR.PerMode[m].Routing.Trees, jcmp.MDR.PerMode[m].Routing.Trees) {
						t.Fatalf("mode %d routing differs across worker counts", m)
					}
				}
				if dcmp.WireLen.ReconfigBits != jcmp.WireLen.ReconfigBits ||
					dcmp.WireLen.TPlaceCost != jcmp.WireLen.TPlaceCost ||
					dcmp.EdgeMatch.ReconfigBits != jcmp.EdgeMatch.ReconfigBits {
					t.Fatal("DCS results differ across worker counts")
				}
			}

			if i%7 == 0 {
				// QoR accounting against a cold compile of the same edit.
				ccmp, err := RunComparison("cold", edited, fx.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if dcmp.MDR.AvgWire > 1.75*ccmp.MDR.AvgWire {
					t.Errorf("delta MDR wire %.1f exceeds 1.75x cold %.1f", dcmp.MDR.AvgWire, ccmp.MDR.AvgWire)
				}
				if dcmp.WireLen.AvgWire > 1.75*ccmp.WireLen.AvgWire {
					t.Errorf("delta DCS wire %.1f exceeds 1.75x cold %.1f", dcmp.WireLen.AvgWire, ccmp.WireLen.AvgWire)
				}
			}
		})
	}
}

// TestDeltaFallsBackCold: a missing and a corrupt baseline both degrade
// to a cold compile — identical to a baseline-free run — and are counted.
func TestDeltaFallsBackCold(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{PlaceEffort: 0.15, Seed: 5, Cache: NewCacheWithStore(st)}
	mapped, err := MapModes(buildPair(t, 41, 42, 24), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunComparison("cold", mapped, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Missing baseline.
	mcfg := cfg
	mcfg.Baseline = codec.Sum([]byte("no-such-artifact")).Hex()
	miss, err := RunComparison("miss", mapped, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Delta == nil || !miss.Delta.BaselineMiss || miss.Delta.UsedBaseline {
		t.Fatalf("missing baseline not reported: %+v", miss.Delta)
	}

	// Corrupt baseline.
	ckey := codec.Sum([]byte("corrupt-artifact"))
	cfg.Cache.PutArtifact(ckey, []byte("not a baseline"))
	ccfg := cfg
	ccfg.Baseline = ckey.Hex()
	corrupt, err := RunComparison("corrupt", mapped, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt.Delta == nil || !corrupt.Delta.BaselineMiss {
		t.Fatalf("corrupt baseline not reported: %+v", corrupt.Delta)
	}

	if got := cfg.Cache.Stats().BaselineMisses; got != 2 {
		t.Fatalf("BaselineMisses = %d, want 2", got)
	}
	// The fallback is the cold path: same placements as the baseline-free
	// run (placements come from the shared cache, but routing and DCS are
	// recomputed identically).
	for m := range cold.MDR.PerMode {
		if !reflect.DeepEqual(cold.MDR.PerMode[m].Routing.Trees, corrupt.MDR.PerMode[m].Routing.Trees) {
			t.Fatalf("fallback mode %d routing differs from cold", m)
		}
	}
	if cold.WireLen.ReconfigBits != corrupt.WireLen.ReconfigBits {
		t.Fatal("fallback DCS differs from cold")
	}
}
