package flow

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/merge"
	"repro/internal/netlist"
)

// buildPair creates two related small sequential netlists (same generator
// family, different seeds) — a miniature multi-mode circuit.
func buildPair(t *testing.T, seedA, seedB int64, nGates int) []*netlist.Netlist {
	t.Helper()
	mk := func(seed int64) *netlist.Netlist {
		rng := rand.New(rand.NewSource(seed))
		b := netlist.NewBuilder(fmt.Sprintf("mode%d", seed))
		sigs := b.InputVector("in", 4)
		for i := 0; i < nGates; i++ {
			x := sigs[rng.Intn(len(sigs))]
			y := sigs[rng.Intn(len(sigs))]
			var s int
			switch rng.Intn(5) {
			case 0:
				s = b.And(x, y)
			case 1:
				s = b.Or(x, y)
			case 2:
				s = b.Xor(x, y)
			case 3:
				s = b.Not(x)
			default:
				s = b.Latch(x, false)
			}
			sigs = append(sigs, s)
		}
		for i := 0; i < 3; i++ {
			b.Output(fmt.Sprintf("o[%d]", i), sigs[len(sigs)-1-i])
		}
		return b.N
	}
	return []*netlist.Netlist{mk(seedA), mk(seedB)}
}

func testConfig() Config {
	return Config{PlaceEffort: 0.25, Seed: 1}
}

func TestFullFlowEndToEnd(t *testing.T) {
	cfg := testConfig()
	mapped, err := MapModes(buildPair(t, 1, 2, 35), cfg)
	if err != nil {
		t.Fatal(err)
	}
	region, err := SizeRegion(mapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if region.MinW < 2 {
		t.Errorf("suspicious minimum channel width %d", region.MinW)
	}
	if region.Arch.W < region.MinW {
		t.Errorf("relaxed width %d below minimum %d", region.Arch.W, region.MinW)
	}

	mdr, err := RunMDR(mapped, region, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mdr.ReconfigBits != region.Graph.TotalConfigBits() {
		t.Errorf("MDR must rewrite the whole region")
	}
	if mdr.DiffRoutingBits <= 0 {
		t.Errorf("different modes must differ in some routing bits")
	}
	if mdr.AvgWire <= 0 {
		t.Errorf("MDR wirelength zero")
	}

	for _, obj := range []merge.Objective{merge.WireLength, merge.EdgeMatch} {
		dcs, err := RunDCS("mm", mapped, region, obj, cfg)
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		if dcs.ReconfigBits >= mdr.ReconfigBits {
			t.Errorf("%v: DCS bits %d not below MDR bits %d", obj, dcs.ReconfigBits, mdr.ReconfigBits)
		}
		if sp := Speedup(mdr, dcs); sp <= 1 {
			t.Errorf("%v: speedup %.2f not above 1", obj, sp)
		}
		// The parameterised bits must be fewer than the Diff bits would
		// suggest only in favourable cases; but they can never exceed all
		// routing bits.
		if dcs.TRoute.ParamRoutingBits > region.Graph.NumRoutingBits {
			t.Errorf("%v: parameterised bits exceed total routing bits", obj)
		}
		if dcs.AvgWire <= 0 {
			t.Errorf("%v: DCS wirelength zero", obj)
		}
	}
}

func TestDCSModesStillEquivalent(t *testing.T) {
	// After the whole flow, the Tunable circuit must still implement every
	// mode exactly.
	cfg := testConfig()
	nls := buildPair(t, 3, 4, 30)
	mapped, err := MapModes(nls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	region, err := SizeRegion(mapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dcs, err := RunDCS("mm", mapped, region, merge.WireLength, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for m := range mapped {
		got, err := dcs.Merge.Tunable.ExtractMode(m)
		if err != nil {
			t.Fatal(err)
		}
		// Compare against the ORIGINAL netlist (through synth+map) to cover
		// the full pipeline.
		sa := netlist.NewSimulator(nls[m])
		sb, err := newLutSim(got)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(m + 50)))
		for cyc := 0; cyc < 40; cyc++ {
			in := map[string]bool{}
			for _, nm := range sa.InputNames() {
				in[nm] = rng.Intn(2) == 0
			}
			oa := sa.Step(in)
			ob := sb.Step(in)
			for k, v := range oa {
				if ob[k] != v {
					t.Fatalf("mode %d cycle %d output %s differs", m, cyc, k)
				}
			}
		}
	}
}

func TestSpeedupAccounting(t *testing.T) {
	mdr := &MDRResult{ReconfigBits: 1000}
	dcs := &DCSResult{ReconfigBits: 200}
	if sp := Speedup(mdr, dcs); sp != 5 {
		t.Errorf("Speedup = %v, want 5", sp)
	}
	mdr.AvgWire, dcs.AvgWire = 100, 124
	if wr := WireRatio(mdr, dcs); wr != 1.24 {
		t.Errorf("WireRatio = %v, want 1.24", wr)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.filled()
	if c.K != 4 || c.RelaxArea != 1.2 || c.RelaxW != 1.2 || c.PlaceEffort != 1.0 {
		t.Errorf("defaults wrong: %+v", c)
	}
}
