package flow

import "repro/internal/lutnet"

// newLutSim is a tiny indirection so tests read naturally.
func newLutSim(c *lutnet.Circuit) (*lutnet.Simulator, error) {
	return lutnet.NewSimulator(c)
}
