package arch

import (
	"testing"
	"testing/quick"
)

func TestSiteCounts(t *testing.T) {
	a := New(4, 3, 6)
	if got := len(a.CLBSites()); got != 12 {
		t.Errorf("CLB sites = %d, want 12", got)
	}
	if got := len(a.IOSites()); got != a.NumIOSites() {
		t.Errorf("IOSites len %d != NumIOSites %d", got, a.NumIOSites())
	}
	if a.NumIOSites() != 2*(4+3)*2 {
		t.Errorf("NumIOSites = %d, want 28", a.NumIOSites())
	}
}

func TestIOSitesUnique(t *testing.T) {
	a := New(5, 5, 8)
	seen := map[Site]bool{}
	for _, s := range a.IOSites() {
		if seen[s] {
			t.Fatalf("duplicate IO site %v", s)
		}
		seen[s] = true
		if !s.IsIO {
			t.Fatalf("IO site %v not marked IsIO", s)
		}
		onEdge := s.X == 0 || s.X == a.Width+1 || s.Y == 0 || s.Y == a.Height+1
		if !onEdge {
			t.Fatalf("IO site %v not on perimeter", s)
		}
	}
}

func TestLUTBits(t *testing.T) {
	a := New(3, 3, 4)
	if a.LUTBitsPerCLB() != 17 {
		t.Errorf("LUTBitsPerCLB = %d, want 17 (16 truth-table + 1 FF select)", a.LUTBitsPerCLB())
	}
	if a.TotalLUTBits() != 9*17 {
		t.Errorf("TotalLUTBits = %d, want %d", a.TotalLUTBits(), 9*17)
	}
}

func TestMinGridForBlocks(t *testing.T) {
	cases := []struct {
		blocks, ios int
		relax       float64
		want        int
	}{
		{9, 4, 1.0, 3},
		{10, 4, 1.0, 4},
		{9, 40, 1.0, 5},   // IO-bound: 8*side >= 40
		{100, 4, 1.2, 11}, // side 10, area 120 -> 11^2=121
	}
	for _, tc := range cases {
		if got := MinGridForBlocks(tc.blocks, tc.ios, tc.relax); got != tc.want {
			t.Errorf("MinGridForBlocks(%d,%d,%v) = %d, want %d", tc.blocks, tc.ios, tc.relax, got, tc.want)
		}
	}
}

func TestGraphNodeIndexing(t *testing.T) {
	a := New(3, 2, 4)
	g := BuildGraph(a)
	// All node index helpers must land on nodes of the right type/coords.
	for y := 1; y <= a.Height; y++ {
		for x := 1; x <= a.Width; x++ {
			if n := g.Nodes[g.CLBSource(x, y)]; n.Type != NodeSource || int(n.X) != x || int(n.Y) != y {
				t.Fatalf("CLBSource(%d,%d) -> %+v", x, y, n)
			}
			if n := g.Nodes[g.CLBOpin(x, y)]; n.Type != NodeOPin {
				t.Fatalf("CLBOpin(%d,%d) -> %+v", x, y, n)
			}
			if n := g.Nodes[g.CLBSink(x, y)]; n.Type != NodeSink {
				t.Fatalf("CLBSink(%d,%d) -> %+v", x, y, n)
			}
			for p := 0; p < a.K; p++ {
				if n := g.Nodes[g.CLBIpin(x, y, p)]; n.Type != NodeIPin || int(n.Track) != p {
					t.Fatalf("CLBIpin(%d,%d,%d) -> %+v", x, y, p, n)
				}
			}
		}
	}
	for y := 0; y <= a.Height; y++ {
		for x := 1; x <= a.Width; x++ {
			for tr := 0; tr < a.W; tr++ {
				if n := g.Nodes[g.ChanX(x, y, tr)]; n.Type != NodeChanX || int(n.X) != x || int(n.Y) != y || int(n.Track) != tr {
					t.Fatalf("ChanX(%d,%d,%d) -> %+v", x, y, tr, n)
				}
			}
		}
	}
	for x := 0; x <= a.Width; x++ {
		for y := 1; y <= a.Height; y++ {
			for tr := 0; tr < a.W; tr++ {
				if n := g.Nodes[g.ChanY(x, y, tr)]; n.Type != NodeChanY || int(n.X) != x || int(n.Y) != y || int(n.Track) != tr {
					t.Fatalf("ChanY(%d,%d,%d) -> %+v", x, y, tr, n)
				}
			}
		}
	}
}

func TestGraphEdgeSanity(t *testing.T) {
	a := New(3, 3, 4)
	g := BuildGraph(a)
	nEdges := 0
	for n := int32(0); n < int32(g.NumNodes()); n++ {
		tos := g.Edges(n)
		bits := g.EdgeBits(n)
		if len(tos) != len(bits) {
			t.Fatalf("node %d: edges/bits length mismatch", n)
		}
		nEdges += len(tos)
		from := g.Nodes[n]
		for i, to := range tos {
			if to < 0 || int(to) >= g.NumNodes() {
				t.Fatalf("node %d: edge to out-of-range %d", n, to)
			}
			toN := g.Nodes[to]
			// Type-level legality.
			switch from.Type {
			case NodeSource:
				if toN.Type != NodeOPin {
					t.Fatalf("SOURCE->%v illegal", toN.Type)
				}
				if bits[i] != -1 {
					t.Fatalf("SOURCE edge has a config bit")
				}
			case NodeOPin:
				if !toN.IsWire() {
					t.Fatalf("OPIN->%v illegal", toN.Type)
				}
				if bits[i] < 0 {
					t.Fatalf("OPIN edge lacks a config bit")
				}
			case NodeIPin:
				if toN.Type != NodeSink {
					t.Fatalf("IPIN->%v illegal", toN.Type)
				}
			case NodeChanX, NodeChanY:
				if !(toN.IsWire() || toN.Type == NodeIPin) {
					t.Fatalf("wire->%v illegal", toN.Type)
				}
				if bits[i] < 0 {
					t.Fatalf("wire edge lacks a config bit")
				}
			case NodeSink:
				t.Fatalf("SINK has outgoing edge")
			}
		}
	}
	if nEdges == 0 {
		t.Fatal("graph has no edges")
	}
	if g.NumRoutingBits <= 0 {
		t.Fatal("no routing bits")
	}
}

func TestWireSwitchesShareBits(t *testing.T) {
	// Every wire-wire switch must appear as two directed edges with the
	// same bit id.
	a := New(2, 2, 2)
	g := BuildGraph(a)
	bitPair := map[int32][][2]int32{}
	for n := int32(0); n < int32(g.NumNodes()); n++ {
		if !g.Nodes[n].IsWire() {
			continue
		}
		tos := g.Edges(n)
		bits := g.EdgeBits(n)
		for i, to := range tos {
			if g.Nodes[to].IsWire() {
				bitPair[bits[i]] = append(bitPair[bits[i]], [2]int32{n, to})
			}
		}
	}
	for bit, dirs := range bitPair {
		if len(dirs) != 2 {
			t.Fatalf("wire-wire bit %d has %d directed edges, want 2", bit, len(dirs))
		}
		if dirs[0][0] != dirs[1][1] || dirs[0][1] != dirs[1][0] {
			t.Fatalf("bit %d edges are not mutual: %v", bit, dirs)
		}
	}
}

func TestSwitchBlockPattern(t *testing.T) {
	// Straight-through switches preserve the track; turns may shift by one.
	a := New(3, 3, 4)
	g := BuildGraph(a)
	for n := int32(0); n < int32(g.NumNodes()); n++ {
		if !g.Nodes[n].IsWire() {
			continue
		}
		for _, to := range g.Edges(n) {
			if !g.Nodes[to].IsWire() {
				continue
			}
			from, toN := g.Nodes[n], g.Nodes[to]
			if from.Type == toN.Type {
				if from.Track != toN.Track {
					t.Fatalf("straight switch changes track: %+v -> %+v", from, toN)
				}
				continue
			}
			d := (int(toN.Track) - int(from.Track) + a.W) % a.W
			if d != 0 && d != 1 && d != a.W-1 {
				t.Fatalf("turn switch shifts by %d: %+v -> %+v", d, from, toN)
			}
		}
	}
}

func TestTrackDomainsConnected(t *testing.T) {
	// Regression for the subset-switchbox pathology: every OPIN must reach
	// every IPIN of every logic block through the fabric.
	a := New(3, 3, 4)
	g := BuildGraph(a)
	start := g.CLBOpin(1, 1)
	reach := make([]bool, g.NumNodes())
	stack := []int32{start}
	reach[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, to := range g.Edges(n) {
			if !reach[to] {
				reach[to] = true
				stack = append(stack, to)
			}
		}
	}
	for y := 1; y <= a.Height; y++ {
		for x := 1; x <= a.Width; x++ {
			for p := 0; p < a.K; p++ {
				if !reach[g.CLBIpin(x, y, p)] {
					t.Fatalf("IPIN (%d,%d).%d unreachable from OPIN (1,1)", x, y, p)
				}
			}
		}
	}
}

func TestEveryIpinReachableFromSomeWire(t *testing.T) {
	a := New(3, 3, 4)
	g := BuildGraph(a)
	inDeg := make([]int, g.NumNodes())
	for n := int32(0); n < int32(g.NumNodes()); n++ {
		for _, to := range g.Edges(n) {
			inDeg[to]++
		}
	}
	for n := int32(0); n < int32(g.NumNodes()); n++ {
		nd := g.Nodes[n]
		if nd.Type == NodeIPin && inDeg[n] == 0 {
			t.Fatalf("IPIN %+v unreachable", nd)
		}
		if nd.Type == NodeOPin && len(g.Edges(n)) == 0 {
			t.Fatalf("OPIN %+v has no fanout", nd)
		}
	}
}

func TestQuickGridRelaxMonotonic(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		return MinGridForBlocks(n, 4, 1.2) >= MinGridForBlocks(n, 4, 1.0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalConfigBits(t *testing.T) {
	a := New(4, 4, 6)
	g := BuildGraph(a)
	if g.TotalConfigBits() != g.NumRoutingBits+a.TotalLUTBits() {
		t.Error("TotalConfigBits mismatch")
	}
	// Routing must dominate the configuration, as the paper observes.
	if g.NumRoutingBits < a.TotalLUTBits() {
		t.Errorf("routing bits (%d) should dominate LUT bits (%d)", g.NumRoutingBits, a.TotalLUTBits())
	}
}
