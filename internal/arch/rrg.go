package arch

import "fmt"

// NodeType enumerates routing-resource graph node classes.
type NodeType uint8

const (
	// NodeSource is the virtual source behind a logic-block or pad output.
	NodeSource NodeType = iota
	// NodeSink is the virtual sink behind a logic-block or pad input.
	NodeSink
	// NodeOPin is a physical output pin.
	NodeOPin
	// NodeIPin is a physical input pin.
	NodeIPin
	// NodeChanX is a horizontal unit-length wire segment.
	NodeChanX
	// NodeChanY is a vertical unit-length wire segment.
	NodeChanY
)

func (t NodeType) String() string {
	switch t {
	case NodeSource:
		return "SOURCE"
	case NodeSink:
		return "SINK"
	case NodeOPin:
		return "OPIN"
	case NodeIPin:
		return "IPIN"
	case NodeChanX:
		return "CHANX"
	case NodeChanY:
		return "CHANY"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Node is one routing resource. For wires, Track is the channel track; for
// pad pins, Track is the pad sub-position.
type Node struct {
	Type  NodeType
	X, Y  int16
	Track int16
}

// IsWire reports whether the node is a routing wire segment.
func (n Node) IsWire() bool { return n.Type == NodeChanX || n.Type == NodeChanY }

// Graph is the routing-resource graph: nodes, a flat adjacency structure,
// and the configuration-bit index of every programmable switch. Wire-wire
// switches are bidirectional pass transistors: both directed edges share
// one bit.
type Graph struct {
	Arch  Arch
	Nodes []Node

	// Xs and Ys mirror the node coordinates as flat SoA arrays (parallel
	// to Nodes). The router's A* lower bound reads millions of coordinate
	// pairs per route; loading two int16 arrays instead of full Node
	// structs keeps that inner loop on dense cache lines. Derived from
	// Nodes — never mutate.
	Xs, Ys []int16

	// SinkFlags marks SINK nodes, parallel to Nodes: the router's neighbor
	// loop prunes non-target sinks on every edge expansion, and the flat
	// byte array keeps that test off the Node structs too. Derived from
	// Nodes — never mutate.
	SinkFlags []bool

	edgeStart []int32 // CSR offsets into edgeTo/edgeBit, len = len(Nodes)+1
	edgeTo    []int32
	edgeBit   []int32 // configuration bit of each directed edge, -1 if hardwired

	NumRoutingBits int

	clbBase int // node index of first CLB resource
	ioBase  int
	chanXBase,
	chanYBase int
}

// fillCoordSoA derives the flat coordinate and sink-flag arrays from
// Nodes.
func (g *Graph) fillCoordSoA() {
	g.Xs = make([]int16, len(g.Nodes))
	g.Ys = make([]int16, len(g.Nodes))
	g.SinkFlags = make([]bool, len(g.Nodes))
	for i := range g.Nodes {
		g.Xs[i] = g.Nodes[i].X
		g.Ys[i] = g.Nodes[i].Y
		g.SinkFlags[i] = g.Nodes[i].Type == NodeSink
	}
}

// Per-CLB node layout: SOURCE, OPIN, SINK, IPIN*K.
func (g *Graph) clbNode(x, y, off int) int32 {
	a := g.Arch
	return int32(g.clbBase + ((y-1)*a.Width+(x-1))*(3+a.K) + off)
}

// CLBSource returns the SOURCE node of the logic block at (x, y).
func (g *Graph) CLBSource(x, y int) int32 { return g.clbNode(x, y, 0) }

// CLBOpin returns the OPIN node of the logic block at (x, y).
func (g *Graph) CLBOpin(x, y int) int32 { return g.clbNode(x, y, 1) }

// CLBSink returns the SINK node of the logic block at (x, y).
func (g *Graph) CLBSink(x, y int) int32 { return g.clbNode(x, y, 2) }

// CLBIpin returns input-pin node p of the logic block at (x, y).
func (g *Graph) CLBIpin(x, y, p int) int32 { return g.clbNode(x, y, 3+p) }

// Per-pad node layout: SOURCE, OPIN, SINK, IPIN.
func (g *Graph) padNode(ioIndex, off int) int32 {
	return int32(g.ioBase + ioIndex*4 + off)
}

// PadSource returns the SOURCE node of pad site i (index into IOSites()).
func (g *Graph) PadSource(i int) int32 { return g.padNode(i, 0) }

// PadOpin returns the OPIN node of pad site i.
func (g *Graph) PadOpin(i int) int32 { return g.padNode(i, 1) }

// PadSink returns the SINK node of pad site i.
func (g *Graph) PadSink(i int) int32 { return g.padNode(i, 2) }

// PadIpin returns the IPIN node of pad site i.
func (g *Graph) PadIpin(i int) int32 { return g.padNode(i, 3) }

// ChanX returns the horizontal wire node at (x in 1..Width, y in 0..Height,
// track t).
func (g *Graph) ChanX(x, y, t int) int32 {
	a := g.Arch
	return int32(g.chanXBase + ((y*a.Width+(x-1))*a.W + t))
}

// ChanY returns the vertical wire node at (x in 0..Width, y in 1..Height,
// track t).
func (g *Graph) ChanY(x, y, t int) int32 {
	a := g.Arch
	return int32(g.chanYBase + ((x*a.Height+(y-1))*a.W + t))
}

// Edges returns the adjacency list of node n.
func (g *Graph) Edges(n int32) []int32 {
	return g.edgeTo[g.edgeStart[n]:g.edgeStart[n+1]]
}

// EdgeBits returns the per-edge configuration-bit ids parallel to Edges(n);
// -1 marks hardwired (non-programmable) edges.
func (g *Graph) EdgeBits(n int32) []int32 {
	return g.edgeBit[g.edgeStart[n]:g.edgeStart[n+1]]
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// IOIndexer maps pad sites to their IOSites() index.
type IOIndexer map[Site]int

// NewIOIndexer builds the site→index map for the architecture's pads.
func (a Arch) NewIOIndexer() IOIndexer {
	m := IOIndexer{}
	for i, s := range a.IOSites() {
		m[s] = i
	}
	return m
}

// setBases computes the node-index bases of each resource class. They are
// a pure function of the architecture, which is what lets a decoded graph
// recover them without serialising.
func (g *Graph) setBases() {
	a := g.Arch
	nCLB := a.NumCLBs() * (3 + a.K)
	nIO := a.NumIOSites() * 4
	nChanX := a.Width * (a.Height + 1) * a.W
	g.clbBase = 0
	g.ioBase = nCLB
	g.chanXBase = nCLB + nIO
	g.chanYBase = nCLB + nIO + nChanX
}

// numExpectedNodes returns the node count implied by the architecture.
func (a Arch) numExpectedNodes() int {
	return a.NumCLBs()*(3+a.K) + a.NumIOSites()*4 +
		a.Width*(a.Height+1)*a.W + (a.Width+1)*a.Height*a.W
}

// BuildGraph constructs the routing-resource graph of the architecture.
func BuildGraph(a Arch) *Graph {
	g := &Graph{Arch: a}

	// Node allocation.
	g.setBases()
	g.Nodes = make([]Node, a.numExpectedNodes())

	for y := 1; y <= a.Height; y++ {
		for x := 1; x <= a.Width; x++ {
			g.Nodes[g.CLBSource(x, y)] = Node{Type: NodeSource, X: int16(x), Y: int16(y)}
			g.Nodes[g.CLBOpin(x, y)] = Node{Type: NodeOPin, X: int16(x), Y: int16(y)}
			g.Nodes[g.CLBSink(x, y)] = Node{Type: NodeSink, X: int16(x), Y: int16(y)}
			for p := 0; p < a.K; p++ {
				g.Nodes[g.CLBIpin(x, y, p)] = Node{Type: NodeIPin, X: int16(x), Y: int16(y), Track: int16(p)}
			}
		}
	}
	ioSites := a.IOSites()
	for i, s := range ioSites {
		g.Nodes[g.PadSource(i)] = Node{Type: NodeSource, X: int16(s.X), Y: int16(s.Y), Track: int16(s.Sub)}
		g.Nodes[g.PadOpin(i)] = Node{Type: NodeOPin, X: int16(s.X), Y: int16(s.Y), Track: int16(s.Sub)}
		g.Nodes[g.PadSink(i)] = Node{Type: NodeSink, X: int16(s.X), Y: int16(s.Y), Track: int16(s.Sub)}
		g.Nodes[g.PadIpin(i)] = Node{Type: NodeIPin, X: int16(s.X), Y: int16(s.Y), Track: int16(s.Sub)}
	}
	for y := 0; y <= a.Height; y++ {
		for x := 1; x <= a.Width; x++ {
			for t := 0; t < a.W; t++ {
				g.Nodes[g.ChanX(x, y, t)] = Node{Type: NodeChanX, X: int16(x), Y: int16(y), Track: int16(t)}
			}
		}
	}
	for x := 0; x <= a.Width; x++ {
		for y := 1; y <= a.Height; y++ {
			for t := 0; t < a.W; t++ {
				g.Nodes[g.ChanY(x, y, t)] = Node{Type: NodeChanY, X: int16(x), Y: int16(y), Track: int16(t)}
			}
		}
	}

	// Edge accumulation with shared bits for bidirectional switches.
	type edge struct {
		from, to int32
		bit      int32
	}
	var edges []edge
	nextBit := int32(0)
	addHard := func(from, to int32) {
		edges = append(edges, edge{from, to, -1})
	}
	addSwitch := func(from, to int32) {
		edges = append(edges, edge{from, to, nextBit})
		nextBit++
	}
	addBidi := func(aN, bN int32) {
		bit := nextBit
		nextBit++
		edges = append(edges, edge{aN, bN, bit}, edge{bN, aN, bit})
	}

	// CLB internals: SOURCE→OPIN, IPIN→SINK (hardwired).
	for y := 1; y <= a.Height; y++ {
		for x := 1; x <= a.Width; x++ {
			addHard(g.CLBSource(x, y), g.CLBOpin(x, y))
			for p := 0; p < a.K; p++ {
				addHard(g.CLBIpin(x, y, p), g.CLBSink(x, y))
			}
		}
	}
	for i := range ioSites {
		addHard(g.PadSource(i), g.PadOpin(i))
		addHard(g.PadIpin(i), g.PadSink(i))
	}

	// Adjacent channels of a logic block, per side: 0=bottom chanx(x,y-1),
	// 1=right chany(x,y), 2=top chanx(x,y), 3=left chany(x-1,y).
	sideWire := func(x, y, side, t int) int32 {
		switch side {
		case 0:
			return g.ChanX(x, y-1, t)
		case 1:
			return g.ChanY(x, y, t)
		case 2:
			return g.ChanX(x, y, t)
		default:
			return g.ChanY(x-1, y, t)
		}
	}

	// Connection blocks: every CLB input pin p listens on side p%4 tapping
	// FcIn consecutive tracks (offset by pin for diversity); output pins
	// drive FcOut consecutive tracks on two sides (bottom and right).
	for y := 1; y <= a.Height; y++ {
		for x := 1; x <= a.Width; x++ {
			for p := 0; p < a.K; p++ {
				side := p % 4
				for i := 0; i < a.FcIn; i++ {
					t := (p + i) % a.W
					addSwitch(sideWire(x, y, side, t), g.CLBIpin(x, y, p))
				}
			}
			for _, side := range []int{0, 1} {
				for i := 0; i < a.FcOut; i++ {
					t := (side + i) % a.W
					addSwitch(g.CLBOpin(x, y), sideWire(x, y, side, t))
				}
			}
		}
	}

	// Pad connection blocks: a pad at the perimeter talks to its single
	// adjacent channel.
	padChan := func(s Site, t int) int32 {
		switch {
		case s.Y == 0: // bottom edge: channel chanx(x, 0)
			return g.ChanX(s.X, 0, t)
		case s.Y == a.Height+1: // top edge
			return g.ChanX(s.X, a.Height, t)
		case s.X == 0: // left edge
			return g.ChanY(0, s.Y, t)
		default: // right edge
			return g.ChanY(a.Width, s.Y, t)
		}
	}
	for i, s := range ioSites {
		for k := 0; k < a.FcOut; k++ {
			t := (s.Sub + k) % a.W
			addSwitch(g.PadOpin(i), padChan(s, t))
		}
		for k := 0; k < a.FcIn; k++ {
			t := (s.Sub + 1 + k) % a.W
			addSwitch(padChan(s, t), g.PadIpin(i))
		}
	}

	// Switch blocks at every corner (X,Y), X in 0..Width, Y in 0..Height.
	// Straight-through connections preserve the track (disjoint pattern);
	// turn connections between a horizontal and a vertical wire mix tracks
	// (t↔t and t↔t+1), so nets can migrate between tracks at corners —
	// without mixing, track-preserving switches partition the fabric into W
	// disconnected routing planes.
	for Y := 0; Y <= a.Height; Y++ {
		for X := 0; X <= a.Width; X++ {
			for t := 0; t < a.W; t++ {
				var horiz, vert []int32
				if X >= 1 {
					horiz = append(horiz, g.ChanX(X, Y, t)) // west
				}
				if X+1 <= a.Width {
					horiz = append(horiz, g.ChanX(X+1, Y, t)) // east
				}
				if Y >= 1 {
					vert = append(vert, g.ChanY(X, Y, t)) // south
				}
				if Y+1 <= a.Height {
					vert = append(vert, g.ChanY(X, Y+1, t)) // north
				}
				// Straight-through, same track.
				if len(horiz) == 2 {
					addBidi(horiz[0], horiz[1])
				}
				if len(vert) == 2 {
					addBidi(vert[0], vert[1])
				}
				// Turns: same track and +1 mixing.
				tUp := (t + 1) % a.W
				for _, h := range horiz {
					for _, v := range vert {
						addBidi(h, v)
						if tUp != t {
							vUp := g.ChanY(int(g.Nodes[v].X), int(g.Nodes[v].Y), tUp)
							addBidi(h, vUp)
						}
					}
				}
			}
		}
	}

	g.NumRoutingBits = int(nextBit)

	// Build CSR adjacency.
	g.edgeStart = make([]int32, len(g.Nodes)+1)
	for _, e := range edges {
		g.edgeStart[e.from+1]++
	}
	for i := 1; i < len(g.edgeStart); i++ {
		g.edgeStart[i] += g.edgeStart[i-1]
	}
	g.edgeTo = make([]int32, len(edges))
	g.edgeBit = make([]int32, len(edges))
	cursor := make([]int32, len(g.Nodes))
	for _, e := range edges {
		pos := g.edgeStart[e.from] + cursor[e.from]
		g.edgeTo[pos] = e.to
		g.edgeBit[pos] = e.bit
		cursor[e.from]++
	}
	g.fillCoordSoA()
	return g
}

// RawCSR exposes the flat adjacency arrays (edgeStart offsets, edge
// targets, per-edge configuration bits) for serialisation. The slices
// alias the graph's own storage — read-only, like everything else here.
func (g *Graph) RawCSR() (edgeStart, edgeTo, edgeBit []int32) {
	return g.edgeStart, g.edgeTo, g.edgeBit
}

// NewGraphFromRaw reassembles a Graph from its architecture, node list and
// CSR adjacency arrays — the decoding half of the graph's binary artifact
// form. The derived state (resource-class bases, coordinate SoA) is
// recomputed, and the CSR structure is validated so a corrupt encoding
// can never yield a graph that panics mid-route. The slices are adopted,
// not copied.
func NewGraphFromRaw(a Arch, nodes []Node, edgeStart, edgeTo, edgeBit []int32, numRoutingBits int) (*Graph, error) {
	if want := a.numExpectedNodes(); len(nodes) != want {
		return nil, fmt.Errorf("arch: %d nodes for a %dx%d W=%d graph, want %d", len(nodes), a.Width, a.Height, a.W, want)
	}
	if len(edgeStart) != len(nodes)+1 {
		return nil, fmt.Errorf("arch: edgeStart has %d offsets for %d nodes", len(edgeStart), len(nodes))
	}
	if len(edgeTo) != len(edgeBit) {
		return nil, fmt.Errorf("arch: %d edge targets but %d edge bits", len(edgeTo), len(edgeBit))
	}
	if edgeStart[0] != 0 || int(edgeStart[len(edgeStart)-1]) != len(edgeTo) {
		return nil, fmt.Errorf("arch: CSR offsets span [%d,%d] over %d edges", edgeStart[0], edgeStart[len(edgeStart)-1], len(edgeTo))
	}
	for i := 1; i < len(edgeStart); i++ {
		if edgeStart[i] < edgeStart[i-1] {
			return nil, fmt.Errorf("arch: CSR offsets not monotone at node %d", i-1)
		}
	}
	for _, to := range edgeTo {
		if to < 0 || int(to) >= len(nodes) {
			return nil, fmt.Errorf("arch: edge target %d out of range", to)
		}
	}
	g := &Graph{
		Arch: a, Nodes: nodes,
		edgeStart: edgeStart, edgeTo: edgeTo, edgeBit: edgeBit,
		NumRoutingBits: numRoutingBits,
	}
	g.setBases()
	g.fillCoordSoA()
	return g, nil
}

// TotalConfigBits returns the full configuration size of the region: all
// routing bits plus all LUT bits (the quantity MDR rewrites on every mode
// switch).
func (g *Graph) TotalConfigBits() int {
	return g.NumRoutingBits + g.Arch.TotalLUTBits()
}

// Checksum returns a word-folded FNV-1a-style hash over the graph's
// nodes, adjacency and configuration-bit assignment (one xor-multiply per
// element, not per byte — this runs on every graph-artifact decode).
// BuildGraph is deterministic, so two graphs of the same architecture have
// equal checksums; comparing a shared graph's checksum against a freshly
// built one is a cheap immutability check when one graph serves many
// concurrent routers.
func (g *Graph) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	for _, n := range g.Nodes {
		mix(uint64(n.Type)<<48 | uint64(uint16(n.X))<<32 | uint64(uint16(n.Y))<<16 | uint64(uint16(n.Track)))
	}
	for _, v := range g.edgeStart {
		mix(uint64(uint32(v)))
	}
	for i := range g.edgeTo {
		mix(uint64(uint32(g.edgeTo[i]))<<32 | uint64(uint32(g.edgeBit[i])))
	}
	mix(uint64(g.NumRoutingBits))
	return h
}
