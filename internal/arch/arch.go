// Package arch models the target FPGA: an island-style array of logic
// blocks (one K-LUT plus one flip-flop each, the 4lut_sanitized.arch block
// of VPR), a perimeter ring of I/O pads, and a routing fabric of
// unit-length wire segments joined by disjoint switch blocks with
// connection blocks of configurable flexibility. It also builds the
// routing-resource graph consumed by the router and defines the
// configuration-bit model used for reconfiguration-time accounting.
package arch

import "fmt"

// Arch describes an island-style FPGA.
type Arch struct {
	Width  int // logic columns (CLB x in 1..Width)
	Height int // logic rows   (CLB y in 1..Height)
	K      int // LUT inputs per logic block
	W      int // routing tracks per channel
	IOCap  int // pads per perimeter position
	// FcIn is the number of tracks of the adjacent channel each logic-block
	// input pin can connect to; FcOut likewise for output pins.
	FcIn  int
	FcOut int
}

// New returns an architecture with the parameters used throughout the
// paper's experiments: 4-LUT logic blocks, unit-length segments, I/O
// capacity 2, and connection-block flexibility scaled from the channel
// width.
func New(width, height, channelWidth int) Arch {
	// Connection-block flexibility: half the channel, but at least K
	// consecutive tracks so that every (output, input-pin) pair shares a
	// track — with track-preserving straight switches, narrower windows
	// can partition the channel into mutually unreachable domains.
	fc := channelWidth / 2
	if fc < 4 {
		fc = 4
	}
	if fc > channelWidth {
		fc = channelWidth
	}
	return Arch{
		Width: width, Height: height,
		K: 4, W: channelWidth, IOCap: 2,
		FcIn: fc, FcOut: fc,
	}
}

// NumCLBs returns the number of logic-block sites.
func (a Arch) NumCLBs() int { return a.Width * a.Height }

// NumIOSites returns the number of pad sites (perimeter positions × IOCap).
func (a Arch) NumIOSites() int { return 2 * (a.Width + a.Height) * a.IOCap }

// LUTBitsPerCLB returns the configuration bits of one logic block: the
// 2^K truth-table bits plus the bit selecting the registered output.
func (a Arch) LUTBitsPerCLB() int { return 1<<uint(a.K) + 1 }

// TotalLUTBits returns the LUT configuration bits of the whole region.
func (a Arch) TotalLUTBits() int { return a.NumCLBs() * a.LUTBitsPerCLB() }

// Site is a placement location: a logic block (IsIO false, Sub 0) or one
// pad of a perimeter position (IsIO true, Sub < IOCap).
type Site struct {
	X, Y, Sub int
	IsIO      bool
}

func (s Site) String() string {
	if s.IsIO {
		return fmt.Sprintf("io(%d,%d).%d", s.X, s.Y, s.Sub)
	}
	return fmt.Sprintf("clb(%d,%d)", s.X, s.Y)
}

// CLBSites lists all logic-block sites in row-major order.
func (a Arch) CLBSites() []Site {
	sites := make([]Site, 0, a.NumCLBs())
	for y := 1; y <= a.Height; y++ {
		for x := 1; x <= a.Width; x++ {
			sites = append(sites, Site{X: x, Y: y})
		}
	}
	return sites
}

// IOSites lists all pad sites clockwise from the bottom edge.
func (a Arch) IOSites() []Site {
	var sites []Site
	add := func(x, y int) {
		for s := 0; s < a.IOCap; s++ {
			sites = append(sites, Site{X: x, Y: y, Sub: s, IsIO: true})
		}
	}
	for x := 1; x <= a.Width; x++ {
		add(x, 0) // bottom
	}
	for y := 1; y <= a.Height; y++ {
		add(a.Width+1, y) // right
	}
	for x := a.Width; x >= 1; x-- {
		add(x, a.Height+1) // top
	}
	for y := a.Height; y >= 1; y-- {
		add(0, y) // left
	}
	return sites
}

// MinGridForBlocks returns the side of the smallest square logic array that
// fits nblocks logic blocks and the I/O count, with the square area relaxed
// by the given factor (the paper chooses the area 20% bigger than the
// minimum, i.e. relax=1.2, for relaxed routing).
func MinGridForBlocks(nblocks, nios int, relax float64) int {
	side := 1
	for side*side < nblocks {
		side++
	}
	// I/O ring must also fit: 2*(w+h)*IOCap ≥ nios with IOCap=2.
	for 8*side < nios {
		side++
	}
	area := float64(side*side) * relax
	relaxed := side
	for float64(relaxed*relaxed) < area {
		relaxed++
	}
	return relaxed
}
