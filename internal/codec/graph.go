package codec

import (
	"fmt"

	"repro/internal/arch"
)

// KindGraph is the artifact kind of a serialised routing-resource graph.
// GraphVersion covers the byte layout and BuildGraph's semantics: a change
// to the graph construction (node layout, switch pattern, bit assignment)
// must bump it, so stale prebuilt graphs become unreachable instead of
// silently routing against an outdated fabric.
const (
	KindGraph    = "graph"
	GraphVersion = 1
)

// EncodeGraph renders the canonical encoding of a routing-resource graph:
// the architecture parameters, the node list, the CSR adjacency arrays
// verbatim, and the graph's checksum as a trailer. The derived state
// (resource-class bases, coordinate SoA) is a pure function of the rest
// and is recomputed on decode, never serialised.
func EncodeGraph(g *arch.Graph) []byte {
	w := NewWriter()
	w.Header(KindGraph, GraphVersion)
	a := g.Arch
	w.Int(a.Width)
	w.Int(a.Height)
	w.Int(a.K)
	w.Int(a.W)
	w.Int(a.IOCap)
	w.Int(a.FcIn)
	w.Int(a.FcOut)
	// Nodes pack into two fixed-width words each ((type, track) and
	// (x, y)); the CSR arrays go in verbatim. Fixed-width costs bytes over
	// varints but decodes at memory speed — the whole point of the
	// artifact is that loading beats rebuilding.
	packed := make([]int32, 2*len(g.Nodes))
	for i, n := range g.Nodes {
		packed[2*i] = int32(uint32(n.Type)<<16 | uint32(uint16(n.Track)))
		packed[2*i+1] = int32(uint32(uint16(n.X))<<16 | uint32(uint16(n.Y)))
	}
	w.Int32s(packed)
	edgeStart, edgeTo, edgeBit := g.RawCSR()
	w.Int32s(edgeStart)
	w.Int32s(edgeTo)
	w.Int32s(edgeBit)
	w.Int(g.NumRoutingBits)
	w.Uvarint(g.Checksum())
	return w.Bytes()
}

// DecodeGraph is the inverse of EncodeGraph. The CSR structure is
// validated by arch.NewGraphFromRaw, and the rebuilt graph's checksum is
// compared against the encoded trailer — a payload that decodes cleanly
// but describes a different graph (bit flip the varints survive, a
// truncation landing on a valid boundary) is rejected rather than routed
// against.
func DecodeGraph(data []byte) (*arch.Graph, error) {
	r := NewReader(data)
	r.Header(KindGraph, GraphVersion)
	a := arch.Arch{
		Width:  r.Int(),
		Height: r.Int(),
		K:      r.Int(),
		W:      r.Int(),
		IOCap:  r.Int(),
		FcIn:   r.Int(),
		FcOut:  r.Int(),
	}
	packed := r.Int32s()
	if len(packed)%2 != 0 {
		return nil, fmt.Errorf("codec: packed node array has odd length %d", len(packed))
	}
	nodes := make([]arch.Node, len(packed)/2)
	for i := range nodes {
		tt, xy := uint32(packed[2*i]), uint32(packed[2*i+1])
		nodes[i] = arch.Node{
			Type:  arch.NodeType(tt >> 16),
			Track: int16(uint16(tt)),
			X:     int16(uint16(xy >> 16)),
			Y:     int16(uint16(xy)),
		}
	}
	edgeStart := r.Int32s()
	edgeTo := r.Int32s()
	edgeBit := r.Int32s()
	numRoutingBits := r.Int()
	wantSum := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	g, err := arch.NewGraphFromRaw(a, nodes, edgeStart, edgeTo, edgeBit, numRoutingBits)
	if err != nil {
		return nil, fmt.Errorf("codec: decoded graph invalid: %w", err)
	}
	if got := g.Checksum(); got != wantSum {
		return nil, fmt.Errorf("codec: decoded graph checksum %#x, want %#x", got, wantSum)
	}
	return g, nil
}

// GraphKey returns the store key for the prebuilt graph of one (side,
// channel-width) region. The key hashes the architecture identity plus the
// format version — never the graph bytes — so a warm process can compute
// it without building the graph first.
func GraphKey(side, w int) Hash {
	k := NewWriter()
	k.Header(KindGraph, GraphVersion)
	k.Int(side)
	k.Int(w)
	return k.Sum()
}
