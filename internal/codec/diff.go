package codec

import (
	"repro/internal/lutnet"
	"repro/internal/netlist"
)

// Structural diffing gives cells *stable identities across edits*: a cell's
// signature is derived from its function and its neighborhood (fanin cone
// plus fanout context), never from its index or insertion order, so an
// edit that inserts, deletes or reorders cells still matches everything
// outside the changed region. The delta-compile path uses the match to
// transfer baseline placements and routing onto the edited design.
//
// Signatures are computed by Weisfeiler-Lehman-style refinement: every
// node starts from a local signature (its function bits and kind; primary
// inputs hash their name, the only stable anchor an I/O has), then a fixed
// number of rounds rehash each node with its ordered fanin signatures and
// its sorted fanout signatures. sigRounds bounds the cone depth, which
// keeps the computation linear and terminates even through the sequential
// cycles that flip-flops make legal.
//
// A signature collision can only mis-seed the optimizer — every consumer
// re-validates placements and re-negotiates routing — so diff quality
// affects delta QoR and speed, never correctness.

// sigRounds is the number of refinement rounds; each round extends the
// neighborhood a signature sees by one level in both directions.
const sigRounds = 4

// Diff maps cells of a new design version onto a baseline version.
// Unchanged/Changed/Added partition the new cell indices exactly; Removed
// holds the baseline cells no new cell mapped to.
type Diff struct {
	// CellMap[n] is the baseline cell matched to new cell n, or -1.
	CellMap []int
	// Unchanged are new cells matched by structural signature.
	Unchanged []int
	// Changed are new cells matched to a leftover baseline cell by name
	// (same identity, edited function or fanin).
	Changed []int
	// Added are new cells with no baseline counterpart.
	Added []int
	// Removed are baseline cell indices no new cell matched.
	Removed []int
}

// CircuitDiff is a Diff over the blocks of two lutnet.Circuit versions,
// plus name-based primary I/O maps (new index -> old index, -1 if absent).
type CircuitDiff struct {
	Diff
	PIMap []int
	POMap []int
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// sigGraph is the index-free view both designs reduce to: an initial local
// signature per node and the ordered fanin lists.
type sigGraph struct {
	init  []uint64
	fanin [][]int32
}

// signatures runs the refinement and returns the final per-node signature.
func (g *sigGraph) signatures() []uint64 {
	n := len(g.init)
	fanout := make([][]int32, n)
	for to, ins := range g.fanin {
		for _, from := range ins {
			fanout[from] = append(fanout[from], int32(to))
		}
	}
	cur := append([]uint64(nil), g.init...)
	next := make([]uint64, n)
	var outSigs []uint64
	for round := 0; round < sigRounds; round++ {
		for i := 0; i < n; i++ {
			h := fnvMix(fnvOffset, cur[i])
			for _, in := range g.fanin[i] {
				h = fnvMix(h, cur[in])
			}
			// Fanout order is not canonical, so fold the consumer
			// signatures in sorted order.
			outSigs = outSigs[:0]
			for _, out := range fanout[i] {
				outSigs = append(outSigs, cur[out])
			}
			for a := 1; a < len(outSigs); a++ {
				for b := a; b > 0 && outSigs[b] < outSigs[b-1]; b-- {
					outSigs[b], outSigs[b-1] = outSigs[b-1], outSigs[b]
				}
			}
			for _, s := range outSigs {
				h = fnvMix(h, s)
			}
			next[i] = h
		}
		cur, next = next, cur
	}
	return cur
}

// matchCells pairs new cells with old cells: first by signature (smallest
// unused old index per signature, in new index order), then leftover new
// cells to leftover old cells by name. Both passes are deterministic and
// index-stable.
func matchCells(oldSigs, newSigs []uint64, oldName, newName func(int) string) Diff {
	d := Diff{CellMap: make([]int, len(newSigs))}
	bySig := make(map[uint64][]int, len(oldSigs))
	for i, s := range oldSigs {
		bySig[s] = append(bySig[s], i)
	}
	oldUsed := make([]bool, len(oldSigs))
	for i, s := range newSigs {
		d.CellMap[i] = -1
		if cands := bySig[s]; len(cands) > 0 {
			d.CellMap[i] = cands[0]
			oldUsed[cands[0]] = true
			bySig[s] = cands[1:]
			d.Unchanged = append(d.Unchanged, i)
		}
	}
	byName := make(map[string][]int)
	for i := range oldSigs {
		if !oldUsed[i] {
			byName[oldName(i)] = append(byName[oldName(i)], i)
		}
	}
	for i := range newSigs {
		if d.CellMap[i] >= 0 {
			continue
		}
		if cands := byName[newName(i)]; len(cands) > 0 {
			d.CellMap[i] = cands[0]
			oldUsed[cands[0]] = true
			byName[newName(i)] = cands[1:]
			d.Changed = append(d.Changed, i)
		} else {
			d.Added = append(d.Added, i)
		}
	}
	for i := range oldSigs {
		if !oldUsed[i] {
			d.Removed = append(d.Removed, i)
		}
	}
	return d
}

// circuitSigs builds the signature graph for a mapped circuit: PIs first
// (anchored by name), then blocks (anchored by LUT contents), and returns
// the final block signatures.
func circuitSigs(c *lutnet.Circuit) []uint64 {
	p := len(c.PINames)
	g := &sigGraph{
		init:  make([]uint64, p+len(c.Blocks)),
		fanin: make([][]int32, p+len(c.Blocks)),
	}
	for i, nm := range c.PINames {
		g.init[i] = fnvString(fnvMix(fnvOffset, 1), nm)
	}
	node := func(s lutnet.Source) int32 {
		if s.Kind == lutnet.SrcPI {
			return int32(s.Idx)
		}
		return int32(p + s.Idx)
	}
	for bi := range c.Blocks {
		b := &c.Blocks[bi]
		h := fnvMix(fnvOffset, 2)
		h = fnvMix(h, uint64(b.TT.NumVars))
		h = fnvMix(h, b.TT.Bits)
		if b.HasFF {
			h = fnvMix(h, 3)
			if b.Init {
				h = fnvMix(h, 4)
			}
		}
		g.init[p+bi] = h
		ins := make([]int32, len(b.Inputs))
		for pin, s := range b.Inputs {
			ins[pin] = node(s)
		}
		g.fanin[p+bi] = ins
	}
	return g.signatures()[p:]
}

// DiffCircuits matches the blocks of an edited circuit against a baseline
// version. The PI and PO maps are name-based.
func DiffCircuits(old, new *lutnet.Circuit) *CircuitDiff {
	d := &CircuitDiff{
		Diff: matchCells(circuitSigs(old), circuitSigs(new),
			func(i int) string { return old.Blocks[i].Name },
			func(i int) string { return new.Blocks[i].Name }),
		PIMap: nameMap(old.PINames, new.PINames),
	}
	oldPO := make([]string, len(old.POs))
	for i, po := range old.POs {
		oldPO[i] = po.Name
	}
	newPO := make([]string, len(new.POs))
	for i, po := range new.POs {
		newPO[i] = po.Name
	}
	d.POMap = nameMap(oldPO, newPO)
	return d
}

// nameMap maps each new name to the old index carrying the same name
// (first occurrence wins), or -1.
func nameMap(old, new []string) []int {
	idx := make(map[string]int, len(old))
	for i := len(old) - 1; i >= 0; i-- {
		idx[old[i]] = i
	}
	m := make([]int, len(new))
	for i, nm := range new {
		if j, ok := idx[nm]; ok {
			m[i] = j
		} else {
			m[i] = -1
		}
	}
	return m
}

// netlistSigs builds signatures over every node of a pre-mapping netlist.
func netlistSigs(n *netlist.Netlist) []uint64 {
	g := &sigGraph{
		init:  make([]uint64, len(n.Nodes)),
		fanin: make([][]int32, len(n.Nodes)),
	}
	for i, nd := range n.Nodes {
		switch nd.Kind {
		case netlist.KindInput:
			g.init[i] = fnvString(fnvMix(fnvOffset, 1), nd.Name)
		case netlist.KindGate:
			h := fnvMix(fnvOffset, 2)
			h = fnvMix(h, uint64(nd.Func.NumVars))
			g.init[i] = fnvMix(h, nd.Func.Bits)
		case netlist.KindLatch:
			h := fnvMix(fnvOffset, 3)
			if nd.Init {
				h = fnvMix(h, 4)
			}
			g.init[i] = h
		}
		ins := make([]int32, len(nd.Fanins))
		for pin, f := range nd.Fanins {
			ins[pin] = int32(f)
		}
		g.fanin[i] = ins
	}
	return g.signatures()
}

// DiffNetlists matches the nodes of an edited netlist against a baseline
// version (all node kinds participate; inputs anchor by name).
func DiffNetlists(old, new *netlist.Netlist) *Diff {
	d := matchCells(netlistSigs(old), netlistSigs(new),
		func(i int) string { return old.Nodes[i].Name },
		func(i int) string { return new.Nodes[i].Name })
	return &d
}
