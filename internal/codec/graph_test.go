package codec

import (
	"bytes"
	"testing"

	"repro/internal/arch"
)

// TestGraphRoundTrip checks the graph artifact both ways: decode(encode(g))
// must reproduce the graph exactly (checksum equality covers nodes,
// adjacency and bit assignment), the derived state must be recomputed, and
// the encoding must be canonical (re-encoding the decoded graph yields the
// same bytes).
func TestGraphRoundTrip(t *testing.T) {
	g := arch.BuildGraph(arch.New(5, 5, 8))
	data := EncodeGraph(g)
	got, err := DecodeGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arch != g.Arch {
		t.Fatalf("decoded arch %+v, want %+v", got.Arch, g.Arch)
	}
	if got.NumNodes() != g.NumNodes() {
		t.Fatalf("decoded %d nodes, want %d", got.NumNodes(), g.NumNodes())
	}
	if got.NumRoutingBits != g.NumRoutingBits {
		t.Fatalf("decoded %d routing bits, want %d", got.NumRoutingBits, g.NumRoutingBits)
	}
	if got.Checksum() != g.Checksum() {
		t.Fatalf("decoded checksum %#x, want %#x", got.Checksum(), g.Checksum())
	}
	for i := range got.Nodes {
		if got.Xs[i] != g.Nodes[i].X || got.Ys[i] != g.Nodes[i].Y {
			t.Fatalf("node %d coordinate SoA (%d,%d), want (%d,%d)",
				i, got.Xs[i], got.Ys[i], g.Nodes[i].X, g.Nodes[i].Y)
		}
	}
	if !bytes.Equal(EncodeGraph(got), data) {
		t.Fatal("re-encoding the decoded graph produced different bytes")
	}
}

// TestGraphDecodeRejectsCorruption flips bytes across the encoding and
// demands every corruption is rejected — by the header check, the CSR
// validation, or the checksum trailer — never returned as a graph.
func TestGraphDecodeRejectsCorruption(t *testing.T) {
	g := arch.BuildGraph(arch.New(4, 4, 6))
	data := EncodeGraph(g)
	want := g.Checksum()
	for off := 0; off < len(data); off += 89 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		dec, err := DecodeGraph(mut)
		if err == nil && dec.Checksum() == want {
			// A flip that decodes back to the identical graph (e.g. inside
			// a varint's redundant encoding space) is not a corruption.
			continue
		}
		if err == nil {
			t.Fatalf("flip at offset %d decoded to a different graph without error", off)
		}
	}
	if _, err := DecodeGraph(data[:len(data)-1]); err == nil {
		t.Fatal("truncated encoding decoded without error")
	}
	if _, err := DecodeGraph([]byte("not a graph artifact")); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

// TestGraphKeyDistinguishesGeometry checks the store key separates regions
// by both parameters without needing the graph built.
func TestGraphKeyDistinguishesGeometry(t *testing.T) {
	a := GraphKey(5, 6)
	if a != GraphKey(5, 6) {
		t.Fatal("GraphKey is not deterministic")
	}
	if a == GraphKey(6, 5) || a == GraphKey(5, 8) {
		t.Fatal("GraphKey collides across geometries")
	}
}
