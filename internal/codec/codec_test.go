package codec

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/lutnet"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/synth"
	"repro/internal/techmap"
)

// testNetlist builds a small sequential netlist with gates, latches
// (including a feedback loop) and multi-output structure.
func testNetlist(t testing.TB, seed int64, nGates int) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("m%d", seed))
	sigs := b.InputVector("in", 4)
	for i := 0; i < nGates; i++ {
		x := sigs[rng.Intn(len(sigs))]
		y := sigs[rng.Intn(len(sigs))]
		switch rng.Intn(5) {
		case 0:
			sigs = append(sigs, b.And(x, y))
		case 1:
			sigs = append(sigs, b.Or(x, y))
		case 2:
			sigs = append(sigs, b.Xor(x, y))
		case 3:
			sigs = append(sigs, b.Not(x))
		default:
			sigs = append(sigs, b.Latch(x, rng.Intn(2) == 0))
		}
	}
	for i := 0; i < 3; i++ {
		b.Output(fmt.Sprintf("o[%d]", i), sigs[len(sigs)-1-i])
	}
	return b.N
}

func testCircuit(t testing.TB, seed int64) *lutnet.Circuit {
	t.Helper()
	c, err := techmap.Map(synth.Optimize(testNetlist(t, seed, 40)), 4)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNetlistRoundTrip(t *testing.T) {
	n := testNetlist(t, 7, 50)
	data := EncodeNetlist(n)
	got, err := DecodeNetlist(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeNetlist(got), data) {
		t.Fatal("re-encoding the decoded netlist changed the bytes")
	}
	if got.Name != n.Name || len(got.Nodes) != len(n.Nodes) || len(got.Outputs) != len(n.Outputs) {
		t.Fatalf("decoded netlist shape differs: %+v vs %+v", got.Stats(), n.Stats())
	}
	for i, nd := range n.Nodes {
		g := got.Nodes[i]
		if g.Kind != nd.Kind || g.Name != nd.Name || g.Func != nd.Func || g.Init != nd.Init ||
			!reflect.DeepEqual(g.Fanins, nd.Fanins) {
			t.Fatalf("node %d differs: %+v vs %+v", i, g, nd)
		}
		if id, ok := got.NodeByName(nd.Name); !ok || id != i {
			t.Fatalf("name index not rebuilt for %q", nd.Name)
		}
	}
}

func TestCircuitRoundTrip(t *testing.T) {
	c := testCircuit(t, 3)
	data := EncodeCircuit(c)
	got, err := DecodeCircuit(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatal("decoded circuit differs from the original")
	}
	if HashCircuit(got) != HashCircuit(c) {
		t.Fatal("round trip changed the content hash")
	}
}

// TestHashIdentity: structurally equal values hash equal regardless of
// pointer identity; any structural difference changes the hash.
func TestHashIdentity(t *testing.T) {
	a, b := testCircuit(t, 5), testCircuit(t, 5)
	if a == b {
		t.Fatal("test wants distinct pointers")
	}
	if HashCircuit(a) != HashCircuit(b) {
		t.Fatal("equal circuits behind distinct pointers hash differently")
	}
	mut := testCircuit(t, 5)
	mut.Blocks[0].TT.Bits ^= 1
	if HashCircuit(mut) == HashCircuit(a) {
		t.Fatal("flipping a truth-table bit did not change the hash")
	}
	other := testCircuit(t, 6)
	if HashCircuit(other) == HashCircuit(a) {
		t.Fatal("different circuits share a hash")
	}
}

func TestPlacementRoundTrip(t *testing.T) {
	c := testCircuit(t, 9)
	side := arch.MinGridForBlocks(c.NumBlocks(), c.NumPIs()+len(c.POs), 1.2)
	a := arch.New(side, side, 6)
	prob, cc := place.FromCircuit(c)
	pl, err := place.Place(prob, a, place.Options{Seed: 1, Effort: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	got, gotCC, err := DecodePlacement(EncodePlacement(pl, cc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pl) {
		t.Fatal("decoded placement differs")
	}
	if gotCC.NumBlk != cc.NumBlk || gotCC.NumPI != cc.NumPI || gotCC.NumPO != cc.NumPO {
		t.Fatalf("decoded cell counts differ: %+v vs %+v", gotCC, cc)
	}
}

// TestDecodeRejectsCorruption: truncations and bit flips anywhere in an
// encoding must produce an error, never a silently wrong value or a
// panic. (Checksums catch storage corruption before decoding; this guards
// the decoder itself against logical corruption.)
func TestDecodeRejectsCorruption(t *testing.T) {
	c := testCircuit(t, 11)
	data := EncodeCircuit(c)
	if _, err := DecodeCircuit(data[:len(data)/2]); err == nil {
		t.Fatal("truncated circuit decoded without error")
	}
	if _, err := DecodeCircuit(nil); err == nil {
		t.Fatal("empty input decoded without error")
	}
	// Wrong kind tag: a netlist encoding is not a circuit.
	if _, err := DecodeCircuit(EncodeNetlist(testNetlist(t, 1, 10))); err == nil {
		t.Fatal("netlist bytes decoded as a circuit")
	}
	// A huge corrupt length prefix must error out, not allocate.
	w := NewWriter()
	w.Header(KindCircuit, CircuitVersion)
	w.String("x")
	w.Int(4)
	w.Uvarint(1 << 60) // PI count
	if _, err := DecodeCircuit(w.Bytes()); err == nil {
		t.Fatal("absurd length prefix decoded without error")
	}
}

// TestVersionMismatch: an artifact from another format version must be
// rejected (the store treats it as a miss and recomputes).
func TestVersionMismatch(t *testing.T) {
	w := NewWriter()
	w.Header(KindPlacement, PlacementVersion+1)
	w.Int(0)
	w.Int(0)
	w.Int(0)
	w.Float64(0)
	w.Uvarint(0)
	if _, _, err := DecodePlacement(w.Bytes()); err == nil {
		t.Fatal("future-version placement decoded without error")
	}
}

// TestWriterDeterminism: encoding the same value twice yields identical
// bytes — the property the whole content-addressing scheme rests on.
func TestWriterDeterminism(t *testing.T) {
	n := testNetlist(t, 13, 60)
	if !bytes.Equal(EncodeNetlist(n), EncodeNetlist(n)) {
		t.Fatal("netlist encoding is not deterministic")
	}
	c := testCircuit(t, 13)
	if !bytes.Equal(EncodeCircuit(c), EncodeCircuit(c)) {
		t.Fatal("circuit encoding is not deterministic")
	}
}

func TestPrimitivesRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Uvarint(0)
	w.Uvarint(1 << 62)
	w.Varint(-5)
	w.Int(42)
	w.Bool(true)
	w.Bool(false)
	w.Float64(3.5)
	w.Float64(-0.0)
	w.String("héllo")
	w.Ints([]int{-1, 0, 7})
	r := NewReader(w.Bytes())
	if r.Uvarint() != 0 || r.Uvarint() != 1<<62 || r.Varint() != -5 || r.Int() != 42 {
		t.Fatal("integer round trip failed")
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round trip failed")
	}
	if r.Float64() != 3.5 {
		t.Fatal("float round trip failed")
	}
	if f := r.Float64(); f != 0 {
		t.Fatalf("negative zero round trip failed: %v", f)
	}
	if r.String() != "héllo" {
		t.Fatal("string round trip failed")
	}
	if !reflect.DeepEqual(r.Ints(), []int{-1, 0, 7}) {
		t.Fatal("ints round trip failed")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("reader finished with err=%v remaining=%d", r.Err(), r.Remaining())
	}
}
