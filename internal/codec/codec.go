// Package codec provides the deterministic, versioned binary encoding
// behind the persistent artifact store: every cacheable product of the
// flow (netlists, mapped circuits, placements, group results) encodes to
// a canonical byte string, and the SHA-256 of a canonical encoding is the
// product's *content hash* — the identity used as a cache key within and
// across processes. Two structurally equal values always produce the same
// bytes and therefore the same hash, so a cache keyed by content hash
// deduplicates work wherever the same inputs recur, regardless of which
// process (or machine) computed them first.
//
// Encodings are self-describing only to the extent the cache needs: each
// artifact opens with its kind tag and format version, and decoding
// rejects a mismatch so a store written by an older format is treated as
// a miss, never misread. The format version of an artifact kind MUST be
// bumped whenever either the encoding or the semantics of the producing
// algorithm changes — the version is part of the hash, so a bump silently
// invalidates every stale on-disk entry.
//
// The primitives (Writer, Reader) are exported so higher layers whose
// types cannot be imported here without a cycle (experiments.GroupResult
// sits above flow, which imports codec) build their encoders from the
// same vocabulary.
package codec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// Hash is the canonical content hash of an encoded artifact (SHA-256).
type Hash [32]byte

// Hex returns the lowercase hexadecimal form of the hash (used as the
// store's on-disk entry name).
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

func (h Hash) String() string { return h.Hex() }

// Sum returns the content hash of an encoded artifact.
func Sum(data []byte) Hash { return sha256.Sum256(data) }

// ParseHash decodes the hexadecimal form produced by Hash.Hex — the
// inverse used wherever a key crosses a text boundary (CLI flags, JSON
// request fields) and must become a store key again.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("codec: bad hash %q: %w", s, err)
	}
	if len(b) != len(h) {
		return h, fmt.Errorf("codec: hash %q has %d bytes, want %d", s, len(b), len(h))
	}
	copy(h[:], b)
	return h, nil
}

// Writer accumulates a deterministic binary encoding. All integers are
// varint-encoded, floats are their IEEE-754 bit patterns in fixed eight
// bytes, and strings and byte slices are length-prefixed — there is no
// map iteration, padding or pointer value anywhere in an encoding, which
// is what makes it canonical.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Sum returns the content hash of the accumulated encoding.
func (w *Writer) Sum() Hash { return Sum(w.buf) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(x uint64) { w.buf = binary.AppendUvarint(w.buf, x) }

// Varint appends a signed varint.
func (w *Writer) Varint(x int64) { w.buf = binary.AppendVarint(w.buf, x) }

// Int appends a signed integer.
func (w *Writer) Int(x int) { w.Varint(int64(x)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Float64 appends the IEEE-754 bit pattern in eight big-endian bytes.
func (w *Writer) Float64(f float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Ints appends a length-prefixed signed-integer slice.
func (w *Writer) Ints(xs []int) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.Int(x)
	}
}

// Int32s appends a length-prefixed []int32 as fixed four-byte big-endian
// words. Varints would be smaller, but the bulk arrays this exists for
// (the routing-resource graph's CSR adjacency) are decoded on every warm
// process start — fixed-width words decode at memory speed, which is what
// makes loading a graph cheaper than rebuilding it.
func (w *Writer) Int32s(xs []int32) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(x))
	}
}

// Reader decodes a Writer encoding. Errors are sticky: after the first
// malformed read every subsequent read returns a zero value, and Err
// reports the failure — callers validate once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over an encoding.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("codec: "+format, args...)
	}
}

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return x
}

// Varint decodes a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return x
}

// Int decodes a signed integer.
func (r *Reader) Int() int { return int(r.Varint()) }

// Bool decodes a boolean.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail("truncated bool at offset %d", r.off)
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.fail("invalid bool byte %d at offset %d", b, r.off-1)
		return false
	}
	return b == 1
}

// Float64 decodes an eight-byte IEEE-754 bit pattern.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated float64 at offset %d", r.off)
		return 0
	}
	bits := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(bits)
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Ints decodes a length-prefixed signed-integer slice.
func (r *Reader) Ints() []int {
	n := r.Len(1)
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = r.Int()
	}
	return xs
}

// Int32s decodes a length-prefixed fixed-width []int32.
func (r *Reader) Int32s() []int32 {
	n := r.Len(4)
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(binary.BigEndian.Uint32(r.buf[r.off:]))
		r.off += 4
	}
	return xs
}

// Len decodes a length prefix and bounds-checks it against the remaining
// bytes, assuming each pending element occupies at least minElemBytes —
// the guard that keeps a corrupt length field from provoking a huge
// allocation before the truncation is even noticed.
func (r *Reader) Len(minElemBytes int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(r.Remaining()/minElemBytes) {
		r.fail("length %d exceeds remaining %d bytes", n, r.Remaining())
		return 0
	}
	return int(n)
}
