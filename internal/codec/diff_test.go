package codec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/lutnet"
	"repro/internal/netlist"
)

// randCircuit builds a seeded random acyclic LUT circuit with distinct
// block names and (with high probability) distinct functions.
func randCircuit(seed int64, pis, blocks int) *lutnet.Circuit {
	rnd := rand.New(rand.NewSource(seed))
	c := &lutnet.Circuit{Name: "rand", K: 4}
	for i := 0; i < pis; i++ {
		c.PINames = append(c.PINames, fmt.Sprintf("in%d", i))
	}
	for b := 0; b < blocks; b++ {
		nin := 2 + rnd.Intn(3)
		var ins []lutnet.Source
		for p := 0; p < nin; p++ {
			pick := rnd.Intn(pis + b)
			if pick < pis {
				ins = append(ins, lutnet.Source{Kind: lutnet.SrcPI, Idx: pick})
			} else {
				ins = append(ins, lutnet.Source{Kind: lutnet.SrcBlock, Idx: pick - pis})
			}
		}
		c.Blocks = append(c.Blocks, lutnet.Block{
			Name:   fmt.Sprintf("g%d", b),
			TT:     logic.NewTT(nin, rnd.Uint64()),
			Inputs: ins,
			HasFF:  rnd.Intn(5) == 0,
		})
	}
	for o := 0; o < 1+blocks/4; o++ {
		c.POs = append(c.POs, lutnet.PO{
			Name: fmt.Sprintf("out%d", o),
			Src:  lutnet.Source{Kind: lutnet.SrcBlock, Idx: rnd.Intn(blocks)},
		})
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// checkPartition asserts Unchanged/Changed/Added cover the new cells
// exactly once, CellMap is injective into the old cells, and Removed is
// exactly the unmatched remainder of the old cells.
func checkPartition(t *testing.T, d *Diff, oldCells, newCells int) {
	t.Helper()
	seen := make([]int, newCells)
	for _, set := range [][]int{d.Unchanged, d.Changed, d.Added} {
		for _, i := range set {
			seen[i]++
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("new cell %d appears %d times across Unchanged/Changed/Added", i, n)
		}
	}
	oldSeen := make([]int, oldCells)
	matched := 0
	for i, o := range d.CellMap {
		if o < 0 {
			continue
		}
		oldSeen[o]++
		matched++
		if oldSeen[o] > 1 {
			t.Fatalf("old cell %d matched twice (second by new cell %d)", o, i)
		}
	}
	for _, o := range d.Removed {
		oldSeen[o]++
	}
	for o, n := range oldSeen {
		if n != 1 {
			t.Fatalf("old cell %d covered %d times across matches+Removed", o, n)
		}
	}
	if matched+len(d.Removed) != oldCells {
		t.Fatalf("matched %d + removed %d != old cells %d", matched, len(d.Removed), oldCells)
	}
	if len(d.Added)+matched != newCells {
		t.Fatalf("added %d + matched %d != new cells %d", len(d.Added), matched, newCells)
	}
}

func TestDiffIdentity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := randCircuit(seed, 6, 40)
		d := DiffCircuits(c, c)
		if len(d.Unchanged) != len(c.Blocks) || len(d.Changed) != 0 || len(d.Added) != 0 || len(d.Removed) != 0 {
			t.Fatalf("seed %d: diff(x,x) not all-Unchanged: %d/%d/%d/%d",
				seed, len(d.Unchanged), len(d.Changed), len(d.Added), len(d.Removed))
		}
		checkPartition(t, &d.Diff, len(c.Blocks), len(c.Blocks))
		for i, m := range d.PIMap {
			if m != i {
				t.Fatalf("PIMap[%d]=%d", i, m)
			}
		}
		for i, m := range d.POMap {
			if m != i {
				t.Fatalf("POMap[%d]=%d", i, m)
			}
		}
	}
}

// permute returns the circuit with blocks reordered by perm (new index i
// holds old block perm[i]) and all sources remapped.
func permute(c *lutnet.Circuit, perm []int) *lutnet.Circuit {
	inv := make([]int, len(perm))
	for i, o := range perm {
		inv[o] = i
	}
	remap := func(s lutnet.Source) lutnet.Source {
		if s.Kind == lutnet.SrcBlock {
			s.Idx = inv[s.Idx]
		}
		return s
	}
	out := &lutnet.Circuit{Name: c.Name, K: c.K, PINames: append([]string(nil), c.PINames...)}
	for _, o := range perm {
		b := c.Blocks[o]
		ins := make([]lutnet.Source, len(b.Inputs))
		for p, s := range b.Inputs {
			ins[p] = remap(s)
		}
		b.Inputs = ins
		out.Blocks = append(out.Blocks, b)
	}
	for _, po := range c.POs {
		out.POs = append(out.POs, lutnet.PO{Name: po.Name, Src: remap(po.Src)})
	}
	return out
}

func TestDiffSurvivesReordering(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := randCircuit(seed, 6, 40)
		rnd := rand.New(rand.NewSource(seed + 100))
		reordered := permute(c, rnd.Perm(len(c.Blocks)))
		d := DiffCircuits(c, reordered)
		if len(d.Unchanged) != len(c.Blocks) {
			t.Fatalf("seed %d: only %d/%d blocks Unchanged after reorder", seed, len(d.Unchanged), len(c.Blocks))
		}
		checkPartition(t, &d.Diff, len(c.Blocks), len(reordered.Blocks))
		for i, o := range d.CellMap {
			if reordered.Blocks[i].TT != c.Blocks[o].TT {
				t.Fatalf("seed %d: new block %d matched old %d with different function", seed, i, o)
			}
		}
	}
}

func TestDiffEditAndPartition(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := randCircuit(seed, 6, 40)
		rnd := rand.New(rand.NewSource(seed + 200))

		// Function edit: flip one LUT's truth table. The edited block must
		// leave Unchanged (it matches by name, i.e. Changed); nothing is
		// added or removed.
		edited := permute(c, identityPerm(len(c.Blocks))) // deep copy
		bi := rnd.Intn(len(edited.Blocks))
		tt := &edited.Blocks[bi].TT
		*tt = logic.NewTT(tt.NumVars, ^tt.Bits)
		d := DiffCircuits(c, edited)
		checkPartition(t, &d.Diff, len(c.Blocks), len(edited.Blocks))
		if len(d.Added) != 0 || len(d.Removed) != 0 {
			t.Fatalf("seed %d: pure function edit reported %d added / %d removed", seed, len(d.Added), len(d.Removed))
		}
		if d.CellMap[bi] != bi {
			t.Fatalf("seed %d: edited block %d matched to %d, want name-match to itself", seed, bi, d.CellMap[bi])
		}
		for _, u := range d.Unchanged {
			if u == bi {
				t.Fatalf("seed %d: edited block %d reported Unchanged", seed, bi)
			}
		}

		// Structural edit: append two new blocks. The originals must all
		// match; exactly the new blocks are Added, nothing Removed.
		grown := permute(c, identityPerm(len(c.Blocks)))
		for k := 0; k < 2; k++ {
			grown.Blocks = append(grown.Blocks, lutnet.Block{
				Name:   fmt.Sprintf("new%d", k),
				TT:     logic.NewTT(2, rnd.Uint64()),
				Inputs: []lutnet.Source{{Kind: lutnet.SrcPI, Idx: 0}, {Kind: lutnet.SrcBlock, Idx: k}},
			})
		}
		d = DiffCircuits(c, grown)
		checkPartition(t, &d.Diff, len(c.Blocks), len(grown.Blocks))
		if len(d.Removed) != 0 {
			t.Fatalf("seed %d: grow edit removed %d", seed, len(d.Removed))
		}
		// Growing fanout perturbs signatures of the blocks the new cells
		// tap, so those may degrade to Changed — but nothing may be Added
		// beyond the two genuinely new blocks.
		if len(d.Added) != 2 {
			t.Fatalf("seed %d: grow edit added %d blocks, want 2", seed, len(d.Added))
		}

		// Shrink: diff in the other direction reports the same two blocks
		// as Removed.
		d = DiffCircuits(grown, c)
		checkPartition(t, &d.Diff, len(grown.Blocks), len(c.Blocks))
		if len(d.Removed) != 2 || len(d.Added) != 0 {
			t.Fatalf("seed %d: shrink edit %d removed / %d added, want 2/0", seed, len(d.Removed), len(d.Added))
		}
	}
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func TestDiffNetlistsIdentity(t *testing.T) {
	n := netlist.New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g1 := n.AddGate("g1", logic.NewTT(2, 0b1000), a, b)
	l := n.AddLatch("l", g1, false)
	g2 := n.AddGate("g2", logic.NewTT(2, 0b0110), l, a)
	n.AddOutput("o", g2)

	d := DiffNetlists(n, n)
	if len(d.Unchanged) != len(n.Nodes) || len(d.Changed)+len(d.Added)+len(d.Removed) != 0 {
		t.Fatalf("diff(x,x) over netlist not all-Unchanged: %+v", d)
	}
	checkPartition(t, d, len(n.Nodes), len(n.Nodes))
}
