package codec

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/lutnet"
	"repro/internal/netlist"
	"repro/internal/place"

	"repro/internal/arch"
)

// Artifact kinds and format versions. A version covers both the byte
// layout and the semantics of the algorithm producing the artifact: bump
// it when either changes, and every stale store entry of that kind
// becomes unreachable (its key hashes differently) instead of misread.
const (
	KindNetlist    = "netlist"
	KindCircuit    = "circuit"
	KindPlacement  = "placement"
	NetlistVersion = 1
	CircuitVersion = 1
	// PlacementVersion also stands in for the annealer's semantics: a
	// change to place.Place's trajectory for a given (problem, seed,
	// effort) must bump it.
	//
	// v2: the annealing kernel moved to the batched parallel-move
	// protocol (one acceptance uniform per proposal, drawn at propose
	// time), changing same-seed trajectories; placements additionally
	// depend on the multi-start count.
	PlacementVersion = 2
)

// Header opens an artifact encoding with its kind tag and format version.
func (w *Writer) Header(kind string, version int) {
	w.String(kind)
	w.Int(version)
}

// Header decodes and checks an artifact header, failing the reader on a
// kind or version mismatch.
func (r *Reader) Header(kind string, version int) {
	if got := r.String(); r.err == nil && got != kind {
		r.fail("artifact kind %q, want %q", got, kind)
	}
	if got := r.Int(); r.err == nil && got != version {
		r.fail("%s format version %d, want %d", kind, got, version)
	}
}

func encodeSource(w *Writer, s lutnet.Source) {
	w.Int(int(s.Kind))
	w.Int(s.Idx)
}

func decodeSource(r *Reader) lutnet.Source {
	return lutnet.Source{Kind: lutnet.SourceKind(r.Int()), Idx: r.Int()}
}

// EncodeCircuit renders the canonical encoding of a mapped LUT circuit.
func EncodeCircuit(c *lutnet.Circuit) []byte {
	w := NewWriter()
	w.Header(KindCircuit, CircuitVersion)
	w.String(c.Name)
	w.Int(c.K)
	w.Uvarint(uint64(len(c.PINames)))
	for _, nm := range c.PINames {
		w.String(nm)
	}
	w.Uvarint(uint64(len(c.Blocks)))
	for i := range c.Blocks {
		b := &c.Blocks[i]
		w.String(b.Name)
		w.Int(b.TT.NumVars)
		w.Uvarint(b.TT.Bits)
		w.Uvarint(uint64(len(b.Inputs)))
		for _, s := range b.Inputs {
			encodeSource(w, s)
		}
		w.Bool(b.HasFF)
		w.Bool(b.Init)
	}
	w.Uvarint(uint64(len(c.POs)))
	for _, po := range c.POs {
		w.String(po.Name)
		encodeSource(w, po.Src)
	}
	return w.Bytes()
}

// DecodeCircuit is the inverse of EncodeCircuit; the result is validated
// structurally before being returned.
func DecodeCircuit(data []byte) (*lutnet.Circuit, error) {
	r := NewReader(data)
	r.Header(KindCircuit, CircuitVersion)
	c := &lutnet.Circuit{Name: r.String(), K: r.Int()}
	for i, n := 0, r.Len(1); i < n; i++ {
		c.PINames = append(c.PINames, r.String())
	}
	for i, n := 0, r.Len(1); i < n; i++ {
		b := lutnet.Block{Name: r.String()}
		b.TT = logic.TT{NumVars: r.Int(), Bits: r.Uvarint()}
		for j, m := 0, r.Len(2); j < m; j++ {
			b.Inputs = append(b.Inputs, decodeSource(r))
		}
		b.HasFF = r.Bool()
		b.Init = r.Bool()
		c.Blocks = append(c.Blocks, b)
	}
	for i, n := 0, r.Len(1); i < n; i++ {
		po := lutnet.PO{Name: r.String()}
		po.Src = decodeSource(r)
		c.POs = append(c.POs, po)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("codec: decoded circuit invalid: %w", err)
	}
	return c, nil
}

// HashCircuit returns the content hash of a mapped circuit — the identity
// that replaces pointer equality as a cache key: structurally equal
// circuits hash identically within and across processes.
func HashCircuit(c *lutnet.Circuit) Hash { return Sum(EncodeCircuit(c)) }

// EncodeNetlist renders the canonical encoding of a gate-level netlist.
// Node IDs are positional (node i encodes at index i), which the netlist
// invariant Node.ID == index guarantees.
func EncodeNetlist(n *netlist.Netlist) []byte {
	w := NewWriter()
	w.Header(KindNetlist, NetlistVersion)
	w.String(n.Name)
	w.Uvarint(uint64(len(n.Nodes)))
	for _, nd := range n.Nodes {
		w.Int(int(nd.Kind))
		w.String(nd.Name)
		w.Ints(nd.Fanins)
		w.Int(nd.Func.NumVars)
		w.Uvarint(nd.Func.Bits)
		w.Bool(nd.Init)
	}
	w.Uvarint(uint64(len(n.Outputs)))
	for _, o := range n.Outputs {
		w.String(o.Name)
		w.Int(o.Driver)
	}
	return w.Bytes()
}

// DecodeNetlist is the inverse of EncodeNetlist; the rebuilt netlist is
// validated (including acyclicity) before being returned.
func DecodeNetlist(data []byte) (*netlist.Netlist, error) {
	r := NewReader(data)
	r.Header(KindNetlist, NetlistVersion)
	name := r.String()
	nNodes := r.Len(1)
	nodes := make([]*netlist.Node, 0, nNodes)
	for i := 0; i < nNodes; i++ {
		nd := &netlist.Node{
			ID:     i,
			Kind:   netlist.Kind(r.Int()),
			Name:   r.String(),
			Fanins: r.Ints(),
		}
		nd.Func = logic.TT{NumVars: r.Int(), Bits: r.Uvarint()}
		nd.Init = r.Bool()
		nodes = append(nodes, nd)
	}
	var outs []netlist.Output
	for i, n := 0, r.Len(1); i < n; i++ {
		outs = append(outs, netlist.Output{Name: r.String(), Driver: r.Int()})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	nl, err := netlist.Reconstruct(name, nodes, outs)
	if err != nil {
		return nil, fmt.Errorf("codec: decoded netlist invalid: %w", err)
	}
	return nl, nil
}

// HashNetlist returns the content hash of a netlist (mmserved keys its
// request deduplication on these, so textual BLIF variations of the same
// network collapse to one identity).
func HashNetlist(n *netlist.Netlist) Hash { return Sum(EncodeNetlist(n)) }

// EncodePlacement renders a placement artifact: the site assignment and
// cost, stamped with the cell-partition counts of the circuit it places
// so a store hit can verify it matches the circuit in hand.
func EncodePlacement(pl *place.Placement, cc place.CircuitCells) []byte {
	w := NewWriter()
	w.Header(KindPlacement, PlacementVersion)
	w.Int(cc.NumBlk)
	w.Int(cc.NumPI)
	w.Int(cc.NumPO)
	w.Float64(pl.Cost)
	w.Uvarint(uint64(len(pl.SiteOf)))
	for _, s := range pl.SiteOf {
		w.Int(s.X)
		w.Int(s.Y)
		w.Int(s.Sub)
		w.Bool(s.IsIO)
	}
	return w.Bytes()
}

// DecodePlacement is the inverse of EncodePlacement. The returned
// CircuitCells carries only the counts; the caller re-attaches the
// circuit after checking the counts match it.
func DecodePlacement(data []byte) (*place.Placement, place.CircuitCells, error) {
	r := NewReader(data)
	r.Header(KindPlacement, PlacementVersion)
	cc := place.CircuitCells{NumBlk: r.Int(), NumPI: r.Int(), NumPO: r.Int()}
	pl := &place.Placement{Cost: r.Float64()}
	n := r.Len(4)
	pl.SiteOf = make([]arch.Site, 0, n)
	for i := 0; i < n; i++ {
		s := arch.Site{X: r.Int(), Y: r.Int(), Sub: r.Int()}
		s.IsIO = r.Bool()
		pl.SiteOf = append(pl.SiteOf, s)
	}
	if err := r.Err(); err != nil {
		return nil, place.CircuitCells{}, err
	}
	if len(pl.SiteOf) != cc.NumBlk+cc.NumPI+cc.NumPO {
		return nil, place.CircuitCells{}, fmt.Errorf("codec: placement has %d sites for %d cells",
			len(pl.SiteOf), cc.NumBlk+cc.NumPI+cc.NumPO)
	}
	return pl, cc, nil
}
