// Package logic provides the Boolean-function kernel used across the tool
// flow: truth tables of up to six variables packed in a uint64, cofactoring,
// support computation, and a Quine–McCluskey sum-of-products extractor used
// to print activation functions and parameterised configuration bits.
package logic

import (
	"fmt"
	"strings"
)

// MaxVars is the largest number of truth-table variables supported by TT.
// Six variables fit exactly in one uint64 (2^6 rows), which covers every
// LUT size used by the flow (K ≤ 6).
const MaxVars = 6

// varMasks[v] has bit r set iff row r has variable v equal to 1.
var varMasks = [MaxVars]uint64{
	0xAAAAAAAAAAAAAAAA, // v0: rows where bit0 of the row index is 1
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// TT is a truth table over a fixed number of variables. Row i (bit i of
// Bits) holds the function value for the input assignment whose binary
// encoding is i, with variable 0 as the least-significant input bit.
type TT struct {
	NumVars int
	Bits    uint64
}

// mask returns the uint64 mask covering the 2^n valid rows of an n-variable
// table.
func mask(numVars int) uint64 {
	if numVars >= MaxVars {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(numVars))) - 1
}

// NewTT builds a truth table over numVars variables from the given row bits.
// Rows beyond 2^numVars are cleared.
func NewTT(numVars int, bits uint64) TT {
	if numVars < 0 || numVars > MaxVars {
		panic(fmt.Sprintf("logic: NewTT numVars %d out of range [0,%d]", numVars, MaxVars))
	}
	return TT{NumVars: numVars, Bits: bits & mask(numVars)}
}

// ConstTT returns the constant-0 or constant-1 function over numVars
// variables.
func ConstTT(numVars int, value bool) TT {
	if value {
		return NewTT(numVars, ^uint64(0))
	}
	return NewTT(numVars, 0)
}

// VarTT returns the projection function x_v over numVars variables.
func VarTT(numVars, v int) TT {
	if v < 0 || v >= numVars {
		panic(fmt.Sprintf("logic: VarTT variable %d out of range for %d vars", v, numVars))
	}
	return NewTT(numVars, varMasks[v])
}

// NumRows returns the number of rows (2^NumVars) of the table.
func (t TT) NumRows() int { return 1 << uint(t.NumVars) }

// Get reports the function value for the row index (input assignment) r.
func (t TT) Get(r int) bool {
	if r < 0 || r >= t.NumRows() {
		panic(fmt.Sprintf("logic: TT.Get row %d out of range for %d vars", r, t.NumVars))
	}
	return t.Bits>>uint(r)&1 == 1
}

// Set returns a copy of t with row r set to value.
func (t TT) Set(r int, value bool) TT {
	if r < 0 || r >= t.NumRows() {
		panic(fmt.Sprintf("logic: TT.Set row %d out of range for %d vars", r, t.NumVars))
	}
	if value {
		t.Bits |= uint64(1) << uint(r)
	} else {
		t.Bits &^= uint64(1) << uint(r)
	}
	return t
}

// Eval evaluates the function on the input assignment given as a bitmask
// (bit v = value of variable v).
func (t TT) Eval(assignment uint) bool {
	return t.Get(int(assignment) & (t.NumRows() - 1))
}

func (t TT) checkSameArity(o TT, op string) {
	if t.NumVars != o.NumVars {
		panic(fmt.Sprintf("logic: %s on tables with %d and %d vars", op, t.NumVars, o.NumVars))
	}
}

// And returns t AND o.
func (t TT) And(o TT) TT { t.checkSameArity(o, "And"); return NewTT(t.NumVars, t.Bits&o.Bits) }

// Or returns t OR o.
func (t TT) Or(o TT) TT { t.checkSameArity(o, "Or"); return NewTT(t.NumVars, t.Bits|o.Bits) }

// Xor returns t XOR o.
func (t TT) Xor(o TT) TT { t.checkSameArity(o, "Xor"); return NewTT(t.NumVars, t.Bits^o.Bits) }

// Not returns NOT t.
func (t TT) Not() TT { return NewTT(t.NumVars, ^t.Bits) }

// IsConst0 reports whether the function is constant 0.
func (t TT) IsConst0() bool { return t.Bits == 0 }

// IsConst1 reports whether the function is constant 1.
func (t TT) IsConst1() bool { return t.Bits == mask(t.NumVars) }

// Equal reports whether the two tables denote the same function over the
// same arity.
func (t TT) Equal(o TT) bool { return t.NumVars == o.NumVars && t.Bits == o.Bits }

// Cofactor returns the cofactor of t with variable v fixed to value. The
// result keeps the same arity; the fixed variable becomes irrelevant.
func (t TT) Cofactor(v int, value bool) TT {
	if v < 0 || v >= t.NumVars {
		panic(fmt.Sprintf("logic: Cofactor variable %d out of range for %d vars", v, t.NumVars))
	}
	m := varMasks[v]
	shift := uint(1) << uint(v)
	if value {
		hi := t.Bits & m
		return NewTT(t.NumVars, hi|hi>>shift)
	}
	lo := t.Bits &^ m
	return NewTT(t.NumVars, lo|lo<<shift)
}

// DependsOn reports whether the function value depends on variable v.
func (t TT) DependsOn(v int) bool {
	return !t.Cofactor(v, false).Equal(t.Cofactor(v, true))
}

// Support returns the bitmask of variables the function actually depends on.
func (t TT) Support() uint {
	var s uint
	for v := 0; v < t.NumVars; v++ {
		if t.DependsOn(v) {
			s |= 1 << uint(v)
		}
	}
	return s
}

// SupportSize returns the number of variables in the functional support.
func (t TT) SupportSize() int {
	n := 0
	for v := 0; v < t.NumVars; v++ {
		if t.DependsOn(v) {
			n++
		}
	}
	return n
}

// Expand re-expresses t over a wider arity newNumVars, mapping old variable
// i to new variable varMap[i]. Entries of varMap must be distinct and
// < newNumVars.
func (t TT) Expand(newNumVars int, varMap []int) TT {
	if len(varMap) != t.NumVars {
		panic(fmt.Sprintf("logic: Expand varMap has %d entries for %d vars", len(varMap), t.NumVars))
	}
	out := NewTT(newNumVars, 0)
	for r := 0; r < out.NumRows(); r++ {
		var oldRow int
		for i, nv := range varMap {
			if r>>uint(nv)&1 == 1 {
				oldRow |= 1 << uint(i)
			}
		}
		if t.Get(oldRow) {
			out = out.Set(r, true)
		}
	}
	return out
}

// Shrink removes non-support variables, returning the reduced table plus the
// list of original variable indices that remain (in ascending order).
func (t TT) Shrink() (TT, []int) {
	var keep []int
	for v := 0; v < t.NumVars; v++ {
		if t.DependsOn(v) {
			keep = append(keep, v)
		}
	}
	out := NewTT(len(keep), 0)
	for r := 0; r < out.NumRows(); r++ {
		var oldRow int
		for i, ov := range keep {
			if r>>uint(i)&1 == 1 {
				oldRow |= 1 << uint(ov)
			}
		}
		if t.Get(oldRow) {
			out = out.Set(r, true)
		}
	}
	return out, keep
}

// CountOnes returns the number of satisfying rows.
func (t TT) CountOnes() int {
	n := 0
	for b := t.Bits; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// String renders the table as a binary row string, row 2^n-1 first, matching
// BLIF-style reading order of hex dumps.
func (t TT) String() string {
	var sb strings.Builder
	for r := t.NumRows() - 1; r >= 0; r-- {
		if t.Get(r) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
