package logic

import (
	"sort"
	"strings"
)

// Cube is a product term over n variables: bit v of Mask selects whether
// variable v is in the cube, and bit v of Value gives its required polarity.
type Cube struct {
	Mask  uint
	Value uint
}

// Covers reports whether the cube covers the given row (input assignment).
func (c Cube) Covers(row uint) bool { return row&c.Mask == c.Value&c.Mask }

// LiteralCount returns the number of literals in the cube.
func (c Cube) LiteralCount() int {
	n := 0
	for m := c.Mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// String renders the cube with the given variable names, "1" if it is the
// universal cube.
func (c Cube) String(names []string) string {
	if c.Mask == 0 {
		return "1"
	}
	var parts []string
	for v := 0; v < len(names); v++ {
		if c.Mask>>uint(v)&1 == 0 {
			continue
		}
		if c.Value>>uint(v)&1 == 1 {
			parts = append(parts, names[v])
		} else {
			parts = append(parts, "!"+names[v])
		}
	}
	return strings.Join(parts, ".")
}

// SOP is a sum of product cubes.
type SOP struct {
	NumVars int
	Cubes   []Cube
}

// String renders the SOP with the given variable names; constants render as
// "0" and "1".
func (s SOP) String(names []string) string {
	if len(s.Cubes) == 0 {
		return "0"
	}
	var parts []string
	for _, c := range s.Cubes {
		parts = append(parts, c.String(names))
	}
	return strings.Join(parts, " + ")
}

// LiteralCount returns the total number of literals over all cubes.
func (s SOP) LiteralCount() int {
	n := 0
	for _, c := range s.Cubes {
		n += c.LiteralCount()
	}
	return n
}

// Eval evaluates the SOP on an input assignment bitmask.
func (s SOP) Eval(row uint) bool {
	for _, c := range s.Cubes {
		if c.Covers(row) {
			return true
		}
	}
	return false
}

// Minimize computes a compact sum-of-products cover of the function using
// the Quine–McCluskey procedure (prime-implicant generation followed by a
// greedy essential-first cover). Exact for the arities used here (≤ 6
// variables; mode words are a handful of bits).
func Minimize(t TT) SOP {
	n := t.NumVars
	if t.IsConst0() {
		return SOP{NumVars: n}
	}
	if t.IsConst1() {
		return SOP{NumVars: n, Cubes: []Cube{{}}}
	}

	full := uint(1)<<uint(n) - 1

	// Start from minterms and iteratively merge cube pairs differing in one
	// cared literal. implicant key = (mask, value).
	type key struct{ mask, value uint }
	cur := map[key]bool{}
	for r := 0; r < t.NumRows(); r++ {
		if t.Get(r) {
			cur[key{full, uint(r)}] = true
		}
	}
	var primes []Cube
	for len(cur) > 0 {
		next := map[key]bool{}
		merged := map[key]bool{}
		keys := make([]key, 0, len(cur))
		for k := range cur {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].mask != keys[j].mask {
				return keys[i].mask < keys[j].mask
			}
			return keys[i].value < keys[j].value
		})
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				a, b := keys[i], keys[j]
				if a.mask != b.mask {
					continue
				}
				diff := (a.value ^ b.value) & a.mask
				if diff == 0 || diff&(diff-1) != 0 {
					continue
				}
				nk := key{a.mask &^ diff, a.value &^ diff & (a.mask &^ diff)}
				next[nk] = true
				merged[a] = true
				merged[b] = true
			}
		}
		for _, k := range keys {
			if !merged[k] {
				primes = append(primes, Cube{Mask: k.mask, Value: k.value & k.mask})
			}
		}
		cur = next
	}

	// Greedy cover: essentials first, then largest-coverage primes.
	var minterms []uint
	for r := 0; r < t.NumRows(); r++ {
		if t.Get(r) {
			minterms = append(minterms, uint(r))
		}
	}
	covered := make(map[uint]bool, len(minterms))
	var chosen []Cube
	// Essential primes.
	for _, m := range minterms {
		var only *Cube
		cnt := 0
		for i := range primes {
			if primes[i].Covers(m) {
				cnt++
				only = &primes[i]
			}
		}
		if cnt == 1 && !cubeIn(chosen, *only) {
			chosen = append(chosen, *only)
			for _, mm := range minterms {
				if only.Covers(mm) {
					covered[mm] = true
				}
			}
		}
	}
	for {
		allCovered := true
		for _, m := range minterms {
			if !covered[m] {
				allCovered = false
				break
			}
		}
		if allCovered {
			break
		}
		bestIdx, bestGain := -1, -1
		for i, p := range primes {
			if cubeIn(chosen, p) {
				continue
			}
			gain := 0
			for _, m := range minterms {
				if !covered[m] && p.Covers(m) {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && bestIdx >= 0 && p.LiteralCount() < primes[bestIdx].LiteralCount()) {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 || bestGain <= 0 {
			break // unreachable for a correct prime set
		}
		chosen = append(chosen, primes[bestIdx])
		for _, m := range minterms {
			if primes[bestIdx].Covers(m) {
				covered[m] = true
			}
		}
	}
	sort.Slice(chosen, func(i, j int) bool {
		if chosen[i].Mask != chosen[j].Mask {
			return chosen[i].Mask < chosen[j].Mask
		}
		return chosen[i].Value < chosen[j].Value
	})
	return SOP{NumVars: n, Cubes: chosen}
}

func cubeIn(cs []Cube, c Cube) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}
