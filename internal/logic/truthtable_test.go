package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstTT(t *testing.T) {
	for n := 0; n <= MaxVars; n++ {
		c0 := ConstTT(n, false)
		c1 := ConstTT(n, true)
		if !c0.IsConst0() {
			t.Errorf("ConstTT(%d,false) not const0", n)
		}
		if !c1.IsConst1() {
			t.Errorf("ConstTT(%d,true) not const1", n)
		}
		if c1.CountOnes() != 1<<uint(n) {
			t.Errorf("ConstTT(%d,true) has %d ones, want %d", n, c1.CountOnes(), 1<<uint(n))
		}
	}
}

func TestVarTTProjection(t *testing.T) {
	for n := 1; n <= MaxVars; n++ {
		for v := 0; v < n; v++ {
			tt := VarTT(n, v)
			for r := 0; r < tt.NumRows(); r++ {
				want := r>>uint(v)&1 == 1
				if tt.Get(r) != want {
					t.Fatalf("VarTT(%d,%d).Get(%d)=%v want %v", n, v, r, tt.Get(r), want)
				}
			}
		}
	}
}

func TestBooleanOpsMatchRowwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(MaxVars)
		a := NewTT(n, rng.Uint64())
		b := NewTT(n, rng.Uint64())
		and, or, xor, not := a.And(b), a.Or(b), a.Xor(b), a.Not()
		for r := 0; r < a.NumRows(); r++ {
			if and.Get(r) != (a.Get(r) && b.Get(r)) {
				t.Fatalf("And row %d mismatch", r)
			}
			if or.Get(r) != (a.Get(r) || b.Get(r)) {
				t.Fatalf("Or row %d mismatch", r)
			}
			if xor.Get(r) != (a.Get(r) != b.Get(r)) {
				t.Fatalf("Xor row %d mismatch", r)
			}
			if not.Get(r) == a.Get(r) {
				t.Fatalf("Not row %d mismatch", r)
			}
		}
	}
}

func TestCofactorShannon(t *testing.T) {
	// f = v ? f_v1 : f_v0 (Shannon expansion) must reconstruct f.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(MaxVars)
		f := NewTT(n, rng.Uint64())
		v := rng.Intn(n)
		f0 := f.Cofactor(v, false)
		f1 := f.Cofactor(v, true)
		x := VarTT(n, v)
		recon := x.And(f1).Or(x.Not().And(f0))
		if !recon.Equal(f) {
			t.Fatalf("Shannon expansion failed for n=%d v=%d f=%s", n, v, f)
		}
		if f0.DependsOn(v) || f1.DependsOn(v) {
			t.Fatalf("cofactor still depends on fixed variable")
		}
	}
}

func TestSupport(t *testing.T) {
	n := 4
	f := VarTT(n, 0).And(VarTT(n, 2)) // depends on v0, v2 only
	if got := f.Support(); got != 0b0101 {
		t.Errorf("Support = %04b, want 0101", got)
	}
	if f.SupportSize() != 2 {
		t.Errorf("SupportSize = %d, want 2", f.SupportSize())
	}
}

func TestShrinkExpandRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(MaxVars)
		f := NewTT(n, rng.Uint64())
		small, keep := f.Shrink()
		if small.NumVars != len(keep) {
			t.Fatalf("Shrink arity %d != len(keep) %d", small.NumVars, len(keep))
		}
		back := small.Expand(n, keep)
		if !back.Equal(f) {
			t.Fatalf("Shrink/Expand round trip failed n=%d f=%s got=%s", n, f, back)
		}
	}
}

func TestExpandPermutation(t *testing.T) {
	// f(a,b) = a AND NOT b expanded to 3 vars with a->2, b->0.
	f := VarTT(2, 0).And(VarTT(2, 1).Not())
	g := f.Expand(3, []int{2, 0})
	want := VarTT(3, 2).And(VarTT(3, 0).Not())
	if !g.Equal(want) {
		t.Errorf("Expand permutation got %s want %s", g, want)
	}
}

func TestEvalAgainstGet(t *testing.T) {
	f := NewTT(3, 0b10110100)
	for r := 0; r < 8; r++ {
		if f.Eval(uint(r)) != f.Get(r) {
			t.Errorf("Eval(%d) != Get(%d)", r, r)
		}
	}
}

func TestTTSetGet(t *testing.T) {
	f := ConstTT(3, false)
	f = f.Set(5, true)
	if !f.Get(5) || f.CountOnes() != 1 {
		t.Errorf("Set/Get failed: %s", f)
	}
	f = f.Set(5, false)
	if !f.IsConst0() {
		t.Errorf("clearing bit failed: %s", f)
	}
}

func TestTTPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { NewTT(7, 0) },
		func() { VarTT(2, 2) },
		func() { NewTT(2, 0).Get(4) },
		func() { NewTT(2, 0).Cofactor(3, true) },
		func() { NewTT(2, 0).And(NewTT(3, 0)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestQuickCofactorIdempotent(t *testing.T) {
	f := func(bits uint64, vRaw uint8) bool {
		tt := NewTT(4, bits)
		v := int(vRaw) % 4
		c := tt.Cofactor(v, true)
		return c.Cofactor(v, true).Equal(c) && c.Cofactor(v, false).Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	f := func(a, b uint64) bool {
		x := NewTT(5, a)
		y := NewTT(5, b)
		return x.And(y).Not().Equal(x.Not().Or(y.Not()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
