package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sopEquivalent checks that the SOP denotes exactly the same function as tt.
func sopEquivalent(t *testing.T, tt TT, s SOP) {
	t.Helper()
	for r := 0; r < tt.NumRows(); r++ {
		if s.Eval(uint(r)) != tt.Get(r) {
			t.Fatalf("SOP differs from TT at row %d (tt=%s)", r, tt)
		}
	}
}

func TestMinimizeConstants(t *testing.T) {
	names := []string{"a", "b"}
	s0 := Minimize(ConstTT(2, false))
	if s0.String(names) != "0" || len(s0.Cubes) != 0 {
		t.Errorf("const0 SOP = %q", s0.String(names))
	}
	s1 := Minimize(ConstTT(2, true))
	if s1.String(names) != "1" {
		t.Errorf("const1 SOP = %q", s1.String(names))
	}
}

func TestMinimizeSingleVariable(t *testing.T) {
	s := Minimize(VarTT(3, 1))
	if got := s.String([]string{"m0", "m1", "m2"}); got != "m1" {
		t.Errorf("SOP = %q, want m1", got)
	}
}

func TestMinimizeKnownFunction(t *testing.T) {
	// Paper's Fig. 4 style: f = m0.1 + !m0.0 simplifies to m0.
	m0 := VarTT(1, 0)
	f := m0.And(ConstTT(1, true)).Or(m0.Not().And(ConstTT(1, false)))
	s := Minimize(f)
	if got := s.String([]string{"m0"}); got != "m0" {
		t.Errorf("SOP = %q, want m0", got)
	}
}

func TestMinimizeXorNeedsTwoCubes(t *testing.T) {
	f := VarTT(2, 0).Xor(VarTT(2, 1))
	s := Minimize(f)
	if len(s.Cubes) != 2 {
		t.Errorf("XOR cover has %d cubes, want 2", len(s.Cubes))
	}
	sopEquivalent(t, f, s)
}

func TestMinimizeMergesAdjacentMinterms(t *testing.T) {
	// f = !a.!b + !a.b = !a — one cube, one literal.
	a, b := VarTT(2, 0), VarTT(2, 1)
	f := a.Not().And(b.Not()).Or(a.Not().And(b))
	s := Minimize(f)
	if len(s.Cubes) != 1 || s.LiteralCount() != 1 {
		t.Errorf("cover = %q (%d cubes, %d lits), want single literal !a",
			s.String([]string{"a", "b"}), len(s.Cubes), s.LiteralCount())
	}
	sopEquivalent(t, f, s)
}

func TestMinimizeRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4) // QM over ≤4 vars stays fast
		tt := NewTT(n, rng.Uint64())
		sopEquivalent(t, tt, Minimize(tt))
	}
}

func TestCubeCovers(t *testing.T) {
	c := Cube{Mask: 0b101, Value: 0b001} // v0=1, v2=0
	cases := []struct {
		row  uint
		want bool
	}{
		{0b001, true}, {0b011, true}, {0b101, false}, {0b000, false}, {0b111, false},
	}
	for _, tc := range cases {
		if c.Covers(tc.row) != tc.want {
			t.Errorf("Covers(%03b) = %v, want %v", tc.row, c.Covers(tc.row), tc.want)
		}
	}
}

func TestQuickMinimizeSound(t *testing.T) {
	f := func(bits uint64) bool {
		tt := NewTT(3, bits)
		s := Minimize(tt)
		for r := 0; r < 8; r++ {
			if s.Eval(uint(r)) != tt.Get(r) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSOPStringFormatting(t *testing.T) {
	// f = a.!b + c over 3 vars.
	a, b, c := VarTT(3, 0), VarTT(3, 1), VarTT(3, 2)
	f := a.And(b.Not()).Or(c)
	s := Minimize(f)
	sopEquivalent(t, f, s)
	str := s.String([]string{"a", "b", "c"})
	if str == "0" || str == "1" {
		t.Errorf("unexpected constant rendering %q", str)
	}
}
