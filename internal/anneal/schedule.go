package anneal

import "math"

// Schedule holds the adaptive annealing parameters: temperature, range
// limit and the per-round move budget.
type Schedule struct {
	T      float64
	RLim   float64
	Moves  int
	accept int
	tried  int
}

// NewSchedule seeds the schedule from an initial cost standard deviation
// (VPR: T0 = 20 σ) and the device span.
func NewSchedule(sigma float64, span int, nCells int, effort float64) *Schedule {
	t0 := 20 * sigma
	if t0 <= 0 {
		t0 = 1
	}
	moves := int(effort * 10 * math.Pow(float64(nCells), 4.0/3.0))
	if moves < 64 {
		moves = 64
	}
	return &Schedule{T: t0, RLim: float64(span), Moves: moves}
}

// Record notes one attempted move and whether it was accepted.
func (s *Schedule) Record(accepted bool) {
	s.tried++
	if accepted {
		s.accept++
	}
}

// Next advances the temperature and range limit after one round of moves,
// reporting whether annealing should continue given the current
// cost-per-net scale.
func (s *Schedule) Next(costPerNet float64, span int) bool {
	alphaAccept := 0.0
	if s.tried > 0 {
		alphaAccept = float64(s.accept) / float64(s.tried)
	}
	var gamma float64
	switch {
	case alphaAccept > 0.96:
		gamma = 0.5
	case alphaAccept > 0.8:
		gamma = 0.9
	case alphaAccept > 0.15:
		gamma = 0.95
	default:
		gamma = 0.8
	}
	s.T *= gamma
	// Range limit tracks 44% acceptance (Lam/VPR).
	s.RLim *= 1 - 0.44 + alphaAccept
	if s.RLim < 1 {
		s.RLim = 1
	}
	if s.RLim > float64(span) {
		s.RLim = float64(span)
	}
	s.accept, s.tried = 0, 0
	return s.T >= 0.005*costPerNet
}
