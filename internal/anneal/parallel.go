package anneal

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// batchMoves is the number of move proposals per batch of the parallel
// protocol. Like the router's connection batches it is a FIXED constant —
// NEVER derived from the worker count: batch composition, the rng draw
// order, the canonical commit order and the conflict/requeue decisions
// must all be functions of the seed alone, so that the same seed yields
// byte-identical trajectories at 1, 2 or 8 workers. Workers only change
// who evaluates a slot, never what is decided.
const batchMoves = 64

// StartSeedStride separates the derived seeds of multi-start anneals:
// start i of a run seeded S anneals with seed S + i*StartSeedStride.
// Large and prime so the strided seed sequences of nearby base seeds
// (callers commonly use S, S+1, ... for related problems) do not collide.
const StartSeedStride = 1_000_003

// BatchMover extends Mover with the batched parallel-move protocol:
// proposals are drawn serially (fixed rng order), evaluated concurrently
// against frozen cost state, and committed serially in slot order with
// footprint-based conflict detection. Implementations must guarantee:
//
//   - Propose records a proposal without touching shared state;
//   - EvalSlot is read-only against the current state and writes only the
//     given worker's scratch (it runs concurrently with other workers);
//   - EvalSlot returns exactly the delta ApplySlot would return on an
//     unchanged state (same affected-set order, same float operations) —
//     property-tested by both movers;
//   - Claims returns the move's full mutation footprint: two proposals
//     whose claims are disjoint must commute.
type BatchMover interface {
	Mover
	// SetupBatch sizes the mover's proposal slots and per-worker
	// evaluation scratch. Called once per Run, before the first batch.
	SetupBatch(workers, slots int)
	// Propose draws a move for the given slot within the range limit,
	// recording it in the slot without mutating state; ok is false when
	// the proposal is degenerate (no-op target, class mismatch).
	Propose(rng *rand.Rand, rlim float64, slot int) bool
	// Claims appends the slot's footprint keys to buf and returns it.
	Claims(slot int, buf []int64) []int64
	// EvalSlot returns the slot's cost delta, evaluated read-only against
	// the current (frozen) state using worker w's scratch.
	EvalSlot(slot, w int) float64
	// ApplySlot applies the slot's proposal to live state — exactly like
	// TryMove, returning the incremental delta and leaving the move
	// applied for Undo to revert.
	ApplySlot(slot int) float64
}

// RunStats summarises one annealing run.
type RunStats struct {
	// Moves counts evaluated (non-degenerate) proposals; Accepted the
	// committed ones.
	Moves    int
	Accepted int
	// Requeued counts batch commits whose footprint overlapped an earlier
	// commit of the same batch and were therefore re-evaluated serially
	// against live state.
	Requeued int
	// Batches counts parallel batches (zero on the legacy serial path).
	Batches int
}

// Pool is a bounded worker pool for the batched evaluation phase. The
// calling goroutine participates as worker 0, so a 1-worker pool spawns
// no goroutines at all; a pool may be shared across the runs of a
// multi-start anneal. Close releases the spawned workers.
type Pool struct {
	workers int
	jobs    []chan poolJob // one channel per spawned worker: every Run executes exactly once on every worker index
}

type poolJob struct {
	fn func(w int)
	wg *sync.WaitGroup
}

// NewPool returns a pool of the given worker count (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	for w := 1; w < workers; w++ {
		ch := make(chan poolJob)
		p.jobs = append(p.jobs, ch)
		go func(w int, ch chan poolJob) {
			for j := range ch {
				j.fn(w)
				j.wg.Done()
			}
		}(w, ch)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn once per worker (fn receives the worker index) and
// returns when every invocation has finished.
func (p *Pool) Run(fn func(w int)) {
	if len(p.jobs) == 0 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(p.jobs))
	for _, ch := range p.jobs {
		ch <- poolJob{fn: fn, wg: &wg}
	}
	fn(0)
	wg.Wait()
}

// Close stops the pool's spawned workers (a no-op for 1-worker pools).
func (p *Pool) Close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

// BestStart picks the winner of a multi-start anneal: the index of the
// lowest cost, ties broken towards the lowest seed. The pick depends only
// on the (cost, seed) pairs — never on the order starts completed in —
// so concurrent and sequential multi-starts agree.
func BestStart(costs []float64, seeds []int64) int {
	best := 0
	for i := 1; i < len(costs); i++ {
		if costs[i] < costs[best] || (costs[i] == costs[best] && seeds[i] < seeds[best]) {
			best = i
		}
	}
	return best
}

// runBatched is the annealing loop over the batched parallel-move
// protocol, mirroring the router's commit protocol: per batch, proposals
// and their acceptance uniforms are drawn serially in slot order (the rng
// sequence is fixed up front); evaluation runs on the pool against state
// frozen for the whole phase; commits then apply serially in slot order.
// A commit whose claims overlap an earlier accepted commit of the same
// batch is REQUEUED: it is re-evaluated against live state via ApplySlot
// and decided with its pre-drawn uniform — in-batch and serial, so a
// batch where every proposal conflicts still makes progress one commit at
// a time (no livelock, no starvation). Non-conflicting commits decide on
// the frozen delta and only then apply, which also keeps the maintained
// incremental costs exact: every state mutation goes through ApplySlot
// against live state.
func runBatched(mv BatchMover, cfg Config, sch *Schedule, rng *rand.Rand, span int) RunStats {
	var stats RunStats
	pool := cfg.Pool
	if pool == nil && cfg.Workers > 1 {
		pool = NewPool(cfg.Workers)
		defer pool.Close()
	}
	workers := 1
	if pool != nil {
		workers = pool.Workers()
	}
	mv.SetupBatch(workers, batchMoves)

	var (
		ok      [batchMoves]bool
		u       [batchMoves]float64
		delta   [batchMoves]float64
		claimed []int64
		clBuf   []int64
	)
	for {
		for m := 0; m < sch.Moves; {
			n := batchMoves
			if rem := sch.Moves - m; rem < n {
				n = rem
			}
			m += n
			stats.Batches++

			// Propose phase: serial, fixed rng order. The acceptance
			// uniform is drawn per proposal up front (the serial kernel
			// draws it lazily for uphill moves only) so the decision in
			// the commit phase consumes no rng.
			for s := 0; s < n; s++ {
				ok[s] = mv.Propose(rng, sch.RLim, s)
				if ok[s] {
					u[s] = rng.Float64()
				}
			}
			// Evaluation phase: workers pull slots off a shared counter
			// and evaluate read-only against the frozen state, writing
			// only their own scratch and their slot's delta.
			if pool != nil {
				var next atomic.Int32
				pool.Run(func(w int) {
					for {
						s := int(next.Add(1)) - 1
						if s >= n {
							return
						}
						if ok[s] {
							delta[s] = mv.EvalSlot(s, w)
						}
					}
				})
			} else {
				for s := 0; s < n; s++ {
					if ok[s] {
						delta[s] = mv.EvalSlot(s, 0)
					}
				}
			}
			// Commit phase: serial, canonical slot order.
			claimed = claimed[:0]
			for s := 0; s < n; s++ {
				if !ok[s] {
					continue
				}
				stats.Moves++
				clBuf = mv.Claims(s, clBuf[:0])
				conflict := false
				for _, c := range clBuf {
					for _, p := range claimed {
						if p == c {
							conflict = true
							break
						}
					}
					if conflict {
						break
					}
				}
				if conflict {
					// Requeue: an earlier commit touched this move's
					// footprint, so the frozen delta is stale — apply
					// against live state for the true delta and decide
					// with the pre-drawn uniform.
					stats.Requeued++
					d := mv.ApplySlot(s)
					if d <= 0 || u[s] < math.Exp(-d/sch.T) {
						claimed = append(claimed, clBuf...)
						sch.Record(true)
						stats.Accepted++
					} else {
						mv.Undo()
						sch.Record(false)
					}
				} else {
					if d := delta[s]; d <= 0 || u[s] < math.Exp(-d/sch.T) {
						mv.ApplySlot(s)
						claimed = append(claimed, clBuf...)
						sch.Record(true)
						stats.Accepted++
					} else {
						sch.Record(false)
					}
				}
			}
			if cfg.AfterBatch != nil {
				cfg.AfterBatch()
			}
		}
		if !sch.Next(mv.Cost()/float64(cfg.Nets), span) {
			return stats
		}
	}
}
