package anneal

import (
	"math"
	"math/rand"
	"testing"
)

func TestScheduleCooling(t *testing.T) {
	s := NewSchedule(5, 20, 100, 1.0)
	if s.T != 100 {
		t.Fatalf("T0 = %v, want 20*sigma = 100", s.T)
	}
	if s.RLim != 20 {
		t.Fatalf("RLim = %v, want span", s.RLim)
	}
	if s.Moves < 64 {
		t.Fatalf("Moves = %d below floor", s.Moves)
	}
	// High acceptance cools fast and widens the range limit cap.
	for i := 0; i < 100; i++ {
		s.Record(true)
	}
	t0 := s.T
	s.Next(1, 20)
	if s.T != t0*0.5 {
		t.Fatalf("gamma at high acceptance: T %v -> %v, want halved", t0, s.T)
	}
	if s.RLim != 20 {
		t.Fatalf("RLim %v must stay capped at span", s.RLim)
	}
	// Low acceptance shrinks the range limit towards 1.
	for i := 0; i < 100; i++ {
		s.Record(false)
	}
	s.Next(1, 20)
	if s.RLim >= 20 {
		t.Fatalf("RLim %v must shrink at low acceptance", s.RLim)
	}
	// Termination: the schedule stops once T falls below the cost scale.
	s.T = 0.004
	if s.Next(1, 20) {
		t.Fatal("schedule must stop below 0.005*costPerNet")
	}
}

func TestScheduleDegenerate(t *testing.T) {
	if s := NewSchedule(0, 10, 1, 1.0); s.T != 1 {
		t.Fatalf("zero sigma must fall back to T0=1, got %v", s.T)
	}
	if s := NewSchedule(1, 10, 0, 0.01); s.Moves != 64 {
		t.Fatalf("move floor = %d, want 64", s.Moves)
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev(nil); got != 1 {
		t.Fatalf("Stddev(nil) = %v, want 1", got)
	}
	if got := Stddev([]float64{3, 3, 3}); got != 0 {
		t.Fatalf("constant stddev = %v, want 0", got)
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 1, 10) != 5 || Clamp(-3, 1, 10) != 1 || Clamp(42, 1, 10) != 10 {
		t.Fatal("Clamp bounds wrong")
	}
}

// lineMover is a toy Mover: n cells on an integer line of n slots, cost =
// sum of |pos(i) - pos(i+1)| over a chain. Optimal order has cost n-1.
type lineMover struct {
	posOf  []int
	cellAt []int
	cost   float64
	mvA    int
	mvB    int
}

func newLineMover(n int, rng *rand.Rand) *lineMover {
	m := &lineMover{posOf: make([]int, n), cellAt: make([]int, n)}
	for i, p := range rng.Perm(n) {
		m.posOf[i] = p
		m.cellAt[p] = i
	}
	m.cost = m.fullCost()
	return m
}

func (m *lineMover) fullCost() float64 {
	c := 0.0
	for i := 0; i+1 < len(m.posOf); i++ {
		c += math.Abs(float64(m.posOf[i] - m.posOf[i+1]))
	}
	return c
}

func (m *lineMover) TryMove(rng *rand.Rand, rlim float64) (float64, bool) {
	a := rng.Intn(len(m.posOf))
	posA := m.posOf[a]
	r := int(rlim)
	if r < 1 {
		r = 1
	}
	posB := Clamp(posA+rng.Intn(2*r+1)-r, 0, len(m.posOf)-1)
	if posA == posB {
		return 0, false
	}
	m.mvA, m.mvB = posA, posB
	m.swap(posA, posB)
	nc := m.fullCost()
	d := nc - m.cost
	m.cost = nc
	return d, true
}

func (m *lineMover) swap(posA, posB int) {
	ca, cb := m.cellAt[posA], m.cellAt[posB]
	m.cellAt[posA], m.cellAt[posB] = cb, ca
	m.posOf[ca], m.posOf[cb] = posB, posA
}

func (m *lineMover) Undo() {
	m.swap(m.mvA, m.mvB)
	m.cost = m.fullCost()
}

func (m *lineMover) Cost() float64 { return m.cost }

// TestRunImprovesToyProblem anneals the line ordering and checks the
// kernel actually optimises: final cost well below the random start.
func TestRunImprovesToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := newLineMover(40, rng)
	start := m.Cost()
	Run(m, Config{Effort: 1, Span: 40, Cells: 40, Nets: 39}, rng)
	if m.Cost() > 0.5*start {
		t.Fatalf("annealing did not improve: %v -> %v", start, m.Cost())
	}
	if got := m.fullCost(); got != m.Cost() {
		t.Fatalf("maintained cost %v != recomputed %v", m.Cost(), got)
	}
}

// TestRunDeterministic: same seed, same trajectory, same final state.
func TestRunDeterministic(t *testing.T) {
	run := func() []int {
		rng := rand.New(rand.NewSource(77))
		m := newLineMover(30, rng)
		Run(m, Config{Effort: 0.5, Span: 30, Cells: 30, Nets: 29}, rng)
		return m.posOf
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at cell %d", i)
		}
	}
}

// TestRunRefineKeepsGoodSolution: with Refine set, an already-optimal
// ordering must not be destroyed by the opening temperature.
func TestRunRefineKeepsGoodSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := &lineMover{posOf: make([]int, 30), cellAt: make([]int, 30)}
	for i := range m.posOf {
		m.posOf[i], m.cellAt[i] = i, i
	}
	m.cost = m.fullCost() // optimal: 29
	Run(m, Config{Effort: 0.5, Span: 30, Cells: 30, Nets: 29, Refine: true, RefineTempFraction: 0.1}, rng)
	if m.Cost() > 1.5*29 {
		t.Fatalf("refinement destroyed optimal solution: cost %v", m.Cost())
	}
}

// TestRunDisabled: zero cells or nets must leave the state untouched.
func TestRunDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := newLineMover(10, rng)
	before := append([]int(nil), m.posOf...)
	Run(m, Config{Effort: 1, Span: 10, Cells: 0, Nets: 5}, rng)
	Run(m, Config{Effort: 1, Span: 10, Cells: 10, Nets: 0}, rng)
	for i := range before {
		if m.posOf[i] != before[i] {
			t.Fatal("disabled run mutated state")
		}
	}
}
