package anneal

import (
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// batchLineMover extends the toy line mover with the batched protocol.
// With adversarial set, Claims reports the same single footprint key for
// every proposal — so within a batch everything after the first accepted
// commit conflicts — which is the livelock regression fixture: the kernel
// must still make serial progress through such a batch.
type batchLineMover struct {
	lineMover
	slotA, slotB []int
	adversarial  bool
}

func newBatchLineMover(n int, rng *rand.Rand, adversarial bool) *batchLineMover {
	m := &batchLineMover{adversarial: adversarial}
	m.posOf = make([]int, n)
	m.cellAt = make([]int, n)
	for i, p := range rng.Perm(n) {
		m.posOf[i] = p
		m.cellAt[p] = i
	}
	m.cost = m.fullCost()
	return m
}

func (m *batchLineMover) SetupBatch(workers, slots int) {
	m.slotA = make([]int, slots)
	m.slotB = make([]int, slots)
}

func (m *batchLineMover) Propose(rng *rand.Rand, rlim float64, slot int) bool {
	a := rng.Intn(len(m.posOf))
	posA := m.posOf[a]
	r := int(rlim)
	if r < 1 {
		r = 1
	}
	posB := Clamp(posA+rng.Intn(2*r+1)-r, 0, len(m.posOf)-1)
	if posA == posB {
		return false
	}
	m.slotA[slot], m.slotB[slot] = posA, posB
	return true
}

func (m *batchLineMover) Claims(slot int, buf []int64) []int64 {
	if m.adversarial {
		return append(buf, 0)
	}
	return append(buf, int64(m.slotA[slot]), int64(m.slotB[slot]))
}

// EvalSlot recomputes the chain cost with the slot's swap applied
// virtually — same loop and float operations as fullCost, so the frozen
// delta is bit-identical to what ApplySlot returns on unchanged state.
func (m *batchLineMover) EvalSlot(slot, w int) float64 {
	posA, posB := m.slotA[slot], m.slotB[slot]
	at := func(i int) float64 {
		p := m.posOf[i]
		if p == posA {
			p = posB
		} else if p == posB {
			p = posA
		}
		return float64(p)
	}
	c := 0.0
	for i := 0; i+1 < len(m.posOf); i++ {
		c += math.Abs(at(i) - at(i+1))
	}
	return c - m.cost
}

func (m *batchLineMover) ApplySlot(slot int) float64 {
	posA, posB := m.slotA[slot], m.slotB[slot]
	m.mvA, m.mvB = posA, posB
	m.swap(posA, posB)
	nc := m.fullCost()
	d := nc - m.cost
	m.cost = nc
	return d
}

// TestBatchedWorkerDeterminism: the batched kernel must yield the same
// final state AND the same move/accept/requeue statistics at 1, 2 and 8
// workers — workers change who evaluates, never what is decided.
func TestBatchedWorkerDeterminism(t *testing.T) {
	run := func(workers int) ([]int, RunStats) {
		rng := rand.New(rand.NewSource(321))
		m := newBatchLineMover(40, rng, false)
		stats := Run(m, Config{Effort: 1, Span: 40, Cells: 40, Nets: 39, Workers: workers}, rng)
		return append([]int(nil), m.posOf...), stats
	}
	basePos, baseStats := run(1)
	if baseStats.Batches == 0 || baseStats.Moves == 0 {
		t.Fatalf("batched path not exercised: %+v", baseStats)
	}
	for _, workers := range []int{2, 8} {
		pos, stats := run(workers)
		if !reflect.DeepEqual(basePos, pos) {
			t.Fatalf("final state at %d workers differs from serial", workers)
		}
		if stats != baseStats {
			t.Fatalf("stats at %d workers %+v differ from serial %+v", workers, stats, baseStats)
		}
	}
}

// TestBatchedImprovesAndStaysExact: quality and bookkeeping sanity of the
// batched protocol — the toy problem still optimises and the maintained
// cost matches a from-scratch recompute at the end.
func TestBatchedImprovesAndStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := newBatchLineMover(40, rng, false)
	start := m.Cost()
	Run(m, Config{Effort: 1, Span: 40, Cells: 40, Nets: 39, Workers: 3}, rng)
	if m.Cost() > 0.5*start {
		t.Fatalf("batched annealing did not improve: %v -> %v", start, m.Cost())
	}
	if got := m.fullCost(); got != m.Cost() {
		t.Fatalf("maintained cost %v != recomputed %v", m.Cost(), got)
	}
}

// TestAllConflictBatchProgress is the livelock regression: with an
// adversarial mover whose every proposal claims the same footprint key,
// all but the first accepted commit of each batch conflict. The kernel
// must resolve them serially in-batch (requeue + live re-evaluation),
// terminate, keep exact books, and still be worker-count deterministic.
func TestAllConflictBatchProgress(t *testing.T) {
	run := func(workers int) (*batchLineMover, RunStats) {
		rng := rand.New(rand.NewSource(99))
		m := newBatchLineMover(40, rng, true)
		stats := Run(m, Config{Effort: 1, Span: 40, Cells: 40, Nets: 39, Workers: workers}, rng)
		return m, stats
	}
	m, stats := run(1)
	if stats.Requeued == 0 {
		t.Fatal("adversarial claims produced no requeues")
	}
	if stats.Accepted == 0 {
		t.Fatal("all-conflict batches made no progress")
	}
	if stats.Requeued >= stats.Moves {
		t.Fatalf("every move requeued (%d of %d): first commit of a batch must be conflict-free",
			stats.Requeued, stats.Moves)
	}
	if got := m.fullCost(); got != m.Cost() {
		t.Fatalf("maintained cost %v != recomputed %v after requeues", m.Cost(), got)
	}
	mp, sp := run(8)
	if !reflect.DeepEqual(m.posOf, mp.posOf) || sp != stats {
		t.Fatal("adversarial run not deterministic across worker counts")
	}
}

// TestAfterBatchHook: the hook must run after every commit cycle, on the
// calling goroutine, with the mover's books exact at each call.
func TestAfterBatchHook(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := newBatchLineMover(30, rng, false)
	calls := 0
	stats := Run(m, Config{
		Effort: 0.5, Span: 30, Cells: 30, Nets: 29, Workers: 2,
		AfterBatch: func() {
			calls++
			if got := m.fullCost(); got != m.Cost() {
				t.Fatalf("batch %d: maintained cost %v != recomputed %v", calls, m.Cost(), got)
			}
		},
	}, rng)
	if calls != stats.Batches {
		t.Fatalf("AfterBatch ran %d times for %d batches", calls, stats.Batches)
	}
}

// TestBestStart: the multi-start pick depends only on the (cost, seed)
// pairs, never on completion order — shuffling the pairs must select the
// same winning pair, with ties broken towards the lower seed.
func TestBestStart(t *testing.T) {
	costs := []float64{7, 3, 5, 3, 9}
	seeds := []int64{50, 40, 30, 20, 10}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(costs))
		cs := make([]float64, len(costs))
		ss := make([]int64, len(seeds))
		for i, p := range perm {
			cs[i], ss[i] = costs[p], seeds[p]
		}
		best := BestStart(cs, ss)
		if cs[best] != 3 || ss[best] != 20 {
			t.Fatalf("trial %d: picked (%v, %d), want lowest cost 3 at lowest seed 20",
				trial, cs[best], ss[best])
		}
	}
}

// TestPool: every worker index runs exactly once per Run, across reuse.
func TestPool(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	for round := 0; round < 3; round++ {
		var mask atomic.Int32
		p.Run(func(w int) { mask.Or(1 << w) })
		if mask.Load() != 0b1111 {
			t.Fatalf("round %d: worker mask %b, want 1111", round, mask.Load())
		}
	}
	// A 1-worker pool runs inline.
	p1 := NewPool(1)
	defer p1.Close()
	ran := false
	p1.Run(func(w int) { ran = w == 0 })
	if !ran {
		t.Fatal("1-worker pool did not run inline as worker 0")
	}
}
