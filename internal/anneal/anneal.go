// Package anneal is the shared simulated-annealing kernel behind every
// placement-shaped optimisation in the repo: per-mode MDR placement and
// TPlace refinement (package place) and the paper's multi-mode combined
// placement (package merge). The kernel owns everything the three users
// used to duplicate — initial-temperature estimation from probed move
// deltas, the VPR-style adaptive schedule, the move/accept/undo loop and
// the range-limit adaptation — and is parameterised over a small Mover
// interface supplying the problem-specific parts: proposing a move,
// evaluating its cost delta incrementally, and undoing it.
//
// Hot-path contract for Mover implementations:
//
//   - TryMove must evaluate the delta *incrementally* (touch only the
//     nets/positions the move affects) and leave the move applied; the
//     kernel calls Undo to reject. After any accepted/rejected sequence
//     the maintained total must equal a from-scratch recompute exactly
//     (both users have property tests asserting this).
//   - TryMove must not allocate per call: affected-set deduplication and
//     undo snapshots live in scratch buffers owned by the Mover.
//   - Cost deltas must be accumulated over a deterministically ordered
//     (never map-ordered) affected set: float addition is not
//     associative, so a scheduler-dependent order would make seeded runs
//     irreproducible.
//
// The kernel itself draws from the caller's rng in a fixed order (one
// TryMove per probe/move, one Float64 per uphill move), so a seeded run
// is reproducible by construction.
//
// Movers that additionally implement BatchMover run under the batched
// parallel-move protocol (see parallel.go): fixed-size proposal batches
// evaluated concurrently against frozen state and committed serially in
// canonical order with footprint-based conflict detection. The batched
// protocol runs at EVERY worker count including 1 — workers change who
// evaluates, never what is decided — so same-seed results are
// byte-identical at any Config.Workers.
package anneal

import (
	"math"
	"math/rand"

	"repro/internal/obs"
)

// Mover is the problem-specific side of the annealing loop.
type Mover interface {
	// TryMove proposes a random move within the range limit rlim,
	// applies it, and returns its cost delta. ok is false when the
	// proposal was degenerate (no-op target, class mismatch); such an
	// attempt counts as neither tried nor accepted and must leave the
	// state untouched.
	TryMove(rng *rand.Rand, rlim float64) (delta float64, ok bool)
	// Undo reverts the last applied TryMove.
	Undo()
	// Cost returns the current total cost from the Mover's incremental
	// bookkeeping (called once per temperature round, not per move).
	Cost() float64
}

// Config sizes the schedule for one annealing run.
type Config struct {
	// Effort scales moves per temperature; 1.0 ≈ VPR inner_num 10.
	Effort float64
	// Span is the device span (width + height): the initial range limit
	// and the probe rlim.
	Span int
	// Cells is the number of movable objects (schedule sizing and probe
	// count). Zero disables annealing.
	Cells int
	// Nets is the number of cost-bearing nets; the stop criterion
	// compares the temperature against the cost per net. Zero disables
	// annealing (no net, nothing to optimise).
	Nets int
	// Refine starts from an existing good solution: the usual starting
	// temperature is scaled by RefineTempFraction and the range limit
	// opens at a quarter span, so the seed is improved, not destroyed.
	Refine bool
	// RefineTempFraction scales the probed starting temperature when
	// Refine is set (default 0.1).
	RefineTempFraction float64
	// WarmStart quenches an already-good seed (an ECO placement
	// transfer): the starting temperature is scaled by
	// WarmStartTempFraction and the range limit opens at an eighth of
	// the span — colder and tighter than Refine, so the baseline is
	// perturbed only where the edit demands it. When both Refine and
	// WarmStart are set, WarmStart wins.
	WarmStart bool
	// WarmStartTempFraction scales the probed starting temperature when
	// WarmStart is set (default 0.02).
	WarmStartTempFraction float64
	// Workers bounds the evaluation parallelism of the batched protocol
	// (BatchMovers only; plain Movers always run the serial loop). 0 or 1
	// evaluates inline on the calling goroutine. Workers never influence
	// results — only wall-clock — and so are excluded from artifact keys.
	Workers int
	// Pool, when non-nil, supplies the worker pool (overriding Workers)
	// so a multi-start caller can reuse one pool across runs.
	Pool *Pool
	// AfterBatch, when non-nil, is called on the calling goroutine after
	// each batch's commit phase (test hook: the incremental-vs-recompute
	// property tests audit the mover's books after every commit/requeue
	// cycle).
	AfterBatch func()
	// Obs, when non-nil, receives the run's RunStats as mm_anneal_*
	// metrics when Run returns. Observed only at the run boundary — the
	// move loop never touches it — so instrumentation can neither slow
	// the hot path nor perturb results. Never hashed into artifact keys.
	Obs *obs.Registry
}

// observe records one finished run's RunStats into the registry.
func observe(reg *obs.Registry, s *RunStats) {
	if reg == nil {
		return
	}
	reg.Counter("mm_anneal_runs_total", "Annealing runs.").Inc()
	reg.Histogram("mm_anneal_moves",
		"Proposed moves per annealing run.", obs.WorkBuckets).Observe(float64(s.Moves))
	reg.Histogram("mm_anneal_accepted",
		"Accepted moves per annealing run.", obs.WorkBuckets).Observe(float64(s.Accepted))
	reg.Histogram("mm_anneal_requeued",
		"Batch moves requeued after footprint conflicts, per annealing run.",
		obs.WorkBuckets).Observe(float64(s.Requeued))
	reg.Histogram("mm_anneal_batches",
		"Parallel-protocol batches per annealing run.", obs.WorkBuckets).
		Observe(float64(s.Batches))
}

// Run anneals the Mover's state in place: probe initial temperature,
// then rounds of Moves attempts with Metropolis acceptance until the
// schedule says the temperature is cold relative to the cost per net.
// BatchMovers run the batched parallel protocol (at any worker count);
// plain Movers run the classic serial loop.
func Run(mv Mover, cfg Config, rng *rand.Rand) RunStats {
	if cfg.Cells <= 0 || cfg.Nets <= 0 {
		return RunStats{}
	}
	span := cfg.Span

	// Estimate the initial temperature from probed (and undone) move
	// deltas: T0 = 20 σ (VPR).
	var deltas []float64
	for i := 0; i < cfg.Cells; i++ {
		d, ok := mv.TryMove(rng, float64(span))
		if !ok {
			continue
		}
		deltas = append(deltas, d)
		mv.Undo()
	}
	sch := NewSchedule(Stddev(deltas), span, cfg.Cells, cfg.Effort)
	switch {
	case cfg.WarmStart:
		frac := cfg.WarmStartTempFraction
		if frac <= 0 {
			frac = 0.02
		}
		sch.T *= frac
		sch.RLim = float64(span) / 8
		if sch.RLim < 1 {
			sch.RLim = 1
		}
		// A quench refines an already-good seed with local moves only;
		// the full VPR per-round budget is sized for untangling a random
		// start and would spend most of it re-proposing rejected uphill
		// moves at the cold temperature.
		sch.Moves /= 4
		if sch.Moves < 64 {
			sch.Moves = 64
		}
	case cfg.Refine:
		frac := cfg.RefineTempFraction
		if frac <= 0 {
			frac = 0.1
		}
		sch.T *= frac
		sch.RLim = float64(span) / 4
		if sch.RLim < 1 {
			sch.RLim = 1
		}
	}

	if bm, ok := mv.(BatchMover); ok {
		stats := runBatched(bm, cfg, sch, rng, span)
		observe(cfg.Obs, &stats)
		return stats
	}

	var stats RunStats
	for {
		for m := 0; m < sch.Moves; m++ {
			d, ok := mv.TryMove(rng, sch.RLim)
			if !ok {
				continue
			}
			stats.Moves++
			if d <= 0 || rng.Float64() < math.Exp(-d/sch.T) {
				sch.Record(true)
				stats.Accepted++
			} else {
				mv.Undo()
				sch.Record(false)
			}
		}
		if !sch.Next(mv.Cost()/float64(cfg.Nets), span) {
			break
		}
	}
	observe(cfg.Obs, &stats)
	return stats
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Stddev returns the standard deviation of xs (1 for an empty slice, so
// a degenerate probe still yields a usable starting temperature).
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return math.Sqrt(v / float64(len(xs)))
}
