package netlist

import (
	"fmt"

	"repro/internal/logic"
)

// Builder is a convenience layer over Netlist used by the workload
// generators. It exposes common gates and small arithmetic macros and
// maintains constant nodes lazily.
type Builder struct {
	N      *Netlist
	const0 int
	const1 int
	nGen   int
}

// NewBuilder returns a builder over a fresh netlist with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{N: New(name), const0: -1, const1: -1}
}

func (b *Builder) autoName(prefix string) string {
	b.nGen++
	return fmt.Sprintf("%s_%d", prefix, b.nGen)
}

// Input adds a primary input.
func (b *Builder) Input(name string) int { return b.N.AddInput(name) }

// Output marks a signal as a primary output.
func (b *Builder) Output(name string, sig int) { b.N.AddOutput(name, sig) }

// Const returns the constant-0 or constant-1 node, creating it on first use
// as a zero-input gate.
func (b *Builder) Const(v bool) int {
	if v {
		if b.const1 < 0 {
			b.const1 = b.N.AddGate("const1", logic.ConstTT(0, true))
		}
		return b.const1
	}
	if b.const0 < 0 {
		b.const0 = b.N.AddGate("const0", logic.ConstTT(0, false))
	}
	return b.const0
}

// Not returns NOT a.
func (b *Builder) Not(a int) int {
	return b.N.AddGate(b.autoName("not"), logic.VarTT(1, 0).Not(), a)
}

// Buf returns a buffer of a (identity gate); synthesis elides these.
func (b *Builder) Buf(a int) int {
	return b.N.AddGate(b.autoName("buf"), logic.VarTT(1, 0), a)
}

// And returns the conjunction of the given signals (at least one).
func (b *Builder) And(sigs ...int) int {
	return b.reduce("and", sigs, func(x, y logic.TT) logic.TT { return x.And(y) })
}

// Or returns the disjunction of the given signals (at least one).
func (b *Builder) Or(sigs ...int) int {
	return b.reduce("or", sigs, func(x, y logic.TT) logic.TT { return x.Or(y) })
}

// Xor returns the exclusive-or of the given signals (at least one).
func (b *Builder) Xor(sigs ...int) int {
	return b.reduce("xor", sigs, func(x, y logic.TT) logic.TT { return x.Xor(y) })
}

// reduce builds a balanced tree of 2-input gates combining sigs.
func (b *Builder) reduce(opName string, sigs []int, op func(x, y logic.TT) logic.TT) int {
	if len(sigs) == 0 {
		panic("netlist: builder " + opName + " with no operands")
	}
	cur := append([]int(nil), sigs...)
	fn2 := op(logic.VarTT(2, 0), logic.VarTT(2, 1))
	for len(cur) > 1 {
		var next []int
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, b.N.AddGate(b.autoName(opName), fn2, cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

// Nand returns NOT (a AND b).
func (b *Builder) Nand(a, c int) int {
	return b.N.AddGate(b.autoName("nand"), logic.VarTT(2, 0).And(logic.VarTT(2, 1)).Not(), a, c)
}

// Nor returns NOT (a OR b).
func (b *Builder) Nor(a, c int) int {
	return b.N.AddGate(b.autoName("nor"), logic.VarTT(2, 0).Or(logic.VarTT(2, 1)).Not(), a, c)
}

// Mux returns sel ? hi : lo.
func (b *Builder) Mux(sel, lo, hi int) int {
	s, l, h := logic.VarTT(3, 0), logic.VarTT(3, 1), logic.VarTT(3, 2)
	return b.N.AddGate(b.autoName("mux"), s.And(h).Or(s.Not().And(l)), sel, lo, hi)
}

// Latch adds a D flip-flop on d with initial value init.
func (b *Builder) Latch(d int, init bool) int {
	return b.N.AddLatch(b.autoName("ff"), d, init)
}

// NamedLatch adds a D flip-flop with an explicit name.
func (b *Builder) NamedLatch(name string, d int, init bool) int {
	return b.N.AddLatch(name, d, init)
}

// HalfAdder returns (sum, carry) of a+b.
func (b *Builder) HalfAdder(a, c int) (sum, carry int) {
	return b.Xor(a, c), b.And(a, c)
}

// FullAdder returns (sum, carry) of a+b+cin.
func (b *Builder) FullAdder(a, c, cin int) (sum, carry int) {
	s1 := b.Xor(a, c)
	sum = b.Xor(s1, cin)
	carry = b.Or(b.And(a, c), b.And(s1, cin))
	return sum, carry
}

// RippleAdd returns the (len(a)+1)-bit sum of the equal-width vectors a and
// b, least-significant bit first.
func (b *Builder) RippleAdd(a, c []int) []int {
	if len(a) != len(c) {
		panic(fmt.Sprintf("netlist: RippleAdd width mismatch %d vs %d", len(a), len(c)))
	}
	out := make([]int, 0, len(a)+1)
	carry := -1
	for i := range a {
		var s int
		if carry < 0 {
			s, carry = b.HalfAdder(a[i], c[i])
		} else {
			s, carry = b.FullAdder(a[i], c[i], carry)
		}
		out = append(out, s)
	}
	return append(out, carry)
}

// RippleSub returns the len(a)-bit two's-complement difference a-b (wrap on
// underflow), least-significant bit first.
func (b *Builder) RippleSub(a, c []int) []int {
	if len(a) != len(c) {
		panic(fmt.Sprintf("netlist: RippleSub width mismatch %d vs %d", len(a), len(c)))
	}
	out := make([]int, len(a))
	carry := b.Const(true)
	for i := range a {
		nb := b.Not(c[i])
		out[i], carry = b.FullAdder(a[i], nb, carry)
	}
	return out
}

// ConstVector returns a vector of constant nodes for the low width bits of
// value, least-significant bit first.
func (b *Builder) ConstVector(value int64, width int) []int {
	out := make([]int, width)
	for i := 0; i < width; i++ {
		out[i] = b.Const(value>>uint(i)&1 == 1)
	}
	return out
}

// InputVector adds width primary inputs named prefix[0..width).
func (b *Builder) InputVector(prefix string, width int) []int {
	out := make([]int, width)
	for i := 0; i < width; i++ {
		out[i] = b.Input(fmt.Sprintf("%s[%d]", prefix, i))
	}
	return out
}

// OutputVector declares the signals as primary outputs prefix[0..len).
func (b *Builder) OutputVector(prefix string, sigs []int) {
	for i, s := range sigs {
		b.Output(fmt.Sprintf("%s[%d]", prefix, i), s)
	}
}

// RegisterVector latches every signal in the vector.
func (b *Builder) RegisterVector(sigs []int) []int {
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i] = b.Latch(s, false)
	}
	return out
}

// EqualsConst returns a signal that is true when the vector equals the low
// len(vec) bits of value.
func (b *Builder) EqualsConst(vec []int, value int64) int {
	terms := make([]int, len(vec))
	for i, s := range vec {
		if value>>uint(i)&1 == 1 {
			terms[i] = b.Buf(s)
		} else {
			terms[i] = b.Not(s)
		}
	}
	return b.And(terms...)
}
