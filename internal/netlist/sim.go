package netlist

import "fmt"

// Simulator evaluates a netlist cycle by cycle. Latch state is held between
// Step calls; inputs are provided by name each cycle.
type Simulator struct {
	n     *Netlist
	order []int
	value []bool
	state map[int]bool // latch id -> current Q
}

// NewSimulator creates a simulator with all latches at their initial state.
func NewSimulator(n *Netlist) *Simulator {
	s := &Simulator{
		n:     n,
		order: n.TopoOrder(),
		value: make([]bool, len(n.Nodes)),
		state: map[int]bool{},
	}
	s.Reset()
	return s
}

// Reset restores every latch to its declared initial value.
func (s *Simulator) Reset() {
	for _, nd := range s.n.Nodes {
		if nd.Kind == KindLatch {
			s.state[nd.ID] = nd.Init
		}
	}
}

// Step applies one clock cycle: it evaluates the combinational logic with
// the given primary-input values and current latch state, returns the
// primary-output values, and then advances all latches.
func (s *Simulator) Step(inputs map[string]bool) map[string]bool {
	for _, id := range s.order {
		nd := s.n.Nodes[id]
		switch nd.Kind {
		case KindInput:
			v, ok := inputs[nd.Name]
			if !ok {
				panic(fmt.Sprintf("netlist: simulator missing value for input %q", nd.Name))
			}
			s.value[id] = v
		case KindLatch:
			s.value[id] = s.state[id]
		case KindGate:
			var row uint
			for i, f := range nd.Fanins {
				if s.value[f] {
					row |= 1 << uint(i)
				}
			}
			s.value[id] = nd.Func.Eval(row)
		}
	}
	out := make(map[string]bool, len(s.n.Outputs))
	for _, o := range s.n.Outputs {
		out[o.Name] = s.value[o.Driver]
	}
	for _, nd := range s.n.Nodes {
		if nd.Kind == KindLatch {
			s.state[nd.ID] = s.value[nd.Fanins[0]]
		}
	}
	return out
}

// Value returns the value computed for node id in the latest Step.
func (s *Simulator) Value(id int) bool { return s.value[id] }

// InputNames returns the primary input names of the simulated netlist.
func (s *Simulator) InputNames() []string {
	var names []string
	for _, nd := range s.n.Nodes {
		if nd.Kind == KindInput {
			names = append(names, nd.Name)
		}
	}
	return names
}
