// Package netlist provides the gate-level logic-network representation used
// by the front-end of the tool flow (synthesis and technology mapping), a
// builder API used by the workload generators, a cycle-accurate simulator
// used for equivalence checking, and a BLIF reader/writer.
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// Kind discriminates node types in a Netlist.
type Kind int

const (
	// KindInput is a primary input.
	KindInput Kind = iota
	// KindGate is a combinational node with a truth table over its fanins.
	KindGate
	// KindLatch is a D flip-flop: one fanin (D); the node value is Q.
	KindLatch
)

func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindGate:
		return "gate"
	case KindLatch:
		return "latch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one vertex of the logic network.
type Node struct {
	ID     int
	Kind   Kind
	Name   string
	Fanins []int    // node IDs; for gates len == Func.NumVars, for latches len == 1
	Func   logic.TT // gate function (gates only)
	Init   bool     // latch initial state
}

// Output is a named primary output driven by a node.
type Output struct {
	Name   string
	Driver int // node ID
}

// Netlist is a logic network: a DAG of gates and latches over primary
// inputs, with named primary outputs. Latches break combinational cycles.
type Netlist struct {
	Name    string
	Nodes   []*Node
	Outputs []Output
	byName  map[string]int
}

// New creates an empty netlist with the given model name.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: map[string]int{}}
}

// AddInput appends a primary input node and returns its ID.
func (n *Netlist) AddInput(name string) int {
	return n.addNode(&Node{Kind: KindInput, Name: name})
}

// AddGate appends a combinational node computing fn over the fanins and
// returns its ID.
func (n *Netlist) AddGate(name string, fn logic.TT, fanins ...int) int {
	if len(fanins) != fn.NumVars {
		panic(fmt.Sprintf("netlist: gate %q has %d fanins for a %d-var function", name, len(fanins), fn.NumVars))
	}
	for _, f := range fanins {
		n.check(f)
	}
	return n.addNode(&Node{Kind: KindGate, Name: name, Fanins: append([]int(nil), fanins...), Func: fn})
}

// AddLatch appends a D flip-flop with the given data fanin and initial
// state, returning its ID (the Q signal).
func (n *Netlist) AddLatch(name string, d int, init bool) int {
	n.check(d)
	return n.addNode(&Node{Kind: KindLatch, Name: name, Fanins: []int{d}, Init: init})
}

// AddLatchPlaceholder appends a latch whose data fanin is wired later with
// SetLatchData, enabling feedback loops. The placeholder fanin is the latch
// itself (a legal self-loop) until patched.
func (n *Netlist) AddLatchPlaceholder(name string, init bool) int {
	node := &Node{Kind: KindLatch, Name: name, Init: init}
	id := n.addNode(node)
	node.Fanins = []int{id}
	return id
}

// SetLatchData wires the data input of a latch created earlier.
func (n *Netlist) SetLatchData(latch, d int) {
	n.check(latch)
	n.check(d)
	if n.Nodes[latch].Kind != KindLatch {
		panic(fmt.Sprintf("netlist: SetLatchData on non-latch node %d", latch))
	}
	n.Nodes[latch].Fanins[0] = d
}

// AddOutput declares node driver as the primary output called name.
func (n *Netlist) AddOutput(name string, driver int) {
	n.check(driver)
	n.Outputs = append(n.Outputs, Output{Name: name, Driver: driver})
}

func (n *Netlist) addNode(node *Node) int {
	node.ID = len(n.Nodes)
	if node.Name == "" {
		node.Name = fmt.Sprintf("n%d", node.ID)
	}
	if _, dup := n.byName[node.Name]; dup {
		node.Name = fmt.Sprintf("%s_%d", node.Name, node.ID)
	}
	n.byName[node.Name] = node.ID
	n.Nodes = append(n.Nodes, node)
	return node.ID
}

func (n *Netlist) check(id int) {
	if id < 0 || id >= len(n.Nodes) {
		panic(fmt.Sprintf("netlist: node id %d out of range (have %d nodes)", id, len(n.Nodes)))
	}
}

// Reconstruct builds a netlist from raw parts — nodes in ID order (node
// i must carry ID i) plus the primary outputs — rebuilding the name index
// that the builder API normally maintains. It is the entry point for
// decoders (internal/codec) that materialise a netlist from a serialised
// form rather than growing it node by node; unlike AddGate it accepts
// forward fanin references (a gate may read a later latch's Q), so the
// whole node set is checked at once with Validate before returning.
func Reconstruct(name string, nodes []*Node, outputs []Output) (*Netlist, error) {
	n := &Netlist{Name: name, Nodes: nodes, Outputs: outputs, byName: make(map[string]int, len(nodes))}
	for i, nd := range nodes {
		if nd == nil {
			return nil, fmt.Errorf("netlist: Reconstruct: node %d is nil", i)
		}
		if nd.ID != i {
			return nil, fmt.Errorf("netlist: Reconstruct: node at index %d has ID %d", i, nd.ID)
		}
		if _, dup := n.byName[nd.Name]; dup {
			return nil, fmt.Errorf("netlist: Reconstruct: duplicate node name %q", nd.Name)
		}
		n.byName[nd.Name] = i
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: Reconstruct: %w", err)
	}
	return n, nil
}

// NodeByName returns the ID of the node with the given name.
func (n *Netlist) NodeByName(name string) (int, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// Inputs returns the IDs of the primary inputs in creation order.
func (n *Netlist) Inputs() []int {
	var ids []int
	for _, nd := range n.Nodes {
		if nd.Kind == KindInput {
			ids = append(ids, nd.ID)
		}
	}
	return ids
}

// CountKind returns the number of nodes of the given kind.
func (n *Netlist) CountKind(k Kind) int {
	c := 0
	for _, nd := range n.Nodes {
		if nd.Kind == k {
			c++
		}
	}
	return c
}

// Fanouts computes, for every node, the IDs of nodes that consume it.
func (n *Netlist) Fanouts() [][]int {
	fo := make([][]int, len(n.Nodes))
	for _, nd := range n.Nodes {
		for _, f := range nd.Fanins {
			fo[f] = append(fo[f], nd.ID)
		}
	}
	return fo
}

// TopoOrder returns the node IDs in a topological order of the
// combinational DAG: inputs and latches first (their Q values are state),
// then gates so that every gate follows all of its fanins. It panics on a
// combinational cycle.
func (n *Netlist) TopoOrder() []int {
	order := make([]int, 0, len(n.Nodes))
	state := make([]int8, len(n.Nodes)) // 0 unvisited, 1 visiting, 2 done
	var visit func(int)
	visit = func(id int) {
		switch state[id] {
		case 2:
			return
		case 1:
			panic(fmt.Sprintf("netlist: combinational cycle through node %d (%s)", id, n.Nodes[id].Name))
		}
		state[id] = 1
		if n.Nodes[id].Kind == KindGate {
			for _, f := range n.Nodes[id].Fanins {
				visit(f)
			}
		}
		state[id] = 2
		order = append(order, id)
	}
	// Visit latch data fanins and outputs so dead logic is ordered too.
	for _, nd := range n.Nodes {
		visit(nd.ID)
		if nd.Kind == KindLatch {
			visit(nd.Fanins[0])
		}
	}
	return order
}

// Depth returns the maximum number of gates on any register-to-register,
// input-to-register or input-to-output combinational path.
func (n *Netlist) Depth() int {
	depth := make([]int, len(n.Nodes))
	max := 0
	for _, id := range n.TopoOrder() {
		nd := n.Nodes[id]
		if nd.Kind != KindGate {
			depth[id] = 0
			continue
		}
		d := 0
		for _, f := range nd.Fanins {
			if depth[f] > d {
				d = depth[f]
			}
		}
		depth[id] = d + 1
		if depth[id] > max {
			max = depth[id]
		}
	}
	return max
}

// Stats summarises a netlist for reporting.
type Stats struct {
	Inputs, Outputs, Gates, Latches, Depth int
}

// Stats returns summary statistics of the netlist.
func (n *Netlist) Stats() Stats {
	return Stats{
		Inputs:  n.CountKind(KindInput),
		Outputs: len(n.Outputs),
		Gates:   n.CountKind(KindGate),
		Latches: n.CountKind(KindLatch),
		Depth:   n.Depth(),
	}
}

// Validate checks structural invariants: fanin arities match function
// arities, IDs are in range, latches have one fanin, gate fanin counts are
// within logic.MaxVars, and the combinational part is acyclic.
func (n *Netlist) Validate() error {
	for _, nd := range n.Nodes {
		for _, f := range nd.Fanins {
			if f < 0 || f >= len(n.Nodes) {
				return fmt.Errorf("node %d (%s): fanin %d out of range", nd.ID, nd.Name, f)
			}
		}
		switch nd.Kind {
		case KindGate:
			if len(nd.Fanins) != nd.Func.NumVars {
				return fmt.Errorf("node %d (%s): %d fanins but %d-var function", nd.ID, nd.Name, len(nd.Fanins), nd.Func.NumVars)
			}
			if nd.Func.NumVars > logic.MaxVars {
				return fmt.Errorf("node %d (%s): arity %d exceeds max %d", nd.ID, nd.Name, nd.Func.NumVars, logic.MaxVars)
			}
		case KindLatch:
			if len(nd.Fanins) != 1 {
				return fmt.Errorf("latch %d (%s): %d fanins, want 1", nd.ID, nd.Name, len(nd.Fanins))
			}
		case KindInput:
			if len(nd.Fanins) != 0 {
				return fmt.Errorf("input %d (%s): has fanins", nd.ID, nd.Name)
			}
		}
	}
	for _, o := range n.Outputs {
		if o.Driver < 0 || o.Driver >= len(n.Nodes) {
			return fmt.Errorf("output %s: driver %d out of range", o.Name, o.Driver)
		}
	}
	// TopoOrder panics on cycles; convert to error.
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		n.TopoOrder()
		return nil
	}()
	return err
}

// SortedOutputs returns the outputs sorted by name (for deterministic
// iteration in reports and tests).
func (n *Netlist) SortedOutputs() []Output {
	outs := append([]Output(nil), n.Outputs...)
	sort.Slice(outs, func(i, j int) bool { return outs[i].Name < outs[j].Name })
	return outs
}
