package netlist

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/logic"
)

func TestBuildAndStats(t *testing.T) {
	b := NewBuilder("adder")
	a := b.InputVector("a", 4)
	c := b.InputVector("b", 4)
	sum := b.RippleAdd(a, c)
	b.OutputVector("s", sum)
	st := b.N.Stats()
	if st.Inputs != 8 || st.Outputs != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if err := b.N.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimRippleAdd(t *testing.T) {
	b := NewBuilder("adder")
	a := b.InputVector("a", 6)
	c := b.InputVector("b", 6)
	sum := b.RippleAdd(a, c)
	b.OutputVector("s", sum)
	sim := NewSimulator(b.N)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		av, bv := rng.Intn(64), rng.Intn(64)
		in := map[string]bool{}
		for i := 0; i < 6; i++ {
			in[keyOf("a", i)] = av>>uint(i)&1 == 1
			in[keyOf("b", i)] = bv>>uint(i)&1 == 1
		}
		out := sim.Step(in)
		got := 0
		for i := 0; i < 7; i++ {
			if out[keyOf("s", i)] {
				got |= 1 << uint(i)
			}
		}
		if got != av+bv {
			t.Fatalf("%d+%d = %d, got %d", av, bv, av+bv, got)
		}
	}
}

func TestSimRippleSub(t *testing.T) {
	b := NewBuilder("sub")
	a := b.InputVector("a", 5)
	c := b.InputVector("b", 5)
	d := b.RippleSub(a, c)
	b.OutputVector("d", d)
	sim := NewSimulator(b.N)
	for av := 0; av < 32; av += 3 {
		for bv := 0; bv < 32; bv += 5 {
			in := map[string]bool{}
			for i := 0; i < 5; i++ {
				in[keyOf("a", i)] = av>>uint(i)&1 == 1
				in[keyOf("b", i)] = bv>>uint(i)&1 == 1
			}
			out := sim.Step(in)
			got := 0
			for i := 0; i < 5; i++ {
				if out[keyOf("d", i)] {
					got |= 1 << uint(i)
				}
			}
			want := (av - bv) & 31
			if got != want {
				t.Fatalf("%d-%d mod 32 = %d, got %d", av, bv, want, got)
			}
		}
	}
}

func keyOf(prefix string, i int) string {
	return fmt.Sprintf("%s[%d]", prefix, i)
}

func TestLatchCounter(t *testing.T) {
	// 2-bit counter built from latches, an inverter and an xor; forward
	// references require wiring the latch fanins manually.
	n := New("cnt")
	l0 := n.AddLatchPlaceholder("q0", false)
	l1 := n.AddLatchPlaceholder("q1", false)
	inv := n.AddGate("d0", logic.VarTT(1, 0).Not(), l0)
	x := n.AddGate("d1", logic.VarTT(2, 0).Xor(logic.VarTT(2, 1)), l0, l1)
	n.SetLatchData(l0, inv)
	n.SetLatchData(l1, x)
	n.AddOutput("q0", l0)
	n.AddOutput("q1", l1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(n)
	want := []int{0, 1, 2, 3, 0, 1}
	for cyc, w := range want {
		out := sim.Step(nil)
		got := 0
		if out["q0"] {
			got |= 1
		}
		if out["q1"] {
			got |= 2
		}
		if got != w {
			t.Fatalf("cycle %d: counter = %d, want %d", cyc, got, w)
		}
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	b := NewBuilder("topo")
	x := b.Input("x")
	y := b.Not(x)
	z := b.And(x, y)
	b.Output("z", z)
	pos := map[int]int{}
	for i, id := range b.N.TopoOrder() {
		pos[id] = i
	}
	if pos[y] < pos[x] || pos[z] < pos[y] {
		t.Fatalf("topological order violated: %v", pos)
	}
}

func TestDepth(t *testing.T) {
	b := NewBuilder("depth")
	x := b.Input("x")
	s := x
	for i := 0; i < 5; i++ {
		s = b.Not(s)
	}
	b.Output("y", s)
	if d := b.N.Depth(); d != 5 {
		t.Fatalf("Depth = %d, want 5", d)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	n := New("cyc")
	in := n.AddInput("in")
	g1 := n.AddGate("g1", logic.VarTT(1, 0), in)
	g2 := n.AddGate("g2", logic.VarTT(1, 0), g1)
	n.Nodes[g1].Fanins[0] = g2
	if err := n.Validate(); err == nil {
		t.Fatal("expected cycle detection")
	}
}

func TestDuplicateNamesDisambiguated(t *testing.T) {
	n := New("dup")
	a := n.AddInput("x")
	bID := n.AddInput("x")
	if n.Nodes[a].Name == n.Nodes[bID].Name {
		t.Fatal("duplicate node names not disambiguated")
	}
}

func TestEqualsConst(t *testing.T) {
	b := NewBuilder("eq")
	v := b.InputVector("v", 4)
	e := b.EqualsConst(v, 0b1010)
	b.Output("e", e)
	sim := NewSimulator(b.N)
	for val := 0; val < 16; val++ {
		in := map[string]bool{}
		for i := 0; i < 4; i++ {
			in[keyOf("v", i)] = val>>uint(i)&1 == 1
		}
		out := sim.Step(in)
		if out["e"] != (val == 0b1010) {
			t.Fatalf("EqualsConst(%04b) = %v", val, out["e"])
		}
	}
}

func TestMuxGate(t *testing.T) {
	b := NewBuilder("mux")
	s := b.Input("s")
	lo := b.Input("lo")
	hi := b.Input("hi")
	b.Output("y", b.Mux(s, lo, hi))
	sim := NewSimulator(b.N)
	for row := 0; row < 8; row++ {
		in := map[string]bool{
			"s":  row&1 == 1,
			"lo": row&2 == 2,
			"hi": row&4 == 4,
		}
		want := in["lo"]
		if in["s"] {
			want = in["hi"]
		}
		if out := sim.Step(in); out["y"] != want {
			t.Fatalf("mux row %03b: got %v want %v", row, out["y"], want)
		}
	}
}
