package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const sampleBLIF = `
# a 2-bit counter with an enable
.model cnt2
.inputs en
.outputs q0 q1
.latch d0 q0 re clk 0
.latch d1 q1 re clk 0
.names en q0 d0
10 1
01 1
.names en q0 q1 d1
110 1
0-1 1
101 1
.end
`

func TestReadBLIF(t *testing.T) {
	n, err := ReadBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "cnt2" {
		t.Errorf("model name %q", n.Name)
	}
	st := n.Stats()
	if st.Inputs != 1 || st.Outputs != 2 || st.Latches != 2 || st.Gates != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestBLIFCounterBehaviour(t *testing.T) {
	n, err := ReadBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(n)
	// d0 = en XOR q0, d1 = (en AND q0) XOR q1: a 2-bit counter when en=1.
	for cyc := 0; cyc < 8; cyc++ {
		out := sim.Step(map[string]bool{"en": true})
		got := 0
		if out["q0"] {
			got |= 1
		}
		if out["q1"] {
			got |= 2
		}
		if want := cyc % 4; got != want {
			t.Fatalf("cycle %d: got %d want %d", cyc, got, want)
		}
	}
	// With en=0 the counter holds.
	sim.Reset()
	for cyc := 0; cyc < 3; cyc++ {
		out := sim.Step(map[string]bool{"en": false})
		if out["q0"] || out["q1"] {
			t.Fatalf("cycle %d: counter moved with en=0", cyc)
		}
	}
}

func TestBLIFMixedCoverRejected(t *testing.T) {
	bad := `.model m
.inputs a b
.outputs y
.names a b y
11 1
00 0
.end`
	if _, err := ReadBLIF(strings.NewReader(bad)); err == nil {
		t.Fatal("expected mixed-cover error")
	}
}

func TestBLIFOffsetCover(t *testing.T) {
	src := `.model m
.inputs a b
.outputs y
.names a b y
11 0
.end`
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(n)
	for row := 0; row < 4; row++ {
		in := map[string]bool{"a": row&1 == 1, "b": row&2 == 2}
		want := !(in["a"] && in["b"])
		if out := sim.Step(in); out["y"] != want {
			t.Fatalf("row %d: got %v want %v", row, out["y"], want)
		}
	}
}

func TestBLIFUndrivenSignal(t *testing.T) {
	bad := `.model m
.inputs a
.outputs y
.names a ghost y
11 1
.end`
	if _, err := ReadBLIF(strings.NewReader(bad)); err == nil {
		t.Fatal("expected undriven-signal error")
	}
}

func TestBLIFRoundTripEquivalence(t *testing.T) {
	// Build a random sequential netlist, write BLIF, read it back and check
	// cycle-by-cycle IO equivalence on random stimulus.
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder("rand")
	sigs := b.InputVector("in", 5)
	for i := 0; i < 40; i++ {
		x := sigs[rng.Intn(len(sigs))]
		y := sigs[rng.Intn(len(sigs))]
		var s int
		switch rng.Intn(5) {
		case 0:
			s = b.And(x, y)
		case 1:
			s = b.Or(x, y)
		case 2:
			s = b.Xor(x, y)
		case 3:
			s = b.Not(x)
		default:
			s = b.Latch(x, rng.Intn(2) == 0)
		}
		sigs = append(sigs, s)
	}
	for i := 0; i < 4; i++ {
		b.Output(keyOf("out", i), sigs[len(sigs)-1-i])
	}

	var buf bytes.Buffer
	if err := WriteBLIF(&buf, b.N); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}

	s1 := NewSimulator(b.N)
	s2 := NewSimulator(n2)
	for cyc := 0; cyc < 64; cyc++ {
		in := map[string]bool{}
		for i := 0; i < 5; i++ {
			in[keyOf("in", i)] = rng.Intn(2) == 0
		}
		o1 := s1.Step(in)
		o2 := s2.Step(in)
		for k, v := range o1 {
			if o2[k] != v {
				t.Fatalf("cycle %d output %s: original %v, round-trip %v", cyc, k, v, o2[k])
			}
		}
	}
}

func TestBLIFLineContinuation(t *testing.T) {
	src := ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.CountKind(KindInput) != 2 {
		t.Fatalf("inputs = %d, want 2", n.CountKind(KindInput))
	}
}

func TestBLIFConstantGate(t *testing.T) {
	src := ".model m\n.outputs y\n.names y\n1\n.end\n"
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(n)
	if out := sim.Step(nil); !out["y"] {
		t.Fatal("constant-1 gate read as 0")
	}
}
