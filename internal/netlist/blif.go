package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
)

// WriteBLIF serialises the netlist in the Berkeley Logic Interchange Format
// (.model/.inputs/.outputs/.names/.latch/.end), the standard academic
// exchange format used by the MCNC benchmarks and VPR-era tool flows.
func WriteBLIF(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", n.Name)

	fmt.Fprint(bw, ".inputs")
	for _, nd := range n.Nodes {
		if nd.Kind == KindInput {
			fmt.Fprintf(bw, " %s", nd.Name)
		}
	}
	fmt.Fprintln(bw)

	fmt.Fprint(bw, ".outputs")
	for _, o := range n.Outputs {
		fmt.Fprintf(bw, " %s", o.Name)
	}
	fmt.Fprintln(bw)

	// Output drivers may need aliasing when an output name differs from the
	// driving node's name; emit identity .names for those.
	sig := func(id int) string { return n.Nodes[id].Name }

	for _, nd := range n.Nodes {
		switch nd.Kind {
		case KindLatch:
			init := 0
			if nd.Init {
				init = 1
			}
			fmt.Fprintf(bw, ".latch %s %s re clk %d\n", sig(nd.Fanins[0]), nd.Name, init)
		case KindGate:
			fmt.Fprint(bw, ".names")
			for _, f := range nd.Fanins {
				fmt.Fprintf(bw, " %s", sig(f))
			}
			fmt.Fprintf(bw, " %s\n", nd.Name)
			writeCover(bw, nd.Func)
		}
	}
	for _, o := range n.Outputs {
		if sig(o.Driver) != o.Name {
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", sig(o.Driver), o.Name)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// writeCover emits the on-set cover of fn as BLIF plane rows.
func writeCover(w io.Writer, fn logic.TT) {
	if fn.NumVars == 0 {
		if fn.IsConst1() {
			fmt.Fprintln(w, "1")
		}
		// const0: empty cover.
		return
	}
	sop := logic.Minimize(fn)
	for _, c := range sop.Cubes {
		var sb strings.Builder
		for v := 0; v < fn.NumVars; v++ {
			switch {
			case c.Mask>>uint(v)&1 == 0:
				sb.WriteByte('-')
			case c.Value>>uint(v)&1 == 1:
				sb.WriteByte('1')
			default:
				sb.WriteByte('0')
			}
		}
		fmt.Fprintf(w, "%s 1\n", sb.String())
	}
}

// ReadBLIF parses a single-model BLIF description. Supported constructs:
// .model, .inputs, .outputs, .names (on-set and off-set covers), .latch,
// .end, comments (#) and line continuations (\). Unsupported directives
// return an error.
func ReadBLIF(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	var lines []string
	var cont strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, "\\") {
			cont.WriteString(strings.TrimSuffix(line, "\\"))
			cont.WriteByte(' ')
			continue
		}
		cont.WriteString(line)
		lines = append(lines, cont.String())
		cont.Reset()
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}

	type rawGate struct {
		ins   []string
		out   string
		cover [][2]string // pattern, value
	}
	type rawLatch struct {
		in, out string
		init    bool
	}
	var (
		modelName string
		inputs    []string
		outputs   []string
		gates     []*rawGate
		latches   []rawLatch
	)
	var curGate *rawGate
	for _, line := range lines {
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				modelName = fields[1]
			}
			curGate = nil
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
			curGate = nil
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
			curGate = nil
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: .names with no signals")
			}
			g := &rawGate{ins: fields[1 : len(fields)-1], out: fields[len(fields)-1]}
			gates = append(gates, g)
			curGate = g
		case ".latch":
			if len(fields) < 3 {
				return nil, fmt.Errorf("blif: malformed .latch %q", line)
			}
			l := rawLatch{in: fields[1], out: fields[2]}
			last := fields[len(fields)-1]
			if last == "1" {
				l.init = true
			}
			latches = append(latches, l)
			curGate = nil
		case ".end":
			curGate = nil
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("blif: unsupported directive %q", fields[0])
			}
			if curGate == nil {
				return nil, fmt.Errorf("blif: cover row outside .names: %q", line)
			}
			switch len(fields) {
			case 1: // zero-input constant cover
				curGate.cover = append(curGate.cover, [2]string{"", fields[0]})
			case 2:
				curGate.cover = append(curGate.cover, [2]string{fields[0], fields[1]})
			default:
				return nil, fmt.Errorf("blif: malformed cover row %q", line)
			}
		}
	}

	n := New(modelName)
	ids := map[string]int{}
	for _, in := range inputs {
		ids[in] = n.AddInput(in)
	}

	// Latch outputs act like state inputs for ordering purposes; create the
	// latch nodes after everything else but pre-reserve their names by
	// resolving signals lazily. We build gates in dependency order using
	// iterative resolution.
	producedBy := map[string]int{} // signal -> gate index
	for i, g := range gates {
		producedBy[g.out] = i
	}
	// Placeholder latch nodes first (their fanin is patched later) so gates
	// can reference latch Q signals.
	latchIDs := make([]int, len(latches))
	for i, l := range latches {
		// Temporary fanin: itself is not possible; use a dummy that we patch.
		latchIDs[i] = n.addNode(&Node{Kind: KindLatch, Name: l.out, Fanins: []int{0}, Init: l.init})
		ids[l.out] = latchIDs[i]
	}

	built := make([]bool, len(gates))
	var buildGate func(i int) error
	buildGate = func(i int) error {
		if built[i] {
			return nil
		}
		built[i] = true // set early; cycles through latches are fine, pure gate cycles will fail Validate
		g := gates[i]
		for _, in := range g.ins {
			if _, ok := ids[in]; !ok {
				j, isGate := producedBy[in]
				if !isGate {
					return fmt.Errorf("blif: undriven signal %q", in)
				}
				if err := buildGate(j); err != nil {
					return err
				}
				if _, ok := ids[in]; !ok {
					return fmt.Errorf("blif: combinational cycle through signal %q", in)
				}
			}
		}
		fn, err := coverToTT(len(g.ins), g.cover)
		if err != nil {
			return fmt.Errorf("blif: gate %q: %w", g.out, err)
		}
		fanins := make([]int, len(g.ins))
		for k, in := range g.ins {
			fanins[k] = ids[in]
		}
		ids[g.out] = n.AddGate(g.out, fn, fanins...)
		return nil
	}
	for i := range gates {
		if err := buildGate(i); err != nil {
			return nil, err
		}
	}
	// Patch latch fanins.
	for i, l := range latches {
		id, ok := ids[l.in]
		if !ok {
			return nil, fmt.Errorf("blif: latch %q: undriven data signal %q", l.out, l.in)
		}
		n.Nodes[latchIDs[i]].Fanins[0] = id
	}
	for _, o := range outputs {
		id, ok := ids[o]
		if !ok {
			return nil, fmt.Errorf("blif: undriven output %q", o)
		}
		n.AddOutput(o, id)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("blif: invalid netlist: %w", err)
	}
	return n, nil
}

// coverToTT converts a BLIF cover to a truth table. All rows must agree on
// the output value (single-output on-set or off-set cover).
func coverToTT(numIns int, cover [][2]string) (logic.TT, error) {
	if numIns > logic.MaxVars {
		return logic.TT{}, fmt.Errorf("%d inputs exceed max %d", numIns, logic.MaxVars)
	}
	if len(cover) == 0 {
		return logic.ConstTT(numIns, false), nil
	}
	onSet := cover[0][1] == "1"
	acc := logic.ConstTT(numIns, false)
	for _, row := range cover {
		pat, val := row[0], row[1]
		if (val == "1") != onSet {
			return logic.TT{}, fmt.Errorf("mixed on/off-set cover")
		}
		if len(pat) != numIns {
			return logic.TT{}, fmt.Errorf("cover row %q has %d columns, want %d", pat, len(pat), numIns)
		}
		cube := logic.ConstTT(numIns, true)
		for v := 0; v < numIns; v++ {
			switch pat[v] {
			case '1':
				cube = cube.And(logic.VarTT(numIns, v))
			case '0':
				cube = cube.And(logic.VarTT(numIns, v).Not())
			case '-':
			default:
				return logic.TT{}, fmt.Errorf("bad cover char %q", pat[v])
			}
		}
		acc = acc.Or(cube)
	}
	if !onSet {
		acc = acc.Not()
	}
	return acc, nil
}

// SignalNames returns all node names sorted, primarily for tests.
func (n *Netlist) SignalNames() []string {
	names := make([]string, 0, len(n.Nodes))
	for _, nd := range n.Nodes {
		names = append(names, nd.Name)
	}
	sort.Strings(names)
	return names
}
