// Command mmstored serves a content-addressed artifact store over HTTP —
// the shared remote tier of a compile fleet. Workers started with
// `mmserved -remotestore http://host:port` fall through to it on local
// misses and push their results back, so any artifact one fleet member
// compiled is a fetch, not a recompute, for every other member.
//
// Endpoints:
//
//	GET  /blob/{key} — artifact payload (X-Mm-Sum carries its SHA-256);
//	                   404 for unknown or locally-corrupt keys
//	PUT  /blob/{key} — store an artifact (checksummed end to end)
//	GET  /healthz    — liveness probe
//	GET  /stats      — store counters (hits, misses, corruption, bytes)
//
// Keys are hashes of compile inputs, so the store needs no eviction
// coordination with its clients: a capped store silently forgets cold
// artifacts and the fleet recomputes them.
//
// Usage:
//
//	mmstored [-addr :8434] [-dir DIR] [-maxmb MB] [-logjson]
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8434", "listen address")
	dir := flag.String("dir", "", "store directory (empty: a temporary directory, deleted on exit)")
	maxmb := flag.Int64("maxmb", 0, "store size cap in MiB (0: uncapped)")
	logjson := flag.Bool("logjson", false, "emit structured JSON logs on stderr instead of human-readable lines")
	flag.Parse()

	var log *slog.Logger
	if *logjson {
		log = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	if *dir == "" {
		tmp, err := os.MkdirTemp("", "mmstored-")
		if err != nil {
			fatal(log, err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	st, err := store.Open(*dir, *maxmb<<20)
	if err != nil {
		fatal(log, err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           store.Handler(st),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Info("serving artifacts", "addr", *addr, "dir", st.Root(), "cap_mb", *maxmb)
		done <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(log, err)
		}
	case <-ctx.Done():
		log.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fatal(log, err)
		}
	}
}

func fatal(log *slog.Logger, err error) {
	log.Error("fatal", "err", err)
	os.Exit(1)
}
