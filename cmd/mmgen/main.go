// Command mmgen generates the benchmark circuits of the experiments and
// writes them as BLIF files, so they can be fed back through cmd/mmflow or
// inspected with other tools.
//
// Usage:
//
//	mmgen -suite regexp|fir|mcnc [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gen/firgen"
	"repro/internal/gen/mcncgen"
	"repro/internal/gen/regexgen"
	"repro/internal/netlist"
)

func main() {
	suite := flag.String("suite", "regexp", "benchmark suite: regexp, fir or mcnc")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var nls []*netlist.Netlist
	switch *suite {
	case "regexp":
		for _, r := range regexgen.BleedingEdgeRules() {
			n, err := regexgen.Generate(r.Name, r.Pattern, regexgen.Options{})
			if err != nil {
				fatal(err)
			}
			nls = append(nls, n)
		}
	case "fir":
		for i := 0; i < 10; i++ {
			lp := firgen.DefaultSpec(firgen.LowPass, int64(i))
			n, err := firgen.Generate(fmt.Sprintf("lp%d", i), lp, firgen.Design(lp))
			if err != nil {
				fatal(err)
			}
			nls = append(nls, n)
			hp := firgen.DefaultSpec(firgen.HighPass, int64(100+i))
			m, err := firgen.Generate(fmt.Sprintf("hp%d", i), hp, firgen.Design(hp))
			if err != nil {
				fatal(err)
			}
			nls = append(nls, m)
		}
	case "mcnc":
		for _, spec := range mcncgen.Suite() {
			n, err := mcncgen.Generate(spec)
			if err != nil {
				fatal(err)
			}
			nls = append(nls, n)
		}
	default:
		fatal(fmt.Errorf("unknown suite %q", *suite))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, n := range nls {
		path := filepath.Join(*out, n.Name+".blif")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := netlist.WriteBLIF(f, n); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st := n.Stats()
		fmt.Printf("%s: %d gates, %d latches, %d inputs, %d outputs\n",
			path, st.Gates, st.Latches, st.Inputs, st.Outputs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmgen:", err)
	os.Exit(1)
}
