// Command mmflow runs the multi-mode tool flow on BLIF mode descriptions:
// it synthesises and maps every mode, sizes a shared reconfigurable
// region, implements the modes with MDR and with the paper's DCS flow
// (combined placement + TPlace + TRoute), and reports reconfiguration-bit
// and wirelength comparisons.
//
// Usage:
//
//	mmflow [-k 4] [-effort 0.5] [-seed 1] [-objective wire|edge] mode1.blif mode2.blif [...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/flow"
	"repro/internal/merge"
	"repro/internal/mode"
	"repro/internal/netlist"
)

func main() {
	k := flag.Int("k", 4, "LUT inputs")
	effort := flag.Float64("effort", 0.5, "annealing effort (1.0 = VPR-like)")
	seed := flag.Int64("seed", 1, "random seed")
	objective := flag.String("objective", "wire", "combined-placement objective: wire or edge")
	verbose := flag.Bool("v", false, "print per-connection activation functions")
	flag.Parse()

	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "mmflow: need at least two BLIF mode files")
		flag.Usage()
		os.Exit(2)
	}
	obj := merge.WireLength
	if *objective == "edge" {
		obj = merge.EdgeMatch
	}

	var nls []*netlist.Netlist
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		n, err := netlist.ReadBLIF(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		nls = append(nls, n)
	}

	cfg := flow.Config{K: *k, PlaceEffort: *effort, Seed: *seed}
	mapped, err := flow.MapModes(nls, cfg)
	if err != nil {
		fatal(err)
	}
	for i, c := range mapped {
		fmt.Printf("mode %d (%s): %d LUTs, %d FFs, %d PIs, %d POs\n",
			i, c.Name, c.NumBlocks(), c.NumFFs(), c.NumPIs(), len(c.POs))
	}

	cmp, err := flow.RunComparison("multimode", mapped, cfg)
	if err != nil {
		fatal(err)
	}
	region, mdr := cmp.Region, cmp.MDR
	fmt.Printf("region: %dx%d CLBs, channel width %d (min %d), %d routing bits, %d LUT bits\n",
		region.Arch.Width, region.Arch.Height, region.Arch.W, region.MinW,
		region.Graph.NumRoutingBits, region.Arch.TotalLUTBits())
	fmt.Printf("MDR: reconfig %d bits (whole region), avg mode wirelength %.0f segments\n",
		mdr.ReconfigBits, mdr.AvgWire)

	dcs := cmp.WireLen
	if obj == merge.EdgeMatch {
		dcs = cmp.EdgeMatch
	}
	st := dcs.Merge.Tunable.Stats()
	fmt.Printf("DCS (%s): %d TLUTs, %d tunable connections (%d shared across all modes)\n",
		obj, st.NumTLUTs, st.NumConns, st.SharedConns)
	fmt.Printf("DCS: reconfig %d bits (%d LUT + %d parameterised routing), avg mode wirelength %.0f\n",
		dcs.ReconfigBits, region.Arch.TotalLUTBits(), dcs.TRoute.ParamRoutingBits, dcs.AvgWire)
	fmt.Printf("speed-up vs MDR: %.2fx   wirelength vs MDR: %.0f%%\n",
		flow.Speedup(mdr, dcs), 100*flow.WireRatio(mdr, dcs))

	if *verbose {
		fmt.Println("tunable connections:")
		nm := dcs.Merge.Tunable.NumModes
		for _, cn := range dcs.Merge.Tunable.Conns {
			fmt.Printf("  %v -> %v  activation %s\n", cn.Src, cn.Dst, cn.Act.Expression(nm))
		}
		_ = mode.Set(0)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmflow:", err)
	os.Exit(1)
}
