// Command mmflow runs the multi-mode tool flow on BLIF mode descriptions:
// it synthesises and maps every mode, sizes a shared reconfigurable
// region, implements the modes with MDR and with the paper's DCS flow
// (combined placement + TPlace + TRoute), and reports reconfiguration-bit
// and wirelength comparisons plus the N×N switch-cost matrix.
//
// With two or more BLIF files it is the N-mode smoke-test tool: any mode
// that fails to place or route makes the command exit non-zero, and -json
// emits the full result (or the failure) as machine-readable JSON on
// stdout.
//
// The compilation itself is internal/service's Compile — the same engine
// mmserved exposes over HTTP. -remote URL submits the modes to a running
// mmserved instead of compiling locally (same request, same response
// schema), and -cachedir backs the local run with a persistent artifact
// store so placements computed today are reused tomorrow.
//
// Usage:
//
//	mmflow [-k 4] [-effort 0.5] [-refinefrac 0.1] [-seed 1] [-objective wire|edge]
//	       [-routej 2] [-placej 2] [-starts 4] [-json] [-cachedir DIR]
//	       [-remote http://host:8433] mode1.blif mode2.blif [...]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	k := flag.Int("k", 4, "LUT inputs")
	effort := flag.Float64("effort", 0.5, "annealing effort (1.0 = VPR-like)")
	refineFrac := flag.Float64("refinefrac", 0, "TPlace refinement opening-temperature fraction (0 = kernel default 0.1)")
	seed := flag.Int64("seed", 1, "random seed")
	objective := flag.String("objective", "wire", "combined-placement objective: wire or edge")
	routej := flag.Int("routej", 1, "parallel workers inside each PathFinder route (results are byte-identical at any value)")
	placej := flag.Int("placej", 1, "parallel workers inside each annealing kernel (results are byte-identical at any value)")
	starts := flag.Int("starts", 1, "independently seeded anneals per placement, best kept (changes results)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON on stdout")
	verbose := flag.Bool("v", false, "print per-connection activation functions (local runs only)")
	cachedir := flag.String("cachedir", "", "persistent artifact-store directory for placements (local runs)")
	baseline := flag.String("baseline", "", "baseline key of a prior compile (needs -cachedir): recompile as an ECO delta, falling back to a cold compile if the baseline is unusable")
	remote := flag.String("remote", "", "delegate compilation to a running mmserved (e.g. http://localhost:8433)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of the flow stages to this file (local runs only; open with chrome://tracing or Perfetto)")
	flag.Parse()

	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "mmflow: need at least two BLIF mode files")
		flag.Usage()
		os.Exit(2)
	}

	req := &service.CompileRequest{
		K: *k, Effort: *effort, RefineFrac: *refineFrac, Seed: *seed, Objective: *objective,
		RouteWorkers: *routej, PlaceWorkers: *placej, Starts: *starts, BaselineKey: *baseline,
	}
	for _, path := range flag.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fail(*jsonOut, nil, err)
		}
		req.Modes = append(req.Modes, service.Mode{BLIF: string(text)})
	}

	var res *service.Result
	var cmp *flow.Comparison
	var err error
	if *remote != "" {
		if *traceFile != "" {
			fmt.Fprintln(os.Stderr, "mmflow: -trace is local-only (the daemon does not ship span data); ignoring")
		}
		res, err = compileRemote(*remote, req)
	} else {
		cache := flow.NewCache()
		if *cachedir != "" {
			st, serr := store.Open(*cachedir, 0)
			if serr != nil {
				fail(*jsonOut, nil, serr)
			}
			cache = flow.NewCacheWithStore(st)
		}
		var tr *obs.Trace
		if *traceFile != "" {
			tr = obs.NewTrace()
		}
		res, cmp, err = service.CompileEnv(req, service.Env{Cache: cache, Trace: tr})
		if terr := writeTrace(*traceFile, tr); terr != nil && err == nil {
			err = terr
		}
	}
	if err != nil {
		fail(*jsonOut, res, err)
	}

	if *jsonOut {
		emit(res)
		return
	}
	render(res)
	if *verbose {
		if cmp == nil {
			fmt.Fprintln(os.Stderr, "mmflow: -v needs a fresh local run (remote and warm-cached results carry no tunable-circuit internals)")
		} else {
			dcs := cmp.WireLen
			if res.DCS != nil && res.DCS.Objective == "edge-match" {
				dcs = cmp.EdgeMatch
			}
			fmt.Println("tunable connections:")
			nm := dcs.Merge.Tunable.NumModes
			for _, cn := range dcs.Merge.Tunable.Conns {
				fmt.Printf("  %v -> %v  activation %s\n", cn.Src, cn.Dst, cn.Act.Expression(nm))
			}
		}
	}
}

// writeTrace dumps the trace as Chrome trace-event JSON. A nil trace (or
// empty path) is a no-op, so callers can invoke it unconditionally.
func writeTrace(path string, tr *obs.Trace) error {
	if path == "" || tr == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compileRemote submits the request to a running mmserved and decodes the
// shared response schema.
func compileRemote(base string, req *service.CompileRequest) (*service.Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 30 * time.Minute} // full-effort compiles are slow
	resp, err := client.Post(base+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("remote %s: %w", base, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("remote %s: %w", base, err)
	}
	var res service.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("remote %s: status %d: %s", base, resp.StatusCode, data)
	}
	if res.Error != "" {
		return &res, fmt.Errorf("remote %s: %s", base, res.Error)
	}
	if resp.StatusCode != http.StatusOK {
		return &res, fmt.Errorf("remote %s: status %d", base, resp.StatusCode)
	}
	return &res, nil
}

// render prints the human-readable report from the wire-schema result —
// remote and local runs produce identical output by construction.
func render(res *service.Result) {
	for i, m := range res.Modes {
		fmt.Printf("mode %d (%s): %d LUTs, %d FFs, %d PIs, %d POs\n",
			i, m.Name, m.LUTs, m.FFs, m.PIs, m.POs)
	}
	if res.Region == nil || res.MDR == nil || res.DCS == nil {
		return
	}
	fmt.Printf("region: %dx%d CLBs, channel width %d (min %d), %d routing bits, %d LUT bits\n",
		res.Region.Side, res.Region.Side, res.Region.ChannelW, res.Region.MinW,
		res.Region.RoutingBits, res.Region.LUTBits)
	fmt.Printf("MDR: reconfig %d bits (whole region), avg mode wirelength %.0f segments\n",
		res.MDR.ReconfigBits, res.MDR.AvgWire)
	fmt.Printf("DCS (%s): %d TLUTs, %d tunable connections (%d shared across all modes)\n",
		res.DCS.Objective, res.DCS.TLUTs, res.DCS.Conns, res.DCS.SharedConns)
	fmt.Printf("DCS: reconfig %d bits (%d LUT + %d parameterised routing), avg mode wirelength %.0f\n",
		res.DCS.ReconfigBits, res.Region.LUTBits, res.DCS.ParamRoutingBits, res.DCS.AvgWire)
	fmt.Printf("speed-up vs MDR: %.2fx   wirelength vs MDR: %.0f%%\n",
		res.SpeedupVsMDR, 100*res.WireVsMDR)
	if ri := res.Routing; ri != nil {
		fmt.Printf("router: %d iterations, %d reroutes over %d connections, peak overuse %d\n",
			ri.Iterations, ri.Rerouted, ri.Connections, ri.PeakOveruse)
	}
	if d := res.Delta; d != nil {
		if d.BaselineMiss {
			fmt.Println("delta: baseline unusable, compiled cold")
		} else {
			fmt.Printf("delta: %d placements reused, %d transferred, %d nets warm-routed\n",
				d.ReusedModes, d.PlaceTransfers, d.WarmRouteNets)
		}
	}
	if res.BaselineKey != "" {
		fmt.Printf("baseline key: %s\n", res.BaselineKey)
	}
	if len(res.Timings) > 0 {
		fmt.Printf("stages:")
		for _, st := range res.Timings {
			fmt.Printf(" %s %.0fms", st.Stage, st.Millis)
			if st.Count > 1 {
				fmt.Printf(" (x%d)", st.Count)
			}
		}
		fmt.Println()
	}
	if sw := res.SwitchCost; sw != nil {
		if sw.MDRDiff == nil {
			fmt.Fprintf(os.Stderr, "mmflow: diff switch matrix unavailable: %s\n", sw.MDRDiffError)
		}
		printMatrix("MDR diff", sw.MDRDiff)
		printMatrix("DCS", sw.DCS)
	}
}

func printMatrix(label string, m flow.SwitchMatrix) {
	if m == nil {
		return
	}
	from, to, worst := m.Worst()
	fmt.Printf("%s switch cost: avg %.1f bits, worst %d (%d->%d)\n", label, m.Avg(), worst, from, to)
	m.FprintRows(os.Stdout, "  ")
}

// fail reports an error and exits non-zero; under -json the error rides
// in the result document on stdout (with any partial fields the flow
// produced before failing).
func fail(jsonOut bool, res *service.Result, err error) {
	if jsonOut {
		if res == nil {
			res = &service.Result{}
		}
		if res.Error == "" {
			res.Error = err.Error()
		}
		emit(res)
	} else {
		fmt.Fprintln(os.Stderr, "mmflow:", err)
	}
	os.Exit(1)
}

func emit(res *service.Result) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintln(os.Stderr, "mmflow:", err)
		os.Exit(1)
	}
}
