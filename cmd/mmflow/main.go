// Command mmflow runs the multi-mode tool flow on BLIF mode descriptions:
// it synthesises and maps every mode, sizes a shared reconfigurable
// region, implements the modes with MDR and with the paper's DCS flow
// (combined placement + TPlace + TRoute), and reports reconfiguration-bit
// and wirelength comparisons plus the N×N switch-cost matrix.
//
// With two or more BLIF files it is the N-mode smoke-test tool: any mode
// that fails to place or route makes the command exit non-zero, and -json
// emits the full result (or the failure) as machine-readable JSON on
// stdout.
//
// Usage:
//
//	mmflow [-k 4] [-effort 0.5] [-refinefrac 0.1] [-seed 1] [-objective wire|edge] [-json] mode1.blif mode2.blif [...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/flow"
	"repro/internal/merge"
	"repro/internal/mode"
	"repro/internal/netlist"
)

// output is the -json document. Error is set (and every other field
// possibly partial) when the flow fails; the process then exits non-zero.
type output struct {
	Error string     `json:"error,omitempty"`
	Modes []modeInfo `json:"modes,omitempty"`

	Region *regionInfo `json:"region,omitempty"`
	MDR    *mdrInfo    `json:"mdr,omitempty"`
	DCS    *dcsInfo    `json:"dcs,omitempty"`

	SpeedupVsMDR float64 `json:"speedup_vs_mdr,omitempty"`
	WireVsMDR    float64 `json:"wire_vs_mdr,omitempty"`

	// Switch-cost matrices: bits rewritten per mode transition
	// (row = from, column = to).
	SwitchCost *switchInfo `json:"switch_cost,omitempty"`
}

type modeInfo struct {
	Name string `json:"name"`
	LUTs int    `json:"luts"`
	FFs  int    `json:"ffs"`
	PIs  int    `json:"pis"`
	POs  int    `json:"pos"`
}

type regionInfo struct {
	Side        int `json:"side"`
	ChannelW    int `json:"channel_width"`
	MinW        int `json:"min_channel_width"`
	RoutingBits int `json:"routing_bits"`
	LUTBits     int `json:"lut_bits"`
}

type mdrInfo struct {
	ReconfigBits int     `json:"reconfig_bits"`
	AvgWire      float64 `json:"avg_wire"`
}

type dcsInfo struct {
	Objective        string  `json:"objective"`
	TLUTs            int     `json:"tluts"`
	Conns            int     `json:"tunable_connections"`
	SharedConns      int     `json:"shared_connections"`
	ReconfigBits     int     `json:"reconfig_bits"`
	ParamRoutingBits int     `json:"param_routing_bits"`
	AvgWire          float64 `json:"avg_wire"`
}

type switchInfo struct {
	MDRFull  flow.SwitchMatrix `json:"mdr_full"`
	MDRDiff  flow.SwitchMatrix `json:"mdr_diff,omitempty"`
	DCS      flow.SwitchMatrix `json:"dcs"`
	DCSAvg   float64           `json:"dcs_avg"`
	DCSWorst int               `json:"dcs_worst"`
}

func main() {
	k := flag.Int("k", 4, "LUT inputs")
	effort := flag.Float64("effort", 0.5, "annealing effort (1.0 = VPR-like)")
	refineFrac := flag.Float64("refinefrac", 0, "TPlace refinement opening-temperature fraction (0 = kernel default 0.1)")
	seed := flag.Int64("seed", 1, "random seed")
	objective := flag.String("objective", "wire", "combined-placement objective: wire or edge")
	jsonOut := flag.Bool("json", false, "emit the result as JSON on stdout")
	verbose := flag.Bool("v", false, "print per-connection activation functions")
	flag.Parse()

	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "mmflow: need at least two BLIF mode files")
		flag.Usage()
		os.Exit(2)
	}
	obj := merge.WireLength
	if *objective == "edge" {
		obj = merge.EdgeMatch
	}

	var out output
	fail := func(err error) {
		if *jsonOut {
			out.Error = err.Error()
			emit(&out)
		} else {
			fmt.Fprintln(os.Stderr, "mmflow:", err)
		}
		os.Exit(1)
	}

	var nls []*netlist.Netlist
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		n, err := netlist.ReadBLIF(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		nls = append(nls, n)
	}

	cfg := flow.Config{K: *k, PlaceEffort: *effort, RefineTempFraction: *refineFrac, Seed: *seed}
	mapped, err := flow.MapModes(nls, cfg)
	if err != nil {
		fail(err)
	}
	for i, c := range mapped {
		out.Modes = append(out.Modes, modeInfo{
			Name: c.Name, LUTs: c.NumBlocks(), FFs: c.NumFFs(), PIs: c.NumPIs(), POs: len(c.POs),
		})
		if !*jsonOut {
			fmt.Printf("mode %d (%s): %d LUTs, %d FFs, %d PIs, %d POs\n",
				i, c.Name, c.NumBlocks(), c.NumFFs(), c.NumPIs(), len(c.POs))
		}
	}

	// A mode that cannot be placed and routed anywhere makes RunComparison
	// fail; that is the smoke-test condition this command reports with a
	// non-zero exit.
	cmp, err := flow.RunComparison("multimode", mapped, cfg)
	if err != nil {
		fail(fmt.Errorf("mode set does not route: %w", err))
	}
	region, mdr := cmp.Region, cmp.MDR
	dcs := cmp.WireLen
	if obj == merge.EdgeMatch {
		dcs = cmp.EdgeMatch
	}
	st := dcs.Merge.Tunable.Stats()
	n := len(mapped)

	out.Region = &regionInfo{
		Side: region.Arch.Width, ChannelW: region.Arch.W, MinW: region.MinW,
		RoutingBits: region.Graph.NumRoutingBits, LUTBits: region.Arch.TotalLUTBits(),
	}
	out.MDR = &mdrInfo{ReconfigBits: mdr.ReconfigBits, AvgWire: mdr.AvgWire}
	out.DCS = &dcsInfo{
		Objective: fmt.Sprint(obj), TLUTs: st.NumTLUTs, Conns: st.NumConns, SharedConns: st.SharedConns,
		ReconfigBits: dcs.ReconfigBits, ParamRoutingBits: dcs.TRoute.ParamRoutingBits, AvgWire: dcs.AvgWire,
	}
	out.SpeedupVsMDR = flow.Speedup(mdr, dcs)
	out.WireVsMDR = flow.WireRatio(mdr, dcs)

	sw := &switchInfo{
		MDRFull: flow.MDRSwitchMatrix(region, n),
		DCS:     flow.DCSSwitchMatrix(region.Arch, dcs.TRoute, n),
	}
	if diff, err := flow.MDRDiffSwitchMatrix(region, mapped, mdr); err == nil {
		sw.MDRDiff = diff
	} else {
		// stderr in both modes: the JSON document lives on stdout, and a
		// silently missing mdr_diff would be indistinguishable from a
		// schema change for the consumer.
		fmt.Fprintf(os.Stderr, "mmflow: diff switch matrix unavailable: %v\n", err)
	}
	sw.DCSAvg = sw.DCS.Avg()
	_, _, sw.DCSWorst = sw.DCS.Worst()
	out.SwitchCost = sw

	if *jsonOut {
		emit(&out)
		return
	}

	fmt.Printf("region: %dx%d CLBs, channel width %d (min %d), %d routing bits, %d LUT bits\n",
		region.Arch.Width, region.Arch.Height, region.Arch.W, region.MinW,
		region.Graph.NumRoutingBits, region.Arch.TotalLUTBits())
	fmt.Printf("MDR: reconfig %d bits (whole region), avg mode wirelength %.0f segments\n",
		mdr.ReconfigBits, mdr.AvgWire)
	fmt.Printf("DCS (%s): %d TLUTs, %d tunable connections (%d shared across all modes)\n",
		obj, st.NumTLUTs, st.NumConns, st.SharedConns)
	fmt.Printf("DCS: reconfig %d bits (%d LUT + %d parameterised routing), avg mode wirelength %.0f\n",
		dcs.ReconfigBits, region.Arch.TotalLUTBits(), dcs.TRoute.ParamRoutingBits, dcs.AvgWire)
	fmt.Printf("speed-up vs MDR: %.2fx   wirelength vs MDR: %.0f%%\n",
		flow.Speedup(mdr, dcs), 100*flow.WireRatio(mdr, dcs))
	printMatrix := func(label string, m flow.SwitchMatrix) {
		if m == nil {
			return
		}
		from, to, worst := m.Worst()
		fmt.Printf("%s switch cost: avg %.1f bits, worst %d (%d->%d)\n", label, m.Avg(), worst, from, to)
		m.FprintRows(os.Stdout, "  ")
	}
	printMatrix("MDR diff", sw.MDRDiff)
	printMatrix("DCS", sw.DCS)

	if *verbose {
		fmt.Println("tunable connections:")
		nm := dcs.Merge.Tunable.NumModes
		for _, cn := range dcs.Merge.Tunable.Conns {
			fmt.Printf("  %v -> %v  activation %s\n", cn.Src, cn.Dst, cn.Act.Expression(nm))
		}
		_ = mode.Set(0)
	}
}

func emit(out *output) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "mmflow:", err)
		os.Exit(1)
	}
}
