// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document on stdout, so CI can archive benchmark
// results as machine-readable artifacts and the performance trajectory of
// the repo accumulates run over run.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkSweep -benchtime 1x . | benchjson > BENCH_sweep.json
//
// Each benchmark line ("BenchmarkX-8  10  123 ns/op  4.5 metric") becomes
// one entry holding the iteration count and every value/unit pair,
// including custom b.ReportMetric units.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Commit and Date stamp which tree the numbers came from, so an
	// archived report is interpretable without its CI run context.
	Commit  string   `json:"commit,omitempty"`
	Date    string   `json:"date,omitempty"`
	Pass    bool     `json:"pass"`
	Results []Result `json:"results"`
}

// commitSHA resolves the commit to stamp: the -commit flag wins, then
// the GITHUB_SHA environment CI sets, then a best-effort git call.
func commitSHA(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	commit := flag.String("commit", "", "commit SHA to stamp (default: $GITHUB_SHA, then git rev-parse HEAD)")
	flag.Parse()

	rep := Report{
		Results: []Result{},
		Commit:  commitSHA(*commit),
		Date:    time.Now().UTC().Format("2006-01-02T15:04:05Z"),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case line == "PASS":
			rep.Pass = true
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkName-8 10 123 ns/op 4.5 unit ..." into a
// Result. Lines that do not follow the go test format are skipped.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	// The remainder alternates value unit [value unit ...].
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
