// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document on stdout, so CI can archive benchmark
// results as machine-readable artifacts and the performance trajectory of
// the repo accumulates run over run.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkSweep -benchtime 1x . | benchjson > BENCH_sweep.json
//
// Each benchmark line ("BenchmarkX-8  10  123 ns/op  4.5 metric") becomes
// one entry holding the iteration count and every value/unit pair,
// including custom b.ReportMetric units.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line, or the median of several lines of the
// same name (go test -count=N repeats each benchmark N times).
type Result struct {
	Name string `json:"name"`
	Runs int    `json:"runs"`
	// Samples is the number of repeated lines folded into this entry; 1
	// (omitted) for a single-run benchmark, N under -count=N.
	Samples int                `json:"samples,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Commit and Date stamp which tree the numbers came from, so an
	// archived report is interpretable without its CI run context.
	Commit  string   `json:"commit,omitempty"`
	Date    string   `json:"date,omitempty"`
	Pass    bool     `json:"pass"`
	Results []Result `json:"results"`
}

// commitSHA resolves the commit to stamp: the -commit flag wins, then
// the GITHUB_SHA environment CI sets, then a best-effort git call.
func commitSHA(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	commit := flag.String("commit", "", "commit SHA to stamp (default: $GITHUB_SHA, then git rev-parse HEAD)")
	flag.Parse()

	rep := Report{
		Results: []Result{},
		Commit:  commitSHA(*commit),
		Date:    time.Now().UTC().Format("2006-01-02T15:04:05Z"),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case line == "PASS":
			rep.Pass = true
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Results = mergeMedians(rep.Results)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// mergeMedians collapses repeated benchmark lines of the same name — what
// `go test -count=N` emits — into one entry per name holding the
// per-metric median, so archived speedup-x figures reflect the typical
// run, not single-run noise. Order of first appearance is preserved;
// single-sample entries pass through unchanged.
func mergeMedians(results []Result) []Result {
	byName := map[string][]Result{}
	var order []string
	for _, r := range results {
		if _, seen := byName[r.Name]; !seen {
			order = append(order, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r)
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		group := byName[name]
		if len(group) == 1 {
			out = append(out, group[0])
			continue
		}
		m := Result{Name: name, Samples: len(group), Metrics: map[string]float64{}}
		var runs []float64
		values := map[string][]float64{}
		for _, r := range group {
			runs = append(runs, float64(r.Runs))
			for unit, v := range r.Metrics {
				values[unit] = append(values[unit], v)
			}
		}
		m.Runs = int(median(runs))
		for unit, vs := range values {
			m.Metrics[unit] = median(vs)
		}
		out = append(out, m)
	}
	return out
}

// median returns the middle value (the mean of the two middles for an
// even count).
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// parseBenchLine parses "BenchmarkName-8 10 123 ns/op 4.5 unit ..." into a
// Result. Lines that do not follow the go test format are skipped.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	// The remainder alternates value unit [value unit ...].
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
