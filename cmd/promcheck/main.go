// Command promcheck validates Prometheus text exposition read on stdin:
// it checks the format invariants (TYPE before samples, no duplicate
// series, cumulative monotone histogram buckets with a +Inf bound that
// matches _count) and, with -require, that specific metric families are
// present. CI pipes `curl /metrics` through it so a regression in the
// exposition or a silently dropped series fails the build.
//
// Usage:
//
//	curl -s localhost:8433/metrics | promcheck -require mm_requests_total,mm_compile_seconds
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	flag.Parse()

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal(err)
	}
	stats, err := obs.ValidateText(data)
	if err != nil {
		fatal(fmt.Errorf("invalid exposition: %w", err))
	}
	missing := 0
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !stats.Has(name) {
			fmt.Fprintf(os.Stderr, "promcheck: required family %q missing\n", name)
			missing++
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok (%d families, %d series)\n", len(stats.Families), stats.Series)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promcheck:", err)
	os.Exit(1)
}
