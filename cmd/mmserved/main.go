// Command mmserved is the long-running compile daemon: it keeps one
// flow.Cache — optionally backed by a persistent content-addressed
// artifact store — warm across requests, so repeated compilations of the
// same modes are served from cached placements and identical requests in
// flight share a single flow execution.
//
// Endpoints:
//
//	POST /compile — service.CompileRequest JSON in, service.Result out
//	GET  /healthz — liveness probe
//	GET  /stats   — request counters + cache statistics
//	GET  /metrics — Prometheus text exposition of the same counters plus
//	                request-latency histograms and route/anneal work
//	GET  /debug/pprof/* — profiling (only with -pprof)
//
// `mmflow -remote http://host:port ...` submits its BLIF modes here
// instead of compiling locally.
//
// Fleet roles. With -remotestore the worker layers a shared remote
// artifact tier (served by mmstored, or another mmserved's /blob/ view
// of its cachedir) over its local store: artifacts any fleet member
// compiled are fetched instead of recomputed, and local results are
// pushed back write-through. With -backends the process is a dispatcher
// instead of a worker: it shards /compile requests over the listed
// workers by request key (rendezvous hashing, so fleet-wide in-flight
// dedup keeps working), sheds overload with 503 + Retry-After, and
// retries transient backend failures on the next replica.
//
// Usage:
//
//	mmserved [-addr :8433] [-j N] [-cachedir DIR] [-cachemb MB]
//	         [-remotestore URL] [-queue N] [-pprof] [-logjson]
//	mmserved -backends http://w1:8433,http://w2:8433 [-addr :8432] [-queue N]
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8433", "listen address")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "maximum concurrent compile executions")
	cachedir := flag.String("cachedir", "", "persistent artifact-store directory for graphs, placements and compile results (empty: in-memory cache only, or a temporary directory with -remotestore)")
	cachemb := flag.Int64("cachemb", 0, "artifact-store size cap in MiB (0: uncapped)")
	remotestore := flag.String("remotestore", "", "base URL of a shared remote artifact store (mmstored); local misses fall through to it and local results are pushed back")
	queue := flag.Int("queue", 0, "admission queue depth beyond the worker pool; excess requests are shed with 503 + Retry-After (0: unbounded)")
	backends := flag.String("backends", "", "comma-separated worker URLs: run as a dispatcher sharding /compile over them instead of compiling locally")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof profiling under /debug/pprof/")
	logjson := flag.Bool("logjson", false, "emit structured JSON logs on stderr instead of human-readable lines")
	flag.Parse()

	log := newLogger(*logjson)

	if *backends != "" {
		runDispatcher(log, *addr, strings.Split(*backends, ","), *queue)
		return
	}

	cache := flow.NewCache()
	if *cachedir == "" && *remotestore != "" {
		// The remote tier write-through needs a local store to land in;
		// give a stateless worker a throwaway one.
		dir, err := os.MkdirTemp("", "mmserved-cache-")
		if err != nil {
			fatal(log, err)
		}
		defer os.RemoveAll(dir)
		*cachedir = dir
	}
	if *cachedir != "" {
		st, err := store.Open(*cachedir, *cachemb<<20)
		if err != nil {
			fatal(log, err)
		}
		if *remotestore != "" {
			st.AttachRemote(store.NewRemote(*remotestore, 0))
			log.Info("remote store attached", "url", *remotestore)
		}
		cache = flow.NewCacheWithStore(st)
		log.Info("artifact store opened", "dir", st.Root(), "cap_mb", *cachemb)
	}

	srv := service.NewServer(cache, *jobs)
	srv.SetQueueLimit(*queue)
	srv.Instrument(obs.NewRegistry())
	if *pprofOn {
		srv.EnablePprof()
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then let
	// in-flight compiles finish (bounded, so clients are not cut off
	// mid-response).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "workers", *jobs)
		done <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(log, err)
		}
	case <-ctx.Done():
		log.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fatal(log, err)
		}
		log.Info("done", "final_stats", cache.Stats().String())
	}
}

// runDispatcher serves the fleet front door: requests shard over the
// worker backends by request key and overload is shed, never queued
// unboundedly.
func runDispatcher(log *slog.Logger, addr string, backends []string, queue int) {
	opts := service.DefaultDispatchOptions()
	if queue > 0 {
		opts.QueueLimit = queue
	}
	d, err := service.NewDispatcher(backends, opts)
	if err != nil {
		fatal(log, err)
	}
	defer d.Close()
	d.Instrument(obs.NewRegistry())
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           d.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Info("dispatching", "addr", addr, "backends", backends, "queue", opts.QueueLimit)
		done <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(log, err)
		}
	case <-ctx.Done():
		log.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fatal(log, err)
		}
	}
}

// newLogger builds the daemon's stderr logger: human-readable text by
// default, one-JSON-object-per-line under -logjson (for log shippers).
func newLogger(asJSON bool) *slog.Logger {
	if asJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func fatal(log *slog.Logger, err error) {
	log.Error("fatal", "err", err)
	os.Exit(1)
}
