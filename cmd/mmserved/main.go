// Command mmserved is the long-running compile daemon: it keeps one
// flow.Cache — optionally backed by a persistent content-addressed
// artifact store — warm across requests, so repeated compilations of the
// same modes are served from cached placements and identical requests in
// flight share a single flow execution.
//
// Endpoints:
//
//	POST /compile — service.CompileRequest JSON in, service.Result out
//	GET  /healthz — liveness probe
//	GET  /stats   — request counters + cache statistics
//	GET  /metrics — Prometheus text exposition of the same counters plus
//	                request-latency histograms and route/anneal work
//	GET  /debug/pprof/* — profiling (only with -pprof)
//
// `mmflow -remote http://host:port ...` submits its BLIF modes here
// instead of compiling locally.
//
// Usage:
//
//	mmserved [-addr :8433] [-j N] [-cachedir DIR] [-cachemb MB] [-pprof] [-logjson]
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8433", "listen address")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "maximum concurrent compile executions")
	cachedir := flag.String("cachedir", "", "persistent artifact-store directory for graphs, placements and compile results (empty: in-memory cache only)")
	cachemb := flag.Int64("cachemb", 0, "artifact-store size cap in MiB (0: uncapped)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof profiling under /debug/pprof/")
	logjson := flag.Bool("logjson", false, "emit structured JSON logs on stderr instead of human-readable lines")
	flag.Parse()

	log := newLogger(*logjson)

	cache := flow.NewCache()
	if *cachedir != "" {
		st, err := store.Open(*cachedir, *cachemb<<20)
		if err != nil {
			fatal(log, err)
		}
		cache = flow.NewCacheWithStore(st)
		log.Info("artifact store opened", "dir", st.Root(), "cap_mb", *cachemb)
	}

	srv := service.NewServer(cache, *jobs)
	srv.Instrument(obs.NewRegistry())
	if *pprofOn {
		srv.EnablePprof()
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then let
	// in-flight compiles finish (bounded, so clients are not cut off
	// mid-response).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "workers", *jobs)
		done <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(log, err)
		}
	case <-ctx.Done():
		log.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fatal(log, err)
		}
		log.Info("done", "final_stats", cache.Stats().String())
	}
}

// newLogger builds the daemon's stderr logger: human-readable text by
// default, one-JSON-object-per-line under -logjson (for log shippers).
func newLogger(asJSON bool) *slog.Logger {
	if asJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func fatal(log *slog.Logger, err error) {
	log.Error("fatal", "err", err)
	os.Exit(1)
}
