// Command mmserved is the long-running compile daemon: it keeps one
// flow.Cache — optionally backed by a persistent content-addressed
// artifact store — warm across requests, so repeated compilations of the
// same modes are served from cached placements and identical requests in
// flight share a single flow execution.
//
// Endpoints:
//
//	POST /compile — service.CompileRequest JSON in, service.Result out
//	GET  /healthz — liveness probe
//	GET  /stats   — request counters + cache statistics
//
// `mmflow -remote http://host:port ...` submits its BLIF modes here
// instead of compiling locally.
//
// Usage:
//
//	mmserved [-addr :8433] [-j N] [-cachedir DIR] [-cachemb MB]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/flow"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8433", "listen address")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "maximum concurrent compile executions")
	cachedir := flag.String("cachedir", "", "persistent artifact-store directory for graphs, placements and compile results (empty: in-memory cache only)")
	cachemb := flag.Int64("cachemb", 0, "artifact-store size cap in MiB (0: uncapped)")
	flag.Parse()

	cache := flow.NewCache()
	if *cachedir != "" {
		st, err := store.Open(*cachedir, *cachemb<<20)
		if err != nil {
			fatal(err)
		}
		cache = flow.NewCacheWithStore(st)
		fmt.Fprintf(os.Stderr, "mmserved: artifact store at %s\n", st.Root())
	}

	srv := service.NewServer(cache, *jobs)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then let
	// in-flight compiles finish (bounded, so clients are not cut off
	// mid-response).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mmserved: listening on %s (%d workers)\n", *addr, *jobs)
		done <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "mmserved: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mmserved: done; final stats: %s\n", cache.Stats())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmserved:", err)
	os.Exit(1)
}
