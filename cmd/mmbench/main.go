// Command mmbench reproduces the evaluation section of the paper: Table I,
// Fig. 5 (reconfiguration speed-up), Fig. 6 (LUT/routing breakdown),
// Fig. 7 (wirelength vs MDR), the §IV-C area observations, and the merge
// ablations.
//
// The pair sweep — the dominant cost — runs on a worker pool (-j N,
// default GOMAXPROCS); the jobs are independent, the workers share one
// immutable routing-resource graph cache, and the report is byte-identical
// at any worker count. Progress is reported on stderr.
//
// Usage:
//
//	mmbench -exp all|table1|fig5|fig6|fig7|area|ablation [-j 8] [-pairs 4] [-effort 0.4] [-seed 1] [-full]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/flow"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig5, fig6, fig7, area, ablation, frames")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers for the pair sweep")
	pairs := flag.Int("pairs", 4, "multi-mode pairs per suite (paper: 10)")
	effort := flag.Float64("effort", 0.4, "annealing effort")
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "paper-scale run (all 30 pairs, effort 0.5)")
	verbose := flag.Bool("v", false, "print per-pair details")
	flag.Parse()

	sc := experiments.Scale{PairsPerSuite: *pairs, Effort: *effort, Seed: *seed}
	if *full {
		sc = experiments.FullScale()
	}
	// One cache for the whole invocation: the figure sweep, the area pass
	// and the ablations reuse each other's graphs and placements.
	sc.Cache = flow.NewCache()

	start := time.Now()
	suites, err := experiments.BuildSuites(sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# benchmark suites generated in %v (scale: %d pairs/suite, effort %.2f)\n\n",
		time.Since(start).Round(time.Millisecond), sc.PairsPerSuite, sc.Effort)

	if *exp == "table1" || *exp == "all" {
		experiments.PrintTableI(os.Stdout, experiments.TableI(suites))
		fmt.Println()
		if *exp == "table1" {
			return
		}
	}

	needPairs := map[string]bool{"all": true, "fig5": true, "fig6": true, "fig7": true}
	var results []*experiments.PairResult
	if needPairs[*exp] {
		total := 0
		for _, s := range suites {
			total += len(s.Pairs)
		}
		sweepStart := time.Now()
		var started atomic.Int32
		results, err = experiments.RunAll(suites, sc, *jobs, func(msg string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] running %s...\n", started.Add(1), total, msg)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# sweep: %d pairs on %d workers in %v\n",
			total, *jobs, time.Since(sweepStart).Round(time.Millisecond))
		if *verbose {
			for _, r := range results {
				experiments.PrintPair(os.Stdout, r)
			}
			fmt.Println()
		}
	}

	switch *exp {
	case "all":
		experiments.WriteFigures(os.Stdout, results)
		fmt.Println()
		printArea(suites, sc)
		fmt.Println()
		printAblation(suites, sc)
		fmt.Println()
		printFrames(suites, sc)
	case "fig5":
		experiments.PrintFig5(os.Stdout, experiments.Fig5(results))
	case "fig6":
		experiments.PrintFig6(os.Stdout, experiments.Fig6(results, "RegExp"))
	case "fig7":
		experiments.PrintFig7(os.Stdout, experiments.Fig7(results))
	case "area":
		printArea(suites, sc)
	case "ablation":
		printAblation(suites, sc)
	case "frames":
		printFrames(suites, sc)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	fmt.Printf("\n# total runtime %v\n", time.Since(start).Round(time.Second))
}

func printArea(suites []*experiments.Suite, sc experiments.Scale) {
	rows := experiments.AreaSavings(suites)
	c, g, ratio, err := experiments.FIRGenericRatio(sc)
	if err != nil {
		fatal(err)
	}
	experiments.PrintArea(os.Stdout, rows, c, g, ratio)
}

func printAblation(suites []*experiments.Suite, sc experiments.Scale) {
	for _, s := range suites {
		a, err := experiments.RunAblation(s, sc)
		if err != nil {
			fatal(err)
		}
		experiments.PrintAblation(os.Stdout, a)
	}
	r, err := experiments.RunRelaxAblation(suites[0], sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Relaxation ablation (RegExp pair 0): relax=1.2 speedup %.2fx wire %.0f%%; relax=1.0 speedup %.2fx wire %.0f%%\n",
		r.RelaxedSpeedup, 100*r.RelaxedWire, r.TightSpeedup, 100*r.TightWire)
}

func printFrames(suites []*experiments.Suite, sc experiments.Scale) {
	var rows []*experiments.FrameResult
	for _, s := range suites {
		r, err := experiments.RunFrames(s, sc, 64)
		if err != nil {
			fatal(err)
		}
		rows = append(rows, r)
	}
	experiments.PrintFrames(os.Stdout, rows)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmbench:", err)
	os.Exit(1)
}
