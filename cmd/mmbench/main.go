// Command mmbench reproduces the evaluation section of the paper: Table I,
// Fig. 5 (reconfiguration speed-up), Fig. 6 (LUT/routing breakdown),
// Fig. 7 (wirelength vs MDR), the §IV-C area observations, and the merge
// ablations — and, beyond the paper, the multi-mode group sweep (`-exp
// multi`): suites whose groups hold 3–4 modes, reported with the N×N
// switch-cost matrix (bits rewritten per specific mode transition).
//
// The benchmark × group sweep — the dominant cost — runs on a worker pool
// (-j N, default GOMAXPROCS); the jobs are independent, the workers share
// one immutable routing-resource graph cache, and the report is
// byte-identical at any worker count. Progress is reported on stderr.
//
// Usage:
//
//	mmbench -exp all|table1|fig5|fig6|fig7|area|ablation|frames|multi [-j 8] [-routej 2]
//	        [-placej 2] [-starts 4] [-groups 4] [-effort 0.4] [-seed 1] [-full]
//	        [-cachedir DIR] [-cachemb MB]
//
// With -cachedir the sweep runs against a persistent content-addressed
// artifact store: a warm re-run renders the byte-identical report while
// skipping every graph build, annealing and routing step, and the
// end-of-run cache summary on stderr shows exactly what was reused.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/store"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig5, fig6, fig7, area, ablation, frames, multi")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers for the group sweep")
	routej := flag.Int("routej", 1, "parallel workers inside each PathFinder route (results are byte-identical at any value)")
	placej := flag.Int("placej", 1, "parallel workers inside each annealing kernel (results are byte-identical at any value)")
	starts := flag.Int("starts", 1, "independently seeded anneals per placement, best kept (changes results)")
	groups := flag.Int("groups", 4, "multi-mode groups per suite (paper: 10)")
	flag.IntVar(groups, "pairs", 4, "deprecated alias for -groups")
	effort := flag.Float64("effort", 0.4, "annealing effort")
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "paper-scale run (all 30 groups, effort 0.5)")
	verbose := flag.Bool("v", false, "print per-group details")
	cachedir := flag.String("cachedir", "", "persistent artifact-store directory: routing-resource graphs, placements and whole group results survive the process, so a re-run of the same sweep skips all graph building, annealing and routing")
	cachemb := flag.Int64("cachemb", 0, "artifact-store size cap in MiB (0: uncapped)")
	remotestore := flag.String("remotestore", "", "base URL of a shared remote artifact store (mmstored); local misses fall through to it and results are pushed back")
	logjson := flag.Bool("logjson", false, "emit the stderr progress/summary lines as structured JSON logs")
	flag.Parse()

	// All progress and summary chatter goes through this stderr logger;
	// the report on stdout stays byte-identical either way (CI diffs it).
	if *logjson {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	sc := experiments.Scale{
		GroupsPerSuite: *groups, Effort: *effort, Seed: *seed,
		RouteWorkers: *routej, PlaceWorkers: *placej, PlaceStarts: *starts,
	}
	if *full {
		// Paper-scale defaults; explicitly set flags still win, so e.g.
		// `-full -effort 1.0` raises the annealing effort threaded through
		// experiments into flow.Config.PlaceEffort and the anneal kernel.
		sc = experiments.FullScale()
		sc.RouteWorkers = *routej
		sc.PlaceWorkers = *placej
		sc.PlaceStarts = *starts
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "groups", "pairs":
				sc.GroupsPerSuite = *groups
			case "effort":
				sc.Effort = *effort
			case "seed":
				sc.Seed = *seed
			}
		})
	}
	// One cache for the whole invocation: the figure sweep, the area pass
	// and the ablations reuse each other's graphs and placements. With
	// -cachedir the cache gains a persistent tier — the second identical
	// invocation serves every group result straight from the store.
	if *cachedir == "" && *remotestore != "" {
		// The remote tier write-through needs a local store to land in.
		tmp, err := os.MkdirTemp("", "mmbench-cache-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		*cachedir = tmp
	}
	if *cachedir != "" {
		st, err := store.Open(*cachedir, *cachemb<<20)
		if err != nil {
			fatal(err)
		}
		if *remotestore != "" {
			st.AttachRemote(store.NewRemote(*remotestore, 0))
		}
		sc.Cache = flow.NewCacheWithStore(st)
	} else {
		sc.Cache = flow.NewCache()
	}
	// The traffic summary lands on stderr so report output stays
	// byte-identical whether or not anyone is watching the cache.
	defer func() {
		logger.Info("cache", "stats", sc.Cache.Stats().String())
	}()

	start := time.Now()

	if *exp == "multi" {
		runMulti(sc, *jobs)
		fmt.Printf("\n# total runtime %v\n", time.Since(start).Round(time.Second))
		return
	}

	suites, err := experiments.BuildSuites(sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# benchmark suites generated in %v (scale: %d groups/suite, effort %.2f)\n\n",
		time.Since(start).Round(time.Millisecond), sc.GroupsPerSuite, sc.Effort)

	if *exp == "table1" || *exp == "all" {
		experiments.PrintTableI(os.Stdout, experiments.TableI(suites))
		fmt.Println()
		if *exp == "table1" {
			return
		}
	}

	needSweep := map[string]bool{"all": true, "fig5": true, "fig6": true, "fig7": true}
	var results []*experiments.GroupResult
	if needSweep[*exp] {
		results = sweep(suites, sc, *jobs, *verbose)
	}

	switch *exp {
	case "all":
		experiments.WriteFigures(os.Stdout, results)
		fmt.Println()
		printArea(suites, sc)
		fmt.Println()
		printAblation(suites, sc)
		fmt.Println()
		printFrames(suites, sc)
	case "fig5":
		experiments.PrintFig5(os.Stdout, experiments.Fig5(results))
	case "fig6":
		experiments.PrintFig6(os.Stdout, experiments.Fig6(results, "RegExp"))
	case "fig7":
		experiments.PrintFig7(os.Stdout, experiments.Fig7(results))
	case "area":
		printArea(suites, sc)
	case "ablation":
		printAblation(suites, sc)
	case "frames":
		printFrames(suites, sc)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	fmt.Printf("\n# total runtime %v\n", time.Since(start).Round(time.Second))
}

// sweep runs the benchmark × group sweep with stderr progress and returns
// the results in enumeration order.
func sweep(suites []*experiments.Suite, sc experiments.Scale, jobs int, verbose bool) []*experiments.GroupResult {
	total := 0
	for _, s := range suites {
		total += len(s.Groups)
	}
	sweepStart := time.Now()
	var started atomic.Int32
	results, err := experiments.RunAll(suites, sc, jobs, func(msg string) {
		logger.Info("running", "n", started.Add(1), "total", total, "group", msg)
	})
	if err != nil {
		fatal(err)
	}
	logger.Info("sweep done", "groups", total, "workers", jobs,
		"elapsed", time.Since(sweepStart).Round(time.Millisecond).String())
	// Router work summary, on stderr like the cache stats so the report
	// itself stays byte-identical. Warm store runs decode the same numbers
	// the cold run computed.
	iters, rerouted, peak := 0, 0, 0
	for _, r := range results {
		iters += r.RouteIters
		rerouted += r.RerouteConns
		if r.PeakOveruse > peak {
			peak = r.PeakOveruse
		}
	}
	logger.Info("route summary", "iterations", iters, "reroutes", rerouted, "peak_overuse", peak)
	if verbose {
		for _, r := range results {
			experiments.PrintGroup(os.Stdout, r)
		}
		fmt.Println()
	}
	return results
}

// runMulti evaluates the ≥3-mode group suites and reports the per-switch
// cost matrices alongside the familiar figure summaries. The group report
// always includes the per-group detail lines, so the sweep's own verbose
// printing stays off.
func runMulti(sc experiments.Scale, jobs int) {
	buildStart := time.Now()
	suites, err := experiments.BuildMultiSuites(sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# multi-mode suites generated in %v (effort %.2f)\n\n",
		time.Since(buildStart).Round(time.Millisecond), sc.Effort)
	experiments.PrintTableI(os.Stdout, experiments.TableI(suites))
	fmt.Println()

	results := sweep(suites, sc, jobs, false)
	experiments.WriteGroupReport(os.Stdout, results)
	fmt.Println()
	experiments.PrintFig5(os.Stdout, experiments.Fig5(results))
}

func printArea(suites []*experiments.Suite, sc experiments.Scale) {
	rows := experiments.AreaSavings(suites)
	c, g, ratio, err := experiments.FIRGenericRatio(sc)
	if err != nil {
		fatal(err)
	}
	experiments.PrintArea(os.Stdout, rows, c, g, ratio)
}

func printAblation(suites []*experiments.Suite, sc experiments.Scale) {
	for _, s := range suites {
		a, err := experiments.RunAblation(s, sc)
		if err != nil {
			fatal(err)
		}
		experiments.PrintAblation(os.Stdout, a)
	}
	r, err := experiments.RunRelaxAblation(suites[0], sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Relaxation ablation (RegExp group 0): relax=1.2 speedup %.2fx wire %.0f%%; relax=1.0 speedup %.2fx wire %.0f%%\n",
		r.RelaxedSpeedup, 100*r.RelaxedWire, r.TightSpeedup, 100*r.TightWire)
}

func printFrames(suites []*experiments.Suite, sc experiments.Scale) {
	var rows []*experiments.FrameResult
	for _, s := range suites {
		r, err := experiments.RunFrames(s, sc, 64)
		if err != nil {
			fatal(err)
		}
		rows = append(rows, r)
	}
	experiments.PrintFrames(os.Stdout, rows)
}

// logger carries every stderr line; main replaces it before any output.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
